// Face recognition case study (Fig 28 of the paper): IoT cameras stream
// face images through the metasurface, which computes the identity during
// propagation — the building-management server never sees a raw face image,
// only per-identity scores (the paper's structural-privacy argument).
//
//	go run ./examples/facerecognition
package main

import (
	"fmt"
	"log"
	"strings"

	metaai "repro"
)

func main() {
	fmt.Println("building the Fig 28 case study: 10 volunteers x 5 backgrounds,")
	fmt.Println("plus CelebA-style supplementary training images...")
	pipe, fc, err := metaai.RunFaceCase(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training set: %d frames, test: %d appearances\n\n", len(fc.Train), len(fc.Test))

	var total float64
	for v := 0; v < fc.Classes; v++ {
		correct := 0
		for k := 0; k < fc.PerUser; k++ {
			s := fc.Test[v*fc.PerUser+k]
			class, _ := pipe.Infer(s.X)
			if class == s.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(fc.PerUser)
		total += acc
		bar := strings.Repeat("#", int(acc*30))
		fmt.Printf("volunteer %2d  %5.1f%%  %s\n", v+1, 100*acc, bar)
	}
	fmt.Printf("\naverage over-the-air recognition accuracy: %.2f%% (paper: 78.54%%)\n",
		100*total/float64(fc.Classes))
}
