// Quickstart: train a MetaAI pipeline on the synthetic MNIST stand-in,
// deploy it onto the simulated 16×16 2-bit metasurface, and classify a
// sample over the air.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	metaai "repro"

	"repro/internal/dataset"
)

func main() {
	cfg := metaai.DefaultConfig("mnist")
	cfg.Train.Epochs = 40 // the paper uses 60; 40 converges at this scale

	fmt.Println("training the complex LNN and solving the MTS schedules...")
	pipe, err := metaai.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulation accuracy (digital model):   %.2f%%\n", 100*pipe.SimAccuracy())
	fmt.Printf("prototype accuracy (over the air):     %.2f%%\n", 100*pipe.AirAccuracy())
	fmt.Printf("air time per inference:                %.0f us (%d sequential transmissions)\n",
		pipe.System.AirTime()*1e6, pipe.System.TransmissionsPerInference())

	// Classify one fresh sample end to end: the "transmission" IS the
	// inference — the edge server only receives the class scores.
	ds := dataset.MustLoad("mnist", cfg.Scale, cfg.Seed)
	sample := ds.Test[0]
	class, probs := pipe.Infer(sample.X)
	fmt.Printf("\nover-the-air inference on one sample (true class %d):\n", sample.Label)
	for r, p := range probs {
		marker := ""
		if r == class {
			marker = "  <- predicted"
		}
		fmt.Printf("  class %d: %.3f%s\n", r, p, marker)
	}
}
