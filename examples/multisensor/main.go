// Multi-sensor fusion (Fig 20 of the paper): several sensors share one
// metasurface by time division; their per-sensor accumulators add before
// the magnitude readout, so independent sensor noise averages out. The
// USC-HAD scenario fuses two modalities (accelerometer + gyroscope) and
// Multi-PIE fuses three camera views.
//
//	go run ./examples/multisensor
package main

import (
	"fmt"
	"log"

	metaai "repro"
)

func main() {
	for _, name := range metaai.MultiSensorDatasets() {
		fmt.Printf("== %s ==\n", name)
		var first float64
		for sensors := 1; ; sensors++ {
			pipe, err := metaai.RunFused(name, sensors, metaai.QuickScale, 1)
			if err != nil {
				if sensors == 1 {
					log.Fatal(err)
				}
				break // ran out of views
			}
			air := pipe.AirAccuracy()
			if sensors == 1 {
				first = air
			}
			fmt.Printf("  %d sensor(s): %.2f%% over the air (gain %+.2f vs single)\n",
				sensors, 100*air, 100*(air-first))
		}
		fmt.Println()
	}
	fmt.Println("paper reference: Multi-PIE 64.58% -> 89.58% with 3 views;")
	fmt.Println("USC-HAD cross-modality fusion gains up to +27.06%.")
}
