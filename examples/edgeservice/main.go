// Edge service: MetaAI deployed as three network components talking real
// UDP on localhost, mirroring the paper's deployment story (Fig 1(c)):
//
//	sensor ──symbols──▶ air (metasurface + channel) ──accumulators──▶ edge server
//
// The sensor is a dumb commodity transmitter: it only modulates and sends.
// The "air" process simulates the programmable metasurface computing during
// propagation. The edge server receives only the per-class accumulators —
// never the raw data — takes the magnitude and argmax of Eqn 3, and logs
// the decision. This is the paper's structural-privacy claim as running
// code: compromise the server and you still hold no raw sensor data.
//
//	go run ./examples/edgeservice
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	metaai "repro"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/clocksync"
	"repro/internal/dataset"
	"repro/internal/ota"
)

func writeFrame(conn *net.UDPConn, to *net.UDPAddr, f *airproto.Frame) error {
	buf, err := f.Marshal()
	if err != nil {
		return err
	}
	_, err = conn.WriteToUDP(buf, to)
	return err
}

func readFrame(conn *net.UDPConn) (*airproto.Frame, error) {
	buf := make([]byte, 65535)
	n, _, err := conn.ReadFromUDP(buf)
	if err != nil {
		return nil, err
	}
	return airproto.Unmarshal(buf[:n])
}

func main() {
	const samples = 40

	fmt.Println("training and deploying the MetaAI pipeline (mnist, office, CDFA)...")
	cfg := metaai.DefaultConfig("mnist")
	pipe, err := metaai.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.MustLoad("mnist", cfg.Scale, cfg.Seed)

	// --- durability: the MTS controller checkpoints its solved state and
	// restarts from it. The sealed blob holds the schedules, realized
	// responses, and channel statistics; restoring needs no re-training and
	// no re-solving, and the clock-sync sampler (a function, so it cannot
	// serialize) is rebuilt from the detector's two parameters — the same
	// recipe metaai-serve -state-dir uses after a crash.
	ckptPath := filepath.Join(os.TempDir(), "edgeservice-deployment.ckpt")
	if err := checkpoint.WriteFile(ckptPath, checkpoint.EncodeDeployment(pipe.Deployment().State())); err != nil {
		log.Fatal(err)
	}
	blob, err := checkpoint.ReadFile(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	st, err := checkpoint.DecodeDeployment(blob)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := ota.FromState(st)
	if err != nil {
		log.Fatal(err)
	}
	det := cfg.EffectiveDetector(pipe.Train.U)
	restored = restored.WithSyncSampler(clocksync.CoarseSampler(det, restored.Options().SymbolRateHz))
	fmt.Printf("air: deployment checkpointed to %s (%d bytes) and restored with zero re-solve\n",
		ckptPath, len(blob))
	airSession := restored.SessionFromSeed(cfg.Seed)

	// --- edge server: receives accumulators, never raw data. ---
	edgeConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer edgeConn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		correct, total := 0, 0
		for total < samples {
			edgeConn.SetReadDeadline(time.Now().Add(5 * time.Second))
			f, err := readFrame(edgeConn)
			if err != nil {
				log.Printf("edge: %v", err)
				return
			}
			// Eqn 3 readout: magnitude, then argmax.
			best, arg := -1.0, 0
			for r, v := range f.Data {
				m := real(v)*real(v) + imag(v)*imag(v)
				if m > best {
					best, arg = m, r
				}
			}
			total++
			status := "MISS"
			if arg == int(f.Label) {
				correct++
				status = "ok"
			}
			if total <= 8 || total == samples {
				fmt.Printf("edge: sample %2d -> class %d (true %d) %s\n", f.ID, arg, f.Label, status)
			} else if total == 9 {
				fmt.Println("edge: ...")
			}
		}
		fmt.Printf("\nedge server accuracy over %d over-the-air inferences: %.1f%%\n",
			total, 100*float64(correct)/float64(total))
		fmt.Println("(the server only ever received per-class accumulators, not sensor data)")
	}()

	// --- air: the metasurface-augmented channel. ---
	airConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer airConn.Close()
	edgeAddr := edgeConn.LocalAddr().(*net.UDPAddr)
	go func() {
		for {
			airConn.SetReadDeadline(time.Now().Add(5 * time.Second))
			f, err := readFrame(airConn)
			if err != nil {
				return
			}
			// The propagation itself computes: schedule × symbols — served
			// from the deployment restored off the checkpoint.
			acc := airSession.Accumulate(f.Data)
			resp := &airproto.Frame{ID: f.ID, Label: f.Label, Data: acc}
			if err := writeFrame(airConn, edgeAddr, resp); err != nil {
				log.Printf("air: %v", err)
				return
			}
		}
	}()

	// --- sensor: modulate and transmit, nothing else. ---
	sensorConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer sensorConn.Close()
	airAddr := airConn.LocalAddr().(*net.UDPAddr)
	go func() {
		for i := 0; i < samples; i++ {
			s := ds.Test[i]
			f := &airproto.Frame{ID: uint32(i), Label: int32(s.Label), Data: pipe.Enc.Encode(s.X)}
			if err := writeFrame(sensorConn, airAddr, f); err != nil {
				log.Printf("sensor: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond) // pace the loopback link
		}
	}()

	<-done
}
