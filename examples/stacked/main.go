// Stacked cascade: train a MetaAI pipeline and deploy it across TWO
// metasurfaces in series — the signal re-scatters off a relay layer before
// reaching the receiver, and the joint layer-wise solver splits the weight
// realization across both surfaces (Config.Layers = 2).
//
//	go run ./examples/stacked
package main

import (
	"fmt"
	"log"

	metaai "repro"

	"repro/internal/dataset"
)

func main() {
	cfg := metaai.DefaultConfig("mnist")
	cfg.Train.Epochs = 40
	cfg.Layers = 2 // primary surface + one relay layer

	fmt.Println("training, then jointly solving a 2-layer cascade schedule...")
	pipe, err := metaai.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	d := pipe.Deployment()
	fmt.Printf("cascade depth:            %d layers\n", d.Layers())
	fmt.Printf("per-layer drive power:    %.2v\n", d.LayerPowerAlloc())
	fmt.Printf("simulation accuracy:      %.2f%%\n", 100*pipe.SimAccuracy())
	fmt.Printf("over-the-air accuracy:    %.2f%%\n", 100*pipe.AirAccuracy())

	// One end-to-end inference: the relay hop is invisible to the client.
	ds := dataset.MustLoad("mnist", cfg.Scale, cfg.Seed)
	sample := ds.Test[0]
	class, _ := pipe.Infer(sample.X)
	fmt.Printf("sample with true class %d -> predicted class %d over the air\n",
		sample.Label, class)
}
