// Parallelism (§3.3 of the paper): sequential MetaAI needs one transmission
// per output class; the subcarrier and antenna schemes compute several
// classes per transmission by giving each output channel its own
// propagation-phase signature while the metasurface plays one shared
// schedule. This example sweeps the accuracy/latency trade-off of Fig 31.
//
//	go run ./examples/parallelism
package main

import (
	"fmt"
	"log"

	metaai "repro"
)

func main() {
	cfg := metaai.DefaultConfig("mnist")
	cfg.Sync = metaai.SyncPerfect // isolate the parallelism effect
	pipe, err := metaai.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	seq := pipe.AirAccuracy()
	fmt.Printf("sequential baseline: %.2f%% accuracy, %d transmissions, %.0f us air time\n\n",
		100*seq, pipe.System.TransmissionsPerInference(), pipe.System.AirTime()*1e6)

	fmt.Printf("%-10s %-9s %-10s %-13s %s\n", "scheme", "channels", "accuracy", "transmissions", "air_time_us")
	for _, kind := range []metaai.ParallelKind{metaai.Subcarrier, metaai.Antenna} {
		for _, channels := range []int{2, 5, 10} {
			sys, err := metaai.DeployParallel(pipe, kind, channels)
			if err != nil {
				log.Fatal(err)
			}
			acc := metaai.EvaluateParallel(pipe, sys)
			fmt.Printf("%-10s %-9d %-10.2f %-13d %.0f\n",
				kind, channels, 100*acc, sys.Transmissions(), sys.AirTime()*1e6)
		}
	}
	fmt.Println("\npaper reference (Fig 18/31): both schemes trade a slight accuracy")
	fmt.Println("drop for proportionally fewer transmissions.")
}
