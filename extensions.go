package metaai

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// RunFused trains and deploys a multi-sensor pipeline over the first
// `sensors` views of one of the Fig 20 datasets (MultiSensorDatasets()).
// The sensors share the single metasurface by time division (§3.4): the
// deployed schedule spans the concatenated symbol streams, and the receiver
// accumulates across sensors before the magnitude (Eqns 11–12).
func RunFused(datasetName string, sensors int, scale Scale, seed uint64) (*Pipeline, error) {
	md, err := dataset.LoadMulti(datasetName, scale, seed)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(datasetName)
	cfg.Scale = scale
	cfg.Seed = seed
	enc := nn.Encoder{Scheme: cfg.Scheme}
	train, test, err := fusion.EncodeViews(md, sensors, enc)
	if err != nil {
		return nil, err
	}
	return core.NewFromSets(train, test, cfg)
}

// FaceCase is the Fig 28 case-study data: ten identities, five deployment
// backgrounds, CelebA-style supplementary images, and a 20-appearance test
// phase per volunteer.
type FaceCase = dataset.FaceCase

// LoadFaceCase generates the case-study data deterministically from seed.
func LoadFaceCase(seed uint64) *FaceCase { return dataset.LoadFaceCase(seed) }

// RunFaceCase trains and deploys the Fig 28 face-recognition pipeline.
func RunFaceCase(seed uint64) (*Pipeline, *FaceCase, error) {
	fc := dataset.LoadFaceCase(seed)
	cfg := core.DefaultConfig("facecase")
	cfg.Seed = seed
	enc := nn.Encoder{Scheme: cfg.Scheme}
	train := nn.EncodeSet(fc.Train, fc.Classes, enc)
	test := nn.EncodeSet(fc.Test, fc.Classes, enc)
	p, err := core.NewFromSets(train, test, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, fc, nil
}

// ParallelKind selects one of the §3.3 parallelism schemes.
type ParallelKind string

// The two schemes of Fig 9.
const (
	Subcarrier ParallelKind = "subcarrier"
	Antenna    ParallelKind = "antenna"
)

// ParallelSystem is a deployed parallel classifier; see Transmissions and
// AirTime for the latency side of the trade-off.
type ParallelSystem = parallel.System

// DeployParallel redeploys a trained pipeline's weights under one of the
// parallelism schemes with the given channel count (Eqns 9–10): channels
// output classes are computed per transmission instead of one.
func DeployParallel(p *Pipeline, kind ParallelKind, channels int) (*ParallelSystem, error) {
	src := rng.New(p.Cfg.Seed ^ 0x9a7a11e1)
	opts := parallel.NewOptions(src.Split())
	var plan *parallel.Plan
	var err error
	switch kind {
	case Subcarrier:
		plan, err = parallel.NewSubcarrierPlan(opts.Surface, mts.DefaultGeometry(), channels, 40e3, src.Split())
	case Antenna:
		plan, err = parallel.NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), channels, 0)
	default:
		return nil, fmt.Errorf("metaai: unknown parallelism kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return parallel.Deploy(p.Model.Weights(), plan, opts, src)
}

// EvaluateParallel returns the parallel system's accuracy on the pipeline's
// test set.
func EvaluateParallel(p *Pipeline, sys *ParallelSystem) float64 {
	return nn.Evaluate(sys, p.Test)
}
