#!/bin/sh
# CI gate: static checks, the unit suite, and a race-detector pass over the
# concurrent paths (EvaluateParallel, experiment sweeps, metaai-serve).
set -eu

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all checks passed"
