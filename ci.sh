#!/bin/sh
# CI gate: static checks, the unit suite, a race-detector pass over the
# concurrent paths (EvaluateParallel, experiment sweeps, metaai-serve), a
# short fuzz smoke over the wire-protocol decoder, and a tiny abl-faults run
# whose runner errors out if the zero-fault-rate point is not bit-identical
# to the unfaulted baseline.
set -eu

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== airproto fuzz smoke (10s) =="
go test -fuzz=FuzzUnmarshal -fuzztime=10s -run='^$' ./internal/airproto

echo "== checkpoint fuzz smoke (10s) =="
go test -fuzz=FuzzDecode -fuzztime=10s -run='^$' ./internal/checkpoint

echo "== abl-faults zero-rate bit-identity =="
go run ./cmd/metaai-bench -exp abl-faults -evalcap 40

echo "== crash-recovery gate (save -> corrupt -> recover, -race) =="
go test -race -count=1 -run 'TestKillAndRecoverBitIdentity|TestRecoverSkipsCorruptEpochs' ./cmd/metaai-serve

echo "== cascade K=1 bit-identity gate =="
go test -count=1 -run 'TestCascadeK1BitIdentity' ./internal/mts ./internal/ota
go test -count=1 -run 'TestCascadeStateSealsVersion2|TestCascadeDeploymentRoundtripBitIdentity|TestJournalRecoverSkipsCorruptCascade' ./internal/checkpoint
go test -count=1 -run 'TestKillAndRecoverCascadeBitIdentity' ./cmd/metaai-serve

echo "== fleet failover/replication gate (3 replicas, kill/rollback/catch-up, -race) =="
go test -race -count=1 -run 'TestFleetBench' -short ./cmd/metaai-serve

echo "== chaos gate (netchaos zero-rate identity + 3-replica chaos soak, -race) =="
go test -count=1 -run 'TestZeroRateBitIdentity|TestZeroRateLanePassthrough' ./internal/netchaos
go test -race -count=1 -run 'TestChaosGate' -short ./cmd/metaai-serve

echo "== obs determinism gate =="
go test -run 'TestServeBenchDeterministicFingerprint' ./cmd/metaai-bench

echo "== bench p99 regression gate (comparator tests + zero-alloc hot path + CLI self-compare) =="
go test -run 'TestCompare' ./cmd/metaai-bench
go test -count=1 -run 'TestAccumulateSteadyStateZeroAlloc' ./internal/ota
go test -count=1 -run 'TestWorkerBatchSteadyStateZeroAlloc' ./cmd/metaai-serve
go run ./cmd/metaai-bench -servebench 100 -obs-out .benchgate.json
go run ./cmd/metaai-bench -compare .benchgate.json .benchgate.json
rm -f .benchgate.json

echo "== trace determinism gate (normalized exports byte-identical) =="
go run ./cmd/metaai-bench -tracedump .tracegate.a.json
go run ./cmd/metaai-bench -tracedump .tracegate.b.json
cmp .tracegate.a.json .tracegate.b.json
rm -f .tracegate.a.json .tracegate.b.json

echo "== stitch gate (cross-hop trace stitched at the router + control plane under chaos, -race) =="
go test -race -count=1 -run 'TestFleetStitchedTraceEndToEnd|TestRouterControlPlaneSurvivesChaosAndSaturation' ./cmd/metaai-serve

echo "== servebench snapshot (emit-only, no thresholds) =="
go run ./cmd/metaai-bench -servebench 2000 -obs-out BENCH_serve.json

echo "ci: all checks passed"
