// Package pnn implements the traditional stacked-metasurface physical
// neural network of Appendix A.1 — the architecture MetaAI replaces. All
// inputs enter in parallel; each layer's meta-atoms apply one programmable
// phase to the superposition of everything arriving at them, and fixed
// free-space Green's-function couplings β ~ G(d, s) connect consecutive
// layers (Eqn 15). Because a single layer cannot assign independent weights
// per input (M < R·U: overdetermined, Eqn 18), traditional PNNs stack
// layers to add degrees of freedom; Fig 29 shows accuracy climbing with
// depth and approaching the digital LNN near five layers.
//
// The implementation trains the per-layer atom phases with the same
// complex-valued backpropagation machinery as the rest of the repository
// (package autodiff), using continuous phases — the favourable case for
// this baseline.
package pnn

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/autodiff"
	"repro/internal/cplx"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Config describes a stacked PNN.
type Config struct {
	// Layers is the number of metasurface layers (1–6 in Fig 29).
	Layers int
	// AtomsPerLayer is M, the meta-atoms per layer (a square grid).
	AtomsPerLayer int
	// Classes and U are the output/input dimensions.
	Classes, U int
	// LayerGapM is the inter-layer spacing d; SpacingM the atom pitch s.
	LayerGapM, SpacingM float64
	// FreqGHz sets the wavelength of the couplings.
	FreqGHz float64
}

// DefaultConfig sizes the baseline for the Fig 29 experiment.
func DefaultConfig(layers, classes, u int) Config {
	return Config{
		Layers:        layers,
		AtomsPerLayer: 144, // 12×12 per layer
		Classes:       classes,
		U:             u,
		LayerGapM:     0.05,
		SpacingM:      0.02,
		FreqGHz:       5.25,
	}
}

// Network is a stacked PNN with trainable per-layer phases.
type Network struct {
	Cfg    Config
	Phases []*autodiff.RParam // one M-vector per layer
	// couplings[0]: input plane -> layer 1 (M×U);
	// couplings[l] for 0<l<Layers: layer l -> layer l+1 (M×M);
	// couplings[Layers]: last layer -> detectors (R×M).
	couplings []*cplx.Mat
}

// planePositions lays n elements on a centred square-ish grid with the given
// pitch, returning (x, y) pairs.
func planePositions(n int, pitch float64) [][2]float64 {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		r, c := i/side, i%side
		out[i] = [2]float64{
			(float64(c) - float64(side-1)/2) * pitch,
			(float64(r) - float64(side-1)/2) * pitch,
		}
	}
	return out
}

// greenCoupling builds the free-space coupling matrix between two planes a
// distance gap apart: β = e^{jk·r}/r, normalized so a unit-power input plane
// keeps unit-order magnitudes.
func greenCoupling(dst, src [][2]float64, gap, lambda float64) *cplx.Mat {
	k0 := 2 * math.Pi / lambda
	m := cplx.NewMat(len(dst), len(src))
	var norm float64
	for i, d := range dst {
		for j, s := range src {
			dx, dy := d[0]-s[0], d[1]-s[1]
			r := math.Sqrt(dx*dx + dy*dy + gap*gap)
			v := cplx.Expi(k0*r) * complex(1/r, 0)
			m.Set(i, j, v)
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	scale := complex(math.Sqrt(float64(len(src)))/math.Sqrt(norm), 0)
	for i := range m.Data {
		m.Data[i] *= scale
	}
	return m
}

// New builds a network with the given configuration, phases initialized
// uniformly at random from src.
func New(cfg Config, src *rng.Source) (*Network, error) {
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("pnn: need at least one layer, got %d", cfg.Layers)
	}
	if cfg.AtomsPerLayer < 1 || cfg.Classes < 1 || cfg.U < 1 {
		return nil, fmt.Errorf("pnn: invalid dimensions %+v", cfg)
	}
	lambda := 299792458.0 / (cfg.FreqGHz * 1e9)
	inPlane := planePositions(cfg.U, cfg.SpacingM)
	atomPlane := planePositions(cfg.AtomsPerLayer, cfg.SpacingM)
	outPlane := planePositions(cfg.Classes, cfg.SpacingM*3)
	n := &Network{Cfg: cfg}
	n.couplings = append(n.couplings, greenCoupling(atomPlane, inPlane, cfg.LayerGapM, lambda))
	for l := 1; l < cfg.Layers; l++ {
		n.couplings = append(n.couplings, greenCoupling(atomPlane, atomPlane, cfg.LayerGapM, lambda))
	}
	n.couplings = append(n.couplings, greenCoupling(outPlane, atomPlane, cfg.LayerGapM, lambda))
	for l := 0; l < cfg.Layers; l++ {
		p := autodiff.NewRParam(cfg.AtomsPerLayer)
		for i := range p.Val {
			p.Val[i] = src.Phase()
		}
		n.Phases = append(n.Phases, p)
	}
	return n, nil
}

// Logits runs the physical forward pass: propagate, modulate per layer,
// detect magnitudes.
func (n *Network) Logits(x []complex128) []float64 {
	v := cplx.Vec(x)
	for l := 0; l < n.Cfg.Layers; l++ {
		v = n.couplings[l].MulVec(v)
		for i := range v {
			v[i] *= cplx.Expi(n.Phases[l].Val[i])
		}
	}
	y := n.couplings[n.Cfg.Layers].MulVec(v)
	out := make([]float64, len(y))
	for i, c := range y {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// Predict classifies one encoded input.
func (n *Network) Predict(x []complex128) int {
	return cplx.Argmax(n.Logits(x))
}

// Train optimizes the layer phases with SGD+momentum over the encoded set.
func Train(train *nn.EncodedSet, cfg Config, tc nn.TrainConfig) (*Network, error) {
	if tc.LR == 0 {
		tc.LR = 0.15 // phase parameters need large steps, as in nn.TrainDiscrete
	}
	if tc.Momentum == 0 {
		tc.Momentum = 0.9
	}
	if tc.Batch == 0 {
		tc.Batch = 64
	}
	if tc.Epochs == 0 {
		tc.Epochs = 30
	}
	cfg.Classes = train.Classes
	cfg.U = train.U
	src := rng.New(tc.Seed ^ 0x9111)
	net, err := New(cfg, src)
	if err != nil {
		return nil, err
	}
	if len(train.X) == 0 {
		return nil, fmt.Errorf("pnn: empty training set")
	}
	vels := make([][]float64, cfg.Layers)
	for l := range vels {
		vels[l] = make([]float64, cfg.AtomsPerLayer)
	}
	order := make([]int, len(train.X))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += tc.Batch {
			end := start + tc.Batch
			if end > len(order) {
				end = len(order)
			}
			for _, p := range net.Phases {
				p.ZeroGrad()
			}
			for _, idx := range order[start:end] {
				tp := autodiff.NewTape()
				v := tp.ConstC(train.X[idx])
				for l := 0; l < cfg.Layers; l++ {
					v = tp.MatVecConst(net.couplings[l], v)
					v = tp.PhasorMul(v, net.Phases[l])
				}
				y := tp.MatVecConst(net.couplings[cfg.Layers], v)
				mag := tp.Abs(y)
				lnode, _ := tp.SoftmaxCE(mag, train.Labels[idx])
				tp.Backward(lnode)
			}
			scale := tc.LR / float64(end-start)
			for l, p := range net.Phases {
				for i := range p.Val {
					vels[l][i] = tc.Momentum*vels[l][i] - scale*p.Grad[i]
					p.Val[i] += vels[l][i]
				}
			}
		}
	}
	return net, nil
}
