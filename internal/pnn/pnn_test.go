package pnn

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := New(Config{Layers: 0, AtomsPerLayer: 4, Classes: 2, U: 4}, src); err == nil {
		t.Error("expected error for zero layers")
	}
	if _, err := New(Config{Layers: 1, AtomsPerLayer: 0, Classes: 2, U: 4}, src); err == nil {
		t.Error("expected error for zero atoms")
	}
}

func TestForwardShapes(t *testing.T) {
	src := rng.New(2)
	cfg := DefaultConfig(2, 5, 16)
	n, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 16)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	logits := n.Logits(x)
	if len(logits) != 5 {
		t.Fatalf("got %d logits", len(logits))
	}
	for _, v := range logits {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid logit %v", v)
		}
	}
	if p := n.Predict(x); p < 0 || p >= 5 {
		t.Fatalf("prediction %d out of range", p)
	}
}

func TestCouplingsNormalized(t *testing.T) {
	// Forward magnitudes must stay bounded through depth, or training
	// degenerates.
	src := rng.New(3)
	cfg := DefaultConfig(6, 4, 64)
	n, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 64)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	logits := n.Logits(x)
	for _, v := range logits {
		if v > 1e4 || v < 1e-8 {
			t.Fatalf("logit magnitude %v out of a trainable range", v)
		}
	}
}

// TestDepthImprovesAccuracy reproduces the Fig 29 trend: a 1-layer
// traditional PNN is far from the digital LNN (overdetermined, Eqn 18),
// and stacking layers closes most of the gap.
func TestDepthImprovesAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("PNN training sweep is slow")
	}
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := nn.Encoder{Scheme: modem.QAM256}
	// A subset keeps the sweep fast; the trend survives.
	train := nn.EncodeSet(ds.Train[:300], ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	digital := nn.Evaluate(nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 40}), test)

	accs := map[int]float64{}
	for _, layers := range []int{1, 5} {
		net, err := Train(train, DefaultConfig(layers, ds.Classes, train.U), nn.TrainConfig{Seed: 1, Epochs: 20})
		if err != nil {
			t.Fatal(err)
		}
		accs[layers] = nn.Evaluate(net, test)
	}
	if accs[5] <= accs[1] {
		t.Fatalf("5-layer PNN (%.3f) should beat 1-layer (%.3f)", accs[5], accs[1])
	}
	if digital-accs[1] < 0.10 {
		t.Fatalf("1-layer PNN (%.3f) should trail the digital LNN (%.3f) clearly", accs[1], digital)
	}
	if accs[5] < accs[1]+0.1 {
		t.Fatalf("depth gain too small: %v (digital %.3f)", accs, digital)
	}
}

func TestTrainEmptySetErrors(t *testing.T) {
	_, err := Train(&nn.EncodedSet{Classes: 2, U: 4}, DefaultConfig(1, 2, 4), nn.TrainConfig{})
	if err == nil {
		t.Fatal("expected error for empty training set")
	}
}
