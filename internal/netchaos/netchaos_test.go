package netchaos

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/rng"
)

// stream feeds n seeded packets through a lane and flattens the delivered
// byte stream with ordinal markers, capturing both content and order.
func stream(l *Lane, n int, seed uint64) []byte {
	src := rng.New(seed)
	var out bytes.Buffer
	for i := 0; i < n; i++ {
		pkt := make([]byte, 8+src.IntN(56))
		for j := range pkt {
			pkt[j] = byte(src.Uint64())
		}
		for _, p := range l.Apply(pkt, nil) {
			fmt.Fprintf(&out, "|%d:%x", len(p.Data), p.Data)
		}
	}
	for _, p := range l.Flush() {
		fmt.Fprintf(&out, "|f%d:%x", len(p.Data), p.Data)
	}
	return out.Bytes()
}

// TestLaneDeterministic: same seed, same packet fates, byte-for-byte.
func TestLaneDeterministic(t *testing.T) {
	r := Mix(0.2)
	r.BurstEvery, r.BurstLen = 40, 8
	a := stream(NewLane(r, 42), 500, 7)
	b := stream(NewLane(r, 42), 500, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different fates")
	}
	c := stream(NewLane(r, 43), 500, 7)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical fates (chaos not seeded?)")
	}
}

// TestZeroRateLanePassthrough: a zero-rate lane aliases the offered slice
// and delivers exactly one copy of every packet in order — and consumes no
// randomness doing it.
func TestZeroRateLanePassthrough(t *testing.T) {
	l := NewLane(Rates{}, 99)
	for i := 0; i < 100; i++ {
		pkt := []byte{byte(i), 1, 2, 3}
		outs := l.Apply(pkt, nil)
		if len(outs) != 1 {
			t.Fatalf("packet %d: got %d deliveries, want 1", i, len(outs))
		}
		if &outs[0].Data[0] != &pkt[0] {
			t.Fatalf("packet %d: zero-rate path copied instead of aliasing", i)
		}
	}
	if got := stream(NewLane(Rates{}, 1), 50, 3); !bytes.Equal(got, stream(NewLane(Rates{}, 2), 50, 3)) {
		t.Fatal("zero-rate delivery depends on the chaos seed")
	}
	st := l.Stats()
	if st.Offered != 100 || st.Dropped+st.Duplicated+st.Delayed+st.Corrupted+st.Truncated+st.Partitioned != 0 {
		t.Fatalf("zero-rate lane touched traffic: %+v", st)
	}
}

func TestLaneDropAndDupRates(t *testing.T) {
	const n = 4000
	l := NewLane(Rates{Drop: 0.2}, 5)
	delivered := 0
	for i := 0; i < n; i++ {
		delivered += len(l.Apply([]byte{1, 2, 3, 4}, nil))
	}
	st := l.Stats()
	if st.Dropped < n/10 || st.Dropped > n/2 {
		t.Fatalf("drop rate off: %d/%d", st.Dropped, n)
	}
	if delivered != n-int(st.Dropped) {
		t.Fatalf("delivered %d + dropped %d != offered %d", delivered, st.Dropped, n)
	}

	ld := NewLane(Rates{Dup: 0.5}, 6)
	delivered = 0
	for i := 0; i < n; i++ {
		delivered += len(ld.Apply([]byte{9}, nil))
	}
	std := ld.Stats()
	if delivered != n+int(std.Duplicated) || std.Duplicated < n/4 {
		t.Fatalf("dup accounting off: delivered=%d duplicated=%d", delivered, std.Duplicated)
	}
}

// TestLaneReorder: a delayed packet re-appears after DelayDepth later
// packets, intact and in ordinal-deterministic position.
func TestLaneReorder(t *testing.T) {
	l := NewLane(Rates{Delay: 1, DelayDepth: 2}, 3)
	// Packet 0 is held (delay rate 1 holds everything; each later packet is
	// also held, so releases cascade at +depth).
	if outs := l.Apply([]byte{0xa0}, nil); len(outs) != 0 {
		t.Fatalf("packet 0 should be held, got %d deliveries", len(outs))
	}
	if outs := l.Apply([]byte{0xa1}, nil); len(outs) != 0 {
		t.Fatalf("packet 1 should be held, got %d deliveries", len(outs))
	}
	// Offering packet 2 (ordinal 2) releases packet 0 (release = 0+2).
	outs := l.Apply([]byte{0xa2}, nil)
	if len(outs) != 1 || outs[0].Data[0] != 0xa0 {
		t.Fatalf("expected delayed packet 0 released at ordinal 2, got %v", outs)
	}
	// Flush drains the rest in hold order.
	fl := l.Flush()
	if len(fl) != 2 || fl[0].Data[0] != 0xa1 || fl[1].Data[0] != 0xa2 {
		t.Fatalf("flush returned %v", fl)
	}
}

func TestLaneCorruptAndTruncateDamageCopies(t *testing.T) {
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	lc := NewLane(Rates{Corrupt: 1}, 8)
	outs := lc.Apply(orig, nil)
	if len(outs) != 1 || bytes.Equal(outs[0].Data, orig) {
		t.Fatal("corrupt lane delivered pristine bytes")
	}
	if !bytes.Equal(orig, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	lt := NewLane(Rates{Truncate: 1}, 9)
	outs = lt.Apply(orig, nil)
	if len(outs) != 1 || len(outs[0].Data) >= len(orig) || !bytes.Equal(outs[0].Data, orig[:len(outs[0].Data)]) {
		t.Fatalf("truncate fate wrong: %v", outs)
	}
}

// TestLanePartitionWindow: the scripted ordinal window black-holes traffic
// and manual SetCut does the same, including holding back delayed releases.
func TestLanePartitionWindow(t *testing.T) {
	l := NewLane(Rates{PartitionFrom: 2, PartitionLen: 3}, 4)
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, len(l.Apply([]byte{byte(i)}, nil)))
	}
	want := []int{1, 1, 0, 0, 0, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition window: deliveries %v, want %v", got, want)
		}
	}
	if l.Stats().Partitioned != 3 {
		t.Fatalf("partitioned = %d, want 3", l.Stats().Partitioned)
	}

	m := NewLane(Rates{}, 5)
	m.SetCut(true)
	if outs := m.Apply([]byte{1}, nil); len(outs) != 0 {
		t.Fatal("cut lane delivered")
	}
	m.SetCut(false)
	if outs := m.Apply([]byte{2}, nil); len(outs) != 1 {
		t.Fatal("healed lane did not deliver")
	}
}

// TestLaneBurstConcentratesFaults: with a burst profile, drops concentrate
// inside the burst windows.
func TestLaneBurstConcentratesFaults(t *testing.T) {
	r := Rates{Drop: 0.1, BurstEvery: 100, BurstLen: 20, BurstBoost: 8}
	l := NewLane(r, 11)
	inBurst, outBurst := 0, 0
	inN, outN := 0, 0
	for i := 0; i < 10000; i++ {
		dropped := len(l.Apply([]byte{1, 2}, nil)) == 0
		if i%100 < 20 {
			inN++
			if dropped {
				inBurst++
			}
		} else {
			outN++
			if dropped {
				outBurst++
			}
		}
	}
	fIn := float64(inBurst) / float64(inN)
	fOut := float64(outBurst) / float64(outN)
	if fIn < 3*fOut {
		t.Fatalf("burst drop fraction %.3f not concentrated vs %.3f outside", fIn, fOut)
	}
}

func udpPair(t *testing.T) (*net.UDPConn, *net.UDPConn) {
	t.Helper()
	a, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestZeroRateBitIdentity is the CI gate: a zero-rate chaos wrapper around
// a real UDP socket must deliver the exact byte stream the bare socket
// delivers — same payloads, same count, same order — in both directions.
func TestZeroRateBitIdentity(t *testing.T) {
	run := func(wrap bool) [][]byte {
		a, b := udpPair(t)
		var receiver PacketConn = b
		if wrap {
			receiver = Wrap(b, Config{Seed: 123})
		}
		src := rng.New(77)
		var sent [][]byte
		for i := 0; i < 64; i++ {
			pkt := make([]byte, 12+src.IntN(100))
			for j := range pkt {
				pkt[j] = byte(src.Uint64())
			}
			sent = append(sent, pkt)
		}
		var got [][]byte
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 64<<10)
			receiver.SetReadDeadline(time.Now().Add(5 * time.Second))
			for len(got) < len(sent) {
				n, _, err := receiver.ReadFromUDP(buf)
				if err != nil {
					return
				}
				got = append(got, append([]byte(nil), buf[:n]...))
			}
		}()
		baddr := b.LocalAddr().(*net.UDPAddr)
		for _, pkt := range sent {
			if _, err := a.WriteToUDP(pkt, baddr); err != nil {
				t.Error(err)
			}
			time.Sleep(200 * time.Microsecond) // keep loopback delivery ordered
		}
		<-done
		// Echo direction: write back through the (possibly wrapped) socket.
		var echoed [][]byte
		a.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64<<10)
		aaddr := a.LocalAddr().(*net.UDPAddr)
		for _, pkt := range got {
			if _, err := receiver.WriteToUDP(pkt, aaddr); err != nil {
				t.Error(err)
			}
			n, _, err := a.ReadFromUDP(buf)
			if err != nil {
				t.Fatalf("echo read: %v", err)
			}
			echoed = append(echoed, append([]byte(nil), buf[:n]...))
		}
		return echoed
	}
	bare := run(false)
	wrapped := run(true)
	if len(bare) != len(wrapped) {
		t.Fatalf("delivery count differs: bare %d, zero-rate wrapped %d", len(bare), len(wrapped))
	}
	for i := range bare {
		if !bytes.Equal(bare[i], wrapped[i]) {
			t.Fatalf("packet %d differs: bare %x vs wrapped %x", i, bare[i], wrapped[i])
		}
	}
}

// TestConnDupQueues: a duplicated inbound datagram surfaces as two
// successive reads.
func TestConnDupQueues(t *testing.T) {
	a, b := udpPair(t)
	w := Wrap(b, Config{Seed: 1, Inbound: Rates{Dup: 1}})
	pkt := []byte{1, 2, 3, 4}
	if _, err := a.WriteToUDP(pkt, b.LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	w.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 2; i++ {
		n, _, err := w.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], pkt) {
			t.Fatalf("read %d: got %x", i, buf[:n])
		}
	}
}
