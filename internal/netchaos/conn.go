package netchaos

import (
	"net"
	"sync"
	"time"
)

// PacketConn is the unconnected-UDP surface the serving stack actually
// uses — *net.UDPConn satisfies it, and so does a chaos-wrapped Conn, so
// `metaai-serve`'s read loop and the fleet router accept either.
type PacketConn interface {
	ReadFromUDP(b []byte) (int, *net.UDPAddr, error)
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
	SetReadDeadline(t time.Time) error
	LocalAddr() net.Addr
	Close() error
}

// Conn wraps an unconnected UDP socket with per-direction chaos lanes.
// Reads pull datagrams through the inbound lane (dropped frames are read
// past transparently; duplicated/reordered ones queue for later Read
// calls); writes fan out through the outbound lane. A send the lane drops
// still reports success to the caller — chaos is invisible to the
// application, exactly like a real lossy link.
type Conn struct {
	inner PacketConn
	in    *Lane
	out   *Lane

	rmu   sync.Mutex
	rbuf  []byte
	queue []Packet
}

// Wrap layers chaos over inner. The two lanes are seeded from cfg.Seed
// with per-direction salts, so inbound and outbound fates are independent
// reproducible streams.
func Wrap(inner PacketConn, cfg Config) *Conn {
	return &Conn{
		inner: inner,
		in:    NewLane(cfg.Inbound, cfg.Seed^inboundSalt),
		out:   NewLane(cfg.Outbound, cfg.Seed^outboundSalt),
		rbuf:  make([]byte, 64<<10),
	}
}

// Lane exposes the lane for a direction (for SetCut partitions and fault
// counters in tests).
func (c *Conn) Lane(d Dir) *Lane {
	if d == Inbound {
		return c.in
	}
	return c.out
}

// Partition toggles a manual one-way partition on the given direction.
func (c *Conn) Partition(d Dir, on bool) { c.Lane(d).SetCut(on) }

func (c *Conn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		if len(c.queue) > 0 {
			p := c.queue[0]
			c.queue = c.queue[1:]
			return copy(b, p.Data), p.Addr, nil
		}
		n, addr, err := c.inner.ReadFromUDP(c.rbuf)
		if err != nil {
			return 0, nil, err
		}
		outs := c.in.Apply(c.rbuf[:n], addr)
		if len(outs) == 0 {
			continue // dropped/held: read the next datagram
		}
		// outs[0] may alias rbuf (zero-rate fast path): consume it before
		// the next inner read; the rest are fresh copies and can queue.
		c.queue = append(c.queue, outs[1:]...)
		return copy(b, outs[0].Data), outs[0].Addr, nil
	}
}

func (c *Conn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	for _, p := range c.out.Apply(b, addr) {
		if _, err := c.inner.WriteToUDP(p.Data, p.Addr); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }
func (c *Conn) LocalAddr() net.Addr               { return c.inner.LocalAddr() }
func (c *Conn) Close() error                      { return c.inner.Close() }

// StreamConn is the connected-UDP surface the probe client uses —
// *net.UDPConn after DialUDP satisfies it.
type StreamConn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// Stream wraps a connected UDP socket (the probe client's side) with the
// same per-direction chaos lanes as Conn.
type Stream struct {
	inner StreamConn
	in    *Lane
	out   *Lane

	rmu   sync.Mutex
	rbuf  []byte
	queue []Packet
}

// WrapStream layers chaos over a connected socket.
func WrapStream(inner StreamConn, cfg Config) *Stream {
	return &Stream{
		inner: inner,
		in:    NewLane(cfg.Inbound, cfg.Seed^inboundSalt),
		out:   NewLane(cfg.Outbound, cfg.Seed^outboundSalt),
		rbuf:  make([]byte, 64<<10),
	}
}

// Lane exposes the lane for a direction.
func (s *Stream) Lane(d Dir) *Lane {
	if d == Inbound {
		return s.in
	}
	return s.out
}

func (s *Stream) Read(b []byte) (int, error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	for {
		if len(s.queue) > 0 {
			p := s.queue[0]
			s.queue = s.queue[1:]
			return copy(b, p.Data), nil
		}
		n, err := s.inner.Read(s.rbuf)
		if err != nil {
			return 0, err
		}
		outs := s.in.Apply(s.rbuf[:n], nil)
		if len(outs) == 0 {
			continue
		}
		s.queue = append(s.queue, outs[1:]...)
		return copy(b, outs[0].Data), nil
	}
}

func (s *Stream) Write(b []byte) (int, error) {
	for _, p := range s.out.Apply(b, nil) {
		if _, err := s.inner.Write(p.Data); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

func (s *Stream) SetReadDeadline(t time.Time) error { return s.inner.SetReadDeadline(t) }
func (s *Stream) Close() error                      { return s.inner.Close() }
