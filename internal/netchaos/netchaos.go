// Package netchaos is a deterministic, seeded packet-fault layer for the
// UDP transports the serving stack speaks: it drops, duplicates, delays
// (reorders), truncates, and corrupts datagrams, cuts one-way partitions,
// and concentrates faults into bursty episodes — the failure repertoire of
// a real over-the-air link, on a loopback socket.
//
// Determinism contract: every fault decision is drawn from an rng stream
// seeded per (Config.Seed, direction), and is a pure function of that seed
// and the packet's offered ordinal within its lane — no wall clock, no
// global state. Reordering is expressed in packet-ordinal space (a delayed
// datagram is re-delivered after DelayDepth later packets pass), not timer
// space, so a single-threaded episode replays byte-for-byte: same seed,
// same packet fates. Under live concurrent sockets the fates per ordinal
// are still fixed; only which packet draws which ordinal follows the
// scheduler.
//
// A lane at zero rates consumes no randomness and passes the original
// slice through untouched — byte-identical to no chaos layer at all, which
// `make chaosgate` pins (mirroring the faults-layer zero-rate gate).
package netchaos

import (
	"net"
	"sync"

	"repro/internal/rng"
)

// Dir names one direction through a wrapped transport.
type Dir int

const (
	// Inbound is the receive path (datagrams arriving at the wrapped socket).
	Inbound Dir = iota
	// Outbound is the send path.
	Outbound
)

// Rates configures one lane's fault mix. All rates are probabilities in
// [0, 1] per offered packet; a zero-valued Rates is a transparent lane.
type Rates struct {
	// Drop is the probability a packet vanishes.
	Drop float64
	// Dup is the probability a delivered packet is delivered twice.
	Dup float64
	// Delay is the probability a packet is held and re-delivered after
	// DelayDepth later packets pass — reordering in ordinal space.
	Delay float64
	// Corrupt is the probability a delivered packet has one bit flipped.
	Corrupt float64
	// Truncate is the probability a delivered packet is cut short.
	Truncate float64
	// DelayDepth is how many subsequent packets overtake a delayed one
	// (default 2).
	DelayDepth int
	// BurstEvery/BurstLen carve periodic fault storms: within every
	// BurstEvery-packet window, the first BurstLen packets see all rates
	// multiplied by BurstBoost (default 4, capped at probability 1). Zero
	// disables bursts.
	BurstEvery, BurstLen int
	BurstBoost           float64
	// PartitionFrom/PartitionLen black-hole the lane for an ordinal window
	// [PartitionFrom, PartitionFrom+PartitionLen): a scripted transient
	// one-way partition for deterministic episodes. Zero PartitionLen
	// disables it; SetCut is the manual equivalent for live tests.
	PartitionFrom, PartitionLen uint64
}

// active reports whether the lane can ever touch a packet.
func (r Rates) active() bool {
	return r.Drop > 0 || r.Dup > 0 || r.Delay > 0 || r.Corrupt > 0 ||
		r.Truncate > 0 || r.PartitionLen > 0
}

// Mix is a balanced fault mix at the given severity: drop and reorder at
// the full rate, duplication at half, payload damage (truncate/corrupt) at
// a fifth each — roughly the loss-dominated profile of a congested
// wireless link.
func Mix(rate float64) Rates {
	return Rates{
		Drop:     rate,
		Delay:    rate,
		Dup:      rate / 2,
		Truncate: rate / 5,
		Corrupt:  rate / 5,
	}
}

// Config seeds a wrapped transport's two lanes.
type Config struct {
	Seed              uint64
	Inbound, Outbound Rates
}

// lane seeds are salted per direction so the two fate streams are
// independent.
const (
	inboundSalt  = 0x1b0a12d5eed5a17e
	outboundSalt = 0x0a7b0a12d5eed5a1
)

// Packet is one delivery decision: the bytes to hand on and, for
// unconnected sockets, the peer address they belong to.
type Packet struct {
	Data []byte
	Addr *net.UDPAddr
}

type heldPacket struct {
	pkt     Packet
	release uint64 // deliver after this offered ordinal has passed
}

// LaneStats counts what a lane did to its traffic.
type LaneStats struct {
	Offered, Dropped, Duplicated, Delayed, Corrupted, Truncated, Partitioned uint64
}

// Lane applies one direction's fault mix to a packet stream. Safe for
// concurrent use; fates are serialized in offered order.
type Lane struct {
	mu   sync.Mutex
	r    Rates
	src  *rng.Source
	ord  uint64
	held []heldPacket
	cut  bool
	st   LaneStats
}

// NewLane returns a lane with the given fault mix, seeded deterministically.
func NewLane(r Rates, seed uint64) *Lane {
	return &Lane{r: r, src: rng.New(seed)}
}

// SetCut toggles a manual one-way partition: while cut, every offered
// packet is black-holed and held packets stay held.
func (l *Lane) SetCut(on bool) {
	l.mu.Lock()
	l.cut = on
	l.mu.Unlock()
}

// Stats returns a snapshot of the lane's fault counters.
func (l *Lane) Stats() LaneStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Apply offers one packet to the lane and returns what actually gets
// delivered, in order: the packet's own fate first (absent if dropped,
// delayed, or partitioned; possibly truncated/corrupted/duplicated), then
// any previously delayed packets whose release ordinal has passed. At zero
// rates with no cut, the returned single Packet aliases data — the
// byte-identical passthrough; in every other outcome the returned slices
// are fresh copies, so callers may reuse data immediately except for that
// aliased fast path (which they consume before the next read).
func (l *Lane) Apply(data []byte, addr *net.UDPAddr) []Packet {
	l.mu.Lock()
	defer l.mu.Unlock()
	ord := l.ord
	l.ord++
	l.st.Offered++
	if !l.r.active() && !l.cut {
		return []Packet{{Data: data, Addr: addr}}
	}
	if l.cut || (l.r.PartitionLen > 0 && ord >= l.r.PartitionFrom && ord < l.r.PartitionFrom+l.r.PartitionLen) {
		// One-way partition: the packet vanishes and time stands still for
		// held packets too — nothing crosses a cut link in this direction.
		l.st.Partitioned++
		return nil
	}
	boost := 1.0
	if l.r.BurstEvery > 0 && l.r.BurstLen > 0 && ord%uint64(l.r.BurstEvery) < uint64(l.r.BurstLen) {
		if boost = l.r.BurstBoost; boost <= 0 {
			boost = 4
		}
	}
	// hit consumes one draw per configured (non-zero) fault class, in a
	// fixed order — the fate schedule is reproducible from the seed alone.
	hit := func(rate float64) bool {
		if rate <= 0 {
			return false
		}
		p := rate * boost
		if p > 1 {
			p = 1
		}
		return l.src.Float64() < p
	}
	var out []Packet
	switch {
	case hit(l.r.Drop):
		l.st.Dropped++
	case hit(l.r.Delay):
		depth := l.r.DelayDepth
		if depth <= 0 {
			depth = 2
		}
		cp := append([]byte(nil), data...)
		l.held = append(l.held, heldPacket{Packet{cp, addr}, ord + uint64(depth)})
		l.st.Delayed++
	default:
		deliver := data
		if hit(l.r.Truncate) && len(data) > 1 {
			cut := 1 + int(l.src.Float64()*float64(len(data)-1))
			deliver = append([]byte(nil), data[:cut]...)
			l.st.Truncated++
		} else {
			deliver = append([]byte(nil), deliver...)
		}
		if hit(l.r.Corrupt) && len(deliver) > 0 {
			i := int(l.src.Float64() * float64(len(deliver)))
			deliver[i] ^= 1 << (l.src.Uint64() % 8)
			l.st.Corrupted++
		}
		out = append(out, Packet{deliver, addr})
		if hit(l.r.Dup) {
			cp := append([]byte(nil), deliver...)
			out = append(out, Packet{cp, addr})
			l.st.Duplicated++
		}
	}
	// Release delayed packets that enough traffic has now overtaken.
	kept := l.held[:0]
	for _, h := range l.held {
		if h.release <= ord {
			out = append(out, h.pkt)
		} else {
			kept = append(kept, h)
		}
	}
	l.held = kept
	return out
}

// Flush releases every held packet regardless of its release ordinal —
// end-of-episode drain so a deterministic replay never strands a delayed
// frame.
func (l *Lane) Flush() []Packet {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Packet, 0, len(l.held))
	for _, h := range l.held {
		out = append(out, h.pkt)
	}
	l.held = l.held[:0]
	return out
}
