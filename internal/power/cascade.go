package power

import (
	"fmt"
	"math"
)

// Per-layer power control for stacked-metasurface cascades (the
// SIM-with-power-control operating point): a K-layer cascade drives K
// control planes, and every extra re-scattering hop adds a noise floor that
// its drive amplitude divides down (ota.Options.HopNoise). This file holds
// the allocation arithmetic — how to split a drive-power budget across hops
// — and the cascade row of the Appendix A.4 energy table.

// UniformLayers returns k unit per-layer drive amplitudes (primary first) —
// the default operating point ota assumes when Options.LayerPower is nil.
func UniformLayers(k int) []float64 {
	if k < 1 {
		k = 1
	}
	p := make([]float64, k)
	for i := range p {
		p[i] = 1
	}
	return p
}

// AllocateLayers returns per-layer drive amplitudes (primary first) for a
// cascade with len(hopNoise) extra hops: the primary keeps unit drive, and
// the extra hops split a drive-squared budget to minimize the total
// hop-noise inflation Σ_k c_k/p_k² subject to Σ_k p_k² = budget — the
// Lagrange solution p_k² ∝ √c_k, so a noisier hop earns more power. With
// equal coefficients the split is uniform; budget ≤ 0 defaults to one
// drive-squared unit per hop (the uniform allocation's total). Hop-noise
// coefficients are clamped to 1/16 of the largest so no hop is starved to a
// vanishing amplitude (the hop still carries the signal).
func AllocateLayers(hopNoise []float64, budget float64) []float64 {
	p := make([]float64, 1+len(hopNoise))
	p[0] = 1
	if len(hopNoise) == 0 {
		return p
	}
	if budget <= 0 {
		budget = float64(len(hopNoise))
	}
	var maxC float64
	for _, c := range hopNoise {
		if c > maxC {
			maxC = c
		}
	}
	if maxC <= 0 {
		for k := range hopNoise {
			p[k+1] = math.Sqrt(budget / float64(len(hopNoise)))
		}
		return p
	}
	floor := maxC / 16
	var sumSqrt float64
	for _, c := range hopNoise {
		sumSqrt += math.Sqrt(math.Max(c, floor))
	}
	for k, c := range hopNoise {
		p[k+1] = math.Sqrt(budget * math.Sqrt(math.Max(c, floor)) / sumSqrt)
	}
	return p
}

// HopNoiseBoost returns the receiver-noise inflation 1 + Σ_k c_k/p_k² of an
// allocation — the figure AllocateLayers minimizes and ota applies to the
// per-sample noise variance. power carries the primary amplitude first,
// exactly as AllocateLayers returns it.
func HopNoiseBoost(hopNoise, power []float64) float64 {
	if len(power) != 1+len(hopNoise) {
		panic(fmt.Sprintf("power: %d amplitudes for %d extra hops", len(power), len(hopNoise)))
	}
	boost := 1.0
	for k, c := range hopNoise {
		boost += c / (power[k+1] * power[k+1])
	}
	return boost
}

// MetaAICascadeRow is the Meta-AI line of the Appendix A.4 table for a
// K-layer stacked deployment: air time and transmit energy are unchanged
// (the hops are traversed at the speed of light within one symbol), server
// work stays an argmax, but every layer runs its own control plane for the
// duration of the schedule — MTS control energy scales by K.
func MetaAICascadeRow(w Workload, layers int) Row {
	if layers < 1 {
		panic(fmt.Sprintf("power: cascade with %d layers", layers))
	}
	rows := Table(w)
	r := rows[len(rows)-1] // the Meta-AI row
	r.System = fmt.Sprintf("Meta-AI x%d", layers)
	r.MTSMJ *= float64(layers)
	r.TotalMJ = r.TxMJ + r.ServerMJ + r.MTSMJ
	return r
}
