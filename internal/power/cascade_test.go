package power

import (
	"math"
	"testing"
)

func TestUniformLayers(t *testing.T) {
	if got := UniformLayers(3); len(got) != 3 || got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("UniformLayers(3) = %v", got)
	}
	if got := UniformLayers(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("UniformLayers(0) = %v", got)
	}
}

func TestAllocateLayersUniformWeights(t *testing.T) {
	p := AllocateLayers([]float64{0.1, 0.1, 0.1}, 0)
	if len(p) != 4 || p[0] != 1 {
		t.Fatalf("allocation = %v", p)
	}
	for k := 1; k < len(p); k++ {
		if math.Abs(p[k]-1) > 1e-12 {
			t.Fatalf("equal hop noise must split uniformly at unit amplitude: %v", p)
		}
	}
}

func TestAllocateLayersRespectsBudget(t *testing.T) {
	hop := []float64{0.3, 0.05, 0.12}
	budget := 2.5
	p := AllocateLayers(hop, budget)
	var sum2 float64
	for k := 1; k < len(p); k++ {
		sum2 += p[k] * p[k]
	}
	if math.Abs(sum2-budget) > 1e-9 {
		t.Fatalf("allocation spends %.6f of budget %.6f: %v", sum2, budget, p)
	}
	// The noisier hop must earn the larger amplitude.
	if !(p[1] > p[3] && p[3] > p[2]) {
		t.Fatalf("amplitudes not ordered by hop noise: %v", p)
	}
}

func TestAllocateLayersBeatsUniform(t *testing.T) {
	hop := []float64{0.4, 0.02}
	opt := AllocateLayers(hop, float64(len(hop)))
	uni := UniformLayers(1 + len(hop))
	if got, want := HopNoiseBoost(hop, opt), HopNoiseBoost(hop, uni); got >= want {
		t.Fatalf("optimal allocation boost %.6f not below uniform %.6f", got, want)
	}
}

func TestAllocateLayersDegenerateWeights(t *testing.T) {
	// All-zero hop noise still yields positive amplitudes (the hop carries
	// the signal even when it adds no noise).
	for _, p := range AllocateLayers([]float64{0, 0}, 0) {
		if !(p > 0) {
			t.Fatalf("degenerate weights must keep positive amplitudes: %v", p)
		}
	}
	// A starved hop is clamped, not zeroed.
	p := AllocateLayers([]float64{1, 0}, 2)
	if !(p[2] > 0) {
		t.Fatalf("clamped hop lost its amplitude: %v", p)
	}
}

func TestMetaAICascadeRow(t *testing.T) {
	w := MNIST()
	base := findRow(Table(w), "Meta-AI", "LNN")
	r := MetaAICascadeRow(w, 3)
	if r.System != "Meta-AI x3" {
		t.Fatalf("system label = %q", r.System)
	}
	if math.Abs(r.MTSMJ-3*base.MTSMJ) > 1e-12 {
		t.Fatalf("3-layer MTS energy %.6f, want 3x %.6f", r.MTSMJ, base.MTSMJ)
	}
	if r.TxMJ != base.TxMJ || r.ServerMJ != base.ServerMJ || r.TxMs != base.TxMs {
		t.Fatalf("cascade row must only change MTS energy: %+v vs %+v", r, base)
	}
	if math.Abs(r.TotalMJ-(r.TxMJ+r.ServerMJ+r.MTSMJ)) > 1e-12 {
		t.Fatalf("total not re-summed: %+v", r)
	}
	if one := MetaAICascadeRow(w, 1); one.MTSMJ != base.MTSMJ {
		t.Fatalf("1-layer cascade row must match the seed row")
	}
}
