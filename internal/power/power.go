// Package power implements the end-to-end energy and latency model of
// Appendix A.4 (Tables 2 and 3): for a single inference, how long does the
// pipeline take and how much energy does it burn, for five systems — CPU and
// RTX 4080-class GPU servers each running ResNet-18 and the software LNN,
// and MetaAI computing in the air.
//
// The model is calibrated against the paper's measured rows: server compute
// time/energy per (device, model) follows a power law a·bytes^b fitted
// exactly through the paper's MNIST (784-byte) and AFHQ (4505-byte) points,
// radio transmission runs at the link rate and power implied by the
// baseline rows, and MetaAI's costs follow its architecture — R sequential
// replays of the symbol stream, near-zero server work (an argmax over R
// accumulators), and MTS control power for the duration of the
// transmission.
package power

import (
	"fmt"
	"math"
)

// Paper calibration anchors (Tables 2–3).
const (
	mnistBytes = 784  // 28×28 single-channel image
	afhqBytes  = 4505 // AFHQ input as transmitted by the paper's baseline

	// Baseline radio: 0.157 ms for 784 bytes → 39.95 Mbps; 0.856 mJ over
	// 0.157 ms → 5.45 W radio draw.
	linkRateBps  = float64(mnistBytes*8) / 0.157e-3
	radioPowerW  = 0.856e-3 / 0.157e-3
	symbolRateHz = 1e6 // MetaAI transmitter (§4)

	// MetaAI server work: magnitude + argmax over R accumulators.
	metaaiServerTimeMsPerClass   = 0.013 / 10
	metaaiServerEnergyMJPerClass = 0.008 / 10

	// MTS control: the paper's 2.353 mJ over 1.568 ms ≈ 1.5 W while the
	// schedule plays.
	mtsPowerW = 2.353e-3 / 1.568e-3
)

// Device identifies a server compute platform.
type Device int

const (
	// CPU is the paper's AMD Ryzen server CPU.
	CPU Device = iota
	// GPU4080 is the paper's NVIDIA RTX 4080.
	GPU4080
)

// String returns the device label used in Tables 2–3.
func (d Device) String() string {
	if d == CPU {
		return "CPU"
	}
	return "4080 GPU"
}

// Model identifies the network being served.
type Model int

const (
	// ResNet18 is the deep high-accuracy baseline.
	ResNet18 Model = iota
	// LNN is the single-layer complex linear network.
	LNN
)

// String returns the model label used in Tables 2–3.
func (m Model) String() string {
	if m == ResNet18 {
		return "ResNet-18"
	}
	return "LNN"
}

// powerLaw is t = a·bytes^b (and likewise for energy), fitted through the
// paper's two measured points.
type powerLaw struct{ a, b float64 }

func fit(bytes1, v1, bytes2, v2 float64) powerLaw {
	b := math.Log(v2/v1) / math.Log(bytes2/bytes1)
	return powerLaw{a: v1 / math.Pow(bytes1, b), b: b}
}

func (p powerLaw) at(bytes float64) float64 { return p.a * math.Pow(bytes, p.b) }

type deviceModel struct {
	device Device
	model  Model
}

// Calibration from Table 2 (MNIST, 784 B) and Table 3 (AFHQ, 4505 B).
var (
	serverTimeMs = map[deviceModel]powerLaw{
		{CPU, ResNet18}:     fit(mnistBytes, 7.71, afhqBytes, 16.695),
		{CPU, LNN}:          fit(mnistBytes, 1.96, afhqBytes, 4.621),
		{GPU4080, ResNet18}: fit(mnistBytes, 4.30, afhqBytes, 7.147),
		{GPU4080, LNN}:      fit(mnistBytes, 3.99, afhqBytes, 5.247),
	}
	serverEnergyMJ = map[deviceModel]powerLaw{
		{CPU, ResNet18}:     fit(mnistBytes, 227.37, afhqBytes, 349.13),
		{CPU, LNN}:          fit(mnistBytes, 62.72, afhqBytes, 94.52),
		{GPU4080, ResNet18}: fit(mnistBytes, 182.37, afhqBytes, 213.99),
		{GPU4080, LNN}:      fit(mnistBytes, 124.7, afhqBytes, 155.02),
	}
)

// Workload describes one inference task.
type Workload struct {
	Name string
	// InputBytes is the per-sample payload the IoT device transmits.
	InputBytes int
	// Classes is R, the number of output categories (MetaAI replays the
	// stream once per class).
	Classes int
	// Parallelism divides MetaAI's replay count (§3.3); 0/1 means fully
	// sequential. The paper's Table 2/3 rows correspond to 1 (R replays ...
	// the 1.568 ms MNIST figure is exactly 10 sequential replays of
	// 0.157 ms).
	Parallelism int
	// Accuracy for the three model families, in percent (reported verbatim
	// in the table; measured values are substituted by the caller).
	ResNetAccPct, LNNAccPct, MetaAIAccPct float64
}

// MNIST returns the Table 2 workload with the paper's accuracy figures.
func MNIST() Workload {
	return Workload{
		Name: "MNIST", InputBytes: mnistBytes, Classes: 10,
		ResNetAccPct: 99.62, LNNAccPct: 92.75, MetaAIAccPct: 87.29,
	}
}

// AFHQ returns the Table 3 workload with the paper's accuracy figures.
func AFHQ() Workload {
	return Workload{
		Name: "AFHQ", InputBytes: afhqBytes, Classes: 3,
		ResNetAccPct: 96.07, LNNAccPct: 87.33, MetaAIAccPct: 80.22,
	}
}

// Row is one line of Tables 2–3. Times in ms, energies in mJ; MTS fields are
// zero for server systems.
type Row struct {
	System   string
	Model    string
	AccPct   float64
	TxMs     float64
	ServerMs float64
	TotalMs  float64
	TxMJ     float64
	ServerMJ float64
	MTSMJ    float64
	TotalMJ  float64
}

// baselineTx returns the radio time (ms) and energy (mJ) to ship the
// workload to the server.
func baselineTx(w Workload) (ms, mj float64) {
	sec := float64(w.InputBytes*8) / linkRateBps
	return sec * 1e3, radioPowerW * sec * 1e3
}

// metaaiTx returns MetaAI's on-air time (ms) and transmit energy (mJ): the
// stream is replayed once per class (divided by the parallelism factor), at
// the same radio power.
func metaaiTx(w Workload) (ms, mj float64) {
	passes := w.Classes
	if w.Parallelism > 1 {
		passes = (w.Classes + w.Parallelism - 1) / w.Parallelism
	}
	base, _ := baselineTx(w)
	ms = base * float64(passes)
	return ms, radioPowerW * ms
}

// Table computes all five rows of the Appendix A.4 table for a workload.
func Table(w Workload) []Row {
	if w.InputBytes <= 0 || w.Classes <= 0 {
		panic(fmt.Sprintf("power: invalid workload %+v", w))
	}
	txMs, txMJ := baselineTx(w)
	var rows []Row
	for _, dm := range []deviceModel{
		{CPU, ResNet18}, {CPU, LNN}, {GPU4080, ResNet18}, {GPU4080, LNN},
	} {
		acc := w.ResNetAccPct
		if dm.model == LNN {
			acc = w.LNNAccPct
		}
		sMs := serverTimeMs[dm].at(float64(w.InputBytes))
		sMJ := serverEnergyMJ[dm].at(float64(w.InputBytes))
		rows = append(rows, Row{
			System: dm.device.String(), Model: dm.model.String(), AccPct: acc,
			TxMs: txMs, ServerMs: sMs, TotalMs: txMs + sMs,
			TxMJ: txMJ, ServerMJ: sMJ, TotalMJ: txMJ + sMJ,
		})
	}
	mMs, mMJ := metaaiTx(w)
	serverMs := metaaiServerTimeMsPerClass * float64(w.Classes)
	serverMJ := metaaiServerEnergyMJPerClass * float64(w.Classes)
	mtsMJ := mtsPowerW * mMs
	rows = append(rows, Row{
		System: "Meta-AI", Model: "LNN", AccPct: w.MetaAIAccPct,
		TxMs: mMs, ServerMs: serverMs, TotalMs: mMs + serverMs,
		TxMJ: mMJ, ServerMJ: serverMJ, MTSMJ: mtsMJ, TotalMJ: mMJ + serverMJ + mtsMJ,
	})
	return rows
}
