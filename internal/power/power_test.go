package power

import (
	"math"
	"testing"
)

func findRow(rows []Row, system, model string) Row {
	for _, r := range rows {
		if r.System == system && r.Model == model {
			return r
		}
	}
	return Row{}
}

func TestTable2ReproducesPaperRows(t *testing.T) {
	rows := Table(MNIST())
	if len(rows) != 5 {
		t.Fatalf("Table 2 has %d rows, want 5", len(rows))
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	cpuLNN := findRow(rows, "CPU", "LNN")
	if !within(cpuLNN.TotalMs, 2.117, 0.02) || !within(cpuLNN.TotalMJ, 63.576, 0.02) {
		t.Errorf("CPU LNN row = %.3f ms / %.3f mJ, paper 2.117 / 63.576", cpuLNN.TotalMs, cpuLNN.TotalMJ)
	}
	meta := findRow(rows, "Meta-AI", "LNN")
	if !within(meta.TxMs, 1.568, 0.02) {
		t.Errorf("MetaAI tx = %.3f ms, paper 1.568", meta.TxMs)
	}
	if !within(meta.TotalMJ, 10.92, 0.05) {
		t.Errorf("MetaAI total energy = %.3f mJ, paper 10.92", meta.TotalMJ)
	}
	if !within(meta.MTSMJ, 2.353, 0.02) {
		t.Errorf("MetaAI MTS energy = %.3f mJ, paper 2.353", meta.MTSMJ)
	}
	gpuRes := findRow(rows, "4080 GPU", "ResNet-18")
	if !within(gpuRes.TotalMs, 4.457, 0.02) || !within(gpuRes.TotalMJ, 183.226, 0.02) {
		t.Errorf("GPU ResNet row = %.3f ms / %.3f mJ, paper 4.457 / 183.226", gpuRes.TotalMs, gpuRes.TotalMJ)
	}
}

func TestTable3ReproducesPaperRows(t *testing.T) {
	rows := Table(AFHQ())
	meta := findRow(rows, "Meta-AI", "LNN")
	if math.Abs(meta.TxMs-2.704) > 0.03 {
		t.Errorf("AFHQ MetaAI tx = %.3f ms, paper 2.704", meta.TxMs)
	}
	if math.Abs(meta.TotalMJ-18.82) > 0.8 {
		t.Errorf("AFHQ MetaAI total = %.3f mJ, paper 18.82", meta.TotalMJ)
	}
	cpuRes := findRow(rows, "CPU", "ResNet-18")
	if math.Abs(cpuRes.TotalMs-17.596) > 0.2 {
		t.Errorf("AFHQ CPU ResNet = %.3f ms, paper 17.596", cpuRes.TotalMs)
	}
}

func TestMetaAIWinsEfficiency(t *testing.T) {
	// The headline claims of Appendix A.4: MetaAI has the lowest total
	// energy, the lowest total latency, and negligible server compute.
	for _, w := range []Workload{MNIST(), AFHQ()} {
		rows := Table(w)
		meta := findRow(rows, "Meta-AI", "LNN")
		for _, r := range rows {
			if r.System == "Meta-AI" {
				continue
			}
			if meta.TotalMJ >= r.TotalMJ {
				t.Errorf("%s: MetaAI energy %.2f mJ not below %s %s %.2f mJ", w.Name, meta.TotalMJ, r.System, r.Model, r.TotalMJ)
			}
			if meta.TotalMs >= r.TotalMs {
				t.Errorf("%s: MetaAI latency %.3f ms not below %s %s %.3f ms", w.Name, meta.TotalMs, r.System, r.Model, r.TotalMs)
			}
			if meta.ServerMJ >= r.ServerMJ/100 {
				t.Errorf("%s: MetaAI server energy %.4f mJ not orders below %s %.2f mJ", w.Name, meta.ServerMJ, r.System, r.ServerMJ)
			}
		}
	}
}

func TestAccuracyOrdering(t *testing.T) {
	// ResNet > LNN > MetaAI in raw accuracy — the other side of the
	// trade-off.
	for _, w := range []Workload{MNIST(), AFHQ()} {
		if !(w.ResNetAccPct > w.LNNAccPct && w.LNNAccPct > w.MetaAIAccPct) {
			t.Errorf("%s accuracy ordering broken", w.Name)
		}
	}
}

func TestParallelismReducesAirTime(t *testing.T) {
	w := MNIST()
	seq := Table(w)
	w.Parallelism = 5
	par := Table(w)
	s := findRow(seq, "Meta-AI", "LNN")
	p := findRow(par, "Meta-AI", "LNN")
	if p.TxMs >= s.TxMs {
		t.Fatalf("parallelism did not cut air time: %.3f -> %.3f ms", s.TxMs, p.TxMs)
	}
	if math.Abs(p.TxMs-s.TxMs/5) > 1e-9 {
		t.Fatalf("5-way parallelism should cut air time 5×: %.3f -> %.3f", s.TxMs, p.TxMs)
	}
}

func TestScalingInterpolates(t *testing.T) {
	// The fitted power laws must be monotone in input size.
	w := MNIST()
	small := findRow(Table(w), "CPU", "ResNet-18")
	w.InputBytes = 2000
	mid := findRow(Table(w), "CPU", "ResNet-18")
	if mid.ServerMs <= small.ServerMs {
		t.Fatalf("server time must grow with input size: %.3f -> %.3f", small.ServerMs, mid.ServerMs)
	}
}

func TestInvalidWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid workload")
		}
	}()
	Table(Workload{})
}
