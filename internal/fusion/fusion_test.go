package fusion

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
)

func enc() nn.Encoder { return nn.Encoder{Scheme: modem.QAM256} }

func TestEncodeViewsValidation(t *testing.T) {
	md := dataset.MustLoadMulti("multipie", dataset.Quick, 1)
	if _, _, err := EncodeViews(md, 0, enc()); err == nil {
		t.Error("expected error for k=0")
	}
	if _, _, err := EncodeViews(md, 4, enc()); err == nil {
		t.Error("expected error for k beyond view count")
	}
}

func TestEncodeViewsConcatenation(t *testing.T) {
	md := dataset.MustLoadMulti("multipie", dataset.Quick, 2)
	train1, _, err := EncodeViews(md, 1, enc())
	if err != nil {
		t.Fatal(err)
	}
	train3, test3, err := EncodeViews(md, 3, enc())
	if err != nil {
		t.Fatal(err)
	}
	if train3.U != 3*train1.U {
		t.Fatalf("3-view U = %d, want 3×%d", train3.U, train1.U)
	}
	if len(train3.X) != len(train1.X) {
		t.Fatal("sample counts must not change with views")
	}
	for i := range train3.Labels {
		if train3.Labels[i] != train1.Labels[i] {
			t.Fatal("labels must align across view counts")
		}
	}
	if len(test3.X) == 0 {
		t.Fatal("empty test set")
	}
	// The first view's symbols must prefix the fused input.
	for i := range train1.X[0] {
		if train3.X[0][i] != train1.X[0][i] {
			t.Fatal("view 0 symbols must prefix the fused vector")
		}
	}
}

func TestSensorSpans(t *testing.T) {
	md := dataset.MustLoadMulti("uschad", dataset.Quick, 3)
	spans, err := SensorSpans(md, 2, enc())
	if err != nil {
		t.Fatal(err)
	}
	u := enc().InputLen(md.Views[0].Dim)
	if spans[0] != [2]int{0, u} || spans[1] != [2]int{u, 2 * u} {
		t.Fatalf("spans = %v", spans)
	}
	if _, err := SensorSpans(md, 0, enc()); err == nil {
		t.Error("expected error for k=0")
	}
}

// TestFusionImprovesAccuracy reproduces Fig 20's monotone gains for all
// three multi-sensor datasets, including the cross-modality USC-HAD case.
func TestFusionImprovesAccuracy(t *testing.T) {
	for _, name := range dataset.MultiNames() {
		md := dataset.MustLoadMulti(name, dataset.Quick, 1)
		var accs []float64
		for k := 1; k <= len(md.Views); k++ {
			m, _, test, err := TrainFused(md, k, enc(), nn.TrainConfig{Seed: 1, Epochs: 40})
			if err != nil {
				t.Fatal(err)
			}
			accs = append(accs, nn.Evaluate(m, test))
		}
		last := accs[len(accs)-1]
		if last <= accs[0] {
			t.Errorf("%s: fusion gave no gain: %v", name, accs)
		}
		if last-accs[0] < 0.08 {
			t.Errorf("%s: fusion gain %.3f too small (paper: up to +27%%): %v", name, last-accs[0], accs)
		}
		for i := 1; i < len(accs); i++ {
			if accs[i] < accs[i-1]-0.05 {
				t.Errorf("%s: accuracy should not drop when adding sensors: %v", name, accs)
			}
		}
	}
}
