// Package fusion implements MetaAI's multi-sensor late-stage fusion (§3.4):
// because the weights associated with different sensor inputs are
// independent in a linear network (Fig 10(b)), a single metasurface serves
// N sensors by time division — each sensor transmits in turn against its own
// weight schedule, and the receiver sums the per-sensor complex
// accumulators before taking the magnitude:
//
//	y_r^multi = | Σ_s Σ_i H_r^s(t_i^s) · x_i^s |       (Eqns 11–12)
//
// Digitally this is exactly a single LNN over the concatenation of the
// sensor inputs, which is how the fused network is trained; over the air it
// is one deployment whose schedule spans Σ_s U^s symbols.
package fusion

import (
	"fmt"

	"repro/internal/cplx"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

// EncodeViews encodes the first k views of a multi-sensor dataset and
// concatenates them sample-wise (train and test), producing the encoded
// sets of the fused network. k = 1 reproduces single-sensor operation.
func EncodeViews(md *dataset.MultiDataset, k int, enc nn.Encoder) (train, test *nn.EncodedSet, err error) {
	if k < 1 || k > len(md.Views) {
		return nil, nil, fmt.Errorf("fusion: k=%d out of [1, %d] for %s", k, len(md.Views), md.Name)
	}
	build := func(pick func(v dataset.View) []dataset.Sample) *nn.EncodedSet {
		n := len(pick(md.Views[0]))
		es := &nn.EncodedSet{
			X:       make([][]complex128, n),
			Labels:  make([]int, n),
			Classes: md.Classes,
		}
		for i := 0; i < n; i++ {
			var cat []complex128
			for v := 0; v < k; v++ {
				s := pick(md.Views[v])[i]
				cat = append(cat, enc.Encode(s.X)...)
			}
			es.X[i] = cat
			es.Labels[i] = pick(md.Views[0])[i].Label
		}
		if n > 0 {
			es.U = len(es.X[0])
		}
		return es
	}
	for v := 1; v < k; v++ {
		if len(md.Views[v].Train) != len(md.Views[0].Train) || len(md.Views[v].Test) != len(md.Views[0].Test) {
			return nil, nil, fmt.Errorf("fusion: views of %s are not aligned", md.Name)
		}
	}
	train = build(func(v dataset.View) []dataset.Sample { return v.Train })
	test = build(func(v dataset.View) []dataset.Sample { return v.Test })
	return train, test, nil
}

// SensorSpans returns the symbol-range [start, end) each of the first k
// views occupies within the fused input — the time-division schedule
// boundaries a deployment uses.
func SensorSpans(md *dataset.MultiDataset, k int, enc nn.Encoder) ([][2]int, error) {
	if k < 1 || k > len(md.Views) {
		return nil, fmt.Errorf("fusion: k=%d out of [1, %d]", k, len(md.Views))
	}
	spans := make([][2]int, k)
	pos := 0
	for v := 0; v < k; v++ {
		u := enc.InputLen(md.Views[v].Dim)
		spans[v] = [2]int{pos, pos + u}
		pos += u
	}
	return spans, nil
}

// Deployment is the immutable over-the-air deployment of a fused network:
// the single shared-metasurface schedule spanning every sensor's symbols,
// plus the time-division boundaries that say which schedule columns belong
// to which sensor. Like ota.Deployment it is safe to share freely; derive a
// Session per worker for concurrent inference.
type Deployment struct {
	*ota.Deployment
	// Spans holds the [start, end) symbol range of each fused sensor within
	// the schedule (SensorSpans order).
	Spans [][2]int
}

// NewDeployment solves the fused weight matrix into one time-division
// schedule and records the per-sensor spans. The spans must tile [0, cols)
// of the weight matrix.
func NewDeployment(w *cplx.Mat, spans [][2]int, opts ota.Options, src *rng.Source) (*Deployment, error) {
	pos := 0
	for s, sp := range spans {
		if sp[0] != pos || sp[1] < sp[0] {
			return nil, fmt.Errorf("fusion: span %d = [%d,%d) does not tile the input (want start %d)", s, sp[0], sp[1], pos)
		}
		pos = sp[1]
	}
	if pos != w.Cols {
		return nil, fmt.Errorf("fusion: spans cover %d symbols, weights have %d", pos, w.Cols)
	}
	d, err := ota.NewDeployment(w, opts, src)
	if err != nil {
		return nil, err
	}
	return &Deployment{Deployment: d, Spans: append([][2]int(nil), spans...)}, nil
}

// Sensors returns the number of fused sensors.
func (d *Deployment) Sensors() int { return len(d.Spans) }

// SensorSlice returns the view of a fused input that sensor s transmits —
// the symbols of its time-division slot.
func (d *Deployment) SensorSlice(x []complex128, s int) []complex128 {
	return x[d.Spans[s][0]:d.Spans[s][1]]
}

// TrainFused trains the fused LNN over the first k views.
func TrainFused(md *dataset.MultiDataset, k int, enc nn.Encoder, cfg nn.TrainConfig) (*nn.ComplexLNN, *nn.EncodedSet, *nn.EncodedSet, error) {
	train, test, err := EncodeViews(md, k, enc)
	if err != nil {
		return nil, nil, nil, err
	}
	m := nn.TrainLNN(train, cfg)
	return m, train, test, nil
}
