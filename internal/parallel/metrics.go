package parallel

import (
	"fmt"

	"repro/internal/obs"
)

// Parallel-scheme metrics: inference/transmission/symbol throughput, the
// deployed subchannel count, per-subchannel output counters (subcarrier or
// antenna utilization — the last group may be ragged, so high-index
// subchannels can legitimately run behind), and a wall-clock per-inference
// latency histogram recorded only while obs is enabled.
var (
	parInferences    = obs.NewCounter("parallel.inferences")
	parTransmissions = obs.NewCounter("parallel.transmissions")
	parSymbols       = obs.NewCounter("parallel.symbols")
	parChannels      = obs.NewGauge("parallel.channels")
	parLayers        = obs.NewGauge("parallel.layers")
	parInferSeconds  = obs.NewLatencyHistogram("parallel.infer.seconds")
)

// subchannelCounters returns one output counter per subchannel index.
// Handles are memoized by name in the registry, so deployments at the same
// channel count share them.
func subchannelCounters(n int) []*obs.Counter {
	out := make([]*obs.Counter, n)
	for ch := range out {
		out[ch] = obs.NewCounter(fmt.Sprintf("parallel.subchannel.%d.outputs", ch))
	}
	return out
}
