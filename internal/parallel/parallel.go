// Package parallel implements MetaAI's two parallelism schemes (§3.3).
// Sequential operation needs R transmissions per inference — one per output
// class. Both schemes compute several outputs in a single transmission by
// giving each output channel its own propagation-phase signature while the
// metasurface plays one shared per-symbol configuration:
//
//   - Subcarrier parallelism (Eqn 9): the data rides K OFDM subcarriers;
//     each meta-atom's phase response is frequency selective, so each
//     subcarrier sees a different effective weight for the same
//     configuration.
//   - Antenna parallelism (Eqn 10): L receive antennas at distinct angles
//     each see different per-atom path phases.
//
// Per symbol, deployment solves the joint problem "one configuration, K
// target weights" (mts.SolveMultiTarget). The residual grows with the
// channel count — the accuracy/latency trade-off of Fig 31.
//
// Like package ota, the engine is split along the mutability boundary: an
// immutable Deployment (shared configurations and realized responses) plus
// per-worker Sessions owning all stochastic runtime state; System binds the
// two for the historical single-threaded API.
//
// Substitution note (documented in DESIGN.md): at the paper's 40 kHz
// subcarrier spacing, free-space path-length differences alone cannot
// decorrelate subcarriers; the hardware's frequency selectivity comes from
// the meta-atoms' resonant response. The simulator models this as a
// per-atom group-delay dispersion τ_m whose scale is set so the evaluated
// subcarrier set spans the atoms' phase dynamic range, standing in for the
// prototype's measured dispersion.
package parallel

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/ota"
	"repro/internal/rng"
)

// FaultHook is the per-symbol fault interception contract, shared with the
// sequential engine: see ota.FaultHook for the determinism and ownership
// rules. For parallel sessions, BeginTransmission receives the GROUP index
// (one transmission computes a whole group) while Symbol still receives the
// absolute output index r.
type FaultHook = ota.FaultHook

// Plan provides per-output-channel path-phase sets for the joint solver.
type Plan struct {
	// Kind names the scheme ("subcarrier" or "antenna").
	Kind string
	// Paths[ch][atom] is the propagation phase of each atom toward channel
	// ch.
	Paths [][]float64
}

// Channels returns the number of parallel output channels.
func (p *Plan) Channels() int { return len(p.Paths) }

// NewSubcarrierPlan builds the per-subcarrier path phases: the base
// geometry phases plus each atom's dispersion slope times the subcarrier
// frequency offset. K subcarriers at the given spacing are centred on the
// carrier (§5.2 uses 5.25 GHz base and 40 kHz spacing).
func NewSubcarrierPlan(s *mts.Surface, g mts.Geometry, k int, spacingHz float64, src *rng.Source) (*Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("parallel: need at least one subcarrier, got %d", k)
	}
	if spacingHz <= 0 {
		return nil, fmt.Errorf("parallel: invalid subcarrier spacing %v Hz", spacingHz)
	}
	base := s.PathPhases(g)
	m := s.Atoms()
	// Per-atom effective group delay: scaled so one subcarrier step swings a
	// typical atom's phase by O(π/2) — adjacent subcarriers must be
	// decorrelated for the joint solver to assign them independent weights.
	// This stands in for the resonant atoms' measured frequency selectivity
	// (see the package comment and DESIGN.md).
	tauStd := 1 / (8 * spacingHz)
	taus := make([]float64, m)
	for i := range taus {
		taus[i] = src.Normal(0, tauStd)
	}
	p := &Plan{Kind: "subcarrier", Paths: make([][]float64, k)}
	for ch := 0; ch < k; ch++ {
		df := (float64(ch) - float64(k-1)/2) * spacingHz
		row := make([]float64, m)
		for a := 0; a < m; a++ {
			row[a] = cplx.WrapPhase(base[a] + 2*math.Pi*df*taus[a])
		}
		p.Paths[ch] = row
	}
	return p, nil
}

// NewSubcarrierPlanIntegerDelays builds a subcarrier plan whose per-atom
// dispersion is an integer number of OFDM samples: channel k's path phase
// for atom m is base_m − 2π·k·d_m/n. This is the exact discrete-time model
// that package waveform verifies at sample level (a delayed tap rotates
// subcarrier k by e^{−j2πkd/n}), so deployments built on it can be
// cross-checked against chip-accurate OFDM transmission. n is the OFDM
// size (power of two); delays are per-atom sample delays.
func NewSubcarrierPlanIntegerDelays(s *mts.Surface, g mts.Geometry, n int, delays []int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("parallel: need at least one subcarrier, got %d", n)
	}
	if len(delays) != s.Atoms() {
		return nil, fmt.Errorf("parallel: %d delays for %d atoms", len(delays), s.Atoms())
	}
	base := s.PathPhases(g)
	p := &Plan{Kind: "subcarrier", Paths: make([][]float64, n)}
	for k := 0; k < n; k++ {
		row := make([]float64, s.Atoms())
		for m := range row {
			row[m] = cplx.WrapPhase(base[m] - 2*math.Pi*float64(k)*float64(delays[m])/float64(n))
		}
		p.Paths[k] = row
	}
	return p, nil
}

// NewAntennaPlan builds per-antenna path phases for L receive antennas fanned
// around the nominal receiver direction with the given angular spread (the
// multi-antenna receiver array of §5.2's antenna-based implementation).
func NewAntennaPlan(s *mts.Surface, g mts.Geometry, l int, spreadDeg float64) (*Plan, error) {
	if l < 1 {
		return nil, fmt.Errorf("parallel: need at least one antenna, got %d", l)
	}
	if spreadDeg <= 0 {
		spreadDeg = 90
	}
	p := &Plan{Kind: "antenna", Paths: make([][]float64, l)}
	for ch := 0; ch < l; ch++ {
		gg := g
		if l > 1 {
			gg.RxAngleDeg = g.RxAngleDeg - spreadDeg/2 + spreadDeg*float64(ch)/float64(l-1)
		}
		p.Paths[ch] = s.PathPhases(gg)
	}
	return p, nil
}

// Options configures a parallel deployment.
type Options struct {
	Surface      *mts.Surface
	Controller   mts.Controller
	Channel      channel.Params
	SubSamples   int     // multipath cancellation, as in ota
	TargetScale  float64 // fraction of the joint dynamic range used
	JitterStd    float64
	SymbolRateHz float64
	// SyncSampler must be a pure function of its source argument:
	// concurrent sessions call it with their own independent sources.
	SyncSampler func(src *rng.Source) float64
	// Stack appends extra cascade layers behind the surface (see
	// ota.Options.Stack). In the parallel schemes the extras act as relays:
	// each holds one fixed phase-aligned configuration for the whole
	// inference — per-symbol weight realization stays on the primary while
	// the relays contribute a static per-hop complex gain. Static relays do
	// not reconfigure per symbol, so they add no reconfiguration jitter.
	Stack []ota.CascadeLayer
	// LayerPower is the per-layer drive amplitude (primary first); nil
	// means unit drive everywhere. See ota.Options.LayerPower.
	LayerPower []float64
	// HopNoise is the per-hop re-scattering noise coefficient; see
	// ota.Options.HopNoise.
	HopNoise float64
}

// NewOptions mirrors ota.NewOptions for the parallel schemes.
func NewOptions(src *rng.Source) Options {
	return Options{
		Surface:      mts.Prototype(src),
		Controller:   mts.PrototypeController(),
		Channel:      channel.Default(),
		SubSamples:   2,
		TargetScale:  0.5,
		JitterStd:    0.08,
		SymbolRateHz: 1e6,
	}
}

// Deployment is a solved parallel classifier: outputs are partitioned into
// groups of at most Channels() classes; each group is computed in one
// transmission. After NewDeployment returns it is immutable and safe to
// share across concurrent Sessions.
type Deployment struct {
	plan   *Plan
	opts   Options
	groups [][]int // output indices per transmission
	// Configs[g][i] is the shared configuration group g plays at symbol i.
	Configs [][]mts.Config
	// Realized[r][i]: physically realized response for output r at symbol i.
	Realized *cplx.Mat
	classes  int
	u        int
	sigRMS   float64
	ch       *channel.Model
	jitAtt   float64
	jitVar   float64
	noise2   float64

	// chanOutputs[ci] is how many outputs subchannel ci computes per
	// inference (the last group may be ragged); chanCounters are the
	// matching obs counters, resolved once at deployment.
	chanOutputs  []int64
	chanCounters []*obs.Counter

	// Cascade state: the static per-hop relay configurations, their composed
	// complex gain (1 for a single-surface deployment), the per-layer drive
	// amplitudes, and the hop-noise inflation applied to noise2.
	relayCfgs  []mts.Config
	relayGain  complex128
	power      []float64
	noiseBoost float64
}

// NewDeployment solves the shared per-symbol configurations realizing w
// (classes×U) across the plan's channels. When the plan has fewer channels
// than classes, outputs are processed in ⌈R/C⌉ sequential groups.
func NewDeployment(w *cplx.Mat, plan *Plan, opts Options) (*Deployment, error) {
	if opts.Surface == nil {
		return nil, fmt.Errorf("parallel: Deploy requires a surface")
	}
	c := plan.Channels()
	if c < 1 {
		return nil, fmt.Errorf("parallel: plan has no channels")
	}
	if opts.TargetScale <= 0 || opts.TargetScale > 1 {
		return nil, fmt.Errorf("parallel: TargetScale %v out of (0, 1]", opts.TargetScale)
	}
	if opts.SymbolRateHz <= 0 {
		opts.SymbolRateHz = 1e6
	}
	switches := 1
	if opts.SubSamples > 0 {
		switches = opts.SubSamples
	}
	if err := opts.Controller.ValidateSchedule(opts.Surface.Atoms(), opts.SymbolRateHz, switches); err != nil {
		return nil, err
	}
	maxW := w.MaxAbs()
	if maxW == 0 {
		return nil, fmt.Errorf("parallel: weight matrix is all zeros")
	}
	// Cascade state: a non-empty Stack turns the deployment into a relay
	// cascade — each extra layer holds its phase-aligned configuration,
	// normalized to a unit-magnitude gain at unit drive. With an empty Stack
	// every expression below reduces to the classic single-surface
	// arithmetic bit for bit (relayGain stays exactly 1+0i and is never
	// multiplied in).
	relayGain, gain := complex(1, 0), 1.0
	var relayCfgs []mts.Config
	var power []float64
	var noiseBoost float64
	if len(opts.Stack) > 0 {
		if opts.HopNoise < 0 || math.IsNaN(opts.HopNoise) {
			return nil, fmt.Errorf("parallel: HopNoise %v out of [0, inf)", opts.HopNoise)
		}
		power = opts.LayerPower
		if power == nil {
			power = make([]float64, 1+len(opts.Stack))
			for i := range power {
				power[i] = 1
			}
		}
		if len(power) != 1+len(opts.Stack) {
			return nil, fmt.Errorf("parallel: %d layer powers for %d layers", len(power), 1+len(opts.Stack))
		}
		for k, p := range power {
			if !(p > 0) || math.IsInf(p, 0) {
				return nil, fmt.Errorf("parallel: layer %d power %v out of (0, inf)", k, p)
			}
		}
		gain = power[0]
		relayCfgs = make([]mts.Config, len(opts.Stack))
		noiseBoost = 1
		for k, layer := range opts.Stack {
			if layer.Surface == nil {
				return nil, fmt.Errorf("parallel: cascade layer %d has no surface", k)
			}
			pp := layer.Surface.PathPhases(layer.Geometry)
			maxRk := layer.Surface.MaxResponse(pp)
			if maxRk == 0 {
				return nil, fmt.Errorf("parallel: cascade layer %d has zero max response", k)
			}
			cfg := layer.Surface.AlignedConfig(pp)
			relayCfgs[k] = cfg
			relayGain *= complex(power[k+1]/maxRk, 0) * layer.Surface.Response(cfg, pp)
			gain *= power[k+1]
			noiseBoost += opts.HopNoise / (power[k+1] * power[k+1])
		}
		relayGain *= complex(power[0], 0)
	}
	// Joint targets share the atom budget: scale by 1/√C so C simultaneous
	// constraints stay inside the reachable set. Relay hops multiply the
	// dynamic range by the composed drive gain (1 without a stack).
	maxR := opts.Surface.MaxResponse(plan.Paths[0])
	gamma := opts.TargetScale * maxR / (maxW * math.Sqrt(float64(c)))
	if len(opts.Stack) > 0 {
		gamma *= gain
	}

	d := &Deployment{
		plan:       plan,
		opts:       opts,
		Realized:   cplx.NewMat(w.Rows, w.Cols),
		classes:    w.Rows,
		u:          w.Cols,
		ch:         channel.New(opts.Channel),
		relayCfgs:  relayCfgs,
		relayGain:  relayGain,
		power:      power,
		noiseBoost: noiseBoost,
	}
	for start := 0; start < w.Rows; start += c {
		end := start + c
		if end > w.Rows {
			end = w.Rows
		}
		group := make([]int, 0, end-start)
		for r := start; r < end; r++ {
			group = append(group, r)
		}
		d.groups = append(d.groups, group)
	}
	var sumSq float64
	targets := make([]complex128, 0, c)
	paths := make([][]float64, 0, c)
	for _, group := range d.groups {
		groupCfgs := make([]mts.Config, w.Cols)
		for i := 0; i < w.Cols; i++ {
			targets = targets[:0]
			paths = paths[:0]
			for ci, r := range group {
				tgt := w.At(r, i) * complex(gamma, 0)
				if len(opts.Stack) > 0 {
					// The primary realizes target/relay so the composed
					// end-to-end response lands on the target.
					tgt /= relayGain
				}
				targets = append(targets, tgt)
				paths = append(paths, plan.Paths[ci])
			}
			cfg, _ := opts.Surface.SolveMultiTarget(targets, paths)
			groupCfgs[i] = cfg
			for ci, r := range group {
				h := opts.Surface.Response(cfg, plan.Paths[ci])
				if len(opts.Stack) > 0 {
					h = relayGain * h
				}
				d.Realized.Set(r, i, h)
				sumSq += real(h)*real(h) + imag(h)*imag(h)
			}
		}
		d.Configs = append(d.Configs, groupCfgs)
	}
	d.sigRMS = math.Sqrt(sumSq / float64(len(d.Realized.Data)))
	sig2 := opts.JitterStd * opts.JitterStd
	d.jitAtt = math.Exp(-sig2 / 2)
	d.jitVar = float64(opts.Surface.Atoms()) * (1 - math.Exp(-sig2))
	// SNR anchored at the 256-atom prototype aperture, as in ota.
	aperture := 256.0 / float64(opts.Surface.Atoms())
	d.noise2 = d.sigRMS * d.sigRMS * d.ch.Params().NoiseSigma2() * aperture * aperture
	if d.noiseBoost > 1 {
		d.noise2 *= d.noiseBoost
	}
	parChannels.Set(float64(c))
	if n := len(opts.Stack); n > 0 {
		parLayers.Set(float64(n + 1))
	}
	d.chanOutputs = make([]int64, c)
	for _, group := range d.groups {
		for ci := range group {
			d.chanOutputs[ci]++
		}
	}
	d.chanCounters = subchannelCounters(c)
	return d, nil
}

// Classes returns the number of output categories.
func (d *Deployment) Classes() int { return d.classes }

// InputLen returns the expected symbol-vector length U.
func (d *Deployment) InputLen() int { return d.u }

// Options returns the deployment's configuration.
func (d *Deployment) Options() Options { return d.opts }

// Plan returns the per-channel path-phase plan the deployment was solved
// for. The plan is read-only after deployment.
func (d *Deployment) Plan() *Plan { return d.plan }

// Group returns the output indices group g computes in one transmission.
// Outputs are partitioned in order: group g covers rows
// [g·C, min((g+1)·C, classes)) for C = Plan().Channels().
func (d *Deployment) Group(g int) []int { return d.groups[g] }

// WithResponses returns a copy of the deployment whose realized-response
// matrix is replaced by realized (classes×U), with the derived signal and
// noise statistics refreshed — the fault-injection hook for modeling stuck
// meta-atoms on a parallel deployment (see ota.Deployment.WithResponses).
func (d *Deployment) WithResponses(realized *cplx.Mat) (*Deployment, error) {
	if realized.Rows != d.classes || realized.Cols != d.u {
		return nil, fmt.Errorf("parallel: responses %dx%d for a %dx%d deployment", realized.Rows, realized.Cols, d.classes, d.u)
	}
	cp := *d
	cp.Realized = realized
	var sumSq float64
	for _, h := range realized.Data {
		sumSq += real(h)*real(h) + imag(h)*imag(h)
	}
	cp.sigRMS = math.Sqrt(sumSq / float64(len(realized.Data)))
	aperture := 256.0 / float64(d.opts.Surface.Atoms())
	cp.noise2 = cp.sigRMS * cp.sigRMS * cp.ch.Params().NoiseSigma2() * aperture * aperture
	if cp.noiseBoost > 1 {
		cp.noise2 *= cp.noiseBoost
	}
	return &cp, nil
}

// Layers returns the cascade depth (1 for a single-surface deployment).
func (d *Deployment) Layers() int { return 1 + len(d.opts.Stack) }

// RelayGain returns the composed static complex gain of the relay hops,
// including the primary drive amplitude (exactly 1+0i for a single-surface
// deployment — the factor is then never multiplied into any response).
func (d *Deployment) RelayGain() complex128 { return d.relayGain }

// RelayConfig returns the fixed phase-aligned configuration relay k
// (0-based among the extra layers) holds for every symbol.
func (d *Deployment) RelayConfig(k int) mts.Config { return d.relayCfgs[k] }

// Transmissions returns the sequential passes one inference needs.
func (d *Deployment) Transmissions() int { return len(d.groups) }

// AirTime returns one inference's on-air time.
func (d *Deployment) AirTime() float64 {
	return float64(len(d.groups)) * float64(d.u) / d.opts.SymbolRateHz
}

// NewSession binds a per-worker inference session to the deployment. The
// session takes ownership of src as its random stream.
func (d *Deployment) NewSession(src *rng.Source) *Session {
	return &Session{d: d, src: src}
}

// Sessions derives n independent sessions via deterministic seeded splits
// of src.
func (d *Deployment) Sessions(n int, src *rng.Source) []*Session {
	if n < 1 {
		n = 1
	}
	out := make([]*Session, n)
	for i := range out {
		out[i] = d.NewSession(src.Split())
	}
	return out
}

// Session is one worker's mutable view of a shared parallel Deployment; it
// owns the channel, noise, jitter, and sync-offset randomness of its
// inferences. Use one Session per goroutine.
type Session struct {
	d    *Deployment
	src  *rng.Source
	hook FaultHook
	span *trace.Span
}

// Deployment returns the shared immutable deployment.
func (s *Session) Deployment() *Deployment { return s.d }

// SetSpan parents the session's next inferences under a trace span (nil
// detaches); see ota.Session.SetSpan for the ownership and determinism
// rules.
func (s *Session) SetSpan(sp *trace.Span) *Session {
	s.span = sp
	return s
}

// SetFaultHook installs (or, with nil, removes) the session's fault hook
// and returns the session for chaining; see ota.Session.SetFaultHook.
func (s *Session) SetFaultHook(h FaultHook) *Session {
	s.hook = h
	return s
}

// Logits runs one over-the-air inference across all groups.
func (s *Session) Logits(x []complex128) []float64 {
	d := s.d
	if len(x) != d.u {
		panic(fmt.Sprintf("parallel: input length %d, deployed for U=%d", len(x), d.u))
	}
	t := obs.StartTimer()
	defer t.ObserveInto(parInferSeconds)
	parInferences.Inc()
	parTransmissions.Add(int64(len(d.groups)))
	parSymbols.Add(int64(len(d.groups)) * int64(d.u))
	for ci, n := range d.chanOutputs {
		d.chanCounters[ci].Add(n)
	}
	lsp := s.span.Child("parallel.logits")
	lsp.SetNum("groups", float64(len(d.groups)))
	lsp.SetNum("u", float64(d.u))
	out := make([]float64, d.classes)
	noise2 := d.noise2
	for g, group := range d.groups {
		var gsp *trace.Span
		if lsp != nil {
			gsp = lsp.Child("parallel.transmission")
			gsp.SetNum("group", float64(g))
			gsp.SetNum("subchannels", float64(len(group)))
		}
		if s.hook != nil {
			s.hook.BeginTransmission(g)
		}
		rz := d.ch.NewRealization(s.src.Split())
		var offset float64
		if d.opts.SyncSampler != nil {
			offset = d.opts.SyncSampler(s.src)
		}
		acc := make([]complex128, len(group))
		for i := range x {
			scale := rz.MTSScaleAt(i)
			var env complex128
			if d.opts.SubSamples == 0 {
				env = rz.EnvAt(i) * complex(d.sigRMS, 0)
			}
			for ci, r := range group {
				h := s.effectiveResponse(r, i, offset) * scale
				xi := x[i]
				var extra complex128
				if s.hook != nil {
					h, xi, extra = s.hook.Symbol(r, i, h, xi)
				}
				acc[ci] += (h+env)*xi + s.src.ComplexNormal(noise2)
				if extra != 0 {
					acc[ci] += extra
				}
			}
		}
		for ci, r := range group {
			out[r] = real(acc[ci])*real(acc[ci]) + imag(acc[ci])*imag(acc[ci])
			if gsp != nil {
				csp := gsp.Child("parallel.subchannel")
				csp.SetNum("subchannel", float64(ci))
				csp.SetNum("class", float64(r))
				csp.SetNum("acc_re", real(acc[ci]))
				csp.SetNum("acc_im", imag(acc[ci]))
				csp.End()
			}
		}
		gsp.End()
	}
	lsp.End()
	for r := range out {
		out[r] = math.Sqrt(out[r])
	}
	return out
}

func (s *Session) effectiveResponse(r, i int, offset float64) complex128 {
	d := s.d
	base := math.Floor(offset)
	frac := offset - base
	idx := func(k int) int {
		n := d.u
		return ((k % n) + n) % n
	}
	h := d.Realized.At(r, idx(i-int(base)))
	if frac >= 1e-9 {
		h1 := d.Realized.At(r, idx(i-int(base)-1))
		h = h*complex(1-frac, 0) + h1*complex(frac, 0)
	}
	if d.opts.JitterStd > 0 {
		h = h*complex(d.jitAtt, 0) + s.src.ComplexNormal(d.jitVar)
	}
	return h
}

// Predict classifies one encoded input.
func (s *Session) Predict(x []complex128) int {
	return cplx.Argmax(s.Logits(x))
}

// System couples a Deployment with one bound default Session, preserving
// the pre-split single-threaded API. For concurrent inference, share the
// embedded Deployment across per-worker Sessions.
type System struct {
	*Deployment
	sess *Session
}

// Deploy solves the shared per-symbol configurations realizing w and binds
// a default session drawing its runtime randomness from src — bit-compatible
// with the pre-split combined implementation.
func Deploy(w *cplx.Mat, plan *Plan, opts Options, src *rng.Source) (*System, error) {
	d, err := NewDeployment(w, plan, opts)
	if err != nil {
		return nil, err
	}
	return &System{Deployment: d, sess: d.NewSession(src)}, nil
}

// Session returns the system's bound default session.
func (s *System) Session() *Session { return s.sess }

// Sessions derives n independent per-worker sessions by splitting the
// system's bound session source.
func (s *System) Sessions(n int) []*Session {
	return s.Deployment.Sessions(n, s.sess.src)
}

// Logits runs one over-the-air inference on the default session.
func (s *System) Logits(x []complex128) []float64 { return s.sess.Logits(x) }

// Predict classifies one encoded input on the default session.
func (s *System) Predict(x []complex128) int { return s.sess.Predict(x) }
