package parallel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/ota"
	"repro/internal/rng"
)

func cascadeStack(t *testing.T, extra int) []ota.CascadeLayer {
	t.Helper()
	stack := make([]ota.CascadeLayer, extra)
	for k := range stack {
		s, err := mts.NewSurface(8, 8, 2, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		stack[k] = ota.CascadeLayer{
			Surface:  s,
			Geometry: mts.Geometry{TxDistM: 1.5, TxAngleDeg: 20, RxDistM: 2, RxAngleDeg: 30 + 5*float64(k)},
		}
	}
	return stack
}

func cascadeWeights(rows, cols int) *cplx.Mat {
	w := cplx.NewMat(rows, cols)
	src := rng.New(77)
	for i := range w.Data {
		w.Data[i] = complex(src.Normal(0, 1), src.Normal(0, 1))
	}
	return w
}

func TestParallelCascadeRelayGainUnit(t *testing.T) {
	// Unit-drive relays are normalized to unit-magnitude gains, so the
	// composed relay factor has magnitude ~1 and the realized responses stay
	// on the same dynamic range as a single-surface deployment.
	src := rng.New(11)
	opts := NewOptions(src.Split())
	opts.JitterStd = 0
	opts.Stack = cascadeStack(t, 2)
	w := cascadeWeights(4, 16)
	plan, err := NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(w, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Layers() != 3 {
		t.Fatalf("Layers() = %d, want 3", d.Layers())
	}
	if g := cmplx.Abs(d.RelayGain()); math.Abs(g-1) > 1e-12 {
		t.Fatalf("unit-drive relay gain magnitude %v, want 1", g)
	}
	for k := 0; k < 2; k++ {
		if len(d.RelayConfig(k)) != opts.Stack[k].Surface.Atoms() {
			t.Fatalf("relay %d config has %d atoms", k, len(d.RelayConfig(k)))
		}
	}
	sess := d.NewSession(rng.New(5))
	x := make([]complex128, 16)
	for i := range x {
		x[i] = complex(1, 0)
	}
	for _, v := range sess.Logits(x) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cascade logits not finite: %v", v)
		}
	}
}

func TestParallelCascadeHopNoiseBoost(t *testing.T) {
	src := rng.New(12)
	base := NewOptions(src.Split())
	base.Stack = cascadeStack(t, 2)
	w := cascadeWeights(4, 16)
	plan, err := NewSubcarrierPlan(base.Surface, mts.DefaultGeometry(), 2, 40e3, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewDeployment(w, plan, base)
	if err != nil {
		t.Fatal(err)
	}
	noisy := base
	noisy.HopNoise = 0.1
	nd, err := NewDeployment(w, plan, noisy)
	if err != nil {
		t.Fatal(err)
	}
	// Same realized responses, inflated receiver noise: 1 + 2*0.1/1².
	ratio := nd.noise2 / clean.noise2
	if math.Abs(ratio-1.2) > 1e-9 {
		t.Fatalf("hop-noise boost ratio %v, want 1.2", ratio)
	}
	// WithResponses must preserve the boost.
	cp, err := nd.WithResponses(nd.Realized)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp.noise2-nd.noise2) > 1e-15*nd.noise2 {
		t.Fatalf("WithResponses dropped the hop-noise boost: %v vs %v", cp.noise2, nd.noise2)
	}
}

func TestParallelCascadePowerScalesRange(t *testing.T) {
	src := rng.New(13)
	opts := NewOptions(src.Split())
	opts.Stack = cascadeStack(t, 1)
	w := cascadeWeights(4, 16)
	plan, err := NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := NewDeployment(w, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	boosted := opts
	boosted.LayerPower = []float64{1, 2}
	bd, err := NewDeployment(w, plan, boosted)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the relay drive doubles the end-to-end dynamic range.
	ratio := bd.sigRMS / unit.sigRMS
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("doubled relay drive scaled sigRMS by %v, want ~2", ratio)
	}
}

func TestParallelCascadeValidation(t *testing.T) {
	src := rng.New(14)
	w := cascadeWeights(4, 16)
	good := NewOptions(src.Split())
	plan, err := NewAntennaPlan(good.Surface, mts.DefaultGeometry(), 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(o *Options){
		"nil layer surface": func(o *Options) { o.Stack = []ota.CascadeLayer{{}} },
		"power arity":       func(o *Options) { o.Stack = cascadeStack(t, 1); o.LayerPower = []float64{1} },
		"zero power":        func(o *Options) { o.Stack = cascadeStack(t, 1); o.LayerPower = []float64{1, 0} },
		"negative hopnoise": func(o *Options) { o.Stack = cascadeStack(t, 1); o.HopNoise = -1 },
	}
	for name, mutate := range cases {
		o := good
		mutate(&o)
		if _, err := NewDeployment(w, plan, o); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
