package parallel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/rng"
)

var memo struct {
	model *nn.ComplexLNN
	test  *nn.EncodedSet
	acc   float64
}

func trained(t *testing.T) (*nn.ComplexLNN, *nn.EncodedSet, float64) {
	t.Helper()
	if memo.model == nil {
		ds := dataset.MustLoad("mnist", dataset.Quick, 1)
		enc := nn.Encoder{Scheme: modem.QAM256}
		train := nn.EncodeSet(ds.Train, ds.Classes, enc)
		memo.test = nn.EncodeSet(ds.Test, ds.Classes, enc)
		memo.model = nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 40})
		memo.acc = nn.Evaluate(memo.model, memo.test)
	}
	return memo.model, memo.test, memo.acc
}

func TestPlanValidation(t *testing.T) {
	src := rng.New(1)
	s := mts.Prototype(src)
	if _, err := NewSubcarrierPlan(s, mts.DefaultGeometry(), 0, 40e3, src); err == nil {
		t.Error("expected error for zero subcarriers")
	}
	if _, err := NewSubcarrierPlan(s, mts.DefaultGeometry(), 4, 0, src); err == nil {
		t.Error("expected error for zero spacing")
	}
	if _, err := NewAntennaPlan(s, mts.DefaultGeometry(), 0, 30); err == nil {
		t.Error("expected error for zero antennas")
	}
}

func TestSubcarrierPlanChannelsDiffer(t *testing.T) {
	src := rng.New(2)
	s := mts.Prototype(src)
	p, err := NewSubcarrierPlan(s, mts.DefaultGeometry(), 10, 40e3, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Channels() != 10 || p.Kind != "subcarrier" {
		t.Fatalf("plan = %s × %d", p.Kind, p.Channels())
	}
	// Distinct subcarriers must present meaningfully different phase sets.
	var diff float64
	for a := 0; a < s.Atoms(); a++ {
		diff += math.Abs(p.Paths[0][a] - p.Paths[9][a])
	}
	if diff/float64(s.Atoms()) < 0.2 {
		t.Fatalf("outermost subcarriers nearly identical (mean |Δφ| = %v); dispersion model inert", diff/float64(s.Atoms()))
	}
}

func TestAntennaPlanAnglesFan(t *testing.T) {
	src := rng.New(3)
	s := mts.Prototype(src)
	p, err := NewAntennaPlan(s, mts.DefaultGeometry(), 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p.Channels() != 3 || p.Kind != "antenna" {
		t.Fatalf("plan = %s × %d", p.Kind, p.Channels())
	}
	for ch := 1; ch < 3; ch++ {
		same := 0
		for a := 0; a < s.Atoms(); a++ {
			if p.Paths[ch][a] == p.Paths[0][a] {
				same++
			}
		}
		if same > s.Atoms()/4 {
			t.Fatalf("antenna %d shares %d path phases with antenna 0", ch, same)
		}
	}
}

func TestMultiTargetSolverSatisfiesAllChannels(t *testing.T) {
	src := rng.New(4)
	s := mts.Prototype(src)
	plan, err := NewAntennaPlan(s, mts.DefaultGeometry(), 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	maxR := s.MaxResponse(plan.Paths[0])
	targets := make([]complex128, 5)
	for i := range targets {
		mag := 0.2 * maxR / math.Sqrt(5)
		targets[i] = complex(mag*math.Cos(src.Phase()), mag*math.Sin(src.Phase()))
	}
	cfg, sums := s.SolveMultiTarget(targets, plan.Paths)
	if len(cfg) != s.Atoms() {
		t.Fatalf("config has %d atoms", len(cfg))
	}
	for ch := range targets {
		rel := cmplx.Abs(sums[ch]-targets[ch]) / maxR
		if rel > 0.05 {
			t.Fatalf("channel %d residual %.3f of dynamic range", ch, rel)
		}
	}
}

func TestDeployValidation(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(5)
	s := mts.Prototype(src)
	plan, _ := NewAntennaPlan(s, mts.DefaultGeometry(), 3, 30)
	opts := NewOptions(src)
	opts.Surface = nil
	if _, err := Deploy(m.Weights(), plan, opts, src); err == nil {
		t.Error("expected error for nil surface")
	}
	opts = NewOptions(src)
	opts.TargetScale = 2
	if _, err := Deploy(m.Weights(), plan, opts, src); err == nil {
		t.Error("expected error for bad TargetScale")
	}
}

func TestAntennaParallelismAccuracy(t *testing.T) {
	// Fig 18: full antenna parallelism (L = R) costs only a modest accuracy
	// drop relative to the digital model while cutting transmissions to 1.
	m, test, digital := trained(t)
	src := rng.New(6)
	opts := NewOptions(src.Split())
	plan, err := NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(m.Weights(), plan, opts, src)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Transmissions() != 1 {
		t.Fatalf("L=R should need 1 transmission, got %d", sys.Transmissions())
	}
	acc := nn.Evaluate(sys, test)
	if digital-acc > 0.15 {
		t.Fatalf("antenna parallelism accuracy %.3f too far below digital %.3f", acc, digital)
	}
	if acc < 0.6 {
		t.Fatalf("antenna parallelism accuracy %.3f implausibly low", acc)
	}
}

func TestSubcarrierParallelismAccuracy(t *testing.T) {
	m, test, digital := trained(t)
	src := rng.New(7)
	opts := NewOptions(src.Split())
	plan, err := NewSubcarrierPlan(opts.Surface, mts.DefaultGeometry(), 10, 40e3, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(m.Weights(), plan, opts, src)
	if err != nil {
		t.Fatal(err)
	}
	acc := nn.Evaluate(sys, test)
	if digital-acc > 0.15 {
		t.Fatalf("subcarrier parallelism accuracy %.3f too far below digital %.3f", acc, digital)
	}
}

func TestAccuracyLatencyTradeoff(t *testing.T) {
	// Fig 31: more parallel channels -> fewer transmissions but lower
	// accuracy.
	m, test, _ := trained(t)
	accs := map[int]float64{}
	trans := map[int]int{}
	for _, l := range []int{2, 10} {
		src := rng.New(8)
		opts := NewOptions(src.Split())
		plan, err := NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), l, 90)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := Deploy(m.Weights(), plan, opts, src)
		if err != nil {
			t.Fatal(err)
		}
		accs[l] = nn.Evaluate(sys, test)
		trans[l] = sys.Transmissions()
	}
	if trans[2] != 5 || trans[10] != 1 {
		t.Fatalf("transmissions: %v", trans)
	}
	if accs[10] > accs[2]+0.02 {
		t.Fatalf("accuracy should not improve with more parallel channels: %v", accs)
	}
}

func TestAirTimeScalesWithGroups(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(9)
	opts := NewOptions(src.Split())
	plan, _ := NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), 5, 45)
	sys, err := Deploy(m.Weights(), plan, opts, src)
	if err != nil {
		t.Fatal(err)
	}
	// 10 classes / 5 antennas = 2 passes × 64 symbols @ 1 Msym/s.
	if got := sys.AirTime(); math.Abs(got-128e-6) > 1e-12 {
		t.Fatalf("air time = %v, want 128 µs", got)
	}
}
