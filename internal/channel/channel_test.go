package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

func TestDefaultParams(t *testing.T) {
	p := Default()
	if p.Env != Office || p.FreqGHz != 5.25 || p.TxMTSDist != 1 || p.MTSRxDist != 3 {
		t.Fatalf("Default() = %+v does not match the paper's §4 setup", p)
	}
	if math.Abs(p.SNRdB()-30.0) > 1e-9 {
		t.Fatalf("default SNR = %v, want reference 30 dB", p.SNRdB())
	}
}

func TestSNRDecreasesWithDistance(t *testing.T) {
	prev := math.Inf(1)
	for d := 1.0; d <= 22; d += 3 {
		p := Default()
		p.MTSRxDist = d
		snr := p.SNRdB()
		if snr >= prev {
			t.Fatalf("SNR not monotone decreasing with distance: %v at %v m", snr, d)
		}
		prev = snr
	}
}

func TestSNRScalesWithTxPower(t *testing.T) {
	p := Default()
	p.TxPowerDB = 30
	if got := p.SNRdB() - Default().SNRdB(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("10 dB more Tx power changed SNR by %v dB", got)
	}
}

func TestWallLoss(t *testing.T) {
	p := Default()
	p.Walls = 2
	if got := Default().SNRdB() - p.SNRdB(); math.Abs(got-2*wallLossDB) > 1e-9 {
		t.Fatalf("2 walls cost %v dB, want %v", got, 2*wallLossDB)
	}
}

func TestNoiseSigma2MatchesSNR(t *testing.T) {
	p := Default()
	want := math.Pow(10, -p.SNRdB()/10)
	if got := p.NoiseSigma2(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("NoiseSigma2 = %v, want %v", got, want)
	}
}

func TestFSPLAmplitude(t *testing.T) {
	p := Default()
	lambda := SpeedOfLight / 5.25e9
	want := lambda / (4 * math.Pi * 3)
	if got := p.FSPLAmplitude(3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FSPL(3m) = %v, want %v", got, want)
	}
	// Clamped near field.
	if got := p.FSPLAmplitude(0); got != p.FSPLAmplitude(0.1) {
		t.Fatal("near-field distances must clamp")
	}
}

func TestEnvironmentMultipathOrdering(t *testing.T) {
	// Fig 17: corridor < office < laboratory multipath.
	if !(Corridor.multipathRel() < Office.multipathRel() && Office.multipathRel() < Laboratory.multipathRel()) {
		t.Fatal("environment multipath strengths not ordered corridor < office < laboratory")
	}
}

func TestAntennaSelectivity(t *testing.T) {
	if Directional.multipathFactor() >= Omni.multipathFactor() {
		t.Fatal("directional antenna must suppress multipath relative to omni")
	}
	if Directional.String() != "Dire" || Omni.String() != "Omni" {
		t.Fatal("antenna names must match Fig 17 labels")
	}
}

func TestRealizationEnvStaticWithinSymbol(t *testing.T) {
	m := New(Default())
	r := m.NewRealization(rng.New(1))
	a := r.EnvAt(5)
	for i := 0; i < 10; i++ {
		if r.EnvAt(5) != a {
			t.Fatal("EnvAt must be constant within one symbol")
		}
	}
}

func TestRealizationDeterministic(t *testing.T) {
	m := New(Default())
	r1 := m.NewRealization(rng.New(9))
	r2 := m.NewRealization(rng.New(9))
	for i := 0; i < 20; i++ {
		if r1.EnvAt(i) != r2.EnvAt(i) {
			t.Fatalf("realizations diverge at symbol %d", i)
		}
	}
}

func TestInterfererDriftsEnvAcrossSymbols(t *testing.T) {
	p := Default()
	p.Interf = RegionR2
	m := New(p)
	r := m.NewRealization(rng.New(2))
	// With an interferer, consecutive-symbol env responses must differ more
	// on average than the static case.
	static := New(Default()).NewRealization(rng.New(2))
	var dDyn, dStat float64
	prevD, prevS := r.EnvAt(0), static.EnvAt(0)
	for i := 1; i < 300; i++ {
		cd, cs := r.EnvAt(i), static.EnvAt(i)
		dDyn += cmplx.Abs(cd - prevD)
		dStat += cmplx.Abs(cs - prevS)
		prevD, prevS = cd, cs
	}
	if dDyn <= dStat {
		t.Fatalf("interferer drift %v not larger than static variation %v", dDyn, dStat)
	}
}

func TestRegionR4BlocksMTSPath(t *testing.T) {
	p := Default()
	p.Interf = RegionR4
	m := New(p)
	r := m.NewRealization(rng.New(3))
	blocked := 0
	const n = 2000
	for i := 0; i < n; i++ {
		base := cmplx.Abs(r.mtsScale)
		if cmplx.Abs(r.MTSScaleAt(i)) < base-1e-12 {
			blocked++
		}
	}
	frac := float64(blocked) / n
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("R4 blockage fraction = %v, want ≈ 0.30", frac)
	}
	// Off-path regions never attenuate the MTS path.
	p.Interf = RegionR2
	r2 := New(p).NewRealization(rng.New(4))
	for i := 0; i < 500; i++ {
		if math.Abs(cmplx.Abs(r2.MTSScaleAt(i))-1) > 1e-12 {
			t.Fatal("R2 interferer must not attenuate the MTS path")
		}
	}
}

func TestNLoSHasNoStaticDirectTerm(t *testing.T) {
	// In the NLoS corner the quasi-static direct component should be much
	// weaker on average than in LoS environments.
	var losMag, nlosMag float64
	const n = 200
	for i := 0; i < n; i++ {
		pl := Default()
		losMag += cmplx.Abs(New(pl).NewRealization(rng.New(uint64(i))).envBase)
		pn := Default()
		pn.Env = NLoSCorner
		nlosMag += cmplx.Abs(New(pn).NewRealization(rng.New(uint64(i))).envBase)
	}
	if nlosMag >= losMag*0.7 {
		t.Fatalf("NLoS static env %v not much weaker than LoS %v", nlosMag/n, losMag/n)
	}
}

func TestNoiseMatchesConfiguredVariance(t *testing.T) {
	p := Default()
	p.TxPowerDB = 5 // strong noise so the estimate converges fast
	m := New(p)
	r := m.NewRealization(rng.New(5))
	var pw float64
	const n = 100000
	for i := 0; i < n; i++ {
		z := r.Noise()
		pw += real(z)*real(z) + imag(z)*imag(z)
	}
	want := p.NoiseSigma2()
	if math.Abs(pw/n-want) > 0.05*want {
		t.Fatalf("noise power %v, want %v", pw/n, want)
	}
}

func TestStringers(t *testing.T) {
	if Corridor.String() != "corridor" || NLoSCorner.String() != "nlos-corner" {
		t.Error("environment names wrong")
	}
	if RegionR4.String() != "R4" || NoInterferer.String() != "none" {
		t.Error("region names wrong")
	}
	if Environment(99).String() == "" || InterferenceRegion(99).String() == "" {
		t.Error("unknown values must still print")
	}
}

func TestDopplerRotatesAcrossSymbols(t *testing.T) {
	p := Default()
	p.DopplerHz = 1000 // 1 kHz at 1 Msym/s: 0.36°/symbol
	m := New(p)
	r := m.NewRealization(rng.New(20))
	s0 := r.MTSScaleAt(0)
	s100 := r.MTSScaleAt(100)
	// After 100 symbols the phase advanced 2π·1000·100/1e6 = 0.628 rad.
	rot := s100 / s0
	want := cmplx.Exp(complex(0, 2*math.Pi*1000*100/1e6))
	if cmplx.Abs(rot-want) > 1e-9 {
		t.Fatalf("Doppler rotation after 100 symbols = %v, want %v", rot, want)
	}
	// Magnitude is untouched.
	if math.Abs(cmplx.Abs(s100)-1) > 1e-12 {
		t.Fatalf("Doppler changed the path magnitude: %v", cmplx.Abs(s100))
	}
}

func TestNoDopplerMeansConstantPhase(t *testing.T) {
	m := New(Default())
	r := m.NewRealization(rng.New(21))
	if r.MTSScaleAt(0) != r.MTSScaleAt(500) {
		t.Fatal("static receiver must see a constant MTS phase")
	}
}
