package channel

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Tap is one discrete multipath component: a complex gain arriving with a
// given delay in chip-rate samples.
type Tap struct {
	DelayChips int
	Gain       complex128
}

// TappedDelayLine is a sample-level multipath channel: the received sample
// at time t is Σ_k gain_k · x[t − delay_k]. It is the waveform-level
// counterpart of the per-symbol Realization model and exists so the §3.2
// multipath-cancellation claim can be verified against an actual delay
// spread rather than a flat environmental coefficient (see package
// waveform).
type TappedDelayLine struct {
	Taps []Tap
}

// NewTappedDelayLine draws an exponentially-decaying power-delay profile
// with nTaps components, RMS total magnitude `rms`, and a maximum delay of
// maxDelayChips samples. Tap 0 always sits at delay 0 (the quasi-LoS
// environmental component).
func NewTappedDelayLine(nTaps, maxDelayChips int, rms float64, src *rng.Source) (*TappedDelayLine, error) {
	if nTaps < 1 {
		return nil, fmt.Errorf("channel: need at least one tap, got %d", nTaps)
	}
	if maxDelayChips < 0 {
		return nil, fmt.Errorf("channel: negative max delay %d", maxDelayChips)
	}
	if nTaps > 1 && maxDelayChips == 0 {
		return nil, fmt.Errorf("channel: %d taps need a positive delay spread", nTaps)
	}
	t := &TappedDelayLine{Taps: make([]Tap, nTaps)}
	var power float64
	for k := range t.Taps {
		delay := 0
		if nTaps > 1 {
			delay = k * maxDelayChips / (nTaps - 1)
		}
		// Exponential power decay over delay, random phase.
		amp := 1.0
		if maxDelayChips > 0 {
			amp = 1.0 / (1.0 + 2.0*float64(delay)/float64(maxDelayChips+1))
		}
		g := src.ComplexNormal(amp * amp)
		t.Taps[k] = Tap{DelayChips: delay, Gain: g}
		power += real(g)*real(g) + imag(g)*imag(g)
	}
	if power > 0 {
		scale := complex(rms/math.Sqrt(power), 0)
		for k := range t.Taps {
			t.Taps[k].Gain *= scale
		}
	}
	return t, nil
}

// MaxDelay returns the largest tap delay in chips.
func (t *TappedDelayLine) MaxDelay() int {
	max := 0
	for _, tap := range t.Taps {
		if tap.DelayChips > max {
			max = tap.DelayChips
		}
	}
	return max
}

// Apply convolves the transmitted sample stream with the tap profile,
// returning a stream of the same length (causal; pre-stream history is
// zero).
func (t *TappedDelayLine) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for _, tap := range t.Taps {
		if tap.Gain == 0 {
			continue
		}
		for i := tap.DelayChips; i < len(x); i++ {
			out[i] += tap.Gain * x[i-tap.DelayChips]
		}
	}
	return out
}

// TotalPower returns Σ|gain|².
func (t *TappedDelayLine) TotalPower() float64 {
	var p float64
	for _, tap := range t.Taps {
		p += real(tap.Gain)*real(tap.Gain) + imag(tap.Gain)*imag(tap.Gain)
	}
	return p
}
