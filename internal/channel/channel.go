// Package channel models the wireless propagation environment the MetaAI
// prototype was evaluated in: free-space path loss on the Tx→MTS→Rx path,
// environmental multipath whose strength depends on the room (corridor,
// office, laboratory — §5.2), line-of-sight blockage (NLoS corner, §5.3),
// wall penetration loss (cross-room, §5.3), directional vs omni-directional
// antennas (Fig 17), and a walking interferer (Fig 26).
//
// The model follows the paper's signal decomposition: the receiver observes
// (H_mts + H_e)·x + n, where H_mts is the programmable metasurface path and
// H_e is everything else. H_e is static within one symbol period but may
// change between symbols (the regime in which the §3.2 multipath
// cancellation is exact); a dynamic interferer makes H_e drift across
// symbols and, when it blocks the MTS-Rx path, attenuates H_mts itself.
package channel

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// Environment identifies one of the indoor deployment environments used in
// the evaluation.
type Environment int

const (
	// Corridor is the low-multipath environment of Fig 17.
	Corridor Environment = iota
	// Office is the default evaluation environment (Fig 15).
	Office
	// Laboratory is the richest-multipath environment of Fig 17.
	Laboratory
	// NLoSCorner places the MTS at a corridor intersection with no Tx-Rx
	// visibility (Fig 21): all received energy arrives via the MTS.
	NLoSCorner
	// CrossRoom separates Tx/MTS and Rx by one or more walls (Fig 27).
	CrossRoom
)

var envNames = map[Environment]string{
	Corridor:   "corridor",
	Office:     "office",
	Laboratory: "laboratory",
	NLoSCorner: "nlos-corner",
	CrossRoom:  "cross-room",
}

// String returns the environment name.
func (e Environment) String() string {
	if n, ok := envNames[e]; ok {
		return n
	}
	return fmt.Sprintf("Environment(%d)", int(e))
}

// multipathRel is the RMS magnitude of the environmental response H_e
// relative to the MTS-path response, per environment. Corridors are nearly
// multipath-free; laboratories are cluttered.
func (e Environment) multipathRel() float64 {
	switch e {
	case Corridor:
		return 0.18
	case Office:
		return 0.45
	case Laboratory:
		return 0.70
	case NLoSCorner:
		return 0.25 // no direct path; residual scatter only
	case CrossRoom:
		return 0.40
	default:
		return 0.45
	}
}

// hasDirectPath reports whether a Tx→Rx path that bypasses the MTS exists.
func (e Environment) hasDirectPath() bool {
	return e != NLoSCorner
}

// Antenna identifies the Tx/Rx antenna type used in Fig 17.
type Antenna int

const (
	// Directional antennas focus on the MTS and suppress off-axis
	// multipath.
	Directional Antenna = iota
	// Omni antennas pick up the full environmental scatter.
	Omni
)

// String returns the antenna name used in the paper's figures.
func (a Antenna) String() string {
	if a == Directional {
		return "Dire"
	}
	return "Omni"
}

// multipathFactor scales environmental multipath by antenna selectivity.
func (a Antenna) multipathFactor() float64 {
	if a == Directional {
		return 0.5
	}
	return 1.4
}

// InterferenceRegion identifies where a walking interferer moves relative to
// the link geometry (Fig 26(a)).
type InterferenceRegion int

const (
	// NoInterferer disables the dynamic interferer.
	NoInterferer InterferenceRegion = iota
	// RegionR1 through RegionR3 are off-path regions: the interferer only
	// perturbs environmental scatter between symbols.
	RegionR1
	RegionR2
	RegionR3
	// RegionR4 crosses the MTS-Rx direct path, periodically attenuating the
	// computing path itself.
	RegionR4
)

// String returns the region label used in Fig 26.
func (r InterferenceRegion) String() string {
	switch r {
	case NoInterferer:
		return "none"
	case RegionR1:
		return "R1"
	case RegionR2:
		return "R2"
	case RegionR3:
		return "R3"
	case RegionR4:
		return "R4"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// scatterDrift returns how strongly the walking interferer re-randomizes
// H_e between symbols, and blockProb the per-symbol probability that it
// shadows the MTS-Rx path.
func (r InterferenceRegion) scatterDrift() (drift, blockProb, blockDepth float64) {
	switch r {
	case RegionR1:
		return 0.25, 0, 0
	case RegionR2:
		return 0.35, 0, 0
	case RegionR3:
		return 0.45, 0, 0
	case RegionR4:
		return 0.45, 0.30, 0.45 // shadowing knocks ~7 dB off the MTS path
	default:
		return 0, 0, 0
	}
}

// Params configures a channel model instance. The zero value is not useful;
// use Default for the paper's default setup (§4: office, 5.25 GHz, Tx-MTS
// 1 m at 30°, MTS-Rx 3 m at 40°).
type Params struct {
	Env       Environment
	Antenna   Antenna
	FreqGHz   float64
	TxMTSDist float64 // meters
	MTSRxDist float64 // meters
	TxPowerDB float64 // transmit power proxy; the Fig 19 sweep varies 5–30 dB
	Walls     int     // intervening walls on the MTS→Rx path (CrossRoom)
	Interf    InterferenceRegion
	// DopplerHz is the carrier frequency offset a moving receiver induces
	// (f_D = v·f/c: ~17.5 Hz per m/s at 5.25 GHz, §7's mobility regime).
	// It rotates the MTS-path phase across symbols, eroding the coherence
	// of the receiver's accumulation.
	DopplerHz float64
	// SymbolRateHz converts the Doppler shift into a per-symbol phase step;
	// zero means the §4 default of 1 Msym/s.
	SymbolRateHz float64
}

// Default returns the paper's default experimental setup.
func Default() Params {
	return Params{
		Env:       Office,
		Antenna:   Directional,
		FreqGHz:   5.25,
		TxMTSDist: 1,
		MTSRxDist: 3,
		TxPowerDB: 20,
		Walls:     0,
		Interf:    NoInterferer,
	}
}

// Wavelength returns the carrier wavelength in meters.
func (p Params) Wavelength() float64 { return SpeedOfLight / (p.FreqGHz * 1e9) }

// StaticMTSPath reports whether the MTS-path scale is constant across the
// symbols of one transmission: no Doppler phase ramp and no interferer that
// can shadow the MTS-Rx path (region R4). Off-path interferers (R1–R3) only
// re-randomize the environmental scatter and leave the MTS path static.
// Deployment-side response caches are valid only under this predicate.
func (p Params) StaticMTSPath() bool {
	_, blockProb, _ := p.Interf.scatterDrift()
	return p.DopplerHz == 0 && blockProb == 0
}

// wallLossDB is the penetration loss per interior wall at sub-6 GHz.
const wallLossDB = 5.0

// refSNRDB anchors the link budget: the default setup (TxPower 20 dB,
// 1 m + 3 m, no walls) yields this per-sample SNR on the MTS path. The
// anchor is chosen so the link stays compute-limited across the paper's
// distance sweeps (Figs 21/24/27 stay above ~70% out to 22 m) and becomes
// noise-limited only at the low end of the Fig 19 power sweep.
const refSNRDB = 30.0

// SNRdB returns the per-sample SNR of the MTS-path signal at the receiver,
// combining transmit power, two-hop distance spreading, and wall loss.
// Distances below 0.1 m are clamped to avoid a near-field singularity.
func (p Params) SNRdB() float64 {
	d1 := math.Max(p.TxMTSDist, 0.1)
	d2 := math.Max(p.MTSRxDist, 0.1)
	ref := 1.0 * 3.0 // default d1·d2 product
	spreading := 20 * math.Log10(d1*d2/ref)
	return refSNRDB + (p.TxPowerDB - 20) - spreading - float64(p.Walls)*wallLossDB
}

// NoiseSigma2 converts the link SNR into a per-sample complex noise variance
// for a unit-power MTS-path signal.
func (p Params) NoiseSigma2() float64 {
	return math.Pow(10, -p.SNRdB()/10)
}

// FSPLAmplitude returns the free-space amplitude gain λ/(4πd) of a single
// hop. The MTS path combines two hops; per Eqn 4 this common factor α_p
// scales every output equally and never changes the classification decision,
// but it matters for absolute SNR and for the energy model.
func (p Params) FSPLAmplitude(d float64) float64 {
	d = math.Max(d, 0.1)
	return p.Wavelength() / (4 * math.Pi * d)
}

// Model is an instantiated channel. Create per-inference Realizations to
// draw the random multipath and noise.
type Model struct {
	p Params

	// Derived constants, fixed at New: realizations are re-drawn per
	// transmission on the serving hot path, and none of these depend on
	// anything but Params — recomputing the link budget's pow/log chain per
	// realization would cost more than the draws themselves. Every value is
	// computed by exactly the arithmetic the per-realization code used, so
	// the cached constants are bit-identical to recomputation.
	envRMS     float64
	drift      float64
	blockProb  float64
	blockDepth float64
	noise2     float64
	dopStep    float64
	baseSD     float64 // per-component SD of the NLoS envBase draw
	scatterSD  float64 // per-component SD of the per-symbol scatter draw
	driftSD    float64 // per-component SD of the interferer drift draw
}

// New returns a channel model for the given parameters.
func New(p Params) *Model {
	if p.FreqGHz <= 0 {
		p.FreqGHz = 5.25
	}
	m := &Model{p: p}
	rel := p.Env.multipathRel() * p.Antenna.multipathFactor()
	m.envRMS = rel
	m.drift, m.blockProb, m.blockDepth = p.Interf.scatterDrift()
	m.noise2 = p.NoiseSigma2()
	if p.DopplerHz != 0 {
		rate := p.SymbolRateHz
		if rate <= 0 {
			rate = 1e6
		}
		m.dopStep = 2 * math.Pi * p.DopplerHz / rate
	}
	m.baseSD = math.Sqrt(rel * rel * 0.25 / 2)
	m.scatterSD = math.Sqrt(rel * rel * 0.3 / 2)
	m.driftSD = math.Sqrt(m.drift * m.drift * rel * rel / 2)
	return m
}

// Params returns the model's configuration.
func (m *Model) Params() Params { return m.p }

// Realization is one random draw of the environment for a single
// transmission: a sequence of per-symbol environmental responses plus the
// MTS-path scale. It is deterministic given the rng source.
type Realization struct {
	envBase    complex128 // quasi-static environment component
	envRMS     float64
	drift      float64
	blockProb  float64
	blockDepth float64
	mtsScale   complex128
	dopStep    float64 // per-symbol Doppler phase increment (radians)
	noise2     float64
	scatterSD  float64 // hoisted per-component SD of the scatter draw
	driftSD    float64 // hoisted per-component SD of the drift draw
	src        *rng.Source

	cur       complex128
	curSymbol int
	blocked   bool
}

// NewRealizationFrom builds a realization whose quasi-static components —
// the environment base AND the MTS-path phase — are the given values
// instead of fresh draws. This is the regime the Eqn 8 compensation
// approach assumes: for a static deployment, both paths persist coherently
// between a calibration pass and later transmissions. Scatter, blockage,
// and noise still vary per symbol.
func (m *Model) NewRealizationFrom(base, mtsPhase complex128, src *rng.Source) *Realization {
	return m.NewRealizationFromInto(new(Realization), base, mtsPhase, src)
}

// NewRealizationFromInto is NewRealizationFrom writing into rz — the
// allocation-free variant for steady-state loops that redraw a realization
// per transmission. It consumes the same draws from src and leaves rz in
// the same state a fresh NewRealizationFrom would return. Because the
// drawn quasi-static values are immediately replaced by the calibrated
// ones, only the stream consumption is replayed: the uniform draws happen
// (keeping src bit-aligned with NewRealizationInto), but the trigonometry
// that would shape the discarded values is skipped.
func (m *Model) NewRealizationFromInto(rz *Realization, base, mtsPhase complex128, src *rng.Source) *Realization {
	r := rz
	*r = Realization{
		envRMS:     m.envRMS,
		drift:      m.drift,
		blockProb:  m.blockProb,
		blockDepth: m.blockDepth,
		noise2:     m.noise2,
		dopStep:    m.dopStep,
		scatterSD:  m.scatterSD,
		driftSD:    m.driftSD,
		src:        src,
		curSymbol:  -1,
	}
	if m.p.Env.hasDirectPath() {
		src.Float64() // envBase real-part phase (Phase() is one uniform)
		src.Float64() // envBase imag-part phase
	} else {
		src.ComplexNormalSD(m.baseSD) // envBase normal draw
	}
	src.Float64() // mtsScale global phase
	r.envBase = base
	r.mtsScale = mtsPhase
	return r
}

// Base returns the realization's quasi-static environment component — what
// an explicit channel-estimation pass (MTS disabled, §3.2) would measure.
func (r *Realization) Base() complex128 { return r.envBase }

// MTSPhase returns the quasi-static unit-modulus phase of the MTS path
// (the common e^{jk·d_1,Rx} factor), which a coherent calibration pass also
// measures.
func (r *Realization) MTSPhase() complex128 { return r.mtsScale }

// NewRealization draws a fresh channel realization. src drives all
// randomness so experiments are reproducible.
func (m *Model) NewRealization(src *rng.Source) *Realization {
	return m.NewRealizationInto(new(Realization), src)
}

// NewRealizationInto is NewRealization writing into rz — the allocation-free
// variant for hot loops. It consumes the same draws from src and leaves rz
// in the same state a fresh NewRealization would return.
func (m *Model) NewRealizationInto(rz *Realization, src *rng.Source) *Realization {
	r := rz
	*r = Realization{
		envRMS:     m.envRMS,
		drift:      m.drift,
		blockProb:  m.blockProb,
		blockDepth: m.blockDepth,
		noise2:     m.noise2,
		dopStep:    m.dopStep,
		scatterSD:  m.scatterSD,
		driftSD:    m.driftSD,
		src:        src,
		curSymbol:  -1,
	}
	// Quasi-static environment response: Rician-like with a dominant static
	// component plus scatter. The direct Tx→Rx path exists in all LoS
	// environments.
	if m.p.Env.hasDirectPath() {
		rel := m.envRMS
		r.envBase = complex(rel*math.Cos(src.Phase()), rel*math.Sin(src.Phase()))
	} else {
		r.envBase = src.ComplexNormalSD(m.baseSD)
	}
	// MTS path random global phase (distance-dependent common factor
	// e^{jk·d1Rx} of Eqn 6 — provably irrelevant to classification, kept to
	// prove it).
	ph := src.Phase()
	r.mtsScale = complex(math.Cos(ph), math.Sin(ph))
	return r
}

// EnvAt returns the environmental (non-MTS) channel response during symbol
// sym. The response is constant within a symbol — the walking interferer of
// Fig 26 moves far slower than the symbol rate — and re-drawn across symbols
// when an interferer is present.
func (r *Realization) EnvAt(sym int) complex128 {
	if sym != r.curSymbol {
		r.curSymbol = sym
		scatter := r.src.ComplexNormalSD(r.scatterSD)
		if r.drift > 0 {
			scatter += r.src.ComplexNormalSD(r.driftSD)
		}
		r.cur = r.envBase + scatter
		r.blocked = r.blockProb > 0 && r.src.Bernoulli(r.blockProb)
	}
	return r.cur
}

// MTSScaleAt returns the complex scale applied to the metasurface path
// during symbol sym, including interferer shadowing in region R4 and the
// Doppler phase ramp of a moving receiver. Unlike the constant global
// phase, a phase that ROTATES across symbols is not harmless: the
// accumulation Σ H_i·x_i·e^{jθ·i} loses coherence once θ·U approaches π.
func (r *Realization) MTSScaleAt(sym int) complex128 {
	r.EnvAt(sym) // ensure per-symbol state for sym is drawn
	scale := r.mtsScale
	if r.dopStep != 0 {
		th := r.dopStep * float64(sym)
		sin, cos := math.Sincos(th)
		scale *= complex(cos, sin)
	}
	if r.blocked {
		return scale * complex(1-r.blockDepth, 0)
	}
	return scale
}

// Step advances the realization to symbol sym and returns both the
// environmental response and the MTS-path scale in one call — EnvAt and
// MTSScaleAt fused, drawing per-symbol randomness exactly once in the same
// order, so a loop over Step is bit-identical to the two-call sequence.
// Inference hot loops use it to halve per-symbol call overhead.
func (r *Realization) Step(sym int) (env, scale complex128) {
	if sym != r.curSymbol {
		r.curSymbol = sym
		scatter := r.src.ComplexNormalSD(r.scatterSD)
		if r.drift > 0 {
			scatter += r.src.ComplexNormalSD(r.driftSD)
		}
		r.cur = r.envBase + scatter
		r.blocked = r.blockProb > 0 && r.src.Bernoulli(r.blockProb)
	}
	scale = r.mtsScale
	if r.dopStep != 0 {
		th := r.dopStep * float64(sym)
		sin, cos := math.Sincos(th)
		scale *= complex(cos, sin)
	}
	if r.blocked {
		scale *= complex(1-r.blockDepth, 0)
	}
	return r.cur, scale
}

// ScatterSD returns the hoisted per-component standard deviation of the
// per-symbol scatter draw — what Step draws with — for hot loops that
// inline the scatter draw when the MTS path is static.
func (r *Realization) ScatterSD() float64 { return r.scatterSD }

// DriftSD returns the hoisted per-component standard deviation of the
// interferer drift draw, zero when no off-path interferer is configured.
// HasDrift gates whether the draw happens at all.
func (r *Realization) DriftSD() float64 { return r.driftSD }

// HasDrift reports whether Step draws a second, interferer-drift scatter
// sample per symbol.
func (r *Realization) HasDrift() bool { return r.drift > 0 }

// Noise returns one complex receiver-noise sample for a unit-power MTS-path
// signal.
func (r *Realization) Noise() complex128 {
	return r.src.ComplexNormal(r.noise2)
}

// NoiseSigma2 returns the per-sample noise variance of this realization.
func (r *Realization) NoiseSigma2() float64 { return r.noise2 }
