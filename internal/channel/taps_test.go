package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

func TestNewTappedDelayLineValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NewTappedDelayLine(0, 2, 1, src); err == nil {
		t.Error("expected error for zero taps")
	}
	if _, err := NewTappedDelayLine(2, -1, 1, src); err == nil {
		t.Error("expected error for negative delay")
	}
	if _, err := NewTappedDelayLine(3, 0, 1, src); err == nil {
		t.Error("expected error for multi-tap zero spread")
	}
}

func TestTappedDelayLineNormalization(t *testing.T) {
	src := rng.New(2)
	tdl, err := NewTappedDelayLine(4, 6, 2.5, src)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Sqrt(tdl.TotalPower()); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("RMS magnitude %v, want 2.5", got)
	}
	if tdl.MaxDelay() != 6 {
		t.Fatalf("max delay %d, want 6", tdl.MaxDelay())
	}
	if tdl.Taps[0].DelayChips != 0 {
		t.Fatal("first tap must sit at delay 0")
	}
}

func TestApplyImpulseResponse(t *testing.T) {
	tdl := &TappedDelayLine{Taps: []Tap{
		{DelayChips: 0, Gain: 1},
		{DelayChips: 2, Gain: 0.5i},
	}}
	x := make([]complex128, 6)
	x[0] = 1
	y := tdl.Apply(x)
	want := []complex128{1, 0, 0.5i, 0, 0, 0}
	for i := range want {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("impulse response = %v, want %v", y, want)
		}
	}
}

func TestApplyLinearity(t *testing.T) {
	src := rng.New(3)
	tdl, _ := NewTappedDelayLine(3, 4, 1, src)
	a := make([]complex128, 20)
	b := make([]complex128, 20)
	for i := range a {
		a[i] = src.ComplexNormal(1)
		b[i] = src.ComplexNormal(1)
	}
	sum := make([]complex128, 20)
	for i := range sum {
		sum[i] = a[i] + 2i*b[i]
	}
	ya, yb, ys := tdl.Apply(a), tdl.Apply(b), tdl.Apply(sum)
	for i := range ys {
		if cmplx.Abs(ys[i]-(ya[i]+2i*yb[i])) > 1e-9 {
			t.Fatal("tapped delay line is not linear")
		}
	}
}

func TestApplyCausal(t *testing.T) {
	tdl := &TappedDelayLine{Taps: []Tap{{DelayChips: 3, Gain: 1}}}
	x := []complex128{1, 2, 3, 4, 5}
	y := tdl.Apply(x)
	for i := 0; i < 3; i++ {
		if y[i] != 0 {
			t.Fatalf("non-causal output at %d: %v", i, y)
		}
	}
	if y[3] != 1 || y[4] != 2 {
		t.Fatalf("delayed output wrong: %v", y)
	}
}
