package cplx

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const eps = 1e-12

func almostEq(a, b complex128) bool { return cmplx.Abs(a-b) < 1e-9 }

func TestVecAddScale(t *testing.T) {
	v := Vec{1 + 2i, 3, -1i}
	w := Vec{1, 1, 1}
	v.Add(w)
	want := Vec{2 + 2i, 4, 1 - 1i}
	for i := range v {
		if !almostEq(v[i], want[i]) {
			t.Fatalf("Add: v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	v.Scale(2i)
	want2 := Vec{-4 + 4i, 8i, 2 + 2i}
	for i := range v {
		if !almostEq(v[i], want2[i]) {
			t.Fatalf("Scale: v[%d] = %v, want %v", i, v[i], want2[i])
		}
	}
}

func TestDotUnconjugated(t *testing.T) {
	v := Vec{1i, 2}
	w := Vec{1i, 3}
	// Unconjugated: (1i)(1i) + 2*3 = -1 + 6 = 5.
	if got := v.Dot(w); !almostEq(got, 5) {
		t.Fatalf("Dot = %v, want 5", got)
	}
	// Hermitian: conj(1i)(1i) + 2*3 = 1 + 6 = 7.
	if got := v.HermDot(w); !almostEq(got, 7) {
		t.Fatalf("HermDot = %v, want 7", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestNormAndMaxAbs(t *testing.T) {
	v := Vec{3, 4i}
	if got := v.Norm(); math.Abs(got-5) > eps {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := v.MaxAbs(); math.Abs(got-4) > eps {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := (Vec{}).MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %v, want 0", got)
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	// [1 2 3; 4 5 6] · [1, 1i, -1] = [1+2i-3, 4+5i-6] = [-2+2i, -2+5i]
	for i, v := range []complex128{1, 2, 3, 4, 5, 6} {
		m.Data[i] = v
	}
	x := Vec{1, 1i, -1}
	y := m.MulVec(x)
	want := Vec{-2 + 2i, -2 + 5i}
	for i := range y {
		if !almostEq(y[i], want[i]) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	dst := NewVec(2)
	m.MulVecTo(dst, x)
	for i := range dst {
		if !almostEq(dst[i], want[i]) {
			t.Fatalf("MulVecTo[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMatMulAssociativity(t *testing.T) {
	src := rng.New(1)
	randMat := func(r, c int) *Mat {
		m := NewMat(r, c)
		for i := range m.Data {
			m.Data[i] = src.ComplexNormal(1)
		}
		return m
	}
	a, b := randMat(4, 5), randMat(5, 3)
	x := make(Vec, 3)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	// (A·B)·x == A·(B·x)
	left := a.Mul(b).MulVec(x)
	right := a.MulVec(b.MulVec(x))
	for i := range left {
		if cmplx.Abs(left[i]-right[i]) > 1e-9 {
			t.Fatalf("associativity violated at %d: %v vs %v", i, left[i], right[i])
		}
	}
}

func TestMatRowSharesStorage(t *testing.T) {
	m := NewMat(2, 2)
	m.Row(1)[0] = 7i
	if m.At(1, 0) != 7i {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMat(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
	v := Vec{1, 2}
	cv := v.Clone()
	cv[0] = 9
	if v[0] != 1 {
		t.Fatal("Vec Clone must not share storage")
	}
}

func TestExpi(t *testing.T) {
	for _, th := range []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2, 1.234} {
		want := cmplx.Exp(complex(0, th))
		if got := Expi(th); cmplx.Abs(got-want) > eps {
			t.Fatalf("Expi(%v) = %v, want %v", th, got, want)
		}
	}
}

func TestWrapPhaseProperty(t *testing.T) {
	err := quick.Check(func(raw float64) bool {
		th := math.Mod(raw, 1000) // keep finite and modest
		w := WrapPhase(th)
		if w < 0 || w >= 2*math.Pi {
			return false
		}
		return cmplx.Abs(Expi(th)-Expi(w)) < 1e-6
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPhaseDistance(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi, math.Pi},
		{0.1, 2*math.Pi - 0.1, 0.2},
		{math.Pi / 2, math.Pi, math.Pi / 2},
	}
	for _, c := range cases {
		if got := PhaseDistance(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("PhaseDistance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPhaseDistanceSymmetric(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		d1, d2 := PhaseDistance(a, b), PhaseDistance(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= math.Pi+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax(nil); got != -1 {
		t.Fatalf("Argmax(nil) = %d, want -1", got)
	}
	if got := Argmax([]float64{1, 3, 2}); got != 1 {
		t.Fatalf("Argmax = %d, want 1", got)
	}
	if got := Argmax([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("Argmax ties = %d, want first index 0", got)
	}
}

func TestVecAbs(t *testing.T) {
	v := Vec{3 + 4i, -5}
	abs := v.Abs()
	if math.Abs(abs[0]-5) > eps || math.Abs(abs[1]-5) > eps {
		t.Fatalf("Abs = %v", abs)
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Mul dimension mismatch")
		}
	}()
	NewMat(2, 3).Mul(NewMat(2, 3))
}

func TestMulVecLinearityProperty(t *testing.T) {
	src := rng.New(50)
	m := NewMat(5, 7)
	for i := range m.Data {
		m.Data[i] = src.ComplexNormal(1)
	}
	err := quick.Check(func(seed uint64) bool {
		probe := rng.New(seed)
		x := make(Vec, 7)
		y := make(Vec, 7)
		for i := range x {
			x[i] = probe.ComplexNormal(1)
			y[i] = probe.ComplexNormal(1)
		}
		alpha := probe.ComplexNormal(1)
		sum := make(Vec, 7)
		for i := range sum {
			sum[i] = alpha*x[i] + y[i]
		}
		left := m.MulVec(sum)
		mx, my := m.MulVec(x), m.MulVec(y)
		for i := range left {
			if cmplx.Abs(left[i]-(alpha*mx[i]+my[i])) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}
