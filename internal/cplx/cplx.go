// Package cplx is the complex linear-algebra substrate shared by the neural
// network, metasurface, and over-the-air computing packages. RF baseband
// signals and metasurface channel responses are inherently complex-valued
// (amplitude + phase), so every weight, symbol, and channel coefficient in
// the system is a complex128.
//
// The package provides dense row-major matrices, vectors, and the handful of
// operations the pipeline is built from: matrix-vector products (the LNN
// forward pass, Eqn 1 of the paper), inner products (the receiver's
// accumulation, Eqn 3), and phase/magnitude utilities used by the
// metasurface configuration solver.
package cplx

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Vec is a dense complex vector.
type Vec []complex128

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add accumulates w into v element-wise. It panics if lengths differ.
func (v Vec) Add(w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("cplx: Add length mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
}

// Scale multiplies every element of v by c.
func (v Vec) Scale(c complex128) {
	for i := range v {
		v[i] *= c
	}
}

// Dot returns the unconjugated dot product Σ v[i]·w[i]. This is the receiver
// accumulation of Eqn 3 (channel response times transmitted symbol), not a
// Hermitian inner product.
func (v Vec) Dot(w Vec) complex128 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("cplx: Dot length mismatch %d != %d", len(v), len(w)))
	}
	return DotInto(0, v, w)
}

// DotInto accumulates the unconjugated dot product Σ a[i]·b[i] onto acc over
// flat slices — the straight fused-multiply-add kernel of every hot row
// sweep (LNN forward pass, cached-response accumulation). Iteration order
// and grouping match Vec.Dot exactly, so results are bit-identical. It reads
// min(len(a), len(b)) elements; callers enforce shape.
func DotInto(acc complex128, a, b []complex128) complex128 {
	if len(a) > len(b) {
		a = a[:len(b)]
	}
	for i, av := range a {
		acc += av * b[i]
	}
	return acc
}

// HermDot returns the Hermitian inner product Σ conj(v[i])·w[i].
func (v Vec) HermDot(w Vec) complex128 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("cplx: HermDot length mismatch %d != %d", len(v), len(w)))
	}
	var sum complex128
	for i := range v {
		sum += cmplx.Conj(v[i]) * w[i]
	}
	return sum
}

// Norm returns the Euclidean norm sqrt(Σ |v[i]|²).
func (v Vec) Norm() float64 {
	var s float64
	for _, c := range v {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return math.Sqrt(s)
}

// Abs returns the element-wise magnitudes |v[i]| as a real slice.
func (v Vec) Abs() []float64 {
	return AbsInto(make([]float64, len(v)), v)
}

// AbsInto writes the element-wise magnitudes |v[i]| into dst and returns
// dst[:len(v)], growing dst only when its capacity is short — the zero-alloc
// variant of Vec.Abs for steady-state loops that reuse a scratch slice.
// math.Hypot is exactly cmplx.Abs's implementation, so the values are
// bit-identical to Abs's.
func AbsInto(dst []float64, v []complex128) []float64 {
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	}
	dst = dst[:len(v)]
	for i, c := range v {
		dst[i] = math.Hypot(real(c), imag(c))
	}
	return dst
}

// MaxAbs returns the largest element magnitude, or 0 for an empty vector.
func (v Vec) MaxAbs() float64 {
	var m float64
	for _, c := range v {
		if a := cmplx.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// Mat is a dense row-major complex matrix.
type Mat struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMat returns a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("cplx: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at row r, column c.
func (m *Mat) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Mat) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a Vec sharing the matrix's storage.
func (m *Mat) Row(r int) Vec { return Vec(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m·x, the LNN forward pass Y = WX of Eqn 1.
func (m *Mat) MulVec(x Vec) Vec {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("cplx: MulVec dimension mismatch cols=%d len(x)=%d", m.Cols, len(x)))
	}
	out := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = DotInto(0, m.Data[r*m.Cols:(r+1)*m.Cols], x)
	}
	return out
}

// MulVecTo computes m·x into dst (len dst == Rows), avoiding allocation on
// hot paths such as per-batch training.
func (m *Mat) MulVecTo(dst, x Vec) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("cplx: MulVecTo dimension mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		dst[r] = DotInto(0, m.Data[r*m.Cols:(r+1)*m.Cols], x)
	}
}

// Mul returns the matrix product m·n.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("cplx: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMat(m.Rows, n.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
			orow := out.Data[r*n.Cols : (r+1)*n.Cols]
			for c, b := range nrow {
				orow[c] += a * b
			}
		}
	}
	return out
}

// MaxAbs returns the largest element magnitude in the matrix.
func (m *Mat) MaxAbs() float64 { return Vec(m.Data).MaxAbs() }

// FrobeniusNorm returns the Frobenius norm of the matrix.
func (m *Mat) FrobeniusNorm() float64 { return Vec(m.Data).Norm() }

// Expi returns e^{jθ}.
func Expi(theta float64) complex128 {
	s, c := math.Sincos(theta)
	return complex(c, s)
}

// WrapPhase reduces θ to the interval [0, 2π).
func WrapPhase(theta float64) float64 {
	t := math.Mod(theta, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	return t
}

// PhaseDistance returns the absolute angular distance between two phases in
// [0, π]. The metasurface config solver uses it to pick the discrete state
// closest to a target phase.
func PhaseDistance(a, b float64) float64 {
	d := math.Abs(WrapPhase(a) - WrapPhase(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// Argmax returns the index of the largest value in xs (first on ties), or -1
// for an empty slice. Classification decisions (Eqn 3's "largest |y_r| wins")
// use it throughout.
func Argmax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best, arg := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, arg = x, i+1
		}
	}
	return arg
}
