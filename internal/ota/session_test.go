package ota

import (
	"math"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

// deployTwice deploys the memoized model twice from identical seeds, so the
// two systems carry bit-identical schedules and independent-but-equal
// random streams.
func deployTwice(t testing.TB, seed uint64) (*System, *System, *nn.EncodedSet) {
	t.Helper()
	m, test, _ := trained(t)
	mk := func() *System {
		src := rng.New(seed)
		sys, err := Deploy(m.Weights(), NewOptions(src.Split()), src)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	return mk(), mk(), test
}

func TestSerialEvaluationBitIdenticalAcrossAPIs(t *testing.T) {
	// The System's Predict (bound default session) and an EvaluateParallel
	// run with workers=1 through the same System must agree per sample —
	// the refactor's backward-compatibility contract.
	sysA, sysB, test := deployTwice(t, 21)
	for i, x := range test.X[:50] {
		if got, want := sysB.Predict(x), sysA.Predict(x); got != want {
			t.Fatalf("sample %d: identical-seed systems disagree (%d vs %d)", i, got, want)
		}
	}
	sysC, sysD, _ := deployTwice(t, 22)
	serial := nn.Evaluate(sysC, test)
	par1 := nn.EvaluateParallel(test, 1, func(int) nn.Predictor { return sysD })
	if serial != par1 {
		t.Fatalf("EvaluateParallel(workers=1) = %v, serial Evaluate = %v; want bit-identical", par1, serial)
	}
}

func TestSessionPredictMatchesBoundSession(t *testing.T) {
	// A Session created from the same source as a System's bound session
	// must replay the System's exact stream.
	m, test, _ := trained(t)
	src1 := rng.New(23)
	sysA, err := Deploy(m.Weights(), NewOptions(src1.Split()), src1)
	if err != nil {
		t.Fatal(err)
	}
	src2 := rng.New(23)
	d, err := NewDeployment(m.Weights(), NewOptions(src2.Split()), src2)
	if err != nil {
		t.Fatal(err)
	}
	sess := d.NewSession(src2)
	for i, x := range test.X[:50] {
		if got, want := sess.Predict(x), sysA.Predict(x); got != want {
			t.Fatalf("sample %d: standalone session %d != system's bound session %d", i, got, want)
		}
	}
}

func TestEvaluateParallelStatisticallyEquivalent(t *testing.T) {
	// Fanned-out sessions draw different noise than the serial pass, but
	// over a few hundred samples the accuracies must agree closely.
	sysA, sysB, test := deployTwice(t, 24)
	serial := nn.Evaluate(sysA, test)
	ss := sysB.Sessions(4)
	par := nn.EvaluateParallel(test, 4, func(w int) nn.Predictor { return ss[w] })
	if math.Abs(par-serial) > 0.05 {
		t.Fatalf("parallel accuracy %.3f deviates from serial %.3f by more than 5 points", par, serial)
	}
}

func TestSessionsReproducibleAcrossRuns(t *testing.T) {
	// Sessions(n, src) is a pure function of the source state: two fleets
	// derived from equal seeds predict identically, worker by worker.
	m, test, _ := trained(t)
	mkFleet := func() []*Session {
		src := rng.New(25)
		d, err := NewDeployment(m.Weights(), NewOptions(src.Split()), src)
		if err != nil {
			t.Fatal(err)
		}
		return d.Sessions(3, rng.New(99))
	}
	f1, f2 := mkFleet(), mkFleet()
	for w := range f1 {
		for i, x := range test.X[:20] {
			if got, want := f1[w].Predict(x), f2[w].Predict(x); got != want {
				t.Fatalf("worker %d sample %d: fleets disagree (%d vs %d)", w, i, got, want)
			}
		}
	}
}

func TestConcurrentSessionsOnSharedDeployment(t *testing.T) {
	// 16 goroutines hammer one shared Deployment through private sessions.
	// Run with -race: the deployment is immutable, so the only mutable
	// state is each worker's own rng stream.
	m, test, _ := trained(t)
	src := rng.New(26)
	d, err := NewDeployment(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	sessions := d.Sessions(goroutines, src)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		sess := sessions[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				x := test.X[i%len(test.X)]
				p := sess.Predict(x)
				if p < 0 || p >= d.Classes() {
					errs <- "prediction out of class range"
					return
				}
				logits := sess.Logits(x)
				if len(logits) != d.Classes() {
					errs <- "logits length mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestRecomputeUpdatesDerivedState(t *testing.T) {
	// Recompute at the deployed geometry is a no-op for realized responses;
	// at a moved geometry it must change them (the mobility path).
	m, _, _ := trained(t)
	src := rng.New(27)
	sys, err := Deploy(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Realized.Clone()
	moved := sys.Options().Geometry
	moved.RxAngleDeg += 20
	sys.Recompute(moved)
	changed := false
	for i := range before.Data {
		if before.Data[i] != sys.Realized.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("Recompute at a moved geometry left realized responses unchanged")
	}
}
