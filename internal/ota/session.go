package ota

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

// Session is one worker's view of a shared Deployment: it owns every piece
// of mutable runtime state an inference needs — the channel/noise source,
// the sync-offset sampler's draws, and the jitter replay stream. Sessions
// are cheap to create and independent of each other; a Session must not be
// used from more than one goroutine at a time, but any number of Sessions
// may run concurrently against the same Deployment.
type Session struct {
	d    *Deployment
	src  *rng.Source
	hook FaultHook
	span *trace.Span

	// Steady-state scratch, lazily built on the first inference: the
	// per-transmission channel source is re-seeded in place (SplitInto) and
	// the realization re-initialized in place (NewRealizationInto), consuming
	// draws exactly as freshly allocated ones would. After warmup,
	// AccumulateInto allocates nothing.
	chSrc *rng.Source
	rz    channel.Realization
}

// FaultHook intercepts a Session's per-symbol physics to inject discrete
// hardware and channel faults (package faults implements the repertoire:
// shift-register glitches, symbol erasures, burst interference, coherence
// collapse). A hook belongs to exactly one session and must draw randomness
// only from its own sources — never from the session's — so that a hook
// whose fault rates are all zero leaves the session's random stream, and
// therefore its accumulators, bit-identical to an unhooked run.
type FaultHook interface {
	// BeginTransmission is called once before each output replay r, letting
	// per-transmission fault processes draw their windows.
	BeginTransmission(r int)
	// Symbol may perturb one per-symbol term: h is the effective MTS
	// response (after sync blending, jitter, and channel scaling), x the
	// data symbol. It returns the possibly perturbed pair plus an additive
	// interference sample (zero when no interference fires).
	Symbol(r, i int, h, x complex128) (hOut, xOut, interference complex128)
}

// SetFaultHook installs (or, with nil, removes) the session's fault hook
// and returns the session for chaining. Hooks are per-session state: wire
// each worker's session its own hook instance.
func (s *Session) SetFaultHook(h FaultHook) *Session {
	s.hook = h
	return s
}

// SetSpan parents the session's next inferences under a trace span (nil
// detaches). Sessions are single-goroutine, so the caller that owns the
// request trace — a serve worker, Pipeline.InferSession — sets the span
// before the inference and clears it after; the span itself never draws
// from the session's random stream, so tracing leaves accumulators
// bit-identical.
func (s *Session) SetSpan(sp *trace.Span) *Session {
	s.span = sp
	return s
}

// Deployment returns the shared immutable deployment this session draws
// inference from.
func (s *Session) Deployment() *Deployment { return s.d }

// Accumulate runs one full over-the-air inference: every output class r is
// computed by replaying the symbol stream against its weight schedule, with
// multipath, noise, jitter, and clock offset applied. It returns the
// complex accumulator per class (before the magnitude of Eqn 3).
func (s *Session) Accumulate(x []complex128) cplx.Vec {
	return s.AccumulateInto(x, make(cplx.Vec, s.d.classes))
}

// AccumulateInto is Accumulate writing into dst (len == Classes) — the
// zero-alloc variant for steady-state serving loops. The accumulator bits
// are identical to Accumulate's: reusing dst and the session's internal
// scratch changes where results live, never what is drawn or summed.
func (s *Session) AccumulateInto(x []complex128, dst cplx.Vec) cplx.Vec {
	d := s.d
	if len(x) != d.u {
		panic(fmt.Sprintf("ota: input length %d, deployed for U=%d", len(x), d.u))
	}
	if len(dst) != d.classes {
		panic(fmt.Sprintf("ota: accumulator length %d, deployment has %d classes", len(dst), d.classes))
	}
	t := obs.StartTimer()
	defer t.ObserveInto(otaInferSeconds)
	otaInferences.Inc()
	otaTransmissions.Add(int64(d.classes))
	otaSymbols.Add(int64(d.classes) * int64(d.u))
	asp := s.span.Child("ota.accumulate")
	asp.SetNum("classes", float64(d.classes))
	asp.SetNum("u", float64(d.u))
	if n := len(d.opts.Stack); n > 0 {
		asp.SetNum("layers", float64(n+1))
	}
	s.accumulate(x, dst, asp)
	asp.End()
	return dst
}

// AccumulateBatch runs one inference per input of xs into dst, amortizing
// the per-call bookkeeping — timer, counters, span construction — across
// the batch. Requests are replayed strictly in order on the session's
// single random stream, so the accumulators are bit-identical to len(xs)
// sequential AccumulateInto calls for any batch size; the speedup comes
// from hoisted overhead and the session's reused realization scratch, not
// from reusing draws across requests. dst is grown as needed (entries with
// the right length are reused in place) and returned as dst[:len(xs)].
func (s *Session) AccumulateBatch(xs [][]complex128, dst []cplx.Vec) []cplx.Vec {
	d := s.d
	n := len(xs)
	for b, x := range xs {
		if len(x) != d.u {
			panic(fmt.Sprintf("ota: batch input %d length %d, deployed for U=%d", b, len(x), d.u))
		}
	}
	if cap(dst) < n {
		grown := make([]cplx.Vec, n)
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	t := obs.StartTimer()
	otaInferences.Add(int64(n))
	otaTransmissions.Add(int64(n) * int64(d.classes))
	otaSymbols.Add(int64(n) * int64(d.classes) * int64(d.u))
	asp := s.span.Child("ota.accumulate")
	asp.SetNum("classes", float64(d.classes))
	asp.SetNum("u", float64(d.u))
	asp.SetNum("batch", float64(n))
	if k := len(d.opts.Stack); k > 0 {
		asp.SetNum("layers", float64(k+1))
	}
	for b, x := range xs {
		if len(dst[b]) != d.classes {
			dst[b] = make(cplx.Vec, d.classes)
		}
		s.accumulate(x, dst[b], asp)
	}
	asp.End()
	// One histogram observation per request at the per-request mean keeps
	// the ota.infer.seconds series count- and scale-comparable with the
	// unbatched path.
	t.ObserveMeanInto(otaInferSeconds, n)
	return dst
}

// accumulate is the shared physics core: one full inference into dst, with
// per-class replay spans hung under asp when tracing is live. Each class
// replay re-seeds the session's scratch channel source and realization in
// place — draw-for-draw what freshly split/allocated ones would consume —
// then dispatches to the fast replay loop when no per-symbol overhead is
// required, or to the general loop otherwise.
func (s *Session) accumulate(x []complex128, dst cplx.Vec, asp *trace.Span) {
	d := s.d
	for r := 0; r < d.classes; r++ {
		var rsp *trace.Span
		if asp != nil {
			rsp = asp.Child("ota.replay")
			rsp.SetNum("class", float64(r))
		}
		if s.hook != nil {
			s.hook.BeginTransmission(r)
		}
		s.chSrc = s.src.SplitInto(s.chSrc)
		var rz *channel.Realization
		if d.compensate {
			// The calibrated quasi-static components persist; only scatter
			// and blockage vary. If the environment has drifted since
			// calibration (a dynamic interferer), the stale estimate leaks.
			rz = d.ch.NewRealizationFromInto(&s.rz, d.envBase, d.calMTSPhase, s.chSrc)
		} else {
			rz = d.ch.NewRealizationInto(&s.rz, s.chSrc)
		}
		var offset float64
		if d.opts.SyncSampler != nil {
			offset = d.opts.SyncSampler(s.src)
		}
		var sum complex128
		if s.hook == nil && offset == 0 && !(d.opts.ExactJitter && d.opts.JitterStd > 0) {
			sum = s.fastReplay(r, x, rz)
		} else {
			sum = s.slowReplay(r, x, rz, offset)
		}
		dst[r] = sum
		if rsp != nil {
			rsp.SetNum("acc_re", real(sum))
			rsp.SetNum("acc_im", imag(sum))
			rsp.End()
		}
	}
}

// fastReplay is the per-symbol loop for the common perfectly synchronized,
// unhooked case (offset 0, no exact jitter): the schedule row is read by
// direct index — no Floor, no modulo — per-symbol channel state comes from
// one fused Realization.Step call, and noise/jitter draws use the hoisted
// standard deviations. When the deployment's static-channel cache is valid
// (staticOK), the composed response row is a precomputed flat slice and the
// loop is a straight multiply-add. Every variant consumes the session and
// realization streams in the general path's per-source order and keeps its
// exact floating-point grouping, so accumulators are bit-identical to
// slowReplay's.
func (s *Session) fastReplay(r int, x []complex128, rz *channel.Realization) complex128 {
	d := s.d
	noiseSD := d.noiseSD
	var sum complex128
	if d.opts.SubSamples > 0 {
		row := d.Realized.Data[r*d.u : (r+1)*d.u]
		if d.opts.JitterStd > 0 {
			jatt, jsd := complex(d.jitterAtt, 0), d.jitterSD
			for i, xi := range x {
				_, scale := rz.Step(i)
				h := (row[i]*jatt + s.src.ComplexNormalSD(jsd)) * scale
				sum += h*xi + s.src.ComplexNormalSD(noiseSD)
			}
		} else {
			for i, xi := range x {
				_, scale := rz.Step(i)
				sum += (row[i]*scale)*xi + s.src.ComplexNormalSD(noiseSD)
			}
		}
		return sum
	}
	envScale := complex(d.envScale, 0)
	if d.staticOK {
		// Static-channel epoch: the cached row already carries the pinned
		// calibrated MTS phase, so only the environmental term and noise
		// remain per symbol. staticOK guarantees no Doppler ramp and no
		// blockage Bernoulli, so the per-symbol channel state is exactly the
		// scatter draw(s) — inlined here with Step's draw order and
		// floating-point grouping, leaving a straight multiply-add loop.
		row := d.staticResp[r*d.u : (r+1)*d.u]
		base := rz.Base()
		scatSD := rz.ScatterSD()
		ch, ns := s.chSrc, s.src
		if rz.HasDrift() {
			driftSD := rz.DriftSD()
			for i, xi := range x {
				scatter := ch.ComplexNormalSD(scatSD)
				scatter += ch.ComplexNormalSD(driftSD)
				env := base + scatter
				sum += (row[i]+env*envScale)*xi + ns.ComplexNormalSD(noiseSD)
			}
		} else {
			for i, xi := range x {
				env := base + ch.ComplexNormalSD(scatSD)
				sum += (row[i]+env*envScale)*xi + ns.ComplexNormalSD(noiseSD)
			}
		}
		return sum
	}
	row := d.Realized.Data[r*d.u : (r+1)*d.u]
	if d.opts.JitterStd > 0 {
		jatt, jsd := complex(d.jitterAtt, 0), d.jitterSD
		for i, xi := range x {
			env, scale := rz.Step(i)
			h := (row[i]*jatt + s.src.ComplexNormalSD(jsd)) * scale
			sum += (h+env*envScale)*xi + s.src.ComplexNormalSD(noiseSD)
		}
	} else {
		for i, xi := range x {
			env, scale := rz.Step(i)
			sum += (row[i]*scale+env*envScale)*xi + s.src.ComplexNormalSD(noiseSD)
		}
	}
	return sum
}

// slowReplay is the general per-symbol loop: fault hooks, clock offsets,
// and exact jitter all route here. It is the seed implementation verbatim.
func (s *Session) slowReplay(r int, x []complex128, rz *channel.Realization, offset float64) complex128 {
	d := s.d
	noise2 := d.noise2
	var sum complex128
	for i := range x {
		h := s.effectiveResponse(r, i, offset) * rz.MTSScaleAt(i)
		xi := x[i]
		var extra complex128
		if s.hook != nil {
			h, xi, extra = s.hook.Symbol(r, i, h, xi)
		}
		if d.opts.SubSamples > 0 {
			// Zero-mean chips + synchronized MTS sign flips: the static
			// within-symbol environment integrates to zero, the MTS path
			// adds coherently, and the combined noise keeps the
			// single-sample variance (chip noise is wider-band).
			sum += h*xi + s.src.ComplexNormal(noise2)
		} else {
			env := rz.EnvAt(i) * complex(d.envScale, 0)
			sum += (h+env)*xi + s.src.ComplexNormal(noise2)
		}
		if extra != 0 {
			sum += extra
		}
	}
	return sum
}

// wrapIdx reduces k into [0, n) with Euclidean wrap-around — the schedule
// index under a clock offset. A plain function (not a closure) keeps the
// offset path allocation-free.
func wrapIdx(k, n int) int {
	return ((k % n) + n) % n
}

// effectiveResponse returns the MTS response seen by data symbol i of output
// r under a schedule/data clock offset (in symbols): an offset with
// fractional part f mixes the two adjacent schedule entries in proportion to
// their time overlap, and jitter perturbs the response per reconfiguration.
func (s *Session) effectiveResponse(r, i int, offset float64) complex128 {
	d := s.d
	if offset == 0 && !(d.opts.ExactJitter && d.opts.JitterStd > 0) {
		// Perfectly synchronized: Floor(0) = 0 and the fractional blend
		// vanishes, so the response is the directly indexed schedule entry
		// (plus jitter). Bit-identical to the general arithmetic below at
		// offset 0 — pinned by TestEffectiveResponseFastPathBitIdentical.
		h := d.Realized.At(r, i)
		if d.opts.JitterStd > 0 {
			h = h*complex(d.jitterAtt, 0) + s.src.ComplexNormalSD(d.jitterSD)
		}
		return h
	}
	base := math.Floor(offset)
	frac := offset - base
	i0 := wrapIdx(i-int(base), d.u)
	if d.opts.ExactJitter && d.opts.JitterStd > 0 {
		// Atom-by-atom jitter on the actual scheduled configuration(s) —
		// composed per layer when a cascade is deployed.
		h := d.exactJitterResponse(r, i0, s.src)
		if frac >= 1e-9 {
			i1 := wrapIdx(i-int(base)-1, d.u)
			h1 := d.exactJitterResponse(r, i1, s.src)
			h = h*complex(1-frac, 0) + h1*complex(frac, 0)
		}
		return h
	}
	h0 := d.Realized.At(r, i0)
	var h complex128
	if frac < 1e-9 {
		h = h0
	} else {
		h1 := d.Realized.At(r, wrapIdx(i-int(base)-1, d.u))
		h = h0*complex(1-frac, 0) + h1*complex(frac, 0)
	}
	if d.opts.JitterStd > 0 {
		h = h*complex(d.jitterAtt, 0) + s.src.ComplexNormalSD(d.jitterSD)
	}
	return h
}

// Logits returns |accumulator| per class — the y_r of Eqn 3.
func (s *Session) Logits(x []complex128) []float64 {
	return s.Accumulate(x).Abs()
}

// Predict classifies one encoded input over the air.
func (s *Session) Predict(x []complex128) int {
	return cplx.Argmax(s.Logits(x))
}
