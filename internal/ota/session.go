package ota

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

// Session is one worker's view of a shared Deployment: it owns every piece
// of mutable runtime state an inference needs — the channel/noise source,
// the sync-offset sampler's draws, and the jitter replay stream. Sessions
// are cheap to create and independent of each other; a Session must not be
// used from more than one goroutine at a time, but any number of Sessions
// may run concurrently against the same Deployment.
type Session struct {
	d    *Deployment
	src  *rng.Source
	hook FaultHook
	span *trace.Span
}

// FaultHook intercepts a Session's per-symbol physics to inject discrete
// hardware and channel faults (package faults implements the repertoire:
// shift-register glitches, symbol erasures, burst interference, coherence
// collapse). A hook belongs to exactly one session and must draw randomness
// only from its own sources — never from the session's — so that a hook
// whose fault rates are all zero leaves the session's random stream, and
// therefore its accumulators, bit-identical to an unhooked run.
type FaultHook interface {
	// BeginTransmission is called once before each output replay r, letting
	// per-transmission fault processes draw their windows.
	BeginTransmission(r int)
	// Symbol may perturb one per-symbol term: h is the effective MTS
	// response (after sync blending, jitter, and channel scaling), x the
	// data symbol. It returns the possibly perturbed pair plus an additive
	// interference sample (zero when no interference fires).
	Symbol(r, i int, h, x complex128) (hOut, xOut, interference complex128)
}

// SetFaultHook installs (or, with nil, removes) the session's fault hook
// and returns the session for chaining. Hooks are per-session state: wire
// each worker's session its own hook instance.
func (s *Session) SetFaultHook(h FaultHook) *Session {
	s.hook = h
	return s
}

// SetSpan parents the session's next inferences under a trace span (nil
// detaches). Sessions are single-goroutine, so the caller that owns the
// request trace — a serve worker, Pipeline.InferSession — sets the span
// before the inference and clears it after; the span itself never draws
// from the session's random stream, so tracing leaves accumulators
// bit-identical.
func (s *Session) SetSpan(sp *trace.Span) *Session {
	s.span = sp
	return s
}

// Deployment returns the shared immutable deployment this session draws
// inference from.
func (s *Session) Deployment() *Deployment { return s.d }

// Accumulate runs one full over-the-air inference: every output class r is
// computed by replaying the symbol stream against its weight schedule, with
// multipath, noise, jitter, and clock offset applied. It returns the
// complex accumulator per class (before the magnitude of Eqn 3).
func (s *Session) Accumulate(x []complex128) cplx.Vec {
	d := s.d
	if len(x) != d.u {
		panic(fmt.Sprintf("ota: input length %d, deployed for U=%d", len(x), d.u))
	}
	t := obs.StartTimer()
	defer t.ObserveInto(otaInferSeconds)
	otaInferences.Inc()
	otaTransmissions.Add(int64(d.classes))
	otaSymbols.Add(int64(d.classes) * int64(d.u))
	asp := s.span.Child("ota.accumulate")
	asp.SetNum("classes", float64(d.classes))
	asp.SetNum("u", float64(d.u))
	if n := len(d.opts.Stack); n > 0 {
		asp.SetNum("layers", float64(n+1))
	}
	acc := make(cplx.Vec, d.classes)
	noise2 := d.noise2
	for r := 0; r < d.classes; r++ {
		var rsp *trace.Span
		if asp != nil {
			rsp = asp.Child("ota.replay")
			rsp.SetNum("class", float64(r))
		}
		if s.hook != nil {
			s.hook.BeginTransmission(r)
		}
		var rz *channel.Realization
		if d.compensate {
			// The calibrated quasi-static components persist; only scatter
			// and blockage vary. If the environment has drifted since
			// calibration (a dynamic interferer), the stale estimate leaks.
			rz = d.ch.NewRealizationFrom(d.envBase, d.calMTSPhase, s.src.Split())
		} else {
			rz = d.ch.NewRealization(s.src.Split())
		}
		var offset float64
		if d.opts.SyncSampler != nil {
			offset = d.opts.SyncSampler(s.src)
		}
		var sum complex128
		for i := range x {
			h := s.effectiveResponse(r, i, offset) * rz.MTSScaleAt(i)
			xi := x[i]
			var extra complex128
			if s.hook != nil {
				h, xi, extra = s.hook.Symbol(r, i, h, xi)
			}
			if d.opts.SubSamples > 0 {
				// Zero-mean chips + synchronized MTS sign flips: the static
				// within-symbol environment integrates to zero, the MTS path
				// adds coherently, and the combined noise keeps the
				// single-sample variance (chip noise is wider-band).
				sum += h*xi + s.src.ComplexNormal(noise2)
			} else {
				env := rz.EnvAt(i) * complex(d.envScale, 0)
				sum += (h+env)*xi + s.src.ComplexNormal(noise2)
			}
			if extra != 0 {
				sum += extra
			}
		}
		acc[r] = sum
		if rsp != nil {
			rsp.SetNum("acc_re", real(sum))
			rsp.SetNum("acc_im", imag(sum))
			rsp.End()
		}
	}
	asp.End()
	return acc
}

// effectiveResponse returns the MTS response seen by data symbol i of output
// r under a schedule/data clock offset (in symbols): an offset with
// fractional part f mixes the two adjacent schedule entries in proportion to
// their time overlap, and jitter perturbs the response per reconfiguration.
func (s *Session) effectiveResponse(r, i int, offset float64) complex128 {
	d := s.d
	base := math.Floor(offset)
	frac := offset - base
	idx := func(k int) int {
		n := d.u
		return ((k % n) + n) % n
	}
	i0 := idx(i - int(base))
	if d.opts.ExactJitter && d.opts.JitterStd > 0 {
		// Atom-by-atom jitter on the actual scheduled configuration(s) —
		// composed per layer when a cascade is deployed.
		h := d.exactJitterResponse(r, i0, s.src)
		if frac >= 1e-9 {
			i1 := idx(i - int(base) - 1)
			h1 := d.exactJitterResponse(r, i1, s.src)
			h = h*complex(1-frac, 0) + h1*complex(frac, 0)
		}
		return h
	}
	h0 := d.Realized.At(r, i0)
	var h complex128
	if frac < 1e-9 {
		h = h0
	} else {
		h1 := d.Realized.At(r, idx(i-int(base)-1))
		h = h0*complex(1-frac, 0) + h1*complex(frac, 0)
	}
	if d.opts.JitterStd > 0 {
		h = h*complex(d.jitterAtt, 0) + s.src.ComplexNormal(d.jitterVar)
	}
	return h
}

// Logits returns |accumulator| per class — the y_r of Eqn 3.
func (s *Session) Logits(x []complex128) []float64 {
	return s.Accumulate(x).Abs()
}

// Predict classifies one encoded input over the air.
func (s *Session) Predict(x []complex128) int {
	return cplx.Argmax(s.Logits(x))
}
