package ota

import (
	"testing"

	"repro/internal/rng"
)

// Deployment solves R·U discrete configurations; this is the §7
// recalibration cost in full.
func BenchmarkDeploy(b *testing.B) {
	m, _, _ := trained(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(uint64(i))
		if _, err := Deploy(m.Weights(), NewOptions(src.Split()), src); err != nil {
			b.Fatal(err)
		}
	}
}

// One over-the-air inference: R sequential transmissions of U symbols with
// every impairment enabled.
func BenchmarkInference(b *testing.B) {
	m, test, _ := trained(b)
	src := rng.New(1)
	sys, err := Deploy(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Predict(test.X[i%len(test.X)])
	}
}
