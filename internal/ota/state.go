package ota

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/rng"
)

// SurfaceState is the serializable description of a programmable
// metasurface: the grid, the carrier, and the per-atom static fabrication
// offsets that make one physical surface different from the ideal one.
type SurfaceState struct {
	Rows, Cols, Bits int
	FreqGHz          float64
	SpacingM         float64
	FabPhaseStd      float64
	Fab              []float64
}

// DeploymentState is everything a Deployment needs to be rebuilt without
// re-solving: the full Options (minus the SyncSampler function, which is
// runtime-only and must be re-attached by the caller via WithSyncSampler),
// the solved schedule, the physically realized responses, and the
// calibration constants of the Eqn 8 compensation path. FromState(d.State())
// yields a deployment whose inference accumulators are bit-identical to d's
// under equal session seeds — every derived statistic is either carried here
// or recomputed by the exact arithmetic NewDeployment uses.
//
// The state shares storage with its deployment; treat it as read-only.
type DeploymentState struct {
	Surface    SurfaceState
	Geometry   mts.Geometry
	Controller mts.Controller
	Channel    channel.Params

	SubSamples      int
	TargetScale     float64
	BeamScanStepDeg float64
	JitterStd       float64
	SymbolRateHz    float64
	ExactJitter     bool
	CompensateEnv   bool

	Schedule      [][]mts.Config
	Realized      *cplx.Mat
	Gamma         float64
	EstRxAngleDeg float64

	// Eqn 8 calibration constants (zero unless CompensateEnv).
	EnvBase     complex128
	CalMTSPhase complex128
	EnvScale    float64

	// Stacked-cascade extensions (absent — all nil/zero — for the paper's
	// single-surface system; their presence bumps the checkpoint envelope
	// to version 2). Layers and LayerSchedules describe the extra surfaces
	// and their solved configurations; Realized above already holds the
	// COMPOSED end-to-end responses.
	Layers         []CascadeLayerState
	LayerSchedules [][][]mts.Config
	LayerPower     []float64
	HopNoise       float64
}

// CascadeLayerState is the serializable description of one extra cascade
// layer: its surface and its hop geometry.
type CascadeLayerState struct {
	Surface  SurfaceState
	Geometry mts.Geometry
}

// State captures the deployment as a serializable snapshot.
func (d *Deployment) State() *DeploymentState {
	s := d.opts.Surface
	st := &DeploymentState{
		Surface: SurfaceState{
			Rows: s.Rows, Cols: s.Cols, Bits: s.Bits,
			FreqGHz: s.FreqGHz, SpacingM: s.SpacingM,
			FabPhaseStd: s.FabPhaseStd, Fab: s.FabOffsets(),
		},
		Geometry:        d.opts.Geometry,
		Controller:      d.opts.Controller,
		Channel:         d.opts.Channel,
		SubSamples:      d.opts.SubSamples,
		TargetScale:     d.opts.TargetScale,
		BeamScanStepDeg: d.opts.BeamScanStepDeg,
		JitterStd:       d.opts.JitterStd,
		SymbolRateHz:    d.opts.SymbolRateHz,
		ExactJitter:     d.opts.ExactJitter,
		CompensateEnv:   d.opts.CompensateEnv,
		Schedule:        d.Schedule,
		Realized:        d.Realized,
		Gamma:           d.Gamma,
		EstRxAngleDeg:   d.EstRxAngleDeg,
	}
	if d.compensate {
		st.EnvBase = d.envBase
		st.CalMTSPhase = d.calMTSPhase
		st.EnvScale = d.envScale
	}
	for _, lay := range d.opts.Stack {
		ls := lay.Surface
		st.Layers = append(st.Layers, CascadeLayerState{
			Surface: SurfaceState{
				Rows: ls.Rows, Cols: ls.Cols, Bits: ls.Bits,
				FreqGHz: ls.FreqGHz, SpacingM: ls.SpacingM,
				FabPhaseStd: ls.FabPhaseStd, Fab: ls.FabOffsets(),
			},
			Geometry: lay.Geometry,
		})
	}
	if len(d.opts.Stack) > 0 {
		st.LayerSchedules = d.layerSched
		st.LayerPower = d.power
		st.HopNoise = d.opts.HopNoise
	}
	return st
}

// Validate checks the state's internal consistency: grid and schedule
// dimensions agree, every configuration covers every atom, and every state
// index is representable at the surface's bit depth. It is the gate between
// a decoded checkpoint and the panic-free serving path.
func (st *DeploymentState) Validate() error {
	atoms := st.Surface.Rows * st.Surface.Cols
	if st.Surface.Rows <= 0 || st.Surface.Cols <= 0 {
		return fmt.Errorf("ota: state has invalid grid %dx%d", st.Surface.Rows, st.Surface.Cols)
	}
	if st.Surface.Bits <= 0 || st.Surface.Bits > 8 {
		return fmt.Errorf("ota: state has unsupported bit depth %d", st.Surface.Bits)
	}
	if st.Surface.Fab != nil && len(st.Surface.Fab) != atoms {
		return fmt.Errorf("ota: state has %d fabrication offsets for %d atoms", len(st.Surface.Fab), atoms)
	}
	if st.Realized == nil || st.Realized.Rows <= 0 || st.Realized.Cols <= 0 {
		return fmt.Errorf("ota: state has no realized responses")
	}
	if len(st.Realized.Data) != st.Realized.Rows*st.Realized.Cols {
		return fmt.Errorf("ota: state realized matrix carries %d entries for %dx%d",
			len(st.Realized.Data), st.Realized.Rows, st.Realized.Cols)
	}
	if len(st.Schedule) != st.Realized.Rows {
		return fmt.Errorf("ota: state schedule has %d outputs, realized responses have %d", len(st.Schedule), st.Realized.Rows)
	}
	states := uint8(1) << st.Surface.Bits
	for r, row := range st.Schedule {
		if len(row) != st.Realized.Cols {
			return fmt.Errorf("ota: state schedule output %d has %d symbols, want %d", r, len(row), st.Realized.Cols)
		}
		for i, cfg := range row {
			if len(cfg) != atoms {
				return fmt.Errorf("ota: state schedule (%d,%d) configures %d atoms, surface has %d", r, i, len(cfg), atoms)
			}
			for _, stt := range cfg {
				if stt >= states {
					return fmt.Errorf("ota: state schedule (%d,%d) uses state %d beyond %d-bit depth", r, i, stt, st.Surface.Bits)
				}
			}
		}
	}
	return st.validateCascade()
}

// validateCascade checks the stacked-layer extension block: every extra
// layer's grid/bit depth, its schedule's shape against the deployment
// dimensions, and the power allocation's arity and positivity.
func (st *DeploymentState) validateCascade() error {
	if len(st.Layers) == 0 {
		if len(st.LayerSchedules) != 0 || len(st.LayerPower) != 0 {
			return fmt.Errorf("ota: state carries cascade schedules or power without cascade layers")
		}
		return nil
	}
	if len(st.LayerSchedules) != len(st.Layers) {
		return fmt.Errorf("ota: state has %d layer schedules for %d cascade layers", len(st.LayerSchedules), len(st.Layers))
	}
	if st.LayerPower != nil && len(st.LayerPower) != 1+len(st.Layers) {
		return fmt.Errorf("ota: state has %d power amplitudes for %d layers", len(st.LayerPower), 1+len(st.Layers))
	}
	for _, p := range st.LayerPower {
		if !(p > 0) || math.IsInf(p, 0) {
			return fmt.Errorf("ota: state layer drive amplitude %v out of (0, ∞)", p)
		}
	}
	if st.HopNoise < 0 || math.IsNaN(st.HopNoise) {
		return fmt.Errorf("ota: state hop-noise fraction %v negative", st.HopNoise)
	}
	for k, lay := range st.Layers {
		atoms := lay.Surface.Rows * lay.Surface.Cols
		if lay.Surface.Rows <= 0 || lay.Surface.Cols <= 0 {
			return fmt.Errorf("ota: cascade layer %d has invalid grid %dx%d", k+1, lay.Surface.Rows, lay.Surface.Cols)
		}
		if lay.Surface.Bits <= 0 || lay.Surface.Bits > 8 {
			return fmt.Errorf("ota: cascade layer %d has unsupported bit depth %d", k+1, lay.Surface.Bits)
		}
		if lay.Surface.Fab != nil && len(lay.Surface.Fab) != atoms {
			return fmt.Errorf("ota: cascade layer %d has %d fabrication offsets for %d atoms", k+1, len(lay.Surface.Fab), atoms)
		}
		sched := st.LayerSchedules[k]
		if len(sched) != st.Realized.Rows {
			return fmt.Errorf("ota: cascade layer %d schedule has %d outputs, want %d", k+1, len(sched), st.Realized.Rows)
		}
		states := uint8(1) << lay.Surface.Bits
		for r, row := range sched {
			if len(row) != st.Realized.Cols {
				return fmt.Errorf("ota: cascade layer %d schedule output %d has %d symbols, want %d", k+1, r, len(row), st.Realized.Cols)
			}
			for i, cfg := range row {
				if len(cfg) != atoms {
					return fmt.Errorf("ota: cascade layer %d schedule (%d,%d) configures %d atoms, layer has %d", k+1, r, i, len(cfg), atoms)
				}
				for _, stt := range cfg {
					if stt >= states {
						return fmt.Errorf("ota: cascade layer %d schedule (%d,%d) uses state %d beyond %d-bit depth", k+1, r, i, stt, lay.Surface.Bits)
					}
				}
			}
		}
	}
	return nil
}

// FromState rebuilds a deployment from a snapshot with zero re-solving: the
// schedule and realized responses are taken verbatim, and every derived
// statistic (path phases, signal RMS, noise variance, jitter moments) is
// recomputed with the same arithmetic NewDeployment uses, so accumulators
// are bit-identical to the snapshotted deployment's. The restored
// deployment's SyncSampler is nil; re-attach one with WithSyncSampler when
// the original deployment had one.
func FromState(st *DeploymentState) (*Deployment, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	surface, err := mts.SurfaceFromOffsets(st.Surface.Rows, st.Surface.Cols, st.Surface.Bits,
		st.Surface.FreqGHz, st.Surface.SpacingM, st.Surface.FabPhaseStd, st.Surface.Fab)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Surface:         surface,
		Geometry:        st.Geometry,
		Controller:      st.Controller,
		Channel:         st.Channel,
		SubSamples:      st.SubSamples,
		TargetScale:     st.TargetScale,
		BeamScanStepDeg: st.BeamScanStepDeg,
		JitterStd:       st.JitterStd,
		SymbolRateHz:    st.SymbolRateHz,
		ExactJitter:     st.ExactJitter,
		CompensateEnv:   st.CompensateEnv,
	}
	if opts.SymbolRateHz <= 0 {
		opts.SymbolRateHz = 1e6
	}
	for _, lay := range st.Layers {
		ls, err := mts.SurfaceFromOffsets(lay.Surface.Rows, lay.Surface.Cols, lay.Surface.Bits,
			lay.Surface.FreqGHz, lay.Surface.SpacingM, lay.Surface.FabPhaseStd, lay.Surface.Fab)
		if err != nil {
			return nil, err
		}
		opts.Stack = append(opts.Stack, CascadeLayer{Surface: ls, Geometry: lay.Geometry})
	}
	opts.LayerPower = st.LayerPower
	opts.HopNoise = st.HopNoise
	d := &Deployment{
		opts:          opts,
		Schedule:      st.Schedule,
		Realized:      st.Realized,
		Gamma:         st.Gamma,
		EstRxAngleDeg: st.EstRxAngleDeg,
		classes:       st.Realized.Rows,
		u:             st.Realized.Cols,
		ch:            channel.New(opts.Channel),
	}
	if st.CompensateEnv {
		d.compensate = true
		d.envBase = st.EnvBase
		d.calMTSPhase = st.CalMTSPhase
		d.envScale = st.EnvScale
	}
	// The solver-side frame: the ideal (fabrication-free, λ/2-pitch) surface
	// at the estimated receiver angle, exactly as NewDeployment derived it.
	ideal, err := mts.NewSurface(surface.Rows, surface.Cols, surface.Bits, surface.FreqGHz, nil)
	if err != nil {
		return nil, err
	}
	estGeom := opts.Geometry
	estGeom.RxAngleDeg = st.EstRxAngleDeg
	d.estPP = ideal.PathPhases(estGeom)
	d.truePP = surface.PathPhases(opts.Geometry)
	if len(opts.Stack) > 0 {
		// Rebuild the cascade frames with the exact arithmetic
		// newCascadeDeploymentSpan uses: solver-side ideal copies of every
		// layer, per-layer true phases, and the power-normalized scales —
		// all pure functions of the persisted state, so the recomputed
		// values are bit-identical to the snapshotted deployment's.
		power := st.LayerPower
		if power == nil {
			power = unitPower(1 + len(opts.Stack))
		}
		d.power = power
		d.layerSched = st.LayerSchedules
		d.layerScale = make([]complex128, len(opts.Stack))
		d.layerEstPP = make([][]float64, len(opts.Stack))
		d.layerTruePP = make([][]float64, len(opts.Stack))
		for k, lay := range opts.Stack {
			s := lay.Surface
			idealLayer, err := mts.NewSurface(s.Rows, s.Cols, s.Bits, s.FreqGHz, nil)
			if err != nil {
				return nil, err
			}
			d.layerEstPP[k] = idealLayer.PathPhases(lay.Geometry)
			d.layerTruePP[k] = s.PathPhases(lay.Geometry)
			maxRk := idealLayer.MaxResponse(d.layerEstPP[k])
			if maxRk == 0 {
				return nil, fmt.Errorf("ota: cascade layer %d has a degenerate maximum response", k+1)
			}
			d.layerScale[k] = complex(power[k+1]/maxRk, 0)
		}
		d.noiseBoost = cascadeNoiseBoost(st.HopNoise, power)
	}
	d.refreshFromRealized()
	d.setJitterMoments()
	return d, nil
}

// WithSyncSampler returns a copy of the deployment whose sessions draw their
// clock offsets from sampler (nil restores perfect synchronization). It is
// the restore-side counterpart of Options.SyncSampler: checkpoints cannot
// carry a function, so recovery rebuilds the sampler from its recorded
// parameters and re-attaches it here. Everything else — schedule, responses,
// derived statistics — is shared with the receiver.
func (d *Deployment) WithSyncSampler(sampler func(src *rng.Source) float64) *Deployment {
	cp := *d
	cp.opts.SyncSampler = sampler
	// Attaching a sampler invalidates the static-channel response cache
	// (offsets shift the schedule per transmission); detaching one may
	// re-enable it.
	cp.refreshStaticCache()
	return &cp
}
