package ota

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

// CascadeLayer is one extra metasurface the signal traverses after the
// primary surface — a stacked-intelligent-metasurface hop. Each layer
// re-scatters the field arriving from the previous hop under its own
// geometry, so the end-to-end channel is the product of the per-layer
// responses.
type CascadeLayer struct {
	// Surface is the layer's programmable metasurface.
	Surface *mts.Surface
	// Geometry fixes the hop's incidence/emergence placement relative to
	// this layer.
	Geometry mts.Geometry
}

// unitPower returns k unit per-layer drive amplitudes.
func unitPower(k int) []float64 {
	p := make([]float64, k)
	for i := range p {
		p[i] = 1
	}
	return p
}

// cascadeNoiseBoost is the receiver-noise inflation of a multi-hop link:
// every extra re-scattering hop adds its own thermal/rescatter noise floor,
// referred to the output through that layer's drive amplitude, so boosting
// a layer's power (LayerPower) genuinely buys end-to-end SNR. hop is the
// per-hop noise fraction (Options.HopNoise); power carries one amplitude
// per layer including the primary. The factor is exactly 1 with no extra
// layers or a zero hop fraction.
func cascadeNoiseBoost(hop float64, power []float64) float64 {
	boost := 1.0
	if hop <= 0 {
		return boost
	}
	for k := 1; k < len(power); k++ {
		boost += hop / (power[k] * power[k])
	}
	return boost
}

// newCascadeDeploymentSpan builds a stacked-surface deployment: the joint
// layer-wise solve against the end-to-end targets, the composed realized
// responses the sessions play, and the cascade-aware derived statistics.
// NewDeploymentSpan dispatches here whenever Options.Stack is non-empty;
// the single-surface path never reaches this file.
func newCascadeDeploymentSpan(w *cplx.Mat, opts Options, src *rng.Source, parent *trace.Span) (*Deployment, error) {
	if opts.Surface == nil {
		return nil, fmt.Errorf("ota: Deploy requires a surface")
	}
	if opts.TargetScale <= 0 || opts.TargetScale > 1 {
		return nil, fmt.Errorf("ota: TargetScale %v out of (0, 1]", opts.TargetScale)
	}
	if opts.SubSamples < 0 || opts.SubSamples%2 == 1 {
		return nil, fmt.Errorf("ota: SubSamples %d must be 0 or a positive even count", opts.SubSamples)
	}
	if opts.SymbolRateHz <= 0 {
		opts.SymbolRateHz = 1e6
	}
	if opts.CompensateEnv {
		return nil, fmt.Errorf("ota: CompensateEnv (Eqn 8) calibrates a single MTS path; it is not supported with a cascade Stack")
	}
	if opts.HopNoise < 0 {
		return nil, fmt.Errorf("ota: negative HopNoise %v", opts.HopNoise)
	}
	layers := 1 + len(opts.Stack)
	for k, lay := range opts.Stack {
		if lay.Surface == nil {
			return nil, fmt.Errorf("ota: cascade layer %d has no surface", k+1)
		}
	}
	power := opts.LayerPower
	if power == nil {
		power = unitPower(layers)
	}
	if len(power) != layers {
		return nil, fmt.Errorf("ota: LayerPower carries %d amplitudes for %d layers", len(power), layers)
	}
	for k, p := range power {
		if p <= 0 || math.IsInf(p, 0) || math.IsNaN(p) {
			return nil, fmt.Errorf("ota: layer %d drive amplitude %v out of (0, ∞)", k, p)
		}
	}
	switches := 1
	if opts.SubSamples > 0 {
		switches = opts.SubSamples
	}
	// Every layer replays the schedule at the full reconfiguration rate; the
	// control plane must sustain it per surface.
	if err := opts.Controller.ValidateSchedule(opts.Surface.Atoms(), opts.SymbolRateHz, switches); err != nil {
		return nil, err
	}
	for k, lay := range opts.Stack {
		if err := opts.Controller.ValidateSchedule(lay.Surface.Atoms(), opts.SymbolRateHz, switches); err != nil {
			return nil, fmt.Errorf("ota: cascade layer %d: %w", k+1, err)
		}
	}

	// Solver-side knowledge mirrors the single-surface path: the primary
	// Rx angle is beam-scanned when configured, every solver frame uses an
	// ideal (fabrication-free) copy of each layer's surface.
	estGeom := opts.Geometry
	if opts.BeamScanStepDeg > 0 {
		ideal, err := mts.NewSurface(opts.Surface.Rows, opts.Surface.Cols, opts.Surface.Bits, opts.Surface.FreqGHz, nil)
		if err != nil {
			return nil, err
		}
		estGeom.RxAngleDeg = ideal.BeamScan(opts.Geometry, opts.BeamScanStepDeg)
	}
	idealSurface, err := mts.NewSurface(opts.Surface.Rows, opts.Surface.Cols, opts.Surface.Bits, opts.Surface.FreqGHz, nil)
	if err != nil {
		return nil, err
	}
	estPP := idealSurface.PathPhases(estGeom)
	truePP := opts.Surface.PathPhases(opts.Geometry)

	solverSurfaces := []*mts.Surface{idealSurface}
	solverPaths := [][]float64{estPP}
	scales := []complex128{complex(power[0], 0)}
	layerEstPP := make([][]float64, len(opts.Stack))
	layerTruePP := make([][]float64, len(opts.Stack))
	layerScale := make([]complex128, len(opts.Stack))
	for k, lay := range opts.Stack {
		s := lay.Surface
		idealLayer, err := mts.NewSurface(s.Rows, s.Cols, s.Bits, s.FreqGHz, nil)
		if err != nil {
			return nil, err
		}
		layerEstPP[k] = idealLayer.PathPhases(lay.Geometry)
		layerTruePP[k] = s.PathPhases(lay.Geometry)
		maxRk := idealLayer.MaxResponse(layerEstPP[k])
		if maxRk == 0 {
			return nil, fmt.Errorf("ota: cascade layer %d has a degenerate maximum response", k+1)
		}
		// Normalizing each extra layer by its achievable maximum makes the
		// layer a unit-gain relay at drive 1: the cascade's dynamic range
		// stays anchored to the primary's array factor, and LayerPower
		// scales each hop around that unit operating point.
		layerScale[k] = complex(power[k+1]/maxRk, 0)
		solverSurfaces = append(solverSurfaces, idealLayer)
		solverPaths = append(solverPaths, layerEstPP[k])
		scales = append(scales, layerScale[k])
	}

	maxR := idealSurface.MaxResponse(estPP)
	maxW := w.MaxAbs()
	if maxW == 0 {
		return nil, fmt.Errorf("ota: weight matrix is all zeros")
	}
	gain := 1.0
	for _, p := range power {
		gain *= p
	}
	gamma := opts.TargetScale * maxR * gain / maxW

	d := &Deployment{
		opts:          opts,
		Schedule:      make([][]mts.Config, w.Rows),
		Realized:      cplx.NewMat(w.Rows, w.Cols),
		Gamma:         gamma,
		EstRxAngleDeg: estGeom.RxAngleDeg,
		classes:       w.Rows,
		u:             w.Cols,
		ch:            channel.New(opts.Channel),
		power:         power,
		layerScale:    layerScale,
		layerEstPP:    layerEstPP,
		layerTruePP:   layerTruePP,
		noiseBoost:    cascadeNoiseBoost(opts.HopNoise, power),
	}
	d.truePP = truePP
	d.estPP = estPP
	d.layerSched = make([][][]mts.Config, len(opts.Stack))
	for k := range d.layerSched {
		d.layerSched[k] = make([][]mts.Config, w.Rows)
	}
	solver := &mts.CascadeSolver{Surfaces: solverSurfaces, Paths: solverPaths, Scales: scales}
	ssp := mts.StartSolveSpan(parent, "cascade", w.Rows*w.Cols)
	ssp.SetNum("classes", float64(w.Rows))
	ssp.SetNum("u", float64(w.Cols))
	ssp.SetNum("gamma", gamma)
	ssp.SetNum("layers", float64(layers))
	var sumSq float64
	for r := 0; r < w.Rows; r++ {
		d.Schedule[r] = make([]mts.Config, w.Cols)
		for k := range d.layerSched {
			d.layerSched[k][r] = make([]mts.Config, w.Cols)
		}
		for c := 0; c < w.Cols; c++ {
			target := w.At(r, c) * complex(gamma, 0)
			cfgs, _ := solver.Solve(target)
			d.Schedule[r][c] = cfgs[0]
			for k := range d.layerSched {
				d.layerSched[k][r][c] = cfgs[k+1]
			}
			h := d.composedRealizedAt(r, c)
			d.Realized.Set(r, c, h)
			sumSq += real(h)*real(h) + imag(h)*imag(h)
		}
	}
	ssp.End()
	d.sigRMS = math.Sqrt(sumSq / float64(len(d.Realized.Data)))
	d.envScale = d.sigRMS
	d.refreshDerived(opts.Geometry)
	d.setJitterMoments()
	cascadeDeploys.Inc()
	cascadeLayers.Set(float64(layers))
	return d, nil
}

// composedRealizedAt evaluates the physically realized end-to-end response
// of output r, symbol c: every layer's TRUE response (fabrication offsets,
// actual geometry) at its scheduled configuration, composed with the
// per-layer power scales.
func (d *Deployment) composedRealizedAt(r, c int) complex128 {
	h := complex(d.power[0], 0) * d.opts.Surface.Response(d.Schedule[r][c], d.truePP)
	for k := range d.opts.Stack {
		h *= d.layerScale[k] * d.opts.Stack[k].Surface.Response(d.layerSched[k][r][c], d.layerTruePP[k])
	}
	return h
}

// refreshRealizedFromSchedules re-evaluates every realized response from the
// current schedules under the current true path phases — the shared core of
// Recompute, WithSchedule, and WithLayerSchedule. The single-surface
// expression is exactly the seed path's arithmetic.
func (d *Deployment) refreshRealizedFromSchedules() {
	for r := 0; r < d.classes; r++ {
		for c := 0; c < d.u; c++ {
			if len(d.opts.Stack) > 0 {
				d.Realized.Set(r, c, d.composedRealizedAt(r, c))
			} else {
				d.Realized.Set(r, c, d.opts.Surface.Response(d.Schedule[r][c], d.truePP))
			}
		}
	}
}

// setJitterMoments derives the closed-form jitter statistics. A single
// surface keeps the seed model (mean attenuation e^{−σ²/2}, complex scatter
// of variance M·(1−e^{−σ²})); a K-layer cascade composes K independent
// per-layer jitter processes to first order — attenuations multiply, and
// the normalized per-layer scatters add.
func (d *Deployment) setJitterMoments() {
	sigma2 := d.opts.JitterStd * d.opts.JitterStd
	att := math.Exp(-sigma2 / 2)
	scatter := float64(d.opts.Surface.Atoms()) * (1 - math.Exp(-sigma2))
	if k := len(d.opts.Stack); k > 0 {
		d.jitterAtt = math.Pow(att, float64(k+1))
		d.jitterVar = float64(k+1) * scatter
	} else {
		d.jitterAtt = att
		d.jitterVar = scatter
	}
	d.jitterSD = math.Sqrt(d.jitterVar / 2)
}

// exactJitterResponse evaluates the atom-by-atom jittered response of symbol
// slot i0, output r — per layer when a cascade is deployed, composing the
// per-layer draws exactly as composedRealizedAt composes the ideal ones. The
// single-surface call is byte-identical to the seed exact-jitter path.
func (d *Deployment) exactJitterResponse(r, i0 int, src *rng.Source) complex128 {
	if len(d.opts.Stack) == 0 {
		return d.opts.Surface.RealizedResponse(d.Schedule[r][i0], d.truePP, d.opts.JitterStd, src)
	}
	h := complex(d.power[0], 0) * d.opts.Surface.RealizedResponse(d.Schedule[r][i0], d.truePP, d.opts.JitterStd, src)
	for k := range d.opts.Stack {
		h *= d.layerScale[k] * d.opts.Stack[k].Surface.RealizedResponse(d.layerSched[k][r][i0], d.layerTruePP[k], d.opts.JitterStd, src)
	}
	return h
}

// Layers returns the cascade depth K — 1 for the paper's single-surface
// system.
func (d *Deployment) Layers() int { return 1 + len(d.opts.Stack) }

// StackLayers returns the extra cascade layers (empty for a single-surface
// deployment). The slice is shared; callers must not modify it.
func (d *Deployment) StackLayers() []CascadeLayer { return d.opts.Stack }

// LayerPowerAlloc returns the per-layer drive amplitudes, primary first
// (nil for a single-surface deployment). The slice is shared; callers must
// not modify it.
func (d *Deployment) LayerPowerAlloc() []float64 { return d.power }

// LayerSurface returns layer k's surface (layer 0 is the primary).
func (d *Deployment) LayerSurface(k int) *mts.Surface {
	if k == 0 {
		return d.opts.Surface
	}
	return d.opts.Stack[k-1].Surface
}

// LayerSchedule returns layer k's solved per-output per-symbol
// configurations (layer 0 is the primary schedule). The slices are shared;
// callers must not modify them.
func (d *Deployment) LayerSchedule(k int) [][]mts.Config {
	if k == 0 {
		return d.Schedule
	}
	return d.layerSched[k-1]
}

// EstLayerPathPhases returns the solver-frame path phases of layer k —
// what a degraded-mode re-solve of that layer must target, exactly as
// EstPathPhases does for the primary.
func (d *Deployment) EstLayerPathPhases(k int) []float64 {
	if k == 0 {
		return d.estPP
	}
	return d.layerEstPP[k-1]
}

// WithLayerSchedule returns a copy of the deployment playing a replacement
// schedule on ONE cascade layer, every other layer untouched, with the
// composed realized responses re-evaluated under the current true
// geometry. Layer 0 delegates to WithSchedule; this is the (layer, atom)
// heal path: re-solve the faulted layer around its stuck atoms and publish
// the result behind an atomic pointer.
func (d *Deployment) WithLayerSchedule(layer int, schedule [][]mts.Config) (*Deployment, error) {
	if layer == 0 {
		return d.WithSchedule(schedule)
	}
	if layer < 0 || layer >= d.Layers() {
		return nil, fmt.Errorf("ota: layer %d of a %d-layer deployment", layer, d.Layers())
	}
	if len(schedule) != d.classes {
		return nil, fmt.Errorf("ota: schedule has %d outputs, deployment has %d", len(schedule), d.classes)
	}
	atoms := d.LayerSurface(layer).Atoms()
	for r, row := range schedule {
		if len(row) != d.u {
			return nil, fmt.Errorf("ota: schedule output %d has %d symbols, deployment has %d", r, len(row), d.u)
		}
		for i, cfg := range row {
			if len(cfg) != atoms {
				return nil, fmt.Errorf("ota: schedule (%d,%d) configures %d atoms, layer %d has %d", r, i, len(cfg), layer, atoms)
			}
		}
	}
	cp := *d
	cp.layerSched = append([][][]mts.Config(nil), d.layerSched...)
	cp.layerSched[layer-1] = schedule
	cp.Realized = cplx.NewMat(d.classes, d.u)
	cp.refreshRealizedFromSchedules()
	cp.refreshFromRealized()
	return &cp, nil
}

// RealizedWithLayerStuck re-evaluates the end-to-end realized responses
// with a set of layer-k atoms latched in fixed states — what the cascade
// physically plays when one layer's hardware degrades. This is the
// fault-injection hook's (layer, atom) generalization of re-evaluating a
// single surface's stuck responses; for a single-surface deployment with
// layer 0 it reproduces that arithmetic exactly.
func (d *Deployment) RealizedWithLayerStuck(layer int, stuck map[int]uint8) (*cplx.Mat, error) {
	if layer < 0 || layer >= d.Layers() {
		return nil, fmt.Errorf("ota: layer %d of a %d-layer deployment", layer, d.Layers())
	}
	override := func(cfg mts.Config) mts.Config {
		out := cfg.Clone()
		for m, st := range stuck {
			if m >= 0 && m < len(out) {
				out[m] = st
			}
		}
		return out
	}
	out := cplx.NewMat(d.classes, d.u)
	for r := 0; r < d.classes; r++ {
		for c := 0; c < d.u; c++ {
			if len(d.opts.Stack) == 0 {
				out.Set(r, c, d.opts.Surface.Response(override(d.Schedule[r][c]), d.truePP))
				continue
			}
			cfg0 := d.Schedule[r][c]
			if layer == 0 {
				cfg0 = override(cfg0)
			}
			h := complex(d.power[0], 0) * d.opts.Surface.Response(cfg0, d.truePP)
			for k := range d.opts.Stack {
				cfg := d.layerSched[k][r][c]
				if layer == k+1 {
					cfg = override(cfg)
				}
				h *= d.layerScale[k] * d.opts.Stack[k].Surface.Response(cfg, d.layerTruePP[k])
			}
			out.Set(r, c, h)
		}
	}
	return out, nil
}

// DefaultHopNoise is the per-hop re-scattering noise coefficient a default
// relay stack assumes: each extra surface-to-surface hop adds a few percent
// of the receiver noise floor at unit drive (see Options.HopNoise).
const DefaultHopNoise = 0.02

// DefaultStack builds `extra` relay layers for a stacked deployment: each is
// a prototype-class fabricated surface (drawn from src, so a fixed seed
// yields a fixed stack) placed on a short re-scattering hop with a slightly
// rotated exit angle per layer. The primary surface and its geometry stay
// whatever Options carries; these layers slot into Options.Stack.
func DefaultStack(extra int, src *rng.Source) []CascadeLayer {
	if extra <= 0 {
		return nil
	}
	stack := make([]CascadeLayer, extra)
	for k := range stack {
		stack[k] = CascadeLayer{
			Surface: mts.Prototype(src.Split()),
			Geometry: mts.Geometry{
				TxDistM: 1.5, TxAngleDeg: 20,
				RxDistM: 2, RxAngleDeg: 35 + 4*float64(k),
			},
		}
	}
	return stack
}
