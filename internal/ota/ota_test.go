package ota

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/rng"
)

// trainMNIST trains one LNN on the synthetic MNIST stand-in; shared across
// tests via sync-free memoization at test scope.
var memo struct {
	model *nn.ComplexLNN
	test  *nn.EncodedSet
	acc   float64
}

func trained(t testing.TB) (*nn.ComplexLNN, *nn.EncodedSet, float64) {
	t.Helper()
	if memo.model == nil {
		ds := dataset.MustLoad("mnist", dataset.Quick, 1)
		enc := nn.Encoder{Scheme: modem.QAM256}
		train := nn.EncodeSet(ds.Train, ds.Classes, enc)
		memo.test = nn.EncodeSet(ds.Test, ds.Classes, enc)
		memo.model = nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 40})
		memo.acc = nn.Evaluate(memo.model, memo.test)
	}
	return memo.model, memo.test, memo.acc
}

func TestDeployValidation(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(1)
	opts := NewOptions(src)
	opts.Surface = nil
	if _, err := Deploy(m.Weights(), opts, src); err == nil {
		t.Error("expected error for nil surface")
	}
	opts = NewOptions(src)
	opts.TargetScale = 1.5
	if _, err := Deploy(m.Weights(), opts, src); err == nil {
		t.Error("expected error for TargetScale > 1")
	}
	opts = NewOptions(src)
	opts.SubSamples = 3
	if _, err := Deploy(m.Weights(), opts, src); err == nil {
		t.Error("expected error for odd SubSamples")
	}
	opts = NewOptions(src)
	opts.SubSamples = 8 // exceeds the 2.56 MHz controller at 1 Msym/s
	if _, err := Deploy(m.Weights(), opts, src); err == nil {
		t.Error("expected controller schedule rejection")
	}
	zero := m.Weights().Clone()
	for i := range zero.Data {
		zero.Data[i] = 0
	}
	opts = NewOptions(src)
	if _, err := Deploy(zero, opts, src); err == nil {
		t.Error("expected error for all-zero weights")
	}
}

func TestQuantizationErrorSmall(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(2)
	surface, _ := mts.NewSurface(16, 16, 2, 5.25, nil)
	sys, err := Deploy(m.Weights(), IdealOptions(surface), src)
	if err != nil {
		t.Fatal(err)
	}
	if qe := sys.QuantizationError(m.Weights()); qe > 0.01 {
		t.Fatalf("quantization error %v, want < 1%% of dynamic range", qe)
	}
}

func TestIdealDeploymentMatchesDigital(t *testing.T) {
	m, test, digital := trained(t)
	src := rng.New(3)
	surface, _ := mts.NewSurface(16, 16, 2, 5.25, nil)
	sys, err := Deploy(m.Weights(), IdealOptions(surface), src)
	if err != nil {
		t.Fatal(err)
	}
	air := nn.Evaluate(sys, test)
	if math.Abs(air-digital) > 0.02 {
		t.Fatalf("ideal over-the-air accuracy %.3f vs digital %.3f", air, digital)
	}
}

func TestPrototypeGapWithinPaperBound(t *testing.T) {
	// Table 1: prototype accuracy trails simulation by no more than ~7
	// points under the default setup.
	m, test, digital := trained(t)
	src := rng.New(4)
	sys, err := Deploy(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	air := nn.Evaluate(sys, test)
	if digital-air > 0.08 {
		t.Fatalf("prototype gap %.3f (digital %.3f, air %.3f) exceeds the paper's ≤7%% band", digital-air, digital, air)
	}
	if air > digital+0.03 {
		t.Fatalf("prototype (%.3f) should not beat simulation (%.3f)", air, digital)
	}
}

func TestMultipathCancellation(t *testing.T) {
	// Fig 17: without the scheme, a rich-multipath environment with omni
	// antennas degrades badly; the scheme restores accuracy.
	m, test, _ := trained(t)
	run := func(sub int) float64 {
		src := rng.New(5)
		opts := NewOptions(src.Split())
		opts.Channel.Env = channel.Laboratory
		opts.Channel.Antenna = channel.Omni
		opts.SubSamples = sub
		sys, err := Deploy(m.Weights(), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		return nn.Evaluate(sys, test)
	}
	with := run(2)
	without := run(0)
	if with-without < 0.05 {
		t.Fatalf("cancellation gain too small: with %.3f, without %.3f", with, without)
	}
	if with < 0.75 {
		t.Fatalf("accuracy with cancellation %.3f below the ≥82.65%%-ish band", with)
	}
}

func TestSyncErrorCollapsesAccuracy(t *testing.T) {
	// Fig 13(b): a ~4-symbol offset without compensation drops accuracy to
	// near chance.
	m, test, _ := trained(t)
	src := rng.New(6)
	opts := NewOptions(src.Split())
	opts.SyncSampler = func(*rng.Source) float64 { return 4 }
	sys, err := Deploy(m.Weights(), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	acc := nn.Evaluate(sys, test)
	if acc > 0.45 {
		t.Fatalf("4-symbol sync error left accuracy at %.3f; expected collapse", acc)
	}
}

func TestOffsetMixingMatchesDigitalEquivalent(t *testing.T) {
	// The engine's schedule/data misalignment must equal the digital cyclic
	// shift used by CDFA training: Σ_i H[i−k]·x_i == Σ_j H_j·x_{j+k}.
	m, test, _ := trained(t)
	src := rng.New(7)
	surface, _ := mts.NewSurface(16, 16, 2, 5.25, nil)
	opts := IdealOptions(surface)
	opts.SyncSampler = func(*rng.Source) float64 { return 3 }
	sys, err := Deploy(m.Weights(), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	// Digital twin: an LNN loaded with the realized responses.
	dig := nn.NewComplexLNN(sys.Classes(), sys.InputLen())
	copy(dig.W.Val, sys.Realized.Data)
	for _, x := range test.X[:20] {
		airPred := sys.Predict(x)
		digPred := dig.Predict(nn.CyclicShift(x, -3))
		if digPred != airPred {
			t.Fatalf("air prediction %d != digital shifted prediction %d", airPred, digPred)
		}
	}
}

func TestAirTimeAndTransmissions(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(8)
	sys, err := Deploy(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.TransmissionsPerInference(); got != 10 {
		t.Fatalf("transmissions = %d, want R = 10", got)
	}
	// 10 outputs × 64 symbols at 1 Msym/s = 640 µs.
	if got := sys.AirTime(); math.Abs(got-640e-6) > 1e-12 {
		t.Fatalf("air time = %v, want 640 µs", got)
	}
}

func TestAccumulateDimsChecked(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(9)
	sys, err := Deploy(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input length")
		}
	}()
	sys.Accumulate(make([]complex128, 7))
}

func TestBeamScanDeploymentCloseToExact(t *testing.T) {
	// Beam-scanned angle estimation should cost only a little accuracy
	// relative to exact knowledge.
	m, test, _ := trained(t)
	run := func(step float64) float64 {
		src := rng.New(10)
		opts := NewOptions(src.Split())
		opts.BeamScanStepDeg = step
		sys, err := Deploy(m.Weights(), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		return nn.Evaluate(sys, test)
	}
	exact := run(0)
	scanned := run(1)
	if exact-scanned > 0.06 {
		t.Fatalf("beam-scan deployment lost %.3f accuracy (exact %.3f, scanned %.3f)", exact-scanned, exact, scanned)
	}
}

func TestEstimatedAngleRecorded(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(11)
	opts := NewOptions(src.Split())
	opts.Geometry.RxAngleDeg = 25
	sys, err := Deploy(m.Weights(), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.EstRxAngleDeg-25) > 3 {
		t.Fatalf("estimated Rx angle %v, true 25°", sys.EstRxAngleDeg)
	}
}
