package ota

import "repro/internal/obs"

// Session metrics: inference/transmission/symbol throughput counters plus a
// wall-clock per-inference latency histogram (recorded only while obs is
// enabled). Counters never touch the session's rng.Source, so instrumented
// accumulators stay bit-identical to uninstrumented ones.
var (
	otaInferences    = obs.NewCounter("ota.inferences")
	otaTransmissions = obs.NewCounter("ota.transmissions")
	otaSymbols       = obs.NewCounter("ota.symbols")
	otaInferSeconds  = obs.NewLatencyHistogram("ota.infer.seconds")
)

// Cascade metrics: how many stacked-surface deployments were built and the
// depth of the most recent one. The layer dimension of per-solve work lives
// in mts ("mts.cascade.layer.K.solves"); these record the deployment shape.
var (
	cascadeDeploys = obs.NewCounter("ota.cascade.deploys")
	cascadeLayers  = obs.NewGauge("ota.cascade.layers")
)
