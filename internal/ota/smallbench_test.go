package ota

import (
	"testing"

	"repro/internal/cplx"
	"repro/internal/rng"
)

// smallSession builds a serve-scale (4 classes × 16 symbols) random-weight
// deployment — the BENCH_serve workload — with the given option tweak, plus
// one encoded input.
func smallSession(b *testing.B, mod func(*Options)) (*Session, []complex128) {
	b.Helper()
	src := rng.New(1)
	w := cplx.NewMat(4, 16)
	wsrc := rng.New(7)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
	}
	opts := NewOptions(src.Split())
	if mod != nil {
		mod(&opts)
	}
	d, err := NewDeployment(w, opts, src)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]complex128, d.InputLen())
	for i := range x {
		x[i] = cplx.Expi(src.Phase())
	}
	return d.NewSession(src.Split()), x
}

// Serve-scale single inference on the default impairment set via the
// zero-alloc fast replay loop.
func BenchmarkSmallAccumulateInto(b *testing.B) {
	sess, x := smallSession(b, nil)
	dst := make(cplx.Vec, sess.Deployment().Classes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.AccumulateInto(x, dst)
	}
}

// The same workload forced through the general replay loop (a constant
// sync offset below the blend epsilon — physically identical clock, slow
// arithmetic). The delta against BenchmarkSmallAccumulateInto is the
// effectiveResponse/fastReplay fast-path gain; the bit-identity of the two
// is pinned by TestEffectiveResponseFastPathBitIdentical.
func BenchmarkSmallAccumulateSlowPath(b *testing.B) {
	sess, x := smallSession(b, func(o *Options) {
		o.SyncSampler = func(*rng.Source) float64 { return 1e-12 }
	})
	dst := make(cplx.Vec, sess.Deployment().Classes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.AccumulateInto(x, dst)
	}
}

// Serve-scale inference on a static-channel epoch (compensated quasi-static
// env, no jitter): the deployment's cached flat response rows make the
// inner loop a fused multiply-add — the batched serving tier of
// BENCH_serve.
func BenchmarkSmallAccumulateStatic(b *testing.B) {
	sess, x := smallSession(b, staticComp)
	dst := make(cplx.Vec, sess.Deployment().Classes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.AccumulateInto(x, dst)
	}
}

// Serve-scale batched sweep, 8 requests per wakeup on the static epoch;
// per-op time is per batch (divide by 8 for per-inference cost).
func BenchmarkSmallAccumulateStaticBatch8(b *testing.B) {
	sess, x := smallSession(b, staticComp)
	xs := make([][]complex128, 8)
	accs := make([]cplx.Vec, 8)
	for i := range xs {
		xs[i] = x
		accs[i] = make(cplx.Vec, sess.Deployment().Classes())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.AccumulateBatch(xs, accs)
	}
}
