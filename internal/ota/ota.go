// Package ota is MetaAI's over-the-air computing engine: it deploys a
// digitally trained complex LNN onto a programmable metasurface and then
// simulates inference as physical transmission, per Eqn 3 of the paper:
//
//	y_r = | Σ_i H_r(t_i) · x_i |
//
// Deployment (§3.2) maps every desired weight H_des[r][i] to a discrete
// metasurface configuration via the Eqn 7 solver; transmission plays the
// per-symbol schedule against the sequentially transmitted symbols while
// the environment contributes multipath, noise, hardware phase jitter, and
// clock misalignment. The within-symbol multi-sampling scheme of §3.2
// (zero-mean chips + synchronized MTS sign flips) cancels environmental
// multipath without channel estimation.
package ota

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/rng"
)

// Options configures a deployment. NewOptions supplies the paper's §4
// defaults.
type Options struct {
	// Surface is the programmable metasurface realizing the weights.
	Surface *mts.Surface
	// Geometry fixes Tx/MTS/Rx placement.
	Geometry mts.Geometry
	// Controller models the MTS control plane and validates the schedule's
	// switching rate.
	Controller mts.Controller
	// Channel describes the propagation environment.
	Channel channel.Params
	// SubSamples is the within-symbol multi-sampling count for multipath
	// cancellation (even, ≥2); 0 disables the scheme (single sample per
	// symbol, environment leaks into the accumulation).
	SubSamples int
	// TargetScale positions the largest desired weight at this fraction of
	// the maximum achievable array factor; interior targets quantize better
	// (Fig 6).
	TargetScale float64
	// BeamScanStepDeg, when positive, makes deployment estimate the receiver
	// angle by beam scanning at this resolution instead of assuming perfect
	// knowledge; the residual error degrades the prototype (§3.2).
	BeamScanStepDeg float64
	// JitterStd is the per-reconfiguration per-atom phase noise (radians) —
	// the dynamic part of the hardware noise N_d of Eqn 13.
	JitterStd float64
	// SymbolRateHz is the transmitter's symbol rate (§4: 1 Msym/s).
	SymbolRateHz float64
	// SyncSampler draws the clock offset, in symbols, between the data
	// stream and the weight schedule for one transmission (§3.5.1). Nil
	// means perfect synchronization.
	SyncSampler func(src *rng.Source) float64
	// ExactJitter evaluates per-atom phase jitter atom by atom at every
	// reconfiguration instead of using the engine's closed-form
	// approximation (mean attenuation e^{−σ²/2} plus complex scatter of
	// variance M·(1−e^{−σ²})). Exact evaluation costs M trig calls per
	// symbol per output; the abl-jitter experiment confirms the two agree.
	ExactJitter bool
	// CompensateEnv selects the Eqn 8 alternative to zero-mean cancellation:
	// deployment estimates the static environmental response H_e (a
	// calibration pass with the metasurface disabled) and solves the
	// schedule for H_des − H_e, so the total channel realizes H_des. It
	// requires SubSamples == 0 (the two schemes are alternatives) and — as
	// the paper warns — only works while the environment stays static.
	CompensateEnv bool
}

// NewOptions returns the paper's default setup: 16×16 2-bit prototype
// surface at 5.25 GHz, Tx 1 m / 30°, Rx 3 m / 40°, office channel,
// 1 Msym/s, two in-symbol samples (the most the 2.56 MHz controller
// supports), mild hardware jitter, and 1°-resolution beam scanning.
func NewOptions(src *rng.Source) Options {
	return Options{
		Surface:         mts.Prototype(src),
		Geometry:        mts.DefaultGeometry(),
		Controller:      mts.PrototypeController(),
		Channel:         channel.Default(),
		SubSamples:      2,
		TargetScale:     0.6,
		BeamScanStepDeg: 1,
		JitterStd:       0.08,
		SymbolRateHz:    1e6,
	}
}

// IdealOptions returns options with every hardware impairment disabled:
// perfect geometry knowledge, no jitter, no sync error, and a clean
// channel. The deployment still quantizes weights to the discrete surface,
// so it isolates pure quantization loss.
func IdealOptions(surface *mts.Surface) Options {
	ch := channel.Default()
	ch.TxPowerDB = 60 // effectively noiseless
	ch.Env = channel.Corridor
	return Options{
		Surface:      surface,
		Geometry:     mts.DefaultGeometry(),
		Controller:   mts.PrototypeController(),
		Channel:      ch,
		SubSamples:   2,
		TargetScale:  0.6,
		SymbolRateHz: 1e6,
	}
}

// System is a deployed over-the-air classifier. It implements the Predict
// interface used by nn.Evaluate, drawing fresh channel and noise
// realizations from its rng source on every call.
type System struct {
	opts Options
	// Schedule holds the per-output, per-symbol configurations.
	Schedule [][]mts.Config
	// Realized holds the physically realized ideal responses
	// H_mts(r, i) — the solver output evaluated against the TRUE path
	// phases (including fabrication offsets and angle-estimation error the
	// solver didn't know about).
	Realized *cplx.Mat
	// Gamma is the desired-weight → array-factor scale factor.
	Gamma float64
	// EstRxAngleDeg is the angle deployment assumed (beam-scanned or exact).
	EstRxAngleDeg float64

	classes, u int
	sigRMS     float64 // RMS |H| over the schedule, the SNR reference
	gainFactor float64 // element-pattern gain relative to nominal geometry
	ch         *channel.Model
	src        *rng.Source
	jitterAtt  float64 // e^{-σ²/2}
	jitterVar  float64 // per-response complex variance M·(1-e^{-σ²})

	compensate  bool
	envBase     complex128 // calibrated quasi-static environment (Eqn 8)
	calMTSPhase complex128 // calibrated MTS-path phase (coherent reference)
	envScale    float64    // physical scale of the environment term
	truePP      []float64  // true path phases, kept for exact-jitter replay
}

// Deploy solves the MTS schedule realizing the trained weight matrix w
// (classes×U) and returns a ready System. src drives all runtime
// randomness.
func Deploy(w *cplx.Mat, opts Options, src *rng.Source) (*System, error) {
	if opts.Surface == nil {
		return nil, fmt.Errorf("ota: Deploy requires a surface")
	}
	if opts.TargetScale <= 0 || opts.TargetScale > 1 {
		return nil, fmt.Errorf("ota: TargetScale %v out of (0, 1]", opts.TargetScale)
	}
	if opts.SubSamples < 0 || opts.SubSamples%2 == 1 {
		return nil, fmt.Errorf("ota: SubSamples %d must be 0 or a positive even count", opts.SubSamples)
	}
	if opts.SymbolRateHz <= 0 {
		opts.SymbolRateHz = 1e6
	}
	switches := 1
	if opts.SubSamples > 0 {
		switches = opts.SubSamples
	}
	if err := opts.Controller.ValidateSchedule(opts.Surface.Atoms(), opts.SymbolRateHz, switches); err != nil {
		return nil, err
	}
	if opts.CompensateEnv && opts.SubSamples > 0 {
		return nil, fmt.Errorf("ota: CompensateEnv (Eqn 8) and multipath cancellation (SubSamples > 0) are alternative schemes; enable one")
	}

	// Deployment-side geometry knowledge: the Tx-MTS placement is fixed and
	// known; the Rx angle is beam-scanned when a scan step is configured.
	// The solver also has no access to per-atom fabrication offsets.
	estGeom := opts.Geometry
	if opts.BeamScanStepDeg > 0 {
		ideal, err := mts.NewSurface(opts.Surface.Rows, opts.Surface.Cols, opts.Surface.Bits, opts.Surface.FreqGHz, nil)
		if err != nil {
			return nil, err
		}
		estGeom.RxAngleDeg = ideal.BeamScan(opts.Geometry, opts.BeamScanStepDeg)
	}
	idealSurface, err := mts.NewSurface(opts.Surface.Rows, opts.Surface.Cols, opts.Surface.Bits, opts.Surface.FreqGHz, nil)
	if err != nil {
		return nil, err
	}
	estPP := idealSurface.PathPhases(estGeom)
	truePP := opts.Surface.PathPhases(opts.Geometry)

	maxR := idealSurface.MaxResponse(estPP)
	maxW := w.MaxAbs()
	if maxW == 0 {
		return nil, fmt.Errorf("ota: weight matrix is all zeros")
	}
	gamma := opts.TargetScale * maxR / maxW

	s := &System{
		opts:          opts,
		Schedule:      make([][]mts.Config, w.Rows),
		Realized:      cplx.NewMat(w.Rows, w.Cols),
		Gamma:         gamma,
		EstRxAngleDeg: estGeom.RxAngleDeg,
		classes:       w.Rows,
		u:             w.Cols,
		ch:            channel.New(opts.Channel),
		src:           src,
	}
	// Eqn 8 calibration: estimate the quasi-static environment once (the
	// paper's "disable the metasurface to estimate H_e" pass) and shift
	// every solver target by it. The environment's physical scale is
	// predicted from the weight scaling, since the realized responses do
	// not exist yet.
	// The solver target for weight W is (γW − H_e)/e^{jφ_mts}: the realized
	// response rides the MTS path's calibrated phase, so the correction is
	// applied in the MTS path's own frame.
	compCorrect := func(target complex128) complex128 { return target }
	if opts.CompensateEnv {
		var rms float64
		for _, v := range w.Data {
			rms += real(v)*real(v) + imag(v)*imag(v)
		}
		rms = math.Sqrt(rms / float64(len(w.Data)))
		s.envScale = gamma * rms
		cal := s.ch.NewRealization(src.Split())
		s.envBase = cal.Base()
		s.calMTSPhase = cal.MTSPhase()
		s.compensate = true
		envPhys := s.envBase * complex(s.envScale, 0)
		inv := cmplx.Conj(s.calMTSPhase) // unit modulus: conj == inverse
		compCorrect = func(target complex128) complex128 {
			return (target - envPhys) * inv
		}
	}
	var sumSq float64
	for r := 0; r < w.Rows; r++ {
		s.Schedule[r] = make([]mts.Config, w.Cols)
		for c := 0; c < w.Cols; c++ {
			target := compCorrect(w.At(r, c) * complex(gamma, 0))
			cfg, _ := idealSurface.SolveTarget(target, estPP)
			s.Schedule[r][c] = cfg
			// The physically realized response uses the true phases.
			h := opts.Surface.Response(cfg, truePP)
			s.Realized.Set(r, c, h)
			sumSq += real(h)*real(h) + imag(h)*imag(h)
		}
	}
	s.sigRMS = math.Sqrt(sumSq / float64(len(s.Realized.Data)))
	s.truePP = truePP
	if !s.compensate {
		s.envScale = s.sigRMS
	}
	// Element-pattern gain at the actual Tx/Rx angles, relative to the
	// nominal default geometry (the SNR reference point).
	nom := mts.DefaultGeometry()
	nomGain := mts.ElementGain(nom.TxAngleDeg) * mts.ElementGain(nom.RxAngleDeg)
	g := mts.ElementGain(opts.Geometry.TxAngleDeg) * mts.ElementGain(opts.Geometry.RxAngleDeg)
	s.gainFactor = g / nomGain
	// Jitter statistics: a per-atom phase error ε~N(0,σ²) attenuates the
	// mean response by e^{-σ²/2} and adds a complex scatter of variance
	// M·(1−e^{-σ²}) (independent atoms).
	sigma2 := opts.JitterStd * opts.JitterStd
	s.jitterAtt = math.Exp(-sigma2 / 2)
	s.jitterVar = float64(opts.Surface.Atoms()) * (1 - math.Exp(-sigma2))
	return s, nil
}

// Classes returns the number of output categories.
func (s *System) Classes() int { return s.classes }

// InputLen returns the expected symbol-vector length U.
func (s *System) InputLen() int { return s.u }

// QuantizationError returns the mean relative error between the realized
// responses and the scaled desired weights — the pure hardware
// approximation quality (Fig 6).
func (s *System) QuantizationError(w *cplx.Mat) float64 {
	var sum float64
	for i, h := range s.Realized.Data {
		sum += cmplx.Abs(h - w.Data[i]*complex(s.Gamma, 0))
	}
	return sum / (float64(len(s.Realized.Data)) * s.Gamma * w.MaxAbs())
}

// Accumulate runs one full over-the-air inference: every output class r is
// computed by replaying the symbol stream against its weight schedule, with
// multipath, noise, jitter, and clock offset applied. It returns the
// complex accumulator per class (before the magnitude of Eqn 3).
func (s *System) Accumulate(x []complex128) cplx.Vec {
	if len(x) != s.u {
		panic(fmt.Sprintf("ota: input length %d, deployed for U=%d", len(x), s.u))
	}
	acc := make(cplx.Vec, s.classes)
	// The channel's SNR is anchored at the 256-atom prototype aperture;
	// a smaller array collects quadratically less energy (array gain ∝ M²),
	// which is why recognition accuracy grows with the atom count until the
	// quantization floor takes over (Fig 7).
	aperture := 256.0 / float64(s.opts.Surface.Atoms())
	noise2 := s.sigRMS * s.sigRMS * s.ch.Params().NoiseSigma2() * aperture * aperture
	// Element-pattern gain scales the MTS-path signal but not the receiver
	// noise floor: express it as an SNR change by dividing noise instead of
	// multiplying every signal term (classification is scale invariant).
	if s.gainFactor > 0 {
		noise2 /= s.gainFactor * s.gainFactor
	} else {
		noise2 = math.Inf(1)
	}
	for r := 0; r < s.classes; r++ {
		var rz *channel.Realization
		if s.compensate {
			// The calibrated quasi-static components persist; only scatter
			// and blockage vary. If the environment has drifted since
			// calibration (a dynamic interferer), the stale estimate leaks.
			rz = s.ch.NewRealizationFrom(s.envBase, s.calMTSPhase, s.src.Split())
		} else {
			rz = s.ch.NewRealization(s.src.Split())
		}
		var offset float64
		if s.opts.SyncSampler != nil {
			offset = s.opts.SyncSampler(s.src)
		}
		var sum complex128
		for i := range x {
			h := s.effectiveResponse(r, i, offset) * rz.MTSScaleAt(i)
			if s.opts.SubSamples > 0 {
				// Zero-mean chips + synchronized MTS sign flips: the static
				// within-symbol environment integrates to zero, the MTS path
				// adds coherently, and the combined noise keeps the
				// single-sample variance (chip noise is wider-band).
				sum += h*x[i] + s.src.ComplexNormal(noise2)
			} else {
				env := rz.EnvAt(i) * complex(s.envScale, 0)
				sum += (h+env)*x[i] + s.src.ComplexNormal(noise2)
			}
		}
		acc[r] = sum
	}
	return acc
}

// effectiveResponse returns the MTS response seen by data symbol i of output
// r under a schedule/data clock offset (in symbols): an offset with
// fractional part f mixes the two adjacent schedule entries in proportion to
// their time overlap, and jitter perturbs the response per reconfiguration.
func (s *System) effectiveResponse(r, i int, offset float64) complex128 {
	base := math.Floor(offset)
	frac := offset - base
	idx := func(k int) int {
		n := s.u
		return ((k % n) + n) % n
	}
	i0 := idx(i - int(base))
	if s.opts.ExactJitter && s.opts.JitterStd > 0 {
		// Atom-by-atom jitter on the actual scheduled configuration(s).
		h := s.opts.Surface.RealizedResponse(s.Schedule[r][i0], s.truePP, s.opts.JitterStd, s.src)
		if frac >= 1e-9 {
			i1 := idx(i - int(base) - 1)
			h1 := s.opts.Surface.RealizedResponse(s.Schedule[r][i1], s.truePP, s.opts.JitterStd, s.src)
			h = h*complex(1-frac, 0) + h1*complex(frac, 0)
		}
		return h
	}
	h0 := s.Realized.At(r, i0)
	var h complex128
	if frac < 1e-9 {
		h = h0
	} else {
		h1 := s.Realized.At(r, idx(i-int(base)-1))
		h = h0*complex(1-frac, 0) + h1*complex(frac, 0)
	}
	if s.opts.JitterStd > 0 {
		h = h*complex(s.jitterAtt, 0) + s.src.ComplexNormal(s.jitterVar)
	}
	return h
}

// Recompute re-evaluates the physically realized responses of the existing
// schedule under a new true geometry — what happens when the receiver moves
// after deployment (§7, Device Mobility): the schedule still encodes the
// old propagation phases, so the realized weights drift from the desired
// ones until the system recalibrates. It returns the updated System (self).
func (s *System) Recompute(geom mts.Geometry) *System {
	truePP := s.opts.Surface.PathPhases(geom)
	var sumSq float64
	for r := 0; r < s.classes; r++ {
		for c := 0; c < s.u; c++ {
			h := s.opts.Surface.Response(s.Schedule[r][c], truePP)
			s.Realized.Set(r, c, h)
			sumSq += real(h)*real(h) + imag(h)*imag(h)
		}
	}
	s.sigRMS = math.Sqrt(sumSq / float64(len(s.Realized.Data)))
	if !s.compensate {
		s.envScale = s.sigRMS
	}
	nom := mts.DefaultGeometry()
	nomGain := mts.ElementGain(nom.TxAngleDeg) * mts.ElementGain(nom.RxAngleDeg)
	g := mts.ElementGain(geom.TxAngleDeg) * mts.ElementGain(geom.RxAngleDeg)
	s.gainFactor = g / nomGain
	s.opts.Geometry = geom
	return s
}

// Logits returns |accumulator| per class — the y_r of Eqn 3.
func (s *System) Logits(x []complex128) []float64 {
	return s.Accumulate(x).Abs()
}

// Predict classifies one encoded input over the air.
func (s *System) Predict(x []complex128) int {
	return cplx.Argmax(s.Logits(x))
}

// TransmissionsPerInference returns how many sequential replays one
// inference costs without parallelism (§3.3: R transmissions).
func (s *System) TransmissionsPerInference() int { return s.classes }

// AirTime returns the on-air time for one full inference at the configured
// symbol rate (sequential scheme).
func (s *System) AirTime() float64 {
	return float64(s.classes) * float64(s.u) / s.opts.SymbolRateHz
}
