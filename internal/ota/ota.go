// Package ota is MetaAI's over-the-air computing engine: it deploys a
// digitally trained complex LNN onto a programmable metasurface and then
// simulates inference as physical transmission, per Eqn 3 of the paper:
//
//	y_r = | Σ_i H_r(t_i) · x_i |
//
// Deployment (§3.2) maps every desired weight H_des[r][i] to a discrete
// metasurface configuration via the Eqn 7 solver; transmission plays the
// per-symbol schedule against the sequentially transmitted symbols while
// the environment contributes multipath, noise, hardware phase jitter, and
// clock misalignment. The within-symbol multi-sampling scheme of §3.2
// (zero-mean chips + synchronized MTS sign flips) cancels environmental
// multipath without channel estimation.
//
// The engine is split along the mutability boundary:
//
//   - Deployment holds everything Deploy computes — the solved MTS
//     schedules, realized responses, channel/geometry parameters, and
//     derived noise statistics. After Deploy it is read-only and may be
//     shared freely across goroutines.
//   - Session owns all runtime stochastic state (noise and fading draws,
//     sync-offset sampling, jitter replay). Sessions are cheap; create one
//     per worker via Deployment.NewSession or Deployment.Sessions.
//   - System couples one Deployment with one bound default Session,
//     preserving the original single-threaded API: a 1-session run
//     reproduces the pre-split numbers exactly.
package ota

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

// Options configures a deployment. NewOptions supplies the paper's §4
// defaults.
type Options struct {
	// Surface is the programmable metasurface realizing the weights.
	Surface *mts.Surface
	// Geometry fixes Tx/MTS/Rx placement.
	Geometry mts.Geometry
	// Controller models the MTS control plane and validates the schedule's
	// switching rate.
	Controller mts.Controller
	// Channel describes the propagation environment.
	Channel channel.Params
	// SubSamples is the within-symbol multi-sampling count for multipath
	// cancellation (even, ≥2); 0 disables the scheme (single sample per
	// symbol, environment leaks into the accumulation).
	SubSamples int
	// TargetScale positions the largest desired weight at this fraction of
	// the maximum achievable array factor; interior targets quantize better
	// (Fig 6).
	TargetScale float64
	// BeamScanStepDeg, when positive, makes deployment estimate the receiver
	// angle by beam scanning at this resolution instead of assuming perfect
	// knowledge; the residual error degrades the prototype (§3.2).
	BeamScanStepDeg float64
	// JitterStd is the per-reconfiguration per-atom phase noise (radians) —
	// the dynamic part of the hardware noise N_d of Eqn 13.
	JitterStd float64
	// SymbolRateHz is the transmitter's symbol rate (§4: 1 Msym/s).
	SymbolRateHz float64
	// SyncSampler draws the clock offset, in symbols, between the data
	// stream and the weight schedule for one transmission (§3.5.1). Nil
	// means perfect synchronization. The sampler must be a pure function of
	// its source argument: concurrent sessions call it with their own
	// independent sources.
	SyncSampler func(src *rng.Source) float64
	// ExactJitter evaluates per-atom phase jitter atom by atom at every
	// reconfiguration instead of using the engine's closed-form
	// approximation (mean attenuation e^{−σ²/2} plus complex scatter of
	// variance M·(1−e^{−σ²})). Exact evaluation costs M trig calls per
	// symbol per output; the abl-jitter experiment confirms the two agree.
	ExactJitter bool
	// CompensateEnv selects the Eqn 8 alternative to zero-mean cancellation:
	// deployment estimates the static environmental response H_e (a
	// calibration pass with the metasurface disabled) and solves the
	// schedule for H_des − H_e, so the total channel realizes H_des. It
	// requires SubSamples == 0 (the two schemes are alternatives) and — as
	// the paper warns — only works while the environment stays static.
	CompensateEnv bool
	// Stack lists the extra metasurface layers the signal traverses after
	// the primary surface — a stacked-intelligent-metasurface cascade whose
	// end-to-end channel is the product of the per-layer responses. Empty
	// means the paper's single-surface system, and every code path is then
	// bit-identical to it (the K=1 compatibility contract; see DESIGN.md
	// "Stacked cascades").
	Stack []CascadeLayer
	// LayerPower gives the per-layer drive amplitudes p_k, primary first
	// (len 1+len(Stack)); nil means uniform unit drive. Raising a hop's
	// amplitude buys back the hop's noise contribution (see HopNoise);
	// power.AllocateLayers computes the optimal split under a budget.
	LayerPower []float64
	// HopNoise is the per-extra-hop rescatter noise fraction: each extra
	// layer k inflates the receiver-noise variance by HopNoise/p_k², the
	// noise floor a real re-scattering hop adds referred through its drive
	// amplitude. Zero (the default) models ideal lossless relays. Ignored
	// without a Stack.
	HopNoise float64
}

// NewOptions returns the paper's default setup: 16×16 2-bit prototype
// surface at 5.25 GHz, Tx 1 m / 30°, Rx 3 m / 40°, office channel,
// 1 Msym/s, two in-symbol samples (the most the 2.56 MHz controller
// supports), mild hardware jitter, and 1°-resolution beam scanning.
func NewOptions(src *rng.Source) Options {
	return Options{
		Surface:         mts.Prototype(src),
		Geometry:        mts.DefaultGeometry(),
		Controller:      mts.PrototypeController(),
		Channel:         channel.Default(),
		SubSamples:      2,
		TargetScale:     0.6,
		BeamScanStepDeg: 1,
		JitterStd:       0.08,
		SymbolRateHz:    1e6,
	}
}

// IdealOptions returns options with every hardware impairment disabled:
// perfect geometry knowledge, no jitter, no sync error, and a clean
// channel. The deployment still quantizes weights to the discrete surface,
// so it isolates pure quantization loss.
func IdealOptions(surface *mts.Surface) Options {
	ch := channel.Default()
	ch.TxPowerDB = 60 // effectively noiseless
	ch.Env = channel.Corridor
	return Options{
		Surface:      surface,
		Geometry:     mts.DefaultGeometry(),
		Controller:   mts.PrototypeController(),
		Channel:      ch,
		SubSamples:   2,
		TargetScale:  0.6,
		SymbolRateHz: 1e6,
	}
}

// Deployment is a solved over-the-air classifier: the MTS schedules,
// physically realized responses, and every derived statistic one inference
// needs. It carries no random state — after NewDeployment returns it is
// immutable (except for the explicit Recompute recalibration below) and
// safe to share across any number of concurrent Sessions.
type Deployment struct {
	opts Options
	// Schedule holds the per-output, per-symbol configurations.
	Schedule [][]mts.Config
	// Realized holds the physically realized ideal responses
	// H_mts(r, i) — the solver output evaluated against the TRUE path
	// phases (including fabrication offsets and angle-estimation error the
	// solver didn't know about).
	Realized *cplx.Mat
	// Gamma is the desired-weight → array-factor scale factor.
	Gamma float64
	// EstRxAngleDeg is the angle deployment assumed (beam-scanned or exact).
	EstRxAngleDeg float64

	classes, u int
	sigRMS     float64 // RMS |H| over the schedule, the SNR reference
	gainFactor float64 // element-pattern gain relative to nominal geometry
	ch         *channel.Model
	jitterAtt  float64 // e^{-σ²/2}
	jitterVar  float64 // per-response complex variance M·(1-e^{-σ²})
	jitterSD   float64 // sqrt(jitterVar/2), hoisted for the per-symbol sampler
	noise2     float64 // per-sample receiver-noise variance (derived)
	noiseSD    float64 // sqrt(noise2/2), hoisted for the per-symbol sampler

	// staticResp caches the composed per-class effective response rows
	// H_mts(r,i)·e^{jφ_cal} as one flat row-major slice when the epoch's
	// channel is provably static per symbol slot (staticOK): compensated
	// quasi-static env, no SyncSampler, zero JitterStd, no Doppler, no
	// path-blocking interferer. Under those conditions the session inner
	// loop reduces to a straight multiply-add over this slice, bit-identical
	// to the general path. Rebuilt by refreshDerived on every mutation that
	// touches Realized.
	staticResp []complex128
	staticOK   bool

	compensate  bool
	envBase     complex128 // calibrated quasi-static environment (Eqn 8)
	calMTSPhase complex128 // calibrated MTS-path phase (coherent reference)
	envScale    float64    // physical scale of the environment term
	truePP      []float64  // true path phases, kept for exact-jitter replay
	estPP       []float64  // solver-side path phases (ideal surface, estimated geometry)

	// Cascade state (zero/nil for the single-surface system). Realized and
	// Schedule keep their seed meaning — Realized holds the COMPOSED
	// end-to-end responses, Schedule the primary layer's configurations —
	// so sessions consume a cascade through the unchanged hot path.
	power       []float64        // per-layer drive amplitudes, primary first
	layerSched  [][][]mts.Config // extra layers' schedules [k][r][i]
	layerScale  []complex128     // extra layers' composition scales p_k/maxR_k
	layerEstPP  [][]float64      // extra layers' solver-frame path phases
	layerTruePP [][]float64      // extra layers' true path phases
	noiseBoost  float64          // multi-hop receiver-noise inflation (see cascadeNoiseBoost)
}

// NewDeployment solves the MTS schedule realizing the trained weight matrix
// w (classes×U) and returns the immutable deployment. src drives only
// deployment-time randomness (the Eqn 8 calibration pass); runtime
// randomness lives in Sessions.
func NewDeployment(w *cplx.Mat, opts Options, src *rng.Source) (*Deployment, error) {
	return NewDeploymentSpan(w, opts, src, nil)
}

// NewDeploymentSpan is NewDeployment with its schedule solve traced under
// parent (a pipeline-build or heal span). A nil parent — the common
// untraced path — records nothing and costs nothing; either way the solve
// itself is bit-identical, since spans never touch src.
func NewDeploymentSpan(w *cplx.Mat, opts Options, src *rng.Source, parent *trace.Span) (*Deployment, error) {
	if len(opts.Stack) > 0 {
		// Stacked cascade: the joint layer-wise solve lives in cascade.go.
		// The single-surface path below is untouched by the dispatch, which
		// is what makes K=1 provably bit-identical to the seed system.
		return newCascadeDeploymentSpan(w, opts, src, parent)
	}
	if opts.Surface == nil {
		return nil, fmt.Errorf("ota: Deploy requires a surface")
	}
	if opts.TargetScale <= 0 || opts.TargetScale > 1 {
		return nil, fmt.Errorf("ota: TargetScale %v out of (0, 1]", opts.TargetScale)
	}
	if opts.SubSamples < 0 || opts.SubSamples%2 == 1 {
		return nil, fmt.Errorf("ota: SubSamples %d must be 0 or a positive even count", opts.SubSamples)
	}
	if opts.SymbolRateHz <= 0 {
		opts.SymbolRateHz = 1e6
	}
	switches := 1
	if opts.SubSamples > 0 {
		switches = opts.SubSamples
	}
	if err := opts.Controller.ValidateSchedule(opts.Surface.Atoms(), opts.SymbolRateHz, switches); err != nil {
		return nil, err
	}
	if opts.CompensateEnv && opts.SubSamples > 0 {
		return nil, fmt.Errorf("ota: CompensateEnv (Eqn 8) and multipath cancellation (SubSamples > 0) are alternative schemes; enable one")
	}

	// Deployment-side geometry knowledge: the Tx-MTS placement is fixed and
	// known; the Rx angle is beam-scanned when a scan step is configured.
	// The solver also has no access to per-atom fabrication offsets.
	estGeom := opts.Geometry
	if opts.BeamScanStepDeg > 0 {
		ideal, err := mts.NewSurface(opts.Surface.Rows, opts.Surface.Cols, opts.Surface.Bits, opts.Surface.FreqGHz, nil)
		if err != nil {
			return nil, err
		}
		estGeom.RxAngleDeg = ideal.BeamScan(opts.Geometry, opts.BeamScanStepDeg)
	}
	idealSurface, err := mts.NewSurface(opts.Surface.Rows, opts.Surface.Cols, opts.Surface.Bits, opts.Surface.FreqGHz, nil)
	if err != nil {
		return nil, err
	}
	estPP := idealSurface.PathPhases(estGeom)
	truePP := opts.Surface.PathPhases(opts.Geometry)

	maxR := idealSurface.MaxResponse(estPP)
	maxW := w.MaxAbs()
	if maxW == 0 {
		return nil, fmt.Errorf("ota: weight matrix is all zeros")
	}
	gamma := opts.TargetScale * maxR / maxW

	d := &Deployment{
		opts:          opts,
		Schedule:      make([][]mts.Config, w.Rows),
		Realized:      cplx.NewMat(w.Rows, w.Cols),
		Gamma:         gamma,
		EstRxAngleDeg: estGeom.RxAngleDeg,
		classes:       w.Rows,
		u:             w.Cols,
		ch:            channel.New(opts.Channel),
	}
	// Eqn 8 calibration: estimate the quasi-static environment once (the
	// paper's "disable the metasurface to estimate H_e" pass) and shift
	// every solver target by it. The environment's physical scale is
	// predicted from the weight scaling, since the realized responses do
	// not exist yet.
	// The solver target for weight W is (γW − H_e)/e^{jφ_mts}: the realized
	// response rides the MTS path's calibrated phase, so the correction is
	// applied in the MTS path's own frame.
	compCorrect := func(target complex128) complex128 { return target }
	if opts.CompensateEnv {
		var rms float64
		for _, v := range w.Data {
			rms += real(v)*real(v) + imag(v)*imag(v)
		}
		rms = math.Sqrt(rms / float64(len(w.Data)))
		d.envScale = gamma * rms
		cal := d.ch.NewRealization(src.Split())
		d.envBase = cal.Base()
		d.calMTSPhase = cal.MTSPhase()
		d.compensate = true
		envPhys := d.envBase * complex(d.envScale, 0)
		inv := cmplx.Conj(d.calMTSPhase) // unit modulus: conj == inverse
		compCorrect = func(target complex128) complex128 {
			return (target - envPhys) * inv
		}
	}
	ssp := mts.StartSolveSpan(parent, "schedule", w.Rows*w.Cols)
	ssp.SetNum("classes", float64(w.Rows))
	ssp.SetNum("u", float64(w.Cols))
	ssp.SetNum("gamma", gamma)
	var sumSq float64
	for r := 0; r < w.Rows; r++ {
		d.Schedule[r] = make([]mts.Config, w.Cols)
		for c := 0; c < w.Cols; c++ {
			target := compCorrect(w.At(r, c) * complex(gamma, 0))
			cfg, _ := idealSurface.SolveTarget(target, estPP)
			d.Schedule[r][c] = cfg
			// The physically realized response uses the true phases.
			h := opts.Surface.Response(cfg, truePP)
			d.Realized.Set(r, c, h)
			sumSq += real(h)*real(h) + imag(h)*imag(h)
		}
	}
	ssp.End()
	d.sigRMS = math.Sqrt(sumSq / float64(len(d.Realized.Data)))
	d.truePP = truePP
	d.estPP = estPP
	if !d.compensate {
		d.envScale = d.sigRMS
	}
	d.refreshDerived(opts.Geometry)
	// Jitter statistics: a per-atom phase error ε~N(0,σ²) attenuates the
	// mean response by e^{-σ²/2} and adds a complex scatter of variance
	// M·(1−e^{-σ²}) (independent atoms).
	d.setJitterMoments()
	return d, nil
}

// refreshDerived recomputes the geometry- and schedule-dependent statistics:
// the element-pattern gain at the actual Tx/Rx angles relative to the
// nominal default geometry (the SNR reference point), and the per-sample
// receiver-noise variance used by every session.
func (d *Deployment) refreshDerived(geom mts.Geometry) {
	nom := mts.DefaultGeometry()
	nomGain := mts.ElementGain(nom.TxAngleDeg) * mts.ElementGain(nom.RxAngleDeg)
	g := mts.ElementGain(geom.TxAngleDeg) * mts.ElementGain(geom.RxAngleDeg)
	d.gainFactor = g / nomGain
	// The channel's SNR is anchored at the 256-atom prototype aperture;
	// a smaller array collects quadratically less energy (array gain ∝ M²),
	// which is why recognition accuracy grows with the atom count until the
	// quantization floor takes over (Fig 7).
	aperture := 256.0 / float64(d.opts.Surface.Atoms())
	noise2 := d.sigRMS * d.sigRMS * d.ch.Params().NoiseSigma2() * aperture * aperture
	// Element-pattern gain scales the MTS-path signal but not the receiver
	// noise floor: express it as an SNR change by dividing noise instead of
	// multiplying every signal term (classification is scale invariant).
	if d.gainFactor > 0 {
		noise2 /= d.gainFactor * d.gainFactor
	} else {
		noise2 = math.Inf(1)
	}
	// Multi-hop cascades inflate the receiver-noise floor (each extra
	// re-scattering layer adds its own, scaled by its drive amplitude). The
	// single-surface path never sets noiseBoost, so its arithmetic here is
	// byte-identical to the seed.
	if d.noiseBoost > 1 {
		noise2 *= d.noiseBoost
	}
	d.noise2 = noise2
	d.noiseSD = math.Sqrt(noise2 / 2)
	d.refreshStaticCache()
}

// refreshStaticCache rebuilds the static-channel response cache. The cache
// is valid only when every per-symbol factor of the effective response is a
// deployment constant: the Eqn 8 compensated regime pins the MTS-path phase
// to the calibrated e^{jφ_cal} (a fresh random phase otherwise — uncacheable),
// no SyncSampler means offset 0, zero JitterStd removes the per-symbol jitter
// perturbation, and a Doppler- and blockage-free channel keeps the MTS scale
// off the per-symbol path. Each cached entry is Realized(r,i)·calMTSPhase —
// the same two operands the general path multiplies — so using the cache is
// bit-identical wherever it is legal.
func (d *Deployment) refreshStaticCache() {
	d.staticOK = d.compensate &&
		d.opts.SyncSampler == nil &&
		d.opts.JitterStd == 0 &&
		d.opts.Channel.StaticMTSPath()
	if !d.staticOK {
		d.staticResp = nil
		return
	}
	flat := make([]complex128, len(d.Realized.Data))
	for i, h := range d.Realized.Data {
		flat[i] = h * d.calMTSPhase
	}
	d.staticResp = flat
}

// Classes returns the number of output categories.
func (d *Deployment) Classes() int { return d.classes }

// InputLen returns the expected symbol-vector length U.
func (d *Deployment) InputLen() int { return d.u }

// Options returns the deployment's configuration.
func (d *Deployment) Options() Options { return d.opts }

// QuantizationError returns the mean relative error between the realized
// responses and the scaled desired weights — the pure hardware
// approximation quality (Fig 6).
func (d *Deployment) QuantizationError(w *cplx.Mat) float64 {
	var sum float64
	for i, h := range d.Realized.Data {
		sum += cmplx.Abs(h - w.Data[i]*complex(d.Gamma, 0))
	}
	return sum / (float64(len(d.Realized.Data)) * d.Gamma * w.MaxAbs())
}

// Recompute re-evaluates the physically realized responses of the existing
// schedule under a new true geometry — what happens when the receiver moves
// after deployment (§7, Device Mobility): the schedule still encodes the
// old propagation phases, so the realized weights drift from the desired
// ones until the system recalibrates. It returns the updated Deployment
// (self).
//
// Recompute is the one sanctioned mutation of a Deployment. It is NOT safe
// to call while sessions are running concurrently; quiesce inference first
// (package mobility's Tracker advances time single-threaded), or use
// Recomputed to build a fresh deployment and swap it behind an atomic
// pointer while readers keep using the old one.
func (d *Deployment) Recompute(geom mts.Geometry) *Deployment {
	// Mobility moves the PRIMARY hop's geometry (the receiver); extra
	// cascade layers keep their own placements and stored responses, and the
	// composed end-to-end realized matrix reflects the primary's drift.
	d.truePP = d.opts.Surface.PathPhases(geom)
	d.opts.Geometry = geom
	d.refreshRealizedFromSchedules()
	d.refreshFromRealized()
	return d
}

// Recomputed is the copy-on-write variant of Recompute: the receiver is left
// untouched and a NEW deployment re-evaluated under geom is returned. This
// is the swap-safe recalibration path: publish the result behind an
// atomic.Pointer while any number of concurrent sessions keep reading the
// old deployment, then derive fresh sessions from the new one.
func (d *Deployment) Recomputed(geom mts.Geometry) *Deployment {
	return d.clone().Recompute(geom)
}

// clone returns a deep-enough copy for independent recalibration: the
// realized-response matrix is owned by the copy, while the solved schedule,
// path phases, and channel model — all read-only after deployment — stay
// shared.
func (d *Deployment) clone() *Deployment {
	cp := *d
	cp.Realized = d.Realized.Clone()
	return &cp
}

// refreshFromRealized re-derives every statistic that depends on the
// realized-response matrix (signal RMS, environment scale, noise variance).
func (d *Deployment) refreshFromRealized() {
	var sumSq float64
	for _, h := range d.Realized.Data {
		sumSq += real(h)*real(h) + imag(h)*imag(h)
	}
	d.sigRMS = math.Sqrt(sumSq / float64(len(d.Realized.Data)))
	if !d.compensate {
		d.envScale = d.sigRMS
	}
	d.refreshDerived(d.opts.Geometry)
}

// WithResponses returns a copy of the deployment whose physically realized
// response matrix is replaced by realized (classes×U), with every derived
// statistic refreshed. This is the hook the fault-injection layer uses to
// model hardware defects — stuck meta-atoms change what the surface plays
// without changing what the solver intended, so the schedule stays and only
// the realized responses move.
func (d *Deployment) WithResponses(realized *cplx.Mat) (*Deployment, error) {
	if realized.Rows != d.classes || realized.Cols != d.u {
		return nil, fmt.Errorf("ota: responses %dx%d for a %dx%d deployment", realized.Rows, realized.Cols, d.classes, d.u)
	}
	cp := *d
	cp.Realized = realized
	cp.refreshFromRealized()
	return &cp, nil
}

// WithSchedule returns a copy of the deployment playing a replacement
// schedule (classes×U configurations), its realized responses re-evaluated
// under the deployment's current true geometry. This is the degraded-mode
// re-solve path: heal a faulted deployment by re-solving the schedule
// around known-bad atoms, then publish the result behind an atomic pointer
// with zero disruption to sessions on the old one.
func (d *Deployment) WithSchedule(schedule [][]mts.Config) (*Deployment, error) {
	if len(schedule) != d.classes {
		return nil, fmt.Errorf("ota: schedule has %d outputs, deployment has %d", len(schedule), d.classes)
	}
	for r, row := range schedule {
		if len(row) != d.u {
			return nil, fmt.Errorf("ota: schedule output %d has %d symbols, deployment has %d", r, len(row), d.u)
		}
	}
	cp := *d
	cp.Schedule = schedule
	cp.Realized = cplx.NewMat(d.classes, d.u)
	cp.refreshRealizedFromSchedules()
	cp.refreshFromRealized()
	return &cp, nil
}

// EstPathPhases returns the solver-side per-atom path phases the schedule
// was solved against: the ideal (fabrication-free) surface at the estimated
// receiver angle. Degraded-mode re-solves must target this frame — not the
// true phases, which deployment never observes. The slice is shared; callers
// must not modify it.
func (d *Deployment) EstPathPhases() []float64 { return d.estPP }

// TransmissionsPerInference returns how many sequential replays one
// inference costs without parallelism (§3.3: R transmissions).
func (d *Deployment) TransmissionsPerInference() int { return d.classes }

// AirTime returns the on-air time for one full inference at the configured
// symbol rate (sequential scheme).
func (d *Deployment) AirTime() float64 {
	return float64(d.classes) * float64(d.u) / d.opts.SymbolRateHz
}

// NewSession binds a per-worker inference session to the deployment. The
// session takes ownership of src as its random stream; the caller must not
// draw from src afterwards.
func (d *Deployment) NewSession(src *rng.Source) *Session {
	return &Session{d: d, src: src}
}

// SessionFromSeed is NewSession over a fresh source seeded with seed.
func (d *Deployment) SessionFromSeed(seed uint64) *Session {
	return d.NewSession(rng.New(seed))
}

// Sessions derives n independent sessions via deterministic seeded splits
// of src: session i's stream is a pure function of (src state, i), so a
// fixed seed yields a reproducible worker fleet regardless of how the
// sessions are later interleaved.
func (d *Deployment) Sessions(n int, src *rng.Source) []*Session {
	if n < 1 {
		n = 1
	}
	out := make([]*Session, n)
	for i := range out {
		out[i] = d.NewSession(src.Split())
	}
	return out
}

// System couples a Deployment with one bound default Session, preserving
// the pre-split single-threaded API: Deploy consumes src exactly as the
// original combined implementation did, so a 1-session run reproduces the
// historical numbers bit for bit. For concurrent inference share the
// embedded Deployment across per-worker Sessions instead of calling the
// System's own Predict from several goroutines.
type System struct {
	*Deployment
	sess *Session
}

// Deploy solves the MTS schedule realizing the trained weight matrix w
// (classes×U) and returns a ready System whose default session draws its
// runtime randomness from src.
func Deploy(w *cplx.Mat, opts Options, src *rng.Source) (*System, error) {
	return DeploySpan(w, opts, src, nil)
}

// DeploySpan is Deploy with the schedule solve traced under parent; see
// NewDeploymentSpan.
func DeploySpan(w *cplx.Mat, opts Options, src *rng.Source, parent *trace.Span) (*System, error) {
	d, err := NewDeploymentSpan(w, opts, src, parent)
	if err != nil {
		return nil, err
	}
	return &System{Deployment: d, sess: d.NewSession(src)}, nil
}

// Session returns the system's bound default session.
func (s *System) Session() *Session { return s.sess }

// Sessions derives n independent per-worker sessions by splitting the
// system's bound session source. Deterministic given the deploy seed and
// the call position in the system's usage sequence.
func (s *System) Sessions(n int) []*Session {
	return s.Deployment.Sessions(n, s.sess.src)
}

// Accumulate runs one full over-the-air inference on the default session.
func (s *System) Accumulate(x []complex128) cplx.Vec { return s.sess.Accumulate(x) }

// Logits returns |accumulator| per class — the y_r of Eqn 3.
func (s *System) Logits(x []complex128) []float64 { return s.sess.Logits(x) }

// Predict classifies one encoded input over the air.
func (s *System) Predict(x []complex128) int { return s.sess.Predict(x) }

// Recompute recalibrates the underlying deployment (see
// Deployment.Recompute) and returns the updated System (self).
func (s *System) Recompute(geom mts.Geometry) *System {
	s.Deployment.Recompute(geom)
	return s
}
