package ota

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/rng"
)

// testWeights returns a reproducible classes×u complex weight matrix.
func testWeights(classes, u int, seed uint64) *cplx.Mat {
	src := rng.New(seed)
	w := cplx.NewMat(classes, u)
	for i := range w.Data {
		w.Data[i] = complex(src.Normal(0, 1), src.Normal(0, 1))
	}
	return w
}

// testStack builds k−1 extra relay layers with small ideal surfaces at
// slightly different hop geometries.
func testStack(t *testing.T, k int) []CascadeLayer {
	t.Helper()
	var stack []CascadeLayer
	for l := 1; l < k; l++ {
		s, err := mts.NewSurface(6, 6, 2, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := mts.DefaultGeometry()
		g.RxAngleDeg += float64(4 * l)
		g.TxDistM = 2
		stack = append(stack, CascadeLayer{Surface: s, Geometry: g})
	}
	return stack
}

func cascadeTestOptions(t *testing.T, k int) Options {
	t.Helper()
	surface, err := mts.NewSurface(8, 8, 2, 5.25, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions(rng.New(5))
	opts.Surface = surface
	opts.Stack = testStack(t, k)
	return opts
}

func matsBitIdentical(a, b *cplx.Mat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(real(a.Data[i])) != math.Float64bits(real(b.Data[i])) ||
			math.Float64bits(imag(a.Data[i])) != math.Float64bits(imag(b.Data[i])) {
			return false
		}
	}
	return true
}

// TestCascadeK1BitIdentityDeployment is the deployment half of the
// cascadegate contract: running the CASCADE builder at depth 1 (empty
// stack) must reproduce the seed single-surface deployment byte for byte —
// gamma, schedule, realized responses, and the accumulators of sessions
// with equal seeds. The single-surface path itself is untouched by the
// refactor's dispatch, so this proves the two constructions coincide.
func TestCascadeK1BitIdentityDeployment(t *testing.T) {
	w := testWeights(4, 12, 9)
	opts := cascadeTestOptions(t, 1) // no extra layers
	ref, err := NewDeployment(w, opts, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	casc, err := newCascadeDeploymentSpan(w, opts, rng.New(77), nil)
	if err != nil {
		t.Fatal(err)
	}
	if casc.Layers() != 1 {
		t.Fatalf("empty-stack cascade reports %d layers", casc.Layers())
	}
	if math.Float64bits(ref.Gamma) != math.Float64bits(casc.Gamma) {
		t.Fatalf("gamma differs: %v vs %v", ref.Gamma, casc.Gamma)
	}
	if ref.EstRxAngleDeg != casc.EstRxAngleDeg {
		t.Fatalf("estimated angle differs: %v vs %v", ref.EstRxAngleDeg, casc.EstRxAngleDeg)
	}
	for r := range ref.Schedule {
		for c := range ref.Schedule[r] {
			a, b := ref.Schedule[r][c], casc.Schedule[r][c]
			for m := range a {
				if a[m] != b[m] {
					t.Fatalf("schedule (%d,%d) differs at atom %d", r, c, m)
				}
			}
		}
	}
	if !matsBitIdentical(ref.Realized, casc.Realized) {
		t.Fatal("realized responses differ")
	}
	x := make([]complex128, ref.InputLen())
	xsrc := rng.New(123)
	for i := range x {
		x[i] = complex(xsrc.Normal(0, 1), xsrc.Normal(0, 1))
	}
	accRef := ref.SessionFromSeed(42).Accumulate(x)
	accCasc := casc.SessionFromSeed(42).Accumulate(x)
	for r := range accRef {
		if math.Float64bits(real(accRef[r])) != math.Float64bits(real(accCasc[r])) ||
			math.Float64bits(imag(accRef[r])) != math.Float64bits(imag(accCasc[r])) {
			t.Fatalf("class %d accumulator differs: %v vs %v", r, accRef[r], accCasc[r])
		}
	}
}

// A 2-layer deployment must solve, keep the composed realized responses
// near the scaled targets, and serve finite accumulators — including under
// exact per-layer jitter replay.
func TestCascadeDeployAndInfer(t *testing.T) {
	w := testWeights(3, 10, 21)
	opts := cascadeTestOptions(t, 2)
	d, err := NewDeployment(w, opts, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if d.Layers() != 2 {
		t.Fatalf("Layers() = %d, want 2", d.Layers())
	}
	if len(d.LayerSchedule(1)) != d.Classes() {
		t.Fatalf("layer-1 schedule has %d outputs", len(d.LayerSchedule(1)))
	}
	// Quantization quality: the composed responses should track γ·w.
	if q := d.QuantizationError(w); q > 0.5 {
		t.Fatalf("cascade quantization error %v implausibly large", q)
	}
	x := make([]complex128, d.InputLen())
	for i := range x {
		x[i] = complex(1, 0)
	}
	for _, exact := range []bool{false, true} {
		dd := d
		if exact {
			o := opts
			o.ExactJitter = true
			dd2, err := NewDeployment(w, o, rng.New(77))
			if err != nil {
				t.Fatal(err)
			}
			dd = dd2
		}
		acc := dd.SessionFromSeed(9).Accumulate(x)
		for r, v := range acc {
			if cmplx.IsNaN(v) || cmplx.IsInf(v) {
				t.Fatalf("exact=%v class %d accumulator %v", exact, r, v)
			}
		}
	}
}

// Re-publishing one layer's own schedule must not move the composed
// realized responses — the WithLayerSchedule identity that anchors the
// cascade heal path.
func TestCascadeWithLayerScheduleIdentity(t *testing.T) {
	w := testWeights(3, 8, 33)
	d, err := NewDeployment(w, cascadeTestOptions(t, 3), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for layer := 0; layer < d.Layers(); layer++ {
		cp, err := d.WithLayerSchedule(layer, d.LayerSchedule(layer))
		if err != nil {
			t.Fatalf("layer %d: %v", layer, err)
		}
		if !matsBitIdentical(d.Realized, cp.Realized) {
			t.Fatalf("layer %d: same-schedule republish moved realized responses", layer)
		}
	}
	if _, err := d.WithLayerSchedule(3, d.LayerSchedule(0)); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
}

// Stuck atoms on any single layer must perturb the composed responses, and
// the perturbation must differ between layers (the (layer, atom) identity
// the fault path reports).
func TestCascadeRealizedWithLayerStuck(t *testing.T) {
	w := testWeights(3, 8, 55)
	d, err := NewDeployment(w, cascadeTestOptions(t, 2), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	stuck := map[int]uint8{0: 1, 5: 3}
	m0, err := d.RealizedWithLayerStuck(0, stuck)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := d.RealizedWithLayerStuck(1, stuck)
	if err != nil {
		t.Fatal(err)
	}
	if matsBitIdentical(m0, d.Realized) {
		t.Fatal("layer-0 stuck atoms left realized responses unchanged")
	}
	if matsBitIdentical(m1, d.Realized) {
		t.Fatal("layer-1 stuck atoms left realized responses unchanged")
	}
	if matsBitIdentical(m0, m1) {
		t.Fatal("stuck responses identical across layers — layer identity lost")
	}
	if _, err := d.RealizedWithLayerStuck(2, stuck); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
}

// FromState(State()) of a cascade deployment must reproduce accumulators
// bit for bit, like the single-surface snapshot contract.
func TestCascadeStateRoundTrip(t *testing.T) {
	w := testWeights(3, 9, 71)
	opts := cascadeTestOptions(t, 3)
	opts.LayerPower = []float64{1, 1.4, 0.8}
	opts.HopNoise = 0.05
	d, err := NewDeployment(w, opts, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	st := d.State()
	if len(st.Layers) != 2 || len(st.LayerSchedules) != 2 {
		t.Fatalf("state carries %d layers, %d schedules", len(st.Layers), len(st.LayerSchedules))
	}
	rd, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Layers() != d.Layers() {
		t.Fatalf("restored %d layers, want %d", rd.Layers(), d.Layers())
	}
	x := make([]complex128, d.InputLen())
	xsrc := rng.New(8)
	for i := range x {
		x[i] = complex(xsrc.Normal(0, 1), xsrc.Normal(0, 1))
	}
	a := d.SessionFromSeed(4).Accumulate(x)
	b := rd.SessionFromSeed(4).Accumulate(x)
	for r := range a {
		if math.Float64bits(real(a[r])) != math.Float64bits(real(b[r])) ||
			math.Float64bits(imag(a[r])) != math.Float64bits(imag(b[r])) {
			t.Fatalf("class %d accumulator differs after round trip: %v vs %v", r, a[r], b[r])
		}
	}
}

// Receiver mobility on the primary hop must drift the composed responses;
// Recomputed must leave the original deployment untouched.
func TestCascadeRecompute(t *testing.T) {
	w := testWeights(3, 8, 13)
	d, err := NewDeployment(w, cascadeTestOptions(t, 2), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	before := d.Realized.Clone()
	moved := d.Options().Geometry
	moved.RxAngleDeg += 6
	cp := d.Recomputed(moved)
	if !matsBitIdentical(before, d.Realized) {
		t.Fatal("Recomputed mutated the original deployment")
	}
	if matsBitIdentical(before, cp.Realized) {
		t.Fatal("moving the receiver left composed responses unchanged")
	}
}

// Cascade option validation: arity and positivity of LayerPower, HopNoise
// sign, the Eqn 8 exclusion, and nil layer surfaces must all fail loudly.
func TestCascadeOptionValidation(t *testing.T) {
	w := testWeights(2, 6, 5)
	base := func() Options { return cascadeTestOptions(t, 2) }
	bad := []func(*Options){
		func(o *Options) { o.LayerPower = []float64{1} },
		func(o *Options) { o.LayerPower = []float64{1, -2} },
		func(o *Options) { o.HopNoise = -0.1 },
		func(o *Options) { o.CompensateEnv = true; o.SubSamples = 0 },
		func(o *Options) { o.Stack = []CascadeLayer{{Surface: nil}} },
	}
	for i, mutate := range bad {
		o := base()
		mutate(&o)
		if _, err := NewDeployment(w, o, rng.New(1)); err == nil {
			t.Fatalf("bad option set %d accepted", i)
		}
	}
}

// HopNoise must genuinely cost SNR — and per-layer power must buy it back.
// The noise floor is anchored to the signal RMS (classification is scale
// invariant), so the comparison is noise-to-signal: a starved relay hop
// leaves a worse ratio than uniform drive, which is worse than a boosted
// hop.
func TestCascadeHopNoisePowerTradeoff(t *testing.T) {
	w := testWeights(2, 6, 5)
	noise := func(power []float64) float64 {
		opts := cascadeTestOptions(t, 2)
		opts.HopNoise = 0.2
		opts.LayerPower = power
		d, err := NewDeployment(w, opts, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		return d.noise2 / (d.sigRMS * d.sigRMS)
	}
	starved := noise([]float64{1, 0.5})
	uniform := noise(nil)
	boosted := noise([]float64{1, 2})
	if !(starved > uniform && uniform > boosted) {
		t.Fatalf("noise ordering wrong: starved %v, uniform %v, boosted %v", starved, uniform, boosted)
	}
}
