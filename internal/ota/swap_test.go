package ota

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/rng"
)

func TestRecomputedLeavesReceiverUntouched(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(31)
	d, err := NewDeployment(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Realized.Clone()
	moved := d.Options().Geometry
	moved.RxAngleDeg += 25
	nd := d.Recomputed(moved)
	if nd == d {
		t.Fatal("Recomputed returned the receiver")
	}
	for i := range before.Data {
		if d.Realized.Data[i] != before.Data[i] {
			t.Fatal("Recomputed mutated the receiver's realized responses")
		}
	}
	changed := false
	for i := range before.Data {
		if nd.Realized.Data[i] != before.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("Recomputed at a moved geometry produced identical responses")
	}
	if nd.Options().Geometry != moved {
		t.Fatal("Recomputed did not adopt the new geometry")
	}
}

func TestWithResponsesValidatesAndRefreshes(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(32)
	d, err := NewDeployment(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WithResponses(cplx.NewMat(1, 1)); err == nil {
		t.Fatal("mis-shaped response matrix accepted")
	}
	scaled := d.Realized.Clone()
	for i := range scaled.Data {
		scaled.Data[i] *= 0.5
	}
	nd, err := d.WithResponses(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Realized != scaled {
		t.Fatal("WithResponses did not adopt the given matrix")
	}
	if nd.sigRMS >= d.sigRMS {
		t.Fatalf("halved responses did not shrink sigRMS: %v -> %v", d.sigRMS, nd.sigRMS)
	}
	if d.Realized == scaled {
		t.Fatal("WithResponses mutated the receiver")
	}
}

func TestWithScheduleValidatesAndReevaluates(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(33)
	d, err := NewDeployment(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WithSchedule(nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := d.WithSchedule(make([][]mts.Config, d.Classes())); err == nil {
		t.Fatal("schedule with empty rows accepted")
	}
	// The identity swap: handing the deployment its own schedule must
	// re-evaluate to the same realized responses.
	nd, err := d.WithSchedule(d.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Realized.Data {
		if nd.Realized.Data[i] != d.Realized.Data[i] {
			t.Fatal("identity WithSchedule changed realized responses")
		}
	}
}

func TestRecomputedSwapUnderConcurrentReaders(t *testing.T) {
	// The degraded-mode swap protocol: 16 goroutines predict through
	// per-worker sessions resolved from an atomic.Pointer while the
	// supervisor repeatedly publishes recomputed deployments. Run under
	// -race; every prediction must complete and stay in class range.
	m, test, _ := trained(t)
	src := rng.New(34)
	d, err := NewDeployment(m.Weights(), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}

	// One epoch = one immutable deployment plus a session per worker, so a
	// worker never shares a session across epochs or goroutines.
	const workers = 16
	type epoch struct {
		d        *Deployment
		sessions []*Session
	}
	var cur atomic.Pointer[epoch]
	cur.Store(&epoch{d: d, sessions: d.Sessions(workers, rng.New(88))})

	var stop atomic.Bool
	var predictions atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				ep := cur.Load()
				p := ep.sessions[w].Predict(test.X[i%len(test.X)])
				if p < 0 || p >= ep.d.Classes() {
					errs <- "prediction out of class range"
					return
				}
				predictions.Add(1)
			}
		}()
	}

	// Supervisor: swap through a handful of geometries while the fleet runs.
	// After each publish, wait for the readers to make forward progress
	// before the next swap — otherwise, on a loaded machine, the supervisor
	// can finish all six swaps and raise stop before any of the freshly
	// spawned workers completes a single prediction, and the test degrades
	// into a sequential no-op.
	geom := d.Options().Geometry
	for swap := 0; swap < 6; swap++ {
		before := predictions.Load()
		geom.RxAngleDeg += 5
		nd := cur.Load().d.Recomputed(geom)
		cur.Store(&epoch{d: nd, sessions: nd.Sessions(workers, rng.New(88+uint64(swap)))})
		for predictions.Load() == before {
			runtime.Gosched()
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if predictions.Load() == 0 {
		t.Fatal("no predictions completed during the swaps")
	}
	if got := cur.Load().d.Options().Geometry; got != geom {
		t.Fatalf("final epoch geometry %+v, want %+v", got, geom)
	}
}
