package ota

import (
	"testing"

	"repro/internal/cplx"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TestObsEnabledLeavesAccumulatorsBitIdentical is the acceptance gate for
// the observability layer's core invariant: instrumentation never touches
// any rng.Source and the disabled path allocates nothing, so flipping obs on
// must leave every over-the-air accumulator bit-identical. A same-seed
// deployment is built and replayed once with obs off and once with obs on;
// any bitwise divergence means a metric drew from (or reordered) the
// session's randomness.
func TestObsEnabledLeavesAccumulatorsBitIdentical(t *testing.T) {
	run := func() []cplx.Vec {
		src := rng.New(17)
		w := cplx.NewMat(3, 12)
		wsrc := rng.New(23)
		for i := range w.Data {
			w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
		}
		d, err := NewDeployment(w, NewOptions(src.Split()), src)
		if err != nil {
			t.Fatal(err)
		}
		sess := d.NewSession(src.Split())
		xsrc := rng.New(29)
		out := make([]cplx.Vec, 5)
		for k := range out {
			x := make([]complex128, d.InputLen())
			for i := range x {
				x[i] = cplx.Expi(xsrc.Phase())
			}
			out[k] = sess.Accumulate(x)
		}
		return out
	}

	obs.SetEnabled(false)
	off := run()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	on := run()

	for k := range off {
		for i := range off[k] {
			if off[k][i] != on[k][i] {
				t.Fatalf("accumulator %d[%d] diverged with obs enabled: %v vs %v",
					k, i, off[k][i], on[k][i])
			}
		}
	}
}
