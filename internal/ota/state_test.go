package ota

import (
	"math"
	"testing"

	"repro/internal/clocksync"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/rng"
)

func cloneSchedule(schedule [][]mts.Config) [][]mts.Config {
	out := make([][]mts.Config, len(schedule))
	for r, row := range schedule {
		out[r] = make([]mts.Config, len(row))
		for c, cfg := range row {
			out[r][c] = append(mts.Config(nil), cfg...)
		}
	}
	return out
}

func stateTestWeights(classes, u int, seed uint64) *cplx.Mat {
	src := rng.New(seed)
	w := cplx.NewMat(classes, u)
	for i := range w.Data {
		w.Data[i] = complex(src.Normal(0, 1), src.Normal(0, 1))
	}
	return w
}

// accumBits runs n inferences on a fresh seeded session and returns the raw
// accumulator float bits — the strictest equality a deployment can offer.
func accumBits(t *testing.T, d *Deployment, seed uint64, n int) []uint64 {
	t.Helper()
	sess := d.SessionFromSeed(seed)
	in := rng.New(seed ^ 0x9e3779b97f4a7c15)
	var bits []uint64
	for k := 0; k < n; k++ {
		x := make([]complex128, d.InputLen())
		for i := range x {
			x[i] = complex(in.Normal(0, 1), in.Normal(0, 1))
		}
		for _, v := range sess.Accumulate(x) {
			bits = append(bits, math.Float64bits(real(v)), math.Float64bits(imag(v)))
		}
	}
	return bits
}

func assertBitIdentical(t *testing.T, d, r *Deployment, seed uint64) {
	t.Helper()
	want := accumBits(t, d, seed, 4)
	got := accumBits(t, r, seed, 4)
	if len(want) != len(got) {
		t.Fatalf("accumulator streams differ in length: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("accumulator bits diverge at %d: %016x vs %016x", i, want[i], got[i])
		}
	}
}

// TestStateRoundtripBitIdentity is the contract the checkpoint layer builds
// on: FromState(d.State()) must drive sessions to byte-identical
// accumulators, across the default deployment, a sync-sampled one, and the
// Eqn 8 compensation path.
func TestStateRoundtripBitIdentity(t *testing.T) {
	t.Run("default", func(t *testing.T) {
		src := rng.New(41)
		d, err := NewDeployment(stateTestWeights(4, 16, 7), NewOptions(src.Split()), src)
		if err != nil {
			t.Fatal(err)
		}
		r, err := FromState(d.State())
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, d, r, 99)
	})

	t.Run("syncSampler", func(t *testing.T) {
		src := rng.New(43)
		opts := NewOptions(src.Split())
		det := clocksync.CoarseDetector{Shape: 2, Scale: 0.4}
		opts.SyncSampler = clocksync.CoarseSampler(det, opts.SymbolRateHz)
		d, err := NewDeployment(stateTestWeights(4, 16, 9), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		r, err := FromState(d.State())
		if err != nil {
			t.Fatal(err)
		}
		// The snapshot cannot carry the sampler function; recovery rebuilds
		// it from the detector parameters and re-attaches it.
		r = r.WithSyncSampler(clocksync.CoarseSampler(det, opts.SymbolRateHz))
		assertBitIdentical(t, d, r, 101)
	})

	t.Run("compensateEnv", func(t *testing.T) {
		src := rng.New(47)
		opts := NewOptions(src.Split())
		opts.SubSamples = 0
		opts.CompensateEnv = true
		d, err := NewDeployment(stateTestWeights(4, 16, 11), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		if !d.compensate {
			t.Fatal("deployment did not enable compensation")
		}
		r, err := FromState(d.State())
		if err != nil {
			t.Fatal(err)
		}
		if !r.compensate || r.envBase != d.envBase || r.calMTSPhase != d.calMTSPhase || r.envScale != d.envScale {
			t.Fatal("compensation calibration not restored")
		}
		assertBitIdentical(t, d, r, 103)
	})
}

// TestStateRestoreMatchesInternals pins every derived statistic — if any of
// these drift, the bit-identity test would catch it eventually, but this
// points at the exact field.
func TestStateRestoreMatchesInternals(t *testing.T) {
	src := rng.New(53)
	d, err := NewDeployment(stateTestWeights(3, 12, 13), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := FromState(d.State())
	if err != nil {
		t.Fatal(err)
	}
	cmp := func(name string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("%s: %v restored as %v", name, a, b)
		}
	}
	cmp("Gamma", d.Gamma, r.Gamma)
	cmp("sigRMS", d.sigRMS, r.sigRMS)
	cmp("gainFactor", d.gainFactor, r.gainFactor)
	cmp("noise2", d.noise2, r.noise2)
	cmp("jitterAtt", d.jitterAtt, r.jitterAtt)
	cmp("jitterVar", d.jitterVar, r.jitterVar)
	cmp("envScale", d.envScale, r.envScale)
	cmp("EstRxAngleDeg", d.EstRxAngleDeg, r.EstRxAngleDeg)
	if len(d.truePP) != len(r.truePP) || len(d.estPP) != len(r.estPP) {
		t.Fatal("path-phase lengths differ")
	}
	for i := range d.truePP {
		cmp("truePP", d.truePP[i], r.truePP[i])
		cmp("estPP", d.estPP[i], r.estPP[i])
	}
}

// TestStateValidateRejects enumerates the corruption classes the decode path
// must catch before a state reaches the serving path.
func TestStateValidateRejects(t *testing.T) {
	src := rng.New(59)
	d, err := NewDeployment(stateTestWeights(3, 8, 17), NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	base := func() *DeploymentState {
		st := d.State()
		cp := *st
		return &cp
	}
	cases := map[string]func(*DeploymentState){
		"zeroGrid":    func(st *DeploymentState) { st.Surface.Rows = 0 },
		"badBits":     func(st *DeploymentState) { st.Surface.Bits = 9 },
		"fabMismatch": func(st *DeploymentState) { st.Surface.Fab = st.Surface.Fab[:1] },
		"nilRealized": func(st *DeploymentState) { st.Realized = nil },
		"shortData":   func(st *DeploymentState) { m := *st.Realized; m.Data = m.Data[:1]; st.Realized = &m },
		"rowMismatch": func(st *DeploymentState) { st.Schedule = st.Schedule[:1] },
		"colMismatch": func(st *DeploymentState) {
			sc := append([][]mts.Config(nil), st.Schedule...)
			sc[0] = sc[0][:1]
			st.Schedule = sc
		},
		"shortConfig":  func(st *DeploymentState) { sc := cloneSchedule(st.Schedule); sc[1][2] = sc[1][2][:3]; st.Schedule = sc },
		"stateTooHigh": func(st *DeploymentState) { sc := cloneSchedule(st.Schedule); sc[0][0][0] = 255; st.Schedule = sc },
	}
	for name, corrupt := range cases {
		st := base()
		corrupt(st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt state", name)
		}
		if _, err := FromState(st); err == nil {
			t.Errorf("%s: FromState accepted a corrupt state", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}
