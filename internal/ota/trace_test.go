package ota

import (
	"sync"
	"testing"

	"repro/internal/cplx"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

func traceTestDeployment(t *testing.T) (*Deployment, []complex128) {
	t.Helper()
	src := rng.New(17)
	w := cplx.NewMat(3, 12)
	wsrc := rng.New(23)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
	}
	d, err := NewDeployment(w, NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, d.InputLen())
	xsrc := rng.New(29)
	for i := range x {
		x[i] = cplx.Expi(xsrc.Phase())
	}
	return d, x
}

// TestTracingEnabledLeavesAccumulatorsBitIdentical is the serve-path
// bit-identity gate for tracing: span IDs derive from hashes and ordinals,
// never from rng draws, so a fully traced inference must produce the same
// accumulator bits as an untraced one.
func TestTracingEnabledLeavesAccumulatorsBitIdentical(t *testing.T) {
	run := func(traced bool) []cplx.Vec {
		d, x := traceTestDeployment(t)
		sess := d.NewSession(rng.New(31))
		out := make([]cplx.Vec, 5)
		for k := range out {
			if traced {
				root := trace.Default().Start("test.infer", trace.Derive(0x1de117, uint64(k)))
				sess.SetSpan(root)
				out[k] = sess.Accumulate(x)
				sess.SetSpan(nil)
				root.Finish(0)
			} else {
				out[k] = sess.Accumulate(x)
			}
		}
		return out
	}

	trace.Default().Disable()
	off := run(false)
	trace.Default().Enable(16, 1)
	defer trace.Default().Disable()
	on := run(true)

	for k := range off {
		for i := range off[k] {
			if off[k][i] != on[k][i] {
				t.Fatalf("accumulator %d[%d] diverged with tracing enabled: %v vs %v",
					k, i, off[k][i], on[k][i])
			}
		}
	}
}

// TestDisabledTracingZeroAllocOnSessionHotPath gates the disabled path's
// cost on the real inference hot path, not just on isolated span calls: an
// untraced session must allocate exactly as much with the tracer armed as
// with it disarmed — every instrumentation call inside Accumulate is a nil
// no-op either way, so tracing adds zero allocations per inference.
func TestDisabledTracingZeroAllocOnSessionHotPath(t *testing.T) {
	d, x := traceTestDeployment(t)
	sess := d.NewSession(rng.New(37))

	trace.Default().Disable()
	disabled := testing.AllocsPerRun(50, func() { sess.Accumulate(x) })

	trace.Default().Enable(16, 0)
	defer trace.Default().Disable()
	armed := testing.AllocsPerRun(50, func() { sess.Accumulate(x) })

	if armed != disabled {
		t.Fatalf("untraced Accumulate allocates %.1f/run with the tracer armed vs %.1f disarmed: the disabled tracing path allocates",
			armed, disabled)
	}
}

// TestConcurrentSessionSpansWellParented runs a fleet of sessions under
// -race (make race / make check), each tracing its own requests, and then
// verifies no trace interleaved with another: every retained trace holds
// exactly its own root, its accumulate span, and one replay span per class,
// every non-root span's parent exists earlier in the SAME trace, and span
// IDs are the deterministic Derive(traceID, index) sequence.
func TestConcurrentSessionSpansWellParented(t *testing.T) {
	const workers, reqs = 8, 3
	trace.Default().Enable(workers*reqs+8, 1)
	defer trace.Default().Disable()

	d, x := traceTestDeployment(t)
	sessions := d.Sessions(workers, rng.New(41))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sessions[w]
			for k := 0; k < reqs; k++ {
				root := trace.Default().Start("test.req", trace.Derive(0x7e57, uint64(w), uint64(k)))
				sess.SetSpan(root)
				sess.Accumulate(x)
				sess.SetSpan(nil)
				root.Finish(0)
			}
		}(w)
	}
	wg.Wait()

	classes := d.Classes()
	for w := 0; w < workers; w++ {
		for k := 0; k < reqs; k++ {
			id := trace.Derive(0x7e57, uint64(w), uint64(k))
			tr, _ := trace.Default().Get(id)
			if tr == nil {
				t.Fatalf("trace w=%d k=%d not retained at sample=1", w, k)
			}
			spans := tr.Spans()
			if want := 2 + classes; len(spans) != want {
				t.Fatalf("trace w=%d k=%d has %d spans, want %d (root + accumulate + %d replays): another trace interleaved",
					w, k, len(spans), want, classes)
			}
			seen := map[trace.ID]bool{}
			names := map[string]int{}
			for i, sp := range spans {
				if want := trace.Derive(uint64(id), uint64(i)); sp.ID != want {
					t.Fatalf("span %d of trace w=%d k=%d has ID %s, want deterministic %s", i, w, k, sp.ID, want)
				}
				if i == 0 {
					if sp.Parent != 0 || sp.Name != "test.req" {
						t.Fatalf("trace w=%d k=%d root is %q parent %s", w, k, sp.Name, sp.Parent)
					}
				} else if !seen[sp.Parent] {
					t.Fatalf("span %d (%q) of trace w=%d k=%d parents to %s, which is not an earlier span of this trace",
						i, sp.Name, w, k, sp.Parent)
				}
				seen[sp.ID] = true
				names[sp.Name]++
			}
			if names["ota.accumulate"] != 1 || names["ota.replay"] != classes {
				t.Fatalf("trace w=%d k=%d span names %v, want 1 ota.accumulate and %d ota.replay", w, k, names, classes)
			}
		}
	}
}
