package ota

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/rng"
)

// compOptions builds options for the compensation scheme: cancellation off,
// heavy static multipath.
func compOptions(src *rng.Source, interf channel.InterferenceRegion) Options {
	opts := NewOptions(src)
	opts.SubSamples = 0
	opts.CompensateEnv = true
	opts.Channel.Env = channel.Laboratory
	opts.Channel.Antenna = channel.Omni
	opts.Channel.Interf = interf
	return opts
}

func TestCompensationRejectsCancellation(t *testing.T) {
	m, _, _ := trained(t)
	src := rng.New(20)
	opts := NewOptions(src.Split())
	opts.CompensateEnv = true // SubSamples still 2
	if _, err := Deploy(m.Weights(), opts, src); err == nil {
		t.Fatal("expected error when both schemes are enabled")
	}
}

// TestCompensationRecoversStaticMultipath: the Eqn 8 alternative works in a
// static environment — solving for H_des − H_e restores most of the
// accuracy the raw environment destroys.
func TestCompensationRecoversStaticMultipath(t *testing.T) {
	m, test, _ := trained(t)
	run := func(compensate bool, seed uint64) float64 {
		src := rng.New(seed)
		opts := compOptions(src.Split(), channel.NoInterferer)
		opts.CompensateEnv = compensate
		sys, err := Deploy(m.Weights(), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		return nn.Evaluate(sys, test)
	}
	raw := run(false, 21)
	comp := run(true, 21)
	if comp-raw < 0.05 {
		t.Fatalf("compensation gain too small: raw %.3f, compensated %.3f", raw, comp)
	}
	if comp < 0.75 {
		t.Fatalf("compensated accuracy %.3f too low in a static environment", comp)
	}
}

// TestCompensationFailsWhenEnvironmentDrifts: the paper's argument for the
// zero-mean scheme — a stale H_e estimate cannot track a dynamic
// environment, while the cancellation scheme does not care.
func TestCompensationFailsWhenEnvironmentDrifts(t *testing.T) {
	m, test, _ := trained(t)
	src := rng.New(22)
	opts := compOptions(src.Split(), channel.RegionR3)
	sysComp, err := Deploy(m.Weights(), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	compDyn := nn.Evaluate(sysComp, test)

	src2 := rng.New(23)
	opts2 := NewOptions(src2.Split())
	opts2.Channel = opts.Channel // same dynamic environment
	opts2.SubSamples = 2         // cancellation scheme
	sysCancel, err := Deploy(m.Weights(), opts2, src2)
	if err != nil {
		t.Fatal(err)
	}
	cancelDyn := nn.Evaluate(sysCancel, test)
	if cancelDyn <= compDyn {
		t.Fatalf("cancellation (%.3f) should beat stale compensation (%.3f) under drift", cancelDyn, compDyn)
	}
}

func TestRecomputeTracksGeometry(t *testing.T) {
	// Moving the receiver without recalibrating must hurt; recomputation at
	// the deployed angle must reproduce the original responses.
	m, test, _ := trained(t)
	src := rng.New(24)
	opts := NewOptions(src.Split())
	opts.BeamScanStepDeg = 0
	sys, err := Deploy(m.Weights(), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	base := nn.Evaluate(sys, test)
	moved := opts.Geometry
	moved.RxAngleDeg += 12
	movedAcc := nn.Evaluate(sys.Recompute(moved), test)
	if base-movedAcc < 0.15 {
		t.Fatalf("12 degrees of receiver motion should break the stale schedule: %.3f -> %.3f", base, movedAcc)
	}
	backAcc := nn.Evaluate(sys.Recompute(opts.Geometry), test)
	if base-backAcc > 0.05 {
		t.Fatalf("recomputing at the deployed angle should restore accuracy: %.3f vs %.3f", backAcc, base)
	}
	_ = mts.DefaultGeometry()
}

// TestDopplerErodesAccumulation: a phase ramp across the symbol stream is
// the one "global phase" that is NOT harmless — once it winds a large
// fraction of a turn over U symbols, the accumulator loses coherence. This
// is the §7 mobility regime seen from the waveform side.
func TestDopplerErodesAccumulation(t *testing.T) {
	m, test, _ := trained(t)
	run := func(dopplerHz float64, seed uint64) float64 {
		src := rng.New(seed)
		opts := NewOptions(src.Split())
		opts.Channel.DopplerHz = dopplerHz
		sys, err := Deploy(m.Weights(), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		return nn.Evaluate(sys, test)
	}
	static := run(0, 30)
	// 5 kHz over 64 symbols winds 2π·5e3·64/1e6 ≈ 2.0 rad: strong erosion.
	fast := run(5000, 31)
	if static-fast < 0.1 {
		t.Fatalf("5 kHz Doppler should erode accuracy: static %.3f, moving %.3f", static, fast)
	}
	// Pedestrian Doppler (35 Hz ≈ 2 m/s at 5.25 GHz) is negligible over a
	// 64 µs stream.
	slow := run(35, 32)
	if static-slow > 0.04 {
		t.Fatalf("pedestrian Doppler should be negligible: static %.3f, slow %.3f", static, slow)
	}
}
