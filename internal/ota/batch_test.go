package ota

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/rng"
)

// deployVariant deploys the memoized model with the given option tweak from
// a fixed seed and returns a session on it. Calling it twice with the same
// seed and tweak yields independent systems carrying bit-identical schedules
// and equal random streams.
func deployVariant(t testing.TB, seed uint64, mod func(*Options)) *Session {
	t.Helper()
	m, _, _ := trained(t)
	src := rng.New(seed)
	opts := NewOptions(src.Split())
	if mod != nil {
		mod(&opts)
	}
	d, err := NewDeployment(m.Weights(), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	return d.NewSession(src)
}

// staticComp switches options to the Eqn 8 compensation scheme in a static
// laboratory environment — the configuration whose composed per-class
// response the deployment caches as a flat slice (staticOK).
func staticComp(o *Options) {
	o.SubSamples = 0
	o.JitterStd = 0
	o.CompensateEnv = true
	o.Channel.Env = channel.Laboratory
	o.Channel.Antenna = channel.Omni
	o.Channel.Interf = channel.NoInterferer
}

func TestAccumulateBatchBitIdenticalToSequential(t *testing.T) {
	// The tentpole contract: a batch of n produces the exact accumulator
	// bits n sequential calls would, for every replay variant — the
	// batched path hoists overhead, never draws.
	_, test, _ := trained(t)
	variants := map[string]func(*Options){
		"default":    nil,
		"staticComp": staticComp,
		"noJitter":   func(o *Options) { o.JitterStd = 0 },
		"syncOffset": func(o *Options) {
			o.SyncSampler = func(src *rng.Source) float64 { return 0.25 + 0.1*src.Float64() }
		},
	}
	for name, mod := range variants {
		for _, bsz := range []int{1, 4, 16} {
			seq := deployVariant(t, 31, mod)
			bat := deployVariant(t, 31, mod)
			xs := make([][]complex128, bsz)
			want := make([]cplx.Vec, bsz)
			for b := 0; b < bsz; b++ {
				xs[b] = test.X[b%len(test.X)]
				want[b] = seq.Accumulate(xs[b])
			}
			got := bat.AccumulateBatch(xs, nil)
			if len(got) != bsz {
				t.Fatalf("%s batch %d: got %d accumulators", name, bsz, len(got))
			}
			for b := range got {
				for r := range got[b] {
					if got[b][r] != want[b][r] {
						t.Fatalf("%s batch %d: request %d class %d: batched %v != sequential %v",
							name, bsz, b, r, got[b][r], want[b][r])
					}
				}
			}
		}
	}
}

func TestAccumulateBatchReusesDst(t *testing.T) {
	sess := deployVariant(t, 32, nil)
	_, test, _ := trained(t)
	xs := [][]complex128{test.X[0], test.X[1]}
	dst := make([]cplx.Vec, 2)
	dst[0] = make(cplx.Vec, sess.Deployment().Classes())
	first := &dst[0][0]
	out := sess.AccumulateBatch(xs, dst)
	if &out[0][0] != first {
		t.Fatal("right-sized dst entry was reallocated instead of reused")
	}
	if len(out) != 2 || len(out[1]) != sess.Deployment().Classes() {
		t.Fatalf("missing entries were not grown: %d accumulators", len(out))
	}
}

func TestEffectiveResponseFastPathBitIdentical(t *testing.T) {
	// A constant sync offset below the fractional-blend epsilon (1e-9)
	// forces the general replay loop and the general effectiveResponse
	// arithmetic (Floor, Euclidean wrap, blend) while still describing a
	// perfectly synchronized clock. Its accumulators must match the
	// offset==0 fast paths bit for bit — pinning both the fastReplay loops
	// and the effectiveResponse direct-index branch against the seed
	// arithmetic they replaced.
	_, test, _ := trained(t)
	epsSampler := func(o *Options) {
		o.SyncSampler = func(*rng.Source) float64 { return 1e-12 }
	}
	variants := map[string][2]func(*Options){
		"subsampleJitter": {nil, epsSampler},
		"staticComp":      {staticComp, func(o *Options) { staticComp(o); epsSampler(o) }},
		"envNoJitter": {
			func(o *Options) { o.SubSamples = 0; o.JitterStd = 0 },
			func(o *Options) { o.SubSamples = 0; o.JitterStd = 0; epsSampler(o) },
		},
	}
	for name, mods := range variants {
		fast := deployVariant(t, 33, mods[0])
		slow := deployVariant(t, 33, mods[1])
		for i, x := range test.X[:20] {
			fa := fast.Accumulate(x)
			sl := slow.Accumulate(x)
			for r := range fa {
				if fa[r] != sl[r] {
					t.Fatalf("%s sample %d class %d: fast path %v != general path %v", name, i, r, fa[r], sl[r])
				}
			}
		}
	}
}

func TestAccumulateSteadyStateZeroAlloc(t *testing.T) {
	// After warmup (session scratch built, dst owned by the caller) the
	// single-request and batched hot paths allocate nothing per inference.
	_, test, _ := trained(t)
	for name, mod := range map[string]func(*Options){"default": nil, "staticComp": staticComp} {
		sess := deployVariant(t, 34, mod)
		d := sess.Deployment()
		dst := make(cplx.Vec, d.Classes())
		sess.AccumulateInto(test.X[0], dst)
		if n := testing.AllocsPerRun(50, func() {
			sess.AccumulateInto(test.X[1], dst)
		}); n != 0 {
			t.Errorf("%s: AccumulateInto allocates %.1f/op in steady state, want 0", name, n)
		}

		xs := make([][]complex128, 8)
		accs := make([]cplx.Vec, 8)
		for b := range xs {
			xs[b] = test.X[b]
			accs[b] = make(cplx.Vec, d.Classes())
		}
		sess.AccumulateBatch(xs, accs)
		if n := testing.AllocsPerRun(20, func() {
			sess.AccumulateBatch(xs, accs)
		}); n != 0 {
			t.Errorf("%s: AccumulateBatch allocates %.1f/op in steady state, want 0", name, n)
		}
	}
}

// Single steady-state inference on the default impairment set — the serve
// hot path at batch 1.
func BenchmarkAccumulateInto(b *testing.B) {
	_, test, _ := trained(b)
	sess := deployVariant(b, 35, nil)
	dst := make(cplx.Vec, sess.Deployment().Classes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.AccumulateInto(test.X[i%len(test.X)], dst)
	}
}

// Batched steady-state inference, 8 requests per sweep; per-op time is per
// batch (divide by 8 for per-inference cost).
func BenchmarkAccumulateBatch8(b *testing.B) {
	_, test, _ := trained(b)
	sess := deployVariant(b, 35, nil)
	xs := make([][]complex128, 8)
	accs := make([]cplx.Vec, 8)
	for i := range xs {
		xs[i] = test.X[i]
		accs[i] = make(cplx.Vec, sess.Deployment().Classes())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.AccumulateBatch(xs, accs)
	}
}
