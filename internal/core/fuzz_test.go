package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadArtifact hardens the deployment-artifact parser against arbitrary
// input: it must either error cleanly or return a structurally valid
// artifact — never panic, never accept inconsistent dimensions.
func FuzzReadArtifact(f *testing.F) {
	f.Add(`{"classes":1,"input_symbols":1,"weights_re_im":[[1,0]],"schedule":[["0123"]]}`)
	f.Add(`{"classes":2,"input_symbols":1}`)
	f.Add(`not json at all`)
	f.Add(`{"classes":-3,"input_symbols":9}`)
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ReadArtifact(strings.NewReader(s))
		if err != nil {
			return
		}
		// Accepted artifacts must satisfy the documented invariants.
		if a.Classes <= 0 || a.InputSymbols <= 0 {
			t.Fatalf("accepted artifact with dims %d×%d", a.Classes, a.InputSymbols)
		}
		if len(a.WeightsReIm) != a.Classes*a.InputSymbols {
			t.Fatal("accepted artifact with inconsistent weight count")
		}
		if len(a.Schedule) != a.Classes {
			t.Fatal("accepted artifact with inconsistent schedule")
		}
		// And they must round-trip.
		var buf bytes.Buffer
		if err := a.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadArtifact(&buf); err != nil {
			t.Fatalf("accepted artifact failed to round trip: %v", err)
		}
	})
}
