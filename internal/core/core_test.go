package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/noisetrain"
	"repro/internal/ota"
)

func TestDefaultConfigRunsEndToEnd(t *testing.T) {
	cfg := DefaultConfig("mnist")
	cfg.Train.Epochs = 30
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := p.SimAccuracy()
	air := p.AirAccuracy()
	if sim < 0.8 {
		t.Fatalf("simulation accuracy %.3f below band", sim)
	}
	if air < sim-0.10 {
		t.Fatalf("prototype accuracy %.3f too far below simulation %.3f", air, sim)
	}
}

func TestUnknownDatasetErrors(t *testing.T) {
	if _, err := New(DefaultConfig("nope")); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestEmptySetsError(t *testing.T) {
	cfg := DefaultConfig("mnist")
	empty := &nn.EncodedSet{Classes: 2}
	if _, err := NewFromSets(empty, empty, cfg); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestSyncModeStrings(t *testing.T) {
	want := map[SyncMode]string{SyncPerfect: "perfect", SyncNone: "none", SyncCoarse: "CD", SyncCDFA: "CDFA"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if SyncMode(42).String() == "" {
		t.Error("unknown mode must still print")
	}
}

func TestInferReturnsDistribution(t *testing.T) {
	cfg := DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.MustLoad("afhq", dataset.Quick, cfg.Seed)
	class, probs := p.Infer(ds.Test[0].X)
	if class < 0 || class >= 3 || len(probs) != 3 {
		t.Fatalf("Infer = %d, %v", class, probs)
	}
	var sum float64
	for _, v := range probs {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestSyncModesOrdering(t *testing.T) {
	// Fig 16 end to end through the core package: none < CD < CDFA.
	accs := map[SyncMode]float64{}
	for _, mode := range []SyncMode{SyncNone, SyncCoarse, SyncCDFA} {
		cfg := DefaultConfig("mnist")
		cfg.Train.Epochs = 30
		cfg.Sync = mode
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		accs[mode] = p.AirAccuracy()
	}
	if !(accs[SyncNone] < accs[SyncCoarse] && accs[SyncCoarse] < accs[SyncCDFA]) {
		t.Fatalf("sync ordering broken: %v", accs)
	}
}

func TestNoiseAwareConfigWorks(t *testing.T) {
	cfg := DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	nc := noisetrain.DefaultConfig()
	cfg.NoiseAware = &nc
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.SimAccuracy() < 0.6 {
		t.Fatalf("noise-aware pipeline accuracy %.3f", p.SimAccuracy())
	}
}

func TestAirOverrides(t *testing.T) {
	cfg := DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	cfg.Air.Channel = channel.Default()
	cfg.Air.Channel.Env = channel.Corridor
	cfg.Air.SubSamples = -1 // explicitly disable cancellation
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corridor without cancellation still works reasonably (low multipath).
	if p.AirAccuracy() < 0.5 {
		t.Fatalf("corridor no-cancellation accuracy %.3f", p.AirAccuracy())
	}
}

func TestModulationSchemesAllRun(t *testing.T) {
	// Fig 23's sweep must be expressible through the config.
	for _, s := range []modem.Scheme{modem.BPSK, modem.QAM16} {
		cfg := DefaultConfig("afhq")
		cfg.Scheme = s
		cfg.Train.Epochs = 10
		p, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if p.Train.U != nnInputLen(s) {
			t.Fatalf("%v: U = %d", s, p.Train.U)
		}
	}
}

func nnInputLen(s modem.Scheme) int {
	switch s {
	case modem.BPSK:
		return 512
	case modem.QAM16:
		return 128
	}
	return 64
}

func TestLayersConfigDeploysCascade(t *testing.T) {
	cfg := DefaultConfig("mnist")
	cfg.Train.Epochs = 2
	cfg.Layers = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Deployment()
	if d.Layers() != 2 {
		t.Fatalf("Layers() = %d, want 2", d.Layers())
	}
	if got := d.Options().HopNoise; got != ota.DefaultHopNoise {
		t.Fatalf("default stack HopNoise = %v, want %v", got, ota.DefaultHopNoise)
	}
	air := p.AirAccuracy()
	if air < 0 || air > 1 {
		t.Fatalf("cascade air accuracy %v out of range", air)
	}
}

func TestLayersConfigRespectsExplicitStack(t *testing.T) {
	cfg := DefaultConfig("mnist")
	cfg.Train.Epochs = 2
	cfg.Layers = 3 // must lose to the explicit 2-layer stack below
	srf, err := mts.NewSurface(8, 8, 2, 5.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Air.Stack = []ota.CascadeLayer{{
		Surface:  srf,
		Geometry: mts.Geometry{TxDistM: 1.5, TxAngleDeg: 20, RxDistM: 2, RxAngleDeg: 35},
	}}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Deployment().Layers(); got != 2 {
		t.Fatalf("explicit stack overridden: Layers() = %d, want 2", got)
	}
}
