package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// TestPipelineStageTimingsRecorded asserts the per-stage pipeline metrics:
// with obs enabled, one end-to-end build plus one inference must land one
// observation in each of the Train/Deploy/Infer histograms and bump the
// build counter.
func TestPipelineStageTimingsRecorded(t *testing.T) {
	obs.Default().Reset()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	cfg := DefaultConfig("afhq")
	cfg.Train.Epochs = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sample := dataset.MustLoad("afhq", cfg.Scale, cfg.Seed).Test[0]
	if _, probs := p.Infer(sample.X); len(probs) != p.Train.Classes {
		t.Fatalf("Infer returned %d probabilities, want %d", len(probs), p.Train.Classes)
	}

	snap := obs.Default().Snapshot()
	for _, h := range []string{"pipeline.train.seconds", "pipeline.deploy.seconds", "pipeline.infer.seconds"} {
		if got := snap.Histograms[h].Count; got < 1 {
			t.Errorf("%s count = %d, want >= 1", h, got)
		}
	}
	if got := snap.Counters["pipeline.builds"]; got < 1 {
		t.Errorf("pipeline.builds = %d, want >= 1", got)
	}
	if got := snap.Counters["mts.solve.calls"]; got < 1 {
		t.Errorf("mts.solve.calls = %d, want >= 1 (deploy solves schedules)", got)
	}
}
