package core

import (
	"bytes"
	"strings"
	"testing"
)

func builtPipeline(t *testing.T) *Pipeline {
	t.Helper()
	cfg := DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArtifactRoundTrip(t *testing.T) {
	p := builtPipeline(t)
	a := p.BuildArtifact()
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dataset != "afhq" || back.Classes != 3 || back.InputSymbols != p.Train.U {
		t.Fatalf("round trip lost metadata: %+v", back)
	}
	// Weights survive bit-for-bit at JSON float precision.
	w := back.Weights()
	orig := p.Model.Weights()
	for i := range w.Data {
		if w.Data[i] != orig.Data[i] {
			t.Fatal("weights changed through serialization")
		}
	}
	// Schedule decodes to the deployed configurations.
	cfgs, err := back.Configs()
	if err != nil {
		t.Fatal(err)
	}
	for r := range cfgs {
		for i := range cfgs[r] {
			for j := range cfgs[r][i] {
				if cfgs[r][i][j] != p.System.Schedule[r][i][j] {
					t.Fatal("schedule changed through serialization")
				}
			}
		}
	}
}

func TestArtifactDigitalTwinAgrees(t *testing.T) {
	p := builtPipeline(t)
	a := p.BuildArtifact()
	twin := a.DigitalTwin()
	for _, x := range p.Test.X[:40] {
		if twin.Predict(x) != p.Model.Predict(x) {
			t.Fatal("digital twin disagrees with the trained model")
		}
	}
}

func TestReadArtifactValidation(t *testing.T) {
	if _, err := ReadArtifact(strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadArtifact(strings.NewReader(`{"classes":0,"input_symbols":4}`)); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := ReadArtifact(strings.NewReader(`{"classes":2,"input_symbols":1,"weights_re_im":[[0,0]],"schedule":[]}`)); err == nil {
		t.Error("expected weight-count error")
	}
	// Invalid state digit.
	bad := `{"classes":1,"input_symbols":1,"weights_re_im":[[1,0]],"schedule":[["9"]]}`
	a, err := ReadArtifact(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Configs(); err == nil {
		t.Error("expected invalid-state error")
	}
}
