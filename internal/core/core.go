// Package core assembles the full MetaAI pipeline of the paper: encode a
// sensor sample into modulated symbols (§2.2), train the complex-valued
// single-layer network digitally (§3.1) — optionally with CDFA's
// synchronization-error injector (§3.5.1) and the system-noise alleviation
// scheme (§3.5.2) — solve the metasurface weight schedules (§3.2), and run
// inference over the simulated wireless channel (Eqn 3).
//
// The package distinguishes the paper's two measurement modes: the
// "simulation" accuracy of the digital model, and the "prototype" accuracy
// of the deployed over-the-air system with every hardware impairment
// enabled (Table 1 reports both).
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/autodiff"
	"repro/internal/clocksync"
	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/noisetrain"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/ota"
	"repro/internal/rng"
)

// Pipeline metrics: per-stage wall-clock timings (Train = digital training,
// Deploy = MTS schedule solving, Infer = one end-to-end over-the-air
// classification) recorded only while obs is enabled, plus a build counter.
var (
	pipeBuilds        = obs.NewCounter("pipeline.builds")
	pipeTrainSeconds  = obs.NewLatencyHistogram("pipeline.train.seconds")
	pipeDeploySeconds = obs.NewLatencyHistogram("pipeline.deploy.seconds")
	pipeInferSeconds  = obs.NewLatencyHistogram("pipeline.infer.seconds")
)

// SyncMode selects the clock-synchronization configuration (§3.5.1).
type SyncMode int

const (
	// SyncPerfect assumes a shared clock (the idealized upper bound).
	SyncPerfect SyncMode = iota
	// SyncNone plays the schedule from a random position — Fig 16's
	// "without sync scheme" baseline.
	SyncNone
	// SyncCoarse uses only the envelope detector: Gamma-distributed
	// residual offsets, plainly trained weights.
	SyncCoarse
	// SyncCDFA uses the detector plus the fine-grained-adjustment training
	// injector — the full scheme.
	SyncCDFA
)

// String names the mode as in Fig 16.
func (m SyncMode) String() string {
	switch m {
	case SyncPerfect:
		return "perfect"
	case SyncNone:
		return "none"
	case SyncCoarse:
		return "CD"
	case SyncCDFA:
		return "CDFA"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// Config assembles one end-to-end MetaAI run.
type Config struct {
	// Dataset names one of the Table 1 tasks (dataset.Names()). Ignored by
	// NewFromSets.
	Dataset string
	// Scale selects Quick or Full data sizes.
	Scale dataset.Scale
	// Scheme is the modulation (§4 default: 256-QAM).
	Scheme modem.Scheme
	// Train carries the §4 recipe; zero values use the paper's defaults.
	Train nn.TrainConfig
	// Air configures the physical deployment. A zero Surface means
	// ota.NewOptions defaults.
	Air ota.Options
	// Sync selects the synchronization configuration.
	Sync SyncMode
	// Detector parameterizes coarse detection; zero value means the Fig 12
	// defaults.
	Detector clocksync.CoarseDetector
	// NoiseAware, when non-nil, trains with the §3.5.2 alleviation scheme.
	NoiseAware *noisetrain.Config
	// Layers deploys a K-layer stacked cascade (0 or 1 means the classic
	// single surface). When Air.Stack is empty, the extra K-1 layers come
	// from ota.DefaultStack with the default per-hop noise; an explicit
	// Air.Stack wins over this count.
	Layers int
	// Seed drives every stochastic component.
	Seed uint64
}

// DefaultConfig returns the paper's default setup for a dataset: 256-QAM,
// office environment, CDFA sync, prototype surface.
func DefaultConfig(datasetName string) Config {
	return Config{
		Dataset: datasetName,
		Scale:   dataset.Quick,
		Scheme:  modem.QAM256,
		Sync:    SyncCDFA,
		Seed:    1,
	}
}

// Pipeline is a fully assembled MetaAI system.
type Pipeline struct {
	Cfg   Config
	Enc   nn.Encoder
	Train *nn.EncodedSet
	Test  *nn.EncodedSet
	// Model is the digitally trained network (the "simulation model").
	Model *nn.ComplexLNN
	// System is the deployed over-the-air classifier (the "prototype
	// model").
	System *ota.System
}

// New loads the configured dataset, trains, and deploys.
func New(cfg Config) (*Pipeline, error) {
	ds, err := dataset.Load(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	enc := nn.Encoder{Scheme: cfg.Scheme}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	return NewFromSets(train, test, cfg)
}

// NewResumed loads the configured dataset and deploys an ALREADY-TRAINED
// model (typically restored from a checkpoint), skipping the digital
// training pass entirely. The deployment half matches New exactly, so a
// resumed pipeline equals the one that saved the model.
func NewResumed(cfg Config, model *nn.ComplexLNN) (*Pipeline, error) {
	ds, err := dataset.Load(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	enc := nn.Encoder{Scheme: cfg.Scheme}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	return NewFromModel(train, test, model, cfg)
}

// EffectiveDetector returns the coarse-detection error model the pipeline
// uses for a stream of u symbols: the configured detector, or the
// stream-length-scaled Fig 12 default when unset. Checkpoint recovery
// persists its two parameters to rebuild the SyncSampler after a restart
// (functions don't serialize).
func (cfg Config) EffectiveDetector(u int) clocksync.CoarseDetector {
	det := cfg.Detector
	if det.Shape == 0 {
		// Default detector severity is scaled to the stream length so the
		// CDFA injector costs the same relative capacity as in the paper's
		// 784-symbol streams (see clocksync.ScaledDetector).
		det = clocksync.ScaledDetector(u)
	}
	return det
}

// NewFromSets builds the pipeline from pre-encoded train/test sets (used by
// the multi-sensor fusion and face-case experiments).
func NewFromSets(train, test *nn.EncodedSet, cfg Config) (*Pipeline, error) {
	if len(train.X) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	det := cfg.EffectiveDetector(train.U)

	// Training-side configuration.
	tc := cfg.Train
	if tc.Seed == 0 {
		tc.Seed = cfg.Seed
	}
	symRate := cfg.Air.SymbolRateHz
	if symRate == 0 {
		symRate = 1e6
	}
	if cfg.Sync == SyncCDFA {
		tc.InputAug = chainAug(tc.InputAug, clocksync.Injector(det, symRate))
	}
	root := startBuildTrace(cfg)
	trainTimer := obs.StartTimer()
	tsp := root.Child("pipeline.train")
	tsp.SetNum("classes", float64(train.Classes))
	tsp.SetNum("u", float64(train.U))
	tsp.SetNum("samples", float64(len(train.X)))
	var model *nn.ComplexLNN
	if cfg.NoiseAware != nil {
		model = noisetrain.Train(train, tc, *cfg.NoiseAware)
	} else {
		model = nn.TrainLNN(train, tc)
	}
	tsp.End()
	trainTimer.ObserveInto(pipeTrainSeconds)
	p, err := newFromModel(train, test, model, cfg, root)
	if err != nil {
		root.Finish(trace.FlagError)
		return nil, err
	}
	root.Finish(0)
	return p, nil
}

// buildSeq distinguishes successive pipeline builds in one process so
// their trace IDs never collide; it advances deterministically with the
// build sequence and never touches an rng stream.
var buildSeq atomic.Uint64

// startBuildTrace opens the per-build trace (nil while tracing is
// disabled). The ID derives from the config seed and the process-local
// build ordinal — stable identifiers only.
func startBuildTrace(cfg Config) *trace.Span {
	root := trace.Default().Start("pipeline.build",
		trace.Derive(cfg.Seed, 0xb111d, buildSeq.Add(1)))
	root.SetStr("dataset", cfg.Dataset)
	root.SetNum("seed", float64(cfg.Seed))
	return root
}

// NewFromModel deploys an ALREADY-TRAINED model over the air — the resume
// path: a model restored from a checkpoint skips the digital training pass
// entirely and goes straight to schedule solving. The deployment half is
// identical to NewFromSets', so resuming from a saved model reproduces the
// trained-then-deployed pipeline exactly.
func NewFromModel(train, test *nn.EncodedSet, model *nn.ComplexLNN, cfg Config) (*Pipeline, error) {
	root := startBuildTrace(cfg)
	p, err := newFromModel(train, test, model, cfg, root)
	if err != nil {
		root.Finish(trace.FlagError)
		return nil, err
	}
	root.Finish(0)
	return p, nil
}

// newFromModel is the shared deployment half, its schedule solve traced
// under root (nil when tracing is disabled or the caller owns no trace).
func newFromModel(train, test *nn.EncodedSet, model *nn.ComplexLNN, cfg Config, root *trace.Span) (*Pipeline, error) {
	if len(train.X) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if model.Classes != train.Classes || model.U != train.U {
		return nil, fmt.Errorf("core: %dx%d model does not fit a %d-class U=%d dataset",
			model.Classes, model.U, train.Classes, train.U)
	}
	p := &Pipeline{Cfg: cfg, Enc: nn.Encoder{Scheme: cfg.Scheme}, Train: train, Test: test, Model: model}
	det := cfg.EffectiveDetector(train.U)

	// Deployment-side configuration.
	deployTimer := obs.StartTimer()
	dsp := root.Child("pipeline.deploy")
	dsp.SetNum("classes", float64(train.Classes))
	dsp.SetNum("u", float64(train.U))
	src := rng.New(cfg.Seed ^ 0xa17)
	air := fillAir(cfg.Air, ota.NewOptions(src.Split()))
	if cfg.Layers > 1 && len(air.Stack) == 0 {
		// Extra relay layers draw from their own split so a K=1 config keeps
		// the seed's random stream (and accumulators) bit-identical.
		air.Stack = ota.DefaultStack(cfg.Layers-1, src.Split())
		if air.HopNoise == 0 {
			air.HopNoise = ota.DefaultHopNoise
		}
	}
	if n := len(air.Stack); n > 0 {
		dsp.SetNum("layers", float64(n+1))
	}
	switch cfg.Sync {
	case SyncNone:
		air.SyncSampler = clocksync.NoSyncSampler(train.U)
	case SyncCoarse, SyncCDFA:
		air.SyncSampler = clocksync.CoarseSampler(det, air.SymbolRateHz)
	case SyncPerfect:
		air.SyncSampler = nil
	}
	sys, err := ota.DeploySpan(p.Model.Weights(), air, src, dsp)
	if err != nil {
		return nil, err
	}
	dsp.End()
	deployTimer.ObserveInto(pipeDeploySeconds)
	p.System = sys
	pipeBuilds.Inc()
	return p, nil
}

// fillAir overlays defaults onto a partially specified Options: any field
// left at its zero value takes the default.
func fillAir(air, def ota.Options) ota.Options {
	if air.Surface == nil {
		air.Surface = def.Surface
	}
	if air.Geometry == (ota.Options{}).Geometry {
		air.Geometry = def.Geometry
	}
	if air.Controller == (ota.Options{}).Controller {
		air.Controller = def.Controller
	}
	if air.Channel == (ota.Options{}).Channel {
		air.Channel = def.Channel
	}
	switch {
	case air.SubSamples == 0:
		air.SubSamples = def.SubSamples
	case air.SubSamples < 0:
		// Explicitly disabled multipath cancellation.
		air.SubSamples = 0
	}
	if air.TargetScale == 0 {
		air.TargetScale = def.TargetScale
	}
	if air.BeamScanStepDeg == 0 {
		air.BeamScanStepDeg = def.BeamScanStepDeg
	}
	if air.JitterStd == 0 {
		air.JitterStd = def.JitterStd
	}
	if air.SymbolRateHz == 0 {
		air.SymbolRateHz = def.SymbolRateHz
	}
	return air
}

func chainAug(a, b nn.InputAugmenter) nn.InputAugmenter {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(x []complex128, src *rng.Source) []complex128 {
		return b(a(x, src), src)
	}
}

// Deployment returns the immutable over-the-air deployment — the solved
// schedules and channel statistics that any number of concurrent sessions
// share.
func (p *Pipeline) Deployment() *ota.Deployment {
	return p.System.Deployment
}

// Sessions derives n independent per-worker inference sessions from the
// pipeline's seed. The derivation is a pure function of (Cfg.Seed, n-th
// split), so a fixed seed yields a reproducible worker fleet without
// disturbing the default session bound inside System.
func (p *Pipeline) Sessions(n int) []*ota.Session {
	return p.Deployment().Sessions(n, rng.New(p.Cfg.Seed^0x5e5510))
}

// Predictors adapts Sessions(n) into the factory shape nn.EvaluateParallel
// consumes.
func (p *Pipeline) Predictors(n int) nn.SessionFactory {
	ss := p.Sessions(n)
	return func(w int) nn.Predictor { return ss[w] }
}

// SimAccuracy returns the digital model's test accuracy — the paper's
// "Simulation" column.
func (p *Pipeline) SimAccuracy() float64 {
	return nn.Evaluate(p.Model, p.Test)
}

// SimAccuracyParallel is SimAccuracy fanned across workers. The digital
// model's Predict is pure, so every worker shares the one model.
func (p *Pipeline) SimAccuracyParallel(workers int) float64 {
	return nn.EvaluateParallel(p.Test, workers, nn.StatelessSessions(p.Model))
}

// AirAccuracy returns the deployed system's over-the-air test accuracy —
// the paper's "Prototype" column. It runs through the system's bound
// default session, reproducing the single-threaded numbers exactly.
func (p *Pipeline) AirAccuracy() float64 {
	return nn.Evaluate(p.System, p.Test)
}

// AirAccuracyParallel is AirAccuracy fanned across `workers` independent
// sessions of the shared deployment. workers <= 1 degrades to a serial
// evaluation through Sessions(1)[0].
func (p *Pipeline) AirAccuracyParallel(workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	return nn.EvaluateParallel(p.Test, workers, p.Predictors(workers))
}

// Infer classifies one raw sample end to end over the air through the
// default session, returning the predicted class and the per-class
// probabilities.
func (p *Pipeline) Infer(x []float64) (int, []float64) {
	t := obs.StartTimer()
	defer t.ObserveInto(pipeInferSeconds)
	root := trace.Default().Start("pipeline.infer",
		trace.Derive(p.Cfg.Seed, 0x1f3a, inferSeq.Add(1)))
	sess := p.System.Session()
	sess.SetSpan(root)
	logits := p.System.Logits(p.Enc.Encode(x))
	sess.SetSpan(nil)
	arg, probs := p.inferLogits(logits)
	root.SetNum("class", float64(arg))
	root.Finish(0)
	return arg, probs
}

// inferSeq orders standalone Infer traces within one process, exactly as
// buildSeq orders builds.
var inferSeq atomic.Uint64

// InferSession is Infer through a caller-owned session, for concurrent
// serving: each worker holds one session from Sessions(n) and infers
// without any cross-worker locking.
func (p *Pipeline) InferSession(sess *ota.Session, x []float64) (int, []float64) {
	return p.InferSessionSpan(sess, x, nil)
}

// InferSessionSpan is InferSession with the inference traced as a
// "pipeline.infer" child of parent — the request-root plumbing a serving
// worker that owns both the session and the request trace uses. A nil
// parent records nothing.
func (p *Pipeline) InferSessionSpan(sess *ota.Session, x []float64, parent *trace.Span) (int, []float64) {
	t := obs.StartTimer()
	defer t.ObserveInto(pipeInferSeconds)
	sp := parent.Child("pipeline.infer")
	sess.SetSpan(sp)
	logits := sess.Logits(p.Enc.Encode(x))
	sess.SetSpan(nil)
	arg, probs := p.inferLogits(logits)
	sp.SetNum("class", float64(arg))
	sp.End()
	return arg, probs
}

func (p *Pipeline) inferLogits(logits []float64) (int, []float64) {
	probs := autodiff.Softmax(logits)
	best, arg := -1.0, 0
	for i, v := range probs {
		if v > best {
			best, arg = v, i
		}
	}
	return arg, probs
}
