package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/nn"
)

// Artifact is the serializable deployment record: everything an MTS
// controller and an edge server need to operate a trained pipeline — the
// desired complex weights, the solved per-symbol 2-bit configurations, and
// the calibration metadata. It round-trips through JSON.
type Artifact struct {
	Dataset       string  `json:"dataset"`
	Scheme        string  `json:"scheme"`
	Classes       int     `json:"classes"`
	InputSymbols  int     `json:"input_symbols"`
	SimAccuracy   float64 `json:"sim_accuracy"`
	AirAccuracy   float64 `json:"air_accuracy"`
	EstRxAngleDeg float64 `json:"est_rx_angle_deg"`
	Gamma         float64 `json:"weight_scale_gamma"`
	// WeightsReIm holds the trained H_des row-major as [re, im] pairs.
	WeightsReIm [][2]float64 `json:"weights_re_im"`
	// Schedule[r][i] is the per-output per-symbol configuration, each atom's
	// 2-bit state as a digit '0'-'3'.
	Schedule [][]string `json:"schedule"`
}

// BuildArtifact captures a pipeline's deployment.
func (p *Pipeline) BuildArtifact() *Artifact {
	a := &Artifact{
		Dataset:       p.Cfg.Dataset,
		Scheme:        p.Cfg.Scheme.String(),
		Classes:       p.Train.Classes,
		InputSymbols:  p.Train.U,
		SimAccuracy:   p.SimAccuracy(),
		AirAccuracy:   p.AirAccuracy(),
		EstRxAngleDeg: p.System.EstRxAngleDeg,
		Gamma:         p.System.Gamma,
	}
	for _, v := range p.Model.Weights().Data {
		a.WeightsReIm = append(a.WeightsReIm, [2]float64{real(v), imag(v)})
	}
	for _, row := range p.System.Schedule {
		cfgs := make([]string, len(row))
		for i, cfg := range row {
			b := make([]byte, len(cfg))
			for j, st := range cfg {
				b[j] = '0' + st
			}
			cfgs[i] = string(b)
		}
		a.Schedule = append(a.Schedule, cfgs)
	}
	return a
}

// WriteJSON serializes the artifact.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(a)
}

// ReadArtifact deserializes an artifact and validates its shape.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("core: decoding artifact: %w", err)
	}
	if a.Classes <= 0 || a.InputSymbols <= 0 {
		return nil, fmt.Errorf("core: artifact has invalid dimensions %d×%d", a.Classes, a.InputSymbols)
	}
	if len(a.WeightsReIm) != a.Classes*a.InputSymbols {
		return nil, fmt.Errorf("core: artifact carries %d weights for a %d×%d network",
			len(a.WeightsReIm), a.Classes, a.InputSymbols)
	}
	if len(a.Schedule) != a.Classes {
		return nil, fmt.Errorf("core: artifact schedule has %d outputs, want %d", len(a.Schedule), a.Classes)
	}
	for r, row := range a.Schedule {
		if len(row) != a.InputSymbols {
			return nil, fmt.Errorf("core: schedule row %d has %d configs, want %d", r, len(row), a.InputSymbols)
		}
	}
	return &a, nil
}

// Weights reconstructs the desired weight matrix.
func (a *Artifact) Weights() *cplx.Mat {
	m := cplx.NewMat(a.Classes, a.InputSymbols)
	for i, p := range a.WeightsReIm {
		m.Data[i] = complex(p[0], p[1])
	}
	return m
}

// Configs reconstructs the MTS configurations.
func (a *Artifact) Configs() ([][]mts.Config, error) {
	out := make([][]mts.Config, len(a.Schedule))
	for r, row := range a.Schedule {
		out[r] = make([]mts.Config, len(row))
		for i, s := range row {
			cfg := make(mts.Config, len(s))
			for j := 0; j < len(s); j++ {
				st := s[j] - '0'
				if st > 3 {
					return nil, fmt.Errorf("core: schedule (%d,%d) has invalid state %q", r, i, s[j])
				}
				cfg[j] = st
			}
			out[r][i] = cfg
		}
	}
	return out, nil
}

// DigitalTwin builds an LNN carrying the artifact's weights — the server's
// reference model for monitoring a deployed system.
func (a *Artifact) DigitalTwin() *nn.ComplexLNN {
	m := nn.NewComplexLNN(a.Classes, a.InputSymbols)
	copy(m.W.Val, a.Weights().Data)
	return m
}
