// Package mobility implements the receiver-mobility management the paper
// sketches in §7: when the receiver moves, the physical propagation paths
// change, invalidating the pre-calculated mapping between MTS
// configurations and logical weights. The system must re-estimate the
// channel (beam scan) and re-solve the schedules (Eqn 7), and its ability
// to support mobility "is a race between the target's speed and this
// recalibration latency".
//
// The package models that race explicitly: a Tracker periodically
// recalibrates a deployment (paying a modeled scan + solve + upload
// latency), while the receiver sweeps through angles at a configurable
// angular speed. Between recalibrations the deployment serves inference
// with a stale schedule whose realized weights have drifted.
package mobility

import (
	"fmt"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

// Costs models the recalibration latency components.
type Costs struct {
	// ScanDwell is the per-candidate dwell time of the beam scan (the MTS
	// must settle and the receiver report power), seconds.
	ScanDwell float64
	// ScanRangeDeg and ScanStepDeg size the scan grid.
	ScanRangeDeg, ScanStepDeg float64
	// SolvePerWeight is the controller-side compute time per scheduled
	// weight, seconds.
	SolvePerWeight float64
	// UploadPerConfig is the time to stream one configuration to the
	// registers (from the mts.Controller model).
	UploadPerConfig float64
}

// DefaultCosts sizes the components for the prototype: a ±80° scan at the
// given step with 100 µs dwell (a feedback-protocol round trip), 20 µs of
// solver time per weight, and the 2.56 MHz controller upload rate.
func DefaultCosts(stepDeg float64) Costs {
	if stepDeg <= 0 {
		stepDeg = 2
	}
	return Costs{
		ScanDwell:       100e-6,
		ScanRangeDeg:    160,
		ScanStepDeg:     stepDeg,
		SolvePerWeight:  20e-6,
		UploadPerConfig: mts.PrototypeController().ReconfigTime(256),
	}
}

// RecalibrationLatency returns the time to re-acquire the receiver and
// rebuild the schedule for a classes×u deployment.
func (c Costs) RecalibrationLatency(classes, u int) float64 {
	candidates := c.ScanRangeDeg/c.ScanStepDeg + 1
	scan := candidates * c.ScanDwell
	solve := float64(classes*u) * c.SolvePerWeight
	upload := float64(classes*u) * c.UploadPerConfig
	return scan + solve + upload
}

// Tracker serves inference for a moving receiver, recalibrating at a fixed
// period.
type Tracker struct {
	// Weights is the trained desired-weight matrix.
	Weights *cplx.Mat
	// Opts is the deployment template; its Geometry holds the deployment
	// anchor and its BeamScanStepDeg feeds the scan cost.
	Opts ota.Options
	// Costs models recalibration latency.
	Costs Costs
	// RecalPeriod is the time between recalibrations, seconds. It cannot be
	// shorter than the recalibration latency itself.
	RecalPeriod float64

	sys       *ota.System
	deployed  mts.Geometry
	travelled float64 // seconds since last recalibration
}

// NewTracker deploys the initial schedule at opts.Geometry.
func NewTracker(w *cplx.Mat, opts ota.Options, costs Costs, recalPeriod float64, src *rng.Source) (*Tracker, error) {
	lat := costs.RecalibrationLatency(w.Rows, w.Cols)
	if recalPeriod < lat {
		return nil, fmt.Errorf("mobility: recalibration period %.3gs below the recalibration latency %.3gs", recalPeriod, lat)
	}
	sys, err := ota.Deploy(w, opts, src)
	if err != nil {
		return nil, err
	}
	return &Tracker{
		Weights:     w,
		Opts:        opts,
		Costs:       costs,
		RecalPeriod: recalPeriod,
		sys:         sys,
		deployed:    opts.Geometry,
	}, nil
}

// Advance moves time forward by dt seconds while the receiver sweeps at
// omegaDegPerSec: the true geometry drifts, the stale schedule's realized
// responses are recomputed against it, and a recalibration fires whenever
// the period elapses (re-anchoring the schedule at the receiver's current
// angle).
func (t *Tracker) Advance(dt, omegaDegPerSec float64, src *rng.Source) error {
	t.travelled += dt
	cur := t.deployed
	cur.RxAngleDeg += omegaDegPerSec * t.travelled
	if t.travelled >= t.RecalPeriod {
		// Recalibrate at the receiver's current position.
		t.travelled = 0
		t.deployed = cur
		opts := t.Opts
		opts.Geometry = cur
		sys, err := ota.Deploy(t.Weights, opts, src)
		if err != nil {
			return err
		}
		t.sys = sys
		return nil
	}
	t.sys.Recompute(cur)
	return nil
}

// Deployed returns the geometry the current schedule was solved for.
func (t *Tracker) Deployed() mts.Geometry { return t.deployed }

// StaleAngleDeg returns how far the receiver has drifted from the deployed
// anchor.
func (t *Tracker) StaleAngleDeg(omegaDegPerSec float64) float64 {
	return omegaDegPerSec * t.travelled
}

// System returns the currently serving deployment.
func (t *Tracker) System() *ota.System { return t.sys }

// Evaluate measures the tracker's current accuracy on a test set.
func (t *Tracker) Evaluate(test *nn.EncodedSet) float64 {
	return nn.Evaluate(t.sys, test)
}

// SteadyStateAccuracy simulates one full recalibration period at the given
// angular speed, sampling accuracy at `samples` evenly spaced instants, and
// returns the time-averaged accuracy — the figure of merit of the §7 race.
func (t *Tracker) SteadyStateAccuracy(omegaDegPerSec float64, samples int, test *nn.EncodedSet, src *rng.Source) (float64, error) {
	if samples < 1 {
		samples = 4
	}
	dt := t.RecalPeriod / float64(samples)
	var total float64
	for i := 0; i < samples; i++ {
		if err := t.Advance(dt, omegaDegPerSec, src); err != nil {
			return 0, err
		}
		total += t.Evaluate(test)
	}
	return total / float64(samples), nil
}
