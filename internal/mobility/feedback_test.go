package mobility

import (
	"math"
	"testing"

	"repro/internal/ota"
	"repro/internal/rng"
)

func TestMargin(t *testing.T) {
	if got := Margin([]float64{10, 5, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Margin = %v, want 0.5", got)
	}
	if Margin([]float64{7}) != 0 {
		t.Fatal("single logit must yield margin 0")
	}
	if Margin([]float64{0, 0}) != 0 {
		t.Fatal("zero logits must yield margin 0")
	}
	if got := Margin([]float64{4, 4}); got != 0 {
		t.Fatalf("tied logits margin = %v, want 0", got)
	}
}

func TestCalibrateQuantile(t *testing.T) {
	var f Feedback
	p := &fixedLogits{vals: [][]float64{
		{10, 1}, {10, 3}, {10, 5}, {10, 7},
	}}
	probes := make([][]complex128, 4)
	f.Calibrate(p, probes, 0.25)
	// Margins: 0.9, 0.7, 0.5, 0.3 → sorted {0.3,0.5,0.7,0.9}; 25% quantile
	// index 1 → 0.5.
	if math.Abs(f.Threshold-0.5) > 1e-12 {
		t.Fatalf("threshold = %v, want 0.5", f.Threshold)
	}
	f.Calibrate(p, nil, 0.25)
	if f.Threshold != 0 {
		t.Fatal("empty probes must zero the threshold")
	}
}

// fixedLogits replays canned logits regardless of input.
type fixedLogits struct {
	vals [][]float64
	i    int
}

func (f *fixedLogits) Logits(x []complex128) []float64 {
	v := f.vals[f.i%len(f.vals)]
	f.i++
	return v
}

func TestMarginDegradesBeforeAccuracy(t *testing.T) {
	// The premise of the protocol: a modest receiver drift shrinks margins
	// measurably even while most predictions still hold.
	m, test := trained(t)
	src := rng.New(10)
	opts := ota.NewOptions(src.Split())
	opts.BeamScanStepDeg = 0
	sys, err := ota.Deploy(m.Weights(), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	probes := test.X[:60]
	fresh := MeanMargin(sys, probes)
	moved := opts.Geometry
	moved.RxAngleDeg += 10
	sys.Recompute(moved)
	stale := MeanMargin(sys, probes)
	if stale >= fresh*0.85 {
		t.Fatalf("10 degrees of drift should shrink margins: fresh %.3f, stale %.3f", fresh, stale)
	}
}

func TestFeedbackTriggersOnDriftOnly(t *testing.T) {
	m, test := trained(t)
	src := rng.New(11)
	opts := ota.NewOptions(src.Split())
	probes := test.X[:50]
	ft, err := NewFeedbackTracker(m.Weights(), opts, DefaultCosts(2), 10, probes, src)
	if err != nil {
		t.Fatal(err)
	}
	// Static receiver: feed fresh readouts; no recalibration should fire.
	for _, x := range test.X[:30] {
		fired, err := ft.Observe(ft.System().Logits(x), 0, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if fired {
			t.Fatal("static receiver triggered a recalibration")
		}
	}
	// Now the receiver jumps 10°: stale margins collapse, the protocol
	// recalibrates, and margins recover.
	moved := opts.Geometry
	moved.RxAngleDeg += 10
	ft.System().Recompute(moved)
	var fired bool
	for _, x := range test.X[:40] {
		f, err := ft.Observe(ft.System().Logits(x), 10.0/3.0, 3.0, src)
		if err != nil {
			t.Fatal(err)
		}
		if f {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("margin collapse did not trigger recalibration")
	}
	if ft.Recalibrations != 1 {
		t.Fatalf("recalibrations = %d, want 1", ft.Recalibrations)
	}
	if got := MeanMargin(ft.System(), probes); got < ft.FB.Threshold {
		t.Fatalf("post-recalibration margin %.3f still below threshold %.3f", got, ft.FB.Threshold)
	}
}
