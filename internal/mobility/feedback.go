package mobility

import (
	"math"
	"sort"

	"repro/internal/cplx"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

// Feedback implements the receiver-feedback protocol the paper adopts from
// RF-Bouncer (§4: "when the receiver moves to new locations, MetaAI employs
// a feedback protocol to reconfigure the MTS"): instead of recalibrating on
// a fixed period, the receiver monitors the quality of its own
// accumulators — the normalized margin between the best and second-best
// |y_r| — and requests reconfiguration only when the margin collapses.
// Margins degrade before accuracy does (stale schedules first shrink the
// winner's lead, then flip decisions), which makes the margin a usable
// online signal that needs no ground-truth labels.
type Feedback struct {
	// Threshold is the margin below which the receiver requests
	// recalibration; Calibrate derives it from the fresh deployment.
	Threshold float64
	// Window is how many inferences the margin is averaged over before a
	// decision.
	Window int
}

// DefaultFeedback uses an 8-inference window; call Calibrate to set the
// threshold.
func DefaultFeedback() Feedback {
	return Feedback{Window: 8}
}

// Margin returns the relative decision margin of one readout:
// (best − second) / best over the magnitudes. Zero for degenerate outputs.
func Margin(logits []float64) float64 {
	if len(logits) < 2 {
		return 0
	}
	best, second := math.Inf(-1), math.Inf(-1)
	for _, v := range logits {
		if v > best {
			second = best
			best = v
		} else if v > second {
			second = v
		}
	}
	if best <= 0 {
		return 0
	}
	return (best - second) / best
}

// MeanMargin measures the average margin a predictor produces over probe
// inputs.
func MeanMargin(p nn.LogitsPredictor, probes [][]complex128) float64 {
	if len(probes) == 0 {
		return 0
	}
	var sum float64
	for _, x := range probes {
		sum += Margin(p.Logits(x))
	}
	return sum / float64(len(probes))
}

// Agreement returns the fraction of probe inputs on which two predictors
// produce the same argmax class. It is the label-free canary metric for
// validating a heal candidate before publication: a genuine masked re-solve
// approximates the healthy responses and agrees with the known-good
// reference on almost every probe, while a regressive candidate's
// predictions decorrelate toward chance. Margins cannot play this role —
// a garbage schedule can be confidently wrong — but agreement against
// golden outputs catches exactly that.
func Agreement(candidate, reference nn.Predictor, probes [][]complex128) float64 {
	if len(probes) == 0 {
		return 0
	}
	same := 0
	for _, x := range probes {
		if candidate.Predict(x) == reference.Predict(x) {
			same++
		}
	}
	return float64(same) / float64(len(probes))
}

// Calibrate sets the threshold to the q-quantile of the fresh deployment's
// per-probe margins (q = 0.25 by default: recalibration triggers when the
// link's margins look like the bottom quartile of a healthy deployment).
func (f *Feedback) Calibrate(p nn.LogitsPredictor, probes [][]complex128, q float64) {
	if q <= 0 || q >= 1 {
		q = 0.25
	}
	ms := make([]float64, 0, len(probes))
	for _, x := range probes {
		ms = append(ms, Margin(p.Logits(x)))
	}
	if len(ms) == 0 {
		f.Threshold = 0
		return
	}
	sort.Float64s(ms)
	f.Threshold = ms[int(q*float64(len(ms)))]
}

// CalibrateMeanFraction sets the threshold to a fraction of the fresh
// deployment's MEAN margin — the natural scale to compare a windowed mean
// against (per-sample quantiles sit far below the mean because individual
// margins are wildly dispersed).
func (f *Feedback) CalibrateMeanFraction(p nn.LogitsPredictor, probes [][]complex128, frac float64) {
	if frac <= 0 || frac >= 1 {
		frac = 0.75
	}
	f.Threshold = frac * MeanMargin(p, probes)
}

// FeedbackTracker recalibrates a deployment when the receiver's observed
// decision margins collapse, rather than on a fixed period.
type FeedbackTracker struct {
	*Tracker
	FB Feedback
	// Recalibrations counts feedback-triggered reconfigurations.
	Recalibrations int

	recent []float64
}

// NewFeedbackTracker deploys at opts.Geometry and calibrates the margin
// threshold against the probe inputs. maxPeriod bounds how stale the
// schedule may get even with healthy margins.
func NewFeedbackTracker(w *cplx.Mat, opts ota.Options, costs Costs, maxPeriod float64, probes [][]complex128, src *rng.Source) (*FeedbackTracker, error) {
	tr, err := NewTracker(w, opts, costs, maxPeriod, src)
	if err != nil {
		return nil, err
	}
	ft := &FeedbackTracker{Tracker: tr, FB: DefaultFeedback()}
	ft.FB.Calibrate(tr.System(), probes, 0.25)
	return ft, nil
}

// Observe processes one inference's feedback: record the readout's margin;
// once the trailing window fills and its mean falls below the threshold,
// recalibrate at the receiver's current position (drifted by
// omega·sinceRecal seconds of motion) and reset the window. It reports
// whether a recalibration fired.
func (ft *FeedbackTracker) Observe(logits []float64, omegaDegPerSec, sinceRecal float64, src *rng.Source) (bool, error) {
	ft.recent = append(ft.recent, Margin(logits))
	if len(ft.recent) > ft.FB.Window {
		ft.recent = ft.recent[len(ft.recent)-ft.FB.Window:]
	}
	if len(ft.recent) < ft.FB.Window {
		return false, nil
	}
	var mean float64
	for _, m := range ft.recent {
		mean += m
	}
	mean /= float64(len(ft.recent))
	if mean >= ft.FB.Threshold {
		return false, nil
	}
	// Margin collapsed: recalibrate at the current position.
	cur := ft.deployed
	cur.RxAngleDeg += omegaDegPerSec * sinceRecal
	ft.deployed = cur
	ft.travelled = 0
	opts := ft.Opts
	opts.Geometry = cur
	sys, err := ota.Deploy(ft.Weights, opts, src)
	if err != nil {
		return false, err
	}
	ft.sys = sys
	ft.recent = ft.recent[:0]
	ft.Recalibrations++
	return true, nil
}
