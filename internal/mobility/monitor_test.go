package mobility

import (
	"sync"
	"testing"
)

func TestMonitorWindowAndThreshold(t *testing.T) {
	m := NewMonitor(0.5, 4)
	if m.Degraded() {
		t.Fatal("empty monitor reports degraded")
	}
	for i := 0; i < 3; i++ {
		m.ObserveMargin(0.1)
	}
	if m.Degraded() {
		t.Fatal("degraded before the window filled")
	}
	m.ObserveMargin(0.1)
	if !m.Degraded() {
		t.Fatal("collapsed margins not flagged")
	}
	if mean, ok := m.Mean(); !ok || mean != 0.1 {
		t.Fatalf("mean = %v, %v; want 0.1, true", mean, ok)
	}
	// Healthy margins push the window mean back over the threshold.
	for i := 0; i < 4; i++ {
		m.ObserveMargin(0.9)
	}
	if m.Degraded() {
		t.Fatal("healthy window still flagged")
	}
	m.Reset()
	if _, ok := m.Mean(); ok {
		t.Fatal("Reset did not clear the window")
	}
	if m.Observed() != 8 {
		t.Fatalf("Observed = %d, want 8 (Reset must not clear the lifetime count)", m.Observed())
	}
}

func TestMonitorConcurrent(t *testing.T) {
	// Hammer the monitor from many goroutines under -race; the final count
	// must be exact.
	m := NewMonitor(0.5, 16)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.ObserveMargin(0.3)
				m.Degraded()
			}
		}()
	}
	wg.Wait()
	if m.Observed() != workers*per {
		t.Fatalf("Observed = %d, want %d", m.Observed(), workers*per)
	}
	if !m.Degraded() {
		t.Fatal("uniformly low margins not flagged")
	}
}

func TestCalibrateMonitorFraction(t *testing.T) {
	// A predictor with fixed logits has a fixed margin; the calibrated
	// threshold must be frac of it.
	p := constLogits{0.2, 1.0}
	probes := [][]complex128{{1}, {1}}
	m := CalibrateMonitor(p, probes, 0.5, 4)
	want := 0.5 * Margin([]float64{0.2, 1.0})
	if m.Threshold() != want {
		t.Fatalf("threshold = %v, want %v", m.Threshold(), want)
	}
}

type constLogits []float64

func (c constLogits) Logits([]complex128) []float64 { return c }
