package mobility

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestMonitorWindowAndThreshold(t *testing.T) {
	m := NewMonitor(0.5, 4)
	if m.Degraded() {
		t.Fatal("empty monitor reports degraded")
	}
	for i := 0; i < 3; i++ {
		m.ObserveMargin(0.1)
	}
	if m.Degraded() {
		t.Fatal("degraded before the window filled")
	}
	m.ObserveMargin(0.1)
	if !m.Degraded() {
		t.Fatal("collapsed margins not flagged")
	}
	if mean, ok := m.Mean(); !ok || mean != 0.1 {
		t.Fatalf("mean = %v, %v; want 0.1, true", mean, ok)
	}
	// Healthy margins push the window mean back over the threshold.
	for i := 0; i < 4; i++ {
		m.ObserveMargin(0.9)
	}
	if m.Degraded() {
		t.Fatal("healthy window still flagged")
	}
	m.Reset()
	if _, ok := m.Mean(); ok {
		t.Fatal("Reset did not clear the window")
	}
	if m.Observed() != 8 {
		t.Fatalf("Observed = %d, want 8 (Reset must not clear the lifetime count)", m.Observed())
	}
}

func TestMonitorConcurrent(t *testing.T) {
	// Hammer the monitor from many goroutines under -race; the final count
	// must be exact.
	m := NewMonitor(0.5, 16)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.ObserveMargin(0.3)
				m.Degraded()
			}
		}()
	}
	wg.Wait()
	if m.Observed() != workers*per {
		t.Fatalf("Observed = %d, want %d", m.Observed(), workers*per)
	}
	if !m.Degraded() {
		t.Fatal("uniformly low margins not flagged")
	}
}

func TestCalibrateMonitorFraction(t *testing.T) {
	// A predictor with fixed logits has a fixed margin; the calibrated
	// threshold must be frac of it.
	p := constLogits{0.2, 1.0}
	probes := [][]complex128{{1}, {1}}
	m := CalibrateMonitor(p, probes, 0.5, 4)
	want := 0.5 * Margin([]float64{0.2, 1.0})
	if m.Threshold() != want {
		t.Fatalf("threshold = %v, want %v", m.Threshold(), want)
	}
}

type constLogits []float64

func (c constLogits) Logits([]complex128) []float64 { return c }

// TestMonitorDriftingChannelEpisodes runs the monitor against a synthetic
// drifting channel: the receiver moves away from the calibrated geometry at
// a constant rate, so the decision margin decays exponentially with the
// accumulated drift; a heal recalibrates at the current position and
// restores it. The contract under test is the serve supervisor's: the
// margin gauge falls below the threshold exactly when the trigger fires,
// the trigger fires exactly ONCE per degradation episode (the post-heal
// Reset keeps stale pre-heal readouts from re-firing it), and every
// episode follows the same healthy → degrading → trigger arc.
func TestMonitorDriftingChannelEpisodes(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	const (
		healthyMargin = 0.8
		window        = 8
		driftPerStep  = 0.03
		episodes      = 3
	)
	threshold := 0.5 * healthyMargin
	m := NewMonitor(threshold, window)

	drift := 0.0
	margin := func() float64 { return healthyMargin * math.Exp(-drift) }

	var firedAt []int
	for step := 0; step < 2000 && len(firedAt) < episodes; step++ {
		drift += driftPerStep
		m.ObserveMargin(margin())
		if !m.Degraded() {
			continue
		}
		// Trigger: the windowed mean and the live gauge both sit below the
		// threshold — margins fell before anything else noticed.
		if mean, ok := m.Mean(); !ok || mean >= threshold {
			t.Fatalf("step %d: trigger fired with mean %v (threshold %v)", step, mean, threshold)
		}
		if g := obs.Default().Snapshot().Gauges["mobility.margin"]; g >= threshold {
			t.Fatalf("step %d: margin gauge %v did not fall below threshold %v", step, g, threshold)
		}
		firedAt = append(firedAt, step)

		// Heal: recalibrate at the current position and reset the window,
		// exactly as the serve supervisor does after publishing.
		drift = 0
		m.Reset()

		// One trigger per episode: with the drift healed, the refilling
		// window must not re-fire on the margins that caused the episode.
		for i := 0; i < window; i++ {
			m.ObserveMargin(margin())
			if m.Degraded() {
				t.Fatalf("step %d: trigger re-fired within the healed episode", step)
			}
			drift += driftPerStep
		}
	}
	if len(firedAt) != episodes {
		t.Fatalf("saw %d degradation triggers, want %d (fired at %v)", len(firedAt), episodes, firedAt)
	}
	// Episodes are driven by the same decay from the same healed state, so
	// the gaps between triggers must be regular — a drifting trigger point
	// would mean window state leaked across episodes.
	gap := firedAt[1] - firedAt[0]
	if got := firedAt[2] - firedAt[1]; got != gap {
		t.Fatalf("episode gaps differ: %d vs %d (window state leaked across heals)", gap, got)
	}
}
