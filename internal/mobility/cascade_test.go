package mobility

import (
	"testing"

	"repro/internal/mts"
	"repro/internal/ota"
	"repro/internal/rng"
)

// TestMonitorFlagsCascadePowerStarvation is the end-to-end margin check for
// stacked cascades: a monitor calibrated against a healthy 2-layer
// deployment must flag degradation when a relay hop is power-starved. A
// starved hop amplifies the per-hop re-scattering noise (cascadeNoiseBoost),
// which shrinks decision margins at the receiver — the margin signal sees
// the whole cascade, not just the primary surface.
func TestMonitorFlagsCascadePowerStarvation(t *testing.T) {
	m, test := trained(t)
	probes := test.X[:48]
	build := func(power []float64) *ota.Deployment {
		src := rng.New(21)
		opts := ota.NewOptions(src.Split())
		relay, err := mts.NewSurface(12, 12, 2, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		opts.Stack = []ota.CascadeLayer{{
			Surface:  relay,
			Geometry: mts.Geometry{TxDistM: 1.5, TxAngleDeg: 20, RxDistM: 2, RxAngleDeg: 35},
		}}
		opts.HopNoise = 0.05
		opts.LayerPower = power
		d, err := ota.NewDeployment(m.Weights(), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	healthy := build(nil)
	if healthy.Layers() != 2 {
		t.Fatalf("Layers() = %d, want 2", healthy.Layers())
	}
	// A tight SLO: flag when margins fall below 90% of the healthy mean.
	mon := CalibrateMonitor(healthy.SessionFromSeed(5), probes, 0.9, len(probes))

	sess := healthy.SessionFromSeed(5)
	for _, x := range probes {
		mon.Observe(sess.Logits(x))
	}
	if mon.Degraded() {
		t.Fatal("healthy cascade flagged as degraded")
	}

	// Starve the relay hop to 5% drive: the hop-noise boost
	// 1 + HopNoise/p² inflates the end-to-end noise floor ~21x.
	mon.Reset()
	starved := build([]float64{1, 0.05})
	sess = starved.SessionFromSeed(5)
	for _, x := range probes {
		mon.Observe(sess.Logits(x))
	}
	mean, ok := mon.Mean()
	if !ok {
		t.Fatal("window did not fill")
	}
	if mean >= mon.Threshold() {
		t.Fatalf("starved-relay margin mean %.4f not below threshold %.4f", mean, mon.Threshold())
	}
	if !mon.Degraded() {
		t.Fatal("monitor did not flag relay power starvation end-to-end")
	}
}
