package mobility

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func trained(t *testing.T) (*nn.ComplexLNN, *nn.EncodedSet) {
	t.Helper()
	ds := dataset.MustLoad("afhq", dataset.Quick, 1)
	enc := nn.Encoder{Scheme: modem.QAM256}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	return nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 20}), test
}

func TestRecalibrationLatencyComposition(t *testing.T) {
	c := DefaultCosts(2)
	lat := c.RecalibrationLatency(10, 64)
	// 81 scan candidates × 100 µs = 8.1 ms; 640 weights × 20 µs = 12.8 ms;
	// 640 uploads × ~0.39 µs = 0.25 ms.
	want := 81*100e-6 + 640*20e-6 + 640*c.UploadPerConfig
	if math.Abs(lat-want) > 1e-9 {
		t.Fatalf("latency %v, want %v", lat, want)
	}
	if lat < 15e-3 || lat > 40e-3 {
		t.Fatalf("prototype recalibration latency %v s outside the plausible tens-of-ms band", lat)
	}
}

func TestNewTrackerRejectsImpossiblePeriod(t *testing.T) {
	m, _ := trained(t)
	src := rng.New(1)
	opts := ota.NewOptions(src.Split())
	costs := DefaultCosts(2)
	if _, err := NewTracker(m.Weights(), opts, costs, 1e-6, src); err == nil {
		t.Fatal("expected error for a period below the recalibration latency")
	}
}

func TestStaticReceiverKeepsAccuracy(t *testing.T) {
	m, test := trained(t)
	src := rng.New(2)
	opts := ota.NewOptions(src.Split())
	costs := DefaultCosts(2)
	tr, err := NewTracker(m.Weights(), opts, costs, 0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	base := tr.Evaluate(test)
	acc, err := tr.SteadyStateAccuracy(0, 4, test, src)
	if err != nil {
		t.Fatal(err)
	}
	if base-acc > 0.05 {
		t.Fatalf("static receiver lost accuracy: %.3f -> %.3f", base, acc)
	}
}

func TestMobilityRace(t *testing.T) {
	// The §7 race: slow targets are fine, fast targets outrun the
	// recalibration period and lose accuracy.
	m, test := trained(t)
	run := func(omega float64) float64 {
		src := rng.New(3)
		opts := ota.NewOptions(src.Split())
		tr, err := NewTracker(m.Weights(), opts, DefaultCosts(2), 0.5, src)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := tr.SteadyStateAccuracy(omega, 5, test, src)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	slow := run(2)   // 1° of drift per period
	fast := run(140) // up to 70° of drift per period
	if slow-fast < 0.1 {
		t.Fatalf("fast target (%.3f) should lose clearly against slow (%.3f)", fast, slow)
	}
	if slow < 0.75 {
		t.Fatalf("slow target accuracy %.3f too low", slow)
	}
}

func TestRecalibrationRestoresAfterDrift(t *testing.T) {
	m, test := trained(t)
	src := rng.New(4)
	opts := ota.NewOptions(src.Split())
	tr, err := NewTracker(m.Weights(), opts, DefaultCosts(2), 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	// Drift almost a full period at high speed: stale.
	if err := tr.Advance(0.099, 100, src); err != nil {
		t.Fatal(err)
	}
	stale := tr.Evaluate(test)
	if off := tr.StaleAngleDeg(100); math.Abs(off-9.9) > 1e-9 {
		t.Fatalf("stale angle %v, want 9.9", off)
	}
	// Crossing the period triggers recalibration at the new position.
	if err := tr.Advance(0.002, 100, src); err != nil {
		t.Fatal(err)
	}
	fresh := tr.Evaluate(test)
	if fresh < stale {
		t.Fatalf("recalibration should restore accuracy: stale %.3f, fresh %.3f", stale, fresh)
	}
	if fresh < 0.75 {
		t.Fatalf("post-recalibration accuracy %.3f too low", fresh)
	}
}
