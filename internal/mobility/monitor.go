package mobility

import (
	"sync"
	"sync/atomic"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/events"
)

// Monitor metrics: the last observed decision margin (the serving fleet's
// live health signal), total observations, and window resets after heals.
var (
	monMargin       = obs.NewGauge("mobility.margin")
	monObservations = obs.NewCounter("mobility.observations")
	monResets       = obs.NewCounter("mobility.resets")
)

// Monitor is the concurrency-safe serving-side counterpart of Feedback: any
// number of worker goroutines record the decision margin of every readout
// they produce, and a supervisor polls Degraded to decide when the air has
// gone bad enough to recalibrate or heal. Like Feedback, it watches the
// windowed mean of the normalized best-vs-second margin — margins collapse
// before accuracy does, so the signal needs no ground-truth labels.
type Monitor struct {
	mu        sync.Mutex
	threshold float64
	window    int
	recent    []float64 // ring buffer of the last `window` margins
	idx       int
	filled    bool
	observed  int64
	// degraded tracks the last Degraded verdict so the journal records the
	// RISING edge only — a degraded window polled every supervisor tick
	// must not flood the event ring.
	degraded atomic.Bool
}

// NewMonitor builds a monitor that flags degradation when the mean margin
// over the last window observations falls below threshold. window
// defaults to 32.
func NewMonitor(threshold float64, window int) *Monitor {
	if window < 1 {
		window = 32
	}
	return &Monitor{threshold: threshold, window: window, recent: make([]float64, window)}
}

// CalibrateMonitor measures the healthy deployment's mean margin over the
// probe inputs and returns a monitor whose threshold is frac of it
// (frac defaults to 0.5 outside (0, 1)). Call it against a fresh, unfaulted
// predictor before serving starts.
func CalibrateMonitor(p nn.LogitsPredictor, probes [][]complex128, frac float64, window int) *Monitor {
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	return NewMonitor(frac*MeanMargin(p, probes), window)
}

// Observe records one readout's margin. Safe for concurrent use.
func (m *Monitor) Observe(logits []float64) { m.ObserveMargin(Margin(logits)) }

// ObserveMargin records one already-computed margin. Safe for concurrent
// use.
func (m *Monitor) ObserveMargin(mg float64) {
	monMargin.Set(mg)
	monObservations.Inc()
	m.mu.Lock()
	m.recent[m.idx] = mg
	m.idx++
	if m.idx == m.window {
		m.idx = 0
		m.filled = true
	}
	m.observed++
	m.mu.Unlock()
}

// Mean returns the mean margin over the trailing window and whether the
// window has filled since the last Reset.
func (m *Monitor) Mean() (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.filled {
		return 0, false
	}
	var sum float64
	for _, v := range m.recent {
		sum += v
	}
	return sum / float64(m.window), true
}

// Degraded reports whether the trailing window has filled AND its mean
// margin sits below the threshold. The first degraded verdict after a
// healthy (or reset) stretch is journaled as a Degraded event.
func (m *Monitor) Degraded() bool {
	mean, ok := m.Mean()
	bad := ok && mean < m.threshold
	if bad && m.degraded.CompareAndSwap(false, true) {
		events.Default().Emit(events.Degraded, "margin window fell below threshold",
			events.Num("mean_margin", mean),
			events.Num("threshold", m.threshold))
	} else if !bad && ok {
		m.degraded.Store(false)
	}
	return bad
}

// Reset clears the window — call after a recalibration or heal, so the
// decision reflects only post-recovery readouts.
func (m *Monitor) Reset() {
	monResets.Inc()
	m.degraded.Store(false)
	m.mu.Lock()
	m.idx = 0
	m.filled = false
	for i := range m.recent {
		m.recent[i] = 0
	}
	m.mu.Unlock()
}

// Threshold returns the degradation threshold.
func (m *Monitor) Threshold() float64 { return m.threshold }

// Window returns the length of the trailing margin window. Together with
// Threshold it fully parameterizes the monitor, which is what the
// checkpoint layer persists: a restarted server rebuilds an equivalent
// (empty) monitor from the two numbers.
func (m *Monitor) Window() int { return m.window }

// Observed returns the total number of margins recorded over the monitor's
// lifetime (Reset does not clear it).
func (m *Monitor) Observed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observed
}
