package faults

import (
	"math"
	"testing"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/ota"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// randomWeights builds a small deployable weight matrix without training a
// model: magnitudes and phases drawn from one seeded stream, so every test
// works against the same surface-realizable targets.
func randomWeights(classes, u int, seed uint64) *cplx.Mat {
	src := rng.New(seed)
	w := cplx.NewMat(classes, u)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(src.Phase()) * complex(0.5+src.Float64(), 0)
	}
	return w
}

func deploy(t testing.TB, seed uint64) *ota.Deployment {
	t.Helper()
	src := rng.New(seed)
	d, err := ota.NewDeployment(randomWeights(4, 16, 7), ota.NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func inputs(u, n int, seed uint64) [][]complex128 {
	src := rng.New(seed)
	out := make([][]complex128, n)
	for i := range out {
		x := make([]complex128, u)
		for j := range x {
			x[j] = cplx.Expi(src.Phase())
		}
		out[i] = x
	}
	return out
}

func TestZeroRatesBitIdentical(t *testing.T) {
	// The tentpole invariant: an injector whose rates are all zero must hand
	// out sessions whose accumulators are bit-identical to plain sessions of
	// the same deployment under the same session seed.
	d := deploy(t, 11)
	in, err := New(d, Rates{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if in.Deployment() != d {
		t.Fatal("zero-rate injector replaced the deployment")
	}
	plain := d.NewSession(rng.New(99))
	faulted := in.Session(rng.New(99))
	for i, x := range inputs(d.InputLen(), 25, 5) {
		a, b := plain.Accumulate(x), faulted.Accumulate(x)
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("input %d class %d: zero-rate accumulator %v != plain %v", i, r, b[r], a[r])
			}
		}
	}
}

func TestZeroRatesBitIdenticalParallel(t *testing.T) {
	src := rng.New(13)
	opts := parallel.NewOptions(src.Split())
	plan, err := parallel.NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := parallel.NewDeployment(randomWeights(4, 16, 7), plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewParallel(d, Rates{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if in.Deployment() != d {
		t.Fatal("zero-rate parallel injector replaced the deployment")
	}
	plain := d.NewSession(rng.New(99))
	faulted := in.Session(rng.New(99))
	for i, x := range inputs(d.InputLen(), 25, 5) {
		a, b := plain.Logits(x), faulted.Logits(x)
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("input %d class %d: zero-rate logit %v != plain %v", i, r, b[r], a[r])
			}
		}
	}
}

func TestMixShape(t *testing.T) {
	if !Mix(0).Zero() {
		t.Fatal("Mix(0) is not the zero configuration")
	}
	if Mix(0.5).Zero() {
		t.Fatal("Mix(0.5) reports zero")
	}
	if !(Rates{}).Zero() {
		t.Fatal("zero value does not report Zero")
	}
	if (Rates{BurstProb: 0.1}).Zero() {
		t.Fatal("burst-only rates report Zero")
	}
	// Rates above 1 clamp rather than overflowing the stuck fraction.
	if got := Mix(3).StuckAtomFrac; got != 1 {
		t.Fatalf("Mix(3).StuckAtomFrac = %v, want 1", got)
	}
}

func TestStuckAtomsDeterministicAndDamaging(t *testing.T) {
	d := deploy(t, 11)
	mk := func() *Injector {
		in, err := New(d, Rates{StuckAtomFrac: 0.15}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	if len(a.StuckAtoms()) == 0 {
		t.Fatal("no atoms stuck at frac 0.15")
	}
	atoms := d.Options().Surface.Atoms()
	for m, st := range a.StuckAtoms() {
		if m < 0 || m >= atoms {
			t.Fatalf("stuck atom %d out of range", m)
		}
		if got, ok := b.StuckAtoms()[m]; !ok || got != st {
			t.Fatalf("stuck population not deterministic: atom %d", m)
		}
	}
	if a.ResidualError() <= 0 {
		t.Fatal("stuck atoms left zero residual error")
	}
	// And the damaged sessions replay deterministically too.
	sa, sb := a.Session(rng.New(99)), b.Session(rng.New(99))
	for _, x := range inputs(d.InputLen(), 10, 5) {
		va, vb := sa.Accumulate(x), sb.Accumulate(x)
		for r := range va {
			if va[r] != vb[r] {
				t.Fatal("identical-seed faulted sessions diverge")
			}
		}
	}
}

func TestHealReducesResidualError(t *testing.T) {
	d := deploy(t, 11)
	in, err := New(d, Rates{StuckAtomFrac: 0.2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	broken := in.ResidualError()
	healed, err := in.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if !in.Healed() {
		t.Fatal("Healed() false after Heal")
	}
	if in.Deployment() != healed {
		t.Fatal("Heal did not install the healed deployment")
	}
	after := in.ResidualError()
	if after >= broken {
		t.Fatalf("Heal did not reduce residual error: %v -> %v", broken, after)
	}
	// The healed schedule must still pin the stuck atoms: the hardware
	// cannot move them, so the solve may only steer the healthy ones.
	for r := range healed.Schedule {
		for i := range healed.Schedule[r] {
			for m, st := range in.StuckAtoms() {
				if healed.Schedule[r][i][m] != st {
					t.Fatalf("healed schedule moves stuck atom %d", m)
				}
			}
		}
	}
}

func TestHealNoopWithoutStuckAtoms(t *testing.T) {
	d := deploy(t, 11)
	in, err := New(d, Rates{BurstProb: 0.5}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	healed, err := in.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if healed != d {
		t.Fatal("Heal with no stuck atoms should return the original deployment")
	}
}

func TestDynamicFaultsPerturb(t *testing.T) {
	// Each dynamic process alone must move at least one accumulator relative
	// to a plain session with the same session seed.
	d := deploy(t, 11)
	cases := map[string]Rates{
		"erasure":  {ErasureProb: 0.5},
		"glitch":   {RowGlitchProb: 0.5},
		"burst":    {BurstProb: 1},
		"collapse": {KCollapseProb: 1},
	}
	xs := inputs(d.InputLen(), 5, 5)
	for name, rates := range cases {
		in, err := New(d, rates, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		plain := d.NewSession(rng.New(99))
		faulted := in.Session(rng.New(99))
		moved := false
		for _, x := range xs {
			a, b := plain.Accumulate(x), faulted.Accumulate(x)
			for r := range a {
				if a[r] != b[r] {
					moved = true
				}
				if math.IsNaN(real(b[r])) || math.IsNaN(imag(b[r])) {
					t.Fatalf("%s: NaN accumulator", name)
				}
			}
		}
		if !moved {
			t.Errorf("%s faults at high rate left every accumulator untouched", name)
		}
	}
}

func TestSessionsFleet(t *testing.T) {
	d := deploy(t, 11)
	in, err := New(d, Mix(0.2), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	ss := in.Sessions(3, rng.New(99))
	if len(ss) != 3 {
		t.Fatalf("Sessions(3) returned %d", len(ss))
	}
	x := inputs(d.InputLen(), 1, 5)[0]
	for _, s := range ss {
		if got := len(s.Accumulate(x)); got != d.Classes() {
			t.Fatalf("accumulator length %d, want %d", got, d.Classes())
		}
	}
}
