// Package faults is MetaAI's fault-injection and degraded-mode layer. The
// ota engine models real-world impairments statistically — Gaussian noise,
// phase jitter, Gamma-distributed sync error — but a production air service
// also meets DISCRETE faults: a PIN diode dies and latches its meta-atom in
// one phase state, a shift-register row misses a latch edge, a deep fade
// erases a symbol, a rogue transmitter opens an interference burst, a
// passing body collapses the channel's coherence. This package wraps the
// immutable ota/parallel deployments and their per-worker sessions with a
// deterministic, seed-driven repertoire of exactly those processes, plus
// the recovery action a self-healing service takes: a masked-atom re-solve
// that rebuilds the schedule around the diagnosed stuck atoms.
//
// Two invariants shape the design:
//
//   - Zero is free: an injector whose Rates are all zero yields sessions
//     whose accumulators are bit-identical to unfaulted ones. Fault
//     processes draw only from the injector's own random streams, never
//     from the session's, and the zero-rate hook perturbs nothing.
//   - Determinism: every fault — which atoms stick, where a burst lands —
//     is a pure function of the injector's seed and the call sequence, so
//     any degraded scenario replays exactly.
//
// Static faults (stuck atoms) are applied at the deployment level, by
// re-evaluating the realized responses the defective surface actually
// plays; dynamic faults ride a per-session ota.FaultHook. Heal re-solves
// the schedule with the stuck atoms pinned (mts.SolveTargetMasked) and
// returns a fresh deployment to swap in behind an atomic pointer — the
// serving stack loses no in-flight request.
package faults

import (
	"fmt"
	"math"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/obs/events"
	"repro/internal/obs/trace"
	"repro/internal/ota"
	"repro/internal/rng"
)

// Rates configures the fault processes. The zero value injects nothing and
// is bit-identical to the unfaulted path.
type Rates struct {
	// StuckAtomFrac is the fraction of meta-atoms latched in a random phase
	// state (static hardware defect, drawn once per injector).
	StuckAtomFrac float64
	// RowGlitchProb is the per-symbol probability that one shift-register
	// row misses its latch edge and keeps the previous symbol's states for
	// this reconfiguration.
	RowGlitchProb float64
	// ErasureProb is the per-symbol probability the data symbol is lost
	// entirely (deep per-symbol fade or a dropped chip).
	ErasureProb float64
	// BurstProb is the per-transmission probability that a burst
	// interference window opens somewhere in the symbol stream.
	BurstProb float64
	// BurstLenFrac is the burst window length as a fraction of U
	// (default 1/8).
	BurstLenFrac float64
	// BurstPower is the interference amplitude relative to the schedule's
	// RMS response (default 2: each burst sample carries 4× the mean
	// per-symbol signal power).
	BurstPower float64
	// KCollapseProb is the per-transmission probability that the channel's
	// coherence transiently collapses — the Rician K-factor drops toward
	// zero and the quasi-static response decorrelates symbol to symbol.
	KCollapseProb float64
	// KCollapseVar is the per-symbol multiplicative scatter variance during
	// a collapse (default 1).
	KCollapseVar float64
}

// Zero reports whether the configuration injects nothing.
func (r Rates) Zero() bool {
	return r.StuckAtomFrac == 0 && r.RowGlitchProb == 0 && r.ErasureProb == 0 &&
		r.BurstProb == 0 && r.KCollapseProb == 0
}

// withDefaults fills the shape parameters that scale fault severity.
func (r Rates) withDefaults() Rates {
	if r.BurstLenFrac <= 0 {
		r.BurstLenFrac = 1.0 / 8
	}
	if r.BurstPower <= 0 {
		r.BurstPower = 2
	}
	if r.KCollapseVar <= 0 {
		r.KCollapseVar = 1
	}
	return r
}

// Mix returns the canonical mixed fault load at severity rate ∈ [0, 1]:
// stuck atoms dominate (they are the fault the masked re-solve can heal),
// with proportional dynamic fault rates riding along — light enough that
// static damage stays the leading term until rate gets severe, which is
// what makes self-healing worth its cost in the abl-faults sweep. Mix(0)
// is the zero configuration. This is the mix behind metaai-serve's
// -fault-rate flag and the abl-faults experiment.
func Mix(rate float64) Rates {
	if rate <= 0 {
		return Rates{}
	}
	if rate > 1 {
		rate = 1
	}
	return Rates{
		StuckAtomFrac: rate,
		RowGlitchProb: rate / 32,
		ErasureProb:   rate / 32,
		BurstProb:     rate / 16,
		KCollapseProb: rate / 16,
	}
}

// Injector ties one deployment to one drawn fault population. The injector
// owns the stuck-atom diagnosis, derives per-session fault hooks, and
// implements the Heal recovery. Construction and Heal are single-threaded
// (run them from one supervisor goroutine); the sessions an injector hands
// out are as concurrent as plain ota sessions.
type Injector struct {
	rates  Rates
	src    *rng.Source
	orig   *ota.Deployment // the healthy deployment, kept as the heal target
	cur    *ota.Deployment // serving deployment: stuck-faulted, healed after Heal
	stuck  map[int]uint8
	layer  int // cascade layer the stuck atoms live on (0 = primary)
	sigRMS float64 // healthy RMS |H|, the burst-power reference
	healed bool
	// sabotage, when positive, makes PreviewHeal produce a deliberately
	// regressive candidate (see SabotageHeal) — the test hook for the
	// canary gate and the rollback supervisor.
	sabotage float64
}

// New draws the static fault population for deployment d at the given rates
// and returns the injector. src seeds every fault process; the deployment
// and its sessions never see it. The injector's serving deployment
// (Deployment) carries the stuck-atom damage; with StuckAtomFrac zero it is
// d itself.
func New(d *ota.Deployment, rates Rates, src *rng.Source) (*Injector, error) {
	return NewAtLayer(d, rates, 0, src)
}

// NewAtLayer is New with the static stuck-atom population drawn on cascade
// layer `layer` (0 is the primary surface; a K-layer deployment accepts
// layers 0..K-1). The dynamic fault repertoire is layer-agnostic — bursts,
// erasures, and collapses hit the composed air path — but stuck atoms and
// the masked re-solve that heals them target exactly one surface.
func NewAtLayer(d *ota.Deployment, rates Rates, layer int, src *rng.Source) (*Injector, error) {
	if layer < 0 || layer >= d.Layers() {
		return nil, fmt.Errorf("faults: layer %d of a %d-layer deployment", layer, d.Layers())
	}
	in := &Injector{rates: rates.withDefaults(), src: src, orig: d, cur: d, layer: layer}
	in.sigRMS = matRMS(d.Realized)
	surface := d.LayerSurface(layer)
	in.stuck = drawStuck(surface, rates.StuckAtomFrac, src)
	if len(in.stuck) > 0 {
		realized, err := d.RealizedWithLayerStuck(layer, in.stuck)
		if err != nil {
			return nil, err
		}
		faulted, err := d.WithResponses(realized)
		if err != nil {
			return nil, err
		}
		in.cur = faulted
	}
	faultInjectors.Inc()
	faultStuck.Set(float64(len(in.stuck)))
	faultResidual.Set(in.ResidualError())
	if !rates.Zero() {
		events.Default().Emit(events.FaultInjected, "fault population drawn",
			events.Num("stuck_atoms", float64(len(in.stuck))),
			events.Num("stuck_frac", rates.StuckAtomFrac),
			events.Num("layer", float64(layer)),
			events.Num("residual", in.ResidualError()))
	}
	return in, nil
}

// Layer returns the cascade layer the injector's stuck-atom population
// targets (0 for the primary surface).
func (in *Injector) Layer() int { return in.layer }

// drawStuck picks ⌊frac·M⌋ distinct atoms and latches each in a uniformly
// random phase state.
func drawStuck(s *mts.Surface, frac float64, src *rng.Source) map[int]uint8 {
	n := int(frac * float64(s.Atoms()))
	if frac > 0 && n == 0 {
		n = 1
	}
	stuck := make(map[int]uint8, n)
	states := len(s.States())
	for len(stuck) < n {
		stuck[src.IntN(s.Atoms())] = uint8(src.IntN(states))
	}
	return stuck
}

// overrideStuck returns cfg with the stuck atoms forced to their latched
// states (a copy; the schedule itself is immutable).
func overrideStuck(cfg mts.Config, stuck map[int]uint8) mts.Config {
	out := cfg.Clone()
	for m, st := range stuck {
		out[m] = st
	}
	return out
}

// Rates returns the injector's fault configuration.
func (in *Injector) Rates() Rates { return in.rates }

// Deployment returns the current serving deployment: stuck-atom-faulted at
// construction, re-solved after Heal. Dynamic faults are NOT in it — they
// ride the session hooks.
func (in *Injector) Deployment() *ota.Deployment { return in.cur }

// StuckAtoms returns the injector's stuck-atom diagnosis (atom index →
// latched state). The map is shared; callers must not modify it.
func (in *Injector) StuckAtoms() map[int]uint8 { return in.stuck }

// Healed reports whether Heal has run.
func (in *Injector) Healed() bool { return in.healed }

// Session derives one faulted per-worker session over the current serving
// deployment: src becomes the session's own random stream (exactly as
// ota.Deployment.NewSession) and the dynamic fault processes draw from an
// independent split of the injector's stream.
func (in *Injector) Session(src *rng.Source) *ota.Session {
	return in.SessionFor(in.cur, src)
}

// SessionFor is Session over an explicit deployment — used when the caller
// has already published a swapped deployment and needs hooks wired to it.
func (in *Injector) SessionFor(d *ota.Deployment, src *rng.Source) *ota.Session {
	return d.NewSession(src).SetFaultHook(in.newHook(d))
}

// Sessions derives n independent faulted sessions via deterministic seeded
// splits of src, mirroring ota.Deployment.Sessions.
func (in *Injector) Sessions(n int, src *rng.Source) []*ota.Session {
	if n < 1 {
		n = 1
	}
	out := make([]*ota.Session, n)
	for i := range out {
		out[i] = in.Session(src.Split())
	}
	return out
}

// newHook builds one per-session dynamic-fault hook bound to deployment d.
func (in *Injector) newHook(d *ota.Deployment) *hook {
	return &hook{
		rates:    in.rates,
		src:      in.src.Split(),
		u:        d.InputLen(),
		burstVar: in.rates.BurstPower * in.rates.BurstPower * in.sigRMS * in.sigRMS,
		glitch:   otaGlitch(d),
	}
}

// PreviewHeal computes the heal candidate WITHOUT publishing it: the
// schedule re-solved around the diagnosed stuck atoms (each entry's target
// is the solver-frame response of the original healthy schedule, with the
// stuck atoms pinned at their latched states so the healthy atoms steer to
// compensate). The injector's serving deployment, healed flag, and metrics
// are untouched — this is the canary-validation hook: evaluate the returned
// deployment on a held-out probe batch, then either CommitHeal it or drop
// it. With no stuck atoms and no sabotage armed, the preview is the current
// serving deployment itself.
func (in *Injector) PreviewHeal() (*ota.Deployment, error) {
	return in.PreviewHealSpan(nil)
}

// PreviewHealSpan is PreviewHeal with the masked re-solve traced under
// parent (the supervisor's heal span). A nil parent records nothing; the
// candidate is bit-identical either way, since spans never touch the
// injector's random streams.
func (in *Injector) PreviewHealSpan(parent *trace.Span) (*ota.Deployment, error) {
	if len(in.stuck) == 0 && in.sabotage == 0 {
		return in.cur, nil
	}
	hsp := parent.Child("faults.heal_preview")
	hsp.SetNum("stuck_atoms", float64(len(in.stuck)))
	hsp.SetNum("layer", float64(in.layer))
	hsp.SetNum("sabotage", in.sabotage)
	defer hsp.End()
	// The re-solve targets exactly the faulted layer: its surface, its
	// solver-frame path phases, its schedule. Every other cascade layer is
	// untouched (WithLayerSchedule recomposes the end-to-end responses).
	s := in.orig.LayerSurface(in.layer)
	origSched := in.orig.LayerSchedule(in.layer)
	sched := make([][]mts.Config, in.orig.Classes())
	if len(in.stuck) > 0 {
		ideal, err := mts.NewSurface(s.Rows, s.Cols, s.Bits, s.FreqGHz, nil)
		if err != nil {
			return nil, err
		}
		estPP := in.orig.EstLayerPathPhases(in.layer)
		ssp := mts.StartSolveSpan(hsp, "masked", in.orig.Classes()*in.orig.InputLen())
		for r := range sched {
			sched[r] = make([]mts.Config, in.orig.InputLen())
			for i := range sched[r] {
				target := ideal.Response(origSched[r][i], estPP)
				cfg, _ := ideal.SolveTargetMasked(target, estPP, in.stuck)
				sched[r][i] = cfg
			}
		}
		ssp.End()
	} else {
		for r := range sched {
			sched[r] = make([]mts.Config, in.orig.InputLen())
			for i := range sched[r] {
				sched[r][i] = origSched[r][i].Clone()
			}
		}
	}
	if in.sabotage > 0 {
		// Regression-test mode: scramble a severity-fraction of the solved
		// entries into uniformly random configurations. The candidate looks
		// like a heal but serves garbage — exactly what the canary gate and
		// the rollback supervisor exist to catch.
		states := len(s.States())
		ssrc := in.src.Split()
		for r := range sched {
			for i := range sched[r] {
				if ssrc.Float64() < in.sabotage {
					cfg := sched[r][i]
					for a := range cfg {
						cfg[a] = uint8(ssrc.IntN(states))
					}
				}
			}
		}
	}
	if in.layer == 0 {
		return in.orig.WithSchedule(sched)
	}
	return in.orig.WithLayerSchedule(in.layer, sched)
}

// CommitHeal publishes a heal candidate previously obtained from
// PreviewHeal: it becomes the injector's serving deployment and the heal
// metrics advance. Like construction and Heal, commit is single-threaded —
// call it from the supervisor goroutine that owns the injector.
func (in *Injector) CommitHeal(d *ota.Deployment) {
	in.healed = true
	in.cur = d
	faultHeals.Inc()
	faultResidual.Set(in.ResidualError())
}

// Heal is PreviewHeal followed by CommitHeal — the ungated recovery path.
// The healed deployment (also returned) becomes the injector's serving
// deployment; swap it behind an atomic pointer and derive fresh sessions
// via Session/Sessions. Dynamic faults — glitches, erasures, bursts,
// collapses — keep firing: healing restores the static weight structure
// only.
func (in *Injector) Heal() (*ota.Deployment, error) {
	healed, err := in.PreviewHeal()
	if err != nil {
		return nil, err
	}
	in.CommitHeal(healed)
	return healed, nil
}

// SabotageHeal arms a deliberately regressive heal: every subsequent
// PreviewHeal scrambles the given fraction of schedule entries (clamped to
// [0, 1]) into random configurations before returning the candidate. This
// is the fault-injection hook behind the canary/rollback acceptance tests;
// severity 0 disarms it.
func (in *Injector) SabotageHeal(severity float64) {
	in.sabotage = math.Max(0, math.Min(1, severity))
}

// ResidualError quantifies the static damage still in the serving
// deployment: the mean relative distance between its realized responses and
// the healthy ones, normalized by the healthy RMS. Zero for an undamaged
// injector; Heal drives it back down without touching the hardware.
func (in *Injector) ResidualError() float64 {
	if in.cur == in.orig {
		return 0
	}
	var sum float64
	for i, h := range in.cur.Realized.Data {
		d := h - in.orig.Realized.Data[i]
		sum += real(d)*real(d) + imag(d)*imag(d)
	}
	n := float64(len(in.cur.Realized.Data))
	if in.sigRMS == 0 {
		return 0
	}
	return math.Sqrt(sum/n) / in.sigRMS
}

// otaGlitch returns the row-glitch response-delta evaluator for a
// sequential deployment: when a shift-register row misses its latch at
// (r, i), that row's atoms keep symbol i−1's states (wrapping, as the
// schedule replays cyclically), and the delta between the glitched and the
// nominal response is added to the in-flight symbol term. The delta is
// evaluated against the scheduled configurations — a deliberate
// approximation under sync offset and exact-jitter replay, where the
// in-flight response already blends neighbors.
func otaGlitch(d *ota.Deployment) func(r, i int, src *rng.Source) complex128 {
	opts := d.Options()
	surface := opts.Surface
	pp := surface.PathPhases(opts.Geometry)
	u := d.InputLen()
	return func(r, i int, src *rng.Source) complex128 {
		prev := d.Schedule[r][(i-1+u)%u]
		cfg := d.Schedule[r][i].Clone()
		row := src.IntN(surface.Rows)
		for c := 0; c < surface.Cols; c++ {
			a := row*surface.Cols + c
			cfg[a] = prev[a]
		}
		if d.Layers() > 1 {
			// The glitch hits the primary; the composed response scales by
			// the glitched/nominal primary ratio (the relay factors cancel).
			nom := surface.Response(d.Schedule[r][i], pp)
			if nom == 0 {
				return 0
			}
			return d.Realized.At(r, i) * (surface.Response(cfg, pp)/nom - 1)
		}
		return surface.Response(cfg, pp) - d.Realized.At(r, i)
	}
}

func matRMS(m *cplx.Mat) float64 {
	var sum float64
	for _, h := range m.Data {
		sum += real(h)*real(h) + imag(h)*imag(h)
	}
	return math.Sqrt(sum / float64(len(m.Data)))
}
