package faults

import (
	"testing"

	"repro/internal/mobility"
	"repro/internal/rng"
)

// TestPreviewHealDoesNotPublish pins the canary contract: PreviewHeal
// returns the candidate while the injector keeps serving the faulted
// deployment, and only CommitHeal moves the pointer.
func TestPreviewHealDoesNotPublish(t *testing.T) {
	d := deploy(t, 11)
	in, err := New(d, Rates{StuckAtomFrac: 0.1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	faulted := in.Deployment()
	before := in.ResidualError()

	candidate, err := in.PreviewHeal()
	if err != nil {
		t.Fatal(err)
	}
	if candidate == faulted {
		t.Fatal("preview returned the faulted deployment itself")
	}
	if in.Deployment() != faulted {
		t.Fatal("preview moved the serving deployment")
	}
	if in.Healed() {
		t.Fatal("preview set the healed flag")
	}
	if got := in.ResidualError(); got != before {
		t.Fatalf("preview changed residual error %v → %v", before, got)
	}

	in.CommitHeal(candidate)
	if in.Deployment() != candidate {
		t.Fatal("commit did not publish the candidate")
	}
	if !in.Healed() {
		t.Fatal("commit did not set the healed flag")
	}
	if got := in.ResidualError(); got >= before {
		t.Fatalf("committed heal did not reduce residual error: %v → %v", before, got)
	}
}

// TestHealMatchesPreviewCommit verifies the refactor is seam-free: Heal on
// one injector equals PreviewHeal+CommitHeal on an identically seeded twin,
// bit for bit.
func TestHealMatchesPreviewCommit(t *testing.T) {
	mk := func() *Injector {
		in, err := New(deploy(t, 13), Rates{StuckAtomFrac: 0.08}, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	ha, err := a.Heal()
	if err != nil {
		t.Fatal(err)
	}
	cand, err := b.PreviewHeal()
	if err != nil {
		t.Fatal(err)
	}
	b.CommitHeal(cand)
	if len(ha.Realized.Data) != len(cand.Realized.Data) {
		t.Fatal("healed response dimensions differ")
	}
	for i := range ha.Realized.Data {
		if ha.Realized.Data[i] != cand.Realized.Data[i] {
			t.Fatalf("response %d: Heal %v vs Preview+Commit %v", i, ha.Realized.Data[i], cand.Realized.Data[i])
		}
	}
}

// TestSabotageHealRegresses drives the acceptance scenario's fault: a
// sabotaged heal candidate must be measurably WORSE than the clean one — on
// residual error and on golden-output agreement over held-out probes — so a
// canary gate that cannot tell them apart is broken.
func TestSabotageHealRegresses(t *testing.T) {
	d := deploy(t, 17)
	probes := inputs(d.InputLen(), 24, 91)

	clean, err := New(d, Rates{StuckAtomFrac: 0.05}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	cleanHeal, err := clean.PreviewHeal()
	if err != nil {
		t.Fatal(err)
	}

	bad, err := New(d, Rates{StuckAtomFrac: 0.05}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	bad.SabotageHeal(0.9)
	badHeal, err := bad.PreviewHeal()
	if err != nil {
		t.Fatal(err)
	}

	// The canary metric: agreement with the healthy deployment's own
	// predictions on the held-out probes.
	cleanAgree := mobility.Agreement(cleanHeal.SessionFromSeed(3), d.SessionFromSeed(3), probes)
	badAgree := mobility.Agreement(badHeal.SessionFromSeed(3), d.SessionFromSeed(3), probes)
	if badAgree >= cleanAgree {
		t.Fatalf("sabotaged heal agreement %v not below clean heal agreement %v", badAgree, cleanAgree)
	}
	if cleanAgree < 0.7 {
		t.Fatalf("clean heal agreement %v too low to gate on", cleanAgree)
	}

	clean.CommitHeal(cleanHeal)
	bad.CommitHeal(badHeal)
	if bad.ResidualError() <= clean.ResidualError() {
		t.Fatalf("sabotaged residual %v not above clean residual %v", bad.ResidualError(), clean.ResidualError())
	}

	// Disarming restores clean previews.
	bad.SabotageHeal(0)
	again, err := bad.PreviewHeal()
	if err != nil {
		t.Fatal(err)
	}
	for i := range again.Realized.Data {
		if again.Realized.Data[i] != cleanHeal.Realized.Data[i] {
			t.Fatal("disarmed preview still differs from the clean heal")
		}
	}
}
