package faults

import "repro/internal/obs"

// Fault-layer metrics: the drawn static damage, each dynamic fault
// process's firing count, and the heal history. Counters are bumped only
// when a fault actually fires, so the zero-rate path records nothing and
// stays bit-identical (the abl-faults identity gate runs with these live).
var (
	faultInjectors = obs.NewCounter("faults.injectors")
	faultStuck     = obs.NewGauge("faults.stuck.atoms")
	faultResidual  = obs.NewGauge("faults.residual.error")
	faultGlitches  = obs.NewCounter("faults.glitches.injected")
	faultErasures  = obs.NewCounter("faults.erasures.injected")
	faultBursts    = obs.NewCounter("faults.bursts.injected")
	faultCollapses = obs.NewCounter("faults.collapses.injected")
	faultHeals     = obs.NewCounter("faults.heals")
)
