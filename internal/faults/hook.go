package faults

import (
	"repro/internal/rng"
)

// hook implements ota.FaultHook (and, via the type alias, parallel's): the
// per-session dynamic fault processes — row glitches, symbol erasures,
// burst interference windows, and transient coherence collapse. One hook
// serves exactly one session and draws every decision from its own split of
// the injector's stream, so the session's randomness — and with all rates
// zero, its accumulators — are untouched.
type hook struct {
	rates    Rates
	src      *rng.Source
	u        int
	burstVar float64 // per-sample interference variance when a burst fires
	glitch   func(r, i int, src *rng.Source) complex128

	// Per-transmission state, drawn in BeginTransmission.
	kVar         float64
	bStart, bEnd int
}

// BeginTransmission draws this replay's burst window and coherence state.
func (h *hook) BeginTransmission(int) {
	h.kVar = 0
	if h.rates.KCollapseProb > 0 && h.src.Bernoulli(h.rates.KCollapseProb) {
		h.kVar = h.rates.KCollapseVar
		faultCollapses.Inc()
	}
	h.bStart, h.bEnd = -1, -1
	if h.rates.BurstProb > 0 && h.src.Bernoulli(h.rates.BurstProb) {
		n := int(h.rates.BurstLenFrac * float64(h.u))
		if n < 1 {
			n = 1
		}
		h.bStart = h.src.IntN(h.u)
		h.bEnd = h.bStart + n
		faultBursts.Inc()
	}
}

// Symbol applies the dynamic faults to one per-symbol term.
func (h *hook) Symbol(r, i int, hv, x complex128) (complex128, complex128, complex128) {
	if h.kVar > 0 {
		// Coherence collapse: the dominant quasi-static component gives way
		// to per-symbol scatter — multiplicative complex fading on the MTS
		// path, which breaks the accumulation's coherent gain.
		hv *= 1 + h.src.ComplexNormal(h.kVar)
	}
	if h.rates.RowGlitchProb > 0 && h.src.Bernoulli(h.rates.RowGlitchProb) {
		hv += h.glitch(r, i, h.src)
		faultGlitches.Inc()
	}
	if h.rates.ErasureProb > 0 && h.src.Bernoulli(h.rates.ErasureProb) {
		x = 0
		faultErasures.Inc()
	}
	var extra complex128
	if i >= h.bStart && i < h.bEnd {
		extra = h.src.ComplexNormal(h.burstVar)
	}
	return hv, x, extra
}
