package faults

import (
	"bytes"
	"testing"

	"repro/internal/mts"
	"repro/internal/ota"
	"repro/internal/rng"
)

func cascadeDeploy(t testing.TB, seed uint64) *ota.Deployment {
	t.Helper()
	src := rng.New(seed)
	opts := ota.NewOptions(src.Split())
	stack := make([]ota.CascadeLayer, 2)
	for k := range stack {
		s, err := mts.NewSurface(8, 8, 2, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		stack[k] = ota.CascadeLayer{
			Surface:  s,
			Geometry: mts.Geometry{TxDistM: 1.5, TxAngleDeg: 20, RxDistM: 2, RxAngleDeg: 30 + 5*float64(k)},
		}
	}
	opts.Stack = stack
	d, err := ota.NewDeployment(randomWeights(4, 16, 7), opts, src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewAtLayerValidation(t *testing.T) {
	single := deploy(t, 31)
	if _, err := NewAtLayer(single, Rates{}, 1, rng.New(1)); err == nil {
		t.Error("layer 1 on a single-surface deployment must error")
	}
	cas := cascadeDeploy(t, 32)
	if _, err := NewAtLayer(cas, Rates{}, -1, rng.New(1)); err == nil {
		t.Error("negative layer must error")
	}
	if _, err := NewAtLayer(cas, Rates{}, 3, rng.New(1)); err == nil {
		t.Error("layer 3 on a 3-layer deployment must error")
	}
	in, err := NewAtLayer(cas, Rates{}, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if in.Layer() != 2 {
		t.Fatalf("Layer() = %d, want 2", in.Layer())
	}
}

func TestLayerFaultHealTargetsFaultedLayer(t *testing.T) {
	d := cascadeDeploy(t, 33)
	in, err := NewAtLayer(d, Rates{StuckAtomFrac: 0.15}, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.StuckAtoms()) == 0 {
		t.Fatal("no stuck atoms drawn")
	}
	damaged := in.ResidualError()
	if damaged <= 0 {
		t.Fatal("stuck atoms on layer 1 caused no damage")
	}
	healed, err := in.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if got := in.ResidualError(); got >= damaged {
		t.Fatalf("heal did not reduce residual: %.4f -> %.4f", damaged, got)
	}
	// The re-solve must touch ONLY the faulted layer: the primary schedule
	// and the other relay layer stay byte-identical.
	for r := range healed.Schedule {
		for i := range healed.Schedule[r] {
			if !bytes.Equal(healed.Schedule[r][i], d.Schedule[r][i]) {
				t.Fatalf("layer-1 heal rewrote the primary schedule at (%d,%d)", r, i)
			}
			if !bytes.Equal(healed.LayerSchedule(2)[r][i], d.LayerSchedule(2)[r][i]) {
				t.Fatalf("layer-1 heal rewrote layer 2's schedule at (%d,%d)", r, i)
			}
		}
	}
	changed := false
	for r := range healed.Schedule {
		for i := range healed.Schedule[r] {
			if !bytes.Equal(healed.LayerSchedule(1)[r][i], d.LayerSchedule(1)[r][i]) {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("layer-1 heal left layer 1's schedule untouched")
	}
}

func TestPrimaryFaultHealOnCascade(t *testing.T) {
	d := cascadeDeploy(t, 34)
	in, err := New(d, Rates{StuckAtomFrac: 0.1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if in.Layer() != 0 {
		t.Fatalf("New must target the primary layer, got %d", in.Layer())
	}
	damaged := in.ResidualError()
	if damaged <= 0 {
		t.Fatal("primary stuck atoms caused no damage")
	}
	healed, err := in.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if got := in.ResidualError(); got >= damaged {
		t.Fatalf("heal did not reduce residual: %.4f -> %.4f", damaged, got)
	}
	for k := 1; k <= 2; k++ {
		for r := range healed.Schedule {
			for i := range healed.Schedule[r] {
				if !bytes.Equal(healed.LayerSchedule(k)[r][i], d.LayerSchedule(k)[r][i]) {
					t.Fatalf("primary heal rewrote relay layer %d at (%d,%d)", k, r, i)
				}
			}
		}
	}
}
