package faults

import (
	"repro/internal/cplx"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// ParInjector is Injector for the parallel (subcarrier/antenna) schemes:
// the same deterministic fault repertoire over a parallel.Deployment. The
// parallel layer has no masked re-solve yet — the joint multi-target solver
// would need per-channel masking — so ParInjector injects but does not
// Heal; degraded parallel serving falls back to the sequential scheme.
type ParInjector struct {
	rates  Rates
	src    *rng.Source
	orig   *parallel.Deployment
	cur    *parallel.Deployment
	stuck  map[int]uint8
	sigRMS float64
}

// NewParallel draws the static fault population for a parallel deployment,
// mirroring New.
func NewParallel(d *parallel.Deployment, rates Rates, src *rng.Source) (*ParInjector, error) {
	in := &ParInjector{rates: rates.withDefaults(), src: src, orig: d, cur: d}
	in.sigRMS = matRMS(d.Realized)
	surface := d.Options().Surface
	in.stuck = drawStuck(surface, rates.StuckAtomFrac, src)
	if len(in.stuck) > 0 {
		faulted, err := d.WithResponses(parStuckResponses(d, in.stuck))
		if err != nil {
			return nil, err
		}
		in.cur = faulted
	}
	return in, nil
}

// parStuckResponses re-evaluates what the damaged surface plays for every
// (output, symbol): group g's shared configuration with the stuck atoms
// forced, seen through output r's own path phases.
func parStuckResponses(d *parallel.Deployment, stuck map[int]uint8) *cplx.Mat {
	surface := d.Options().Surface
	plan := d.Plan()
	out := cplx.NewMat(d.Classes(), d.InputLen())
	for g := 0; g < d.Transmissions(); g++ {
		group := d.Group(g)
		for i := 0; i < d.InputLen(); i++ {
			cfg := overrideStuck(d.Configs[g][i], stuck)
			for ci, r := range group {
				h := surface.Response(cfg, plan.Paths[ci])
				if d.Layers() > 1 {
					// Cascade realized responses include the static relay
					// gain; the damaged primary keeps that factor.
					h = d.RelayGain() * h
				}
				out.Set(r, i, h)
			}
		}
	}
	return out
}

// Rates returns the injector's fault configuration.
func (in *ParInjector) Rates() Rates { return in.rates }

// Deployment returns the current (stuck-atom-faulted) serving deployment.
func (in *ParInjector) Deployment() *parallel.Deployment { return in.cur }

// StuckAtoms returns the stuck-atom diagnosis. The map is shared; callers
// must not modify it.
func (in *ParInjector) StuckAtoms() map[int]uint8 { return in.stuck }

// Session derives one faulted per-worker session; see Injector.Session.
func (in *ParInjector) Session(src *rng.Source) *parallel.Session {
	return in.cur.NewSession(src).SetFaultHook(in.newHook(in.cur))
}

// Sessions derives n independent faulted sessions via seeded splits of src.
func (in *ParInjector) Sessions(n int, src *rng.Source) []*parallel.Session {
	if n < 1 {
		n = 1
	}
	out := make([]*parallel.Session, n)
	for i := range out {
		out[i] = in.Session(src.Split())
	}
	return out
}

func (in *ParInjector) newHook(d *parallel.Deployment) *hook {
	return &hook{
		rates:    in.rates,
		src:      in.src.Split(),
		u:        d.InputLen(),
		burstVar: in.rates.BurstPower * in.rates.BurstPower * in.sigRMS * in.sigRMS,
		glitch:   parGlitch(d),
	}
}

// parGlitch is otaGlitch for the parallel engine: the glitched row keeps the
// previous symbol's states of the GROUP's shared configuration, and the
// delta is evaluated through the faulted output's own path phases. The
// group is recovered from the output index by the deployment's contiguous
// partitioning.
func parGlitch(d *parallel.Deployment) func(r, i int, src *rng.Source) complex128 {
	surface := d.Options().Surface
	plan := d.Plan()
	c := plan.Channels()
	u := d.InputLen()
	return func(r, i int, src *rng.Source) complex128 {
		g, ci := r/c, r%c
		prev := d.Configs[g][(i-1+u)%u]
		cfg := d.Configs[g][i].Clone()
		row := src.IntN(surface.Rows)
		for col := 0; col < surface.Cols; col++ {
			a := row*surface.Cols + col
			cfg[a] = prev[a]
		}
		if d.Layers() > 1 {
			nom := surface.Response(d.Configs[g][i], plan.Paths[ci])
			if nom == 0 {
				return 0
			}
			return d.Realized.At(r, i) * (surface.Response(cfg, plan.Paths[ci])/nom - 1)
		}
		return surface.Response(cfg, plan.Paths[ci]) - d.Realized.At(r, i)
	}
}
