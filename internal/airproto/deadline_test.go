package airproto

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDeadlineRounding(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want uint8
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 1}, // any positive budget survives encoding
		{time.Millisecond, 1},
		{DeadlineUnit, 1},
		{DeadlineUnit + time.Nanosecond, 2},
		{250 * time.Millisecond, 25},
		{MaxDeadline, 255},
		{10 * time.Second, 255}, // clamps, never wraps
	}
	for _, c := range cases {
		if got := EncodeDeadline(c.in); got != c.want {
			t.Errorf("EncodeDeadline(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestDeadlineEncodeDecodeProperty: for any budget, the decoded wire value
// is >= the original (rounded up, never silently shortened), within one
// DeadlineUnit of it below the clamp, and idempotent through a second
// encode/decode cycle.
func TestDeadlineEncodeDecodeProperty(t *testing.T) {
	err := quick.Check(func(ms uint32) bool {
		d := time.Duration(ms%3000) * time.Millisecond
		code := EncodeDeadline(d)
		dec := DecodeDeadline(code)
		if d == 0 {
			return code == 0 && dec == 0
		}
		if d <= MaxDeadline {
			if dec < d || dec-d >= DeadlineUnit {
				return false
			}
		} else if dec != MaxDeadline {
			return false
		}
		// Re-encoding a decoded budget is a fixed point.
		return EncodeDeadline(dec) == code
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFrameDeadlineKindGating(t *testing.T) {
	f := &Frame{Kind: KindData, ID: 1}
	f.SetDeadline(120 * time.Millisecond)
	if f.Code != 12 || f.Deadline() != 120*time.Millisecond {
		t.Fatalf("data frame deadline: code=%d deadline=%v", f.Code, f.Deadline())
	}
	// On non-data kinds the Code byte is a status/mode, never a budget:
	// SetDeadline must not clobber it and Deadline must read 0.
	n := Nack(1, StatusDegraded, 0)
	n.SetDeadline(time.Second)
	if n.Code != StatusDegraded || n.Deadline() != 0 {
		t.Fatalf("NACK code clobbered by SetDeadline: %+v", n)
	}
}

func TestExpiredNackRoundTrip(t *testing.T) {
	b, err := ExpiredNack(77, 35*time.Millisecond).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNack() || got.Code != StatusExpired || got.ID != 77 || got.Label != 35 {
		t.Fatalf("expired NACK lost fields: %+v", got)
	}
	if n := ExpiredNack(1, -time.Second); n.Label != 0 {
		t.Fatalf("negative lateness must clamp to 0, got %d", n.Label)
	}
}

func TestRetryAfterRoundTrip(t *testing.T) {
	b, err := RetryAfterNack(88, 50*time.Millisecond).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNack() || got.Code != StatusRetryAfter || got.ID != 88 {
		t.Fatalf("retry-after NACK lost fields: %+v", got)
	}
	if hint := got.RetryAfterHint(); hint != 50*time.Millisecond {
		t.Fatalf("hint = %v, want 50ms", hint)
	}
	// Sub-millisecond hints round up rather than vanish.
	if n := RetryAfterNack(2, 100*time.Microsecond); n.Label != 1 {
		t.Fatalf("sub-ms hint truncated: label=%d", n.Label)
	}
	// Only StatusRetryAfter NACKs carry hints.
	if (&Frame{Kind: KindNack, Code: StatusDegraded, Label: 99}).RetryAfterHint() != 0 {
		t.Fatal("non-retry-after frame reported a hint")
	}
	if (&Frame{Kind: KindData, Code: StatusRetryAfter, Label: 99}).RetryAfterHint() != 0 {
		t.Fatal("data frame reported a retry hint")
	}
}

// TestNewStatusCodesWireProperty round-trips StatusExpired/StatusRetryAfter
// NACKs with arbitrary IDs and details through the wire format, alongside
// deadline-stamped data frames.
func TestNewStatusCodesWireProperty(t *testing.T) {
	err := quick.Check(func(id uint32, detail int32, budget uint8) bool {
		for _, code := range []uint8{StatusExpired, StatusRetryAfter} {
			b, err := Nack(id, code, detail).Marshal()
			if err != nil {
				return false
			}
			got, err := Unmarshal(b)
			if err != nil || !got.IsNack() || got.Code != code || got.ID != id || got.Label != detail {
				return false
			}
		}
		f := &Frame{Kind: KindData, Code: budget, ID: id, Label: -1}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		return err == nil && got.Deadline() == DecodeDeadline(budget)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
