package airproto

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Fleet control frames. The router/coordinator tier (internal/fleet) speaks
// three more exchanges over the same dumb-datagram protocol the data path
// uses, so a replica needs exactly one socket for serving, liveness, and
// replication:
//
//   - KindHeartbeat: the router pings each replica; the reply's Data carries
//     the HBVector health gauges (fleet epoch, local epoch, queue depth, and
//     the shed/NACK counters the router's failure detector folds into its
//     suspicion score). An empty request, a small reply, no side effects.
//
//   - KindJoin: a replica announces itself to the router from its serving
//     socket — the datagram's source address IS the address clients get
//     routed to. Data[0] carries (fleet epoch seq, local journal seq); the
//     router's reply echoes the frame with Data[0] = (router's current
//     epoch seq, 0), so a stale replica learns immediately that a catch-up
//     push is coming.
//
//   - KindEpochPush / KindEpochAck: epoch replication. The payload is a
//     sealed internal/checkpoint epoch — CRC envelope and all, so the wire
//     format IS the journal format and a replica can journal what it
//     applied byte-for-byte. Sealed epochs outgrow one datagram, so the
//     push is chunked: every chunk frame carries (index, total) in Label,
//     (chunk length, total length) in Data[0], (byte offset, coordinator
//     incarnation nonce) in Data[1], and a CRC32 digest over headers and
//     bytes in Data[2], with the chunk bytes packed two per complex sample
//     behind it (PackBytes — small integers survive the float32 wire
//     exactly). The replica acks every chunk; the
//     ack for the final, completing chunk carries the apply verdict, the
//     measured canary prediction agreement, and echoes the nonce.
//
// Chunks are idempotent and may arrive duplicated or out of order; the
// (transfer ID, nonce) pair keys reassembly. The nonce exists because
// transfer IDs are a coordinator-local counter that restarts from 1 with
// the coordinator process: a replica that caches the final verdict of
// transfer 1 from one coordinator incarnation must not answer a NEW
// incarnation's transfer 1 — different bytes — from that cache. Each
// coordinator incarnation draws a random nonce at startup and stamps it on
// everything it sends; replicas report the nonce of their applied epoch
// back (heartbeats, joins), so fleet convergence is decided on the
// (nonce, seq) pair, never on a counter that two incarnations both start
// at 1.

// Push modes carried in a KindEpochPush frame's Code field.
const (
	// PushCommit: apply unconditionally after CRC + semantic validation.
	PushCommit uint8 = 0
	// PushCanary: measure prediction agreement against the current serving
	// epoch on the held-out probes, apply, and report the agreement — the
	// coordinator gates the fleet-wide fan-out on it.
	PushCanary uint8 = 1
	// PushRollback: apply an OLDER epoch; the replica journals it with
	// reason "fleet-rollback" instead of "replicate".
	PushRollback uint8 = 2
)

// Ack verdicts carried in a KindEpochAck frame's Code field.
const (
	// AckChunk acknowledges receipt of one non-completing chunk.
	AckChunk uint8 = 0
	// AckApplied: the transfer completed, decoded, validated, and is now
	// the replica's serving epoch.
	AckApplied uint8 = 1
	// AckRejected: the transfer completed but the replica refused it —
	// corrupt seal, failed validation, or a deployment that would not
	// build. The epoch must not be trusted anywhere.
	AckRejected uint8 = 2
)

// HBVector indexes the health gauges a KindHeartbeat reply carries in Data
// (real parts). HBFleetSeq is the coordinator-assigned sequence of the last
// replicated epoch the replica applied (0 until a push lands) — the fleet's
// convergence variable; HBEpochSeq is the replica's own journal sequence.
const (
	HBFleetSeq = iota
	HBEpochSeq
	HBQueueDepth
	HBServed
	HBShed
	HBNacked
	HBHeals
	// HBFleetNonce is the coordinator incarnation nonce stamped on the last
	// replicated epoch the replica applied (0 until a push lands). Paired
	// with HBFleetSeq it makes the convergence variable unique across
	// coordinator restarts, whose transfer sequences both start at 1.
	HBFleetNonce
	HBVectorLen
)

// MaxChunkBytes is the largest sealed-epoch slice one push frame can carry:
// two packed bytes per complex sample, three samples reserved for the
// (length, total), (offset, nonce), and digest headers.
const MaxChunkBytes = 2 * (MaxVector - 3)

// Chunk header integers (offset, length, total length) and nonces ride
// complex samples that Marshal encodes as float32, which represents
// integers exactly only up to 2^24. MaxTransferBytes caps a chunked
// transfer (and with it every offset) at that bound so the headers survive
// the wire bit-exactly; NonceMask keeps incarnation nonces inside it.
const (
	MaxTransferBytes = 1 << 24
	NonceMask        = 1<<24 - 1
)

// Heartbeat builds the router's liveness ping.
func Heartbeat(id uint32) *Frame {
	return &Frame{Kind: KindHeartbeat, ID: id}
}

// HeartbeatReply builds a replica's answer: the HBVector gauges as real
// parts. Short vectors are zero-padded to HBVectorLen so older replicas
// stay readable when the vector grows.
func HeartbeatReply(id uint32, health []float64) *Frame {
	data := make([]complex128, HBVectorLen)
	for i := 0; i < len(health) && i < HBVectorLen; i++ {
		data[i] = complex(health[i], 0)
	}
	return &Frame{Kind: KindHeartbeat, ID: id, Data: data}
}

// HealthVector extracts the HBVector gauges from a heartbeat reply,
// zero-padding short payloads.
func (f *Frame) HealthVector() []float64 {
	out := make([]float64, HBVectorLen)
	for i := 0; i < len(f.Data) && i < HBVectorLen; i++ {
		out[i] = real(f.Data[i])
	}
	return out
}

// Join builds a replica's membership announcement: the fleet epoch seq it
// last applied (with the coordinator incarnation nonce that stamped it) and
// its local journal seq, all as exact small-integer floats.
func Join(id uint32, fleetSeq, localSeq uint64, fleetNonce uint32) *Frame {
	return &Frame{Kind: KindJoin, ID: id, Data: []complex128{
		complex(float64(fleetSeq), float64(localSeq)),
		complex(float64(fleetNonce&NonceMask), 0),
	}}
}

// JoinInfo extracts the (fleet, local) epoch sequences and the fleet
// nonce from a join frame or a join reply (where the fleet slots carry the
// router's current seq and incarnation).
func (f *Frame) JoinInfo() (fleetSeq, localSeq uint64, fleetNonce uint32) {
	if len(f.Data) == 0 {
		return 0, 0, 0
	}
	fleetSeq, localSeq = uint64(real(f.Data[0])), uint64(imag(f.Data[0]))
	if len(f.Data) > 1 {
		fleetNonce = uint32(real(f.Data[1]))
	}
	return fleetSeq, localSeq, fleetNonce
}

// chunkDigest is the per-chunk integrity check: a CRC32 over every header
// field a push frame carries (transfer, mode, index, total, offset, total
// length, nonce) plus the chunk bytes themselves. Frames have no payload
// checksum of their own, so without this a single corrupted datagram can
// tear a multi-chunk reassembly or land garbage bytes at a valid offset —
// the receiver only discovers it when the sealed epoch's own CRC fails at
// apply time, wasting the entire transfer.
func chunkDigest(transfer uint32, mode uint8, index, total, offset, totalLen int, nonce uint32, chunk []byte) uint32 {
	var hdr [25]byte
	binary.LittleEndian.PutUint32(hdr[0:], transfer)
	hdr[4] = mode
	binary.LittleEndian.PutUint32(hdr[5:], uint32(index))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(total))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(offset))
	binary.LittleEndian.PutUint32(hdr[17:], uint32(totalLen))
	binary.LittleEndian.PutUint32(hdr[21:], nonce&NonceMask)
	return crc32.Update(crc32.ChecksumIEEE(hdr[:]), crc32.IEEETable, chunk)
}

// EpochChunk builds one replication chunk: slice index of total, carrying
// chunk bytes at byte offset into a totalLen-byte sealed epoch, stamped
// with the coordinator's incarnation nonce. The offset rides its own header
// sample so reassembly never has to infer a stride — chunks of any size
// land at their exact position even when duplicated or reordered. A third
// header sample carries a CRC32 digest over headers and bytes, split into
// float32-exact 24-bit + 8-bit halves, so a receiver can tell a chunk
// mangled on the wire from a clean one and discard it for re-send.
func EpochChunk(transfer uint32, mode uint8, index, total int, chunk []byte, offset, totalLen int, nonce uint32) (*Frame, error) {
	if len(chunk) > MaxChunkBytes {
		return nil, fmt.Errorf("airproto: chunk of %d bytes exceeds %d", len(chunk), MaxChunkBytes)
	}
	if index < 0 || total < 1 || index >= total || total > 0xffff {
		return nil, fmt.Errorf("airproto: chunk index %d of %d out of range", index, total)
	}
	if offset < 0 || totalLen < 0 || offset+len(chunk) > totalLen {
		return nil, fmt.Errorf("airproto: chunk [%d, %d) outside %d-byte transfer", offset, offset+len(chunk), totalLen)
	}
	if totalLen > MaxTransferBytes {
		return nil, fmt.Errorf("airproto: %d-byte transfer exceeds the %d-byte float32-exact cap", totalLen, MaxTransferBytes)
	}
	packed, _ := PackBytes(chunk)
	crc := chunkDigest(transfer, mode, index, total, offset, totalLen, nonce, chunk)
	data := make([]complex128, 3+len(packed))
	data[0] = complex(float64(len(chunk)), float64(totalLen))
	data[1] = complex(float64(offset), float64(nonce&NonceMask))
	data[2] = complex(float64(crc&NonceMask), float64(crc>>24))
	copy(data[3:], packed)
	return &Frame{
		Kind:  KindEpochPush,
		Code:  mode,
		ID:    transfer,
		Label: int32(uint32(index)<<16 | uint32(total)),
		Data:  data,
	}, nil
}

// ChunkInfo decodes the (index, total) pair from a push frame's Label.
func (f *Frame) ChunkInfo() (index, total int) {
	u := uint32(f.Label)
	return int(u >> 16), int(u & 0xffff)
}

// ChunkPayload extracts the chunk bytes, their byte offset, the transfer's
// total byte length, and the coordinator nonce from a push frame. It
// returns ok=false for a frame whose headers disagree with its payload — a
// malformed or truncated chunk that must not enter reassembly — including
// a total length past the float32-exact transfer cap, which can only be a
// rounded or hostile header, and any frame whose CRC32 digest does not
// match its headers and bytes: a chunk corrupted anywhere on the wire
// (header byte, length field, payload sample) reads as not-a-chunk, and
// the sender's stop-and-wait loop re-sends it like a drop.
func (f *Frame) ChunkPayload() (chunk []byte, offset, totalLen int, nonce uint32, ok bool) {
	if len(f.Data) < 3 {
		return nil, 0, 0, 0, false
	}
	n := int(real(f.Data[0]))
	totalLen = int(imag(f.Data[0]))
	offset = int(real(f.Data[1]))
	nonce = uint32(imag(f.Data[1])) & NonceMask
	if n < 0 || offset < 0 || totalLen < 0 || totalLen > MaxTransferBytes ||
		offset+n > totalLen || n > 2*(len(f.Data)-3) {
		return nil, 0, 0, 0, false
	}
	crc := uint32(real(f.Data[2]))&NonceMask | uint32(imag(f.Data[2]))<<24
	chunk = UnpackBytes(f.Data[3:], n)
	index, total := f.ChunkInfo()
	if crc != chunkDigest(f.ID, f.Code, index, total, offset, totalLen, nonce, chunk) {
		return nil, 0, 0, 0, false
	}
	return chunk, offset, totalLen, nonce, true
}

// EpochAck builds a replica's chunk acknowledgement. For the completing
// chunk, code carries the apply verdict, Data[0] the (agreement, applied
// fleet seq) pair, and Data[1] echoes the transfer's coordinator nonce so
// the sender can tell a fresh verdict from a cached one about another
// incarnation's transfer; intermediate chunks ack with AckChunk and no
// payload.
func EpochAck(transfer uint32, index int, code uint8, agreement float64, seq uint64, nonce uint32) *Frame {
	f := &Frame{Kind: KindEpochAck, Code: code, ID: transfer, Label: int32(index)}
	if code != AckChunk {
		f.Data = []complex128{
			complex(agreement, float64(seq)),
			complex(float64(nonce&NonceMask), 0),
		}
	}
	return f
}

// AckInfo extracts the chunk index, canary agreement, applied fleet
// sequence, and echoed nonce from an ack frame (all but the index are zero
// on AckChunk).
func (f *Frame) AckInfo() (index int, agreement float64, seq uint64, nonce uint32) {
	index = int(f.Label)
	if len(f.Data) > 0 {
		agreement = real(f.Data[0])
		seq = uint64(imag(f.Data[0]))
	}
	if len(f.Data) > 1 {
		nonce = uint32(real(f.Data[1]))
	}
	return index, agreement, seq, nonce
}
