package airproto

import "fmt"

// Fleet control frames. The router/coordinator tier (internal/fleet) speaks
// three more exchanges over the same dumb-datagram protocol the data path
// uses, so a replica needs exactly one socket for serving, liveness, and
// replication:
//
//   - KindHeartbeat: the router pings each replica; the reply's Data carries
//     the HBVector health gauges (fleet epoch, local epoch, queue depth, and
//     the shed/NACK counters the router's failure detector folds into its
//     suspicion score). An empty request, a small reply, no side effects.
//
//   - KindJoin: a replica announces itself to the router from its serving
//     socket — the datagram's source address IS the address clients get
//     routed to. Data[0] carries (fleet epoch seq, local journal seq); the
//     router's reply echoes the frame with Data[0] = (router's current
//     epoch seq, 0), so a stale replica learns immediately that a catch-up
//     push is coming.
//
//   - KindEpochPush / KindEpochAck: epoch replication. The payload is a
//     sealed internal/checkpoint epoch — CRC envelope and all, so the wire
//     format IS the journal format and a replica can journal what it
//     applied byte-for-byte. Sealed epochs outgrow one datagram, so the
//     push is chunked: every chunk frame carries (index, total) in Label,
//     (chunk length, total length) in Data[0], and the chunk bytes packed
//     two per complex sample behind it (PackBytes — small integers survive
//     the float32 wire exactly). The replica acks every chunk; the ack for
//     the final, completing chunk carries the apply verdict and, on a
//     canary push, the measured prediction agreement in Data[0].
//
// Chunks are idempotent and may arrive duplicated or out of order; the
// transfer ID in the header keys reassembly.

// Push modes carried in a KindEpochPush frame's Code field.
const (
	// PushCommit: apply unconditionally after CRC + semantic validation.
	PushCommit uint8 = 0
	// PushCanary: measure prediction agreement against the current serving
	// epoch on the held-out probes, apply, and report the agreement — the
	// coordinator gates the fleet-wide fan-out on it.
	PushCanary uint8 = 1
	// PushRollback: apply an OLDER epoch; the replica journals it with
	// reason "fleet-rollback" instead of "replicate".
	PushRollback uint8 = 2
)

// Ack verdicts carried in a KindEpochAck frame's Code field.
const (
	// AckChunk acknowledges receipt of one non-completing chunk.
	AckChunk uint8 = 0
	// AckApplied: the transfer completed, decoded, validated, and is now
	// the replica's serving epoch.
	AckApplied uint8 = 1
	// AckRejected: the transfer completed but the replica refused it —
	// corrupt seal, failed validation, or a deployment that would not
	// build. The epoch must not be trusted anywhere.
	AckRejected uint8 = 2
)

// HBVector indexes the health gauges a KindHeartbeat reply carries in Data
// (real parts). HBFleetSeq is the coordinator-assigned sequence of the last
// replicated epoch the replica applied (0 until a push lands) — the fleet's
// convergence variable; HBEpochSeq is the replica's own journal sequence.
const (
	HBFleetSeq = iota
	HBEpochSeq
	HBQueueDepth
	HBServed
	HBShed
	HBNacked
	HBHeals
	HBVectorLen
)

// MaxChunkBytes is the largest sealed-epoch slice one push frame can carry:
// two packed bytes per complex sample, two samples reserved for the
// (length, total) and (offset) headers.
const MaxChunkBytes = 2 * (MaxVector - 2)

// Heartbeat builds the router's liveness ping.
func Heartbeat(id uint32) *Frame {
	return &Frame{Kind: KindHeartbeat, ID: id}
}

// HeartbeatReply builds a replica's answer: the HBVector gauges as real
// parts. Short vectors are zero-padded to HBVectorLen so older replicas
// stay readable when the vector grows.
func HeartbeatReply(id uint32, health []float64) *Frame {
	data := make([]complex128, HBVectorLen)
	for i := 0; i < len(health) && i < HBVectorLen; i++ {
		data[i] = complex(health[i], 0)
	}
	return &Frame{Kind: KindHeartbeat, ID: id, Data: data}
}

// HealthVector extracts the HBVector gauges from a heartbeat reply,
// zero-padding short payloads.
func (f *Frame) HealthVector() []float64 {
	out := make([]float64, HBVectorLen)
	for i := 0; i < len(f.Data) && i < HBVectorLen; i++ {
		out[i] = real(f.Data[i])
	}
	return out
}

// Join builds a replica's membership announcement: the fleet epoch seq it
// last applied and its local journal seq, both as exact float64 integers.
func Join(id uint32, fleetSeq, localSeq uint64) *Frame {
	return &Frame{Kind: KindJoin, ID: id, Data: []complex128{
		complex(float64(fleetSeq), float64(localSeq)),
	}}
}

// JoinSeqs extracts the (fleet, local) epoch sequences from a join frame or
// a join reply (where the fleet slot carries the router's current seq).
func (f *Frame) JoinSeqs() (fleetSeq, localSeq uint64) {
	if len(f.Data) == 0 {
		return 0, 0
	}
	return uint64(real(f.Data[0])), uint64(imag(f.Data[0]))
}

// EpochChunk builds one replication chunk: slice index of total, carrying
// chunk bytes at byte offset into a totalLen-byte sealed epoch. The offset
// rides its own header sample so reassembly never has to infer a stride —
// chunks of any size land at their exact position even when duplicated or
// reordered.
func EpochChunk(transfer uint32, mode uint8, index, total int, chunk []byte, offset, totalLen int) (*Frame, error) {
	if len(chunk) > MaxChunkBytes {
		return nil, fmt.Errorf("airproto: chunk of %d bytes exceeds %d", len(chunk), MaxChunkBytes)
	}
	if index < 0 || total < 1 || index >= total || total > 0xffff {
		return nil, fmt.Errorf("airproto: chunk index %d of %d out of range", index, total)
	}
	if offset < 0 || totalLen < 0 || offset+len(chunk) > totalLen {
		return nil, fmt.Errorf("airproto: chunk [%d, %d) outside %d-byte transfer", offset, offset+len(chunk), totalLen)
	}
	packed, _ := PackBytes(chunk)
	data := make([]complex128, 2+len(packed))
	data[0] = complex(float64(len(chunk)), float64(totalLen))
	data[1] = complex(float64(offset), 0)
	copy(data[2:], packed)
	return &Frame{
		Kind:  KindEpochPush,
		Code:  mode,
		ID:    transfer,
		Label: int32(uint32(index)<<16 | uint32(total)),
		Data:  data,
	}, nil
}

// ChunkInfo decodes the (index, total) pair from a push frame's Label.
func (f *Frame) ChunkInfo() (index, total int) {
	u := uint32(f.Label)
	return int(u >> 16), int(u & 0xffff)
}

// ChunkPayload extracts the chunk bytes, their byte offset, and the
// transfer's total byte length from a push frame. It returns ok=false for a
// frame whose headers disagree with its payload — a malformed or truncated
// chunk that must not enter reassembly.
func (f *Frame) ChunkPayload() (chunk []byte, offset, totalLen int, ok bool) {
	if len(f.Data) < 2 {
		return nil, 0, 0, false
	}
	n := int(real(f.Data[0]))
	totalLen = int(imag(f.Data[0]))
	offset = int(real(f.Data[1]))
	if n < 0 || offset < 0 || totalLen < 0 || offset+n > totalLen || n > 2*(len(f.Data)-2) {
		return nil, 0, 0, false
	}
	return UnpackBytes(f.Data[2:], n), offset, totalLen, true
}

// EpochAck builds a replica's chunk acknowledgement. For the completing
// chunk, code carries the apply verdict and Data[0] the (agreement,
// applied fleet seq) pair; intermediate chunks ack with AckChunk and no
// payload.
func EpochAck(transfer uint32, index int, code uint8, agreement float64, seq uint64) *Frame {
	f := &Frame{Kind: KindEpochAck, Code: code, ID: transfer, Label: int32(index)}
	if code != AckChunk {
		f.Data = []complex128{complex(agreement, float64(seq))}
	}
	return f
}

// AckInfo extracts the chunk index, canary agreement, and applied fleet
// sequence from an ack frame (agreement and seq are zero on AckChunk).
func (f *Frame) AckInfo() (index int, agreement float64, seq uint64) {
	index = int(f.Label)
	if len(f.Data) > 0 {
		agreement = real(f.Data[0])
		seq = uint64(imag(f.Data[0]))
	}
	return index, agreement, seq
}
