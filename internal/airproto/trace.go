package airproto

// Over-the-air trace fetch. The frame layout was designed around
// 32-bit-ID inference requests and float32 complex vectors; trace IDs are
// 64-bit and trace exports are JSON bytes, so KindTrace rides the
// existing fields with two conventions:
//
//   - The 64-bit trace ID splits across the header: ID carries the low 32
//     bits, Label the high 32 (reinterpreted as uint32). TraceRequest and
//     (*Frame).TraceID convert.
//   - The JSON body packs two bytes per complex sample — one byte in the
//     real part, one in the imaginary — as exact small-integer float32s
//     (every integer in [0, 255] is exactly representable), so the bytes
//     survive the float32 wire format bit-exactly. Label on the RESPONSE
//     carries the byte length (odd lengths pad the final imaginary slot),
//     and Code carries StatusNoTrace when the body had to be truncated to
//     fit MaxVector. PackBytes/UnpackBytes convert.
//
// A two-bytes-per-sample payload spends 4× the wire bytes of the raw
// JSON, but a full export still fits one datagram for typical span trees
// (MaxVector samples ≈ 16 KiB of JSON), and no second payload format
// enters the protocol.

// TraceRequest builds the KindTrace request frame for a 64-bit trace ID.
func TraceRequest(id uint64) *Frame {
	return &Frame{
		Kind:  KindTrace,
		ID:    uint32(id),
		Label: int32(uint32(id >> 32)),
	}
}

// TraceID reassembles the 64-bit trace ID a KindTrace frame addresses.
func (f *Frame) TraceID() uint64 {
	return uint64(uint32(f.Label))<<32 | uint64(f.ID)
}

// MaxTraceBytes is the largest payload a single KindTrace response can
// carry (two bytes per complex sample).
const MaxTraceBytes = 2 * MaxVector

// PackBytes packs an opaque byte payload into a complex vector, two bytes
// per sample, truncating at MaxTraceBytes. It returns the vector and the
// packed byte count (== len(b) unless truncated).
func PackBytes(b []byte) ([]complex128, int) {
	n := len(b)
	if n > MaxTraceBytes {
		n = MaxTraceBytes
	}
	data := make([]complex128, (n+1)/2)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			data[i/2] = complex(float64(b[i]), 0)
		} else {
			data[i/2] = complex(real(data[i/2]), float64(b[i]))
		}
	}
	return data, n
}

// UnpackBytes reverses PackBytes: the first n bytes carried by the
// vector. n beyond the vector's capacity is clamped.
func UnpackBytes(data []complex128, n int) []byte {
	if n < 0 {
		n = 0
	}
	if max := 2 * len(data); n > max {
		n = max
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			out[i] = byte(real(data[i/2]))
		} else {
			out[i] = byte(imag(data[i/2]))
		}
	}
	return out
}
