package airproto

import (
	"bytes"
	"testing"
)

func TestTraceRequestIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 0xdeadbeefcafef00d, ^uint64(0)} {
		f := TraceRequest(id)
		if f.Kind != KindTrace {
			t.Fatalf("kind = %d", f.Kind)
		}
		if got := f.TraceID(); got != id {
			t.Fatalf("TraceID round trip: got %x want %x", got, id)
		}
		// The split ID must survive the wire.
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		g, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if g.TraceID() != id {
			t.Fatalf("wire round trip: got %x want %x", g.TraceID(), id)
		}
	}
}

func TestPackBytesRoundTripsThroughWire(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte{0},
		[]byte{255},
		[]byte(`{"traceEvents":[{"name":"req","ph":"X"}]}`),
		bytes.Repeat([]byte{0, 127, 255, 3}, 300), // even length
		bytes.Repeat([]byte{9}, 301),              // odd length
	}
	for _, p := range payloads {
		data, n := PackBytes(p)
		if n != len(p) {
			t.Fatalf("packed %d of %d bytes", n, len(p))
		}
		f := &Frame{Kind: KindTrace, Label: int32(n), Data: data}
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		g, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		got := UnpackBytes(g.Data, int(g.Label))
		if !bytes.Equal(got, p) {
			t.Fatalf("payload corrupted: got %q want %q", got, p)
		}
	}
}

func TestPackBytesTruncates(t *testing.T) {
	big := bytes.Repeat([]byte{7}, MaxTraceBytes+100)
	data, n := PackBytes(big)
	if n != MaxTraceBytes {
		t.Fatalf("packed %d, want cap %d", n, MaxTraceBytes)
	}
	if len(data) != MaxVector {
		t.Fatalf("vector length %d, want %d", len(data), MaxVector)
	}
	if got := UnpackBytes(data, n); !bytes.Equal(got, big[:MaxTraceBytes]) {
		t.Fatal("truncated payload corrupted")
	}
}

func TestUnpackBytesClampsBogusLength(t *testing.T) {
	data, _ := PackBytes([]byte{1, 2, 3})
	if got := UnpackBytes(data, 100); len(got) != 4 {
		t.Fatalf("clamp: got %d bytes, want 4 (vector capacity)", len(got))
	}
	if got := UnpackBytes(data, -5); len(got) != 0 {
		t.Fatalf("negative length: got %d bytes", len(got))
	}
}

func TestKindTraceValidOnWireUnknownKindsStillRejected(t *testing.T) {
	f := &Frame{Kind: KindTrace, ID: 1}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(b); err != nil {
		t.Fatalf("KindTrace rejected: %v", err)
	}
	bad := &Frame{Kind: maxKind + 1}
	if _, err := bad.Marshal(); err == nil {
		t.Fatalf("kind %d marshaled", maxKind+1)
	}
	b[0] = maxKind + 1
	if _, err := Unmarshal(b); err == nil {
		t.Fatalf("kind %d unmarshaled", maxKind+1)
	}
}
