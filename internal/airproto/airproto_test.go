package airproto

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	src := rng.New(1)
	f := &Frame{ID: 42, Label: -1, Data: make([]complex128, 64)}
	for i := range f.Data {
		f.Data[i] = src.ComplexNormal(1)
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Label != -1 || len(got.Data) != 64 {
		t.Fatalf("header lost: %+v", got)
	}
	for i := range f.Data {
		// float32 wire precision.
		if cmplx.Abs(got.Data[i]-f.Data[i]) > 1e-6*(1+cmplx.Abs(f.Data[i])) {
			t.Fatalf("element %d corrupted: %v vs %v", i, got.Data[i], f.Data[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(id uint32, label int32, raw []float64) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		data := make([]complex128, len(raw)/2)
		for i := range data {
			re, im := raw[2*i], raw[2*i+1]
			if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
				return true // skip non-finite inputs
			}
			data[i] = complex(float64(float32(re)), float64(float32(im)))
		}
		f := &Frame{ID: id, Label: label, Data: data}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil || got.ID != id || got.Label != label || len(got.Data) != len(data) {
			return false
		}
		for i := range data {
			if got.Data[i] != data[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("expected error for empty datagram")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Error("expected error for short frame")
	}
	// Header claims 100 elements but carries none.
	f := &Frame{ID: 1, Data: make([]complex128, 100)}
	b, _ := f.Marshal()
	if _, err := Unmarshal(b[:HeaderLen]); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	f := &Frame{Data: make([]complex128, MaxVector+1)}
	if _, err := f.Marshal(); err == nil {
		t.Fatal("expected error for oversized vector")
	}
}

func FuzzUnmarshal(f *testing.F) {
	seed, _ := (&Frame{ID: 7, Label: 3, Data: []complex128{1 + 2i}}).Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := Unmarshal(b)
		if err != nil {
			return
		}
		// Accepted frames must re-marshal to a parseable frame.
		b2, err := fr.Marshal()
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		if _, err := Unmarshal(b2); err != nil {
			t.Fatalf("re-marshaled frame failed to parse: %v", err)
		}
	})
}
