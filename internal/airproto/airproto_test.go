package airproto

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	src := rng.New(1)
	f := &Frame{ID: 42, Label: -1, Data: make([]complex128, 64)}
	for i := range f.Data {
		f.Data[i] = src.ComplexNormal(1)
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Label != -1 || len(got.Data) != 64 {
		t.Fatalf("header lost: %+v", got)
	}
	for i := range f.Data {
		// float32 wire precision.
		if cmplx.Abs(got.Data[i]-f.Data[i]) > 1e-6*(1+cmplx.Abs(f.Data[i])) {
			t.Fatalf("element %d corrupted: %v vs %v", i, got.Data[i], f.Data[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Every kind this build speaks — data, NACK, stats, trace, and the four
	// fleet kinds — must round-trip its full header (kind, code, ID, label)
	// and payload bit-exactly through the wire format.
	err := quick.Check(func(kindSel, code uint8, id uint32, label int32, raw []float64) bool {
		kind := kindSel % (maxKind + 1)
		if len(raw) > 200 {
			raw = raw[:200]
		}
		data := make([]complex128, len(raw)/2)
		for i := range data {
			re, im := raw[2*i], raw[2*i+1]
			if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
				return true // skip non-finite inputs
			}
			data[i] = complex(float64(float32(re)), float64(float32(im)))
		}
		f := &Frame{Kind: kind, Code: code, ID: id, Label: label, Data: data}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil || got.Kind != kind || got.Code != code || got.ID != id ||
			got.Label != label || len(got.Data) != len(data) {
			return false
		}
		for i := range data {
			if got.Data[i] != data[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("expected error for empty datagram")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Error("expected error for short frame")
	}
	// Header claims 100 elements but carries none.
	f := &Frame{ID: 1, Data: make([]complex128, 100)}
	b, _ := f.Marshal()
	if _, err := Unmarshal(b[:HeaderLen]); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	f := &Frame{Data: make([]complex128, MaxVector+1)}
	if _, err := f.Marshal(); err == nil {
		t.Fatal("expected error for oversized vector")
	}
}

func TestNackRoundTrip(t *testing.T) {
	n := Nack(99, StatusWrongLen, 784)
	b, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNack() || got.Code != StatusWrongLen || got.ID != 99 || got.Label != 784 || len(got.Data) != 0 {
		t.Fatalf("NACK lost fields: %+v", got)
	}
	if (&Frame{ID: 1}).IsNack() {
		t.Fatal("data frame classified as NACK")
	}
}

func TestRejectsUnknownKind(t *testing.T) {
	b, _ := (&Frame{ID: 1, Data: []complex128{1}}).Marshal()
	b[0] = maxKind + 1
	if _, err := Unmarshal(b); err == nil {
		t.Error("expected error for unknown frame kind")
	}
	if _, err := (&Frame{Kind: maxKind + 1}).Marshal(); err == nil {
		t.Error("expected marshal error for unknown frame kind")
	}
	b[0] = 0xff
	if _, err := Unmarshal(b); err == nil {
		t.Error("expected error for kind 255")
	}
}

func TestUnmarshalRejectsOversizeClaim(t *testing.T) {
	// A header claiming more elements than any datagram can carry must be
	// rejected on the length field itself, not by allocating first.
	b, _ := (&Frame{ID: 1}).Marshal()
	b[10], b[11] = 0xff, 0xff // n = 65535 > MaxVector
	if _, err := Unmarshal(b); err == nil {
		t.Error("expected error for oversized length claim")
	}
}

// fuzzCorpus seeds FuzzUnmarshal with the failure shapes the serving stack
// meets in the wild: truncated headers, length-field lies, arbitrary
// (non-UTF8) byte soup, and well-formed data and NACK frames. The seeds run
// under plain `go test` as well, so the corpus is a regression suite even
// when fuzzing is off.
func fuzzCorpus() [][]byte {
	data, _ := (&Frame{ID: 7, Label: 3, Data: []complex128{1 + 2i, -3 - 4i}}).Marshal()
	nack, _ := Nack(9, StatusDegraded, 0).Marshal()
	big, _ := (&Frame{ID: 8, Data: make([]complex128, 300)}).Marshal()
	stats, _ := (&Frame{Kind: KindStats, ID: 11, Data: make([]complex128, StatsVectorLen)}).Marshal()
	trc, _ := TraceRequest(0x8be9ac2c03521f46).Marshal()
	oversize := append([]byte(nil), data...)
	oversize[10], oversize[11] = 0xff, 0xff // n lies far past the payload
	// Fleet control frames: liveness, membership, and both halves of the
	// chunked epoch-replication exchange.
	hb, _ := Heartbeat(21).Marshal()
	hbReply, _ := HeartbeatReply(21, []float64{3, 7, 1, 500, 2, 0, 1, 0x1234}).Marshal()
	join, _ := Join(22, 5, 9, 0xabcdef).Marshal()
	chunkFrame, _ := EpochChunk(23, PushCanary, 1, 3, []byte{0xde, 0xad, 0xbe}, 500, 1000, 0xbeef01)
	chunk, _ := chunkFrame.Marshal()
	chunkCut := chunk[:len(chunk)-5] // chunk cut mid-payload
	ackChunk, _ := EpochAck(23, 1, AckChunk, 0, 0, 0xbeef01).Marshal()
	ackDone, _ := EpochAck(23, 2, AckApplied, 0.97, 6, 0xbeef01).Marshal()
	// Overload-control frames: a deadline-stamped data request, the expired
	// verdict, and a brownout retry-after hint.
	deadlined, _ := (&Frame{ID: 31, Label: -1, Code: EncodeDeadline(250 * time.Millisecond), Data: []complex128{1i, 2}}).Marshal()
	expired, _ := ExpiredNack(31, 40*time.Millisecond).Marshal()
	retryAfter, _ := RetryAfterNack(32, 75*time.Millisecond).Marshal()
	return [][]byte{
		{},                 // empty datagram
		{0x00},             // 1-byte runt
		data[:HeaderLen-1], // header cut one byte short
		data[:HeaderLen],   // header only, payload missing
		data[:len(data)-3], // payload cut mid-element
		oversize,           // oversized length claim
		{0xff, 0xfe, 0x80, 0x81, 0xc3, 0x28, 0xa0, 0xa1, 0x00, 0x00, 0x00, 0x00}, // non-UTF8 byte soup, header-sized
		data,
		nack,
		big,
		stats,
		trc,
		hb,
		hbReply,
		join,
		chunk,
		chunkCut,
		ackChunk,
		ackDone,
		deadlined,
		expired,
		retryAfter,
	}
}

func FuzzUnmarshal(f *testing.F) {
	for _, seed := range fuzzCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := Unmarshal(b)
		if err != nil {
			return
		}
		if fr.Kind > maxKind {
			t.Fatalf("accepted frame with unknown kind %d", fr.Kind)
		}
		if len(fr.Data) > MaxVector {
			t.Fatalf("accepted frame with %d elements (max %d)", len(fr.Data), MaxVector)
		}
		// Accepted frames must re-marshal to a parseable frame that carries
		// the same header and payload.
		b2, err := fr.Marshal()
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		fr2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-marshaled frame failed to parse: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Code != fr.Code || fr2.ID != fr.ID || fr2.Label != fr.Label || len(fr2.Data) != len(fr.Data) {
			t.Fatalf("round trip changed header: %+v vs %+v", fr2, fr)
		}
		for i := range fr.Data {
			b1 := [2]uint32{math.Float32bits(float32(real(fr.Data[i]))), math.Float32bits(float32(imag(fr.Data[i])))}
			b2 := [2]uint32{math.Float32bits(float32(real(fr2.Data[i]))), math.Float32bits(float32(imag(fr2.Data[i])))}
			if b1 != b2 {
				t.Fatalf("round trip changed element %d: %v vs %v", i, fr.Data[i], fr2.Data[i])
			}
		}
	})
}

// TestFuzzCorpusSeeded runs the seed corpus through the fuzz invariant in a
// plain test, so the regression coverage does not depend on -fuzz being
// enabled in CI.
func TestFuzzCorpusSeeded(t *testing.T) {
	for i, b := range fuzzCorpus() {
		fr, err := Unmarshal(b)
		if err != nil {
			continue // rejection is a valid outcome; the fuzz target checks the rest
		}
		if _, err := fr.Marshal(); err != nil {
			t.Errorf("corpus %d: accepted frame failed to marshal: %v", i, err)
		}
	}
}
