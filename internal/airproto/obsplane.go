package airproto

import "encoding/binary"

// Fleet observability additions to the wire protocol: distributed-trace
// context on forwarded data frames, a normalize bit on trace fetches, and
// a versioned stats vector that lets the router answer KindStats with
// fleet-level counters without breaking old probes.

// traceCtxSamples is the appended trace-context length on a KindDataTraced
// frame: 16 bytes (trace ID + parent span ID, little endian) packed two
// bytes per complex sample (see PackBytes).
const traceCtxSamples = 8

// AttachTraceContext rewrites a KindData frame into KindDataTraced by
// appending the 64-bit trace ID and parent span ID as trailing samples. It
// refuses (returning false, frame untouched) on non-data frames, a zero
// trace ID, or a payload too large to carry the context.
func AttachTraceContext(f *Frame, traceID, parentSpan uint64) bool {
	if f.Kind != KindData || traceID == 0 || len(f.Data)+traceCtxSamples > MaxVector {
		return false
	}
	var ctx [2 * traceCtxSamples]byte
	binary.LittleEndian.PutUint64(ctx[:8], traceID)
	binary.LittleEndian.PutUint64(ctx[8:], parentSpan)
	samples, _ := PackBytes(ctx[:])
	f.Data = append(f.Data, samples...)
	f.Kind = KindDataTraced
	return true
}

// StripTraceContext reverses AttachTraceContext: it removes the trailing
// context samples, restores Kind to KindData, and returns the carried
// trace ID and parent span ID. ok is false (frame untouched) when f is not
// a well-formed KindDataTraced frame.
func StripTraceContext(f *Frame) (traceID, parentSpan uint64, ok bool) {
	if f.Kind != KindDataTraced || len(f.Data) < traceCtxSamples {
		return 0, 0, false
	}
	tail := UnpackBytes(f.Data[len(f.Data)-traceCtxSamples:], 2*traceCtxSamples)
	traceID = binary.LittleEndian.Uint64(tail[:8])
	parentSpan = binary.LittleEndian.Uint64(tail[8:])
	if traceID == 0 {
		return 0, 0, false
	}
	f.Data = f.Data[:len(f.Data)-traceCtxSamples]
	f.Kind = KindData
	return traceID, parentSpan, true
}

// TraceFlagNormalize, set on a KindTrace REQUEST's Code field, asks the
// responder to export with deterministic normalized timestamps
// (trace.ExportOptions.Normalize) — the form CI gates diff byte-for-byte.
// Responders ignore unknown bits, so the flag is forward-compatible.
const TraceFlagNormalize uint8 = 1

// Stats vector versions, carried on a KindStats REPLY's Code field. Probes
// older than the version scheme see Code 0 from pre-fleet servers and a
// Data vector of at least StatsVectorLen either way: versions only ever
// APPEND slots, so the legacy StatsVector indexes stay valid forever and
// an old probe reading a newer reply just ignores the tail.
const (
	// StatsVersionReplica: the reply carries exactly the StatsVector
	// counters — what a replica answers.
	StatsVersionReplica uint8 = 1
	// StatsVersionFleet: the reply carries the StatsVector counters
	// (fleet-wide sums), then the FleetStats slots, then one health-score
	// sample per live replica (sorted by replica name) — what a router
	// answers.
	StatsVersionFleet uint8 = 2
)

// FleetStats slots, appended after the legacy StatsVector in a
// StatsVersionFleet reply.
const (
	// FleetStatLive: live (routable) replica count.
	FleetStatLive = StatsVectorLen + iota
	// FleetStatReplicas: replicas with a reported health score — the number
	// of per-replica samples that follow FleetStatsVectorLen.
	FleetStatReplicas
	// FleetStatForwards: data frames the router forwarded.
	FleetStatForwards
	// FleetStatFailovers: forwards re-sent to another replica after an
	// explicit NACK or timeout.
	FleetStatFailovers
	// FleetStatHedgedWins: requests won by a hedge (attempt > 0).
	FleetStatHedgedWins
	// FleetStatShed: requests shed by router admission.
	FleetStatShed
	// FleetStatExpired: requests whose deadline budget ran out at the
	// router.
	FleetStatExpired
	// FleetStatP99Micros: fleet-wide p99 of the merged serve.request
	// latency histogram, in microseconds.
	FleetStatP99Micros
	// FleetStatBurnFast and FleetStatBurnSlow: the router's fast- and
	// slow-window SLO error-budget burn rates.
	FleetStatBurnFast
	FleetStatBurnSlow
	// FleetStatsVectorLen is the fleet reply's fixed prefix length;
	// FleetStatReplicas health-score samples follow it.
	FleetStatsVectorLen
)
