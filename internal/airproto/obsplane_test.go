package airproto

import (
	"reflect"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	payload := []complex128{complex(1, 2), complex(3, 4), complex(5, 6)}
	f := &Frame{Kind: KindData, ID: 77, Label: 3, Data: append([]complex128(nil), payload...)}
	if !AttachTraceContext(f, 0xdeadbeefcafef00d, 0x0123456789abcdef) {
		t.Fatal("attach refused a well-formed data frame")
	}
	if f.Kind != KindDataTraced || len(f.Data) != len(payload)+traceCtxSamples {
		t.Fatalf("attach produced kind=%d len=%d", f.Kind, len(f.Data))
	}
	// The context must survive the float32 wire format bit-exactly.
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	tid, parent, ok := StripTraceContext(g)
	if !ok {
		t.Fatal("strip refused a traced frame")
	}
	if tid != 0xdeadbeefcafef00d || parent != 0x0123456789abcdef {
		t.Fatalf("context mangled: trace=%x parent=%x", tid, parent)
	}
	if g.Kind != KindData || !reflect.DeepEqual(g.Data, payload) {
		t.Fatalf("strip did not restore the original frame: kind=%d data=%v", g.Kind, g.Data)
	}
}

func TestTraceContextRefusals(t *testing.T) {
	if AttachTraceContext(&Frame{Kind: KindStats}, 1, 2) {
		t.Fatal("attach accepted a non-data frame")
	}
	if AttachTraceContext(&Frame{Kind: KindData}, 0, 2) {
		t.Fatal("attach accepted a zero trace ID")
	}
	full := &Frame{Kind: KindData, Data: make([]complex128, MaxVector-traceCtxSamples+1)}
	if AttachTraceContext(full, 1, 2) {
		t.Fatal("attach overflowed MaxVector")
	}
	if full.Kind != KindData || len(full.Data) != MaxVector-traceCtxSamples+1 {
		t.Fatal("refused attach still mutated the frame")
	}
	if _, _, ok := StripTraceContext(&Frame{Kind: KindData, Data: make([]complex128, 16)}); ok {
		t.Fatal("strip accepted a plain data frame")
	}
	short := &Frame{Kind: KindDataTraced, Data: make([]complex128, traceCtxSamples-1)}
	if _, _, ok := StripTraceContext(short); ok {
		t.Fatal("strip accepted an under-length traced frame")
	}
}

// TestStatsForwardCompat pins the versioning contract: a reply from a
// NEWER build — more appended slots than this build knows about — still
// decodes cleanly, with every legacy StatsVector index intact. Appending
// is the only evolution the scheme allows precisely so this holds.
func TestStatsForwardCompat(t *testing.T) {
	// A hypothetical v3 reply: legacy counters, fleet slots, health
	// samples, plus three future slots this build has no names for.
	future := make([]complex128, FleetStatsVectorLen+2+3)
	legacy := []float64{101, 2, 3, 1, 1, 9, 4, 5}
	if len(legacy) != StatsVectorLen {
		t.Fatalf("test vector drifted: %d legacy slots", len(legacy))
	}
	for i, v := range legacy {
		future[i] = complex(v, 0)
	}
	future[FleetStatLive] = complex(2, 0)
	future[FleetStatReplicas] = complex(2, 0)
	f := &Frame{Kind: KindStats, Code: StatsVersionFleet + 1, ID: 9, Data: future}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(wire)
	if err != nil {
		t.Fatalf("future stats reply failed to decode: %v", err)
	}
	// The legacy read every existing probe performs: bounds check against
	// StatsVectorLen, then indexed reads.
	if len(g.Data) < StatsVectorLen {
		t.Fatalf("future reply shorter than the legacy vector: %d", len(g.Data))
	}
	for i, want := range legacy {
		if got := real(g.Data[i]); got != want {
			t.Fatalf("legacy slot %d misindexed: got %g want %g", i, got, want)
		}
	}
	// A versioned reader sees an unknown version and falls back to the
	// highest prefix it understands — the fleet prefix is still intact.
	if g.Code <= StatsVersionFleet {
		t.Fatalf("test frame should carry a future version, got %d", g.Code)
	}
	if real(g.Data[FleetStatLive]) != 2 || real(g.Data[FleetStatReplicas]) != 2 {
		t.Fatal("fleet slots misindexed in future reply")
	}
}
