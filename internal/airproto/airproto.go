// Package airproto is the little UDP wire protocol the deployment demos
// speak: fixed little-endian frames carrying complex vectors — modulated
// symbols on the uplink (sensor → air), per-class accumulators on the
// downlink (air → edge). One datagram per transmission keeps the protocol
// as dumb as the commodity IoT transmitters the paper targets.
//
// Frame layout (little endian):
//
//	uint32  id       sample/transmission identifier
//	int32   label    ground-truth label for accounting (-1 if unknown)
//	uint16  n        vector length
//	n × (float32 re, float32 im)
package airproto

import (
	"encoding/binary"
	"fmt"
	"math"
)

// HeaderLen is the byte length of the fixed frame header.
const HeaderLen = 10

// MaxVector is the largest vector a single frame can carry (bounded by the
// uint16 length field and a 64 KiB datagram).
const MaxVector = (65535 - HeaderLen) / 8

// Frame is one protocol message.
type Frame struct {
	ID    uint32
	Label int32
	Data  []complex128
}

// Marshal serializes the frame.
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.Data) > MaxVector {
		return nil, fmt.Errorf("airproto: vector length %d exceeds %d", len(f.Data), MaxVector)
	}
	buf := make([]byte, 0, HeaderLen+8*len(f.Data))
	buf = binary.LittleEndian.AppendUint32(buf, f.ID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Label))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Data)))
	for _, v := range f.Data {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(real(v))))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(imag(v))))
	}
	return buf, nil
}

// Unmarshal parses one datagram into a frame.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("airproto: short frame (%d bytes)", len(b))
	}
	f := &Frame{
		ID:    binary.LittleEndian.Uint32(b[0:4]),
		Label: int32(binary.LittleEndian.Uint32(b[4:8])),
	}
	n := int(binary.LittleEndian.Uint16(b[8:10]))
	if len(b) < HeaderLen+8*n {
		return nil, fmt.Errorf("airproto: truncated frame: %d bytes for n=%d", len(b), n)
	}
	f.Data = make([]complex128, n)
	off := HeaderLen
	for i := range f.Data {
		re := math.Float32frombits(binary.LittleEndian.Uint32(b[off : off+4]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(b[off+4 : off+8]))
		f.Data[i] = complex(float64(re), float64(im))
		off += 8
	}
	return f, nil
}
