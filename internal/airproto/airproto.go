// Package airproto is the little UDP wire protocol the deployment demos
// speak: fixed little-endian frames carrying complex vectors — modulated
// symbols on the uplink (sensor → air), per-class accumulators on the
// downlink (air → edge). One datagram per transmission keeps the protocol
// as dumb as the commodity IoT transmitters the paper targets.
//
// Frame layout (little endian):
//
//	uint8   kind     KindData, KindNack, KindStats, KindTrace, or one of
//	                 the fleet kinds (KindHeartbeat, KindJoin,
//	                 KindEpochPush, KindEpochAck — see fleet.go)
//	uint8   code     status code; on data frames, the client's remaining
//	                 deadline budget in DeadlineUnit ticks (0 = no deadline)
//	uint32  id       sample/transmission identifier
//	int32   label    data: ground-truth label for accounting (-1 if unknown)
//	                 nack: detail value (e.g. the deployed U for StatusWrongLen)
//	uint16  n        vector length
//	n × (float32 re, float32 im)
//
// NACK frames give clients an explicit failure signal instead of silence:
// a malformed or mis-sized request is answered with KindNack and a status
// code, and a degraded server sheds load with StatusDegraded — "healthy
// request, busy air, retry with backoff" — which clients must treat
// differently from a bad frame of their own making.
package airproto

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frame kinds.
const (
	// KindData is a payload frame: symbols uplink, accumulators downlink.
	KindData uint8 = 0
	// KindNack is a status/negative-acknowledgement frame; Code says why and
	// Label carries the code-specific detail.
	KindNack uint8 = 1
	// KindStats is a serving-counter exchange: a client sends an empty
	// KindStats frame and the server answers with one whose Data carries the
	// StatsVector counters (real parts only) — served transmissions, heals,
	// epoch swaps, rollbacks, canary rejections, and the current epoch
	// sequence. It gives probes a health read without the HTTP sidecar.
	KindStats uint8 = 2
	// KindTrace is a retained-trace fetch: the client sends an empty
	// KindTrace frame whose ID/Label fields carry the low/high halves of a
	// 64-bit trace ID (see TraceRequest), and the server answers with one
	// whose Data carries the trace's Chrome-format JSON export packed two
	// bytes per complex sample (see PackBytes). A server with tracing
	// disabled or no such retained trace answers KindNack/StatusNoTrace. It
	// lets `metaai-serve -probe -trace <id>` pull a trace over the air when
	// the HTTP sidecar is unreachable.
	KindTrace uint8 = 3
	// KindHeartbeat is the fleet router's liveness probe: an empty request,
	// answered with the HBVector health gauges (see fleet.go).
	KindHeartbeat uint8 = 4
	// KindJoin is a replica's membership announcement to the fleet router,
	// sent from its serving socket so the source address doubles as the
	// routing address (see fleet.go).
	KindJoin uint8 = 5
	// KindEpochPush carries one chunk of a sealed checkpoint epoch from the
	// coordinator to a replica (see fleet.go).
	KindEpochPush uint8 = 6
	// KindEpochAck acknowledges a push chunk; the completing chunk's ack
	// carries the apply verdict and canary agreement (see fleet.go).
	KindEpochAck uint8 = 7
	// KindDataTraced is a KindData frame carrying appended distributed-trace
	// context (trace ID + parent span ID, see AttachTraceContext) — what a
	// fleet router forwards when it is tracing the request, so the replica's
	// serve.request span parents under the router's hop span. Replicas strip
	// the context and process the rest as plain KindData; the reply is an
	// ordinary KindData frame. Pre-fleet replicas reject the kind at
	// Unmarshal, so a tracing router must only be pointed at replicas that
	// speak it.
	KindDataTraced uint8 = 8
)

// maxKind is the highest frame kind this build speaks; anything above it is
// rejected at both Marshal and Unmarshal so unknown kinds never cross the
// wire silently.
const maxKind = KindDataTraced

// StatsVector indexes the counters a KindStats response carries in Data.
const (
	StatServed = iota
	StatHeals
	StatSwaps
	StatRollbacks
	StatCanaryRejects
	StatEpochSeq
	StatShed
	StatExpired
	StatsVectorLen
)

// Status codes carried by NACK frames.
const (
	// StatusBadFrame: the request failed to parse; sender should fix, not
	// retry.
	StatusBadFrame uint8 = 1
	// StatusWrongLen: the symbol count does not match the deployed U; the
	// NACK's Label carries the expected U. Sender should re-encode, not
	// retry.
	StatusWrongLen uint8 = 2
	// StatusDegraded: the service is degraded or shedding load; the request
	// was well-formed and a retry with backoff is expected to succeed.
	StatusDegraded uint8 = 3
	// StatusNoTrace: a KindTrace request named a trace the server does not
	// retain (never traced, sampled out, or evicted). Not retryable.
	StatusNoTrace uint8 = 4
	// StatusExpired: the request's deadline budget ran out before the server
	// (or router) would have started inference, so the work was dropped
	// unstarted — goal-oriented shedding, not a failure of the frame. The
	// NACK's Label carries how far past the deadline the request was, in
	// milliseconds. Retryable with a fresh budget if the result still
	// matters.
	StatusExpired uint8 = 5
	// StatusRetryAfter: admission control is browning out non-control
	// traffic because the serving latency exceeds its SLO; the NACK's Label
	// carries a suggested wait in milliseconds before retrying. The request
	// was well-formed — back off at least the hint, then retry.
	StatusRetryAfter uint8 = 6
)

// HeaderLen is the byte length of the fixed frame header.
const HeaderLen = 12

// MaxVector is the largest vector a single frame can carry (bounded by the
// uint16 length field and a 64 KiB datagram).
const MaxVector = (65535 - HeaderLen) / 8

// Frame is one protocol message.
type Frame struct {
	Kind  uint8
	Code  uint8
	ID    uint32
	Label int32
	Data  []complex128
}

// Nack builds a status frame answering request id with the given code;
// detail rides the Label field (StatusWrongLen puts the deployed U there).
func Nack(id uint32, code uint8, detail int32) *Frame {
	return &Frame{Kind: KindNack, Code: code, ID: id, Label: detail}
}

// IsNack reports whether the frame is a status/negative acknowledgement.
func (f *Frame) IsNack() bool { return f.Kind == KindNack }

// Marshal serializes the frame.
func (f *Frame) Marshal() ([]byte, error) {
	return f.MarshalAppend(make([]byte, 0, HeaderLen+8*len(f.Data)))
}

// MarshalAppend serializes the frame onto buf and returns the extended
// slice, reusing buf's capacity — the zero-alloc variant for reply loops
// that recycle a scratch buffer (pass buf[:0] to overwrite it). The wire
// bytes are identical to Marshal's.
func (f *Frame) MarshalAppend(buf []byte) ([]byte, error) {
	if len(f.Data) > MaxVector {
		return nil, fmt.Errorf("airproto: vector length %d exceeds %d", len(f.Data), MaxVector)
	}
	if f.Kind > maxKind {
		return nil, fmt.Errorf("airproto: unknown frame kind %d", f.Kind)
	}
	buf = append(buf, f.Kind, f.Code)
	buf = binary.LittleEndian.AppendUint32(buf, f.ID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Label))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Data)))
	for _, v := range f.Data {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(real(v))))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(imag(v))))
	}
	return buf, nil
}

// Unmarshal parses one datagram into a frame.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("airproto: short frame (%d bytes)", len(b))
	}
	f := &Frame{
		Kind:  b[0],
		Code:  b[1],
		ID:    binary.LittleEndian.Uint32(b[2:6]),
		Label: int32(binary.LittleEndian.Uint32(b[6:10])),
	}
	if f.Kind > maxKind {
		return nil, fmt.Errorf("airproto: unknown frame kind %d", f.Kind)
	}
	n := int(binary.LittleEndian.Uint16(b[10:12]))
	if n > MaxVector {
		return nil, fmt.Errorf("airproto: vector length %d exceeds %d", n, MaxVector)
	}
	if len(b) < HeaderLen+8*n {
		return nil, fmt.Errorf("airproto: truncated frame: %d bytes for n=%d", len(b), n)
	}
	f.Data = make([]complex128, n)
	off := HeaderLen
	for i := range f.Data {
		re := math.Float32frombits(binary.LittleEndian.Uint32(b[off : off+4]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(b[off+4 : off+8]))
		f.Data[i] = complex(float64(re), float64(im))
		off += 8
	}
	return f, nil
}
