package airproto

import (
	"bytes"
	"testing"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	b, err := Heartbeat(42).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindHeartbeat || got.ID != 42 || len(got.Data) != 0 {
		t.Fatalf("heartbeat lost fields: %+v", got)
	}

	health := []float64{3, 17, 2, 1234, 5, 1, 2}
	b, err = HeartbeatReply(42, health).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	hv := got.HealthVector()
	if len(hv) != HBVectorLen {
		t.Fatalf("health vector length %d, want %d", len(hv), HBVectorLen)
	}
	for i, v := range health {
		if hv[i] != v {
			t.Fatalf("health[%d] = %v, want %v", i, hv[i], v)
		}
	}
	// A short (older-replica) reply zero-pads instead of panicking.
	short := HeartbeatReply(42, []float64{9})
	short.Data = short.Data[:1]
	if hv := short.HealthVector(); hv[HBFleetSeq] != 9 || hv[HBEpochSeq] != 0 {
		t.Fatalf("short health vector mishandled: %v", hv)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	b, err := Join(7, 12, 34, 0xabcde).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindJoin || got.ID != 7 {
		t.Fatalf("join lost fields: %+v", got)
	}
	fs, ls, nonce := got.JoinInfo()
	if fs != 12 || ls != 34 || nonce != 0xabcde {
		t.Fatalf("join info (%d, %d, %#x), want (12, 34, 0xabcde)", fs, ls, nonce)
	}
	if fs, ls, nonce := (&Frame{Kind: KindJoin}).JoinInfo(); fs != 0 || ls != 0 || nonce != 0 {
		t.Fatalf("empty join decoded to (%d, %d, %d)", fs, ls, nonce)
	}
	// An older single-sample join (no nonce) still yields its sequences.
	short := Join(7, 5, 6, 1)
	short.Data = short.Data[:1]
	if fs, ls, nonce := short.JoinInfo(); fs != 5 || ls != 6 || nonce != 0 {
		t.Fatalf("nonce-less join decoded to (%d, %d, %d)", fs, ls, nonce)
	}
}

func TestEpochChunkRoundTrip(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	f, err := EpochChunk(99, PushCanary, 2, 5, payload, 600, 1500, 0xf0f0f0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindEpochPush || got.Code != PushCanary || got.ID != 99 {
		t.Fatalf("chunk lost header: %+v", got)
	}
	idx, total := got.ChunkInfo()
	if idx != 2 || total != 5 {
		t.Fatalf("chunk info (%d, %d), want (2, 5)", idx, total)
	}
	chunk, offset, totalLen, nonce, ok := got.ChunkPayload()
	if !ok {
		t.Fatal("valid chunk rejected")
	}
	if offset != 600 || totalLen != 1500 || nonce != 0xf0f0f0 || !bytes.Equal(chunk, payload) {
		t.Fatalf("chunk payload corrupted: offset %d, total %d, nonce %#x, %d bytes", offset, totalLen, nonce, len(chunk))
	}
}

func TestEpochChunkNonceSurvivesFloat32(t *testing.T) {
	// The nonce rides a float32 sample: every 24-bit value must round-trip
	// bit-exactly, including the mask's edges.
	for _, nonce := range []uint32{1, NonceMask, NonceMask - 1, 0x800001, 0xabcdef} {
		f, err := EpochChunk(1, PushCommit, 0, 1, []byte{1}, 0, 1, nonce)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := f.Marshal()
		got, _ := Unmarshal(b)
		if _, _, _, n, ok := got.ChunkPayload(); !ok || n != nonce {
			t.Fatalf("nonce %#x arrived as %#x (ok=%v)", nonce, n, ok)
		}
	}
}

func TestEpochChunkOddLength(t *testing.T) {
	// Odd byte counts pad the final imaginary slot; the length header must
	// still recover the exact byte string.
	f, err := EpochChunk(1, PushCommit, 0, 1, []byte{1, 2, 3}, 0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := f.Marshal()
	got, _ := Unmarshal(b)
	chunk, offset, totalLen, _, ok := got.ChunkPayload()
	if !ok || offset != 0 || totalLen != 3 || !bytes.Equal(chunk, []byte{1, 2, 3}) {
		t.Fatalf("odd chunk corrupted: %v (offset %d, total %d, ok %v)", chunk, offset, totalLen, ok)
	}
}

func TestEpochChunkRejectsMalformed(t *testing.T) {
	if _, err := EpochChunk(1, PushCommit, 0, 1, make([]byte, MaxChunkBytes+1), 0, MaxChunkBytes+1, 0); err == nil {
		t.Error("oversized chunk accepted")
	}
	if _, err := EpochChunk(1, PushCommit, 3, 3, nil, 0, 0, 0); err == nil {
		t.Error("out-of-range chunk index accepted")
	}
	if _, err := EpochChunk(1, PushCommit, 0, 0x10000, nil, 0, 0, 0); err == nil {
		t.Error("chunk total beyond the 16-bit label field accepted")
	}
	if _, err := EpochChunk(1, PushCommit, 0, 2, []byte{1, 2}, 99, 100, 0); err == nil {
		t.Error("chunk overrunning the transfer accepted")
	}
	// Transfers past the float32-exact cap would ship rounded offsets.
	if _, err := EpochChunk(1, PushCommit, 0, 2, []byte{1, 2}, 0, MaxTransferBytes+1, 0); err == nil {
		t.Error("transfer beyond the float32-exact cap accepted")
	}
	// A frame whose length header claims more bytes than its payload holds
	// must not enter reassembly.
	f, _ := EpochChunk(1, PushCommit, 0, 2, []byte{1, 2, 3, 4}, 0, 100, 0)
	f.Data[0] = complex(50, 100) // claims 50 bytes, carries 4
	if _, _, _, _, ok := f.ChunkPayload(); ok {
		t.Error("length-lying chunk accepted")
	}
	f.Data[0] = complex(4, 2) // total shorter than the chunk itself
	if _, _, _, _, ok := f.ChunkPayload(); ok {
		t.Error("total-lying chunk accepted")
	}
	f.Data[0] = complex(4, 100)
	f.Data[1] = complex(98, 0) // offset pushes the chunk past the transfer end
	if _, _, _, _, ok := f.ChunkPayload(); ok {
		t.Error("offset-lying chunk accepted")
	}
	f.Data[0] = complex(4, float64(MaxTransferBytes)+4096) // rounded/hostile total
	f.Data[1] = complex(0, 0)
	if _, _, _, _, ok := f.ChunkPayload(); ok {
		t.Error("over-cap total accepted on receive")
	}
	if _, _, _, _, ok := (&Frame{Kind: KindEpochPush}).ChunkPayload(); ok {
		t.Error("headerless chunk accepted")
	}
}

func TestEpochChunkDigestDetectsTamper(t *testing.T) {
	// Every field the digest covers: flipping any of them after build must
	// make ChunkPayload refuse the frame, because a chunk corrupted in
	// flight (airproto frames carry no payload checksum of their own) would
	// otherwise land garbage bytes at a valid offset or open a phantom
	// transfer under a mangled ID.
	build := func() *Frame {
		f, err := EpochChunk(7, PushCommit, 1, 3, []byte{9, 8, 7, 6, 5}, 16, 48, 0xabcdef)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	tampers := []struct {
		name string
		mut  func(f *Frame)
	}{
		{"transfer ID", func(f *Frame) { f.ID ^= 1 }},
		{"push mode", func(f *Frame) { f.Code ^= 1 }},
		{"chunk index/total", func(f *Frame) { f.Label ^= 1 << 16 }},
		{"byte offset", func(f *Frame) { f.Data[1] = complex(real(f.Data[1])+2, imag(f.Data[1])) }},
		{"nonce", func(f *Frame) { f.Data[1] = complex(real(f.Data[1]), imag(f.Data[1])+1) }},
		{"digest itself", func(f *Frame) { f.Data[2] = complex(real(f.Data[2])+1, imag(f.Data[2])) }},
		{"payload byte", func(f *Frame) { f.Data[3] = complex(real(f.Data[3])+1, imag(f.Data[3])) }},
		{"truncated payload", func(f *Frame) { f.Data = f.Data[:len(f.Data)-1]; f.Data[0] = complex(2, 48) }},
	}
	for _, tc := range tampers {
		f := build()
		tc.mut(f)
		if _, _, _, _, ok := f.ChunkPayload(); ok {
			t.Errorf("tampered %s accepted", tc.name)
		}
	}
	// And the untampered frame still round-trips through the wire.
	b, err := build().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if chunk, off, totalLen, nonce, ok := got.ChunkPayload(); !ok ||
		off != 16 || totalLen != 48 || nonce != 0xabcdef || !bytes.Equal(chunk, []byte{9, 8, 7, 6, 5}) {
		t.Fatalf("clean chunk refused: %v (offset %d, total %d, nonce %#x, ok %v)", chunk, off, totalLen, nonce, ok)
	}
}

func TestEpochAckRoundTrip(t *testing.T) {
	// Intermediate chunk ack: no payload.
	b, err := EpochAck(5, 3, AckChunk, 0, 0, 9).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindEpochAck || got.Code != AckChunk || len(got.Data) != 0 {
		t.Fatalf("chunk ack lost fields: %+v", got)
	}
	if idx, _, _, _ := got.AckInfo(); idx != 3 {
		t.Fatalf("chunk ack index %d, want 3", idx)
	}

	// Completing ack: verdict plus (agreement, seq) and the echoed nonce.
	b, err = EpochAck(5, 4, AckApplied, 0.875, 11, 0x1234).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	idx, agree, seq, nonce := got.AckInfo()
	if got.Code != AckApplied || idx != 4 || agree != 0.875 || seq != 11 || nonce != 0x1234 {
		t.Fatalf("final ack decoded to (%d, %v, %d, %#x, code %d)", idx, agree, seq, nonce, got.Code)
	}
}
