package airproto

import "time"

// Deadline budgets ride the Code byte of KindData frames: the client stamps
// how much time the answer is still worth, each forwarding hop (the fleet
// router's hedged failover) re-stamps the remaining budget, and the serving
// replica checks it once more at dequeue — work that can no longer make its
// deadline is answered with StatusExpired instead of burning inference time.
// One byte at DeadlineUnit granularity covers 10ms..2.55s, which brackets
// every latency the serving stack targets; 0 means "no deadline" and is what
// every pre-deadline client already sends.
const (
	// DeadlineUnit is the resolution of the wire deadline budget.
	DeadlineUnit = 10 * time.Millisecond
	// MaxDeadline is the largest budget one byte can carry.
	MaxDeadline = 255 * DeadlineUnit
)

// EncodeDeadline converts a deadline budget to its wire byte, rounding up to
// the next DeadlineUnit so a small positive budget never truncates to "no
// deadline", and clamping at MaxDeadline. Non-positive budgets encode as 0
// (no deadline).
func EncodeDeadline(d time.Duration) uint8 {
	if d <= 0 {
		return 0
	}
	units := (d + DeadlineUnit - 1) / DeadlineUnit
	if units > 255 {
		units = 255
	}
	return uint8(units)
}

// DecodeDeadline converts a wire deadline byte back to a duration; 0 decodes
// to 0 (no deadline).
func DecodeDeadline(code uint8) time.Duration {
	return time.Duration(code) * DeadlineUnit
}

// Deadline returns the frame's remaining deadline budget, or 0 if the frame
// carries none. Only data frames carry budgets — on every other kind the
// Code byte means something else (NACK status, push mode, ack verdict), so
// Deadline reports 0 for them.
func (f *Frame) Deadline() time.Duration {
	if f.Kind != KindData {
		return 0
	}
	return DecodeDeadline(f.Code)
}

// SetDeadline stamps a deadline budget onto a data frame (no-op on other
// kinds, whose Code byte is not a budget).
func (f *Frame) SetDeadline(d time.Duration) {
	if f.Kind != KindData {
		return
	}
	f.Code = EncodeDeadline(d)
}

// ExpiredNack answers request id with StatusExpired; late says how far past
// its deadline the request was when the server looked at it.
func ExpiredNack(id uint32, late time.Duration) *Frame {
	ms := late.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > 1<<31-1 {
		ms = 1<<31 - 1
	}
	return Nack(id, StatusExpired, int32(ms))
}

// RetryAfterNack answers request id with StatusRetryAfter and a suggested
// wait before retrying (milliseconds on the Label field, rounded up so a
// sub-millisecond hint is never silently zero).
func RetryAfterNack(id uint32, wait time.Duration) *Frame {
	ms := (wait + time.Millisecond - 1) / time.Millisecond
	if ms < 0 {
		ms = 0
	}
	if ms > 1<<31-1 {
		ms = 1<<31 - 1
	}
	return Nack(id, StatusRetryAfter, int32(ms))
}

// RetryAfterHint returns the suggested wait carried by a StatusRetryAfter
// NACK, or 0 for any other frame.
func (f *Frame) RetryAfterHint() time.Duration {
	if f.Kind != KindNack || f.Code != StatusRetryAfter || f.Label < 0 {
		return 0
	}
	return time.Duration(f.Label) * time.Millisecond
}
