package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependentAndReproducible(t *testing.T) {
	p1, p2 := New(7), New(7)
	c1, c2 := p1.Split(), p2.Split()
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split children not reproducible at draw %d", i)
		}
	}
	// Parent stream continues deterministically after a split.
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("parent streams diverge after split")
	}
}

func TestSplitChildrenIndependentOfConsumptionOrder(t *testing.T) {
	// Each child's stream is fixed at Split time: draining one sibling
	// before or after the other must not change either stream. This is the
	// property per-worker sessions rely on for reproducible parallel runs.
	const draws = 100
	drain := func(s *Source) []uint64 {
		out := make([]uint64, draws)
		for i := range out {
			out[i] = s.Uint64()
		}
		return out
	}
	p1 := New(7)
	a1, b1 := p1.Split(), p1.Split()
	seqA1, seqB1 := drain(a1), drain(b1) // a first, then b

	p2 := New(7)
	a2, b2 := p2.Split(), p2.Split()
	seqB2, seqA2 := drain(b2), drain(a2) // b first, then a

	for i := 0; i < draws; i++ {
		if seqA1[i] != seqA2[i] {
			t.Fatalf("child A diverges at draw %d when sibling is consumed first", i)
		}
		if seqB1[i] != seqB2[i] {
			t.Fatalf("child B diverges at draw %d when sibling is consumed first", i)
		}
	}
	// And the two children are genuinely distinct streams.
	same := 0
	for i := 0; i < draws; i++ {
		if seqA1[i] == seqB1[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling children produced %d/%d identical draws", same, draws)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(3)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Normal(2.0, 3.0)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("mean = %v, want ≈ 2.0", mean)
	}
	if math.Abs(variance-9.0) > 0.3 {
		t.Errorf("variance = %v, want ≈ 9.0", variance)
	}
}

func TestComplexNormalMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	var re, im, pw float64
	for i := 0; i < n; i++ {
		z := s.ComplexNormal(2.0)
		re += real(z)
		im += imag(z)
		pw += real(z)*real(z) + imag(z)*imag(z)
	}
	if math.Abs(re/n) > 0.02 || math.Abs(im/n) > 0.02 {
		t.Errorf("complex normal mean = (%v, %v), want ≈ 0", re/n, im/n)
	}
	if math.Abs(pw/n-2.0) > 0.05 {
		t.Errorf("complex normal power = %v, want ≈ 2.0", pw/n)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{0.5, 1.0}, {1.0, 2.0}, {2.0, 1.5}, {4.0, 0.5}, {9.0, 3.0},
	}
	for _, c := range cases {
		s := New(5)
		const n = 200000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := s.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative sample %v", c.shape, c.scale, x)
			}
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ≈ %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance = %v, want ≈ %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaDegenerateParams(t *testing.T) {
	s := New(6)
	if got := s.Gamma(0, 1); got != 0 {
		t.Errorf("Gamma(0,1) = %v, want 0", got)
	}
	if got := s.Gamma(1, 0); got != 0 {
		t.Errorf("Gamma(1,0) = %v, want 0", got)
	}
	if got := s.Gamma(-1, 1); got != 0 {
		t.Errorf("Gamma(-1,1) = %v, want 0", got)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(3.0)
	}
	if math.Abs(sum/n-3.0) > 0.1 {
		t.Errorf("exponential mean = %v, want ≈ 3.0", sum/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	err := quick.Check(func(raw uint8) bool {
		n := int(raw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPhaseRange(t *testing.T) {
	s := New(10)
	for i := 0; i < 1000; i++ {
		p := s.Phase()
		if p < 0 || p >= 2*math.Pi {
			t.Fatalf("phase %v out of [0, 2π)", p)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestIntNBounds(t *testing.T) {
	s := New(12)
	for i := 0; i < 1000; i++ {
		v := s.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d out of range", v)
		}
	}
}
