// Package rng provides deterministic, seedable random sources and the
// distribution samplers the MetaAI simulation relies on: Gaussian and
// circularly-symmetric complex Gaussian noise, Gamma-distributed clock
// synchronization residuals (§3.5.1 of the paper models coarse-detection
// error as Gamma), and permutation / subset helpers for dataset shuffling.
//
// Every stochastic component in the repository draws from an *rng.Source so
// that experiments are reproducible end to end from a single seed.
package rng

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random source. It wraps math/rand/v2's PCG
// generator with the distribution samplers used across the simulator.
// A Source is not safe for concurrent use; derive independent child sources
// with Split for parallel work.
type Source struct {
	r   *rand.Rand
	pcg *rand.PCG
}

// New returns a Source seeded with seed. Equal seeds yield identical streams.
func New(seed uint64) *Source {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Source{r: rand.New(pcg), pcg: pcg}
}

// Split derives an independent child source. The child's stream is a pure
// function of the parent's state at the time of the call, so a fixed call
// sequence yields reproducible children.
func (s *Source) Split() *Source {
	pcg := rand.NewPCG(s.r.Uint64(), s.r.Uint64())
	return &Source{r: rand.New(pcg), pcg: pcg}
}

// SplitInto re-seeds child to the exact stream a fresh Split would return,
// reusing its storage: the parent consumes the same two draws, and the
// child's subsequent output is bit-identical to a newly allocated split.
// A nil child falls back to Split. This is the allocation-free derivation
// hot inference loops use once per transmission.
func (s *Source) SplitInto(child *Source) *Source {
	if child == nil {
		return s.Split()
	}
	child.pcg.Seed(s.r.Uint64(), s.r.Uint64())
	return child
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform sample in [0, n).
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// ComplexNormal returns a circularly-symmetric complex Gaussian sample with
// total variance sigma2 (variance sigma2/2 per real dimension). This is the
// standard model for both thermal receiver noise and small-scale fading
// scatter components.
func (s *Source) ComplexNormal(sigma2 float64) complex128 {
	return s.ComplexNormalSD(math.Sqrt(sigma2 / 2))
}

// ComplexNormalSD is ComplexNormal with the per-dimension standard deviation
// sd = sqrt(sigma2/2) precomputed by the caller: it consumes the same two
// draws and returns the same bits, but hoists the square root out of
// per-symbol loops that sample a fixed variance millions of times.
func (s *Source) ComplexNormalSD(sd float64) complex128 {
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// Phase returns a uniform phase in [0, 2π).
func (s *Source) Phase() float64 { return 2 * math.Pi * s.r.Float64() }

// Gamma returns a sample from the Gamma distribution with the given shape
// and scale parameters (mean shape*scale). It uses the Marsaglia–Tsang
// squeeze method for shape >= 1 and the Johnk-style boost for shape < 1.
// The paper uses Gamma(σ, β) to model residual synchronization error after
// coarse-grained detection (Fig 12) and to seed CDFA's cyclic-shift
// injector (§3.5.1).
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := s.r.Float64()
		for u == 0 {
			u = s.r.Float64()
		}
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := s.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Exponential returns a sample from the exponential distribution with the
// given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements via the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.r.Float64() < p }
