package waveform

import (
	"fmt"
	"math"

	"repro/internal/cplx"
	"repro/internal/modem"
)

// OFDMLink verifies the subcarrier-parallelism mechanism (§3.3, Eqn 9) at
// sample level. The meta-atoms' frequency selectivity is, in the time
// domain, a per-atom delay: the metasurface path is a tapped delay line
// whose tap m carries gain e^{j(φ^p_m + φ_state_m)} at delay d_m samples.
// Transmitting OFDM blocks through it and demodulating yields, on
// subcarrier k,
//
//	H_k = Σ_m gain_m · e^{−j2π·k·d_m/N}
//
// — one effective weight per subcarrier from a single configuration,
// exactly the frequency-domain model package parallel deploys against.
// Tests confirm the demodulated per-subcarrier responses match this
// closed form and that the delays give distinct subcarriers independently
// steerable weights.
type OFDMLink struct {
	// Mod is the OFDM modulator (N subcarriers, CP samples). The CP must
	// cover the largest atom delay.
	Mod *modem.OFDM
	// Gains[m] is atom m's complex gain e^{j(φ^p_m+φ_state)}.
	Gains []complex128
	// DelaySamples[m] is atom m's group delay in samples (0 ≤ d ≤ CP).
	DelaySamples []int
}

// NewOFDMLink validates and builds the link.
func NewOFDMLink(mod *modem.OFDM, gains []complex128, delays []int) (*OFDMLink, error) {
	if mod == nil {
		return nil, fmt.Errorf("waveform: nil OFDM modulator")
	}
	if len(gains) != len(delays) {
		return nil, fmt.Errorf("waveform: %d gains vs %d delays", len(gains), len(delays))
	}
	for m, d := range delays {
		if d < 0 || d > mod.CP {
			return nil, fmt.Errorf("waveform: atom %d delay %d outside [0, CP=%d]", m, d, mod.CP)
		}
	}
	return &OFDMLink{Mod: mod, Gains: gains, DelaySamples: delays}, nil
}

// SubcarrierWeights returns the closed-form per-subcarrier effective
// weights H_k of the configuration.
func (l *OFDMLink) SubcarrierWeights() cplx.Vec {
	n := l.Mod.N
	out := make(cplx.Vec, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for m, g := range l.Gains {
			sum += g * cplx.Expi(-2*math.Pi*float64(k)*float64(l.DelaySamples[m])/float64(n))
		}
		out[k] = sum
	}
	return out
}

// TransmitBlock sends one OFDM block carrying the given per-subcarrier
// symbols through the dispersive metasurface path and returns the
// demodulated per-subcarrier samples. Inter-block interference is absorbed
// by the CP (prev supplies the previous block's time-domain tail, nil for
// silence).
func (l *OFDMLink) TransmitBlock(freq []complex128, prev []complex128) ([]complex128, []complex128) {
	td := l.Mod.Modulate(freq)
	rx := make([]complex128, len(td))
	for m, g := range l.Gains {
		d := l.DelaySamples[m]
		for t := range rx {
			src := t - d
			var s complex128
			if src >= 0 {
				s = td[src]
			} else if prev != nil {
				// The tail of the previous block spills into our CP.
				s = prev[len(prev)+src]
			}
			rx[t] += g * s
		}
	}
	return l.Mod.Demodulate(rx), td
}

// Accumulate runs U blocks, block i carrying symbol x[i] on every
// subcarrier while the per-block gain set cycles through configs (one gain
// vector per block) — the §3.3 transmission pattern. It returns the
// per-subcarrier accumulators Σ_i H_k(cfg_i)·x_i.
func AccumulateOFDM(mod *modem.OFDM, configs [][]complex128, delays []int, x []complex128) (cplx.Vec, error) {
	if len(configs) != len(x) {
		return nil, fmt.Errorf("waveform: %d configs for %d symbols", len(configs), len(x))
	}
	acc := make(cplx.Vec, mod.N)
	var prev []complex128
	for i, sym := range x {
		link, err := NewOFDMLink(mod, configs[i], delays)
		if err != nil {
			return nil, err
		}
		freq := make([]complex128, mod.N)
		for k := range freq {
			freq[k] = sym
		}
		got, td := link.TransmitBlock(freq, prev)
		prev = td
		for k := range acc {
			acc[k] += got[k]
		}
	}
	return acc, nil
}
