package waveform

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func randSymbols(n int, src *rng.Source) []complex128 {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(src.IntN(256))
	}
	return modem.ModulateBytes(data, modem.QAM256)
}

func randWeights(n int, src *rng.Source) cplx.Vec {
	w := make(cplx.Vec, n)
	for i := range w {
		w[i] = src.ComplexNormal(100)
	}
	return w
}

func TestValidation(t *testing.T) {
	l := DefaultLink(nil, 0)
	l.ChipsPerSymbol = 3
	if _, err := l.TransmitOne(cplx.Vec{1}, []complex128{1}, nil); err == nil {
		t.Error("expected error for odd chip count")
	}
	l = DefaultLink(nil, 0)
	l.CPChips = -1
	if _, err := l.TransmitOne(cplx.Vec{1}, []complex128{1}, nil); err == nil {
		t.Error("expected error for negative CP")
	}
	l = DefaultLink(nil, 0)
	if _, err := l.TransmitOne(cplx.Vec{1, 2}, []complex128{1}, nil); err == nil {
		t.Error("expected error for weight/symbol mismatch")
	}
}

func TestNoiselessNoEnvMatchesInnerProduct(t *testing.T) {
	// With no environment and no noise, the chip-level accumulator must be
	// exactly Σ H_i·x_i.
	src := rng.New(1)
	x := randSymbols(32, src)
	w := randWeights(len(x), src)
	l := DefaultLink(nil, 0)
	got, err := l.TransmitOne(w, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Dot(cplx.Vec(x))
	if cmplx.Abs(got-want) > 1e-9*cmplx.Abs(want) {
		t.Fatalf("accumulator %v, want inner product %v", got, want)
	}
}

func TestStaticMultipathCancelsExactly(t *testing.T) {
	// THE §3.2 claim, verified at chip level: any static delay spread inside
	// the CP contributes exactly zero, for every delay profile.
	src := rng.New(2)
	x := randSymbols(24, src)
	w := randWeights(len(x), src)
	clean := DefaultLink(nil, 0)
	want, err := clean.TransmitOne(w, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		nTaps := 1 + src.IntN(3)
		maxDelay := 0
		if nTaps > 1 {
			maxDelay = 1 + src.IntN(2)
		}
		env, err := channel.NewTappedDelayLine(nTaps, maxDelay, 50, src)
		if err != nil {
			t.Fatal(err)
		}
		l := DefaultLink(env, 0)
		got, err := l.TransmitOne(w, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(got-want) > 1e-6*cmplx.Abs(want) {
			t.Fatalf("trial %d: multipath leaked %v (want %v, env power %v)",
				trial, got-want, want, env.TotalPower())
		}
	}
}

func TestCancellationNeedsInSymbolFlipping(t *testing.T) {
	// Without the MTS flipping within the symbol, the receiver's zero-mean
	// integration kills the MTS path too — the whole accumulator collapses.
	src := rng.New(3)
	x := randSymbols(24, src)
	w := randWeights(len(x), src)
	l := DefaultLink(nil, 0)
	l.FlipWithChips = false
	got, err := l.TransmitOne(w, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := w.Dot(cplx.Vec(x))
	if cmplx.Abs(got) > 1e-6*cmplx.Abs(ref) {
		t.Fatalf("static MTS should integrate to ~0 under zero-mean chips, got %v (ref %v)", got, ref)
	}
}

func TestDelayBeyondCPLeaks(t *testing.T) {
	// A tap arriving after the CP window is NOT cancelled — the reason the
	// paper uses a standard CP sized to the delay spread.
	src := rng.New(4)
	x := randSymbols(24, src)
	w := randWeights(len(x), src)
	env := &channel.TappedDelayLine{Taps: []channel.Tap{{DelayChips: 3, Gain: 30}}}
	l := DefaultLink(env, 0) // CP = 2 < delay 3
	got, err := l.TransmitOne(w, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := DefaultLink(nil, 0)
	want, _ := clean.TransmitOne(w, x, nil)
	if cmplx.Abs(got-want) < 1e-3*cmplx.Abs(want) {
		t.Fatal("delay beyond the CP should leak into the accumulator")
	}
	// Growing the CP to cover the tap restores exact cancellation.
	l.CPChips = 3
	got, err = l.TransmitOne(w, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got-want) > 1e-6*cmplx.Abs(want) {
		t.Fatalf("CP=3 should cover the tap: residual %v", got-want)
	}
}

func TestLargerChipCountsAlsoCancel(t *testing.T) {
	src := rng.New(5)
	x := randSymbols(16, src)
	w := randWeights(len(x), src)
	for _, p := range []int{2, 4, 8} {
		env, err := channel.NewTappedDelayLine(3, p, 40, src)
		if err != nil {
			t.Fatal(err)
		}
		l := Link{ChipsPerSymbol: p, CPChips: p, Env: env, FlipWithChips: true}
		got, err := l.TransmitOne(w, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		clean := Link{ChipsPerSymbol: p, CPChips: p, FlipWithChips: true}
		want, _ := clean.TransmitOne(w, x, nil)
		if cmplx.Abs(got-want) > 1e-6*cmplx.Abs(want) {
			t.Fatalf("P=%d: residual %v", p, got-want)
		}
	}
}

func TestNoiseVarianceScaling(t *testing.T) {
	// After /P normalization, the accumulator noise variance over U symbols
	// is U·σ²/P… verify the combiner does not silently amplify noise.
	src := rng.New(6)
	const U = 16
	x := make([]complex128, U)
	w := make(cplx.Vec, U) // zero weights isolate the noise
	l := DefaultLink(nil, 2.0)
	var pw float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		acc, err := l.TransmitOne(w, x, src)
		if err != nil {
			t.Fatal(err)
		}
		pw += real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	want := float64(U) * 2.0 / float64(l.ChipsPerSymbol)
	if math.Abs(pw/trials-want) > 0.1*want {
		t.Fatalf("accumulator noise power %v, want %v", pw/trials, want)
	}
}

// TestChipLevelMatchesAnalyticEngine deploys a real trained model and checks
// that the chip-level simulation and the analytic ota engine agree on the
// noiseless accumulators and on end-to-end accuracy.
func TestChipLevelMatchesAnalyticEngine(t *testing.T) {
	ds := dataset.MustLoad("afhq", dataset.Quick, 1)
	enc := nn.Encoder{Scheme: modem.QAM256}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	model := nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 20})

	src := rng.New(7)
	surface, _ := mts.NewSurface(16, 16, 2, 5.25, nil)
	sys, err := ota.Deploy(model.Weights(), ota.IdealOptions(surface), src)
	if err != nil {
		t.Fatal(err)
	}
	// Chip-level classifier sharing the realized responses, no noise/env.
	wf := &Classifier{Link: DefaultLink(nil, 0), Realized: sys.Realized}
	// The analytic digital twin of the same responses.
	twin := nn.NewComplexLNN(sys.Classes(), sys.InputLen())
	copy(twin.W.Val, sys.Realized.Data)
	for _, x := range test.X[:60] {
		if wf.Predict(x) != twin.Predict(x) {
			t.Fatal("chip-level and analytic predictions disagree on a noiseless link")
		}
	}
	// With heavy static multipath, the chip-level system holds the same
	// accuracy (cancellation) as the clean link.
	env, err := channel.NewTappedDelayLine(3, 2, 0.5*cmplx.Abs(sys.Realized.Data[0]), src)
	if err != nil {
		t.Fatal(err)
	}
	wfEnv := &Classifier{Link: DefaultLink(env, 0), Realized: sys.Realized}
	agree := 0
	for _, x := range test.X[:60] {
		if wfEnv.Predict(x) == twin.Predict(x) {
			agree++
		}
	}
	if agree < 60 {
		t.Fatalf("multipath changed %d/60 chip-level predictions despite cancellation", 60-agree)
	}
}
