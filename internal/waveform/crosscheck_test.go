package waveform

import (
	"math/cmplx"
	"testing"

	"repro/internal/cplx"
	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// TestParallelDeploymentMatchesOFDMWaveform is the end-to-end consistency
// check between the three layers of the subcarrier-parallelism stack:
//
//  1. parallel.Deploy solves shared per-symbol configurations against an
//     integer-delay dispersion plan (the frequency-domain model);
//  2. the realized responses predict per-subcarrier accumulators
//     Σ_i H_k(cfg_i)·x_i;
//  3. chip-accurate OFDM transmission (IFFT + CP through the per-atom
//     tapped delays, then FFT) must reproduce those accumulators exactly.
func TestParallelDeploymentMatchesOFDMWaveform(t *testing.T) {
	ds := dataset.MustLoad("afhq", dataset.Quick, 1)
	enc := nn.Encoder{Scheme: modem.QAM256}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	model := nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 10})

	src := rng.New(9)
	surface, err := mts.NewSurface(16, 16, 2, 5.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	const nSub = 4 // power of two for the OFDM size; classes use the first 3
	cp := 2
	delays := make([]int, surface.Atoms())
	for m := range delays {
		delays[m] = src.IntN(cp + 1)
	}
	geom := mts.DefaultGeometry()
	plan, err := parallel.NewSubcarrierPlanIntegerDelays(surface, geom, nSub, delays)
	if err != nil {
		t.Fatal(err)
	}
	opts := parallel.NewOptions(src.Split())
	opts.Surface = surface
	opts.JitterStd = 0
	sys, err := parallel.Deploy(model.Weights(), plan, opts, src)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Transmissions() != 1 {
		t.Fatalf("3 classes on 4 subcarriers should take 1 transmission, got %d", sys.Transmissions())
	}

	mod, err := modem.NewOFDM(nSub, cp)
	if err != nil {
		t.Fatal(err)
	}
	states := surface.States()
	base := plan.Paths[0] // channel k=0 carries the undelayed path phases
	x := train.X[0]

	// Frequency-domain prediction from the deployment's realized responses.
	want := make(cplx.Vec, ds.Classes)
	for r := 0; r < ds.Classes; r++ {
		want[r] = sys.Realized.Row(r).Dot(cplx.Vec(x))
	}

	// Chip-accurate OFDM transmission of the same schedule.
	gains := make([][]complex128, len(x))
	for i := range x {
		cfg := sys.Configs[0][i]
		g := make([]complex128, surface.Atoms())
		for m := range g {
			g[m] = cplx.Expi(base[m] + states[cfg[m]])
		}
		gains[i] = g
	}
	acc, err := AccumulateOFDM(mod, gains, delays, x)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ds.Classes; r++ {
		if cmplx.Abs(acc[r]-want[r]) > 1e-6*(1+cmplx.Abs(want[r])) {
			t.Fatalf("class %d: OFDM waveform %v, frequency model %v", r, acc[r], want[r])
		}
	}
	// And the classification decisions agree.
	if cplx.Argmax(acc[:ds.Classes].Abs()) != cplx.Argmax(want.Abs()) {
		t.Fatal("waveform and frequency-model decisions disagree")
	}
}

// TestIntegerDelayPlanValidation covers the new constructor's error paths.
func TestIntegerDelayPlanValidation(t *testing.T) {
	surface, _ := mts.NewSurface(4, 4, 2, 5.25, nil)
	if _, err := parallel.NewSubcarrierPlanIntegerDelays(surface, mts.DefaultGeometry(), 0, make([]int, 16)); err == nil {
		t.Error("expected error for zero subcarriers")
	}
	if _, err := parallel.NewSubcarrierPlanIntegerDelays(surface, mts.DefaultGeometry(), 4, make([]int, 3)); err == nil {
		t.Error("expected error for delay-count mismatch")
	}
}
