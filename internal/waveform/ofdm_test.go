package waveform

import (
	"math/cmplx"
	"testing"

	"repro/internal/cplx"
	"repro/internal/modem"
	"repro/internal/rng"
)

func testOFDM(t *testing.T) *modem.OFDM {
	t.Helper()
	mod, err := modem.NewOFDM(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func randLink(t *testing.T, mod *modem.OFDM, atoms int, src *rng.Source) *OFDMLink {
	t.Helper()
	gains := make([]complex128, atoms)
	delays := make([]int, atoms)
	for m := range gains {
		gains[m] = cplx.Expi(src.Phase())
		delays[m] = src.IntN(mod.CP + 1)
	}
	l, err := NewOFDMLink(mod, gains, delays)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewOFDMLinkValidation(t *testing.T) {
	mod := testOFDM(t)
	if _, err := NewOFDMLink(nil, nil, nil); err == nil {
		t.Error("expected error for nil modulator")
	}
	if _, err := NewOFDMLink(mod, make([]complex128, 2), make([]int, 3)); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := NewOFDMLink(mod, []complex128{1}, []int{mod.CP + 1}); err == nil {
		t.Error("expected error for delay beyond CP")
	}
}

// TestDemodMatchesClosedForm is the §3.3 mechanism check: transmitting an
// OFDM block through the dispersive MTS path and demodulating yields, per
// subcarrier, exactly H_k = Σ_m gain_m·e^{−j2πkd_m/N} times the carried
// symbol — one weight per subcarrier from one configuration.
func TestDemodMatchesClosedForm(t *testing.T) {
	mod := testOFDM(t)
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		l := randLink(t, mod, 24, src)
		want := l.SubcarrierWeights()
		freq := make([]complex128, mod.N)
		for k := range freq {
			freq[k] = src.ComplexNormal(1)
		}
		got, _ := l.TransmitBlock(freq, nil)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]*freq[k]) > 1e-9*(1+cmplx.Abs(want[k])) {
				t.Fatalf("trial %d subcarrier %d: demod %v, want %v", trial, k, got[k], want[k]*freq[k])
			}
		}
	}
}

func TestZeroDelayMeansFlatWeights(t *testing.T) {
	// Without dispersion every subcarrier sees the same weight — the reason
	// subcarrier parallelism needs frequency-selective atoms at all.
	mod := testOFDM(t)
	src := rng.New(2)
	gains := make([]complex128, 16)
	delays := make([]int, 16)
	for m := range gains {
		gains[m] = cplx.Expi(src.Phase())
	}
	l, err := NewOFDMLink(mod, gains, delays)
	if err != nil {
		t.Fatal(err)
	}
	w := l.SubcarrierWeights()
	for k := 1; k < len(w); k++ {
		if cmplx.Abs(w[k]-w[0]) > 1e-9 {
			t.Fatalf("flat channel produced distinct subcarrier weights: %v vs %v", w[k], w[0])
		}
	}
}

func TestDispersionDecorrelatesSubcarriers(t *testing.T) {
	// With per-atom delays, two different configurations steer the
	// subcarrier-weight vectors in substantially different directions —
	// which is what lets the joint solver assign independent targets.
	mod := testOFDM(t)
	src := rng.New(3)
	delays := make([]int, 32)
	for m := range delays {
		delays[m] = src.IntN(mod.CP + 1)
	}
	mkGains := func() []complex128 {
		g := make([]complex128, 32)
		for m := range g {
			g[m] = cplx.Expi(float64(src.IntN(4)) * 0.5 * 3.14159265)
		}
		return g
	}
	l1, _ := NewOFDMLink(mod, mkGains(), delays)
	l2, _ := NewOFDMLink(mod, mkGains(), delays)
	w1, w2 := l1.SubcarrierWeights(), l2.SubcarrierWeights()
	// Normalized correlation of the two weight vectors should be modest.
	corr := cmplx.Abs(w1.HermDot(w2)) / (w1.Norm() * w2.Norm())
	if corr > 0.8 {
		t.Fatalf("independent configs produced correlated subcarrier weights (%.3f)", corr)
	}
}

func TestAccumulateOFDMMatchesFrequencyModel(t *testing.T) {
	// The block-sequential accumulation Σ_i H_k(cfg_i)·x_i — the §3.3
	// transmission pattern — must match the frequency-domain prediction,
	// including inter-block CP absorption.
	mod := testOFDM(t)
	src := rng.New(4)
	const U = 12
	delays := make([]int, 20)
	for m := range delays {
		delays[m] = src.IntN(mod.CP + 1)
	}
	configs := make([][]complex128, U)
	x := make([]complex128, U)
	want := make(cplx.Vec, mod.N)
	for i := range configs {
		g := make([]complex128, 20)
		for m := range g {
			g[m] = cplx.Expi(src.Phase())
		}
		configs[i] = g
		x[i] = src.ComplexNormal(1)
		l, _ := NewOFDMLink(mod, g, delays)
		w := l.SubcarrierWeights()
		for k := range want {
			want[k] += w[k] * x[i]
		}
	}
	got, err := AccumulateOFDM(mod, configs, delays, x)
	if err != nil {
		t.Fatal(err)
	}
	for k := range got {
		if cmplx.Abs(got[k]-want[k]) > 1e-9*(1+cmplx.Abs(want[k])) {
			t.Fatalf("subcarrier %d: accumulated %v, want %v", k, got[k], want[k])
		}
	}
	if _, err := AccumulateOFDM(mod, configs[:2], delays, x); err == nil {
		t.Error("expected error for config/symbol mismatch")
	}
}
