// Package waveform simulates MetaAI transmissions at chip granularity — the
// time-domain ground truth beneath the analytic per-symbol engine of
// package ota. It exists to *verify* the §3.2 multipath-cancellation
// mechanism rather than assume it:
//
//   - each symbol expands into P zero-mean chips (±x, the DC-balanced
//     waveform of Fig 8(a)) preceded by a cyclic prefix;
//   - the metasurface flips its configuration sign in sync with the chip
//     pattern (its 2.56 MHz switching rate supports P = 2 at 1 Msym/s);
//   - the environment is a tapped delay line applied to the actual chip
//     stream;
//   - the receiver integrates (plain sum) over each symbol's chip window
//     after dropping the CP.
//
// Over the integration window, any environmental tap with delay inside the
// CP sees a cyclically shifted zero-mean chip pattern and integrates to
// exactly zero, while the MTS path — whose sign flips track the chips —
// accumulates coherently to P·H·x. Package tests check this identity
// exactly, show that it breaks without the in-symbol flipping and for
// delays beyond the CP, and confirm the chip-level accumulators match the
// analytic ota engine.
package waveform

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/modem"
	"repro/internal/rng"
)

// Link describes one chip-level transmission configuration.
type Link struct {
	// ChipsPerSymbol is P, the zero-mean chips per symbol (positive, even).
	ChipsPerSymbol int
	// CPChips is the cyclic prefix length in chips; it must cover the
	// environment's delay spread for exact cancellation.
	CPChips int
	// Env is the environmental multipath (nil for none).
	Env *channel.TappedDelayLine
	// NoiseSigma2 is the per-chip complex noise variance.
	NoiseSigma2 float64
	// FlipWithChips enables the §3.2 scheme: the MTS flips its configuration
	// sign in sync with the chip pattern. Disabling it models a metasurface
	// that holds one configuration per symbol — the receiver's zero-mean
	// integration then cancels the MTS path too, which is exactly why the
	// scheme needs the in-symbol switching.
	FlipWithChips bool
}

// DefaultLink mirrors the prototype: P = 2 chips (the most the controller
// sustains), CP of 2 chips, flipping enabled.
func DefaultLink(env *channel.TappedDelayLine, noiseSigma2 float64) Link {
	return Link{
		ChipsPerSymbol: 2,
		CPChips:        2,
		Env:            env,
		NoiseSigma2:    noiseSigma2,
		FlipWithChips:  true,
	}
}

func (l Link) validate() error {
	if l.ChipsPerSymbol <= 0 || l.ChipsPerSymbol%2 != 0 {
		return fmt.Errorf("waveform: ChipsPerSymbol %d must be positive and even", l.ChipsPerSymbol)
	}
	if l.CPChips < 0 {
		return fmt.Errorf("waveform: negative CP %d", l.CPChips)
	}
	return nil
}

// chipStream expands the symbol vector into the transmitted chip sequence:
// per symbol, CPChips of cyclic prefix followed by the P zero-mean chips.
// It also returns the parallel MTS modulation stream (the per-chip complex
// factor the metasurface path applies) for the given per-symbol responses.
func (l Link) chipStream(weights cplx.Vec, x []complex128) (tx, mtsMod []complex128) {
	p := l.ChipsPerSymbol
	signs := modem.ChipSigns(p)
	block := l.CPChips + p
	tx = make([]complex128, len(x)*block)
	mtsMod = make([]complex128, len(x)*block)
	for i, sym := range x {
		base := i * block
		// Data chips for this symbol.
		for c := 0; c < p; c++ {
			tx[base+l.CPChips+c] = complex(signs[c], 0) * sym
		}
		// Cyclic prefix: the chip the periodic pattern would carry at time
		// offset c−CP before the data window (valid for any CP length).
		for c := 0; c < l.CPChips; c++ {
			idx := ((c-l.CPChips)%p + p) % p
			tx[base+c] = complex(signs[idx], 0) * sym
		}
		// The MTS applies weight[i] during the whole block, flipping sign in
		// chip sync when the scheme is on. The flip pattern covers the CP
		// too (the controller plays the same cyclic pattern).
		for c := 0; c < block; c++ {
			f := complex(1, 0)
			if l.FlipWithChips {
				// Flip pattern aligned with the data chips; the CP chips
				// carry the cyclically matching flips.
				idx := (c - l.CPChips + p*block) % p
				f = complex(signs[idx], 0)
			}
			mtsMod[base+c] = weights[i] * f
		}
	}
	return tx, mtsMod
}

// TransmitOne runs one output neuron's transmission: the symbol stream x
// against the per-symbol MTS responses, through the environment, with
// receiver noise, returning the accumulated complex output (Eqn 3's inner
// sum before the magnitude), normalized by the chip count so it is directly
// comparable with the analytic engine.
func (l Link) TransmitOne(weights cplx.Vec, x []complex128, src *rng.Source) (complex128, error) {
	if err := l.validate(); err != nil {
		return 0, err
	}
	if len(weights) != len(x) {
		return 0, fmt.Errorf("waveform: %d weights for %d symbols", len(weights), len(x))
	}
	tx, mtsMod := l.chipStream(weights, x)
	// Received stream: MTS path (instantaneous) + environment (tapped).
	rx := make([]complex128, len(tx))
	for t := range tx {
		rx[t] = mtsMod[t] * tx[t]
	}
	if l.Env != nil {
		envRx := l.Env.Apply(tx)
		for t := range rx {
			rx[t] += envRx[t]
		}
	}
	if l.NoiseSigma2 > 0 && src != nil {
		for t := range rx {
			rx[t] += src.ComplexNormal(l.NoiseSigma2)
		}
	}
	// Receiver: drop each CP, integrate the P chips of each symbol with the
	// synchronized sign pattern removed by the MTS flips themselves — the
	// combiner is a plain sum, which is what kills any static channel.
	p := l.ChipsPerSymbol
	block := l.CPChips + p
	var acc complex128
	for i := range x {
		base := i*block + l.CPChips
		var sum complex128
		for c := 0; c < p; c++ {
			sum += rx[base+c]
		}
		acc += sum
	}
	// The MTS path accumulates P·Σ H_i·x_i·sign²; normalize by P.
	return acc / complex(float64(p), 0), nil
}

// Accumulate runs every output's transmission (sequential scheme) against
// the realized response matrix, mirroring ota.System.Accumulate at chip
// level.
func (l Link) Accumulate(realized *cplx.Mat, x []complex128, src *rng.Source) (cplx.Vec, error) {
	if realized.Cols != len(x) {
		return nil, fmt.Errorf("waveform: realized U=%d, input %d", realized.Cols, len(x))
	}
	out := make(cplx.Vec, realized.Rows)
	for r := 0; r < realized.Rows; r++ {
		acc, err := l.TransmitOne(realized.Row(r), x, src)
		if err != nil {
			return nil, err
		}
		out[r] = acc
	}
	return out, nil
}

// Classifier wraps realized responses with chip-level transmission so it
// can stand in anywhere an nn.Predictor is expected.
type Classifier struct {
	Link     Link
	Realized *cplx.Mat
	Src      *rng.Source
}

// Logits returns |accumulator| per class via chip-level simulation.
func (c *Classifier) Logits(x []complex128) []float64 {
	acc, err := c.Link.Accumulate(c.Realized, x, c.Src)
	if err != nil {
		panic(err)
	}
	return acc.Abs()
}

// Predict classifies one encoded input.
func (c *Classifier) Predict(x []complex128) int {
	return cplx.Argmax(c.Logits(x))
}
