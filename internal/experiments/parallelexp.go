package experiments

import (
	"fmt"

	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func init() {
	register(Runner{ID: "fig18", Title: "Parallelism schemes: sequential vs subcarrier vs antenna", Run: runFig18})
	register(Runner{ID: "fig31", Title: "Accuracy/latency vs number of subcarriers and antennas", Run: runFig31})
}

func runFig18(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "fig18", Title: "Parallelism schemes on three datasets",
		Headers: []string{"dataset", "sequential", "subcarrier", "antenna", "tx(seq)", "tx(par)"},
		Notes:   []string{"paper: both schemes show only slight degradation versus the baseline"},
	}
	for _, name := range []string{"mnist", "fruits360", "widar3"} {
		train, test, err := c.Sets(name, modem.QAM256)
		if err != nil {
			return nil, err
		}
		m := c.Model(name+"/plain", func() *nn.ComplexLNN {
			return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		})
		r := train.Classes
		// Sequential baseline.
		src := rng.New(c.Seed ^ hashSalt("f18s-"+name))
		seqSys, err := ota.Deploy(m.Weights(), ota.NewOptions(src.Split()), src)
		if err != nil {
			return nil, err
		}
		seqAcc := c.EvalSys(seqSys, test)
		// Subcarrier scheme: K = R subcarriers at 40 kHz spacing (§5.2).
		subAcc, _, err := parallelEval(c, m, "sub", name, r, test)
		if err != nil {
			return nil, err
		}
		// Antenna scheme: L = R antennas.
		antAcc, antTx, err := parallelEval(c, m, "ant", name, r, test)
		if err != nil {
			return nil, err
		}
		res.AddRow(name,
			pct(seqAcc), pct(subAcc), pct(antAcc),
			fmt.Sprintf("%d", seqSys.TransmissionsPerInference()),
			fmt.Sprintf("%d", antTx),
		)
	}
	return res, nil
}

// parallelEval deploys one parallel scheme with n channels and returns its
// accuracy and transmission count.
func parallelEval(c *Ctx, m *nn.ComplexLNN, kind, name string, n int, test *nn.EncodedSet) (float64, int, error) {
	src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("f18-%s-%s-%d", kind, name, n)))
	opts := parallel.NewOptions(src.Split())
	var plan *parallel.Plan
	var err error
	if len(kind) >= 3 && kind[:3] == "sub" {
		plan, err = parallel.NewSubcarrierPlan(opts.Surface, mts.DefaultGeometry(), n, 40e3, src.Split())
	} else {
		plan, err = parallel.NewAntennaPlan(opts.Surface, mts.DefaultGeometry(), n, 0)
	}
	if err != nil {
		return 0, 0, err
	}
	sys, err := parallel.Deploy(m.Weights(), plan, opts, src)
	if err != nil {
		return 0, 0, err
	}
	return c.EvalParSys(sys, test), sys.Transmissions(), nil
}

func runFig31(c *Ctx) (*Result, error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, err
	}
	m := c.Model("mnist/plain", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
	})
	res := &Result{
		ID: "fig31", Title: "Parallelism degree sweep (MNIST)",
		Headers: []string{"channels", "subcarrier_acc", "antenna_acc", "transmissions"},
		Notes:   []string{"paper: accuracy declines gradually as channels grow; latency falls proportionally"},
	}
	ns := []int{1, 2, 4, 6, 8, 10}
	rows, err := c.sweep(len(ns), func(i int) ([]string, error) {
		n := ns[i]
		subAcc, _, err := parallelEval(c, m, "sub31", "mnist", n, test)
		if err != nil {
			return nil, err
		}
		antAcc, tx, err := parallelEval(c, m, "ant31", "mnist", n, test)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%d", n), pct(subAcc), pct(antAcc), fmt.Sprintf("%d", tx)}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}
