package experiments

import (
	"strings"
	"testing"
)

func TestMarkdownRendering(t *testing.T) {
	r := &Result{
		ID: "figX", Title: "A|Title",
		Headers: []string{"col|a", "b"},
		Notes:   []string{"note with | pipe"},
	}
	r.AddRow("1|2", "3")
	var sb strings.Builder
	if err := r.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, w := range []string{
		"### figX — A|Title",
		"| col\\|a | b |",
		"| --- | --- |",
		"| 1\\|2 | 3 |",
		"> note with \\| pipe",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("markdown missing %q:\n%s", w, out)
		}
	}
}

func TestMarkdownEmptyResult(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Headers: []string{"a"}}
	var sb strings.Builder
	if err := r.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| a |") {
		t.Fatalf("empty result malformed:\n%s", sb.String())
	}
}
