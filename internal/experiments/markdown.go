package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Markdown renders the result as a GitHub-flavored markdown section — the
// format EXPERIMENTS.md records measured values in (metaai-bench -md).
func (r *Result) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	cells := make([]string, len(r.Headers))
	for i, h := range r.Headers {
		cells[i] = esc(h)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(r.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		out := make([]string, len(row))
		for i, c := range row {
			out[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(out, " | ")); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", esc(n)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
