package experiments

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/ota"
	"repro/internal/rng"
)

func init() {
	register(Runner{ID: "abl-faults", Title: "Ablation: discrete fault injection vs air accuracy, with and without self-healing", Run: runAblFaults})
}

// ablFaultRates is the sweep behind the abl-faults table: the canonical
// faults.Mix severity from healthy to half the surface stuck. The middle
// rate is the acceptance point for the self-healing recovery claim.
var ablFaultRates = []float64{0, 0.25, 0.5, 0.75}

// runAblFaults regenerates the fault-injection ablation for the repo's
// degraded-mode subsystem: one healthy deployment, the faults.Mix load at
// each severity, accuracy before and after the masked-atom re-solve. Two
// invariants are enforced, not just reported: the zero-rate point must be
// BIT-identical to the unfaulted baseline (same session seed, same
// accumulators — the experiment errors out otherwise, which is what `make
// check` leans on), and the recovered fraction quantifies how much of the
// degradation the heal wins back.
func runAblFaults(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	src := rng.New(c.Seed ^ hashSalt("ablf"))
	d, err := ota.NewDeployment(m.Weights(), ota.NewOptions(src.Split()), src)
	if err != nil {
		return nil, err
	}
	// Every evaluation replays the same session seed, so accuracy deltas
	// come from the faults alone, never from resampled channel noise.
	sessSeed := c.Seed ^ hashSalt("ablf-sess")
	baseline := c.Eval(d.NewSession(rng.New(sessSeed)), test)

	type point struct {
		stuck            int
		faulted, healed  float64
		resBroken, resOK float64
	}
	pts := make([]point, len(ablFaultRates))
	if _, err := c.sweep(len(ablFaultRates), func(i int) ([]string, error) {
		rate := ablFaultRates[i]
		faultSeed := c.Seed ^ hashSalt(fmt.Sprintf("ablf-%v", rate))
		// Two injectors from the SAME fault seed: the second heals before
		// deriving its session, so both sessions see the identical stuck
		// population AND the identical dynamic fault realizations (same
		// hook stream split). The faulted-vs-healed delta then isolates
		// exactly what the masked re-solve buys.
		broken, err := faults.New(d, faults.Mix(rate), rng.New(faultSeed))
		if err != nil {
			return nil, err
		}
		p := point{stuck: len(broken.StuckAtoms()), resBroken: broken.ResidualError()}
		p.faulted = c.Eval(broken.Session(rng.New(sessSeed)), test)
		healed, err := faults.New(d, faults.Mix(rate), rng.New(faultSeed))
		if err != nil {
			return nil, err
		}
		if _, err := healed.Heal(); err != nil {
			return nil, err
		}
		p.resOK = healed.ResidualError()
		p.healed = c.Eval(healed.Session(rng.New(sessSeed)), test)
		pts[i] = p
		return nil, nil
	}); err != nil {
		return nil, err
	}
	if pts[0].faulted != baseline || pts[0].healed != baseline {
		return nil, fmt.Errorf("abl-faults: zero-rate bit-identity violated: baseline %.6f, faulted %.6f, healed %.6f",
			baseline, pts[0].faulted, pts[0].healed)
	}

	res := &Result{
		ID: "abl-faults", Title: "Fault injection vs air accuracy (faults.Mix load, masked-atom self-healing)",
		Headers: []string{"fault_rate", "stuck_atoms", "faulted", "self-healed", "recovered"},
		Notes: []string{
			fmt.Sprintf("unfaulted baseline: %s%%; rate 0 is asserted bit-identical to it", pct(baseline)),
			"recovered = (healed − faulted) / (baseline − faulted); dynamic faults (glitch/erasure/burst/collapse) persist through healing",
		},
	}
	for i, rate := range ablFaultRates {
		p := pts[i]
		rec := "-"
		if drop := baseline - p.faulted; drop > 0 {
			rec = pct((p.healed - p.faulted) / drop)
		}
		res.AddRow(fmt.Sprintf("%.2f", rate), fmt.Sprintf("%d", p.stuck), pct(p.faulted), pct(p.healed), rec)
	}
	return res, nil
}
