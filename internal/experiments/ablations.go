package experiments

import (
	"fmt"
	"math/cmplx"

	"repro/internal/channel"
	"repro/internal/clocksync"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func init() {
	register(Runner{ID: "abl-quantize", Title: "Ablation: train-then-quantize vs discrete-from-scratch", Run: runAblQuantize})
	register(Runner{ID: "abl-solver", Title: "Ablation: greedy-only vs coordinate-descent config solver", Run: runAblSolver})
	register(Runner{ID: "abl-subsamples", Title: "Ablation: within-symbol sample count for multipath cancellation", Run: runAblSubSamples})
	register(Runner{ID: "abl-injector", Title: "Ablation: Gamma-matched vs uniform sync-error injection", Run: runAblInjector})
}

func runAblQuantize(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "abl-quantize", Title: "Continuous-then-approximate vs discrete-from-scratch (over the air)",
		Headers: []string{"dataset", "train-then-quantize", "discrete-from-scratch"},
		Notes:   []string{"the design choice behind Table 1's DiscreteNN comparison"},
	}
	for _, name := range []string{"mnist", "fashion"} {
		train, test, err := c.Sets(name, modem.QAM256)
		if err != nil {
			return nil, err
		}
		cont := c.Model(name+"/plain", func() *nn.ComplexLNN {
			return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		})
		disc := nn.TrainDiscrete(train, 4, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		contAir, err := deployEval(c, cont.Weights(), test, "ablq-c-"+name)
		if err != nil {
			return nil, err
		}
		discAir, err := deployEval(c, disc.QuantizedWeights(), test, "ablq-d-"+name)
		if err != nil {
			return nil, err
		}
		res.AddRow(name, pct(contAir), pct(discAir))
	}
	return res, nil
}

func runAblSolver(c *Ctx) (*Result, error) {
	// Compare approximation error and resulting accuracy between the greedy
	// initialization alone and the refined coordinate-descent solver.
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	surface := mts.Prototype(rng.New(c.Seed ^ 0xab1))
	pp := surface.PathPhases(mts.DefaultGeometry())
	maxR := surface.MaxResponse(pp)
	gamma := 0.6 * maxR / m.Weights().MaxAbs()
	var errGreedy, errCD float64
	w := m.Weights()
	for i, wv := range w.Data {
		target := wv * complex(gamma, 0)
		_, got := surface.SolveTargetGreedy(target, pp)
		errGreedy += cmplx.Abs(got - target)
		_, got = surface.SolveTarget(target, pp)
		errCD += cmplx.Abs(got - target)
		_ = i
	}
	n := float64(len(w.Data))
	res := &Result{
		ID: "abl-solver", Title: "Config solver refinement",
		Headers: []string{"solver", "mean_abs_error/maxR", "air_accuracy"},
		Notes:   []string{"greedy matches phase only; coordinate descent also matches magnitude"},
	}
	// Accuracy with each solver: rebuild systems. The System always uses the
	// refined solver, so emulate greedy-only by deploying a weight matrix of
	// greedy-realized responses via a digital twin... instead, evaluate the
	// realized responses directly through a digital LNN carrying them.
	evalRealized := func(solve func(complex128, []float64) (mts.Config, complex128)) float64 {
		twin := nn.NewComplexLNN(w.Rows, w.Cols)
		for i, wv := range w.Data {
			_, got := solve(wv*complex(gamma, 0), pp)
			twin.W.Val[i] = got
		}
		return c.Eval(twin, test)
	}
	accG := evalRealized(surface.SolveTargetGreedy)
	accC := evalRealized(surface.SolveTarget)
	res.AddRow("greedy-only", f3(errGreedy/n/maxR), pct(accG))
	res.AddRow("greedy+coordinate-descent", f3(errCD/n/maxR), pct(accC))
	return res, nil
}

func runAblSubSamples(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "abl-subsamples", Title: "Within-symbol sampling for multipath cancellation (laboratory, omni)",
		Headers: []string{"sub_samples", "accuracy"},
		Notes:   []string{"0 disables the scheme; 2 is the most the 2.56 MHz controller sustains at 1 Msym/s"},
	}
	subs := []int{0, 2}
	rows, err := c.sweep(len(subs), func(i int) ([]string, error) {
		sub := subs[i]
		src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("ablss-%d", sub)))
		opts := ota.NewOptions(src.Split())
		opts.Channel.Env = channel.Laboratory
		opts.Channel.Antenna = channel.Omni
		opts.SubSamples = sub
		sys, err := ota.Deploy(m.Weights(), opts, src)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%d", sub), pct(c.EvalSys(sys, test))}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

func runAblInjector(c *Ctx) (*Result, error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, err
	}
	d := clocksync.DefaultDetector()
	gamma := c.Model("mnist/cdfa-paper", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{
			Seed: c.Seed, Epochs: c.Epochs(),
			InputAug: clocksync.Injector(d, 1e6),
		})
	})
	uniform := c.Model("mnist/cdfa-uniform", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{
			Seed: c.Seed, Epochs: c.Epochs(),
			InputAug: clocksync.UniformInjector(12, 1e6),
		})
	})
	res := &Result{
		ID: "abl-injector", Title: "CDFA injector distribution under coarse-detection offsets",
		Headers: []string{"injector", "accuracy"},
		Notes:   []string{"the paper argues for Gamma-matched injection (Fig 12's observed distribution)"},
	}
	ag, err := syncEval(c, gamma, clocksync.CoarseSampler(d, 1e6), "abli-g", test)
	if err != nil {
		return nil, err
	}
	au, err := syncEval(c, uniform, clocksync.CoarseSampler(d, 1e6), "abli-u", test)
	if err != nil {
		return nil, err
	}
	res.AddRow("Gamma-matched", pct(ag))
	res.AddRow("uniform[0,12us]", pct(au))
	return res, nil
}

func init() {
	register(Runner{ID: "abl-jitter", Title: "Ablation: exact per-atom jitter vs closed-form approximation", Run: runAblJitter})
	register(Runner{ID: "ext-perclass", Title: "Extension: per-class precision/recall/F1, simulation vs prototype", Run: runExtPerClass})
}

// runAblJitter validates the engine's hardware-jitter model: per-atom phase
// errors ε~N(0,σ²) are approximated in closed form (mean attenuation
// e^{−σ²/2} plus CLT scatter of variance M·(1−e^{−σ²})); the exact
// atom-by-atom evaluation must land at the same accuracy.
func runAblJitter(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "abl-jitter", Title: "Jitter model fidelity",
		Headers: []string{"jitter_std_rad", "approximate", "exact"},
		Notes:   []string{"the closed form (used by default for O(1) per-symbol cost) must track the exact path"},
	}
	stds := []float64{0.05, 0.15, 0.3}
	accs := make([]float64, 2*len(stds))
	if _, err := c.sweep(len(accs), func(i int) ([]string, error) {
		std, exact := stds[i/2], i%2 == 1
		src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("ablj-%v-%v", std, exact)))
		opts := ota.NewOptions(src.Split())
		opts.JitterStd = std
		opts.ExactJitter = exact
		sys, err := ota.Deploy(m.Weights(), opts, src)
		if err != nil {
			return nil, err
		}
		accs[i] = c.EvalSys(sys, test)
		return nil, nil
	}); err != nil {
		return nil, err
	}
	for j, std := range stds {
		res.AddRow(fmt.Sprintf("%.2f", std), pct(accs[2*j]), pct(accs[2*j+1]))
	}
	return res, nil
}

// runExtPerClass reports the per-class health of a deployment: macro F1 and
// the weakest class, digital vs over the air — the monitoring view an
// operator of a deployed MetaAI system would watch.
func runExtPerClass(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	src := rng.New(c.Seed ^ hashSalt("extpc"))
	sys, err := ota.Deploy(m.Weights(), ota.NewOptions(src.Split()), src)
	if err != nil {
		return nil, err
	}
	capped := c.Cap(test)
	res := &Result{
		ID: "ext-perclass", Title: "Per-class metrics (MNIST), simulation vs prototype",
		Headers: []string{"model", "accuracy", "macro_F1", "min_class_F1", "top3_accuracy"},
	}
	report := func(name string, p interface {
		nn.Predictor
		nn.LogitsPredictor
	}, cm [][]int) {
		met := nn.MetricsFromConfusion(cm)
		minF1 := 1.0
		for _, f := range met.F1 {
			if f < minF1 {
				minF1 = f
			}
		}
		var acc float64
		if c.workerCount() <= 1 {
			// A separate serial pass, preserving the historical stream order.
			acc = nn.Evaluate(p, capped)
		} else {
			// Accuracy from the confusion trace: one fanned-out pass, and the
			// figure agrees with the matrix it sits next to.
			var correct, totalN int
			for r := range cm {
				for col, v := range cm[r] {
					totalN += v
					if col == r {
						correct += v
					}
				}
			}
			acc = float64(correct) / float64(totalN)
		}
		res.AddRow(name, pct(acc), f3(met.MacroF1), f3(minF1), pct(nn.TopKAccuracy(p, capped, 3)))
	}
	report("simulation", m, nn.Confusion(m, capped))
	report("prototype", sys, c.ConfusionSys(sys, test))
	return res, nil
}
