package experiments

import (
	"fmt"

	"repro/internal/clocksync"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func init() {
	register(Runner{ID: "fig20", Title: "Multi-sensor fusion across three datasets", Run: runFig20})
	register(Runner{ID: "fig28", Title: "Real-time face recognition case study", Run: runFig28})
}

func runFig20(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "fig20", Title: "Accuracy vs number of fused sensors (over the air, shared MTS)",
		Headers: []string{"dataset", "sensors", "sim", "prototype"},
		Notes: []string{
			"paper: Multi-PIE 64.58 -> 89.58 with 3 views (+25); USC-HAD cross-modality gain +27.06",
		},
	}
	enc := nn.Encoder{Scheme: modem.QAM256}
	for _, name := range dataset.MultiNames() {
		md, err := dataset.LoadMulti(name, c.Scale, c.Seed)
		if err != nil {
			return nil, err
		}
		for k := 1; k <= len(md.Views); k++ {
			train, test, err := fusion.EncodeViews(md, k, enc)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s/fused-%d", name, k)
			m := c.Model(key, func() *nn.ComplexLNN {
				// Prototype conditions include coarse-detection sync, so the
				// fused weights train with the CDFA injector like every
				// other deployed model.
				det := clocksync.ScaledDetector(train.U)
				return nn.TrainLNN(train, nn.TrainConfig{
					Seed: c.Seed, Epochs: c.Epochs(),
					InputAug: clocksync.Injector(det, 1e6),
				})
			})
			air, err := deployEval(c, m.Weights(), test, key)
			if err != nil {
				return nil, err
			}
			res.AddRow(name, fmt.Sprintf("%d", k), pct(c.Eval(m, test)), pct(air))
		}
	}
	return res, nil
}

func runFig28(c *Ctx) (*Result, error) {
	fc := dataset.LoadFaceCase(c.Seed)
	enc := nn.Encoder{Scheme: modem.QAM256}
	train := nn.EncodeSet(fc.Train, fc.Classes, enc)
	test := nn.EncodeSet(fc.Test, fc.Classes, enc)
	m := c.Model("facecase/cdfa", func() *nn.ComplexLNN {
		det := clocksync.ScaledDetector(train.U)
		return nn.TrainLNN(train, nn.TrainConfig{
			Seed: c.Seed, Epochs: c.Epochs(),
			InputAug: clocksync.Injector(det, 1e6),
		})
	})
	src := rng.New(c.Seed ^ hashSalt("f28"))
	opts := ota.NewOptions(src.Split())
	opts.SyncSampler = clocksync.CoarseSampler(clocksync.ScaledDetector(train.U), opts.SymbolRateHz)
	sys, err := ota.Deploy(m.Weights(), opts, src)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig28", Title: "IoT-camera face recognition, per volunteer",
		Headers: []string{"volunteer", "accuracy"},
		Notes:   []string{"paper: 78.54% average over ten volunteers in five backgrounds"},
	}
	// One predictor per volunteer: the shared default session serially (the
	// historical bit-exact path), or independent per-volunteer sessions of
	// the one deployment when the context fans out.
	predict := make([]nn.Predictor, fc.Classes)
	if c.workerCount() > 1 {
		for v, s := range sys.Sessions(fc.Classes) {
			predict[v] = s
		}
	} else {
		for v := range predict {
			predict[v] = sys
		}
	}
	accs := make([]float64, fc.Classes)
	if _, err := c.sweep(fc.Classes, func(v int) ([]string, error) {
		correct := 0
		for k := 0; k < fc.PerUser; k++ {
			s := fc.Test[v*fc.PerUser+k]
			if predict[v].Predict(enc.Encode(s.X)) == s.Label {
				correct++
			}
		}
		accs[v] = float64(correct) / float64(fc.PerUser)
		return nil, nil
	}); err != nil {
		return nil, err
	}
	var total float64
	for v, acc := range accs {
		total += acc
		res.AddRow(fmt.Sprintf("user%d", v+1), pct(acc))
	}
	res.AddRow("average", pct(total/float64(fc.Classes)))
	_ = test
	return res, nil
}
