// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and the appendices). Each experiment is a registered
// Runner that builds its workload, sweeps its parameter, runs the relevant
// baselines, and returns a formatted Result whose rows mirror the paper's
// table/series. DESIGN.md carries the experiment ↔ module index;
// EXPERIMENTS.md records paper-vs-measured values.
//
// Experiments share a Ctx that memoizes encoded datasets and trained
// models, so running the full suite trains each (dataset, scheme, variant)
// combination once.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/parallel"
)

// Ctx carries shared state across experiment runs.
type Ctx struct {
	// Scale selects Quick (default) or Full dataset sizes.
	Scale dataset.Scale
	// Seed drives all randomness.
	Seed uint64
	// EvalCap bounds the test samples per accuracy evaluation (0 = all).
	EvalCap int
	// Workers sets the fan-out of over-the-air evaluations and independent
	// sweep points. 0 or 1 runs everything serially — bit-identical to the
	// historical single-threaded suite; n > 1 evaluates across n sessions
	// of each shared deployment and runs up to n sweep points concurrently
	// (statistically equivalent, not bitwise identical).
	Workers int
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	// mu guards the memo maps: Sets and Model are safe to call from
	// concurrent sweep points. The lock is held across a memo miss's fill
	// (so one key trains exactly once), which means the fill functions must
	// never call back into Sets or Model.
	mu     sync.Mutex
	sets   map[string][2]*nn.EncodedSet
	models map[string]*nn.ComplexLNN
}

// NewCtx returns a context at the given scale.
func NewCtx(scale dataset.Scale, seed uint64) *Ctx {
	return &Ctx{
		Scale:   scale,
		Seed:    seed,
		EvalCap: 200,
		sets:    make(map[string][2]*nn.EncodedSet),
		models:  make(map[string]*nn.ComplexLNN),
	}
}

func (c *Ctx) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Sets returns the encoded train/test sets for a dataset and scheme,
// memoized. Safe for concurrent use.
func (c *Ctx) Sets(name string, scheme modem.Scheme) (*nn.EncodedSet, *nn.EncodedSet, error) {
	key := name + "/" + scheme.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sets[key]; ok {
		return s[0], s[1], nil
	}
	ds, err := dataset.Load(name, c.Scale, c.Seed)
	if err != nil {
		return nil, nil, err
	}
	enc := nn.Encoder{Scheme: scheme}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	c.sets[key] = [2]*nn.EncodedSet{train, test}
	return train, test, nil
}

// Model memoizes a trained model under (dataset, scheme, variant). Safe for
// concurrent use; concurrent callers of the same key block until the first
// finishes training, then share its model.
func (c *Ctx) Model(key string, train func() *nn.ComplexLNN) *nn.ComplexLNN {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[key]; ok {
		return m
	}
	c.logf("training %s", key)
	m := train()
	c.models[key] = m
	return m
}

// Epochs returns the training epochs for the context's scale: the paper's
// 60 at Full, 40 at Quick.
func (c *Ctx) Epochs() int {
	if c.Scale == dataset.Full {
		return 60
	}
	return 40
}

// Cap returns a view of the set limited to EvalCap samples.
func (c *Ctx) Cap(set *nn.EncodedSet) *nn.EncodedSet {
	if c.EvalCap <= 0 || len(set.X) <= c.EvalCap {
		return set
	}
	return &nn.EncodedSet{
		X:       set.X[:c.EvalCap],
		Labels:  set.Labels[:c.EvalCap],
		Classes: set.Classes,
		U:       set.U,
	}
}

// Eval evaluates a predictor on the capped test set.
func (c *Ctx) Eval(p nn.Predictor, set *nn.EncodedSet) float64 {
	return nn.Evaluate(p, c.Cap(set))
}

// workerCount normalizes the Workers knob.
func (c *Ctx) workerCount() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// evalSessions evaluates a deployed over-the-air system on the capped test
// set with the context's worker count: serial through the system's own
// default session at Workers <= 1 (bit-exact with the historical suite),
// fanned out across per-worker sessions otherwise. The sessioned parameter
// is the system's Sessions method (ota.System and parallel.System both
// provide it).
func evalSessions[S nn.Predictor](c *Ctx, serial nn.Predictor, sessioned func(n int) []S, set *nn.EncodedSet) float64 {
	n := c.workerCount()
	if n <= 1 {
		return nn.Evaluate(serial, c.Cap(set))
	}
	ss := sessioned(n)
	return nn.EvaluateParallel(c.Cap(set), n, func(w int) nn.Predictor { return ss[w] })
}

// EvalSys evaluates an ota deployment with the context's worker count.
func (c *Ctx) EvalSys(sys *ota.System, set *nn.EncodedSet) float64 {
	return evalSessions(c, sys, sys.Sessions, set)
}

// ConfusionSys returns the confusion matrix of an ota deployment on the
// capped test set with the context's worker count: serial through the bound
// default session at Workers <= 1, merged per-session matrices otherwise.
func (c *Ctx) ConfusionSys(sys *ota.System, set *nn.EncodedSet) [][]int {
	n := c.workerCount()
	if n <= 1 {
		return nn.Confusion(sys, c.Cap(set))
	}
	ss := sys.Sessions(n)
	return nn.ConfusionParallel(c.Cap(set), n, func(w int) nn.Predictor { return ss[w] })
}

// EvalParSys evaluates a parallel-scheme deployment with the context's
// worker count.
func (c *Ctx) EvalParSys(sys *parallel.System, set *nn.EncodedSet) float64 {
	return evalSessions(c, sys, sys.Sessions, set)
}

// sweep evaluates n independent sweep points, fanning them out across the
// context's workers (serially when Workers <= 1). Ctx.Sets and Ctx.Model
// are mutex-guarded, so point(i) may call them lazily — a memo miss fills
// once while the other workers block on the lock. Resolving them BEFORE the
// sweep is still preferable when convenient: it keeps training off the
// sweep's critical path. Results are returned in index order; the first
// error wins.
func (c *Ctx) sweep(n int, point func(i int) ([]string, error)) ([][]string, error) {
	rows := make([][]string, n)
	workers := c.workerCount()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			row, err := point(i)
			if err != nil {
				return nil, err
			}
			rows[i] = row
		}
		return rows, nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		firstErr atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstErr.Load() != nil {
					return
				}
				row, err := point(i)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				rows[i] = row
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return rows, nil
}

// Result is one regenerated table or figure series.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Runner regenerates one paper artifact.
type Runner struct {
	ID    string
	Title string
	Run   func(c *Ctx) (*Result, error)
}

var registry []Runner

func register(r Runner) {
	registry = append(registry, r)
}

// paperOrder fixes the listing/run order: main-body figures and tables
// first (Fig 6 through Fig 28), then the appendix artifacts, then the
// repository's own ablations.
var paperOrder = []string{
	"fig6", "fig7", "table1",
	"fig12", "fig13", "fig16", "fig17", "fig18", "fig19", "fig20",
	"fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "fig27", "fig28",
	"fig29", "fig30", "fig31", "table2", "table3",
	"ext-compensation", "ext-mobility", "ext-deepmodel", "ext-feedback", "fig-cascade",
	"abl-quantize", "abl-solver", "abl-subsamples", "abl-injector", "abl-jitter", "abl-faults", "ext-perclass",
}

// IDs lists the registered experiment ids in paper order; any runner not in
// the canonical list is appended at the end.
func IDs() []string {
	have := make(map[string]bool, len(registry))
	for _, r := range registry {
		have[r.ID] = true
	}
	out := make([]string, 0, len(registry))
	seen := make(map[string]bool, len(registry))
	for _, id := range paperOrder {
		if have[id] {
			out = append(out, id)
			seen[id] = true
		}
	}
	for _, r := range registry {
		if !seen[r.ID] {
			out = append(out, r.ID)
		}
	}
	return out
}

// Lookup returns the runner for an id.
func Lookup(id string) (Runner, error) {
	for _, r := range registry {
		if r.ID == id {
			return r, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
}

// Run executes one experiment by id.
func Run(id string, c *Ctx) (*Result, error) {
	r, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return r.Run(c)
}

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.2f", 100*x) }

// f3 formats a float with 3 decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
