package experiments

import (
	"fmt"

	"repro/internal/clocksync"
	"repro/internal/cplx"
	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func init() {
	register(Runner{
		ID:    "fig6",
		Title: "Distribution of resultant weights vs meta-atom count (complex-plane coverage)",
		Run:   runFig6,
	})
	register(Runner{
		ID:    "fig7",
		Title: "Recognition accuracy vs number of meta-atoms (saturates at 256)",
		Run:   runFig7,
	})
	register(Runner{
		ID:    "table1",
		Title: "Overall accuracy: ResNet-stand-in / DiscreteNN / MetaAI, simulation and prototype",
		Run:   runTable1,
	})
	register(Runner{
		ID:    "fig30",
		Title: "Weight distribution density (WDD) vs meta-atom count (Appendix A.2)",
		Run:   runFig30,
	})
}

func runFig6(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "fig6", Title: "Resultant-weight coverage of the complex plane",
		Headers: []string{"atoms", "coverage@eps=0.02", "coverage@eps=0.005"},
		Notes: []string{
			"coverage = fraction of the normalized weight disk reachable within eps (denser with more atoms, Fig 6)",
		},
	}
	for _, grid := range []int{4, 8, 16, 32} {
		s, err := mts.NewSurface(grid, grid, 2, 5.25, nil)
		if err != nil {
			return nil, err
		}
		coarse := s.WDD(mts.WDDOptions{Epsilon: 0.02}, nil)
		fine := s.WDD(mts.WDDOptions{Epsilon: 0.005}, nil)
		res.AddRow(fmt.Sprintf("%d", grid*grid), f3(coarse), f3(fine))
	}
	return res, nil
}

func runFig7(c *Ctx) (*Result, error) {
	grids := []int{6, 8, 11, 16, 23}
	res := &Result{
		ID: "fig7", Title: "Accuracy vs meta-atoms, six datasets",
		Headers: []string{"dataset"},
		Notes:   []string{"accuracy saturates around 256 atoms (16x16), the prototype's size"},
	}
	for _, g := range grids {
		res.Headers = append(res.Headers, fmt.Sprintf("M=%d", g*g))
	}
	for _, name := range dataset.Names() {
		train, test, err := c.Sets(name, modem.QAM256)
		if err != nil {
			return nil, err
		}
		model := c.Model(name+"/plain", func() *nn.ComplexLNN {
			return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		})
		cells, err := c.sweep(len(grids), func(i int) ([]string, error) {
			g := grids[i]
			src := rng.New(c.Seed ^ uint64(g))
			surface, err := mts.NewSurface(g, g, 2, 5.25, src.Split())
			if err != nil {
				return nil, err
			}
			opts := ota.NewOptions(src.Split())
			opts.Surface = surface
			opts.Controller = mts.ControllerFor(surface.Atoms())
			sys, err := ota.Deploy(model.Weights(), opts, src)
			if err != nil {
				return nil, err
			}
			return []string{pct(c.EvalSys(sys, test))}, nil
		})
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, cell := range cells {
			row = append(row, cell...)
		}
		res.AddRow(row...)
	}
	return res, nil
}

func runTable1(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "table1", Title: "Performance under different datasets",
		Headers: []string{"dataset", "classes", "Deep(sim)", "DiscNN(sim)", "DiscNN(proto)", "MetaAI(sim)", "MetaAI(proto)"},
		Notes: []string{
			"Deep = small residual CNN standing in for ResNet-18 (DESIGN.md substitution)",
			"expected ordering per dataset: Deep > MetaAI(sim) > MetaAI(proto) > DiscNN(sim) > DiscNN(proto)",
		},
	}
	for _, name := range dataset.Names() {
		ds, err := dataset.Load(name, c.Scale, c.Seed)
		if err != nil {
			return nil, err
		}
		train, test, err := c.Sets(name, modem.QAM256)
		if err != nil {
			return nil, err
		}
		c.logf("table1: %s", name)
		// Deep baseline on raw features.
		deep := nn.TrainDeep(ds.Train, ds.Classes, nn.DeepTrainConfig{Seed: c.Seed, Epochs: 14})
		deepAcc := nn.EvaluateDeep(deep, ds.Test)
		// DiscreteNN: discrete-from-scratch baseline.
		disc := nn.TrainDiscrete(train, 4, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		discSim := c.Eval(disc, test)
		discAir, err := deployEval(c, disc.QuantizedWeights(), test, name+"-disc")
		if err != nil {
			return nil, err
		}
		// MetaAI: the simulation column is the plainly trained continuous
		// model; the prototype column deploys the CDFA-trained weights under
		// coarse-detection sync plus every hardware impairment.
		model := c.Model(name+"/plain", func() *nn.ComplexLNN {
			return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		})
		sim := c.Eval(model, test)
		cdfa := c.Model(name+"/cdfa", func() *nn.ComplexLNN {
			det := clocksync.ScaledDetector(train.U)
			return nn.TrainLNN(train, nn.TrainConfig{
				Seed: c.Seed, Epochs: c.Epochs(),
				InputAug: clocksync.Injector(det, 1e6),
			})
		})
		air, err := deployEval(c, cdfa.Weights(), test, name+"-metaai")
		if err != nil {
			return nil, err
		}
		res.AddRow(name, fmt.Sprintf("%d", ds.Classes), pct(deepAcc), pct(discSim), pct(discAir), pct(sim), pct(air))
	}
	return res, nil
}

// deployEval deploys a weight matrix under the paper's full prototype
// conditions — default geometry and channel, hardware jitter, beam-scanned
// angle, and coarse-detection residual sync error — and returns its
// over-the-air accuracy.
func deployEval(c *Ctx, w *cplx.Mat, test *nn.EncodedSet, salt string) (float64, error) {
	src := rng.New(c.Seed ^ hashSalt(salt))
	opts := ota.NewOptions(src.Split())
	opts.SyncSampler = clocksync.CoarseSampler(clocksync.ScaledDetector(w.Cols), opts.SymbolRateHz)
	sys, err := ota.Deploy(w, opts, src)
	if err != nil {
		return 0, err
	}
	return c.EvalSys(sys, test), nil
}

func runFig30(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "fig30", Title: "WDD vs meta-atoms (eps = 0.002)",
		Headers: []string{"atoms", "WDD"},
		Notes:   []string{"sharp rise then saturation at 256 atoms — the paper's design point"},
	}
	for _, grid := range []int{4, 8, 12, 16, 23, 32} {
		s, err := mts.NewSurface(grid, grid, 2, 5.25, nil)
		if err != nil {
			return nil, err
		}
		res.AddRow(fmt.Sprintf("%d", grid*grid), f3(s.WDD(mts.DefaultWDDOptions(), nil)))
	}
	return res, nil
}

// hashSalt derives a sub-seed from a string.
func hashSalt(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
