package experiments

import (
	"repro/internal/modem"
	"repro/internal/nn"
)

func init() {
	register(Runner{
		ID:    "ext-deepmodel",
		Title: "Extension: digital LNN vs deeper complex MLP (paper §7, model scalability)",
		Run:   runExtDeepModel,
	})
}

// runExtDeepModel quantifies — digitally — the future-work direction of §7:
// what a deeper complex network with modReLU activations adds over the
// single linear layer the metasurface can realize today. On the near-linear
// Table 1 tasks the gap is small (the LNN suffices, the paper's own
// observation); the residual-CNN column shows the remaining headroom a full
// non-linear physical network would chase.
func runExtDeepModel(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "ext-deepmodel", Title: "Linear vs deeper complex models (digital)",
		Headers: []string{"dataset", "LNN", "complex-MLP(1x64)", "complex-MLP(2x64)"},
		Notes: []string{
			"all digital: the MTS can only realize the LNN column today (§7)",
			"near-linear tasks show small gaps; the MLP's value appears on non-linear tasks (see nn's ring test)",
		},
	}
	for _, name := range []string{"mnist", "fashion"} {
		train, test, err := c.Sets(name, modem.QAM256)
		if err != nil {
			return nil, err
		}
		lnn := c.Model(name+"/plain", func() *nn.ComplexLNN {
			return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		})
		mlp1 := nn.TrainMLP(train, []int{64}, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs(), LR: 0.02})
		mlp2 := nn.TrainMLP(train, []int{64, 64}, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs(), LR: 0.02})
		res.AddRow(name, pct(c.Eval(lnn, test)), pct(c.Eval(mlp1, test)), pct(c.Eval(mlp2, test)))
	}
	return res, nil
}
