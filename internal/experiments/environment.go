package experiments

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func init() {
	register(Runner{ID: "fig21", Title: "NLoS corner: accuracy vs Rx-MTS distance", Run: runFig21})
	register(Runner{ID: "fig22", Title: "Frequency bands 2.4 / 3.5 / 5 GHz", Run: runFig22})
	register(Runner{ID: "fig23", Title: "Modulation schemes BPSK..256-QAM", Run: runFig23})
	register(Runner{ID: "fig24", Title: "Tx-MTS distance sweep", Run: runFig24})
	register(Runner{ID: "fig25", Title: "Tx-MTS incidence angle sweep (FoV limit)", Run: runFig25})
	register(Runner{ID: "fig27", Title: "Cross-room deployment over three offices", Run: runFig27})
}

// mnistModel returns the shared plainly-trained MNIST model.
func mnistModel(c *Ctx) (*nn.ComplexLNN, *nn.EncodedSet, error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, nil, err
	}
	m := c.Model("mnist/plain", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
	})
	return m, test, nil
}

// deployWith deploys the model with a caller-mutated option set.
func deployWith(c *Ctx, m *nn.ComplexLNN, salt string, mutate func(*ota.Options)) (*ota.System, error) {
	src := rng.New(c.Seed ^ hashSalt(salt))
	opts := ota.NewOptions(src.Split())
	mutate(&opts)
	return ota.Deploy(m.Weights(), opts, src)
}

func runFig21(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig21", Title: "NLoS corridor corner",
		Headers: []string{"rx_mts_dist_m", "accuracy"},
		Notes:   []string{"paper: average above 76.60% across locations"},
	}
	dists := sweepRange(1, 22, 3)
	rows, err := c.sweep(len(dists), func(i int) ([]string, error) {
		d := dists[i]
		sys, err := deployWith(c, m, fmt.Sprintf("f21-%v", d), func(o *ota.Options) {
			o.Channel.Env = channel.NLoSCorner
			o.Channel.MTSRxDist = d
			o.Geometry.RxDistM = d
		})
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.0f", d), pct(c.EvalSys(sys, test))}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

// sweepRange enumerates the sweep points lo, lo+step, ... up to hi
// inclusive, so fan-out sweeps can index them.
func sweepRange(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

func runFig22(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig22", Title: "Accuracy per frequency band",
		Headers: []string{"band_GHz", "accuracy(mean over locations)"},
		Notes:   []string{"paper: 88.69 / 88.39 / 89.67 for 2.4 / 3.5 / 5 GHz"},
	}
	bands := []float64{2.4, 3.5, 5.0}
	const locations = 5
	// Each point writes its own index; the slice is read only after the
	// sweep barrier.
	accs := make([]float64, len(bands)*locations)
	if _, err := c.sweep(len(accs), func(i int) ([]string, error) {
		f, loc := bands[i/locations], i%locations
		sys, err := deployWith(c, m, fmt.Sprintf("f22-%v-%d", f, loc), func(o *ota.Options) {
			src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("f22s-%v-%d", f, loc)))
			surface, serr := mts.NewSurface(16, 16, 2, f, src)
			if serr != nil {
				panic(serr)
			}
			o.Surface = surface
			o.Channel.FreqGHz = f
			// Random Rx placement per location.
			o.Geometry.RxAngleDeg = -50 + 100*src.Float64()
			o.Geometry.RxDistM = 1 + 4*src.Float64()
		})
		if err != nil {
			return nil, err
		}
		accs[i] = c.EvalSys(sys, test)
		return nil, nil
	}); err != nil {
		return nil, err
	}
	for bi, f := range bands {
		var mean float64
		for loc := 0; loc < locations; loc++ {
			mean += accs[bi*locations+loc]
		}
		res.AddRow(fmt.Sprintf("%.1f", f), pct(mean/locations))
	}
	return res, nil
}

func runFig23(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "fig23", Title: "Accuracy per modulation scheme",
		Headers: []string{"scheme", "U(symbols)", "sim", "prototype"},
		Notes:   []string{"paper: consistently above 88.71% across schemes"},
	}
	for _, scheme := range modem.Schemes() {
		train, test, err := c.Sets("mnist", scheme)
		if err != nil {
			return nil, err
		}
		m := c.Model("mnist/plain-"+scheme.String(), func() *nn.ComplexLNN {
			return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		})
		src := rng.New(c.Seed ^ hashSalt("f23-"+scheme.String()))
		opts := ota.NewOptions(src.Split())
		sys, err := ota.Deploy(m.Weights(), opts, src)
		if err != nil {
			return nil, err
		}
		res.AddRow(scheme.String(), fmt.Sprintf("%d", train.U), pct(c.Eval(m, test)), pct(c.EvalSys(sys, test)))
	}
	return res, nil
}

func runFig24(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig24", Title: "Tx-MTS distance sweep (30 degree incidence)",
		Headers: []string{"tx_mts_dist_m", "accuracy"},
		Notes:   []string{"paper: consistently above 78.94%"},
	}
	dists := sweepRange(1, 22, 3)
	rows, err := c.sweep(len(dists), func(i int) ([]string, error) {
		d := dists[i]
		sys, err := deployWith(c, m, fmt.Sprintf("f24-%v", d), func(o *ota.Options) {
			o.Channel.TxMTSDist = d
			o.Geometry.TxDistM = d
		})
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.0f", d), pct(c.EvalSys(sys, test))}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

func runFig25(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig25", Title: "Tx-MTS incidence angle sweep (1 m radius)",
		Headers: []string{"angle_deg", "accuracy"},
		Notes:   []string{"paper: above 84.85% within the [-60,60] FoV, declining beyond (75.01% at 80 deg)"},
	}
	angles := sweepRange(0, 80, 10)
	rows, err := c.sweep(len(angles), func(i int) ([]string, error) {
		a := angles[i]
		sys, err := deployWith(c, m, fmt.Sprintf("f25-%v", a), func(o *ota.Options) {
			o.Geometry.TxAngleDeg = a
		})
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.0f", a), pct(c.EvalSys(sys, test))}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

func runFig27(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig27", Title: "Cross-room deployment (3 offices, 6 positions each)",
		Headers: []string{"room", "walls", "dist_range_m", "min_acc", "mean_acc"},
		Notes:   []string{"paper: room1 >82.64%, room2 >76.55%, room3 >71.53%"},
	}
	const rooms, positions = 3, 6
	accs := make([]float64, rooms*positions)
	if _, err := c.sweep(len(accs), func(i int) ([]string, error) {
		room, pos := i/positions, i%positions
		baseDist := 2.0 + 5.0*float64(room)
		d := baseDist + float64(pos)
		sys, err := deployWith(c, m, fmt.Sprintf("f27-%d-%d", room, pos), func(o *ota.Options) {
			o.Channel.Env = channel.CrossRoom
			o.Channel.Walls = room
			o.Channel.MTSRxDist = d
			o.Geometry.RxDistM = d
		})
		if err != nil {
			return nil, err
		}
		accs[i] = c.EvalSys(sys, test)
		return nil, nil
	}); err != nil {
		return nil, err
	}
	for room := 0; room < rooms; room++ {
		var minAcc, meanAcc float64 = 1, 0
		for pos := 0; pos < positions; pos++ {
			a := accs[room*positions+pos]
			if a < minAcc {
				minAcc = a
			}
			meanAcc += a
		}
		baseDist := 2.0 + 5.0*float64(room)
		res.AddRow(
			fmt.Sprintf("room%d(P%d-P%d)", room+1, room*positions+1, (room+1)*positions),
			fmt.Sprintf("%d", room),
			fmt.Sprintf("%.0f-%.0f", baseDist, baseDist+positions-1),
			pct(minAcc), pct(meanAcc/positions),
		)
	}
	return res, nil
}
