package experiments

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/mobility"
	"repro/internal/ota"
	"repro/internal/rng"
)

func init() {
	register(Runner{
		ID:    "ext-compensation",
		Title: "Extension: Eqn 8 channel compensation vs zero-mean cancellation, static and dynamic environments",
		Run:   runExtCompensation,
	})
	register(Runner{
		ID:    "ext-mobility",
		Title: "Extension: receiver mobility — accuracy vs angular speed under periodic recalibration (paper §7)",
		Run:   runExtMobility,
	})
}

func runExtCompensation(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "ext-compensation", Title: "Multipath handling: none vs Eqn 8 compensation vs zero-mean cancellation",
		Headers: []string{"environment", "none", "compensation(Eqn8)", "cancellation(zero-mean)"},
		Notes: []string{
			"laboratory/omni multipath; 'dynamic' adds a walking interferer (R3)",
			"the paper's argument: compensation needs a static H_e, cancellation does not",
		},
	}
	run := func(interf channel.InterferenceRegion, comp bool, sub int, salt string) (float64, error) {
		src := rng.New(c.Seed ^ hashSalt(salt))
		opts := ota.NewOptions(src.Split())
		opts.Channel.Env = channel.Laboratory
		opts.Channel.Antenna = channel.Omni
		opts.Channel.Interf = interf
		opts.CompensateEnv = comp
		opts.SubSamples = sub
		sys, err := ota.Deploy(m.Weights(), opts, src)
		if err != nil {
			return 0, err
		}
		return c.EvalSys(sys, test), nil
	}
	cases := []struct {
		label  string
		interf channel.InterferenceRegion
	}{
		{"static", channel.NoInterferer},
		{"dynamic", channel.RegionR3},
	}
	rows, err := c.sweep(len(cases), func(i int) ([]string, error) {
		row := cases[i]
		none, err := run(row.interf, false, 0, "extc-n-"+row.label)
		if err != nil {
			return nil, err
		}
		comp, err := run(row.interf, true, 0, "extc-c-"+row.label)
		if err != nil {
			return nil, err
		}
		cancel, err := run(row.interf, false, 2, "extc-z-"+row.label)
		if err != nil {
			return nil, err
		}
		return []string{row.label, pct(none), pct(comp), pct(cancel)}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

func runExtMobility(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	costs := mobility.DefaultCosts(2)
	lat := costs.RecalibrationLatency(test.Classes, test.U)
	const period = 0.25 // seconds between recalibrations
	res := &Result{
		ID: "ext-mobility", Title: "Accuracy vs receiver angular speed (recalibrate every 250 ms)",
		Headers: []string{"omega_deg_per_s", "drift_per_period_deg", "mean_accuracy"},
		Notes: []string{
			fmt.Sprintf("modeled recalibration latency: %.1f ms (scan + re-solve + upload)", lat*1e3),
			"the §7 race: accuracy holds while drift per period stays inside the beam's tolerance",
		},
	}
	capped := c.Cap(test)
	omegas := []float64{0, 5, 15, 30, 60, 120}
	rows, err := c.sweep(len(omegas), func(i int) ([]string, error) {
		omega := omegas[i]
		src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("extm-%v", omega)))
		opts := ota.NewOptions(src.Split())
		tr, err := mobility.NewTracker(m.Weights(), opts, costs, period, src)
		if err != nil {
			return nil, err
		}
		acc, err := tr.SteadyStateAccuracy(omega, 4, capped, src)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.0f", omega), fmt.Sprintf("%.1f", omega*period), pct(acc)}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

func init() {
	register(Runner{
		ID:    "ext-feedback",
		Title: "Extension: periodic vs margin-triggered (feedback-protocol) recalibration under mobility",
		Run:   runExtFeedback,
	})
}

// runExtFeedback compares the two recalibration policies over a one-second
// window of receiver motion: periodic recalibration every 250 ms versus the
// §4 feedback protocol, which recalibrates only when the receiver's
// observed decision margins collapse. The protocol should spend fewer
// reconfigurations at low speeds for comparable accuracy.
func runExtFeedback(c *Ctx) (*Result, error) {
	m, test, err := mnistModel(c)
	if err != nil {
		return nil, err
	}
	costs := mobility.DefaultCosts(2)
	const (
		window = 1.0  // simulated seconds
		step   = 0.05 // inference cadence
		period = 0.25 // periodic policy
	)
	capped := c.Cap(test)
	res := &Result{
		ID: "ext-feedback", Title: "Recalibration policies under receiver motion (1 s window)",
		Headers: []string{"omega_deg_per_s", "periodic_acc", "periodic_recals", "feedback_acc", "feedback_recals"},
		Notes: []string{
			"periodic: fixed 250 ms; feedback: margin-triggered (RF-Bouncer-style protocol, §4)",
			"the protocol should match accuracy with fewer reconfigurations at low speed",
		},
	}
	fomegas := []float64{0, 10, 40}
	frows, err := c.sweep(len(fomegas), func(fi int) ([]string, error) {
		omega := fomegas[fi]
		// Periodic policy.
		srcP := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("extf-p-%v", omega)))
		tr, err := mobility.NewTracker(m.Weights(), ota.NewOptions(srcP.Split()), costs, period, srcP)
		if err != nil {
			return nil, err
		}
		var pAcc float64
		var pSamples int
		periodicRecals := 0
		elapsed := 0.0
		for t := step; t <= window+1e-9; t += step {
			before := tr.StaleAngleDeg(omega)
			if err := tr.Advance(step, omega, srcP); err != nil {
				return nil, err
			}
			if tr.StaleAngleDeg(omega) < before {
				periodicRecals++
			}
			pAcc += c.Eval(tr.System(), capped)
			pSamples++
			elapsed += step
		}
		pAcc /= float64(pSamples)

		// Feedback policy.
		srcF := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("extf-f-%v", omega)))
		ft, err := mobility.NewFeedbackTracker(m.Weights(), ota.NewOptions(srcF.Split()), costs, window*2, capped.X[:40], srcF)
		if err != nil {
			return nil, err
		}
		// A short window and a mean-fraction threshold balance responsiveness
		// against false triggers on a healthy link.
		ft.FB.Window = 5
		ft.FB.CalibrateMeanFraction(ft.System(), capped.X[:40], 0.8)
		var fAcc float64
		var fSamples int
		anchor := ota.NewOptions(srcF.Split()).Geometry
		_ = anchor
		since := 0.0
		for t := step; t <= window+1e-9; t += step {
			since += step
			// The receiver drifted: recompute the stale schedule's realized
			// responses at the true position, then classify and feed the
			// protocol one observed readout.
			cur := ft.Deployed()
			cur.RxAngleDeg += omega * since
			ft.System().Recompute(cur)
			fAcc += c.Eval(ft.System(), capped)
			fSamples++
			probe := capped.X[fSamples%len(capped.X)]
			fired, err := ft.Observe(ft.System().Logits(probe), omega, since, srcF)
			if err != nil {
				return nil, err
			}
			if fired {
				since = 0
			}
		}
		fAcc /= float64(fSamples)
		return []string{fmt.Sprintf("%.0f", omega),
			pct(pAcc), fmt.Sprintf("%d", periodicRecals),
			pct(fAcc), fmt.Sprintf("%d", ft.Recalibrations)}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, frows...)
	return res, nil
}
