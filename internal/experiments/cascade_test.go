package experiments

import (
	"strconv"
	"testing"

	"repro/internal/dataset"
)

// TestFigCascadeDepthGain pins the extension's claim at the canonical seed:
// in the quantization-starved compact-surface regime, a 2-layer cascade
// beats the single surface on at least one dataset, and the joint solve
// drives quantization error down from K=1 to K=3 somewhere in the sweep.
func TestFigCascadeDepthGain(t *testing.T) {
	c := NewCtx(dataset.Quick, 1)
	res, err := Run("fig-cascade", c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Headers) != 7 {
		t.Fatalf("fig-cascade shape %dx%d, want 2 rows x 7 headers", len(res.Rows), len(res.Headers))
	}
	cell := func(r, col int) float64 {
		v, err := strconv.ParseFloat(res.Rows[r][col], 64)
		if err != nil {
			t.Fatalf("row %d col %d %q: %v", r, col, res.Rows[r][col], err)
		}
		return v
	}
	depthGain, quantGain := false, false
	for r := range res.Rows {
		k1, k2 := cell(r, 2), cell(r, 3)
		if k2 > k1 {
			depthGain = true
		}
		if cell(r, 6) < cell(r, 5) {
			quantGain = true
		}
		if d := cell(r, 1); k1 > d+3 || k2 > d+3 {
			t.Fatalf("%s: air accuracy exceeds the digital bound by >3pp", res.Rows[r][0])
		}
	}
	if !depthGain {
		t.Fatalf("no dataset shows K=2 beating K=1: %v", res.Rows)
	}
	if !quantGain {
		t.Fatalf("no dataset shows quantization error falling with depth: %v", res.Rows)
	}
}
