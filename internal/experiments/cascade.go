package experiments

import (
	"fmt"

	"repro/internal/modem"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/power"
	"repro/internal/rng"
)

func init() {
	register(Runner{
		ID:    "fig-cascade",
		Title: "Extension: stacked multi-surface cascades, air accuracy vs depth K",
		Run:   runFigCascade,
	})
}

// cascadeDepthSystem deploys a K-layer stacked cascade in the compact-surface
// regime the extension studies: an 8x8 2-bit fabricated primary plus K-1
// fabricated relays of the same class, per-hop re-scattering noise at the
// default coefficient, and the hop powers assigned by the inverse-noise
// allocator under a total budget of K. Construction order is fixed so a
// given (seed, dataset, K) reproduces bit-identically.
func cascadeDepthSystem(c *Ctx, m *nn.ComplexLNN, name string, k int) (*ota.System, error) {
	src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("figcasc8-%s-%d", name, k)))
	opts := ota.NewOptions(src.Split())
	s, err := mts.NewSurfaceFab(8, 8, 2, 5.25, mts.DefaultFabPhaseStd, src.Split())
	if err != nil {
		return nil, err
	}
	opts.Surface = s
	if k > 1 {
		stack := make([]ota.CascadeLayer, k-1)
		for i := range stack {
			ls, err := mts.NewSurfaceFab(8, 8, 2, 5.25, mts.DefaultFabPhaseStd, src.Split())
			if err != nil {
				return nil, err
			}
			stack[i] = ota.CascadeLayer{
				Surface:  ls,
				Geometry: mts.Geometry{TxDistM: 1.5, TxAngleDeg: 20, RxDistM: 2, RxAngleDeg: 35 + 4*float64(i)},
			}
		}
		opts.Stack = stack
		opts.HopNoise = ota.DefaultHopNoise
		hop := make([]float64, k-1)
		for i := range hop {
			hop[i] = opts.HopNoise
		}
		opts.LayerPower = power.AllocateLayers(hop, float64(k))
	}
	return ota.Deploy(m.Weights(), opts, src)
}

// runFigCascade sweeps the cascade depth K on compact surfaces. One 8x8
// 2-bit surface is quantization-starved: 64 atoms at four phase states
// leave a visible gap to the digital model. Stacking a second and third
// surface multiplies the per-symbol phase alphabet (the joint layer-wise
// solver picks one configuration per layer), which buys back target
// precision faster than the extra re-scattering hops cost in noise — until
// the hop-noise floor catches up. The digital column is the bound the air
// path chases.
func runFigCascade(c *Ctx) (*Result, error) {
	res := &Result{
		ID: "fig-cascade", Title: "Stacked cascades on compact 8x8 surfaces",
		Headers: []string{"dataset", "digital", "K=1", "K=2", "K=3", "quant K=1", "quant K=3"},
		Notes: []string{
			"relay hops carry the default per-hop noise; hop powers set by power.AllocateLayers (budget K)",
			"the joint solve drives quantization error down with depth; gains appear where quantization dominates",
		},
	}
	for _, name := range []string{"mnist", "fashion"} {
		train, test, err := c.Sets(name, modem.QAM256)
		if err != nil {
			return nil, err
		}
		m := c.Model(name+"/plain", func() *nn.ComplexLNN {
			return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
		})
		digital := c.Eval(m, test)
		accs := make([]float64, 3)
		quants := make([]float64, 3)
		for k := 1; k <= 3; k++ {
			sys, err := cascadeDepthSystem(c, m, name, k)
			if err != nil {
				return nil, err
			}
			accs[k-1] = c.EvalSys(sys, test)
			quants[k-1] = sys.QuantizationError(m.Weights())
		}
		res.AddRow(name, pct(digital),
			pct(accs[0]), pct(accs[1]), pct(accs[2]),
			f3(quants[0]), f3(quants[2]))
	}
	return res, nil
}
