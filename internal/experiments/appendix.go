package experiments

import (
	"fmt"

	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/pnn"
	"repro/internal/power"
)

func init() {
	register(Runner{ID: "fig29", Title: "Traditional stacked PNN: accuracy vs layer count", Run: runFig29})
	register(Runner{ID: "table2", Title: "End-to-end energy and latency, MNIST workload", Run: runTable2})
	register(Runner{ID: "table3", Title: "End-to-end energy and latency, AFHQ workload", Run: runTable3})
}

func runFig29(c *Ctx) (*Result, error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, err
	}
	// A subset keeps the six training runs fast; the depth trend is what
	// the figure shows.
	sub := train
	if len(train.X) > 300 {
		sub = &nn.EncodedSet{X: train.X[:300], Labels: train.Labels[:300], Classes: train.Classes, U: train.U}
	}
	digital := c.Model("mnist/plain-sub300", func() *nn.ComplexLNN {
		return nn.TrainLNN(sub, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
	})
	digAcc := c.Eval(digital, test)
	res := &Result{
		ID: "fig29", Title: "Stacked-PNN accuracy vs layers (digital LNN reference)",
		Headers: []string{"layers", "accuracy", "digital_LNN"},
		Notes:   []string{"paper: accuracy climbs with depth and approaches the single digital layer near 5 layers"},
	}
	epochs := 18
	for layers := 1; layers <= 6; layers++ {
		c.logf("fig29: training %d-layer PNN", layers)
		net, err := pnn.Train(sub, pnn.DefaultConfig(layers, train.Classes, train.U), nn.TrainConfig{Seed: c.Seed, Epochs: epochs})
		if err != nil {
			return nil, err
		}
		res.AddRow(fmt.Sprintf("%d", layers), pct(c.Eval(net, test)), pct(digAcc))
	}
	return res, nil
}

func powerResult(id string, w power.Workload, note string) *Result {
	res := &Result{
		ID: id, Title: fmt.Sprintf("End-to-end time and energy, %s", w.Name),
		Headers: []string{"system", "model", "acc%", "tx_ms", "server_ms", "total_ms", "tx_mJ", "server_mJ", "mts_mJ", "total_mJ"},
		Notes:   []string{note},
	}
	for _, r := range power.Table(w) {
		res.AddRow(
			r.System, r.Model, fmt.Sprintf("%.2f", r.AccPct),
			fmt.Sprintf("%.3f", r.TxMs), fmt.Sprintf("%.4f", r.ServerMs), fmt.Sprintf("%.3f", r.TotalMs),
			fmt.Sprintf("%.3f", r.TxMJ), fmt.Sprintf("%.4f", r.ServerMJ), fmt.Sprintf("%.3f", r.MTSMJ), fmt.Sprintf("%.3f", r.TotalMJ),
		)
	}
	return res
}

func runTable2(c *Ctx) (*Result, error) {
	return powerResult("table2", power.MNIST(),
		"paper: MetaAI 10.92 mJ total — 5.8x below CPU LNN, 16.7x below GPU ResNet-18; lowest total latency"), nil
}

func runTable3(c *Ctx) (*Result, error) {
	return powerResult("table3", power.AFHQ(),
		"paper: MetaAI 18.82 mJ total; server compute three to four orders of magnitude below CPU/GPU"), nil
}
