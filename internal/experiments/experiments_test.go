package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/ota"
)

// quickCtx returns a context with a small evaluation cap so the smoke tests
// stay fast.
func quickCtx() *Ctx {
	c := NewCtx(dataset.Quick, 1)
	c.EvalCap = 100
	return c
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(paperOrder) {
		t.Fatalf("registered %d experiments, canonical order lists %d", len(ids), len(paperOrder))
	}
	for i, id := range paperOrder {
		if ids[i] != id {
			t.Fatalf("IDs()[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Headers: []string{"a", "bb"}, Notes: []string{"n"}}
	r.AddRow("1", "2")
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted result missing %q:\n%s", want, out)
		}
	}
}

func TestCtxMemoization(t *testing.T) {
	c := quickCtx()
	calls := 0
	build := func() *nn.ComplexLNN {
		calls++
		return nn.NewComplexLNN(2, 3)
	}
	a := c.Model("k", build)
	b := c.Model("k", build)
	if calls != 1 || a != b {
		t.Fatalf("model memoization broken: calls=%d same=%v", calls, a == b)
	}
	t1, _, err := c.Sets("afhq", modem.QAM256)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := c.Sets("afhq", modem.QAM256)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("set memoization broken")
	}
	if _, _, err := c.Sets("nope", modem.QAM256); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

// TestCtxMemoizationConcurrent forces the lazy memo fill from concurrent
// sweep points — the historical bug: Sets/Model mutated their maps with no
// lock, so a sweep whose points resolved them lazily raced (and corrupted
// the memo) under Workers > 1. Run under -race this fails on the old code.
func TestCtxMemoizationConcurrent(t *testing.T) {
	c := quickCtx()
	c.Workers = 8
	var builds atomic.Int64
	_, err := c.sweep(32, func(i int) ([]string, error) {
		// Every point lazily resolves the SAME keys plus a per-point one,
		// exercising both the memo-hit and memo-fill paths concurrently.
		if _, _, err := c.Sets("afhq", modem.QAM256); err != nil {
			return nil, err
		}
		c.Model("shared", func() *nn.ComplexLNN {
			builds.Add(1)
			return nn.NewComplexLNN(2, 3)
		})
		c.Model(fmt.Sprintf("point-%d", i%4), func() *nn.ComplexLNN {
			return nn.NewComplexLNN(2, 3)
		})
		return []string{"ok"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("shared model trained %d times, want exactly 1", n)
	}
}

func TestCapLimitsEvaluation(t *testing.T) {
	c := quickCtx()
	set, _, err := c.Sets("mnist", modem.BPSK)
	if err != nil {
		t.Fatal(err)
	}
	capped := c.Cap(set)
	if len(capped.X) != 100 {
		t.Fatalf("capped to %d, want 100", len(capped.X))
	}
	c.EvalCap = 0
	if got := c.Cap(set); len(got.X) != len(set.X) {
		t.Fatal("EvalCap 0 must not cap")
	}
}

func TestSweepPreservesOrderAndErrors(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		c := quickCtx()
		c.Workers = workers
		rows, err := c.sweep(25, func(i int) ([]string, error) {
			return []string{strconv.Itoa(i)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			if row[0] != strconv.Itoa(i) {
				t.Fatalf("workers=%d: row %d = %v, want index order", workers, i, row)
			}
		}
		_, err = c.sweep(10, func(i int) ([]string, error) {
			if i == 3 {
				return nil, strconv.ErrRange
			}
			return nil, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: sweep swallowed the point error", workers)
		}
	}
}

func TestWorkersEvalStatisticallyEquivalent(t *testing.T) {
	m, test, err := mnistModel(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	deploy := func(c *Ctx) *Result {
		t.Helper()
		sys, err := deployWith(c, m, "workers-test", func(o *ota.Options) {})
		if err != nil {
			t.Fatal(err)
		}
		acc := c.EvalSys(sys, test)
		return &Result{Rows: [][]string{{pct(acc)}}}
	}
	serialCtx := quickCtx()
	parCtx := quickCtx()
	parCtx.Workers = 4
	serial := cell(t, deploy(serialCtx).Rows[0][0])
	par := cell(t, deploy(parCtx).Rows[0][0])
	if serial == 0 || par == 0 {
		t.Fatalf("degenerate accuracies: serial %v, parallel %v", serial, par)
	}
	if diff := serial - par; diff > 6 || diff < -6 {
		t.Fatalf("Workers=4 accuracy %v deviates from serial %v by more than 6 points", par, serial)
	}
}

// cell parses a formatted percentage.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

func TestFig30Shape(t *testing.T) {
	res, err := Run("fig30", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	var vals []float64
	for _, row := range res.Rows {
		vals = append(vals, cell(t, row[1]))
	}
	// Monotone non-decreasing with saturation at the end.
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1]-1e-9 {
			t.Fatalf("WDD not monotone: %v", vals)
		}
	}
	last, prev := vals[len(vals)-1], vals[len(vals)-2]
	if last > prev*1.2+1e-9 {
		t.Fatalf("WDD should saturate: %v", vals)
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Run("table2", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("table2 has %d rows", len(res.Rows))
	}
	// MetaAI (last row) must have the lowest total energy and latency.
	metaMs := cell(t, res.Rows[4][5])
	metaMJ := cell(t, res.Rows[4][9])
	for i := 0; i < 4; i++ {
		if metaMs >= cell(t, res.Rows[i][5]) {
			t.Fatalf("MetaAI latency %v not lowest (row %d: %v)", metaMs, i, cell(t, res.Rows[i][5]))
		}
		if metaMJ >= cell(t, res.Rows[i][9]) {
			t.Fatalf("MetaAI energy %v not lowest (row %d: %v)", metaMJ, i, cell(t, res.Rows[i][9]))
		}
	}
}

func TestFig16Ordering(t *testing.T) {
	res, err := Run("fig16", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	none := cell(t, res.Rows[0][1])
	cd := cell(t, res.Rows[1][1])
	cdfa := cell(t, res.Rows[2][1])
	if !(none < cd && cd < cdfa) {
		t.Fatalf("fig16 ordering broken: none=%v cd=%v cdfa=%v", none, cd, cdfa)
	}
}

func TestFig17CancellationHelpsWorstCase(t *testing.T) {
	res, err := Run("fig17", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	// Laboratory+Omni is the last row; "with" must clearly beat "without".
	last := res.Rows[len(res.Rows)-1]
	if cell(t, last[3]) < cell(t, last[2])+5 {
		t.Fatalf("lab/omni row shows no cancellation gain: %v", last)
	}
	// Every "with" cell stays in the paper's >~80% band.
	for _, row := range res.Rows {
		if cell(t, row[3]) < 80 {
			t.Fatalf("with-cancellation accuracy %v below band: %v", row[3], row)
		}
	}
}

func TestAblSolverShape(t *testing.T) {
	res, err := Run("abl-solver", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	greedyErr := cell(t, res.Rows[0][1])
	cdErr := cell(t, res.Rows[1][1])
	if cdErr >= greedyErr {
		t.Fatalf("coordinate descent (%v) should beat greedy (%v)", cdErr, greedyErr)
	}
	if cell(t, res.Rows[1][2]) < cell(t, res.Rows[0][2]) {
		t.Fatalf("refined solver should not reduce accuracy: %v", res.Rows)
	}
}

func TestAblFaultsRecovery(t *testing.T) {
	// The degraded-mode acceptance sweep: the runner itself errors if the
	// zero-rate point is not bit-identical to the unfaulted baseline, so a
	// clean return already proves the zero-is-free invariant. On top of
	// that, the mid fault rate must show real degradation and the masked
	// re-solve must win back at least half of it.
	res, err := Run("abl-faults", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ablFaultRates) {
		t.Fatalf("%d rows for %d rates", len(res.Rows), len(ablFaultRates))
	}
	baseline := cell(t, res.Rows[0][2])
	mid := res.Rows[len(res.Rows)/2]
	faulted, healed := cell(t, mid[2]), cell(t, mid[3])
	if faulted >= baseline {
		t.Fatalf("mid fault rate %v caused no degradation: faulted %v vs baseline %v", mid[0], faulted, baseline)
	}
	if rec := cell(t, mid[4]); rec < 50 {
		t.Fatalf("self-healing recovered only %v%% of the mid-rate degradation (faulted %v, healed %v, baseline %v)",
			rec, faulted, healed, baseline)
	}
}

func TestFig12CDF(t *testing.T) {
	res, err := Run("fig12", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range res.Rows {
		v := cell(t, row[1])
		if v < prev {
			t.Fatalf("CDF not monotone: %v", res.Rows)
		}
		prev = v
	}
	// ~half the mass above 3 µs (row index 3).
	at3 := cell(t, res.Rows[3][1])
	if at3 < 0.40 || at3 > 0.62 {
		t.Fatalf("CDF(3us) = %v, want near 0.48-0.52", at3)
	}
}

func TestFig13CDFAOutlastsPlain(t *testing.T) {
	res, err := Run("fig13", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	// Beyond one symbol of delay, CDFA must beat plain at every point, and
	// plain must collapse somewhere past 2 symbols.
	var plainCollapsed bool
	for _, row := range res.Rows {
		delay := cell(t, row[0])
		plain, cdfa := cell(t, row[1]), cell(t, row[2])
		if delay >= 1 && cdfa <= plain {
			t.Fatalf("CDFA (%v) not above plain (%v) at delay %v", cdfa, plain, delay)
		}
		if delay >= 2 && plain < 40 {
			plainCollapsed = true
		}
	}
	if !plainCollapsed {
		t.Fatal("plain model never collapsed under delay")
	}
}

func TestFig25FoVCliff(t *testing.T) {
	res, err := Run("fig25", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	// Inside the FoV accuracy is flat; 80° must sit clearly below 60°.
	var at60, at80 float64
	for _, row := range res.Rows {
		switch row[0] {
		case "60":
			at60 = cell(t, row[1])
		case "80":
			at80 = cell(t, row[1])
		}
	}
	if at80 >= at60-4 {
		t.Fatalf("no FoV cliff: 60° = %v, 80° = %v", at60, at80)
	}
}

func TestExtCompensationStory(t *testing.T) {
	res, err := Run("ext-compensation", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		none, comp, cancel := cell(t, row[1]), cell(t, row[2]), cell(t, row[3])
		if comp <= none {
			t.Fatalf("%s: compensation (%v) should beat no scheme (%v)", row[0], comp, none)
		}
		if cancel <= none {
			t.Fatalf("%s: cancellation (%v) should beat no scheme (%v)", row[0], cancel, none)
		}
	}
	// Under drift, cancellation must hold a clear edge over compensation.
	dyn := res.Rows[1]
	if cell(t, dyn[3]) < cell(t, dyn[2])+5 {
		t.Fatalf("dynamic row: cancellation (%v) should clearly beat stale compensation (%v)", dyn[3], dyn[2])
	}
}

func TestFig31LatencyFalls(t *testing.T) {
	res, err := Run("fig31", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, res.Rows[0][3])
	last := cell(t, res.Rows[len(res.Rows)-1][3])
	if !(first == 10 && last == 1) {
		t.Fatalf("transmissions should fall 10 -> 1 across the sweep: %v -> %v", first, last)
	}
	// Accuracy at full parallelism must remain far above chance.
	if cell(t, res.Rows[len(res.Rows)-1][2]) < 50 {
		t.Fatalf("full antenna parallelism collapsed: %v", res.Rows)
	}
}

func TestTable1Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 trains six deep baselines")
	}
	res, err := Run("table1", quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		deep := cell(t, row[2])
		discSim := cell(t, row[3])
		sim := cell(t, row[5])
		proto := cell(t, row[6])
		if deep < sim-2 {
			t.Errorf("%s: deep baseline (%v) below MetaAI sim (%v)", row[0], deep, sim)
		}
		if sim <= discSim {
			t.Errorf("%s: MetaAI sim (%v) not above DiscreteNN (%v)", row[0], sim, discSim)
		}
		if sim-proto > 8 {
			t.Errorf("%s: prototype gap %v exceeds the paper's band", row[0], sim-proto)
		}
	}
}
