package experiments

import (
	"fmt"
	"sort"

	"repro/internal/channel"
	"repro/internal/clocksync"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/noisetrain"
	"repro/internal/ota"
	"repro/internal/rng"
)

func init() {
	register(Runner{ID: "fig12", Title: "CDF of coarse-detection synchronization error", Run: runFig12})
	register(Runner{ID: "fig13", Title: "Accuracy vs sync delay, plain vs CDFA", Run: runFig13})
	register(Runner{ID: "fig16", Title: "Sync scheme ablation: none / CD / CDFA", Run: runFig16})
	register(Runner{ID: "fig17", Title: "Multipath cancellation across environments and antennas", Run: runFig17})
	register(Runner{ID: "fig19", Title: "Noise alleviation vs transmit power", Run: runFig19})
	register(Runner{ID: "fig26", Title: "Dynamic interference regions R1-R4", Run: runFig26})
}

func runFig12(c *Ctx) (*Result, error) {
	d := clocksync.DefaultDetector()
	th := []float64{0.5, 1, 2, 3, 4, 5, 6, 8, 10}
	cdf := d.CDF(th, 100000, rng.New(c.Seed^0xf12))
	res := &Result{
		ID: "fig12", Title: "Coarse detection sync-error CDF (Gamma residual)",
		Headers: []string{"error<=us", "CDF"},
		Notes:   []string{fmt.Sprintf("P(error > 3 us) = %.3f; paper reports 0.517", 1-cdf[3])},
	}
	for i, t := range th {
		res.AddRow(fmt.Sprintf("%.1f", t), f3(cdf[i]))
	}
	return res, nil
}

// syncModels trains the plain and CDFA-injected MNIST models once.
func syncModels(c *Ctx) (plain, cdfa *nn.ComplexLNN, test *nn.EncodedSet, err error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, nil, nil, err
	}
	plain = c.Model("mnist/plain", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
	})
	// The Fig 13/16 experiments use the paper's µs-scale detector directly:
	// the CDFA model is trained to survive multi-symbol offsets.
	cdfa = c.Model("mnist/cdfa-paper", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{
			Seed: c.Seed, Epochs: c.Epochs(),
			InputAug: clocksync.Injector(clocksync.DefaultDetector(), 1e6),
		})
	})
	return plain, cdfa, test, nil
}

func syncEval(c *Ctx, m *nn.ComplexLNN, sampler func(*rng.Source) float64, salt string, test *nn.EncodedSet) (float64, error) {
	src := rng.New(c.Seed ^ hashSalt(salt))
	opts := ota.NewOptions(src.Split())
	opts.SyncSampler = sampler
	sys, err := ota.Deploy(m.Weights(), opts, src)
	if err != nil {
		return 0, err
	}
	return c.EvalSys(sys, test), nil
}

func runFig13(c *Ctx) (*Result, error) {
	plain, cdfa, test, err := syncModels(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig13", Title: "Accuracy vs fixed sync delay (1 us = 1 symbol)",
		Headers: []string{"delay_us", "plain", "CDFA"},
		Notes:   []string{"paper: plain collapses rapidly; CDFA holds until ~4 us"},
	}
	delays := []float64{0, 0.5, 1, 2, 3, 4, 5, 6}
	rows, err := c.sweep(len(delays), func(i int) ([]string, error) {
		delay := delays[i]
		ap, err := syncEval(c, plain, clocksync.FixedSampler(delay), fmt.Sprintf("f13p%v", delay), test)
		if err != nil {
			return nil, err
		}
		ac, err := syncEval(c, cdfa, clocksync.FixedSampler(delay), fmt.Sprintf("f13c%v", delay), test)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.1f", delay), pct(ap), pct(ac)}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

func runFig16(c *Ctx) (*Result, error) {
	plain, cdfa, test, err := syncModels(c)
	if err != nil {
		return nil, err
	}
	d := clocksync.DefaultDetector()
	res := &Result{
		ID: "fig16", Title: "Sync scheme ablation",
		Headers: []string{"scheme", "accuracy"},
		Notes:   []string{"paper: none 19.23, CD 55.71, CDFA 89.28"},
	}
	none, err := syncEval(c, plain, clocksync.NoSyncSampler(test.U), "f16n", test)
	if err != nil {
		return nil, err
	}
	cd, err := syncEval(c, plain, clocksync.CoarseSampler(d, 1e6), "f16c", test)
	if err != nil {
		return nil, err
	}
	full, err := syncEval(c, cdfa, clocksync.CoarseSampler(d, 1e6), "f16f", test)
	if err != nil {
		return nil, err
	}
	res.AddRow("none", pct(none))
	res.AddRow("CD", pct(cd))
	res.AddRow("CDFA", pct(full))
	return res, nil
}

func runFig17(c *Ctx) (*Result, error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, err
	}
	model := c.Model("mnist/plain", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
	})
	res := &Result{
		ID: "fig17", Title: "Multipath cancellation by environment and antenna",
		Headers: []string{"environment", "antenna", "without", "with"},
		Notes:   []string{"paper: with the scheme, all cases exceed ~82.65%; omni/lab suffers most without it"},
	}
	envs := []channel.Environment{channel.Corridor, channel.Office, channel.Laboratory}
	ants := []channel.Antenna{channel.Directional, channel.Omni}
	subs := []int{0, 2}
	accs := make([]float64, len(envs)*len(ants)*len(subs))
	if _, err := c.sweep(len(accs), func(i int) ([]string, error) {
		env := envs[i/(len(ants)*len(subs))]
		ant := ants[(i/len(subs))%len(ants)]
		sub := subs[i%len(subs)]
		src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("f17-%v-%v-%d", env, ant, sub)))
		opts := ota.NewOptions(src.Split())
		opts.Channel.Env = env
		opts.Channel.Antenna = ant
		opts.SubSamples = sub
		sys, err := ota.Deploy(model.Weights(), opts, src)
		if err != nil {
			return nil, err
		}
		accs[i] = c.EvalSys(sys, test)
		return nil, nil
	}); err != nil {
		return nil, err
	}
	for ei, env := range envs {
		for ai, ant := range ants {
			base := (ei*len(ants) + ai) * len(subs)
			res.AddRow(env.String(), ant.String(), pct(accs[base]), pct(accs[base+1]))
		}
	}
	return res, nil
}

func runFig19(c *Ctx) (*Result, error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, err
	}
	plain := c.Model("mnist/plain", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
	})
	robust := c.Model("mnist/noise-aware", func() *nn.ComplexLNN {
		return noisetrain.Train(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()}, noisetrain.DefaultConfig())
	})
	res := &Result{
		ID: "fig19", Title: "Accuracy vs transmit power, with/without noise alleviation",
		Headers: []string{"tx_power_dB", "plain(mean)", "plain(p20)", "aware(mean)", "aware(p20)"},
		Notes:   []string{"paper: the scheme lifts the 80th-percentile accuracy from 80.48 to 87.92"},
	}
	const locations = 8
	powers := []float64{5, 10, 15, 20, 25, 30}
	models := []*nn.ComplexLNN{plain, robust}
	all := make([]float64, len(powers)*len(models)*locations)
	if _, err := c.sweep(len(all), func(i int) ([]string, error) {
		p := powers[i/(len(models)*locations)]
		mi := (i / locations) % len(models)
		loc := i % locations
		src := rng.New(c.Seed ^ hashSalt(fmt.Sprintf("f19-%v-%d-%d", p, mi, loc)))
		opts := ota.NewOptions(src.Split())
		// Offset so the sweep's low end is genuinely noise limited (the
		// absolute dB scale of the paper's "transmit power" knob is testbed
		// specific).
		opts.Channel.TxPowerDB = p - 12
		sys, err := ota.Deploy(models[mi].Weights(), opts, src)
		if err != nil {
			return nil, err
		}
		all[i] = c.EvalSys(sys, test)
		return nil, nil
	}); err != nil {
		return nil, err
	}
	for pi, p := range powers {
		row := []string{fmt.Sprintf("%.0f", p)}
		for mi := range models {
			base := (pi*len(models) + mi) * locations
			accs := append([]float64(nil), all[base:base+locations]...)
			sort.Float64s(accs)
			var mean float64
			for _, a := range accs {
				mean += a
			}
			mean /= float64(len(accs))
			p20 := accs[len(accs)/5]
			row = append(row, pct(mean), pct(p20))
		}
		res.AddRow(row...)
	}
	return res, nil
}

func runFig26(c *Ctx) (*Result, error) {
	train, test, err := c.Sets("mnist", modem.QAM256)
	if err != nil {
		return nil, err
	}
	model := c.Model("mnist/plain", func() *nn.ComplexLNN {
		return nn.TrainLNN(train, nn.TrainConfig{Seed: c.Seed, Epochs: c.Epochs()})
	})
	res := &Result{
		ID: "fig26", Title: "Dynamic walking interferer by region",
		Headers: []string{"region", "accuracy"},
		Notes: []string{
			"R1-R3: off-path drift only (cancellation absorbs it); R4 blocks the MTS-Rx path",
			"paper: R4 stays above 85.38%",
		},
	}
	regions := []channel.InterferenceRegion{
		channel.NoInterferer, channel.RegionR1, channel.RegionR2, channel.RegionR3, channel.RegionR4,
	}
	rows, err := c.sweep(len(regions), func(i int) ([]string, error) {
		region := regions[i]
		src := rng.New(c.Seed ^ hashSalt("f26-"+region.String()))
		opts := ota.NewOptions(src.Split())
		opts.Channel.Interf = region
		opts.Channel.MTSRxDist = 3
		sys, err := ota.Deploy(model.Weights(), opts, src)
		if err != nil {
			return nil, err
		}
		return []string{region.String(), pct(c.EvalSys(sys, test))}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}
