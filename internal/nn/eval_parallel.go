package nn

import "sync"

// SessionFactory supplies one independent Predictor per evaluation worker.
// Worker w always receives sessions(w), so a deterministic factory (e.g.
// seeded splits of one rng source, as ota.Deployment.Sessions provides)
// yields reproducible parallel evaluations. The factory itself is invoked
// serially; only the returned predictors run concurrently.
type SessionFactory func(worker int) Predictor

// EvaluateParallel returns the accuracy of a predictor family over an
// encoded set using `workers` concurrent workers. The set is sharded into
// contiguous blocks, one per worker, and worker w classifies its block with
// sessions(w).
//
// With workers <= 1 this is exactly Evaluate(sessions(0), set): the single
// worker visits every sample in order, so a stateful predictor (an
// ota.System or ota.Session) consumes its random stream identically to the
// serial path and reproduces it bit for bit. With workers > 1 the workers'
// streams are independent, so the result is statistically equivalent but
// not bitwise identical to the serial pass.
func EvaluateParallel(set *EncodedSet, workers int, sessions SessionFactory) float64 {
	n := len(set.X)
	if n == 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return Evaluate(sessions(0), set)
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		p := sessions(w)
		wg.Add(1)
		go func(w int, p Predictor, lo, hi int) {
			defer wg.Done()
			correct := 0
			for i := lo; i < hi; i++ {
				if p.Predict(set.X[i]) == set.Labels[i] {
					correct++
				}
			}
			counts[w] = correct
		}(w, p, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return float64(total) / float64(n)
}

// ConfusionParallel returns the confusion matrix counts[true][predicted] of
// a predictor family over an encoded set, sharded across `workers` workers
// exactly as EvaluateParallel. Per-worker matrices are merged after the
// barrier, so the result is independent of scheduling order.
func ConfusionParallel(set *EncodedSet, workers int, sessions SessionFactory) [][]int {
	n := len(set.X)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 0 {
		return Confusion(sessions(0), set)
	}
	partial := make([][][]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		p := sessions(w)
		wg.Add(1)
		go func(w int, p Predictor, lo, hi int) {
			defer wg.Done()
			m := make([][]int, set.Classes)
			for i := range m {
				m[i] = make([]int, set.Classes)
			}
			for i := lo; i < hi; i++ {
				pred := p.Predict(set.X[i])
				if pred >= 0 && pred < set.Classes {
					m[set.Labels[i]][pred]++
				}
			}
			partial[w] = m
		}(w, p, lo, hi)
	}
	wg.Wait()
	out := make([][]int, set.Classes)
	for i := range out {
		out[i] = make([]int, set.Classes)
	}
	for _, m := range partial {
		if m == nil {
			continue
		}
		for r := range m {
			for c := range m[r] {
				out[r][c] += m[r][c]
			}
		}
	}
	return out
}

// StatelessSessions adapts one concurrency-safe predictor (a digital model
// whose Predict is pure, like ComplexLNN) into a SessionFactory that hands
// every worker the same instance.
func StatelessSessions(p Predictor) SessionFactory {
	return func(int) Predictor { return p }
}
