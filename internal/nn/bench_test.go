package nn

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
)

func benchSets(b *testing.B) (*EncodedSet, *EncodedSet) {
	b.Helper()
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	return EncodeSet(ds.Train, ds.Classes, enc), EncodeSet(ds.Test, ds.Classes, enc)
}

// One full LNN training run at the paper's recipe — the digital half of
// every deployment.
func BenchmarkTrainLNN(b *testing.B) {
	train, _ := benchSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainLNN(train, TrainConfig{Seed: 1, Epochs: 40})
	}
}

func BenchmarkTrainDiscrete(b *testing.B) {
	train, _ := benchSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainDiscrete(train, 4, TrainConfig{Seed: 1, Epochs: 40})
	}
}

func BenchmarkTrainDeep(b *testing.B) {
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainDeep(ds.Train, ds.Classes, DeepTrainConfig{Seed: 1, Epochs: 5})
	}
}

func BenchmarkLNNPredict(b *testing.B) {
	train, test := benchSets(b)
	m := TrainLNN(train, TrainConfig{Seed: 1, Epochs: 10})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(test.X[i%len(test.X)])
	}
}

func BenchmarkEncodeSample(b *testing.B) {
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(ds.Train[i%len(ds.Train)].X)
	}
}
