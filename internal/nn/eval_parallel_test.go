package nn

import (
	"testing"
)

// modPredictor classifies by the real part of the first symbol, a pure
// function so every worker count must yield identical results.
type modPredictor struct{ classes int }

func (p modPredictor) Predict(x []complex128) int {
	return int(real(x[0])) % p.classes
}

func evalSet(n, classes int) *EncodedSet {
	set := &EncodedSet{Classes: classes, U: 1}
	for i := 0; i < n; i++ {
		set.X = append(set.X, []complex128{complex(float64(i), 0)})
		// Half the labels match the predictor's output.
		label := i % classes
		if i%2 == 1 {
			label = (i + 1) % classes
		}
		set.Labels = append(set.Labels, label)
	}
	return set
}

func TestEvaluateParallelMatchesSerialForPurePredictor(t *testing.T) {
	set := evalSet(103, 5) // odd size exercises the ragged last shard
	p := modPredictor{classes: 5}
	want := Evaluate(p, set)
	for _, workers := range []int{0, 1, 2, 3, 8, 16, 200} {
		got := EvaluateParallel(set, workers, StatelessSessions(p))
		if got != want {
			t.Fatalf("workers=%d: accuracy %v, serial %v", workers, got, want)
		}
	}
}

func TestConfusionParallelMatchesSerial(t *testing.T) {
	set := evalSet(77, 4)
	p := modPredictor{classes: 4}
	want := Confusion(p, set)
	for _, workers := range []int{1, 2, 5, 16} {
		got := ConfusionParallel(set, workers, StatelessSessions(p))
		for r := range want {
			for c := range want[r] {
				if got[r][c] != want[r][c] {
					t.Fatalf("workers=%d: confusion[%d][%d] = %d, serial %d", workers, r, c, got[r][c], want[r][c])
				}
			}
		}
	}
}

func TestEvaluateParallelEmptySet(t *testing.T) {
	set := &EncodedSet{Classes: 3}
	if got := EvaluateParallel(set, 4, StatelessSessions(modPredictor{classes: 3})); got != 0 {
		t.Fatalf("empty set accuracy = %v, want 0", got)
	}
}

func TestSessionFactoryCalledOncePerWorker(t *testing.T) {
	set := evalSet(40, 4)
	calls := 0
	factory := func(w int) Predictor {
		calls++
		return modPredictor{classes: 4}
	}
	EvaluateParallel(set, 4, factory)
	if calls != 4 {
		t.Fatalf("factory called %d times, want once per worker (4)", calls)
	}
}
