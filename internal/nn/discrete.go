package nn

import (
	"math"
	"math/cmplx"

	"repro/internal/autodiff"
	"repro/internal/cplx"
	"repro/internal/rng"
)

// DiscreteNN is the Table 1 baseline: a single-layer complex network whose
// weights are constrained to the metasurface's realizable per-atom values —
// unit modulus with 2-bit phase — from the very start of training (the
// binarized-network strategy of Hubara et al., reference [24] of the paper).
// Training keeps continuous latent phases θ and quantizes them to the
// discrete grid in the forward pass, passing gradients straight through the
// quantizer (STE). The paper shows this start-discrete strategy loses 10-20
// accuracy points versus MetaAI's train-continuous-then-approximate
// approach.
type DiscreteNN struct {
	Theta   *autodiff.RParam // latent continuous phases, R×U flattened
	Classes int
	U       int
	Levels  int // phase states (4 for the 2-bit prototype)
}

// NewDiscreteNN allocates an untrained discrete network with the given
// number of phase levels.
func NewDiscreteNN(classes, u, levels int) *DiscreteNN {
	if levels < 2 {
		panic("nn: DiscreteNN needs at least 2 phase levels")
	}
	return &DiscreteNN{
		Theta:   autodiff.NewRParam(classes * u),
		Classes: classes,
		U:       u,
		Levels:  levels,
	}
}

// quantizePhase snaps θ to the nearest of the Levels discrete states.
func (m *DiscreteNN) quantizePhase(theta float64) float64 {
	step := 2 * math.Pi / float64(m.Levels)
	k := math.Round(cplx.WrapPhase(theta) / step)
	return cplx.WrapPhase(k * step)
}

// QuantizedWeights returns the hardware-realizable weight matrix
// e^{jQ(θ)}.
func (m *DiscreteNN) QuantizedWeights() *cplx.Mat {
	w := cplx.NewMat(m.Classes, m.U)
	for i, th := range m.Theta.Val {
		w.Data[i] = cplx.Expi(m.quantizePhase(th))
	}
	return w
}

// Logits returns |W_q·x| under the quantized weights.
func (m *DiscreteNN) Logits(x []complex128) []float64 {
	return m.QuantizedWeights().MulVec(cplx.Vec(x)).Abs()
}

// Predict returns the argmax class.
func (m *DiscreteNN) Predict(x []complex128) int {
	return cplx.Argmax(m.Logits(x))
}

// TrainDiscrete trains the DiscreteNN with SGD+momentum and the
// straight-through estimator: the forward pass uses quantized unit-modulus
// weights w_q = e^{jQ(θ)}, and the backward pass differentiates as if
// w = e^{jθ} evaluated at the quantized point, i.e.
// dL/dθ = 2·Re(conj(g_w)·j·w_q) with g_w = ∂L/∂w̄.
func TrainDiscrete(train *EncodedSet, levels int, cfg TrainConfig) *DiscreteNN {
	if cfg.LR == 0 {
		// Phase-only STE training needs a far larger step than the
		// continuous network: latent phases move by ~LR per unit gradient
		// and must traverse O(π) to change a quantized state.
		cfg.LR = 0.2
	}
	cfg = cfg.withDefaults()
	if len(train.X) == 0 {
		panic("nn: empty training set")
	}
	src := rng.New(cfg.Seed ^ 0xd15c)
	m := NewDiscreteNN(train.Classes, train.U, levels)
	for i := range m.Theta.Val {
		m.Theta.Val[i] = src.Phase()
	}
	vel := make([]float64, len(m.Theta.Val))
	order := make([]int, len(train.X))
	for i := range order {
		order[i] = i
	}
	R, U := train.Classes, train.U
	y := make([]complex128, R)
	wq := make([]complex128, R*U)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.Batch {
			end := min(start+cfg.Batch, len(order))
			m.Theta.ZeroGrad()
			for i, th := range m.Theta.Val {
				wq[i] = cplx.Expi(m.quantizePhase(th))
			}
			for _, idx := range order[start:end] {
				x := train.X[idx]
				if cfg.InputAug != nil {
					x = cfg.InputAug(x, src)
				}
				// Forward.
				for r := 0; r < R; r++ {
					row := wq[r*U : (r+1)*U]
					var sum complex128
					for c, w := range row {
						sum += w * x[c]
					}
					y[r] = sum
				}
				mags := make([]float64, R)
				for r, v := range y {
					mags[r] = cmplx.Abs(v)
				}
				probs := autodiff.Softmax(mags)
				// Backward: dL/dmag = p - onehot; Wirtinger chain through
				// |·| and the matvec; STE into θ.
				for r := 0; r < R; r++ {
					d := probs[r]
					if r == train.Labels[idx] {
						d -= 1
					}
					if mags[r] == 0 {
						continue
					}
					gy := complex(d/(2*mags[r]), 0) * y[r] // ∂L/∂ȳ_r
					row := wq[r*U : (r+1)*U]
					for c := 0; c < U; c++ {
						gw := gy * cmplx.Conj(x[c]) // ∂L/∂w̄
						jw := complex(-imag(row[c]), real(row[c]))
						m.Theta.Grad[r*U+c] += 2 * real(cmplx.Conj(gw)*jw)
					}
				}
			}
			scale := cfg.LR / float64(end-start)
			for i := range m.Theta.Val {
				vel[i] = cfg.Momentum*vel[i] - scale*m.Theta.Grad[i]
				m.Theta.Val[i] += vel[i]
			}
		}
	}
	return m
}
