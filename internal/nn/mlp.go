package nn

import (
	"math"

	"repro/internal/autodiff"
	"repro/internal/cplx"
	"repro/internal/rng"
)

// ComplexMLP is a deeper complex-valued network: hidden layers of complex
// fully connected weights with modReLU activations, read out through the
// magnitude like the LNN. The paper names non-linear, deeper architectures
// as its primary future-work direction (§7, "Model scalability"); this
// model quantifies — digitally — what the linear constraint costs and what
// an over-the-air nonlinearity would have to deliver.
type ComplexMLP struct {
	Weights []*autodiff.CParam // layer l: dims[l+1] × dims[l]
	Biases  []*autodiff.RParam // modReLU biases per hidden layer
	Dims    []int              // [U, hidden..., R]
}

// NewComplexMLP allocates a network with the given layer dims
// (input, hidden..., output).
func NewComplexMLP(dims []int, src *rng.Source) *ComplexMLP {
	if len(dims) < 2 {
		panic("nn: ComplexMLP needs at least input and output dims")
	}
	m := &ComplexMLP{Dims: append([]int(nil), dims...)}
	for l := 0; l+1 < len(dims); l++ {
		w := autodiff.NewCParam(dims[l+1], dims[l])
		std := 1 / math.Sqrt(float64(dims[l]))
		for i := range w.Val {
			w.Val[i] = src.ComplexNormal(std * std)
		}
		m.Weights = append(m.Weights, w)
		if l+2 < len(dims) { // hidden layers get activations
			b := autodiff.NewRParam(dims[l+1])
			m.Biases = append(m.Biases, b)
		}
	}
	return m
}

// Hidden returns the number of hidden layers.
func (m *ComplexMLP) Hidden() int { return len(m.Biases) }

// forward builds the tape graph for one input.
func (m *ComplexMLP) forward(tp *autodiff.Tape, x []complex128) autodiff.RVec {
	v := tp.ConstC(x)
	for l, w := range m.Weights {
		v = tp.MatVec(w, v)
		if l < len(m.Biases) {
			v = tp.ModReLU(v, m.Biases[l])
		}
	}
	return tp.Abs(v)
}

// Logits evaluates the network (no gradient bookkeeping kept).
func (m *ComplexMLP) Logits(x []complex128) []float64 {
	tp := autodiff.NewTape()
	return m.forward(tp, x).Value()
}

// Predict classifies one encoded input.
func (m *ComplexMLP) Predict(x []complex128) int {
	return cplx.Argmax(m.Logits(x))
}

// TrainMLP trains the network with SGD+momentum using the same recipe
// defaults as the LNN.
func TrainMLP(train *EncodedSet, hidden []int, cfg TrainConfig) *ComplexMLP {
	cfg = cfg.withDefaults()
	if len(train.X) == 0 {
		panic("nn: empty training set")
	}
	dims := append(append([]int{train.U}, hidden...), train.Classes)
	src := rng.New(cfg.Seed ^ 0x317a)
	m := NewComplexMLP(dims, src)
	type mom struct {
		c []complex128
		r []float64
	}
	vels := make([]mom, len(m.Weights))
	for l, w := range m.Weights {
		vels[l].c = make([]complex128, len(w.Val))
		if l < len(m.Biases) {
			vels[l].r = make([]float64, len(m.Biases[l].Val))
		}
	}
	order := make([]int, len(train.X))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.Batch {
			end := min(start+cfg.Batch, len(order))
			for l, w := range m.Weights {
				w.ZeroGrad()
				if l < len(m.Biases) {
					m.Biases[l].ZeroGrad()
				}
			}
			for _, idx := range order[start:end] {
				x := train.X[idx]
				if cfg.InputAug != nil {
					x = cfg.InputAug(x, src)
				}
				tp := autodiff.NewTape()
				mag := m.forward(tp, x)
				lnode, _ := tp.SoftmaxCE(mag, train.Labels[idx])
				tp.Backward(lnode)
			}
			scale := cfg.LR / float64(end-start)
			cs := complex(scale, 0)
			cm := complex(cfg.Momentum, 0)
			for l, w := range m.Weights {
				for i := range w.Val {
					vels[l].c[i] = cm*vels[l].c[i] - cs*w.Grad[i]
					w.Val[i] += vels[l].c[i]
				}
				if l < len(m.Biases) {
					b := m.Biases[l]
					for i := range b.Val {
						vels[l].r[i] = cfg.Momentum*vels[l].r[i] - scale*b.Grad[i]
						b.Val[i] += vels[l].r[i]
					}
				}
			}
		}
	}
	return m
}
