package nn

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/rng"
)

func TestEncoderInputLen(t *testing.T) {
	e := Encoder{Scheme: modem.QAM256}
	// 64 features × 8 bits = 512 bits = 64 symbols at 8 bits/symbol.
	if got := e.InputLen(64); got != 64 {
		t.Fatalf("InputLen = %d, want 64", got)
	}
	eb := Encoder{Scheme: modem.BPSK}
	if got := eb.InputLen(64); got != 512 {
		t.Fatalf("BPSK InputLen = %d, want 512", got)
	}
	x := make([]float64, 64)
	if got := len(e.Encode(x)); got != 64 {
		t.Fatalf("Encode len = %d, want 64", got)
	}
}

func TestEncodeSetShapes(t *testing.T) {
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	es := EncodeSet(ds.Train, ds.Classes, enc)
	if es.U != 64 || es.Classes != 10 || len(es.X) != len(ds.Train) {
		t.Fatalf("EncodeSet = U:%d classes:%d n:%d", es.U, es.Classes, len(es.X))
	}
	empty := EncodeSet(nil, 3, enc)
	if len(empty.X) != 0 || empty.Classes != 3 {
		t.Fatal("empty EncodeSet malformed")
	}
}

func trainedMNIST(t *testing.T) (*ComplexLNN, *EncodedSet, *EncodedSet) {
	t.Helper()
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	test := EncodeSet(ds.Test, ds.Classes, enc)
	m := TrainLNN(train, TrainConfig{Seed: 1, Epochs: 40})
	return m, train, test
}

func TestTrainLNNReachesPaperBand(t *testing.T) {
	m, _, test := trainedMNIST(t)
	acc := Evaluate(m, test)
	// Paper: MetaAI simulation reaches 92.75% on MNIST; the synthetic
	// stand-in must land in a comparable band.
	if acc < 0.82 {
		t.Fatalf("LNN accuracy %.3f below the expected band", acc)
	}
}

func TestTrainLNNDeterministic(t *testing.T) {
	ds := dataset.MustLoad("widar3", dataset.Quick, 2)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	a := TrainLNN(train, TrainConfig{Seed: 7, Epochs: 5})
	b := TrainLNN(train, TrainConfig{Seed: 7, Epochs: 5})
	for i := range a.W.Val {
		if a.W.Val[i] != b.W.Val[i] {
			t.Fatal("training is not deterministic for equal seeds")
		}
	}
}

func TestScaleInvarianceOfPrediction(t *testing.T) {
	// Eqn 4's α_p argument: scaling all weights by any complex constant
	// must not change any prediction.
	m, _, test := trainedMNIST(t)
	scaled := NewComplexLNN(m.Classes, m.U)
	for i, w := range m.W.Val {
		scaled.W.Val[i] = w * (0.37 - 1.2i)
	}
	for _, x := range test.X[:50] {
		if m.Predict(x) != scaled.Predict(x) {
			t.Fatal("prediction changed under global weight scaling")
		}
	}
}

func TestInputAugmenterIsCalled(t *testing.T) {
	ds := dataset.MustLoad("afhq", dataset.Quick, 3)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	called := 0
	TrainLNN(train, TrainConfig{
		Seed:   1,
		Epochs: 1,
		InputAug: func(x []complex128, src *rng.Source) []complex128 {
			called++
			return x
		},
	})
	if called != len(train.X) {
		t.Fatalf("augmenter called %d times, want %d", called, len(train.X))
	}
}

func TestOutputNoiserIsCalled(t *testing.T) {
	ds := dataset.MustLoad("afhq", dataset.Quick, 3)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	called := 0
	TrainLNN(train, TrainConfig{
		Seed:   1,
		Epochs: 1,
		OutputNoise: func(n int, src *rng.Source) []complex128 {
			called++
			return make([]complex128, n)
		},
	})
	if called != len(train.X) {
		t.Fatalf("noiser called %d times, want %d", called, len(train.X))
	}
}

func TestCyclicShift(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	got := CyclicShift(x, 1)
	want := []complex128{4, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CyclicShift(+1) = %v", got)
		}
	}
	got = CyclicShift(x, -1)
	want = []complex128{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CyclicShift(-1) = %v", got)
		}
	}
	got = CyclicShift(x, 5)
	want = []complex128{4, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CyclicShift(5) = %v", got)
		}
	}
	if CyclicShift(nil, 3) != nil {
		t.Fatal("CyclicShift(nil) should be nil")
	}
	// Original untouched.
	if x[0] != 1 {
		t.Fatal("CyclicShift modified its input")
	}
}

func TestCyclicShiftRoundTrip(t *testing.T) {
	src := rng.New(4)
	x := make([]complex128, 9)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	back := CyclicShift(CyclicShift(x, 4), -4)
	for i := range x {
		if back[i] != x[i] {
			t.Fatal("shift round trip failed")
		}
	}
}

func TestDiscreteNNWeightsOnGrid(t *testing.T) {
	ds := dataset.MustLoad("afhq", dataset.Quick, 5)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	m := TrainDiscrete(train, 4, TrainConfig{Seed: 1, Epochs: 3})
	w := m.QuantizedWeights()
	for _, v := range w.Data {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("discrete weight modulus %v, want 1", cmplx.Abs(v))
		}
		ph := cmplx.Phase(v)
		if ph < 0 {
			ph += 2 * math.Pi
		}
		steps := ph / (math.Pi / 2)
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			t.Fatalf("discrete weight phase %v not on the 2-bit grid", ph)
		}
	}
}

func TestOrderingLNNBeatsDiscrete(t *testing.T) {
	// Table 1's central comparison: train-continuous-then-quantize (here:
	// the continuous simulation) must clearly beat discrete-from-scratch.
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	test := EncodeSet(ds.Test, ds.Classes, enc)
	lnn := TrainLNN(train, TrainConfig{Seed: 1, Epochs: 40})
	disc := TrainDiscrete(train, 4, TrainConfig{Seed: 1, Epochs: 40})
	accL := Evaluate(lnn, test)
	accD := Evaluate(disc, test)
	if accD >= accL {
		t.Fatalf("DiscreteNN (%.3f) should trail the continuous LNN (%.3f)", accD, accL)
	}
	chance := 1.0 / float64(ds.Classes)
	if accD < chance+0.15 {
		t.Fatalf("DiscreteNN accuracy %.3f too close to chance; baseline broken", accD)
	}
}

func TestDeepNNBeatsLNN(t *testing.T) {
	if testing.Short() {
		t.Skip("deep baseline training is slow")
	}
	ds := dataset.MustLoad("fashion", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	test := EncodeSet(ds.Test, ds.Classes, enc)
	lnn := TrainLNN(train, TrainConfig{Seed: 1, Epochs: 40})
	deep := TrainDeep(ds.Train, ds.Classes, DeepTrainConfig{Seed: 1, Epochs: 15})
	accL := Evaluate(lnn, test)
	accD := EvaluateDeep(deep, ds.Test)
	if accD <= accL-0.02 {
		t.Fatalf("deep baseline (%.3f) should not trail the linear model (%.3f)", accD, accL)
	}
	if accD < 0.7 {
		t.Fatalf("deep baseline accuracy %.3f too low", accD)
	}
}

func TestConfusionMatrixConsistent(t *testing.T) {
	m, _, test := trainedMNIST(t)
	cm := Confusion(m, test)
	var total, diag int
	for i := range cm {
		for j := range cm[i] {
			total += cm[i][j]
			if i == j {
				diag += cm[i][j]
			}
		}
	}
	if total != len(test.X) {
		t.Fatalf("confusion total %d, want %d", total, len(test.X))
	}
	acc := Evaluate(m, test)
	if math.Abs(float64(diag)/float64(total)-acc) > 1e-12 {
		t.Fatal("confusion diagonal disagrees with Evaluate")
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	m := NewComplexLNN(3, 4)
	if got := Evaluate(m, &EncodedSet{Classes: 3}); got != 0 {
		t.Fatalf("Evaluate(empty) = %v", got)
	}
}

func TestTrainLNNPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty training set")
		}
	}()
	TrainLNN(&EncodedSet{Classes: 2}, TrainConfig{})
}

func TestDeepNNForwardShapes(t *testing.T) {
	src := rng.New(9)
	m := NewDeepNN(48, 6, 4, src) // 48 features pads to 7×7
	if m.Side != 7 {
		t.Fatalf("side = %d, want 7", m.Side)
	}
	x := make([]float64, 48)
	for i := range x {
		x[i] = src.Float64()
	}
	p := m.PredictRaw(x)
	if p < 0 || p >= 6 {
		t.Fatalf("prediction %d out of range", p)
	}
}

func TestDeepNNGradientCheck(t *testing.T) {
	// Finite-difference check of the hand-written CNN backprop on a tiny
	// network.
	src := rng.New(10)
	m := NewDeepNN(16, 3, 2, src)
	x := make([]float64, 16)
	for i := range x {
		x[i] = src.Float64()
	}
	label := 1
	loss := func() float64 {
		a := m.forward(x)
		p := a.logits
		probs := softmaxT(p)
		return -math.Log(probs[label])
	}
	g := m.newGrads()
	a := m.forward(x)
	m.backward(a, label, g)
	check := func(name string, params, grads []float64) {
		const h = 1e-5
		for _, i := range []int{0, len(params) / 2, len(params) - 1} {
			orig := params[i]
			params[i] = orig + h
			lp := loss()
			params[i] = orig - h
			lm := loss()
			params[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(grads[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s grad[%d] = %v, numerical %v", name, i, grads[i], want)
			}
		}
	}
	check("w1", m.w1, g.w1)
	check("b1", m.b1, g.b1)
	check("wa", m.wa, g.wa)
	check("wb", m.wb, g.wb)
	check("wf", m.wf, g.wf)
	check("bf", m.bf, g.bf)
}

func softmaxT(xs []float64) []float64 {
	max := xs[0]
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(xs))
	var z float64
	for i, v := range xs {
		out[i] = math.Exp(v - max)
		z += out[i]
	}
	for i := range out {
		out[i] /= z
	}
	return out
}
