package nn

// ClassMetrics holds per-class precision, recall and F1 computed from a
// confusion matrix.
type ClassMetrics struct {
	Precision, Recall, F1 []float64
	MacroF1               float64
}

// MetricsFromConfusion derives per-class metrics from counts[true][pred].
// Classes with no predictions (or no support) contribute 0 to the macro
// average rather than NaN.
func MetricsFromConfusion(cm [][]int) ClassMetrics {
	n := len(cm)
	m := ClassMetrics{
		Precision: make([]float64, n),
		Recall:    make([]float64, n),
		F1:        make([]float64, n),
	}
	for c := 0; c < n; c++ {
		tp := cm[c][c]
		var predicted, actual int
		for r := 0; r < n; r++ {
			predicted += cm[r][c]
			actual += cm[c][r]
		}
		if predicted > 0 {
			m.Precision[c] = float64(tp) / float64(predicted)
		}
		if actual > 0 {
			m.Recall[c] = float64(tp) / float64(actual)
		}
		if m.Precision[c]+m.Recall[c] > 0 {
			m.F1[c] = 2 * m.Precision[c] * m.Recall[c] / (m.Precision[c] + m.Recall[c])
		}
		m.MacroF1 += m.F1[c]
	}
	if n > 0 {
		m.MacroF1 /= float64(n)
	}
	return m
}

// LogitsPredictor extends Predictor with raw class scores, enabling top-k
// evaluation. Every model in this repository implements it.
type LogitsPredictor interface {
	Logits(x []complex128) []float64
}

// TopKAccuracy returns the fraction of samples whose true label is among
// the k highest-scoring classes.
func TopKAccuracy(p LogitsPredictor, set *EncodedSet, k int) float64 {
	if len(set.X) == 0 || k < 1 {
		return 0
	}
	hits := 0
	for i, x := range set.X {
		logits := p.Logits(x)
		truth := set.Labels[i]
		// Count classes strictly above the truth's score; ties resolve in
		// favor of lower indices, matching Predict's argmax.
		above := 0
		for c, v := range logits {
			if v > logits[truth] || (v == logits[truth] && c < truth) {
				above++
			}
		}
		if above < k {
			hits++
		}
	}
	return float64(hits) / float64(len(set.X))
}
