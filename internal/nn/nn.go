// Package nn implements the networks of the MetaAI paper: the complex-valued
// single-fully-connected-layer linear network the system trains digitally
// and then realizes over the air (§3.1), the DiscreteNN baseline that is
// constrained to hardware-realizable discrete weights from the start
// (Table 1, after Hubara et al.'s binarized networks), and a small residual
// CNN standing in for the paper's ResNet-18 upper bound.
//
// The training recipe follows §4: SGD with momentum 0.95, learning rate
// 8·10⁻³, batch size 64, 60 epochs, complex-valued backpropagation (package
// autodiff). The trainer exposes the two augmentation hooks the paper's
// robustness schemes are built on: an input augmenter (CDFA's cyclic-shift
// synchronization-error injector, §3.5.1, and the hardware-noise-as-input
// trick of Eqn 14) and an output-noise injector (environmental noise N_e of
// Eqn 13).
package nn

import (
	"fmt"
	"math"

	"repro/internal/autodiff"
	"repro/internal/cplx"
	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/rng"
)

// Encoder converts real-valued sensor samples into the complex symbol
// vectors that the over-the-air network actually sees: features are
// quantized to bytes and modulated (Fig 4's "encode → modulate" stage). The
// modulation scheme therefore fixes the network's input length U.
type Encoder struct {
	Scheme modem.Scheme
}

// Encode maps one sample to its transmitted symbol vector.
func (e Encoder) Encode(x []float64) []complex128 {
	return modem.ModulateBytes(dataset.Quantize8(x), e.Scheme)
}

// InputLen returns the symbol count U for a sample of the given feature
// dimension.
func (e Encoder) InputLen(dim int) int {
	return modem.SymbolCount(dim, e.Scheme)
}

// ComplexLNN is the paper's network: one complex fully connected layer of
// dimensions R×U (Eqn 1), read out through the magnitude of Eqn 3.
type ComplexLNN struct {
	W       *autodiff.CParam
	Classes int
	U       int
}

// NewComplexLNN allocates an untrained network.
func NewComplexLNN(classes, u int) *ComplexLNN {
	return &ComplexLNN{W: autodiff.NewCParam(classes, u), Classes: classes, U: u}
}

// InitWeights draws Glorot-style complex initial weights.
func (m *ComplexLNN) InitWeights(src *rng.Source) {
	std := 1 / math.Sqrt(float64(m.U))
	for i := range m.W.Val {
		m.W.Val[i] = src.ComplexNormal(std * std)
	}
}

// Logits returns the magnitudes |W·x| — the class scores of Eqn 3.
func (m *ComplexLNN) Logits(x []complex128) []float64 {
	y := m.W.Mat().MulVec(cplx.Vec(x))
	return y.Abs()
}

// Predict returns the argmax class for the encoded input.
func (m *ComplexLNN) Predict(x []complex128) int {
	return cplx.Argmax(m.Logits(x))
}

// Weights returns the trained weight matrix H_des (shared storage): the
// desired channel responses that deployment maps onto MTS configurations.
func (m *ComplexLNN) Weights() *cplx.Mat { return m.W.Mat() }

// InputAugmenter perturbs an encoded input during training (e.g. CDFA's
// cyclic shift or Eqn 14's input-side hardware noise). It must not modify x
// in place.
type InputAugmenter func(x []complex128, src *rng.Source) []complex128

// OutputNoiser returns additive complex noise for the n pre-magnitude
// outputs (Eqn 13's N_e term). It may return nil for no noise.
type OutputNoiser func(n int, src *rng.Source) []complex128

// TrainConfig controls LNN training. Zero values default to the paper's §4
// recipe.
type TrainConfig struct {
	LR       float64 // default 8e-3
	Momentum float64 // default 0.95
	Batch    int     // default 64
	Epochs   int     // default 60
	Seed     uint64
	// InputAug, if set, perturbs each training input (fresh copy per use).
	InputAug InputAugmenter
	// OutputNoise, if set, injects pre-magnitude output noise.
	OutputNoise OutputNoiser
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.LR == 0 {
		c.LR = 8e-3
	}
	if c.Momentum == 0 {
		c.Momentum = 0.95
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	return c
}

// EncodedSet is a dataset pre-encoded into symbol vectors.
type EncodedSet struct {
	X       [][]complex128
	Labels  []int
	Classes int
	U       int
}

// EncodeSet encodes every sample once up front (training touches each sample
// Epochs times; encoding is pure).
func EncodeSet(samples []dataset.Sample, classes int, enc Encoder) *EncodedSet {
	if len(samples) == 0 {
		return &EncodedSet{Classes: classes}
	}
	es := &EncodedSet{
		X:       make([][]complex128, len(samples)),
		Labels:  make([]int, len(samples)),
		Classes: classes,
	}
	for i, s := range samples {
		es.X[i] = enc.Encode(s.X)
		es.Labels[i] = s.Label
	}
	es.U = len(es.X[0])
	return es
}

// TrainLNN trains a ComplexLNN on the encoded set with SGD+momentum and the
// configured augmentations, returning the trained model.
func TrainLNN(train *EncodedSet, cfg TrainConfig) *ComplexLNN {
	cfg = cfg.withDefaults()
	if len(train.X) == 0 {
		panic("nn: empty training set")
	}
	src := rng.New(cfg.Seed ^ 0x5ee0)
	m := NewComplexLNN(train.Classes, train.U)
	m.InitWeights(src)
	vel := make([]complex128, len(m.W.Val))
	order := make([]int, len(train.X))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.Batch {
			end := min(start+cfg.Batch, len(order))
			m.W.ZeroGrad()
			for _, idx := range order[start:end] {
				x := train.X[idx]
				if cfg.InputAug != nil {
					x = cfg.InputAug(x, src)
				}
				tp := autodiff.NewTape()
				y := tp.MatVec(m.W, tp.ConstC(x))
				if cfg.OutputNoise != nil {
					if noise := cfg.OutputNoise(train.Classes, src); noise != nil {
						y = tp.AddConstC(y, noise)
					}
				}
				mag := tp.Abs(y)
				lnode, _ := tp.SoftmaxCE(mag, train.Labels[idx])
				tp.Backward(lnode)
			}
			scale := complex(cfg.LR/float64(end-start), 0)
			mom := complex(cfg.Momentum, 0)
			for i := range m.W.Val {
				vel[i] = mom*vel[i] - scale*m.W.Grad[i]
				m.W.Val[i] += vel[i]
			}
		}
	}
	return m
}

// Predictor is anything that classifies encoded inputs; both digital models
// and the over-the-air pipeline implement it.
type Predictor interface {
	Predict(x []complex128) int
}

// Evaluate returns the accuracy of a predictor over an encoded set.
func Evaluate(p Predictor, set *EncodedSet) float64 {
	if len(set.X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range set.X {
		if p.Predict(x) == set.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(set.X))
}

// Confusion returns the confusion matrix counts[true][predicted] of a
// predictor over an encoded set.
func Confusion(p Predictor, set *EncodedSet) [][]int {
	m := make([][]int, set.Classes)
	for i := range m {
		m[i] = make([]int, set.Classes)
	}
	for i, x := range set.X {
		pred := p.Predict(x)
		if pred >= 0 && pred < set.Classes {
			m[set.Labels[i]][pred]++
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CyclicShift returns x rotated right by k positions (k may be negative or
// exceed len(x)); it is the deformation CDFA's injector applies and the
// effect an uncorrected symbol-level sync error has on the weight/data
// alignment.
func CyclicShift(x []complex128, k int) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	k = ((k % n) + n) % n
	out := make([]complex128, n)
	copy(out, x[n-k:])
	copy(out[k:], x[:n-k])
	return out
}

// String describes the model briefly.
func (m *ComplexLNN) String() string {
	return fmt.Sprintf("ComplexLNN(%d×%d)", m.Classes, m.U)
}
