package nn

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/rng"
)

// ringSet builds a task a magnitude-readout linear model cannot solve:
// each |w·x| logit is a quadratic form in the input, so the decision
// boundary between two LNN classes is a single conic — but the label here
// alternates across three concentric rings of |x₁| (inner and outer ring
// share a label against the middle ring), which needs two circular
// boundaries. A one-hidden-layer complex MLP separates the rings.
func ringSet(n int, seed uint64) *EncodedSet {
	src := rng.New(seed)
	es := &EncodedSet{Classes: 2, U: 4}
	radii := []float64{0.5, 1.25, 2.0}
	labels := []int{0, 1, 0}
	for i := 0; i < n; i++ {
		ring := src.IntN(3)
		r := radii[ring] + src.Normal(0, 0.06)
		th := src.Phase()
		x := make([]complex128, 4)
		x[0] = complex(r*math.Cos(th), r*math.Sin(th))
		x[1] = 1 // constant reference feature
		x[2] = src.ComplexNormal(0.02)
		x[3] = src.ComplexNormal(0.02)
		es.X = append(es.X, x)
		es.Labels = append(es.Labels, labels[ring])
	}
	return es
}

func TestMLPSolvesRingsWhereLNNCannot(t *testing.T) {
	train := ringSet(900, 1)
	test := ringSet(400, 2)
	lnn := TrainLNN(train, TrainConfig{Seed: 1, Epochs: 60})
	mlp := TrainMLP(train, []int{16}, TrainConfig{Seed: 1, Epochs: 80, LR: 0.02})
	accL := Evaluate(lnn, test)
	accM := Evaluate(mlp, test)
	if accL > 0.82 {
		t.Fatalf("the ring task should defeat the linear model, got %.3f", accL)
	}
	if accM < accL+0.1 {
		t.Fatalf("the complex MLP should clearly beat the LNN on rings: MLP %.3f, LNN %.3f", accM, accL)
	}
}

func TestMLPMatchesLNNOnLinearTask(t *testing.T) {
	// On the (near-linear) synthetic MNIST, the MLP should at least hold the
	// LNN's level — the §7 claim is that depth adds capacity, not that it
	// breaks linear tasks.
	ds := dataset.MustLoad("afhq", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	test := EncodeSet(ds.Test, ds.Classes, enc)
	lnn := TrainLNN(train, TrainConfig{Seed: 1, Epochs: 30})
	mlp := TrainMLP(train, []int{32}, TrainConfig{Seed: 1, Epochs: 30, LR: 0.02})
	accL := Evaluate(lnn, test)
	accM := Evaluate(mlp, test)
	if accM < accL-0.08 {
		t.Fatalf("MLP (%.3f) fell far below LNN (%.3f) on a linear task", accM, accL)
	}
}

func TestMLPShapesAndValidation(t *testing.T) {
	src := rng.New(3)
	m := NewComplexMLP([]int{4, 8, 3}, src)
	if m.Hidden() != 1 || len(m.Weights) != 2 {
		t.Fatalf("unexpected architecture: %d hidden, %d weight layers", m.Hidden(), len(m.Weights))
	}
	x := make([]complex128, 4)
	logits := m.Logits(x)
	if len(logits) != 3 {
		t.Fatalf("got %d logits", len(logits))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too-short dims")
		}
	}()
	NewComplexMLP([]int{4}, src)
}

func TestMetricsFromConfusion(t *testing.T) {
	cm := [][]int{
		{8, 2}, // class 0: 8 right, 2 predicted as 1
		{1, 9}, // class 1: 9 right, 1 predicted as 0
	}
	m := MetricsFromConfusion(cm)
	// precision0 = 8/9, recall0 = 8/10.
	if math.Abs(m.Precision[0]-8.0/9) > 1e-12 || math.Abs(m.Recall[0]-0.8) > 1e-12 {
		t.Fatalf("class 0 metrics: %+v", m)
	}
	if math.Abs(m.Precision[1]-9.0/11) > 1e-12 || math.Abs(m.Recall[1]-0.9) > 1e-12 {
		t.Fatalf("class 1 metrics: %+v", m)
	}
	f0 := 2 * (8.0 / 9) * 0.8 / (8.0/9 + 0.8)
	f1 := 2 * (9.0 / 11) * 0.9 / (9.0/11 + 0.9)
	if math.Abs(m.MacroF1-(f0+f1)/2) > 1e-12 {
		t.Fatalf("macro F1 = %v", m.MacroF1)
	}
}

func TestMetricsDegenerateClasses(t *testing.T) {
	// A class never predicted and never present must not produce NaN.
	cm := [][]int{{5, 0, 0}, {0, 5, 0}, {0, 0, 0}}
	m := MetricsFromConfusion(cm)
	for c := 0; c < 3; c++ {
		if math.IsNaN(m.F1[c]) {
			t.Fatalf("NaN F1 for class %d", c)
		}
	}
}

func TestTopKAccuracy(t *testing.T) {
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := Encoder{Scheme: modem.QAM256}
	train := EncodeSet(ds.Train, ds.Classes, enc)
	test := EncodeSet(ds.Test, ds.Classes, enc)
	m := TrainLNN(train, TrainConfig{Seed: 1, Epochs: 30})
	top1 := TopKAccuracy(m, test, 1)
	top3 := TopKAccuracy(m, test, 3)
	acc := Evaluate(m, test)
	if math.Abs(top1-acc) > 1e-12 {
		t.Fatalf("top-1 (%.3f) must equal accuracy (%.3f)", top1, acc)
	}
	if top3 < top1 {
		t.Fatalf("top-3 (%.3f) below top-1 (%.3f)", top3, top1)
	}
	if TopKAccuracy(m, &EncodedSet{Classes: 10}, 1) != 0 {
		t.Fatal("empty set top-k should be 0")
	}
	if top10 := TopKAccuracy(m, test, 10); top10 != 1 {
		t.Fatalf("top-10 of 10 classes = %v, want 1", top10)
	}
}
