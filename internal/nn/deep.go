package nn

import (
	"math"
	"sync"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// DeepNN is the repository's stand-in for the paper's ResNet-18 baseline
// (Table 1): a small real-valued residual CNN trained server-side on raw
// features. It exists to reproduce the paper's accuracy ordering — a deep
// non-linear model beats every linear model, at orders-of-magnitude higher
// server energy (Appendix A.4) — not to match ResNet-18 parameter counts.
//
// Architecture: 3×3 conv (1→C) + ReLU, one residual block (two 3×3 convs
// with identity skip), flatten, fully connected to class logits.
type DeepNN struct {
	Side     int // input reshaped to Side×Side (zero-padded if needed)
	Channels int
	Classes  int

	w1, b1         []float64 // conv1: C×1×3×3, C
	wa, ba, wb, bb []float64 // residual block convs: C×C×3×3, C
	wf, bf         []float64 // fc: classes×(C·Side²), classes
}

// NewDeepNN allocates a network for inputs of the given feature dimension.
func NewDeepNN(dim, classes, channels int, src *rng.Source) *DeepNN {
	side := int(math.Ceil(math.Sqrt(float64(dim))))
	m := &DeepNN{Side: side, Channels: channels, Classes: classes}
	c := channels
	m.w1 = randSlice(c*1*9, 1.0/3, src) // fan-in 9
	m.b1 = make([]float64, c)
	m.wa = randSlice(c*c*9, 1/math.Sqrt(float64(9*c)), src)
	m.ba = make([]float64, c)
	m.wb = randSlice(c*c*9, 1/math.Sqrt(float64(9*c)), src)
	m.bb = make([]float64, c)
	m.wf = randSlice(classes*c*side*side, 1/math.Sqrt(float64(c*side*side)), src)
	m.bf = make([]float64, classes)
	return m
}

func randSlice(n int, std float64, src *rng.Source) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Normal(0, std)
	}
	return out
}

// reshape pads/copies a feature vector into a Side×Side plane.
func (m *DeepNN) reshape(x []float64) []float64 {
	plane := make([]float64, m.Side*m.Side)
	copy(plane, x)
	return plane
}

// conv3x3 computes out[co] = b[co] + Σ_ci W[co][ci]⊛in[ci] with padding 1.
func conv3x3(in []float64, cin int, w, b []float64, cout, side int, out []float64) {
	area := side * side
	for co := 0; co < cout; co++ {
		base := co * area
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				sum := b[co]
				for ci := 0; ci < cin; ci++ {
					wbase := (co*cin + ci) * 9
					ibase := ci * area
					for ky := -1; ky <= 1; ky++ {
						yy := y + ky
						if yy < 0 || yy >= side {
							continue
						}
						for kx := -1; kx <= 1; kx++ {
							xx := x + kx
							if xx < 0 || xx >= side {
								continue
							}
							sum += w[wbase+(ky+1)*3+(kx+1)] * in[ibase+yy*side+xx]
						}
					}
				}
				out[base+y*side+x] = sum
			}
		}
	}
}

// conv3x3Back accumulates input and weight gradients for conv3x3.
func conv3x3Back(in []float64, cin int, w []float64, cout, side int,
	gout []float64, gin, gw, gb []float64) {
	area := side * side
	for co := 0; co < cout; co++ {
		base := co * area
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				g := gout[base+y*side+x]
				if g == 0 {
					continue
				}
				gb[co] += g
				for ci := 0; ci < cin; ci++ {
					wbase := (co*cin + ci) * 9
					ibase := ci * area
					for ky := -1; ky <= 1; ky++ {
						yy := y + ky
						if yy < 0 || yy >= side {
							continue
						}
						for kx := -1; kx <= 1; kx++ {
							xx := x + kx
							if xx < 0 || xx >= side {
								continue
							}
							gw[wbase+(ky+1)*3+(kx+1)] += g * in[ibase+yy*side+xx]
							if gin != nil {
								gin[ibase+yy*side+xx] += g * w[wbase+(ky+1)*3+(kx+1)]
							}
						}
					}
				}
			}
		}
	}
}

func relu(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

func reluBack(act, g []float64) {
	for i := range g {
		if act[i] <= 0 {
			g[i] = 0
		}
	}
}

// deepActs holds one sample's forward activations for backprop.
type deepActs struct {
	in, h1, ra, rb, sum []float64
	logits              []float64
}

// forward runs the network, returning activations.
func (m *DeepNN) forward(x []float64) *deepActs {
	s, c := m.Side, m.Channels
	area := s * s
	a := &deepActs{
		in:     m.reshape(x),
		h1:     make([]float64, c*area),
		ra:     make([]float64, c*area),
		rb:     make([]float64, c*area),
		sum:    make([]float64, c*area),
		logits: make([]float64, m.Classes),
	}
	conv3x3(a.in, 1, m.w1, m.b1, c, s, a.h1)
	relu(a.h1)
	conv3x3(a.h1, c, m.wa, m.ba, c, s, a.ra)
	relu(a.ra)
	conv3x3(a.ra, c, m.wb, m.bb, c, s, a.rb)
	for i := range a.sum {
		a.sum[i] = a.rb[i] + a.h1[i] // residual skip
		if a.sum[i] < 0 {
			a.sum[i] = 0
		}
	}
	for k := 0; k < m.Classes; k++ {
		sum := m.bf[k]
		row := m.wf[k*c*area : (k+1)*c*area]
		for i, v := range a.sum {
			sum += row[i] * v
		}
		a.logits[k] = sum
	}
	return a
}

// PredictRaw classifies a raw feature vector.
func (m *DeepNN) PredictRaw(x []float64) int {
	a := m.forward(x)
	best, arg := math.Inf(-1), 0
	for i, v := range a.logits {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}

// deepGrads mirrors the parameter tensors.
type deepGrads struct {
	w1, b1, wa, ba, wb, bb, wf, bf []float64
}

func (m *DeepNN) newGrads() *deepGrads {
	return &deepGrads{
		w1: make([]float64, len(m.w1)), b1: make([]float64, len(m.b1)),
		wa: make([]float64, len(m.wa)), ba: make([]float64, len(m.ba)),
		wb: make([]float64, len(m.wb)), bb: make([]float64, len(m.bb)),
		wf: make([]float64, len(m.wf)), bf: make([]float64, len(m.bf)),
	}
}

// backward accumulates gradients for one sample; returns the loss.
func (m *DeepNN) backward(a *deepActs, label int, g *deepGrads) float64 {
	s, c := m.Side, m.Channels
	area := s * s
	probs := autodiff.Softmax(a.logits)
	loss := -math.Log(math.Max(probs[label], 1e-12))
	gsum := make([]float64, c*area)
	for k := 0; k < m.Classes; k++ {
		d := probs[k]
		if k == label {
			d -= 1
		}
		g.bf[k] += d
		row := m.wf[k*c*area : (k+1)*c*area]
		grow := g.wf[k*c*area : (k+1)*c*area]
		for i, v := range a.sum {
			grow[i] += d * v
			gsum[i] += d * row[i]
		}
	}
	reluBack(a.sum, gsum) // through the post-skip ReLU
	// gsum splits into the rb branch and the h1 skip.
	grb := gsum
	gh1 := make([]float64, c*area)
	copy(gh1, gsum)
	gra := make([]float64, c*area)
	conv3x3Back(a.ra, c, m.wb, c, s, grb, gra, g.wb, g.bb)
	reluBack(a.ra, gra)
	gh1b := make([]float64, c*area)
	conv3x3Back(a.h1, c, m.wa, c, s, gra, gh1b, g.wa, g.ba)
	for i := range gh1 {
		gh1[i] += gh1b[i]
	}
	reluBack(a.h1, gh1)
	conv3x3Back(a.in, 1, m.w1, c, s, gh1, nil, g.w1, g.b1)
	return loss
}

// DeepTrainConfig controls DeepNN training.
type DeepTrainConfig struct {
	LR       float64 // default 0.02
	Momentum float64 // default 0.9
	Batch    int     // default 32
	Epochs   int     // default 25
	Channels int     // default 8
	Seed     uint64
}

func (c DeepTrainConfig) withDefaults() DeepTrainConfig {
	if c.LR == 0 {
		c.LR = 0.02
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 25
	}
	if c.Channels == 0 {
		c.Channels = 8
	}
	return c
}

// TrainDeep trains the residual CNN baseline on raw samples.
func TrainDeep(train []dataset.Sample, classes int, cfg DeepTrainConfig) *DeepNN {
	cfg = cfg.withDefaults()
	if len(train) == 0 {
		panic("nn: empty training set")
	}
	src := rng.New(cfg.Seed ^ 0xdee9)
	m := NewDeepNN(len(train[0].X), classes, cfg.Channels, src)
	g := m.newGrads()
	type pv struct{ p, v, g []float64 }
	params := []pv{
		{m.w1, make([]float64, len(m.w1)), g.w1},
		{m.b1, make([]float64, len(m.b1)), g.b1},
		{m.wa, make([]float64, len(m.wa)), g.wa},
		{m.ba, make([]float64, len(m.ba)), g.ba},
		{m.wb, make([]float64, len(m.wb)), g.wb},
		{m.bb, make([]float64, len(m.bb)), g.bb},
		{m.wf, make([]float64, len(m.wf)), g.wf},
		{m.bf, make([]float64, len(m.bf)), g.bf},
	}
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	// Per-sample gradients within a batch are independent; fan them out
	// across workers with private gradient buffers and merge. The worker
	// count is FIXED (not GOMAXPROCS) so the floating-point summation order
	// — and therefore the trained model — is identical on every machine.
	const workers = 4
	wgrads := make([]*deepGrads, workers)
	for w := range wgrads {
		wgrads[w] = m.newGrads()
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.Batch {
			end := min(start+cfg.Batch, len(order))
			batch := order[start:end]
			var wg sync.WaitGroup
			chunk := (len(batch) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				if lo >= len(batch) {
					break
				}
				hi := min(lo+chunk, len(batch))
				wg.Add(1)
				go func(w int, idxs []int) {
					defer wg.Done()
					wg2 := wgrads[w]
					wg2.zero()
					for _, idx := range idxs {
						a := m.forward(train[idx].X)
						m.backward(a, train[idx].Label, wg2)
					}
				}(w, batch[lo:hi])
			}
			wg.Wait()
			for _, p := range params {
				for i := range p.g {
					p.g[i] = 0
				}
			}
			for _, wg2 := range wgrads {
				g.add(wg2)
			}
			scale := cfg.LR / float64(end-start)
			for _, p := range params {
				for i := range p.p {
					p.v[i] = cfg.Momentum*p.v[i] - scale*p.g[i]
					p.p[i] += p.v[i]
				}
			}
		}
	}
	return m
}

// zero clears every gradient buffer.
func (g *deepGrads) zero() {
	for _, s := range [][]float64{g.w1, g.b1, g.wa, g.ba, g.wb, g.bb, g.wf, g.bf} {
		for i := range s {
			s[i] = 0
		}
	}
}

// add accumulates other into g.
func (g *deepGrads) add(other *deepGrads) {
	dst := [][]float64{g.w1, g.b1, g.wa, g.ba, g.wb, g.bb, g.wf, g.bf}
	srcs := [][]float64{other.w1, other.b1, other.wa, other.ba, other.wb, other.bb, other.wf, other.bf}
	for k := range dst {
		for i := range dst[k] {
			dst[k][i] += srcs[k][i]
		}
	}
}

// EvaluateDeep returns the DeepNN's accuracy on raw samples.
func EvaluateDeep(m *DeepNN, test []dataset.Sample) float64 {
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for _, s := range test {
		if m.PredictRaw(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}
