package modem

import (
	"bytes"
	"testing"
)

// FuzzModulateRoundTrip asserts that, for every scheme, modulating any byte
// payload and demodulating the clean symbols returns the payload exactly —
// the invariant the whole encoding pipeline rests on.
func FuzzModulateRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x00, 0xa5})
	f.Add([]byte("the quick brown fox"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		for _, s := range Schemes() {
			syms := ModulateBytes(data, s)
			back := DemodulateBytes(syms, s)
			if len(back) < len(data) {
				t.Fatalf("%v: demodulated %d bytes of %d", s, len(back), len(data))
			}
			if !bytes.Equal(back[:len(data)], data) {
				t.Fatalf("%v: round trip corrupted payload", s)
			}
		}
	})
}

// FuzzBitsRoundTrip covers the bit packing helpers.
func FuzzBitsRoundTrip(f *testing.F) {
	f.Add([]byte{0x3c})
	f.Fuzz(func(t *testing.T, data []byte) {
		if got := BitsToBytes(BytesToBits(data)); !bytes.Equal(got, data) {
			t.Fatal("bit round trip corrupted payload")
		}
	})
}
