package modem_test

import (
	"fmt"

	"repro/internal/modem"
)

// ExampleModulateBytes shows the sensor-side encoding of Fig 4: sample
// bytes become Gray-coded constellation symbols; the modulation order fixes
// the over-the-air network's input length U.
func ExampleModulateBytes() {
	sample := make([]byte, 64) // one 8×8 image, one byte per pixel
	for _, s := range []modem.Scheme{modem.BPSK, modem.QAM16, modem.QAM256} {
		fmt.Printf("%s: U = %d symbols\n", s, len(modem.ModulateBytes(sample, s)))
	}
	// Output:
	// BPSK: U = 512 symbols
	// 16-QAM: U = 128 symbols
	// 256-QAM: U = 64 symbols
}

// ExampleZeroMeanChips demonstrates the waveform property the §3.2
// multipath cancellation rests on: symbol chips sum to zero, so any static
// channel integrates to nothing.
func ExampleZeroMeanChips() {
	chips := modem.ZeroMeanChips(1-2i, 4)
	var sum complex128
	for _, c := range chips {
		sum += c
	}
	fmt.Println("chips:", len(chips), "sum:", sum)
	// Output: chips: 4 sum: (0+0i)
}
