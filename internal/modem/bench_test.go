package modem

import (
	"testing"

	"repro/internal/rng"
)

func benchPayload(n int) []byte {
	src := rng.New(1)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(src.IntN(256))
	}
	return out
}

func BenchmarkModulate256QAM(b *testing.B) {
	data := benchPayload(64) // one 8×8 sample
	b.ReportAllocs()
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ModulateBytes(data, QAM256)
	}
}

func BenchmarkDemodulate256QAM(b *testing.B) {
	syms := ModulateBytes(benchPayload(64), QAM256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DemodulateBytes(syms, QAM256)
	}
}

func BenchmarkFFT256(b *testing.B) {
	src := rng.New(2)
	x := make([]complex128, 256)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkOFDMRoundTrip64(b *testing.B) {
	o, _ := NewOFDM(64, 16)
	src := rng.New(3)
	freq := make([]complex128, 64)
	for i := range freq {
		freq[i] = src.ComplexNormal(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Demodulate(o.Modulate(freq))
	}
}
