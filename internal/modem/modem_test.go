package modem

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBitsPerSymbol(t *testing.T) {
	want := map[Scheme]int{BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6, QAM256: 8}
	for s, bps := range want {
		if got := s.BitsPerSymbol(); got != bps {
			t.Errorf("%v BitsPerSymbol = %d, want %d", s, got, bps)
		}
	}
}

func TestConstellationUnitPower(t *testing.T) {
	for _, s := range Schemes() {
		con := s.Constellation()
		if len(con) != 1<<s.BitsPerSymbol() {
			t.Fatalf("%v constellation size %d", s, len(con))
		}
		var p float64
		for _, c := range con {
			p += real(c)*real(c) + imag(c)*imag(c)
		}
		p /= float64(len(con))
		if math.Abs(p-1) > 1e-12 {
			t.Errorf("%v average power = %v, want 1", s, p)
		}
	}
}

func TestConstellationPointsDistinct(t *testing.T) {
	for _, s := range Schemes() {
		con := s.Constellation()
		for i := range con {
			for j := i + 1; j < len(con); j++ {
				if cmplx.Abs(con[i]-con[j]) < 1e-9 {
					t.Fatalf("%v points %d and %d coincide", s, i, j)
				}
			}
		}
	}
}

func TestConstellationZeroMean(t *testing.T) {
	// The multipath cancellation argument (§3.2) requires zero-mean symbol
	// alphabets; all our constellations are symmetric about the origin.
	for _, s := range Schemes() {
		var sum complex128
		for _, c := range s.Constellation() {
			sum += c
		}
		if cmplx.Abs(sum) > 1e-9 {
			t.Errorf("%v constellation mean %v, want 0", s, sum)
		}
	}
}

func TestGrayNeighbors16QAM(t *testing.T) {
	// Gray coding: nearest-neighbor constellation points should differ in
	// exactly one bit for interior points on each axis.
	con := QAM16.Constellation()
	minDist := math.Inf(1)
	for i := range con {
		for j := i + 1; j < len(con); j++ {
			if d := cmplx.Abs(con[i] - con[j]); d < minDist {
				minDist = d
			}
		}
	}
	for i := range con {
		for j := i + 1; j < len(con); j++ {
			if cmplx.Abs(con[i]-con[j]) < minDist*1.001 {
				diff := i ^ j
				if diff&(diff-1) != 0 {
					t.Fatalf("labels %04b and %04b are nearest neighbors but differ in >1 bit", i, j)
				}
			}
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	data := []byte{0x00, 0xff, 0xa5, 0x3c}
	if got := BitsToBytes(BytesToBits(data)); !bytes.Equal(got, data) {
		t.Fatalf("bit round trip = %x, want %x", got, data)
	}
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	src := rng.New(1)
	for _, s := range Schemes() {
		data := make([]byte, 96)
		for i := range data {
			data[i] = byte(src.IntN(256))
		}
		syms := ModulateBytes(data, s)
		if len(syms) != SymbolCount(len(data), s) {
			t.Fatalf("%v symbol count %d, want %d", s, len(syms), SymbolCount(len(data), s))
		}
		back := DemodulateBytes(syms, s)
		if !bytes.Equal(back[:len(data)], data) {
			t.Fatalf("%v clean round trip failed", s)
		}
	}
}

func TestRoundTripUnderMildNoise(t *testing.T) {
	src := rng.New(2)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(src.IntN(256))
	}
	// QPSK at ~20 dB SNR should decode error-free with overwhelming
	// probability at this sample size.
	syms := ModulateBytes(data, QPSK)
	for i := range syms {
		syms[i] += src.ComplexNormal(0.01)
	}
	if got := DemodulateBytes(syms, QPSK); !bytes.Equal(got[:len(data)], data) {
		t.Fatal("QPSK failed at 20 dB SNR")
	}
}

func TestModulatePartialSymbolPadding(t *testing.T) {
	bits := []uint8{1, 0, 1} // 3 bits into 16-QAM: one symbol, zero padded
	syms := ModulateBits(bits, QAM16)
	if len(syms) != 1 {
		t.Fatalf("got %d symbols, want 1", len(syms))
	}
	back := DemodulateBits(syms, QAM16)
	want := []uint8{1, 0, 1, 0}
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("padded demod = %v, want %v", back, want)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	x := []complex128{1, 0, 0, 0}
	X := FFT(x)
	for i, v := range X {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("FFT(delta)[%d] = %v, want 1", i, v)
		}
	}
	// FFT of constant = delta at DC.
	c := []complex128{1, 1, 1, 1}
	C := FFT(c)
	if cmplx.Abs(C[0]-4) > 1e-12 {
		t.Fatalf("FFT(const)[0] = %v, want 4", C[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(C[i]) > 1e-12 {
			t.Fatalf("FFT(const)[%d] = %v, want 0", i, C[i])
		}
	}
}

func TestFFTInverseProperty(t *testing.T) {
	src := rng.New(3)
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = src.ComplexNormal(1)
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("n=%d: IFFT(FFT(x))[%d] = %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	src := rng.New(4)
	x := make([]complex128, 128)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	X := FFT(x)
	var et, ef float64
	for i := range x {
		et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
	}
	if math.Abs(ef-float64(len(x))*et) > 1e-6*ef {
		t.Fatalf("Parseval violated: freq %v vs N*time %v", ef, float64(len(x))*et)
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two FFT")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestFFTLinearityProperty(t *testing.T) {
	src := rng.New(5)
	err := quick.Check(func(seed uint8) bool {
		n := 16
		a := make([]complex128, n)
		b := make([]complex128, n)
		for i := range a {
			a[i] = src.ComplexNormal(1)
			b[i] = src.ComplexNormal(1)
		}
		alpha := src.ComplexNormal(1)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = alpha*a[i] + b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(alpha*fa[i]+fb[i])) > 1e-8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestOFDMRoundTrip(t *testing.T) {
	o, err := NewOFDM(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	freq := make([]complex128, 16)
	for i := range freq {
		freq[i] = src.ComplexNormal(1)
	}
	td := o.Modulate(freq)
	if len(td) != o.BlockLen() {
		t.Fatalf("block len %d, want %d", len(td), o.BlockLen())
	}
	back := o.Demodulate(td)
	for i := range freq {
		if cmplx.Abs(freq[i]-back[i]) > 1e-9 {
			t.Fatalf("OFDM round trip [%d] = %v, want %v", i, back[i], freq[i])
		}
	}
}

func TestOFDMCyclicPrefixIsCyclic(t *testing.T) {
	o, _ := NewOFDM(8, 3)
	freq := make([]complex128, 8)
	freq[1] = 1
	td := o.Modulate(freq)
	for i := 0; i < o.CP; i++ {
		if cmplx.Abs(td[i]-td[i+o.N]) > 1e-12 {
			t.Fatalf("CP sample %d does not match tail", i)
		}
	}
}

func TestOFDMDelayedWithinCPIsPhaseRotation(t *testing.T) {
	// The defining CP property: a channel delay shorter than the CP shows up
	// only as a per-subcarrier phase rotation, keeping multipath inside the
	// integration window (§3.2).
	o, _ := NewOFDM(16, 4)
	src := rng.New(7)
	freq := make([]complex128, 16)
	for i := range freq {
		freq[i] = src.ComplexNormal(1)
	}
	td := o.Modulate(freq)
	// Build a 2-sample-delayed copy of the (infinitely repeating) block.
	delay := 2
	shifted := make([]complex128, len(td))
	for i := range shifted {
		src := i - delay
		if src < 0 {
			// Preceding samples come from the tail of the same cyclic block.
			src += o.N
		}
		shifted[i] = td[src]
	}
	got := o.Demodulate(shifted)
	for k := range got {
		rot := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(delay)/float64(o.N)))
		if cmplx.Abs(got[k]-freq[k]*rot) > 1e-9 {
			t.Fatalf("subcarrier %d: delayed demod %v, want %v", k, got[k], freq[k]*rot)
		}
	}
}

func TestNewOFDMValidation(t *testing.T) {
	if _, err := NewOFDM(12, 2); err == nil {
		t.Error("expected error for non-power-of-two N")
	}
	if _, err := NewOFDM(8, 9); err == nil {
		t.Error("expected error for CP > N")
	}
	if _, err := NewOFDM(8, -1); err == nil {
		t.Error("expected error for negative CP")
	}
	if _, err := NewOFDM(0, 0); err == nil {
		t.Error("expected error for N=0")
	}
}

func TestZeroMeanChips(t *testing.T) {
	chips := ZeroMeanChips(3+4i, 8)
	var sum complex128
	for _, c := range chips {
		sum += c
	}
	if cmplx.Abs(sum) > 1e-12 {
		t.Fatalf("chips sum = %v, want 0", sum)
	}
	signs := ChipSigns(8)
	for i, c := range chips {
		if cmplx.Abs(c-complex(signs[i], 0)*(3+4i)) > 1e-12 {
			t.Fatalf("chip %d inconsistent with sign pattern", i)
		}
	}
}

func TestZeroMeanChipsCancelStaticChannel(t *testing.T) {
	// A static channel h integrated against the chips of any symbol is zero,
	// while an MTS flipping with the chip signs accumulates p·h_mts·sym.
	h := 0.7 - 0.2i
	hmts := 0.3 + 0.9i
	sym := 1 - 1i
	p := 4
	chips := ZeroMeanChips(sym, p)
	signs := ChipSigns(p)
	var env, mts complex128
	for i, c := range chips {
		env += h * c
		mts += hmts * complex(signs[i], 0) * c
	}
	if cmplx.Abs(env) > 1e-12 {
		t.Fatalf("static channel leaked %v through zero-mean chips", env)
	}
	want := hmts * sym * complex(float64(p), 0)
	if cmplx.Abs(mts-want) > 1e-12 {
		t.Fatalf("MTS path integral = %v, want %v", mts, want)
	}
}

func TestZeroMeanChipsOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd chip count")
		}
	}()
	ZeroMeanChips(1, 3)
}

func TestSymbolCount(t *testing.T) {
	// 64 bytes = 512 bits: 256-QAM -> 64 symbols (the paper's default MNIST
	// encoding yields U = pixels when one pixel byte maps to one symbol).
	if got := SymbolCount(64, QAM256); got != 64 {
		t.Errorf("SymbolCount(64, 256-QAM) = %d, want 64", got)
	}
	if got := SymbolCount(64, BPSK); got != 512 {
		t.Errorf("SymbolCount(64, BPSK) = %d, want 512", got)
	}
	if got := SymbolCount(1, QAM64); got != 2 {
		t.Errorf("SymbolCount(1, 64-QAM) = %d, want 2", got)
	}
}
