// Package modem is the digital-modulation substrate of the MetaAI pipeline.
//
// MetaAI's transmitters are ordinary commodity radios: a sensor sample is
// encoded into bits, the bits are grouped and mapped onto complex
// constellation symbols (BPSK through 256-QAM, Gray-coded), and the symbols
// are transmitted sequentially (§2.2 and Fig 4 of the paper). The package
// also provides the OFDM machinery (radix-2 FFT, cyclic prefix) used by the
// subcarrier-based parallelism scheme (§3.3), and the zero-mean sub-chip
// symbol waveforms that the multipath-cancellation scheme of §3.2 relies on:
// digital symbols are DC-balanced over their period, so a static
// environmental channel integrates to zero while the metasurface — which
// switches within the symbol period — does not.
package modem

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Scheme identifies a linear digital modulation scheme.
type Scheme int

// Supported schemes, in increasing spectral efficiency. These are the five
// schemes evaluated in Fig 23 of the paper.
const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
	QAM256
)

var schemeNames = map[Scheme]string{
	BPSK:   "BPSK",
	QPSK:   "QPSK",
	QAM16:  "16-QAM",
	QAM64:  "64-QAM",
	QAM256: "256-QAM",
}

// String returns the conventional name of the scheme.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Schemes lists every supported scheme in increasing order.
func Schemes() []Scheme { return []Scheme{BPSK, QPSK, QAM16, QAM64, QAM256} }

// BitsPerSymbol returns the number of bits carried by one symbol.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	case QAM256:
		return 8
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
}

// Constellation returns the scheme's constellation points, indexed by the
// Gray-coded bit label (MSB first), normalized to unit average power.
// The returned slice is shared; callers must not modify it.
func (s Scheme) Constellation() []complex128 {
	return constellations[s]
}

var constellations = func() map[Scheme][]complex128 {
	m := make(map[Scheme][]complex128)
	for _, s := range []Scheme{BPSK, QPSK, QAM16, QAM64, QAM256} {
		m[s] = buildConstellation(s)
	}
	return m
}()

// grayToBinary inverts the Gray code g.
func grayToBinary(g uint) uint {
	b := g
	for g >>= 1; g != 0; g >>= 1 {
		b ^= g
	}
	return b
}

// pamLevel maps a k-bit Gray label to an amplitude level in
// {-(2^k-1), ..., -1, +1, ..., +(2^k-1)} such that adjacent levels differ in
// exactly one bit.
func pamLevel(label uint, k int) float64 {
	b := grayToBinary(label)
	return float64(2*int(b) - (1<<k - 1))
}

func buildConstellation(s Scheme) []complex128 {
	b := s.BitsPerSymbol()
	n := 1 << b
	pts := make([]complex128, n)
	switch s {
	case BPSK:
		pts[0] = -1
		pts[1] = 1
		return pts
	default:
		// Square QAM: high half of the bits Gray-map the I axis, low half
		// the Q axis.
		k := b / 2
		var power float64
		for label := 0; label < n; label++ {
			i := pamLevel(uint(label)>>k, k)
			q := pamLevel(uint(label)&((1<<k)-1), k)
			pts[label] = complex(i, q)
			power += i*i + q*q
		}
		norm := math.Sqrt(power / float64(n))
		for i := range pts {
			pts[i] /= complex(norm, 0)
		}
		return pts
	}
}

// BytesToBits unpacks data into individual bits, MSB first.
func BytesToBits(data []byte) []uint8 {
	out := make([]uint8, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// BitsToBytes packs bits (MSB first) into bytes, zero-padding the final
// partial byte.
func BitsToBytes(b []uint8) []byte {
	out := make([]byte, (len(b)+7)/8)
	for i, bit := range b {
		if bit != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// ModulateBits maps a bit stream onto constellation symbols. Bits beyond the
// last full symbol group are zero-padded.
func ModulateBits(b []uint8, s Scheme) []complex128 {
	bps := s.BitsPerSymbol()
	con := s.Constellation()
	nsym := (len(b) + bps - 1) / bps
	out := make([]complex128, nsym)
	for i := 0; i < nsym; i++ {
		var label uint
		for j := 0; j < bps; j++ {
			label <<= 1
			idx := i*bps + j
			if idx < len(b) && b[idx] != 0 {
				label |= 1
			}
		}
		out[i] = con[label]
	}
	return out
}

// ModulateBytes is ModulateBits over the unpacked bits of data.
func ModulateBytes(data []byte, s Scheme) []complex128 {
	return ModulateBits(BytesToBits(data), s)
}

// DemodulateBits maps received symbols back to bits by minimum-distance
// decision over the constellation.
func DemodulateBits(syms []complex128, s Scheme) []uint8 {
	bps := s.BitsPerSymbol()
	con := s.Constellation()
	out := make([]uint8, 0, len(syms)*bps)
	for _, y := range syms {
		best, arg := math.Inf(1), 0
		for label, p := range con {
			if d := cmplx.Abs(y - p); d < best {
				best, arg = d, label
			}
		}
		for j := bps - 1; j >= 0; j-- {
			out = append(out, uint8(uint(arg)>>uint(j))&1)
		}
	}
	return out
}

// DemodulateBytes is DemodulateBits packed into bytes.
func DemodulateBytes(syms []complex128, s Scheme) []byte {
	return BitsToBytes(DemodulateBits(syms, s))
}

// SymbolCount returns the number of symbols needed to carry nBytes of data
// under the scheme. This is the input length U of the over-the-air LNN: the
// modulation scheme fixes the network's input dimensionality (§3.1).
func SymbolCount(nBytes int, s Scheme) int {
	bps := s.BitsPerSymbol()
	return (nBytes*8 + bps - 1) / bps
}

// FFT computes the in-place-free radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two.
func FFT(x []complex128) []complex128 { return fft(x, false) }

// IFFT computes the inverse FFT (normalized by 1/N).
func IFFT(x []complex128) []complex128 {
	out := fft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

func fft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("modem: FFT length %d is not a power of two", n))
	}
	out := make([]complex128, n)
	shift := uint(bits.LeadingZeros(uint(n)) + 1)
	for i, v := range x {
		out[bits.Reverse(uint(i))>>shift] = v
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				sin, cos := math.Sincos(step * float64(k))
				w := complex(cos, sin)
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	return out
}

// OFDM modulates/demodulates blocks of per-subcarrier symbols with a cyclic
// prefix. The subcarrier-based parallelism scheme (§3.3) transmits the same
// input stream on K subcarriers while the metasurface imposes a shared phase
// pattern whose per-subcarrier responses differ, realizing K output neurons
// at once.
type OFDM struct {
	// N is the number of subcarriers; must be a power of two.
	N int
	// CP is the cyclic-prefix length in samples. The paper uses a standard
	// CP to keep all environmental multipath inside the integration window.
	CP int
}

// NewOFDM returns an OFDM modulator with n subcarriers and cp prefix
// samples. It returns an error if n is not a positive power of two or cp is
// out of [0, n].
func NewOFDM(n, cp int) (*OFDM, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("modem: OFDM subcarrier count %d is not a power of two", n)
	}
	if cp < 0 || cp > n {
		return nil, fmt.Errorf("modem: OFDM cyclic prefix %d out of [0, %d]", cp, n)
	}
	return &OFDM{N: n, CP: cp}, nil
}

// BlockLen returns the number of time-domain samples per OFDM block.
func (o *OFDM) BlockLen() int { return o.N + o.CP }

// Modulate converts one block of per-subcarrier frequency-domain symbols
// (len == N) into CP+N time-domain samples.
func (o *OFDM) Modulate(freq []complex128) []complex128 {
	if len(freq) != o.N {
		panic(fmt.Sprintf("modem: OFDM Modulate wants %d symbols, got %d", o.N, len(freq)))
	}
	td := IFFT(freq)
	out := make([]complex128, o.CP+o.N)
	copy(out, td[o.N-o.CP:])
	copy(out[o.CP:], td)
	return out
}

// Demodulate strips the cyclic prefix from one block of CP+N time-domain
// samples and returns the per-subcarrier symbols.
func (o *OFDM) Demodulate(td []complex128) []complex128 {
	if len(td) != o.CP+o.N {
		panic(fmt.Sprintf("modem: OFDM Demodulate wants %d samples, got %d", o.CP+o.N, len(td)))
	}
	return FFT(td[o.CP:])
}

// ZeroMeanChips expands one constellation symbol into p sub-chips that sum
// to zero (alternating ±), modeling the DC-balanced symbol waveform of
// Fig 8(a). p must be even and positive. A static channel h contributes
// h·Σchips = 0 to the receiver's within-symbol integral, while a metasurface
// that flips its configuration in sync with the chip signs contributes
// coherently — this is the multipath cancellation mechanism of §3.2.
func ZeroMeanChips(sym complex128, p int) []complex128 {
	if p <= 0 || p%2 != 0 {
		panic(fmt.Sprintf("modem: sub-chip count %d must be positive and even", p))
	}
	out := make([]complex128, p)
	for i := range out {
		if i%2 == 0 {
			out[i] = sym
		} else {
			out[i] = -sym
		}
	}
	return out
}

// ChipSigns returns the ± pattern used by ZeroMeanChips, which the
// metasurface controller mirrors when switching within a symbol period.
func ChipSigns(p int) []float64 {
	if p <= 0 || p%2 != 0 {
		panic(fmt.Sprintf("modem: sub-chip count %d must be positive and even", p))
	}
	out := make([]float64, p)
	for i := range out {
		if i%2 == 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
