package autodiff

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/cplx"
	"repro/internal/rng"
)

// numGradC estimates the Wirtinger adjoint ∂L/∂w̄ of parameter element i by
// finite differences: Re(g) = ½·dL/d(Re w), Im(g) = ½·dL/d(Im w).
func numGradC(loss func() float64, p *CParam, i int) complex128 {
	const h = 1e-6
	orig := p.Val[i]
	p.Val[i] = orig + complex(h, 0)
	lpr := loss()
	p.Val[i] = orig - complex(h, 0)
	lmr := loss()
	p.Val[i] = orig + complex(0, h)
	lpi := loss()
	p.Val[i] = orig - complex(0, h)
	lmi := loss()
	p.Val[i] = orig
	return complex((lpr-lmr)/(4*h), (lpi-lmi)/(4*h))
}

func numGradR(loss func() float64, p *RParam, i int) float64 {
	const h = 1e-6
	orig := p.Val[i]
	p.Val[i] = orig + h
	lp := loss()
	p.Val[i] = orig - h
	lm := loss()
	p.Val[i] = orig
	return (lp - lm) / (2 * h)
}

func randParam(rows, cols int, src *rng.Source) *CParam {
	p := NewCParam(rows, cols)
	for i := range p.Val {
		p.Val[i] = src.ComplexNormal(1)
	}
	return p
}

func TestLNNGradientCheck(t *testing.T) {
	// The full MetaAI training graph: y = softmaxCE(|W·x|, label).
	src := rng.New(1)
	const R, U = 4, 6
	w := randParam(R, U, src)
	x := make([]complex128, U)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	label := 2
	loss := func() float64 {
		tp := NewTape()
		y := tp.MatVec(w, tp.ConstC(x))
		mag := tp.Abs(y)
		_, l := tp.SoftmaxCE(mag, label)
		return l
	}
	tp := NewTape()
	y := tp.MatVec(w, tp.ConstC(x))
	mag := tp.Abs(y)
	lnode, _ := tp.SoftmaxCE(mag, label)
	w.ZeroGrad()
	tp.Backward(lnode)
	for i := range w.Val {
		want := numGradC(loss, w, i)
		if cmplx.Abs(w.Grad[i]-want) > 1e-5 {
			t.Fatalf("W grad[%d] = %v, numerical %v", i, w.Grad[i], want)
		}
	}
}

func TestAbsSqGradientCheck(t *testing.T) {
	src := rng.New(2)
	w := randParam(3, 3, src)
	x := make([]complex128, 3)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	loss := func() float64 {
		tp := NewTape()
		y := tp.MatVec(w, tp.ConstC(x))
		sq := tp.AbsSq(y)
		l, _ := tp.SoftmaxCE(sq, 0)
		_ = l
		var total float64
		for _, v := range sq.Value() {
			total += v
		}
		return total
	}
	// Loss = Σ|y|²; build with a ScaleR + manual sum via SoftmaxCE is
	// awkward, so use a dedicated scalar: seed through ScaleR of a sum.
	// Simplest: numerical check against analytic dΣ|y|²/dw̄ = Σ y·conj(x).
	tp := NewTape()
	y := tp.MatVec(w, tp.ConstC(x))
	sq := tp.AbsSq(y)
	// Reduce by hand: Backward needs a scalar node; sum via AddConstR trick
	// is unavailable, so check the op through per-element seeding instead.
	for k := range sq.Value() {
		w.ZeroGrad()
		for i := range sq.n.radj {
			sq.n.radj[i] = 0
		}
		sq.n.radj[k] = 1
		for i := len(tp.nodes) - 1; i >= 0; i-- {
			if n := tp.nodes[i]; n.back != nil {
				n.back(n)
			}
		}
		// d|y_k|²/dw̄_{k,c} = y_k·conj(x_c)… adjoint convention ∂L/∂w̄.
		for c := 0; c < 3; c++ {
			want := y.Value()[k] * cmplx.Conj(x[c])
			if cmplx.Abs(w.Grad[k*3+c]-want) > 1e-9 {
				t.Fatalf("AbsSq grad (%d,%d) = %v, want %v", k, c, w.Grad[k*3+c], want)
			}
		}
		// reset adjoints of intermediate nodes for next round
		for _, n := range tp.nodes {
			for i := range n.cadj {
				n.cadj[i] = 0
			}
			for i := range n.radj {
				n.radj[i] = 0
			}
		}
	}
	_ = loss
}

func TestPhasorMulGradientCheck(t *testing.T) {
	// Stacked-PNN style graph: loss = CE(|B·(x∘e^{jφ})|, label).
	src := rng.New(3)
	const M, R = 5, 3
	phi := NewRParam(M)
	for i := range phi.Val {
		phi.Val[i] = src.Phase()
	}
	b := cplx.NewMat(R, M)
	for i := range b.Data {
		b.Data[i] = src.ComplexNormal(1)
	}
	x := make([]complex128, M)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	label := 1
	loss := func() float64 {
		tp := NewTape()
		mod := tp.PhasorMul(tp.ConstC(x), phi)
		y := tp.MatVecConst(b, mod)
		mag := tp.Abs(y)
		_, l := tp.SoftmaxCE(mag, label)
		return l
	}
	tp := NewTape()
	mod := tp.PhasorMul(tp.ConstC(x), phi)
	y := tp.MatVecConst(b, mod)
	mag := tp.Abs(y)
	lnode, _ := tp.SoftmaxCE(mag, label)
	phi.ZeroGrad()
	tp.Backward(lnode)
	for i := range phi.Val {
		want := numGradR(loss, phi, i)
		if math.Abs(phi.Grad[i]-want) > 1e-5 {
			t.Fatalf("phi grad[%d] = %v, numerical %v", i, phi.Grad[i], want)
		}
	}
}

func TestChainedOpsGradientCheck(t *testing.T) {
	// Exercise AddC, AddConstC, ScaleC, MulElemConst, SumC, ScaleR,
	// AddConstR together in one graph with two parameter leaves.
	src := rng.New(4)
	const U = 4
	w1 := randParam(2, U, src)
	w2 := randParam(2, U, src)
	x := make([]complex128, U)
	noise := make([]complex128, 2)
	gains := []complex128{src.ComplexNormal(1), src.ComplexNormal(1)}
	bias := []float64{0.3, -0.2}
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	for i := range noise {
		noise[i] = src.ComplexNormal(0.1)
	}
	build := func(tp *Tape) (RVec, float64) {
		xc := tp.ConstC(x)
		a := tp.MatVec(w1, xc)
		bv := tp.MatVec(w2, xc)
		s := tp.AddC(a, tp.ScaleC(bv, 0.5-0.25i))
		s = tp.AddConstC(s, noise)
		s = tp.MulElemConst(s, gains)
		mag := tp.Abs(s)
		mag = tp.ScaleR(mag, 1.7)
		mag = tp.AddConstR(mag, bias)
		return tp.SoftmaxCE(mag, 0)
	}
	loss := func() float64 {
		_, l := build(NewTape())
		return l
	}
	tp := NewTape()
	lnode, _ := build(tp)
	w1.ZeroGrad()
	w2.ZeroGrad()
	tp.Backward(lnode)
	for i := range w1.Val {
		if want := numGradC(loss, w1, i); cmplx.Abs(w1.Grad[i]-want) > 1e-5 {
			t.Fatalf("w1 grad[%d] = %v, numerical %v", i, w1.Grad[i], want)
		}
		if want := numGradC(loss, w2, i); cmplx.Abs(w2.Grad[i]-want) > 1e-5 {
			t.Fatalf("w2 grad[%d] = %v, numerical %v", i, w2.Grad[i], want)
		}
	}
}

func TestSumCGradient(t *testing.T) {
	src := rng.New(5)
	w := randParam(1, 3, src)
	x := []complex128{1, 2i, -1 + 1i}
	// Loss L = |Σ w_i·x_i|: Backward accepts any scalar real node, so seed
	// the Abs output directly and compare against the closed form.
	tp := NewTape()
	spread := tp.MulElemConst(tp.ParamC(w), x)
	s := tp.SumC(spread)
	mag := tp.Abs(s)
	w.ZeroGrad()
	tp.Backward(mag)
	// L = |Σ w_i·x_i|; ∂L/∂w̄_i = conj(x_i)·S/(2|S|)·… with S = Σ w_i x_i:
	// ∂L/∂S̄ = S/(2|S|), ∂S̄/∂w̄_i = conj(x_i).
	var S complex128
	for i := range x {
		S += w.Val[i] * x[i]
	}
	for i := range x {
		want := S / complex(2*cmplx.Abs(S), 0) * cmplx.Conj(x[i])
		if cmplx.Abs(w.Grad[i]-want) > 1e-9 {
			t.Fatalf("SumC grad[%d] = %v, want %v", i, w.Grad[i], want)
		}
	}
}

func TestAbsZeroSubgradient(t *testing.T) {
	w := NewCParam(1, 1) // zero value
	x := []complex128{1}
	tp := NewTape()
	y := tp.MatVec(w, tp.ConstC(x))
	mag := tp.Abs(y)
	tp.Backward(mag)
	if w.Grad[0] != 0 {
		t.Fatalf("grad through |0| = %v, want 0 subgradient", w.Grad[0])
	}
}

func TestSoftmaxCEForward(t *testing.T) {
	tp := NewTape()
	logits := tp.AddConstR(tp.ScaleR(tp.Abs(tp.ConstC([]complex128{0, 0, 0})), 1), []float64{1, 2, 3})
	_, loss := tp.SoftmaxCE(logits, 2)
	// -log softmax([1,2,3])[2]
	want := -math.Log(math.Exp(3) / (math.Exp(1) + math.Exp(2) + math.Exp(3)))
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("CE loss = %v, want %v", loss, want)
	}
}

func TestSoftmaxCEGradSumsToZero(t *testing.T) {
	src := rng.New(6)
	w := randParam(5, 4, src)
	x := make([]complex128, 4)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	tp := NewTape()
	mag := tp.Abs(tp.MatVec(w, tp.ConstC(x)))
	lnode, _ := tp.SoftmaxCE(mag, 3)
	tp.Backward(lnode)
	var sum float64
	for _, g := range mag.n.radj {
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("softmax-CE logit grads sum to %v, want 0", sum)
	}
}

func TestGradAccumulationAcrossSamples(t *testing.T) {
	src := rng.New(7)
	w := randParam(2, 3, src)
	x1 := []complex128{1, 0, 1i}
	x2 := []complex128{0, 1, -1}
	run := func(x []complex128) {
		tp := NewTape()
		mag := tp.Abs(tp.MatVec(w, tp.ConstC(x)))
		lnode, _ := tp.SoftmaxCE(mag, 0)
		tp.Backward(lnode)
	}
	w.ZeroGrad()
	run(x1)
	g1 := append([]complex128(nil), w.Grad...)
	w.ZeroGrad()
	run(x2)
	g2 := append([]complex128(nil), w.Grad...)
	w.ZeroGrad()
	run(x1)
	run(x2)
	for i := range w.Grad {
		if cmplx.Abs(w.Grad[i]-(g1[i]+g2[i])) > 1e-12 {
			t.Fatalf("gradient accumulation broken at %d", i)
		}
	}
}

func TestSoftmaxHelper(t *testing.T) {
	p := Softmax([]float64{math.Log(1), math.Log(2), math.Log(7)})
	want := []float64{0.1, 0.2, 0.7}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("Softmax = %v", p)
		}
	}
	if Softmax(nil) != nil {
		t.Fatal("Softmax(nil) should be nil")
	}
}

func TestCParamMatView(t *testing.T) {
	p := NewCParam(2, 3)
	p.Val[4] = 9i
	m := p.Mat()
	if m.At(1, 1) != 9i {
		t.Fatal("Mat view must share storage")
	}
}

func TestGradientDescentReducesLoss(t *testing.T) {
	// End-to-end sanity: a few SGD steps on a toy problem reduce the loss.
	src := rng.New(8)
	w := randParam(3, 5, src)
	samples := make([][]complex128, 12)
	labels := make([]int, 12)
	for i := range samples {
		samples[i] = make([]complex128, 5)
		for j := range samples[i] {
			samples[i][j] = src.ComplexNormal(1)
		}
		labels[i] = i % 3
	}
	epochLoss := func() float64 {
		var total float64
		for i, x := range samples {
			tp := NewTape()
			mag := tp.Abs(tp.MatVec(w, tp.ConstC(x)))
			_, l := tp.SoftmaxCE(mag, labels[i])
			total += l
		}
		return total
	}
	before := epochLoss()
	for epoch := 0; epoch < 30; epoch++ {
		w.ZeroGrad()
		for i, x := range samples {
			tp := NewTape()
			mag := tp.Abs(tp.MatVec(w, tp.ConstC(x)))
			lnode, _ := tp.SoftmaxCE(mag, labels[i])
			tp.Backward(lnode)
		}
		for i := range w.Val {
			w.Val[i] -= complex(0.05, 0) * w.Grad[i]
		}
	}
	after := epochLoss()
	if after >= before*0.8 {
		t.Fatalf("SGD did not reduce loss: %v -> %v", before, after)
	}
}

func TestModReLUForward(t *testing.T) {
	b := NewRParam(3)
	b.Val = []float64{0.5, -2.0, 0}
	tp := NewTape()
	z := tp.ConstC([]complex128{3 + 4i, 1, 2i})
	y := tp.ModReLU(z, b)
	// |3+4i| = 5, +0.5 → scale 5.5/5 = 1.1.
	if cmplx.Abs(y.Value()[0]-(3+4i)*1.1) > 1e-12 {
		t.Fatalf("modReLU[0] = %v", y.Value()[0])
	}
	// |1| = 1, b = −2 → gated to zero.
	if y.Value()[1] != 0 {
		t.Fatalf("modReLU[1] = %v, want gated 0", y.Value()[1])
	}
	// b = 0 → identity.
	if cmplx.Abs(y.Value()[2]-2i) > 1e-12 {
		t.Fatalf("modReLU[2] = %v", y.Value()[2])
	}
}

func TestModReLUGradientCheck(t *testing.T) {
	src := rng.New(20)
	const U, H, R = 4, 5, 3
	w1 := randParam(H, U, src)
	w2 := randParam(R, H, src)
	bias := NewRParam(H)
	for i := range bias.Val {
		bias.Val[i] = src.Normal(0.2, 0.3)
	}
	x := make([]complex128, U)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	label := 1
	build := func(tp *Tape) (RVec, float64) {
		h := tp.ModReLU(tp.MatVec(w1, tp.ConstC(x)), bias)
		mag := tp.Abs(tp.MatVec(w2, h))
		return tp.SoftmaxCE(mag, label)
	}
	loss := func() float64 {
		_, l := build(NewTape())
		return l
	}
	tp := NewTape()
	lnode, _ := build(tp)
	w1.ZeroGrad()
	w2.ZeroGrad()
	bias.ZeroGrad()
	tp.Backward(lnode)
	for i := range w1.Val {
		if want := numGradC(loss, w1, i); cmplx.Abs(w1.Grad[i]-want) > 2e-5 {
			t.Fatalf("w1 grad[%d] = %v, numerical %v", i, w1.Grad[i], want)
		}
	}
	for i := range w2.Val {
		if want := numGradC(loss, w2, i); cmplx.Abs(w2.Grad[i]-want) > 2e-5 {
			t.Fatalf("w2 grad[%d] = %v, numerical %v", i, w2.Grad[i], want)
		}
	}
	for i := range bias.Val {
		if want := numGradR(loss, bias, i); math.Abs(bias.Grad[i]-want) > 2e-5 {
			t.Fatalf("bias grad[%d] = %v, numerical %v", i, bias.Grad[i], want)
		}
	}
}
