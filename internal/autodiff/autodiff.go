// Package autodiff implements reverse-mode automatic differentiation over
// complex- and real-valued vector nodes, the tool MetaAI's training stage
// needs: the network of §3.1 is complex-valued (RF signals carry amplitude
// and phase) and its loss path contains the non-holomorphic magnitude |·| of
// Eqn 3, so gradients follow Wirtinger calculus.
//
// Convention: for a complex node z the stored adjoint is g_z ≡ ∂L/∂z̄ (the
// conjugate cogradient). For a real scalar loss L, steepest descent is
// z ← z − η·g_z, and ∂L/∂z = conj(g_z). Chain rules used by the ops:
//
//	c = a·b (holomorphic):  g_a += g_c·conj(b),  g_b += g_c·conj(a)
//	r = |c| (real output):  g_c += ḡ_r · c/(2|c|) · 2 = ḡ_r·c/|c|  … see Abs
//	y = x·e^{jφ}, φ real:   dL/dφ = 2·Re(conj(g_y)·j·y)
//
// Parameters live outside the tape in CParam/RParam leaves whose gradients
// accumulate across samples; a fresh lightweight Tape is built per sample.
package autodiff

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cplx"
)

// CParam is a trainable complex parameter tensor (stored flat, with optional
// matrix dims for MatVec). Grad accumulates ∂L/∂W̄ until ZeroGrad.
type CParam struct {
	Rows, Cols int
	Val        []complex128
	Grad       []complex128
}

// NewCParam allocates a rows×cols complex parameter.
func NewCParam(rows, cols int) *CParam {
	return &CParam{
		Rows: rows, Cols: cols,
		Val:  make([]complex128, rows*cols),
		Grad: make([]complex128, rows*cols),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *CParam) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Mat returns the parameter viewed as a cplx.Mat sharing storage.
func (p *CParam) Mat() *cplx.Mat {
	return &cplx.Mat{Rows: p.Rows, Cols: p.Cols, Data: p.Val}
}

// RParam is a trainable real parameter vector (e.g. meta-atom phases in the
// parallelism optimizer and the stacked-PNN baseline).
type RParam struct {
	Val  []float64
	Grad []float64
}

// NewRParam allocates an n-element real parameter.
func NewRParam(n int) *RParam {
	return &RParam{Val: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *RParam) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// node is one tape entry. Exactly one of cval/rval is set.
type node struct {
	cval []complex128
	rval []float64
	cadj []complex128
	radj []float64
	back func(n *node)
}

// Tape records the forward computation of one sample and replays it
// backward. The zero value is ready to use.
type Tape struct {
	nodes []*node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// CVec is a handle to a complex vector node.
type CVec struct {
	t *Tape
	n *node
}

// RVec is a handle to a real vector node.
type RVec struct {
	t *Tape
	n *node
}

// Value returns the node's forward complex values (not a copy).
func (v CVec) Value() []complex128 { return v.n.cval }

// Value returns the node's forward real values (not a copy).
func (v RVec) Value() []float64 { return v.n.rval }

func (t *Tape) push(n *node) *node {
	t.nodes = append(t.nodes, n)
	return n
}

// ConstC records a constant complex vector (no gradient flows into it).
// The slice is captured, not copied.
func (t *Tape) ConstC(vals []complex128) CVec {
	n := t.push(&node{cval: vals, cadj: make([]complex128, len(vals))})
	return CVec{t, n}
}

// ParamC records a complex parameter leaf; backward accumulates into p.Grad.
func (t *Tape) ParamC(p *CParam) CVec {
	n := t.push(&node{
		cval: p.Val,
		cadj: make([]complex128, len(p.Val)),
		back: func(n *node) {
			for i, g := range n.cadj {
				p.Grad[i] += g
			}
		},
	})
	return CVec{t, n}
}

// MatVec computes y = W·x where W is an r×c complex parameter and x a
// complex node of length c. Backward: g_W[r,c] += g_y[r]·conj(x[c]) and
// g_x[c] += conj(W[r,c])·g_y[r].
func (t *Tape) MatVec(w *CParam, x CVec) CVec {
	if len(x.n.cval) != w.Cols {
		panic(fmt.Sprintf("autodiff: MatVec dims %dx%d · %d", w.Rows, w.Cols, len(x.n.cval)))
	}
	xv := x.n.cval
	out := make([]complex128, w.Rows)
	for r := 0; r < w.Rows; r++ {
		row := w.Val[r*w.Cols : (r+1)*w.Cols]
		var sum complex128
		for c, wv := range row {
			sum += wv * xv[c]
		}
		out[r] = sum
	}
	xn := x.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			for r, gy := range n.cadj {
				if gy == 0 {
					continue
				}
				row := w.Val[r*w.Cols : (r+1)*w.Cols]
				grow := w.Grad[r*w.Cols : (r+1)*w.Cols]
				for c := range row {
					grow[c] += gy * cmplx.Conj(xv[c])
					xn.cadj[c] += cmplx.Conj(row[c]) * gy
				}
			}
		},
	})
	return CVec{t, n}
}

// MatVecConst computes y = B·x for a constant matrix B (e.g. the fixed
// inter-layer Green's-function couplings β of the stacked-PNN baseline,
// Eqn 15). Gradient flows into x only.
func (t *Tape) MatVecConst(b *cplx.Mat, x CVec) CVec {
	if len(x.n.cval) != b.Cols {
		panic(fmt.Sprintf("autodiff: MatVecConst dims %dx%d · %d", b.Rows, b.Cols, len(x.n.cval)))
	}
	out := b.MulVec(cplx.Vec(x.n.cval))
	xn := x.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			for r, gy := range n.cadj {
				if gy == 0 {
					continue
				}
				row := b.Data[r*b.Cols : (r+1)*b.Cols]
				for c := range row {
					xn.cadj[c] += cmplx.Conj(row[c]) * gy
				}
			}
		},
	})
	return CVec{t, n}
}

// AddC computes element-wise a + b.
func (t *Tape) AddC(a, b CVec) CVec {
	if len(a.n.cval) != len(b.n.cval) {
		panic("autodiff: AddC length mismatch")
	}
	out := make([]complex128, len(a.n.cval))
	for i := range out {
		out[i] = a.n.cval[i] + b.n.cval[i]
	}
	an, bn := a.n, b.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			for i, g := range n.cadj {
				an.cadj[i] += g
				bn.cadj[i] += g
			}
		},
	})
	return CVec{t, n}
}

// AddConstC computes a + c for a constant vector c (e.g. injected noise,
// Eqn 13's N_e term during noise-aware training).
func (t *Tape) AddConstC(a CVec, c []complex128) CVec {
	if len(a.n.cval) != len(c) {
		panic("autodiff: AddConstC length mismatch")
	}
	out := make([]complex128, len(c))
	for i := range out {
		out[i] = a.n.cval[i] + c[i]
	}
	an := a.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			for i, g := range n.cadj {
				an.cadj[i] += g
			}
		},
	})
	return CVec{t, n}
}

// ScaleC computes s·a for a constant complex scalar s.
func (t *Tape) ScaleC(a CVec, s complex128) CVec {
	out := make([]complex128, len(a.n.cval))
	for i := range out {
		out[i] = s * a.n.cval[i]
	}
	an := a.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			cs := cmplx.Conj(s)
			for i, g := range n.cadj {
				an.cadj[i] += cs * g
			}
		},
	})
	return CVec{t, n}
}

// MulElemConst computes element-wise a[i]·c[i] for a constant vector c.
func (t *Tape) MulElemConst(a CVec, c []complex128) CVec {
	if len(a.n.cval) != len(c) {
		panic("autodiff: MulElemConst length mismatch")
	}
	out := make([]complex128, len(c))
	for i := range out {
		out[i] = a.n.cval[i] * c[i]
	}
	an := a.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			for i, g := range n.cadj {
				an.cadj[i] += g * cmplx.Conj(c[i])
			}
		},
	})
	return CVec{t, n}
}

// PhasorMul computes y[i] = x[i]·e^{jφ[i]} where φ is a real parameter — a
// meta-atom applying its programmable phase shift. Backward:
// g_x[i] += g_y[i]·e^{-jφ[i]} and dL/dφ[i] = 2·Re(conj(g_y[i])·j·y[i]).
func (t *Tape) PhasorMul(x CVec, phi *RParam) CVec {
	if len(x.n.cval) != len(phi.Val) {
		panic("autodiff: PhasorMul length mismatch")
	}
	out := make([]complex128, len(phi.Val))
	ph := make([]complex128, len(phi.Val))
	for i, p := range phi.Val {
		ph[i] = cplx.Expi(p)
		out[i] = x.n.cval[i] * ph[i]
	}
	xn := x.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			for i, g := range n.cadj {
				if g == 0 {
					continue
				}
				xn.cadj[i] += g * cmplx.Conj(ph[i])
				// dL/dφ = 2·Re(conj(g)·j·y)
				jy := complex(-imag(n.cval[i]), real(n.cval[i]))
				phi.Grad[i] += 2 * real(cmplx.Conj(g)*jy)
			}
		},
	})
	return CVec{t, n}
}

// SumC reduces a complex vector node to a length-1 node by summation —
// free-space wave superposition, the "addition at the speed of light".
func (t *Tape) SumC(a CVec) CVec {
	var s complex128
	for _, v := range a.n.cval {
		s += v
	}
	an := a.n
	n := t.push(&node{
		cval: []complex128{s},
		cadj: make([]complex128, 1),
		back: func(n *node) {
			g := n.cadj[0]
			for i := range an.cadj {
				an.cadj[i] += g
			}
		},
	})
	return CVec{t, n}
}

// Abs computes the element-wise magnitude r[i] = |z[i]| as a real node —
// the receiver's envelope detection in Eqn 3. Backward (Wirtinger):
// g_z[i] += ḡ_r[i] · z[i]/(2·|z[i]|) … and because L is real and r depends
// on both z and z̄ symmetrically, the full contribution is ḡ_r·z/(2|z|)
// from ∂r/∂z̄ — with ∂L/∂z̄ = (∂L/∂r)(∂r/∂z̄) and ∂r/∂z̄ = z/(2|z|).
// |z| = 0 propagates a zero subgradient.
func (t *Tape) Abs(z CVec) RVec {
	out := make([]float64, len(z.n.cval))
	for i, v := range z.n.cval {
		out[i] = cmplx.Abs(v)
	}
	zn := z.n
	n := t.push(&node{
		rval: out,
		radj: make([]float64, len(out)),
		back: func(n *node) {
			for i, g := range n.radj {
				if g == 0 || out[i] == 0 {
					continue
				}
				zn.cadj[i] += complex(g/(2*out[i]), 0) * zn.cval[i]
			}
		},
	})
	return RVec{t, n}
}

// AbsSq computes r[i] = |z[i]|². Backward: g_z[i] += ḡ_r[i]·z[i].
func (t *Tape) AbsSq(z CVec) RVec {
	out := make([]float64, len(z.n.cval))
	for i, v := range z.n.cval {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	zn := z.n
	n := t.push(&node{
		rval: out,
		radj: make([]float64, len(out)),
		back: func(n *node) {
			for i, g := range n.radj {
				if g == 0 {
					continue
				}
				zn.cadj[i] += complex(g, 0) * zn.cval[i]
			}
		},
	})
	return RVec{t, n}
}

// ModReLU computes the modReLU activation y = (|z|+b)·z/|z| when |z|+b > 0
// and 0 otherwise, with a trainable real bias b per element — the standard
// magnitude-gated nonlinearity for complex networks, used by the deeper
// architectures the paper names as future work (§7). Wirtinger backward for
// the active branch (m = |z|, b real):
//
//	∂y/∂z = 1 + b/(2m),   ∂y/∂z̄ = −b·z²/(2m³)
//	g_z += g_y·conj(∂y/∂z) + conj(g_y)·∂y/∂z̄
//	dL/db = 2·Re(conj(g_y)·z/m)
func (t *Tape) ModReLU(z CVec, b *RParam) CVec {
	if len(z.n.cval) != len(b.Val) {
		panic("autodiff: ModReLU length mismatch")
	}
	out := make([]complex128, len(z.n.cval))
	active := make([]bool, len(out))
	for i, v := range z.n.cval {
		m := cmplx.Abs(v)
		if m+b.Val[i] > 0 && m > 0 {
			out[i] = v * complex((m+b.Val[i])/m, 0)
			active[i] = true
		}
	}
	zn := z.n
	n := t.push(&node{
		cval: out,
		cadj: make([]complex128, len(out)),
		back: func(n *node) {
			for i, g := range n.cadj {
				if g == 0 || !active[i] {
					continue
				}
				v := zn.cval[i]
				m := cmplx.Abs(v)
				bi := b.Val[i]
				dz := complex(1+bi/(2*m), 0)
				dzb := -complex(bi/(2*m*m*m), 0) * v * v
				zn.cadj[i] += g*dz + cmplx.Conj(g)*dzb
				u := v / complex(m, 0)
				b.Grad[i] += 2 * real(cmplx.Conj(g)*u)
			}
		},
	})
	return CVec{t, n}
}

// ScaleR computes s·a for a real node.
func (t *Tape) ScaleR(a RVec, s float64) RVec {
	out := make([]float64, len(a.n.rval))
	for i := range out {
		out[i] = s * a.n.rval[i]
	}
	an := a.n
	n := t.push(&node{
		rval: out,
		radj: make([]float64, len(out)),
		back: func(n *node) {
			for i, g := range n.radj {
				an.radj[i] += s * g
			}
		},
	})
	return RVec{t, n}
}

// AddConstR computes a + c for a constant real vector.
func (t *Tape) AddConstR(a RVec, c []float64) RVec {
	if len(a.n.rval) != len(c) {
		panic("autodiff: AddConstR length mismatch")
	}
	out := make([]float64, len(c))
	for i := range out {
		out[i] = a.n.rval[i] + c[i]
	}
	an := a.n
	n := t.push(&node{
		rval: out,
		radj: make([]float64, len(out)),
		back: func(n *node) {
			for i, g := range n.radj {
				an.radj[i] += g
			}
		},
	})
	return RVec{t, n}
}

// SoftmaxCE computes the scalar cross-entropy −log softmax(logits)[label],
// the training loss of §3.1 (and of the parallelism losses Eqns 9–10, whose
// log-of-magnitude terms are exactly a cross entropy over |y|). It returns
// the loss node and the forward loss value.
func (t *Tape) SoftmaxCE(logits RVec, label int) (RVec, float64) {
	lv := logits.n.rval
	if label < 0 || label >= len(lv) {
		panic(fmt.Sprintf("autodiff: label %d out of range %d", label, len(lv)))
	}
	max := lv[0]
	for _, v := range lv[1:] {
		if v > max {
			max = v
		}
	}
	var z float64
	probs := make([]float64, len(lv))
	for i, v := range lv {
		probs[i] = math.Exp(v - max)
		z += probs[i]
	}
	for i := range probs {
		probs[i] /= z
	}
	loss := -math.Log(probs[label])
	ln := logits.n
	n := t.push(&node{
		rval: []float64{loss},
		radj: make([]float64, 1),
		back: func(n *node) {
			g := n.radj[0]
			for i, p := range probs {
				d := p
				if i == label {
					d -= 1
				}
				ln.radj[i] += g * d
			}
		},
	})
	return RVec{t, n}, loss
}

// Backward seeds the given scalar real node with adjoint 1 and propagates
// through the tape in reverse, accumulating parameter gradients.
func (t *Tape) Backward(loss RVec) {
	if len(loss.n.rval) != 1 {
		panic("autodiff: Backward requires a scalar loss node")
	}
	loss.n.radj[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if n := t.nodes[i]; n.back != nil {
			n.back(n)
		}
	}
}

// Softmax returns the softmax of xs (a plain helper for inference-side
// probability reporting; no tape involvement).
func Softmax(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(xs))
	var z float64
	for i, v := range xs {
		out[i] = math.Exp(v - max)
		z += out[i]
	}
	for i := range out {
		out[i] /= z
	}
	return out
}
