// Package noisetrain implements the system-noise alleviation scheme of
// §3.5.2: training-time injection of the two noise sources of Eqn 13 —
// hardware noise N_d (meta-atom device discrepancies) and environmental
// noise N_e — so the deployed weights tolerate them.
//
// The paper's reorganization (Eqn 14) observes that hardware noise applied
// to the *weights* is equivalent to noise applied to the *input signal*
// (N̂_d = x/H·N_d), because weights change during training but the input
// does not. The package therefore trains with (a) an input-side complex
// noise whose level mimics the hardware SNR and (b) an output-side complex
// noise N_e; both levels are calibrated against the data's actual signal
// scales in a two-stage procedure (plain pre-training measures the output
// magnitude scale, then the final model trains with matched noise).
package noisetrain

import (
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
)

// Config sets the injected noise levels as SNRs relative to the measured
// signal scales.
type Config struct {
	// InputSNRdB is the signal-to-hardware-noise ratio mimicking N̂_d of
	// Eqn 14 (applied per input symbol). ≤0 disables.
	InputSNRdB float64
	// OutputSNRdB is the accumulator-to-environment-noise ratio mimicking
	// N_e of Eqn 13 (applied per output before the magnitude). ≤0 disables.
	OutputSNRdB float64
}

// DefaultConfig trains against roughly the noise the prototype hardware and
// a mid-range link exhibit.
func DefaultConfig() Config {
	return Config{InputSNRdB: 18, OutputSNRdB: 16}
}

// InputNoise returns an augmenter adding circularly-symmetric complex noise
// at the given SNR relative to unit-power symbols.
func InputNoise(snrDB float64) nn.InputAugmenter {
	sigma2 := math.Pow(10, -snrDB/10)
	return func(x []complex128, src *rng.Source) []complex128 {
		out := make([]complex128, len(x))
		for i, v := range x {
			out[i] = v + src.ComplexNormal(sigma2)
		}
		return out
	}
}

// OutputNoise returns a noiser adding complex noise of the given standard
// deviation to every pre-magnitude output.
func OutputNoise(std float64) nn.OutputNoiser {
	sigma2 := std * std
	return func(n int, src *rng.Source) []complex128 {
		out := make([]complex128, n)
		for i := range out {
			out[i] = src.ComplexNormal(sigma2)
		}
		return out
	}
}

// MeasureOutputRMS returns the RMS magnitude of a model's pre-softmax
// outputs over a set — the signal scale N_e is calibrated against.
func MeasureOutputRMS(m *nn.ComplexLNN, set *nn.EncodedSet) float64 {
	if len(set.X) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, x := range set.X {
		for _, v := range m.Logits(x) {
			sum += v * v
			n++
		}
	}
	return math.Sqrt(sum / float64(n))
}

// Train runs the two-stage noise-aware training: a plain pre-training pass
// establishes the output signal scale, then the final model trains with
// input noise at InputSNRdB and output noise at OutputSNRdB relative to that
// scale. cfg.Epochs etc. follow base.
func Train(train *nn.EncodedSet, base nn.TrainConfig, noise Config) *nn.ComplexLNN {
	pre := base
	pre.InputAug = nil
	pre.OutputNoise = nil
	plain := nn.TrainLNN(train, pre)
	scale := MeasureOutputRMS(plain, train)

	final := base
	if noise.InputSNRdB > 0 {
		final.InputAug = InputNoise(noise.InputSNRdB)
	}
	if noise.OutputSNRdB > 0 && scale > 0 {
		std := scale * math.Pow(10, -noise.OutputSNRdB/20)
		final.OutputNoise = OutputNoise(std)
	}
	return nn.TrainLNN(train, final)
}
