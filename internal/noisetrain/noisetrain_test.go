package noisetrain

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/rng"
)

func encoded(t *testing.T, name string) (*nn.EncodedSet, *nn.EncodedSet) {
	t.Helper()
	ds := dataset.MustLoad(name, dataset.Quick, 1)
	enc := nn.Encoder{Scheme: modem.QAM256}
	return nn.EncodeSet(ds.Train, ds.Classes, enc), nn.EncodeSet(ds.Test, ds.Classes, enc)
}

func TestInputNoiseLevel(t *testing.T) {
	aug := InputNoise(10) // SNR 10 dB → noise power 0.1
	src := rng.New(1)
	x := make([]complex128, 20000)
	out := aug(x, src)
	var p float64
	for _, v := range out {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(out))
	if math.Abs(p-0.1) > 0.01 {
		t.Fatalf("injected noise power %v, want 0.1", p)
	}
	// Input must not be modified in place.
	for _, v := range x {
		if v != 0 {
			t.Fatal("InputNoise modified its input")
		}
	}
}

func TestOutputNoiseLevel(t *testing.T) {
	noiser := OutputNoise(2.0)
	src := rng.New(2)
	var p float64
	const n = 20000
	for i := 0; i < n; i++ {
		for _, v := range noiser(1, src) {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	if math.Abs(p/n-4.0) > 0.2 {
		t.Fatalf("output noise power %v, want 4.0", p/n)
	}
}

func TestMeasureOutputRMSPositive(t *testing.T) {
	train, _ := encoded(t, "afhq")
	m := nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 5})
	rms := MeasureOutputRMS(m, train)
	if rms <= 0 {
		t.Fatalf("output RMS = %v", rms)
	}
	if got := MeasureOutputRMS(m, &nn.EncodedSet{Classes: 3}); got != 0 {
		t.Fatalf("empty set RMS = %v, want 0", got)
	}
}

// TestNoiseAwareTrainingHelpsAtLowSNR reproduces Fig 19's claim: under a
// noisy link, noise-aware-trained weights beat plain weights; under a clean
// link they cost little.
func TestNoiseAwareTrainingHelpsAtLowSNR(t *testing.T) {
	train, test := encoded(t, "mnist")
	base := nn.TrainConfig{Seed: 1, Epochs: 40}
	plain := nn.TrainLNN(train, base)
	robust := Train(train, base, DefaultConfig())

	// Evaluate digitally under simulated noisy observation: noise added to
	// inputs and outputs at matched scales, mimicking a low-SNR link.
	evalNoisy := func(m *nn.ComplexLNN, seed uint64) float64 {
		src := rng.New(seed)
		inAug := InputNoise(8)
		scale := MeasureOutputRMS(m, train)
		outNoise := OutputNoise(scale * math.Pow(10, -8.0/20))
		correct := 0
		for i, x := range test.X {
			xn := inAug(x, src)
			logits := m.Logits(xn)
			for r, nz := range outNoise(len(logits), src) {
				re := logits[r] + real(nz)
				im := imag(nz)
				logits[r] = math.Sqrt(re*re + im*im)
			}
			best, arg := math.Inf(-1), 0
			for r, v := range logits {
				if v > best {
					best, arg = v, r
				}
			}
			if arg == test.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(test.X))
	}
	accPlain := evalNoisy(plain, 10)
	accRobust := evalNoisy(robust, 10)
	if accRobust <= accPlain {
		t.Fatalf("noise-aware training did not help: plain %.3f, robust %.3f", accPlain, accRobust)
	}
	// Clean-link cost should be small.
	clean := nn.Evaluate(robust, test)
	cleanPlain := nn.Evaluate(plain, test)
	if cleanPlain-clean > 0.06 {
		t.Fatalf("noise-aware training cost %.3f clean accuracy", cleanPlain-clean)
	}
}

func TestTrainDisablesNoiseWhenConfigured(t *testing.T) {
	train, test := encoded(t, "afhq")
	base := nn.TrainConfig{Seed: 2, Epochs: 10}
	off := Train(train, base, Config{})
	ref := nn.TrainLNN(train, base)
	// With both injections disabled, Train must match plain training
	// exactly (same seed path).
	for i := range off.W.Val {
		if off.W.Val[i] != ref.W.Val[i] {
			t.Fatal("noise config zero should reduce to plain training")
		}
	}
	_ = test
}
