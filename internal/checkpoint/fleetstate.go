package checkpoint

import "fmt"

// FleetState is the coordinator's durable core: everything a restarted
// fleet router needs to rejoin its own fleet without diverging it.
//
// The publication sequence is the critical piece — ROADMAP's router-
// replication gap. Sequences used to restart from 1 with the process,
// which made every surviving replica look "ahead" of the new coordinator
// and forced a full anti-entropy storm keyed only by the incarnation
// nonce. Journaling pubSeq (and the committed epoch bytes) lets a restarted
// coordinator resume counting where it left off and re-offer the exact
// epoch the fleet last converged on.
//
// The incarnation nonce is deliberately ABSENT: it must differ across
// process restarts (replicas cache per-transfer verdicts keyed by
// (seq, nonce), and a reused nonce would let stale cached verdicts answer
// for different bytes). A restored coordinator draws a fresh nonce, so
// replicas' remembered (nonce, seq) versions mismatch and one round of
// anti-entropy re-converges them onto the journaled epoch.
type FleetState struct {
	// PubSeq is the last publication sequence issued (committed or not);
	// the restarted coordinator keeps counting from here.
	PubSeq uint32
	// CurrentTid is the sequence of the last COMMITTED publication
	// (0 before the first).
	CurrentTid uint32
	// Members is the known membership: name and UDP address of every
	// replica that was seeded or ever announced itself.
	Members []FleetMember
	// Current is the sealed epoch the fleet last converged on (nil before
	// the first commit). Stored verbatim — the wire format IS the journal
	// format — so the restored coordinator can anti-entropy push it
	// byte-for-byte.
	Current []byte
}

// FleetMember is one journaled membership record.
type FleetMember struct {
	Name string
	Addr string // UDP host:port of the replica's serving socket
}

// EncodeFleetState seals a fleet coordinator snapshot into a KindFleet
// checkpoint.
func EncodeFleetState(s *FleetState) []byte {
	var w writer
	w.u32(s.PubSeq)
	w.u32(s.CurrentTid)
	w.u32(uint32(len(s.Members)))
	for _, m := range s.Members {
		w.str(m.Name)
		w.str(m.Addr)
	}
	w.u64(uint64(len(s.Current)))
	w.buf = append(w.buf, s.Current...)
	return seal(KindFleet, w.buf)
}

// DecodeFleetState validates and decodes a sealed KindFleet checkpoint.
func DecodeFleetState(b []byte) (*FleetState, error) {
	payload, _, err := open(KindFleet, b)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	s := &FleetState{
		PubSeq:     r.u32(),
		CurrentTid: r.u32(),
	}
	n := r.count(8) // each member is at least two length prefixes
	if r.err == nil && n > 0 {
		s.Members = make([]FleetMember, n)
		for i := range s.Members {
			s.Members[i] = FleetMember{Name: r.str(), Addr: r.str()}
		}
	}
	cn := int(r.u64())
	if cur := r.take(cn); len(cur) > 0 {
		s.Current = append([]byte(nil), cur...)
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("fleet state: %w", err)
	}
	if s.CurrentTid > s.PubSeq {
		return nil, fmt.Errorf("%w: committed sequence %d beyond publication sequence %d", ErrInvalid, s.CurrentTid, s.PubSeq)
	}
	return s, nil
}
