package checkpoint

import (
	"errors"
	"testing"
)

func TestFleetStateRoundTrip(t *testing.T) {
	in := &FleetState{
		PubSeq:     17,
		CurrentTid: 15,
		Members: []FleetMember{
			{Name: "127.0.0.1:9530", Addr: "127.0.0.1:9530"},
			{Name: "edge-b", Addr: "127.0.0.1:9531"},
		},
		Current: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01},
	}
	out, err := DecodeFleetState(EncodeFleetState(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.PubSeq != in.PubSeq || out.CurrentTid != in.CurrentTid {
		t.Fatalf("sequences: got (%d,%d), want (%d,%d)", out.PubSeq, out.CurrentTid, in.PubSeq, in.CurrentTid)
	}
	if len(out.Members) != 2 || out.Members[1] != in.Members[1] {
		t.Fatalf("members: %+v", out.Members)
	}
	if string(out.Current) != string(in.Current) {
		t.Fatalf("epoch bytes: %x", out.Current)
	}
}

func TestFleetStateEmpty(t *testing.T) {
	out, err := DecodeFleetState(EncodeFleetState(&FleetState{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.PubSeq != 0 || out.Members != nil || out.Current != nil {
		t.Fatalf("empty state decoded as %+v", out)
	}
}

// A flipped byte anywhere must read as corruption — the CRC covers header
// and payload alike.
func TestFleetStateCorruptionRejected(t *testing.T) {
	b := EncodeFleetState(&FleetState{PubSeq: 3, CurrentTid: 3, Current: []byte("epoch")})
	for _, i := range []int{0, 6, len(b) / 2, len(b) - 1} {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x40
		if _, err := DecodeFleetState(bad); err == nil {
			t.Fatalf("flipped byte %d decoded cleanly", i)
		}
	}
}

// A committed sequence beyond the publication counter can never have been
// written by a correct coordinator; restoring it would hand out duplicate
// sequences.
func TestFleetStateSequenceInvariant(t *testing.T) {
	var w = &FleetState{PubSeq: 2, CurrentTid: 5}
	if _, err := DecodeFleetState(EncodeFleetState(w)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("tid > pubSeq decoded with err %v, want ErrInvalid", err)
	}
}

// KindFleet must not decode as an epoch and vice versa.
func TestFleetStateKindConfusion(t *testing.T) {
	b := EncodeFleetState(&FleetState{PubSeq: 1, CurrentTid: 1})
	if k, err := PeekKind(b); err != nil || k != KindFleet {
		t.Fatalf("PeekKind = %v, %v", k, err)
	}
	if _, err := DecodeEpoch(b); !errors.Is(err, ErrKind) {
		t.Fatalf("fleet state decoded as epoch: %v", err)
	}
}
