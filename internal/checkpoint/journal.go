package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNoEpoch reports a journal with no recoverable entry — every file is
// missing, truncated, or corrupt. The caller decides whether that means
// "cold start" or "refuse to serve".
var ErrNoEpoch = errors.New("checkpoint: journal holds no recoverable epoch")

const journalPattern = "epoch-%08d.ckpt"

// Journal is metaai-serve's write-ahead epoch log: one sealed KindEpoch file
// per published serving state, append-only, recovered newest-first. Appends
// go through WriteFile's write→fsync→rename discipline, so the journal is
// kill-safe by construction — a crash mid-append leaves the previous entries
// untouched and at worst an invisible temp file.
type Journal struct {
	dir string

	mu   sync.Mutex
	next uint64 // sequence number the next Append will assign
}

// OpenJournal opens (creating if needed) the epoch journal in dir and
// positions the append cursor after the highest existing entry.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, next: 1}
	for _, seq := range j.sequences() {
		if seq >= j.next {
			j.next = seq + 1
		}
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// sequences returns the sequence numbers of all well-named entries,
// ascending. Files that don't parse as journal entries are ignored.
func (j *Journal) sequences() []uint64 {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, ent := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(ent.Name(), journalPattern, &seq); n == 1 && err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	return seqs
}

func (j *Journal) path(seq uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf(journalPattern, seq))
}

// Append assigns the epoch the next sequence number and durably writes it.
// It returns the assigned sequence. Append serializes internally; it is safe
// to call from the heal supervisor while the serving path runs — the write
// happens off the request path entirely.
func (j *Journal) Append(e *Epoch) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e.Seq = j.next
	if err := WriteFile(j.path(e.Seq), EncodeEpoch(e)); err != nil {
		return 0, err
	}
	j.next++
	return e.Seq, nil
}

// Recover returns the newest decodable epoch, scanning backwards across
// corrupt or truncated entries (each skip bumps the checkpoint.corrupt
// counter). ErrNoEpoch means the journal exists but nothing in it can be
// served.
func (j *Journal) Recover() (*Epoch, error) {
	return j.RecoverBefore(0)
}

// RecoverBefore is Recover restricted to entries with sequence < seq
// (seq == 0 means unrestricted). It is the rollback primitive: "the newest
// good epoch that is not the one that just regressed".
func (j *Journal) RecoverBefore(seq uint64) (*Epoch, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	seqs := j.sequences()
	var firstErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		if seq != 0 && seqs[i] >= seq {
			continue
		}
		b, err := ReadFile(j.path(seqs[i]))
		if err == nil {
			var e *Epoch
			if e, err = DecodeEpoch(b); err == nil {
				return e, nil
			}
		}
		ckptCorrupt.Inc()
		if firstErr == nil {
			firstErr = fmt.Errorf("epoch %d: %w", seqs[i], err)
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w (newest failure: %v)", ErrNoEpoch, firstErr)
	}
	return nil, ErrNoEpoch
}

// Prune removes all but the newest keep entries, bounding the state
// directory. Keep at least 2 so a rollback target always survives.
func (j *Journal) Prune(keep int) error {
	if keep < 1 {
		keep = 1
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	seqs := j.sequences()
	if len(seqs) <= keep {
		return nil
	}
	var firstErr error
	for _, seq := range seqs[:len(seqs)-keep] {
		if err := os.Remove(j.path(seq)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := syncDir(j.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close flushes the journal directory. Appends are individually durable, so
// Close exists for shutdown ordering: serve drain → journal close → metrics
// sidecar teardown.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return syncDir(j.dir)
}
