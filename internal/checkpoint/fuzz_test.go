package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

// FuzzDecode hammers the checkpoint decoder with arbitrary bytes: any input
// must either decode into a value that re-encodes to the exact same bytes,
// or fail with an error — never panic, never hang, never allocate
// proportionally to a lying length prefix. Seeds cover every kind plus
// adversarial mutations of each.
func FuzzDecode(f *testing.F) {
	m := nn.NewComplexLNN(2, 4)
	m.InitWeights(rng.New(5))
	modelBlob := EncodeModel(m)

	// A real deployment epoch is expensive to build per fuzz iteration, so
	// seed from a prebuilt one.
	e := buildEpoch(97)
	epochBlob := EncodeEpoch(e)
	deployBlob := EncodeDeployment(e.State)
	thBlob := EncodeThresholds(Thresholds{Threshold: 0.25, Window: 16})
	// Version-2 cascade state exercises the layer block decoder.
	ce := buildCascadeEpoch(101)
	cascadeEpochBlob := EncodeEpoch(ce)
	cascadeDeployBlob := EncodeDeployment(ce.State)
	fleetBlob := EncodeFleetState(&FleetState{
		PubSeq: 9, CurrentTid: 7,
		Members: []FleetMember{{Name: "a", Addr: "127.0.0.1:9530"}},
		Current: epochBlob,
	})

	seeds := [][]byte{
		nil,
		[]byte(magic),
		modelBlob,
		deployBlob,
		thBlob,
		epochBlob,
		epochBlob[:len(epochBlob)/2],
		append([]byte(nil), epochBlob[headerLen:]...),
		cascadeEpochBlob,
		cascadeDeployBlob,
		cascadeDeployBlob[:len(cascadeDeployBlob)*3/4],
		fleetBlob,
		fleetBlob[:len(fleetBlob)/2],
	}
	// Mutated variants: flipped kind, zeroed CRC, elevated version.
	for _, base := range [][]byte{modelBlob, thBlob} {
		mut := append([]byte(nil), base...)
		mut[6] = byte(KindEpoch)
		reCRC(mut)
		seeds = append(seeds, mut)
		mut2 := append([]byte(nil), base...)
		mut2[len(mut2)-1] ^= 0xFF
		seeds = append(seeds, mut2)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := Decode(b)
		if err != nil {
			return
		}
		// Round-trip stability: whatever decoded must re-encode to the
		// original bytes — the format has exactly one representation per
		// value.
		var again []byte
		switch x := v.(type) {
		case *nn.ComplexLNN:
			again = EncodeModel(x)
		case *ota.DeploymentState:
			again = EncodeDeployment(x)
		case Thresholds:
			again = EncodeThresholds(x)
		case *Epoch:
			again = EncodeEpoch(x)
		case *FleetState:
			again = EncodeFleetState(x)
		default:
			t.Fatalf("Decode returned unexpected type %T", v)
		}
		if !bytes.Equal(again, b) {
			t.Fatalf("re-encode diverges: %d bytes in, %d bytes out", len(b), len(again))
		}
	})
}
