// Package checkpoint is the durable-state layer of the air-serving stack: a
// versioned, CRC-checksummed, pure-stdlib binary format for trained models,
// solved deployments, monitor thresholds, and full serving epochs, plus the
// atomic file plumbing and the WAL-style epoch journal metaai-serve recovers
// from after a crash.
//
// Two properties anchor the design:
//
//   - Bit identity. Floats are serialized as IEEE-754 bit patterns and a
//     restored deployment recomputes its derived statistics with the same
//     arithmetic the original used (ota.FromState), so the accumulators of a
//     recovered epoch are byte-identical to the pre-crash epoch's — no
//     re-training, no re-solving, no drift.
//   - Fail loudly, never serve garbage. Every file is sealed under a CRC
//     covering header and payload; decoding validates structure and
//     semantics (ota.DeploymentState.Validate) before anything reaches the
//     serving path, and every failure maps onto a typed error so recovery
//     can distinguish "corrupt, fall back an epoch" from "wrong format,
//     refuse to start".
package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/channel"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/ota"
)

// Typed decode errors. Callers branch with errors.Is; the journal treats all
// of them as "skip this entry and fall back".
var (
	// ErrTruncated marks a file shorter than its structure claims.
	ErrTruncated = errors.New("checkpoint: truncated")
	// ErrBadMagic marks a file that was never a checkpoint.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrCorrupt marks a CRC mismatch — the bytes changed after sealing.
	ErrCorrupt = errors.New("checkpoint: checksum mismatch")
	// ErrVersion marks a format version this build does not read.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrKind marks a structurally valid checkpoint of the wrong kind.
	ErrKind = errors.New("checkpoint: unexpected kind")
	// ErrInvalid marks a checkpoint whose payload fails semantic validation.
	ErrInvalid = errors.New("checkpoint: invalid payload")
)

// Checkpoint I/O metrics: files sealed and written, files loaded, and decode
// failures (any typed error above counts — the journal also bumps this for
// every entry it skips during recovery).
var (
	ckptWrites  = obs.NewCounter("checkpoint.write")
	ckptLoads   = obs.NewCounter("checkpoint.load")
	ckptCorrupt = obs.NewCounter("checkpoint.corrupt")
)

// EncodeModel seals a trained network: dimensions plus the complex weight
// matrix, bit for bit.
func EncodeModel(m *nn.ComplexLNN) []byte {
	var w writer
	w.u32(uint32(m.Classes))
	w.u32(uint32(m.U))
	w.c128s(m.W.Val)
	return seal(KindModel, w.buf)
}

// DecodeModel rebuilds a network from a sealed model checkpoint.
func DecodeModel(b []byte) (*nn.ComplexLNN, error) {
	payload, _, err := open(KindModel, b)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	classes := int(r.u32())
	u := int(r.u32())
	weights := r.c128s()
	if err := r.done(); err != nil {
		return nil, err
	}
	if classes <= 0 || u <= 0 || classes > 1<<16 || u > 1<<20 {
		return nil, fmt.Errorf("%w: model dimensions %dx%d", ErrInvalid, classes, u)
	}
	if len(weights) != classes*u {
		return nil, fmt.Errorf("%w: %d weights for a %dx%d model", ErrInvalid, len(weights), classes, u)
	}
	m := nn.NewComplexLNN(classes, u)
	copy(m.W.Val, weights)
	return m, nil
}

// stateVersion returns the envelope version a DeploymentState needs:
// versionCascade iff it carries cascade layers, so single-surface
// checkpoints stay byte-identical to version-1 builds.
func stateVersion(st *ota.DeploymentState) uint16 {
	if len(st.Layers) > 0 {
		return versionCascade
	}
	return version
}

// encodeState appends a DeploymentState to w at format version v — shared
// by the deployment and epoch kinds. Version 1 writes exactly the
// pre-cascade field sequence; version 2 appends the cascade block.
func encodeState(w *writer, st *ota.DeploymentState, v uint16) {
	w.u32(uint32(st.Surface.Rows))
	w.u32(uint32(st.Surface.Cols))
	w.u32(uint32(st.Surface.Bits))
	w.f64(st.Surface.FreqGHz)
	w.f64(st.Surface.SpacingM)
	w.f64(st.Surface.FabPhaseStd)
	w.f64s(st.Surface.Fab)

	w.f64(st.Geometry.TxDistM)
	w.f64(st.Geometry.TxAngleDeg)
	w.f64(st.Geometry.RxDistM)
	w.f64(st.Geometry.RxAngleDeg)

	w.u32(uint32(st.Controller.Groups))
	w.u32(uint32(st.Controller.BitsPerAtom))
	w.f64(st.Controller.ClockHz)
	w.f64(st.Controller.SwitchEnergyJ)

	w.u32(uint32(st.Channel.Env))
	w.u32(uint32(st.Channel.Antenna))
	w.f64(st.Channel.FreqGHz)
	w.f64(st.Channel.TxMTSDist)
	w.f64(st.Channel.MTSRxDist)
	w.f64(st.Channel.TxPowerDB)
	w.u32(uint32(st.Channel.Walls))
	w.u32(uint32(st.Channel.Interf))
	w.f64(st.Channel.DopplerHz)
	w.f64(st.Channel.SymbolRateHz)

	w.u32(uint32(st.SubSamples))
	w.f64(st.TargetScale)
	w.f64(st.BeamScanStepDeg)
	w.f64(st.JitterStd)
	w.f64(st.SymbolRateHz)
	w.bool(st.ExactJitter)
	w.bool(st.CompensateEnv)

	// Schedule: dense classes×U×atoms state bytes — dimensions are implied
	// by the surface grid and realized matrix, so only the raw states ship.
	w.u32(uint32(len(st.Schedule)))
	var cols int
	if len(st.Schedule) > 0 {
		cols = len(st.Schedule[0])
	}
	w.u32(uint32(cols))
	for _, row := range st.Schedule {
		for _, cfg := range row {
			w.u32(uint32(len(cfg)))
			w.buf = append(w.buf, cfg...)
		}
	}
	w.c128s(st.Realized.Data)

	w.f64(st.Gamma)
	w.f64(st.EstRxAngleDeg)
	w.c128(st.EnvBase)
	w.c128(st.CalMTSPhase)
	w.f64(st.EnvScale)

	if v >= versionCascade {
		w.u32(uint32(len(st.Layers)))
		for _, layer := range st.Layers {
			w.u32(uint32(layer.Surface.Rows))
			w.u32(uint32(layer.Surface.Cols))
			w.u32(uint32(layer.Surface.Bits))
			w.f64(layer.Surface.FreqGHz)
			w.f64(layer.Surface.SpacingM)
			w.f64(layer.Surface.FabPhaseStd)
			w.f64s(layer.Surface.Fab)
			w.f64(layer.Geometry.TxDistM)
			w.f64(layer.Geometry.TxAngleDeg)
			w.f64(layer.Geometry.RxDistM)
			w.f64(layer.Geometry.RxAngleDeg)
		}
		w.u32(uint32(len(st.LayerSchedules)))
		for _, sched := range st.LayerSchedules {
			w.u32(uint32(len(sched)))
			var cols int
			if len(sched) > 0 {
				cols = len(sched[0])
			}
			w.u32(uint32(cols))
			for _, row := range sched {
				for _, cfg := range row {
					w.u32(uint32(len(cfg)))
					w.buf = append(w.buf, cfg...)
				}
			}
		}
		w.f64s(st.LayerPower)
		w.f64(st.HopNoise)
	}
}

// decodeSchedule reads one rows×cols configuration matrix with the
// allocation guards (shared by the primary and per-layer schedules).
func decodeSchedule(r *reader) [][]mts.Config {
	rows := r.count(0)
	cols := int(r.u32())
	if r.err == nil {
		if rows < 0 || cols < 0 || cols > 1<<20 || (cols > 0 && rows > (len(r.b)-r.off)/cols) {
			r.fail("%w: schedule claims %dx%d configurations in %d remaining bytes", ErrTruncated, rows, cols, len(r.b)-r.off)
		}
	}
	if r.err != nil || rows == 0 {
		return nil
	}
	out := make([][]mts.Config, rows)
	for i := range out {
		row := make([]mts.Config, cols)
		for j := range row {
			// Copy out of the payload buffer: a decoded state must own its
			// storage.
			row[j] = mts.Config(append([]uint8(nil), r.take(r.count(1))...))
		}
		out[i] = row
	}
	return out
}

// decodeState reads a DeploymentState sealed at format version v and
// validates it.
func decodeState(r *reader, v uint16) (*ota.DeploymentState, error) {
	st := &ota.DeploymentState{}
	st.Surface.Rows = int(r.u32())
	st.Surface.Cols = int(r.u32())
	st.Surface.Bits = int(r.u32())
	st.Surface.FreqGHz = r.f64()
	st.Surface.SpacingM = r.f64()
	st.Surface.FabPhaseStd = r.f64()
	st.Surface.Fab = r.f64s()

	st.Geometry.TxDistM = r.f64()
	st.Geometry.TxAngleDeg = r.f64()
	st.Geometry.RxDistM = r.f64()
	st.Geometry.RxAngleDeg = r.f64()

	st.Controller.Groups = int(r.u32())
	st.Controller.BitsPerAtom = int(r.u32())
	st.Controller.ClockHz = r.f64()
	st.Controller.SwitchEnergyJ = r.f64()

	st.Channel.Env = channel.Environment(r.u32())
	st.Channel.Antenna = channel.Antenna(r.u32())
	st.Channel.FreqGHz = r.f64()
	st.Channel.TxMTSDist = r.f64()
	st.Channel.MTSRxDist = r.f64()
	st.Channel.TxPowerDB = r.f64()
	st.Channel.Walls = int(r.u32())
	st.Channel.Interf = channel.InterferenceRegion(r.u32())
	st.Channel.DopplerHz = r.f64()
	st.Channel.SymbolRateHz = r.f64()

	st.SubSamples = int(r.u32())
	st.TargetScale = r.f64()
	st.BeamScanStepDeg = r.f64()
	st.JitterStd = r.f64()
	st.SymbolRateHz = r.f64()
	st.ExactJitter = r.bool()
	st.CompensateEnv = r.bool()

	st.Schedule = decodeSchedule(r)
	realized := r.c128s()

	st.Gamma = r.f64()
	st.EstRxAngleDeg = r.f64()
	st.EnvBase = r.c128()
	st.CalMTSPhase = r.c128()
	st.EnvScale = r.f64()

	if v >= versionCascade {
		nLayers := r.count(1)
		if r.err == nil && nLayers > 0 {
			st.Layers = make([]ota.CascadeLayerState, nLayers)
			for k := range st.Layers {
				l := &st.Layers[k]
				l.Surface.Rows = int(r.u32())
				l.Surface.Cols = int(r.u32())
				l.Surface.Bits = int(r.u32())
				l.Surface.FreqGHz = r.f64()
				l.Surface.SpacingM = r.f64()
				l.Surface.FabPhaseStd = r.f64()
				l.Surface.Fab = r.f64s()
				l.Geometry.TxDistM = r.f64()
				l.Geometry.TxAngleDeg = r.f64()
				l.Geometry.RxDistM = r.f64()
				l.Geometry.RxAngleDeg = r.f64()
			}
		}
		nScheds := r.count(1)
		if r.err == nil && nScheds > 0 {
			st.LayerSchedules = make([][][]mts.Config, nScheds)
			for k := range st.LayerSchedules {
				st.LayerSchedules[k] = decodeSchedule(r)
			}
		}
		st.LayerPower = r.f64s()
		st.HopNoise = r.f64()
	}
	if r.err != nil {
		return nil, r.err
	}
	rows, cols := len(st.Schedule), 0
	if rows > 0 {
		cols = len(st.Schedule[0])
	}
	if rows > 0 && cols > 0 {
		if len(realized) != rows*cols {
			return nil, fmt.Errorf("%w: %d realized responses for a %dx%d schedule", ErrInvalid, len(realized), rows, cols)
		}
		st.Realized = &cplx.Mat{Rows: rows, Cols: cols, Data: realized}
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return st, nil
}

// EncodeDeployment seals a deployment snapshot — version 1 for a
// single-surface deployment (byte-identical to pre-cascade builds),
// version 2 when cascade layers are present.
func EncodeDeployment(st *ota.DeploymentState) []byte {
	v := stateVersion(st)
	var w writer
	encodeState(&w, st, v)
	return sealV(KindDeployment, v, w.buf)
}

// DecodeDeployment rebuilds and validates a deployment snapshot (either
// format version).
func DecodeDeployment(b []byte) (*ota.DeploymentState, error) {
	payload, v, err := open(KindDeployment, b)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	st, err := decodeState(r, v)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return st, nil
}

// Thresholds parameterizes a mobility.Monitor: the degradation threshold and
// the trailing-window length.
type Thresholds struct {
	Threshold float64
	Window    int
}

func encodeThresholds(w *writer, th Thresholds) {
	w.f64(th.Threshold)
	w.u32(uint32(th.Window))
}

func decodeThresholds(r *reader) (Thresholds, error) {
	th := Thresholds{Threshold: r.f64(), Window: int(r.u32())}
	if r.err != nil {
		return Thresholds{}, r.err
	}
	if th.Window < 0 || th.Window > 1<<24 {
		return Thresholds{}, fmt.Errorf("%w: monitor window %d", ErrInvalid, th.Window)
	}
	return th, nil
}

// EncodeThresholds seals a monitor parameterization.
func EncodeThresholds(th Thresholds) []byte {
	var w writer
	encodeThresholds(&w, th)
	return seal(KindThresholds, w.buf)
}

// DecodeThresholds rebuilds a monitor parameterization.
func DecodeThresholds(b []byte) (Thresholds, error) {
	payload, _, err := open(KindThresholds, b)
	if err != nil {
		return Thresholds{}, err
	}
	r := &reader{b: payload}
	th, err := decodeThresholds(r)
	if err != nil {
		return Thresholds{}, err
	}
	if err := r.done(); err != nil {
		return Thresholds{}, err
	}
	return th, nil
}

// Meta carries the serving context a recovered epoch needs but a
// DeploymentState cannot express: which dataset the deployment serves, the
// seed lineage, the clock-sync detector the SyncSampler must be rebuilt
// from (functions don't serialize), and the fault rate the injector was
// armed with.
type Meta struct {
	Dataset   string
	Seed      uint64
	DetShape  float64
	DetScale  float64
	FaultRate float64
}

// Epoch is one published serving state: the WAL journal's append unit.
type Epoch struct {
	// Seq is the journal sequence number; Append assigns it.
	Seq uint64
	// Reason records why this epoch was published: "deploy", "heal",
	// "rollback", "recover".
	Reason string
	Meta   Meta
	State  *ota.DeploymentState
	Th     Thresholds
}

// EncodeEpoch seals a full serving epoch — version 2 iff its deployment
// state carries cascade layers, exactly as EncodeDeployment.
func EncodeEpoch(e *Epoch) []byte {
	v := stateVersion(e.State)
	var w writer
	w.u64(e.Seq)
	w.str(e.Reason)
	w.str(e.Meta.Dataset)
	w.u64(e.Meta.Seed)
	w.f64(e.Meta.DetShape)
	w.f64(e.Meta.DetScale)
	w.f64(e.Meta.FaultRate)
	encodeThresholds(&w, e.Th)
	encodeState(&w, e.State, v)
	return sealV(KindEpoch, v, w.buf)
}

// DecodeEpoch rebuilds and validates a serving epoch (either format
// version).
func DecodeEpoch(b []byte) (*Epoch, error) {
	payload, v, err := open(KindEpoch, b)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	e := &Epoch{Seq: r.u64(), Reason: r.str()}
	e.Meta.Dataset = r.str()
	e.Meta.Seed = r.u64()
	e.Meta.DetShape = r.f64()
	e.Meta.DetScale = r.f64()
	e.Meta.FaultRate = r.f64()
	e.Th, err = decodeThresholds(r)
	if err != nil {
		return nil, err
	}
	e.State, err = decodeState(r, v)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}

// Decode dispatches on the sealed kind and returns the decoded value —
// *nn.ComplexLNN, *ota.DeploymentState, Thresholds, or *Epoch. It is the
// fuzz entry point: any input must either decode cleanly or fail with a
// typed error, never panic.
func Decode(b []byte) (any, error) {
	kind, err := PeekKind(b)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindModel:
		return DecodeModel(b)
	case KindDeployment:
		return DecodeDeployment(b)
	case KindThresholds:
		return DecodeThresholds(b)
	case KindEpoch:
		return DecodeEpoch(b)
	case KindFleet:
		return DecodeFleetState(b)
	}
	return nil, fmt.Errorf("%w: %v", ErrKind, kind)
}

// WriteFile persists a sealed checkpoint atomically: write to a temp file in
// the destination directory, fsync, rename over the target, fsync the
// directory. A crash at any instant leaves either the old file or the new
// one — never a torn hybrid. (The CRC would catch a torn write anyway; the
// rename discipline means it never has to.)
func WriteFile(path string, sealed []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(sealed); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	ckptWrites.Inc()
	return nil
}

// ReadFile loads a sealed checkpoint. Decode failures are the caller's to
// classify; ReadFile only surfaces I/O errors.
func ReadFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ckptLoads.Inc()
	return b, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
