package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Envelope layout (little-endian):
//
//	offset 0  magic   "MAIC" (4 bytes)
//	offset 4  version uint16 (1 or 2)
//	offset 6  kind    uint8
//	offset 7  reserved uint8 (must be 0)
//	offset 8  payload length uint64
//	offset 16 payload
//	tail      CRC-32 (IEEE) over every preceding byte (4 bytes)
//
// Everything after the header is kind-specific. The CRC covers the header
// too, so a flipped kind or length byte reads as corruption, not as a
// different (possibly valid) checkpoint.
//
// Version 2 exists solely for stacked-cascade deployment state: a
// deployment/epoch whose DeploymentState carries cascade layers seals as
// version 2 with the cascade block appended after the version-1 fields.
// Single-surface state keeps sealing as version 1, byte-identical to every
// pre-cascade build, and this build reads both.
const (
	magic          = "MAIC"
	version        = 1
	versionCascade = 2
	headerLen      = 16
	trailerLen     = 4
)

// Kind tags what a checkpoint payload contains.
type Kind uint8

const (
	// KindModel is a trained nn.ComplexLNN weight matrix.
	KindModel Kind = 1
	// KindDeployment is a full ota.DeploymentState snapshot.
	KindDeployment Kind = 2
	// KindThresholds is a mobility.Monitor parameterization.
	KindThresholds Kind = 3
	// KindEpoch is a served epoch: deployment + thresholds + serving
	// metadata, the unit the WAL journal appends.
	KindEpoch Kind = 4
	// KindFleet is a fleet coordinator's durable state: publication
	// sequence, membership, and the current committed epoch bytes (see
	// FleetState).
	KindFleet Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindModel:
		return "model"
	case KindDeployment:
		return "deployment"
	case KindThresholds:
		return "thresholds"
	case KindEpoch:
		return "epoch"
	case KindFleet:
		return "fleet"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// seal wraps a payload in the version-1 envelope: header, payload, CRC
// trailer.
func seal(kind Kind, payload []byte) []byte {
	return sealV(kind, version, payload)
}

// sealV is seal at an explicit format version — versionCascade for state
// carrying cascade layers.
func sealV(kind Kind, v uint16, payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+trailerLen)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, v)
	out = append(out, byte(kind), 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// open validates the envelope and returns the payload plus the format
// version it was sealed at (version or versionCascade — anything else is
// ErrVersion). Every failure maps to one of the package's typed errors; the
// CRC is checked before anything in the payload is believed, so a torn or
// bit-flipped file can never decode.
func open(kind Kind, b []byte) ([]byte, uint16, error) {
	if len(b) < headerLen+trailerLen {
		return nil, 0, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(b), headerLen+trailerLen)
	}
	if string(b[:4]) != magic {
		return nil, 0, ErrBadMagic
	}
	body, tail := b[:len(b)-trailerLen], b[len(b)-trailerLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint16(b[4:6])
	if v != version && v != versionCascade {
		return nil, 0, fmt.Errorf("%w: version %d, this build reads %d and %d", ErrVersion, v, version, versionCascade)
	}
	got := Kind(b[6])
	if got != kind {
		return nil, 0, fmt.Errorf("%w: %v checkpoint where %v expected", ErrKind, got, kind)
	}
	if b[7] != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero reserved byte", ErrInvalid)
	}
	payload := body[headerLen:]
	if n := binary.LittleEndian.Uint64(b[8:16]); n != uint64(len(payload)) {
		return nil, 0, fmt.Errorf("%w: header claims %d payload bytes, file carries %d", ErrTruncated, n, len(payload))
	}
	return payload, v, nil
}

// PeekKind reports the kind of a sealed checkpoint without validating the
// payload (the CRC is still checked — a kind read off a corrupt file is
// worthless).
func PeekKind(b []byte) (Kind, error) {
	if len(b) < headerLen+trailerLen {
		return 0, ErrTruncated
	}
	if string(b[:4]) != magic {
		return 0, ErrBadMagic
	}
	body, tail := b[:len(b)-trailerLen], b[len(b)-trailerLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, ErrCorrupt
	}
	return Kind(b[6]), nil
}

// writer accumulates a payload. All integers are little-endian; floats are
// IEEE-754 bit patterns, so encode∘decode is the identity on every value
// including NaNs and signed zeros — the foundation of the bit-identity
// guarantee.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *writer) c128(v complex128) { w.f64(real(v)); w.f64(imag(v)) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) f64s(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}
func (w *writer) c128s(v []complex128) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.c128(x)
	}
}

// reader consumes a payload with sticky-error semantics: the first failure
// poisons the reader and every later read returns zero values, so decoders
// can read a full structure and check err once. Slice reads verify the
// declared element count fits in the remaining bytes BEFORE allocating —
// a fuzzer handing us a 4-billion-element length prefix costs nothing.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) c128() complex128 { return complex(r.f64(), r.f64()) }

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("%w: boolean byte out of range", ErrInvalid)
		return false
	}
}

// count reads a u32 length prefix and rejects it unless count*elemSize bytes
// remain — the allocation guard.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > (len(r.b)-r.off)/elemSize) {
		r.fail("%w: %d elements of %d bytes exceed the %d remaining", ErrTruncated, n, elemSize, len(r.b)-r.off)
		return 0
	}
	return n
}

func (r *reader) str() string { return string(r.take(r.count(1))) }

func (r *reader) f64s() []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) c128s() []complex128 {
	n := r.count(16)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = r.c128()
	}
	return out
}

// done checks that the payload was consumed exactly: trailing garbage after
// a structurally valid decode is corruption, not slack.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes after payload", ErrInvalid, len(r.b)-r.off)
	}
	return nil
}
