package checkpoint

import (
	"errors"
	"sync"
	"testing"
)

// TestJournalPruneRacingWriterAndRecover pins the journal's concurrency
// contract under -race: Prune racing Append must never delete the epoch
// being written, and Recover must return a valid decodable epoch at every
// instant of the race — never ErrNoEpoch once the first append has landed,
// never a half-written file (WriteFile's write→fsync→rename makes entries
// appear atomically; the journal mutex orders Append, Prune, and the
// directory scan against each other).
func TestJournalPruneRacingWriterAndRecover(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testEpoch(t, 3)

	const appends = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 3)

	// Writer: a stream of appends, each immediately re-read by sequence so a
	// concurrent Prune that deleted the epoch being written is caught on the
	// spot (only OLDER entries may ever be pruned).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < appends; i++ {
			e := *base
			seq, err := j.Append(&e)
			if err != nil {
				fail <- err
				return
			}
			b, err := ReadFile(j.path(seq))
			if err != nil {
				fail <- err
				return
			}
			got, err := DecodeEpoch(b)
			if err != nil || got.Seq != seq {
				fail <- errors.New("freshly appended epoch unreadable after a racing prune")
				return
			}
		}
	}()

	// Pruner: hammers the retention bound the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := j.Prune(2); err != nil {
				fail <- err
				return
			}
		}
	}()

	// Reader: Recover must always hand back a decodable epoch mid-race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seen := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			ep, err := j.Recover()
			switch {
			case err == nil:
				seen = true
				if ep.State == nil {
					fail <- errors.New("recovered epoch lost its state mid-race")
					return
				}
			case errors.Is(err, ErrNoEpoch) && !seen:
				// Nothing appended yet: the only moment emptiness is legal.
			default:
				fail <- err
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// The race has quiesced: the newest epoch survived every prune and the
	// retention bound holds.
	ep, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Seq != appends {
		t.Fatalf("newest epoch is %d, want %d", ep.Seq, appends)
	}
	if err := j.Prune(2); err != nil {
		t.Fatal(err)
	}
	if n := len(j.sequences()); n != 2 {
		t.Fatalf("%d entries after the final prune, want 2", n)
	}
}
