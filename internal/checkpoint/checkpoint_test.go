package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func testState(t *testing.T, seed uint64) (*ota.Deployment, *ota.DeploymentState) {
	t.Helper()
	src := rng.New(seed)
	w := cplx.NewMat(3, 8)
	wsrc := rng.New(seed ^ 0xabcd)
	for i := range w.Data {
		w.Data[i] = complex(wsrc.Normal(0, 1), wsrc.Normal(0, 1))
	}
	d, err := ota.NewDeployment(w, ota.NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	return d, d.State()
}

// buildEpoch constructs a real serving epoch without a testing.T — the fuzz
// harness needs one during seed setup.
func buildEpoch(seed uint64) *Epoch {
	src := rng.New(seed)
	w := cplx.NewMat(3, 8)
	wsrc := rng.New(seed ^ 0xabcd)
	for i := range w.Data {
		w.Data[i] = complex(wsrc.Normal(0, 1), wsrc.Normal(0, 1))
	}
	d, err := ota.NewDeployment(w, ota.NewOptions(src.Split()), src)
	if err != nil {
		panic(err)
	}
	return &Epoch{
		Reason: "deploy",
		Meta: Meta{
			Dataset:   "digits",
			Seed:      seed,
			DetShape:  2,
			DetScale:  0.4,
			FaultRate: 0.02,
		},
		State: d.State(),
		Th:    Thresholds{Threshold: 0.1875, Window: 32},
	}
}

func testEpoch(t *testing.T, seed uint64) *Epoch {
	t.Helper()
	_, st := testState(t, seed)
	return &Epoch{
		Reason: "deploy",
		Meta: Meta{
			Dataset:   "digits",
			Seed:      seed,
			DetShape:  2,
			DetScale:  0.4,
			FaultRate: 0.02,
		},
		State: st,
		Th:    Thresholds{Threshold: 0.1875, Window: 32},
	}
}

func TestModelRoundtrip(t *testing.T) {
	m := nn.NewComplexLNN(5, 7)
	m.InitWeights(rng.New(3))
	got, err := DecodeModel(EncodeModel(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Classes != m.Classes || got.U != m.U {
		t.Fatalf("dimensions %dx%d, want %dx%d", got.Classes, got.U, m.Classes, m.U)
	}
	for i := range m.W.Val {
		if got.W.Val[i] != m.W.Val[i] {
			t.Fatalf("weight %d: %v != %v", i, got.W.Val[i], m.W.Val[i])
		}
	}
}

func TestDeploymentRoundtripBitIdentity(t *testing.T) {
	d, st := testState(t, 11)
	got, err := DecodeDeployment(EncodeDeployment(st))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ota.FromState(got)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded deployment must drive sessions to byte-identical
	// accumulators — the tentpole guarantee, through the full encode →
	// decode → rebuild path.
	sessA := d.SessionFromSeed(77)
	sessB := r.SessionFromSeed(77)
	in := rng.New(78)
	for k := 0; k < 3; k++ {
		x := make([]complex128, d.InputLen())
		for i := range x {
			x[i] = complex(in.Normal(0, 1), in.Normal(0, 1))
		}
		a, b := sessA.Accumulate(x), sessB.Accumulate(x)
		for i := range a {
			if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
				math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
				t.Fatalf("inference %d accumulator %d: %v != %v", k, i, a[i], b[i])
			}
		}
	}
}

func TestThresholdsRoundtrip(t *testing.T) {
	th := Thresholds{Threshold: 0.123456789, Window: 48}
	got, err := DecodeThresholds(EncodeThresholds(th))
	if err != nil {
		t.Fatal(err)
	}
	if got != th {
		t.Fatalf("got %+v, want %+v", got, th)
	}
}

func TestEpochRoundtrip(t *testing.T) {
	e := testEpoch(t, 13)
	e.Seq = 42
	got, err := DecodeEpoch(EncodeEpoch(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != e.Seq || got.Reason != e.Reason || got.Meta != e.Meta || got.Th != e.Th {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, e)
	}
	if err := got.State.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ota.FromState(got.State); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDispatch(t *testing.T) {
	m := nn.NewComplexLNN(2, 3)
	blobs := map[Kind][]byte{
		KindModel:      EncodeModel(m),
		KindDeployment: EncodeDeployment(testEpoch(t, 17).State),
		KindThresholds: EncodeThresholds(Thresholds{Threshold: 1, Window: 4}),
		KindEpoch:      EncodeEpoch(testEpoch(t, 19)),
	}
	for kind, b := range blobs {
		v, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		switch kind {
		case KindModel:
			if _, ok := v.(*nn.ComplexLNN); !ok {
				t.Fatalf("model decoded as %T", v)
			}
		case KindDeployment:
			if _, ok := v.(*ota.DeploymentState); !ok {
				t.Fatalf("deployment decoded as %T", v)
			}
		case KindThresholds:
			if _, ok := v.(Thresholds); !ok {
				t.Fatalf("thresholds decoded as %T", v)
			}
		case KindEpoch:
			if _, ok := v.(*Epoch); !ok {
				t.Fatalf("epoch decoded as %T", v)
			}
		}
	}
}

// TestDecodeRejects drives the typed-error contract: truncations at every
// prefix length fail with a typed error, every single-bit flip fails
// (almost always ErrCorrupt — any flip breaks the CRC; a flip inside the
// CRC itself also mismatches), wrong magic/version/kind are identified, and
// none of it panics.
func TestDecodeRejects(t *testing.T) {
	sealed := EncodeThresholds(Thresholds{Threshold: 0.5, Window: 16})

	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(sealed); n++ {
			if _, err := DecodeThresholds(sealed[:n]); err == nil {
				t.Fatalf("accepted a %d-byte prefix of a %d-byte checkpoint", n, len(sealed))
			}
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		for i := 0; i < len(sealed)*8; i++ {
			mut := append([]byte(nil), sealed...)
			mut[i/8] ^= 1 << (i % 8)
			if _, err := DecodeThresholds(mut); err == nil {
				t.Fatalf("accepted a checkpoint with bit %d flipped", i)
			}
		}
	})

	t.Run("badMagic", func(t *testing.T) {
		mut := append([]byte(nil), sealed...)
		copy(mut, "NOPE")
		if _, err := DecodeThresholds(mut); !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("wrongKind", func(t *testing.T) {
		if _, err := DecodeModel(sealed); !errors.Is(err, ErrKind) {
			t.Fatalf("got %v, want ErrKind", err)
		}
	})

	t.Run("futureVersion", func(t *testing.T) {
		mut := append([]byte(nil), sealed...)
		mut[4] = 0xFF // version low byte
		reCRC(mut)    // valid CRC, so the version check itself must fire
		if _, err := DecodeThresholds(mut); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})

	t.Run("trailingGarbage", func(t *testing.T) {
		mut := append(append([]byte(nil), sealed...), 0xAA)
		if _, err := DecodeThresholds(mut); err == nil {
			t.Fatal("accepted trailing garbage")
		}
	})

	t.Run("lyingPayloadLength", func(t *testing.T) {
		var w writer
		w.f64(0.5)
		w.u32(16)
		mut := seal(KindThresholds, w.buf)
		mut[8]++ // claim one more payload byte than present
		reCRC(mut)
		if _, err := DecodeThresholds(mut); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
}

// TestDecodeRejectsSemanticCorruption flips payload content and re-seals the
// CRC, so the semantic validators — not the checksum — must catch it.
func TestDecodeRejectsSemanticCorruption(t *testing.T) {
	e := testEpoch(t, 23)

	t.Run("scheduleStateOutOfRange", func(t *testing.T) {
		cp := *e.State
		cp.Schedule = cloneSchedule(e.State.Schedule)
		cp.Schedule[0][0][0] = 200 // beyond 2-bit depth
		ep := *e
		ep.State = &cp
		if _, err := DecodeEpoch(EncodeEpoch(&ep)); !errors.Is(err, ErrInvalid) {
			t.Fatalf("got %v, want ErrInvalid", err)
		}
	})

	t.Run("hugeModelDims", func(t *testing.T) {
		var w writer
		w.u32(1 << 30)
		w.u32(1 << 30)
		w.u32(0)
		if _, err := DecodeModel(seal(KindModel, w.buf)); !errors.Is(err, ErrInvalid) {
			t.Fatalf("got %v, want ErrInvalid", err)
		}
	})

	t.Run("hugeSliceCount", func(t *testing.T) {
		var w writer
		w.u32(3)
		w.u32(8)
		w.u32(0xFFFFFFFF) // weight count with no bytes behind it
		if _, err := DecodeModel(seal(KindModel, w.buf)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
}

func cloneSchedule(schedule [][]mts.Config) [][]mts.Config {
	out := make([][]mts.Config, len(schedule))
	for r, row := range schedule {
		out[r] = make([]mts.Config, len(row))
		for c, cfg := range row {
			out[r][c] = append(mts.Config(nil), cfg...)
		}
	}
	return out
}

// reCRC recomputes the trailer over a mutated envelope so the semantic
// checks — not the checksum — decide.
func reCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-trailerLen:], crc32.ChecksumIEEE(b[:len(b)-trailerLen]))
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	m := nn.NewComplexLNN(2, 4)
	m.InitWeights(rng.New(9))
	if err := WriteFile(path, EncodeModel(m)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with different content — the rename must replace wholesale.
	m2 := nn.NewComplexLNN(2, 4)
	m2.InitWeights(rng.New(10))
	if err := WriteFile(path, EncodeModel(m2)); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.W.Val[0] != m2.W.Val[0] {
		t.Fatal("read back the stale file content")
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the checkpoint", len(entries))
	}
}

func TestJournalAppendRecover(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := testEpoch(t, 31)
	e1.Reason = "deploy"
	seq1, err := j.Append(e1)
	if err != nil {
		t.Fatal(err)
	}
	e2 := testEpoch(t, 37)
	e2.Reason = "heal"
	seq2, err := j.Append(e2)
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != 1 || seq2 != 2 {
		t.Fatalf("sequences %d, %d; want 1, 2", seq1, seq2)
	}

	got, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 || got.Reason != "heal" {
		t.Fatalf("recovered epoch %d (%s), want 2 (heal)", got.Seq, got.Reason)
	}

	prev, err := j.RecoverBefore(2)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Seq != 1 || prev.Reason != "deploy" {
		t.Fatalf("RecoverBefore(2) gave epoch %d (%s)", prev.Seq, prev.Reason)
	}

	// A reopened journal continues the sequence.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	e3 := testEpoch(t, 41)
	seq3, err := j2.Append(e3)
	if err != nil {
		t.Fatal(err)
	}
	if seq3 != 3 {
		t.Fatalf("reopened journal assigned %d, want 3", seq3)
	}
}

// TestJournalRecoverSkipsCorrupt is the recovery gate's core: corrupt the
// newest entry, truncate the one before it, and Recover must fall back to
// the newest intact epoch — never serving either damaged file.
func TestJournalRecoverSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testEpoch(t, 43)
	good.Reason = "deploy"
	if _, err := j.Append(good); err != nil {
		t.Fatal(err)
	}
	trunc := testEpoch(t, 47)
	if _, err := j.Append(trunc); err != nil {
		t.Fatal(err)
	}
	corrupt := testEpoch(t, 53)
	if _, err := j.Append(corrupt); err != nil {
		t.Fatal(err)
	}

	// Truncate entry 2, bit-flip entry 3.
	p2 := filepath.Join(dir, "epoch-00000002.ckpt")
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, b2[:len(b2)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	p3 := filepath.Join(dir, "epoch-00000003.ckpt")
	b3, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	b3[len(b3)/2] ^= 0x40
	if err := os.WriteFile(p3, b3, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 {
		t.Fatalf("recovered epoch %d, want the intact epoch 1", got.Seq)
	}
	if _, err := ota.FromState(got.State); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRecoverEmpty(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(); !errors.Is(err, ErrNoEpoch) {
		t.Fatalf("got %v, want ErrNoEpoch", err)
	}
}

func TestJournalPrune(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := j.Append(testEpoch(t, uint64(61+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Prune(2); err != nil {
		t.Fatal(err)
	}
	seqs := j.sequences()
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("after prune: %v, want [4 5]", seqs)
	}
	// The newest survives and still recovers; sequence numbering continues.
	if _, err := j.Recover(); err != nil {
		t.Fatal(err)
	}
	if seq, err := j.Append(testEpoch(t, 71)); err != nil || seq != 6 {
		t.Fatalf("append after prune: seq %d err %v, want 6", seq, err)
	}
}
