package checkpoint

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/ota"
	"repro/internal/rng"
)

// buildCascadeDeployment constructs a 3-layer cascade deployment without a
// testing.T, so the fuzz harness can seed from it too.
func buildCascadeDeployment(seed uint64) *ota.Deployment {
	src := rng.New(seed)
	w := cplx.NewMat(3, 8)
	wsrc := rng.New(seed ^ 0xabcd)
	for i := range w.Data {
		w.Data[i] = complex(wsrc.Normal(0, 1), wsrc.Normal(0, 1))
	}
	opts := ota.NewOptions(src.Split())
	stack := make([]ota.CascadeLayer, 2)
	for k := range stack {
		s, err := mts.NewSurface(6, 6, 2, 5.25, nil)
		if err != nil {
			panic(err)
		}
		stack[k] = ota.CascadeLayer{
			Surface:  s,
			Geometry: mts.Geometry{TxDistM: 1.5, TxAngleDeg: 20, RxDistM: 2, RxAngleDeg: 30 + 5*float64(k)},
		}
	}
	opts.Stack = stack
	opts.LayerPower = []float64{1, 1.3, 0.9}
	opts.HopNoise = 0.05
	d, err := ota.NewDeployment(w, opts, src)
	if err != nil {
		panic(err)
	}
	return d
}

func buildCascadeEpoch(seed uint64) *Epoch {
	return &Epoch{
		Reason: "deploy",
		Meta:   Meta{Dataset: "digits", Seed: seed, DetShape: 2, DetScale: 0.4},
		State:  buildCascadeDeployment(seed).State(),
		Th:     Thresholds{Threshold: 0.1875, Window: 32},
	}
}

func sealedVersion(b []byte) uint16 { return binary.LittleEndian.Uint16(b[4:6]) }

func TestCascadeStateSealsVersion2(t *testing.T) {
	// Single-surface state must keep sealing at version 1 — byte-compatible
	// with every pre-cascade build — while cascade state bumps to 2.
	_, single := testState(t, 11)
	if v := sealedVersion(EncodeDeployment(single)); v != 1 {
		t.Fatalf("single-surface deployment sealed at version %d, want 1", v)
	}
	casc := buildCascadeDeployment(19).State()
	if v := sealedVersion(EncodeDeployment(casc)); v != 2 {
		t.Fatalf("cascade deployment sealed at version %d, want 2", v)
	}
	if v := sealedVersion(EncodeEpoch(buildCascadeEpoch(19))); v != 2 {
		t.Fatalf("cascade epoch sealed at version %d, want 2", v)
	}
}

func TestCascadeDeploymentRoundtripBitIdentity(t *testing.T) {
	d := buildCascadeDeployment(23)
	got, err := DecodeDeployment(EncodeDeployment(d.State()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != 2 || len(got.LayerSchedules) != 2 {
		t.Fatalf("decoded %d layers, %d layer schedules, want 2, 2", len(got.Layers), len(got.LayerSchedules))
	}
	if got.HopNoise != 0.05 || len(got.LayerPower) != 3 {
		t.Fatalf("cascade knobs lost: hop %v power %v", got.HopNoise, got.LayerPower)
	}
	r, err := ota.FromState(got)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers() != 3 {
		t.Fatalf("restored deployment has %d layers, want 3", r.Layers())
	}
	sessA := d.SessionFromSeed(77)
	sessB := r.SessionFromSeed(77)
	in := rng.New(78)
	for k := 0; k < 3; k++ {
		x := make([]complex128, d.InputLen())
		for i := range x {
			x[i] = complex(in.Normal(0, 1), in.Normal(0, 1))
		}
		a, b := sessA.Accumulate(x), sessB.Accumulate(x)
		for i := range a {
			if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
				math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
				t.Fatalf("inference %d accumulator %d: %v != %v", k, i, a[i], b[i])
			}
		}
	}
}

func TestCascadeEpochRoundtrip(t *testing.T) {
	e := buildCascadeEpoch(29)
	got, err := DecodeEpoch(EncodeEpoch(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.State.Layers) != 2 {
		t.Fatalf("epoch round-trip lost cascade layers: %d", len(got.State.Layers))
	}
	if _, err := ota.FromState(got.State); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeDecodeRejects(t *testing.T) {
	blob := EncodeDeployment(buildCascadeDeployment(31).State())
	t.Run("futureVersion", func(t *testing.T) {
		mut := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint16(mut[4:6], 3)
		reCRC(mut)
		if _, err := DecodeDeployment(mut); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("v1HeaderOnCascadePayload", func(t *testing.T) {
		// Re-labeling a cascade payload as version 1 leaves the cascade
		// block as trailing garbage — must be rejected, not silently
		// restored without its layers.
		mut := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint16(mut[4:6], 1)
		reCRC(mut)
		if _, err := DecodeDeployment(mut); err == nil {
			t.Fatal("cascade payload decoded under a version-1 header")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, frac := range []int{2, 3, 8} {
			if _, err := DecodeDeployment(blob[:len(blob)/frac]); err == nil {
				t.Fatalf("truncated to 1/%d decoded", frac)
			}
		}
	})
}

func TestJournalRecoverSkipsCorruptCascade(t *testing.T) {
	// Cross-version fallback: a corrupt version-2 cascade record must not
	// strand recovery — the journal walks back to the older version-1
	// single-surface epoch.
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	single := testEpoch(t, 43)
	if _, err := j.Append(single); err != nil {
		t.Fatal(err)
	}
	casc := buildCascadeEpoch(47)
	if _, err := j.Append(casc); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "epoch-00000002.ckpt")
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	b2[len(b2)-10] ^= 0x20
	if err := os.WriteFile(p2, b2, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || len(got.State.Layers) != 0 {
		t.Fatalf("recovered seq %d with %d layers, want the single-surface epoch 1", got.Seq, len(got.State.Layers))
	}
	r, err := ota.FromState(got.State)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers() != 1 {
		t.Fatalf("fallback deployment has %d layers, want 1", r.Layers())
	}
}
