package dataset

import (
	"fmt"

	"repro/internal/rng"
)

// View is one sensor's stream within a multi-sensor task. Sample i in every
// view of a MultiDataset observes the same physical event (same label): the
// time-division fusion of §3.4 accumulates the per-view outputs of aligned
// samples (Eqns 11–12).
type View struct {
	Name  string
	Dim   int
	Train []Sample
	Test  []Sample
}

// MultiDataset is a multi-sensor / multi-modality classification task.
type MultiDataset struct {
	Name    string
	Classes int
	Views   []View
}

// multiSpec describes one multi-sensor dataset family. A single view is made
// deliberately weak via a high per-view flip probability; flips are
// independent across sensors, which is exactly why late fusion (Eqn 12)
// recovers accuracy.
type multiSpec struct {
	name       string
	classes    int
	views      []viewSpec
	trainFull  int
	testFull   int
	trainQuick int
	testQuick  int
}

type viewSpec struct {
	name     string
	dim      int
	side     int
	flipProb float64
	noiseStd float64
}

var multiSpecs = map[string]multiSpec{
	// Multi-PIE (Fig 20): faces from camera views c07/c09/c29,
	// 10 identities, 192 train / 48 test per view. One view: ~65%; three
	// views: ~90% in the paper.
	"multipie": {
		name: "multipie", classes: 10,
		views: []viewSpec{
			{name: "c07", dim: 64, side: 8, flipProb: 0.34, noiseStd: 0},
			{name: "c09", dim: 64, side: 8, flipProb: 0.34, noiseStd: 0},
			{name: "c29", dim: 64, side: 8, flipProb: 0.34, noiseStd: 0},
		},
		trainFull: 192, testFull: 48, trainQuick: 192, testQuick: 48,
	},
	// RF-Sauron (Fig 20): RFID gestures observed by 3 receive antennas,
	// 10 gestures.
	"rfsauron": {
		name: "rfsauron", classes: 10,
		views: []viewSpec{
			{name: "ant1", dim: 64, flipProb: 0.40, noiseStd: 0},
			{name: "ant2", dim: 64, flipProb: 0.40, noiseStd: 0},
			{name: "ant3", dim: 64, flipProb: 0.40, noiseStd: 0},
		},
		trainFull: 1200, testFull: 480, trainQuick: 400, testQuick: 200,
	},
	// USC-HAD (Fig 20): activity recognition from accelerometer and
	// gyroscope, 6 activities, 336 train / 85 test per modality. Cross-
	// modality fusion gave the paper's largest gain (+27.06%), so single
	// modalities are weakest here.
	"uschad": {
		name: "uschad", classes: 6,
		views: []viewSpec{
			{name: "accel", dim: 48, flipProb: 0.48, noiseStd: 0},
			{name: "gyro", dim: 48, flipProb: 0.48, noiseStd: 0},
		},
		trainFull: 336, testFull: 85, trainQuick: 336, testQuick: 85,
	},
}

// MultiNames returns the multi-sensor dataset names in Fig 20 order.
func MultiNames() []string { return []string{"multipie", "rfsauron", "uschad"} }

// LoadMulti generates a multi-sensor dataset deterministically from seed.
func LoadMulti(name string, sc Scale, seed uint64) (*MultiDataset, error) {
	spec, ok := multiSpecs[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown multi-sensor dataset %q (known: %v)", name, MultiNames())
	}
	src := rng.New(seed ^ hashName(spec.name))
	nTrain, nTest := spec.trainFull, spec.testFull
	if sc == Quick {
		nTrain, nTest = spec.trainQuick, spec.testQuick
	}
	md := &MultiDataset{Name: spec.name, Classes: spec.classes}
	// Per-view, per-class prototypes: each view observes a different
	// projection of the same underlying class.
	protos := make([][][]float64, len(spec.views))
	for v, vs := range spec.views {
		protos[v] = makePrototypes(spec.classes, vs.dim, vs.side, 3, src)
	}
	md.Views = make([]View, len(spec.views))
	for v, vs := range spec.views {
		md.Views[v] = View{Name: vs.name, Dim: vs.dim}
	}
	draw := func(n int, assign func(v int, s Sample)) {
		for i := 0; i < n; i++ {
			label := i % spec.classes
			// Shared event deformation: the same physical instant seen by
			// every sensor.
			eventShift := src.IntN(3) - 1
			for v, vs := range spec.views {
				x := make([]float64, vs.dim)
				p := protos[v][label]
				for j := range x {
					var val float64
					if vs.side > 0 {
						r := (j/vs.side + eventShift + vs.side) % vs.side
						val = p[r*vs.side+j%vs.side]
					} else {
						val = p[(j+eventShift+vs.dim)%vs.dim]
					}
					// Independent per-sensor corruption: what fusion heals.
					if src.Bernoulli(vs.flipProb) {
						val = 1 - val
					}
					val += src.Normal(0, vs.noiseStd)
					x[j] = clamp01(val)
				}
				assign(v, Sample{X: x, Label: label})
			}
		}
	}
	draw(nTrain, func(v int, s Sample) { md.Views[v].Train = append(md.Views[v].Train, s) })
	draw(nTest, func(v int, s Sample) { md.Views[v].Test = append(md.Views[v].Test, s) })
	return md, nil
}

// MustLoadMulti is LoadMulti for known-good names; it panics on error.
func MustLoadMulti(name string, sc Scale, seed uint64) *MultiDataset {
	d, err := LoadMulti(name, sc, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// FaceCase generates the Fig 28 real-time face-recognition case study:
// ten identities captured by IoT cameras in five different backgrounds
// (~12 usable frames per identity per background), supplemented with 300
// CelebA-style images, and a test phase of 20 natural appearances per
// volunteer.
type FaceCase struct {
	Classes     int
	Backgrounds int
	Train       []Sample
	Test        []Sample // grouped: volunteer v occupies samples [v*20, v*20+20)
	PerUser     int
}

// LoadFaceCase builds the case-study data deterministically from seed.
func LoadFaceCase(seed uint64) *FaceCase {
	src := rng.New(seed ^ hashName("facecase"))
	const (
		classes     = 10
		backgrounds = 5
		perBG       = 12
		side        = 8
		perUserTest = 20
		suppl       = 300
	)
	fc := &FaceCase{Classes: classes, Backgrounds: backgrounds, PerUser: perUserTest}
	protos := makePrototypes(classes, side*side, side, 3, src)
	bgs := makePrototypes(backgrounds, side*side, side, 4, src)
	sample := func(label, bg int) Sample {
		x := make([]float64, side*side)
		shift := src.IntN(3) - 1
		for j := range x {
			r := (j/side + shift + side) % side
			v := 0.72*protos[label][r*side+j%side] + 0.28*bgs[bg][j]
			if src.Bernoulli(0.10) {
				v = 1 - v
			}
			x[j] = clamp01(v)
		}
		return Sample{X: x, Label: label}
	}
	for label := 0; label < classes; label++ {
		for bg := 0; bg < backgrounds; bg++ {
			for k := 0; k < perBG; k++ {
				fc.Train = append(fc.Train, sample(label, bg))
			}
		}
	}
	// CelebA-style supplementary training images: same identities under a
	// generic (non-deployment) background.
	for i := 0; i < suppl; i++ {
		label := i % classes
		x := make([]float64, side*side)
		for j := range x {
			v := 0.72*protos[label][j] + 0.28*0.5
			if src.Bernoulli(0.12) {
				v = 1 - v
			}
			x[j] = clamp01(v)
		}
		fc.Train = append(fc.Train, Sample{X: x, Label: label})
	}
	src.Shuffle(len(fc.Train), func(a, b int) { fc.Train[a], fc.Train[b] = fc.Train[b], fc.Train[a] })
	// Test: each volunteer stands in a random monitored background 20 times.
	for label := 0; label < classes; label++ {
		for k := 0; k < perUserTest; k++ {
			fc.Test = append(fc.Test, sample(label, src.IntN(backgrounds)))
		}
	}
	return fc
}
