package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// writeIDXImages serializes n rows×cols images in IDX3 format.
func writeIDXImages(n, rows, cols int, pix func(i, y, x int) byte) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, idxUByte, 3})
	binary.Write(&buf, binary.BigEndian, uint32(n))
	binary.Write(&buf, binary.BigEndian, uint32(rows))
	binary.Write(&buf, binary.BigEndian, uint32(cols))
	for i := 0; i < n; i++ {
		for y := 0; y < rows; y++ {
			for x := 0; x < cols; x++ {
				buf.WriteByte(pix(i, y, x))
			}
		}
	}
	return buf.Bytes()
}

func writeIDXLabels(labels []byte) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, idxUByte, 1})
	binary.Write(&buf, binary.BigEndian, uint32(len(labels)))
	buf.Write(labels)
	return buf.Bytes()
}

func TestReadIDXRoundTrip(t *testing.T) {
	raw := writeIDXImages(2, 4, 4, func(i, y, x int) byte { return byte(i*16 + y*4 + x) })
	dims, data, err := readIDX(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 2 || dims[1] != 4 || dims[2] != 4 {
		t.Fatalf("dims = %v", dims)
	}
	if data[0] != 0 || data[31] != 31 {
		t.Fatalf("payload corrupted: %v", data[:8])
	}
}

func TestReadIDXRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                      // empty
		{1, 2, 3, 4},            // bad magic
		{0, 0, 0x0d, 1},         // wrong element type
		{0, 0, idxUByte, 5},     // absurd rank
		{0, 0, idxUByte, 1, 0},  // truncated dims
		writeIDXLabels(nil)[:6], // truncated payload header
	}
	for i, c := range cases {
		if _, _, err := readIDX(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Truncated payload.
	raw := writeIDXImages(2, 4, 4, func(i, y, x int) byte { return 0 })
	if _, _, err := readIDX(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestBoxDownsample(t *testing.T) {
	// A 4×4 image with the top half 255 and bottom half 0 downsampled to
	// 2×2 must yield [1 1; 0 0].
	img := make([]byte, 16)
	for i := 0; i < 8; i++ {
		img[i] = 255
	}
	got := boxDownsample(img, 4, 4, 2)
	want := []float64{1, 1, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("downsample = %v", got)
		}
	}
}

func writeTempIDXDir(t *testing.T, gz bool) string {
	t.Helper()
	dir := t.TempDir()
	// 40 train / 12 test samples of 28×28 "digits": class c paints rows
	// proportional to c so classes are separable after downsampling.
	mk := func(n int) ([]byte, []byte) {
		labels := make([]byte, n)
		for i := range labels {
			labels[i] = byte(i % 10)
		}
		imgs := writeIDXImages(n, 28, 28, func(i, y, x int) byte {
			if y < 2+2*(i%10) {
				return 250
			}
			return 5
		})
		return imgs, writeIDXLabels(labels)
	}
	write := func(base string, data []byte) {
		path := filepath.Join(dir, base)
		if gz {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			zw.Write(data)
			zw.Close()
			data = buf.Bytes()
			path += ".gz"
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ti, tl := mk(40)
	ei, el := mk(12)
	write("train-images-idx3-ubyte", ti)
	write("train-labels-idx1-ubyte", tl)
	write("t10k-images-idx3-ubyte", ei)
	write("t10k-labels-idx1-ubyte", el)
	return dir
}

func TestLoadIDXDir(t *testing.T) {
	for _, gz := range []bool{false, true} {
		dir := writeTempIDXDir(t, gz)
		ds, err := LoadIDXDir(dir, "mnist-real", 10)
		if err != nil {
			t.Fatalf("gz=%v: %v", gz, err)
		}
		if len(ds.Train) != 40 || len(ds.Test) != 12 || ds.Dim != 64 || ds.Side != 8 {
			t.Fatalf("gz=%v: loaded shape %d/%d dim %d", gz, len(ds.Train), len(ds.Test), ds.Dim)
		}
		for _, s := range ds.Train {
			if s.Label < 0 || s.Label > 9 || len(s.X) != 64 {
				t.Fatalf("bad sample %+v", s.Label)
			}
			for _, v := range s.X {
				if v < 0 || v > 1 {
					t.Fatalf("feature %v out of range", v)
				}
			}
		}
		// The painted-rows structure must survive downsampling: class 9
		// images are brighter than class 0 images.
		var b0, b9 float64
		for _, s := range ds.Train {
			var sum float64
			for _, v := range s.X {
				sum += v
			}
			if s.Label == 0 {
				b0 = sum
			}
			if s.Label == 9 {
				b9 = sum
			}
		}
		if b9 <= b0 {
			t.Fatal("class structure lost in downsampling")
		}
	}
}

func TestLoadIDXDirMissingFiles(t *testing.T) {
	if _, err := LoadIDXDir(t.TempDir(), "x", 10); err == nil {
		t.Fatal("expected error for empty directory")
	}
}

func TestLoadIDXPairMismatchedCounts(t *testing.T) {
	dir := t.TempDir()
	imgs := writeIDXImages(3, 4, 4, func(i, y, x int) byte { return 0 })
	labels := writeIDXLabels([]byte{1, 2})
	ip := filepath.Join(dir, "imgs")
	lp := filepath.Join(dir, "labels")
	os.WriteFile(ip, imgs, 0o644)
	os.WriteFile(lp, labels, 0o644)
	if _, err := LoadIDXPair(ip, lp, 8); err == nil {
		t.Fatal("expected error for image/label count mismatch")
	}
}
