package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// This file lets the repository run on the real datasets when they are
// available: MNIST and Fashion-MNIST ship in the IDX format (the
// train-images-idx3-ubyte / train-labels-idx1-ubyte files from
// yann.lecun.com / the fashion-mnist release). Images are box-downsampled
// to the pipeline's working resolution. Offline environments fall back to
// the synthetic generators; nothing else in the repository changes.

// idx magic: 0x00 0x00 <type> <ndims>; type 0x08 = unsigned byte.
const idxUByte = 0x08

// readIDX parses an IDX stream (optionally gzipped by the caller) into its
// dimensions and flat payload.
func readIDX(r io.Reader) ([]int, []byte, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading IDX magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, nil, fmt.Errorf("dataset: bad IDX magic % x", magic)
	}
	if magic[2] != idxUByte {
		return nil, nil, fmt.Errorf("dataset: unsupported IDX element type 0x%02x", magic[2])
	}
	ndims := int(magic[3])
	if ndims < 1 || ndims > 3 {
		return nil, nil, fmt.Errorf("dataset: unsupported IDX rank %d", ndims)
	}
	dims := make([]int, ndims)
	total := 1
	for i := range dims {
		var d uint32
		if err := binary.Read(br, binary.BigEndian, &d); err != nil {
			return nil, nil, fmt.Errorf("dataset: reading IDX dims: %w", err)
		}
		dims[i] = int(d)
		if dims[i] <= 0 || total > math.MaxInt32/dims[i] {
			return nil, nil, fmt.Errorf("dataset: implausible IDX dimension %d", dims[i])
		}
		total *= dims[i]
	}
	data := make([]byte, total)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading IDX payload: %w", err)
	}
	return dims, data, nil
}

// openMaybeGzip opens a file, transparently ungzipping .gz paths.
func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &gzipCloser{gz: gz, f: f}, nil
	}
	return f, nil
}

type gzipCloser struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzipCloser) Read(p []byte) (int, error) { return g.gz.Read(p) }
func (g *gzipCloser) Close() error {
	g.gz.Close()
	return g.f.Close()
}

// boxDownsample shrinks a rows×cols uint8 image to side×side by box
// averaging, returning [0,1] features.
func boxDownsample(img []byte, rows, cols, side int) []float64 {
	out := make([]float64, side*side)
	for oy := 0; oy < side; oy++ {
		y0, y1 := oy*rows/side, (oy+1)*rows/side
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for ox := 0; ox < side; ox++ {
			x0, x1 := ox*cols/side, (ox+1)*cols/side
			if x1 <= x0 {
				x1 = x0 + 1
			}
			var sum, n float64
			for y := y0; y < y1 && y < rows; y++ {
				for x := x0; x < x1 && x < cols; x++ {
					sum += float64(img[y*cols+x])
					n++
				}
			}
			out[oy*side+ox] = sum / (n * 255)
		}
	}
	return out
}

// LoadIDXPair reads an images/labels IDX file pair (optionally .gz) into
// samples at the given working resolution.
func LoadIDXPair(imagesPath, labelsPath string, side int) ([]Sample, error) {
	ir, err := openMaybeGzip(imagesPath)
	if err != nil {
		return nil, err
	}
	defer ir.Close()
	idims, imgs, err := readIDX(ir)
	if err != nil {
		return nil, err
	}
	if len(idims) != 3 {
		return nil, fmt.Errorf("dataset: %s is rank %d, want rank-3 images", imagesPath, len(idims))
	}
	lr, err := openMaybeGzip(labelsPath)
	if err != nil {
		return nil, err
	}
	defer lr.Close()
	ldims, labels, err := readIDX(lr)
	if err != nil {
		return nil, err
	}
	if len(ldims) != 1 {
		return nil, fmt.Errorf("dataset: %s is rank %d, want rank-1 labels", labelsPath, len(ldims))
	}
	n, rows, cols := idims[0], idims[1], idims[2]
	if ldims[0] != n {
		return nil, fmt.Errorf("dataset: %d images but %d labels", n, ldims[0])
	}
	if side <= 0 {
		side = 8
	}
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		img := imgs[i*rows*cols : (i+1)*rows*cols]
		out[i] = Sample{X: boxDownsample(img, rows, cols, side), Label: int(labels[i])}
	}
	return out, nil
}

// idxFileNames are the conventional MNIST/Fashion-MNIST file names searched
// under a directory (plain or gzipped).
var idxFileNames = [4]string{
	"train-images-idx3-ubyte",
	"train-labels-idx1-ubyte",
	"t10k-images-idx3-ubyte",
	"t10k-labels-idx1-ubyte",
}

// LoadIDXDir loads a full dataset from a directory holding the four
// conventional MNIST-layout files (optionally gzipped), downsampled to the
// pipeline's 8×8 working resolution. The returned dataset slots directly
// into the rest of the pipeline in place of a synthetic one.
func LoadIDXDir(dir, name string, classes int) (*Dataset, error) {
	find := func(base string) (string, error) {
		for _, cand := range []string{base, base + ".gz"} {
			p := filepath.Join(dir, cand)
			if _, err := os.Stat(p); err == nil {
				return p, nil
			}
		}
		return "", fmt.Errorf("dataset: %s(.gz) not found under %s", base, dir)
	}
	paths := make([]string, 4)
	for i, base := range idxFileNames {
		p, err := find(base)
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}
	const side = 8
	train, err := LoadIDXPair(paths[0], paths[1], side)
	if err != nil {
		return nil, err
	}
	test, err := LoadIDXPair(paths[2], paths[3], side)
	if err != nil {
		return nil, err
	}
	if classes <= 0 {
		classes = 10
	}
	return &Dataset{
		Name:    name,
		Classes: classes,
		Dim:     side * side,
		Side:    side,
		Train:   train,
		Test:    test,
	}, nil
}
