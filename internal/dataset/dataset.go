// Package dataset provides seeded synthetic stand-ins for the nine datasets
// of the paper's evaluation: six single-sensor classification tasks
// (MNIST, Fashion-MNIST, Fruits-360, AFHQ, CelebA, Widar 3.0 — Table 1) and
// three multi-sensor tasks (Multi-PIE camera views, RF-Sauron antennas,
// USC-HAD accelerometer+gyroscope — Fig 20).
//
// Real datasets are not available offline; each generator builds per-class
// structured prototypes (smooth random fields) and draws samples as
// deformed, noisy instances. Per-dataset difficulty — noise level, class
// count, deformation, training-set size — is chosen so a linear model lands
// in the accuracy band the paper reports, preserving every *relative* claim
// (which scheme helps, who beats whom) while exercising the identical
// train→deploy→infer code path.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Sample is one classification example with features normalized to [0, 1].
type Sample struct {
	X     []float64
	Label int
}

// Dataset is a single-sensor classification task.
type Dataset struct {
	Name    string
	Classes int
	Dim     int
	Side    int // image side when the data is an image, else 0
	Train   []Sample
	Test    []Sample
}

// Scale selects the dataset size. Quick keeps experiments laptop-fast; Full
// approaches the paper's sample counts.
type Scale int

const (
	// Quick caps datasets at a few hundred training samples.
	Quick Scale = iota
	// Full uses sample counts closer to the paper's (capped for practicality).
	Full
)

// Spec declares one synthetic dataset family.
//
// The deformation model matters for the over-the-air pipeline: samples are
// quantized to bytes and Gray-QAM-modulated, and a *linear* network over the
// resulting symbols can only exploit per-class symbol stability (exactly as
// with real MNIST, whose pixels are near-binary). Samples therefore deform
// by pixel *flips* plus small additive noise instead of heavy Gaussian
// noise, and difficulty is tuned through the flip probability.
type Spec struct {
	Name       string
	Classes    int
	Side       int     // image side; Dim = Side² (0 for raw vectors)
	Dim        int     // vector length when Side == 0
	FlipProb   float64 // per-feature probability of inverting the feature
	NoiseStd   float64 // small additive feature noise
	ShiftMax   int     // max cyclic shift (deformation)
	Contrast   float64 // prototype edge softness (sigmoid steepness divisor)
	Smoothness int     // prototype smoothing window
	TrainFull  int
	TestFull   int
	TrainQuick int
	TestQuick  int
}

// specs mirrors Table 1's class counts and relative training-set sizes. The
// paper's full MNIST (60k) is capped at 4k for the Full scale; relative
// ordering (CelebA tiny, Widar small) is preserved exactly.
var specs = map[string]Spec{
	"mnist": {
		Name: "mnist", Classes: 10, Side: 8,
		FlipProb: 0.12, NoiseStd: 0, ShiftMax: 1, Contrast: 0.10, Smoothness: 3,
		TrainFull: 4000, TestFull: 1000, TrainQuick: 500, TestQuick: 250,
	},
	"fashion": {
		Name: "fashion", Classes: 10, Side: 8,
		FlipProb: 0.14, NoiseStd: 0, ShiftMax: 1, Contrast: 0.16, Smoothness: 3,
		TrainFull: 4000, TestFull: 1000, TrainQuick: 500, TestQuick: 250,
	},
	"fruits360": {
		Name: "fruits360", Classes: 8, Side: 8,
		FlipProb: 0.14, NoiseStd: 0, ShiftMax: 1, Contrast: 0.12, Smoothness: 3,
		TrainFull: 2600, TestFull: 650, TrainQuick: 420, TestQuick: 210,
	},
	"afhq": {
		Name: "afhq", Classes: 3, Side: 8,
		FlipProb: 0.20, NoiseStd: 0, ShiftMax: 1, Contrast: 0.16, Smoothness: 3,
		TrainFull: 1500, TestFull: 380, TrainQuick: 360, TestQuick: 180,
	},
	"celeba": {
		// CelebA in the paper: only 220 train / 80 test for 10 classes —
		// data scarcity, not noise, is what makes it the hardest task.
		Name: "celeba", Classes: 10, Side: 8,
		FlipProb: 0.06, NoiseStd: 0, ShiftMax: 1, Contrast: 0.14, Smoothness: 3,
		TrainFull: 220, TestFull: 80, TrainQuick: 220, TestQuick: 80,
	},
	"widar3": {
		Name: "widar3", Classes: 6, Side: 0, Dim: 64,
		FlipProb: 0.34, NoiseStd: 0, ShiftMax: 1, Contrast: 0.12, Smoothness: 5,
		TrainFull: 1400, TestFull: 300, TrainQuick: 420, TestQuick: 210,
	},
}

// Names returns the single-sensor dataset names in Table 1 order.
func Names() []string {
	return []string{"mnist", "fashion", "fruits360", "afhq", "celeba", "widar3"}
}

// LookupSpec returns the spec for a named dataset.
func LookupSpec(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q (known: %v)", name, known)
	}
	return s, nil
}

func (s Spec) dim() int {
	if s.Side > 0 {
		return s.Side * s.Side
	}
	return s.Dim
}

func (s Spec) counts(sc Scale) (train, test int) {
	if sc == Full {
		return s.TrainFull, s.TestFull
	}
	return s.TrainQuick, s.TestQuick
}

// Load generates the named dataset at the given scale, deterministically
// from seed.
func Load(name string, sc Scale, seed uint64) (*Dataset, error) {
	spec, err := LookupSpec(name)
	if err != nil {
		return nil, err
	}
	return Generate(spec, sc, seed), nil
}

// MustLoad is Load for known-good names; it panics on error.
func MustLoad(name string, sc Scale, seed uint64) *Dataset {
	d, err := Load(name, sc, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Generate builds a dataset from an explicit spec.
func Generate(spec Spec, sc Scale, seed uint64) *Dataset {
	src := rng.New(seed ^ hashName(spec.Name))
	dim := spec.dim()
	protos := makeContrastPrototypes(spec.Classes, dim, spec.Side, spec.Smoothness, spec.Contrast, src)
	nTrain, nTest := spec.counts(sc)
	d := &Dataset{
		Name:    spec.Name,
		Classes: spec.Classes,
		Dim:     dim,
		Side:    spec.Side,
	}
	d.Train = drawSamples(spec, protos, nTrain, src)
	d.Test = drawSamples(spec, protos, nTest, src)
	return d
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// makePrototypes builds one smooth, high-contrast random pattern per class,
// normalized to [0, 1]. Smoothing gives the patterns the spatial coherence
// of natural images (and of Widar's Doppler profiles); the sigmoid push
// toward the extremes mirrors real image statistics (MNIST pixels are
// near-binary), which is what makes a linear model over modulated symbols
// viable.
func makePrototypes(classes, dim, side, smooth int, src *rng.Source) [][]float64 {
	return makeContrastPrototypes(classes, dim, side, smooth, 0.12, src)
}

func makeContrastPrototypes(classes, dim, side, smooth int, softness float64, src *rng.Source) [][]float64 {
	if softness <= 0 {
		softness = 0.12
	}
	protos := make([][]float64, classes)
	for c := range protos {
		raw := make([]float64, dim)
		for i := range raw {
			raw[i] = src.Float64()
		}
		var sm []float64
		if side > 0 {
			sm = smooth2D(raw, side, smooth)
		} else {
			sm = smooth1D(raw, smooth)
		}
		normalize01(sm)
		for i, v := range sm {
			sm[i] = 1 / (1 + math.Exp(-(v-0.5)/softness))
		}
		protos[c] = sm
	}
	return protos
}

func smooth1D(x []float64, w int) []float64 {
	if w <= 1 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for i := range x {
		var s float64
		var n int
		for d := -w / 2; d <= w/2; d++ {
			j := i + d
			if j >= 0 && j < len(x) {
				s += x[j]
				n++
			}
		}
		out[i] = s / float64(n)
	}
	return out
}

func smooth2D(x []float64, side, w int) []float64 {
	if w <= 1 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	h := w / 2
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			var s float64
			var n int
			for dr := -h; dr <= h; dr++ {
				for dc := -h; dc <= h; dc++ {
					rr, cc := r+dr, c+dc
					if rr >= 0 && rr < side && cc >= 0 && cc < side {
						s += x[rr*side+cc]
						n++
					}
				}
			}
			out[r*side+c] = s / float64(n)
		}
	}
	return out
}

func normalize01(x []float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 1e-12 {
		for i := range x {
			x[i] = 0.5
		}
		return
	}
	for i := range x {
		x[i] = (x[i] - lo) / (hi - lo)
	}
}

func drawSamples(spec Spec, protos [][]float64, n int, src *rng.Source) []Sample {
	out := make([]Sample, n)
	dim := spec.dim()
	for i := range out {
		label := i % spec.Classes // balanced classes
		x := deform(protos[label], spec, src)
		out[i] = Sample{X: x, Label: label}
		_ = dim
	}
	// Shuffle so class order carries no information.
	src.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// deform produces one sample: shifted prototype with per-feature flips and
// small additive noise.
func deform(proto []float64, spec Spec, src *rng.Source) []float64 {
	dim := len(proto)
	x := make([]float64, dim)
	var dr, dc, ds int
	if spec.ShiftMax > 0 {
		if spec.Side > 0 {
			dr = src.IntN(2*spec.ShiftMax+1) - spec.ShiftMax
			dc = src.IntN(2*spec.ShiftMax+1) - spec.ShiftMax
		} else {
			ds = src.IntN(2*spec.ShiftMax+1) - spec.ShiftMax
		}
	}
	for i := range x {
		var v float64
		if spec.Side > 0 {
			r := (i/spec.Side + dr + spec.Side) % spec.Side
			c := (i%spec.Side + dc + spec.Side) % spec.Side
			v = proto[r*spec.Side+c]
		} else {
			v = proto[(i+ds+dim)%dim]
		}
		if spec.FlipProb > 0 && src.Bernoulli(spec.FlipProb) {
			v = 1 - v
		}
		if spec.NoiseStd > 0 {
			v += src.Normal(0, spec.NoiseStd)
		}
		x[i] = clamp01(v)
	}
	return x
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Quantize8 maps [0,1] features to one byte each — the sensor-side encoding
// before modulation (Fig 4: "data bits").
func Quantize8(x []float64) []byte {
	out := make([]byte, len(x))
	for i, v := range x {
		out[i] = byte(math.Round(clamp01(v) * 255))
	}
	return out
}

// Dequantize8 is the inverse of Quantize8 (up to quantization error).
func Dequantize8(b []byte) []float64 {
	out := make([]float64, len(b))
	for i, v := range b {
		out[i] = float64(v) / 255
	}
	return out
}
