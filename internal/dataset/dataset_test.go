package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNamesHaveSpecs(t *testing.T) {
	for _, n := range Names() {
		if _, err := LookupSpec(n); err != nil {
			t.Errorf("missing spec for %q: %v", n, err)
		}
	}
	if _, err := LookupSpec("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestTable1ClassCounts(t *testing.T) {
	want := map[string]int{
		"mnist": 10, "fashion": 10, "fruits360": 8,
		"afhq": 3, "celeba": 10, "widar3": 6,
	}
	for n, classes := range want {
		s, err := LookupSpec(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Classes != classes {
			t.Errorf("%s has %d classes, paper says %d", n, s.Classes, classes)
		}
	}
}

func TestCelebAIsTiny(t *testing.T) {
	// The paper's CelebA split is 220/80; data scarcity makes it the
	// hardest Table 1 task and the spec must preserve that.
	s, _ := LookupSpec("celeba")
	if s.TrainFull != 220 || s.TestFull != 80 {
		t.Fatalf("celeba split %d/%d, want 220/80", s.TrainFull, s.TestFull)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustLoad("mnist", Quick, 42)
	b := MustLoad("mnist", Quick, 42)
	if len(a.Train) != len(b.Train) {
		t.Fatal("sizes differ")
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Train[i].X {
			if a.Train[i].X[j] != b.Train[i].X[j] {
				t.Fatal("features differ across identical seeds")
			}
		}
	}
	c := MustLoad("mnist", Quick, 43)
	same := true
	for j := range a.Train[0].X {
		if a.Train[0].X[j] != c.Train[0].X[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSamplesInRangeAndLabeled(t *testing.T) {
	for _, n := range Names() {
		d := MustLoad(n, Quick, 1)
		if d.Dim <= 0 || len(d.Train) == 0 || len(d.Test) == 0 {
			t.Fatalf("%s: empty dataset", n)
		}
		for _, s := range append(append([]Sample{}, d.Train...), d.Test...) {
			if s.Label < 0 || s.Label >= d.Classes {
				t.Fatalf("%s: label %d out of range", n, s.Label)
			}
			if len(s.X) != d.Dim {
				t.Fatalf("%s: sample dim %d, want %d", n, len(s.X), d.Dim)
			}
			for _, v := range s.X {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("%s: feature %v out of [0,1]", n, v)
				}
			}
		}
	}
}

func TestClassesBalanced(t *testing.T) {
	d := MustLoad("mnist", Quick, 2)
	counts := make([]int, d.Classes)
	for _, s := range d.Train {
		counts[s.Label]++
	}
	for c, n := range counts {
		if n < len(d.Train)/d.Classes-1 {
			t.Fatalf("class %d has only %d samples", c, n)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-class-prototype classifier on the training means should beat
	// chance by a wide margin on every dataset — otherwise the synthetic
	// tasks are unlearnable and the reproduction is vacuous.
	for _, n := range Names() {
		d := MustLoad(n, Quick, 3)
		means := make([][]float64, d.Classes)
		counts := make([]int, d.Classes)
		for c := range means {
			means[c] = make([]float64, d.Dim)
		}
		for _, s := range d.Train {
			for j, v := range s.X {
				means[s.Label][j] += v
			}
			counts[s.Label]++
		}
		for c := range means {
			for j := range means[c] {
				means[c][j] /= float64(counts[c])
			}
		}
		correct := 0
		for _, s := range d.Test {
			best, arg := math.Inf(1), -1
			for c := range means {
				var dist float64
				for j := range s.X {
					diff := s.X[j] - means[c][j]
					dist += diff * diff
				}
				if dist < best {
					best, arg = dist, c
				}
			}
			if arg == s.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(d.Test))
		chance := 1 / float64(d.Classes)
		if acc < chance+0.25 {
			t.Errorf("%s: prototype classifier accuracy %.2f barely beats chance %.2f", n, acc, chance)
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		x := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = math.Abs(math.Mod(v, 1))
		}
		back := Dequantize8(Quantize8(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1.0/255+1e-9 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuantizeClamps(t *testing.T) {
	b := Quantize8([]float64{-1, 0, 0.5, 1, 2})
	if b[0] != 0 || b[4] != 255 {
		t.Fatalf("quantize must clamp, got %v", b)
	}
}

func TestFullLargerThanQuick(t *testing.T) {
	q := MustLoad("mnist", Quick, 4)
	f := MustLoad("mnist", Full, 4)
	if len(f.Train) <= len(q.Train) {
		t.Fatalf("Full train %d not larger than Quick %d", len(f.Train), len(q.Train))
	}
}

func TestMultiDatasets(t *testing.T) {
	wantViews := map[string]int{"multipie": 3, "rfsauron": 3, "uschad": 2}
	wantClasses := map[string]int{"multipie": 10, "rfsauron": 10, "uschad": 6}
	for _, n := range MultiNames() {
		md := MustLoadMulti(n, Quick, 5)
		if len(md.Views) != wantViews[n] {
			t.Fatalf("%s: %d views, want %d", n, len(md.Views), wantViews[n])
		}
		if md.Classes != wantClasses[n] {
			t.Fatalf("%s: %d classes, want %d", n, md.Classes, wantClasses[n])
		}
		// All views aligned: same lengths, same labels per index.
		for v := 1; v < len(md.Views); v++ {
			if len(md.Views[v].Train) != len(md.Views[0].Train) {
				t.Fatalf("%s: view train sizes differ", n)
			}
			for i := range md.Views[v].Train {
				if md.Views[v].Train[i].Label != md.Views[0].Train[i].Label {
					t.Fatalf("%s: misaligned labels at train[%d]", n, i)
				}
			}
			for i := range md.Views[v].Test {
				if md.Views[v].Test[i].Label != md.Views[0].Test[i].Label {
					t.Fatalf("%s: misaligned labels at test[%d]", n, i)
				}
			}
		}
	}
	if _, err := LoadMulti("nope", Quick, 1); err == nil {
		t.Error("expected error for unknown multi dataset")
	}
}

func TestMultiViewsIndependentNoise(t *testing.T) {
	// Views observe the same event but with independent sensor noise: the
	// per-index feature vectors must differ across views.
	md := MustLoadMulti("multipie", Quick, 6)
	a, b := md.Views[0].Train[0].X, md.Views[1].Train[0].X
	same := 0
	for j := range a {
		if a[j] == b[j] {
			same++
		}
	}
	if same > len(a)/4 {
		t.Fatalf("views share %d/%d identical features; sensor noise missing", same, len(a))
	}
}

func TestFaceCase(t *testing.T) {
	fc := LoadFaceCase(7)
	if fc.Classes != 10 || fc.Backgrounds != 5 || fc.PerUser != 20 {
		t.Fatalf("face case dims %+v", fc)
	}
	// 10 ids × 5 bgs × 12 frames + 300 supplementary = 900 train.
	if len(fc.Train) != 900 {
		t.Fatalf("face case train %d, want 900", len(fc.Train))
	}
	if len(fc.Test) != 200 {
		t.Fatalf("face case test %d, want 10 users × 20", len(fc.Test))
	}
	// Test grouping: volunteer v occupies [v*20, v*20+20).
	for v := 0; v < fc.Classes; v++ {
		for k := 0; k < fc.PerUser; k++ {
			if fc.Test[v*fc.PerUser+k].Label != v {
				t.Fatalf("test sample (%d,%d) has label %d", v, k, fc.Test[v*fc.PerUser+k].Label)
			}
		}
	}
}
