// Package mts simulates the programmable metasurface at the heart of
// MetaAI: a 16×16 array of 2-bit meta-atoms (phase states 0, π/2, π, 3π/2
// selected by PIN-diode bias, §4 of the paper) whose aggregate reflection
// realizes the complex channel response
//
//	H_mts = α_p Σ_m e^{jφ^p_m} e^{jφ_m}            (Eqn 4)
//
// where φ^p_m is the propagation phase accumulated on the Tx→atom→Rx path
// and φ_m the atom's programmed state. The package provides the far-field
// geometry (Eqn 6), the discrete configuration solver for desired weights
// (Eqn 7) including environment compensation (Eqn 8), beam-scan angle
// estimation, the weight-distribution-density metric of Appendix A.2
// (Eqn 19), and the shift-register control/timing model of §4.
package mts

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cplx"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Surface describes one programmable metasurface.
type Surface struct {
	// Rows and Cols give the meta-atom grid; the prototype is 16×16.
	Rows, Cols int
	// Bits is the per-atom phase resolution; the prototype uses 2-bit atoms
	// (4 states) driven by two PIN diodes.
	Bits int
	// FreqGHz is the operating carrier frequency. The prototypes cover
	// 2.4/5 GHz (dual band) and 3.5 GHz.
	FreqGHz float64
	// SpacingM is the meta-atom pitch d_s; zero means λ/2.
	SpacingM float64
	// FabPhaseStd is the per-atom static fabrication phase error (radians),
	// one component of the hardware noise N_d of §3.5.2.
	FabPhaseStd float64

	states []float64
	fab    []float64 // per-atom static fabrication offsets
}

// DefaultFabPhaseStd is the mild per-atom fabrication phase spread
// (radians) of the paper's prototype surface, used by NewSurface and
// Prototype when drawing fabrication offsets.
const DefaultFabPhaseStd = 0.05

// NewSurface builds a surface. rows, cols and bits must be positive; the
// fabrication offsets are drawn once from src at the DefaultFabPhaseStd
// spread (pass nil for an ideal surface). Use NewSurfaceFab to configure
// the spread.
func NewSurface(rows, cols, bits int, freqGHz float64, src *rng.Source) (*Surface, error) {
	return NewSurfaceFab(rows, cols, bits, freqGHz, DefaultFabPhaseStd, src)
}

// NewSurfaceFab builds a surface whose per-atom static fabrication offsets
// are drawn from src as N(0, fabStd²). With src nil or fabStd zero the
// surface is fabrication-free (an ideal surface); fabStd must not be
// negative. NewSurfaceFab(r, c, b, f, DefaultFabPhaseStd, src) is
// bit-identical to NewSurface(r, c, b, f, src).
func NewSurfaceFab(rows, cols, bits int, freqGHz, fabStd float64, src *rng.Source) (*Surface, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("mts: invalid grid %dx%d", rows, cols)
	}
	if bits <= 0 || bits > 8 {
		return nil, fmt.Errorf("mts: unsupported bit depth %d", bits)
	}
	if freqGHz <= 0 {
		return nil, fmt.Errorf("mts: invalid frequency %v GHz", freqGHz)
	}
	if fabStd < 0 {
		return nil, fmt.Errorf("mts: negative fabrication spread %v", fabStd)
	}
	s := &Surface{Rows: rows, Cols: cols, Bits: bits, FreqGHz: freqGHz}
	n := 1 << bits
	s.states = make([]float64, n)
	for i := range s.states {
		s.states[i] = 2 * math.Pi * float64(i) / float64(n)
	}
	s.fab = make([]float64, rows*cols)
	if src != nil && fabStd > 0 {
		s.FabPhaseStd = fabStd
		for i := range s.fab {
			s.fab[i] = src.Normal(0, s.FabPhaseStd)
		}
	}
	return s, nil
}

// SurfaceFromOffsets rebuilds a surface from explicit per-atom fabrication
// offsets — the checkpoint-restore path. fab must carry exactly rows·cols
// entries (nil means fabrication-free); fabStd records the spread the
// offsets were drawn at and is informational only. A surface restored from
// FabOffsets of another surface produces bit-identical path phases and
// responses.
func SurfaceFromOffsets(rows, cols, bits int, freqGHz, spacingM, fabStd float64, fab []float64) (*Surface, error) {
	s, err := NewSurfaceFab(rows, cols, bits, freqGHz, 0, nil)
	if err != nil {
		return nil, err
	}
	s.SpacingM = spacingM
	s.FabPhaseStd = fabStd
	if fab != nil {
		if len(fab) != s.Atoms() {
			return nil, fmt.Errorf("mts: %d fabrication offsets for a %d-atom surface", len(fab), s.Atoms())
		}
		copy(s.fab, fab)
	}
	return s, nil
}

// FabOffsets returns the per-atom static fabrication phase offsets (radians).
// The slice is shared; callers must not modify it.
func (s *Surface) FabOffsets() []float64 { return s.fab }

// Prototype returns the paper's default surface: 16×16 2-bit atoms at
// 5.25 GHz with λ/2 spacing and mild fabrication spread.
func Prototype(src *rng.Source) *Surface {
	s, err := NewSurface(16, 16, 2, 5.25, src)
	if err != nil {
		panic(err)
	}
	return s
}

// Atoms returns the meta-atom count M.
func (s *Surface) Atoms() int { return s.Rows * s.Cols }

// States returns the programmable phase states (radians). The slice is
// shared; callers must not modify it.
func (s *Surface) States() []float64 { return s.states }

// Wavelength returns the carrier wavelength in meters.
func (s *Surface) Wavelength() float64 { return 299792458.0 / (s.FreqGHz * 1e9) }

// Spacing returns the atom pitch, defaulting to λ/2.
func (s *Surface) Spacing() float64 {
	if s.SpacingM > 0 {
		return s.SpacingM
	}
	return s.Wavelength() / 2
}

// Geometry fixes the link endpoints relative to the surface. Angles are
// measured from the surface normal (boresight 0°) in the azimuth plane;
// distances in meters. The paper's default is Tx at 1 m / 30° incidence and
// Rx at 3 m / 40° emergence.
type Geometry struct {
	TxDistM    float64
	TxAngleDeg float64
	RxDistM    float64
	RxAngleDeg float64
}

// DefaultGeometry returns the paper's §4 default placement.
func DefaultGeometry() Geometry {
	return Geometry{TxDistM: 1, TxAngleDeg: 30, RxDistM: 3, RxAngleDeg: 40}
}

// atomX returns the azimuth-plane coordinate of atom m (column offset from
// array center).
func (s *Surface) atomX(m int) float64 {
	col := m % s.Cols
	return (float64(col) - float64(s.Cols-1)/2) * s.Spacing()
}

// atomZ returns the elevation coordinate of atom m.
func (s *Surface) atomZ(m int) float64 {
	row := m / s.Cols
	return (float64(row) - float64(s.Rows-1)/2) * s.Spacing()
}

// PathPhases returns φ^p_m for every atom: the exact spherical-wave phase
// from the Tx (whose position is known, §3.2) plus the far-field plane-wave
// phase toward the Rx direction (Eqn 6). The common term e^{jk·d_1,Rx} is
// deliberately dropped — the paper proves it scales every output equally.
func (s *Surface) PathPhases(g Geometry) []float64 {
	k0 := 2 * math.Pi / s.Wavelength()
	sinTx, cosTx := math.Sincos(g.TxAngleDeg * math.Pi / 180)
	txX := g.TxDistM * sinTx
	txY := g.TxDistM * cosTx
	sinRx := math.Sin(g.RxAngleDeg * math.Pi / 180)
	out := make([]float64, s.Atoms())
	for m := range out {
		x, z := s.atomX(m), s.atomZ(m)
		dTx := math.Sqrt((txX-x)*(txX-x) + txY*txY + z*z)
		// Far-field Rx: projection of atom position onto the Rx direction.
		dRxRel := -x * sinRx
		out[m] = cplx.WrapPhase(k0*(dTx+dRxRel) + s.fab[m])
	}
	return out
}

// ElementGain returns the per-atom radiation pattern at the given off-normal
// angle. The prototype's field of view is [-60°, +60°] (Fig 25): the gain is
// a gentle cosine roll-off inside the FoV and collapses quickly beyond it.
func ElementGain(angleDeg float64) float64 {
	a := math.Abs(angleDeg)
	if a >= 90 {
		return 0
	}
	g := math.Pow(math.Cos(a*math.Pi/180), 0.8)
	if a > 60 {
		// Outside the designed FoV the unit-cell response degrades sharply.
		g *= math.Exp(-(a - 60) / 12)
	}
	return g
}

// Config holds one phase-state index per meta-atom.
type Config []uint8

// Clone returns a copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Response evaluates the ideal array factor Σ_m e^{j(φ^p_m + φ_states[cfg_m])}
// for the given path phases. This is H_mts of Eqn 4 up to the common real
// path amplitude α_p.
func (s *Surface) Response(cfg Config, pathPhases []float64) complex128 {
	if len(cfg) != s.Atoms() || len(pathPhases) != s.Atoms() {
		panic(fmt.Sprintf("mts: Response wants %d atoms, got cfg=%d phases=%d", s.Atoms(), len(cfg), len(pathPhases)))
	}
	var sum complex128
	for m, st := range cfg {
		sum += cplx.Expi(pathPhases[m] + s.states[st])
	}
	return sum
}

// RealizedResponse evaluates the array factor with per-atom dynamic phase
// jitter of the given standard deviation (radians) — the PIN-diode drive
// noise component of N_d in Eqn 13. Pass jitterStd 0 for the ideal response.
func (s *Surface) RealizedResponse(cfg Config, pathPhases []float64, jitterStd float64, src *rng.Source) complex128 {
	if jitterStd == 0 || src == nil {
		return s.Response(cfg, pathPhases)
	}
	var sum complex128
	for m, st := range cfg {
		sum += cplx.Expi(pathPhases[m] + s.states[st] + src.Normal(0, jitterStd))
	}
	return sum
}

// MaxResponse returns the magnitude of the best achievable array factor at
// the given path phases (every atom phase-aligned as well as its discrete
// states allow). Deployment normalizes desired weights against this value so
// every target lies inside the achievable disk.
func (s *Surface) MaxResponse(pathPhases []float64) float64 {
	cfg := s.alignConfig(0, pathPhases)
	return cmplx.Abs(s.Response(cfg, pathPhases))
}

// AlignedConfig returns the configuration that phase-aligns every atom
// toward the given paths (target phase zero) — the beam-steering / relay
// configuration whose response realizes MaxResponse's magnitude.
func (s *Surface) AlignedConfig(pathPhases []float64) Config {
	return s.alignConfig(0, pathPhases)
}

// alignConfig picks, per atom, the state whose total phase is closest to
// targetPhase — the greedy beam-steering initialization.
func (s *Surface) alignConfig(targetPhase float64, pathPhases []float64) Config {
	cfg := make(Config, len(pathPhases))
	for m, pp := range pathPhases {
		best, arg := math.Inf(1), 0
		for i, st := range s.states {
			if d := cplx.PhaseDistance(pp+st, targetPhase); d < best {
				best, arg = d, i
			}
		}
		cfg[m] = uint8(arg)
	}
	return cfg
}

// SolveTarget solves Eqn 7: it finds the discrete configuration whose array
// factor best approximates the desired complex weight. The solver greedily
// phase-aligns atoms toward the target direction, rescales by dropping atoms
// into canceling pairs when the target magnitude is small, then runs
// coordinate-descent refinement passes (each atom in turn tries all states,
// keeping the best incremental sum). It returns the configuration and the
// achieved ideal response.
func (s *Surface) SolveTarget(target complex128, pathPhases []float64) (Config, complex128) {
	solveCalls.Inc()
	t := obs.StartTimer()
	defer t.ObserveInto(solveSeconds)
	var nPasses, nFlips int64
	defer func() { solvePasses.Add(nPasses); solveFlips.Add(nFlips) }()
	cfg := s.alignConfig(cmplx.Phase(target), pathPhases)
	// Per-atom phasors under the current configuration.
	ph := make([]complex128, len(cfg))
	var sum complex128
	for m := range cfg {
		ph[m] = cplx.Expi(pathPhases[m] + s.states[cfg[m]])
		sum += ph[m]
	}
	const passes = 3
	for p := 0; p < passes; p++ {
		nPasses++
		improved := false
		for m := range cfg {
			base := sum - ph[m]
			bestErr := cmplx.Abs(base + ph[m] - target)
			bestState := cfg[m]
			bestPh := ph[m]
			for i := range s.states {
				if uint8(i) == cfg[m] {
					continue
				}
				cand := cplx.Expi(pathPhases[m] + s.states[i])
				if e := cmplx.Abs(base + cand - target); e < bestErr {
					bestErr, bestState, bestPh = e, uint8(i), cand
				}
			}
			if bestState != cfg[m] {
				cfg[m] = bestState
				sum = base + bestPh
				ph[m] = bestPh
				improved = true
				nFlips++
			}
		}
		if !improved {
			break
		}
	}
	return cfg, sum
}

// SolveTargetGreedy runs only the greedy phase-alignment initialization of
// the Eqn 7 solver, without coordinate-descent refinement. It exists for
// the solver-refinement ablation: greedy alignment alone matches the target
// phase but not its magnitude.
func (s *Surface) SolveTargetGreedy(target complex128, pathPhases []float64) (Config, complex128) {
	cfg := s.alignConfig(cmplx.Phase(target), pathPhases)
	return cfg, s.Response(cfg, pathPhases)
}

// SolveTargetCompensated solves Eqn 8: it targets H_des − H_e so the
// realized total channel (MTS path + known static environment) equals the
// desired weight. This is the explicit-estimation alternative to the
// zero-mean cancellation scheme; it requires a static environment.
func (s *Surface) SolveTargetCompensated(des, env complex128, pathPhases []float64) (Config, complex128) {
	return s.SolveTarget(des-env, pathPhases)
}

// BeamScan estimates the receiver angle θ by sweeping beam-steering
// configurations over a grid and returning the angle whose beam collects the
// most power at the true receiver direction (§3.2: "standard beam scanning
// techniques"). stepDeg sets the scan resolution; the residual quantization
// error is one source of prototype-vs-simulation accuracy gap.
func (s *Surface) BeamScan(g Geometry, stepDeg float64) float64 {
	if stepDeg <= 0 {
		stepDeg = 1
	}
	truth := s.PathPhases(g)
	best, bestAngle := -1.0, 0.0
	for a := -80.0; a <= 80.0; a += stepDeg {
		cand := g
		cand.RxAngleDeg = a
		// Steer a beam toward candidate angle a…
		cfg := s.alignConfig(0, s.PathPhases(cand))
		// …and measure the power actually delivered to the true Rx.
		p := cmplx.Abs(s.Response(cfg, truth))
		if p > best {
			best, bestAngle = p, a
		}
	}
	return bestAngle
}
