package mts

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// WDDOptions parameterizes the weight-distribution-density estimate.
type WDDOptions struct {
	// Epsilon is the mapping error tolerance ε of Eqn 19; the paper uses
	// 0.002.
	Epsilon float64
	// Samples is the Monte-Carlo budget used for surfaces whose achievable
	// set cannot be enumerated exactly (bit depth ≠ 2).
	Samples int
}

// DefaultWDDOptions mirrors Appendix A.2 (ε = 0.002).
func DefaultWDDOptions() WDDOptions {
	return WDDOptions{Epsilon: 0.002, Samples: 120000}
}

// WDD computes the weight distribution density of Appendix A.2 (Eqn 19):
// every achievable MTS weight serves the digital weights within mapping
// tolerance ε of it, so WDD is the fraction of the normalized weight disk
// (radius √2/2) covered by the union of ε-disks centred on achievable
// weights — Size(S_c)·πε² / (π(√2/2)²), with overlap accounted for.
//
// After propagation-phase compensation every atom contributes one of the
// discrete state phasors, so for the 2-bit prototype the achievable set is
// exactly the integer lattice {(n₀−n₂) + j(n₁−n₃) : Σnₖ = M} — the diamond
// |a|+|b| ≤ M with parity a+b ≡ M (mod 2) — which this function enumerates
// exactly. The ε-disks begin to tile the domain when M²·πε² reaches the
// diamond area, i.e. at M ≈ 1/(√π·ε) ≈ 282 for ε = 0.002: the saturation
// knee of Fig 30 and the reason the paper selects 256 atoms. For other bit
// depths the achievable set is Monte-Carlo sampled using src.
func (s *Surface) WDD(opt WDDOptions, src *rng.Source) float64 {
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.002
	}
	m := s.Atoms()
	radius := math.Sqrt2 / 2
	g := newCoverageGrid(radius, opt.Epsilon)
	if len(s.states) == 4 {
		// Exact lattice enumeration. Normalized coordinates: w = (a+jb)·scale
		// with scale = radius/M so the fully-aligned response lands on the
		// disk rim.
		scale := radius / float64(m)
		for a := -m; a <= m; a++ {
			bMax := m - abs(a)
			for b := -bMax; b <= bMax; b++ {
				if (a+b-m)%2 != 0 {
					continue
				}
				g.markDisk(float64(a)*scale, float64(b)*scale)
			}
		}
		return g.coverage()
	}
	// Monte-Carlo fallback for exotic bit depths: sample state-count
	// compositions uniformly over the simplex (stars and bars) so the whole
	// achievable region is explored, and bin the resulting sums.
	if opt.Samples <= 0 {
		opt.Samples = 120000
	}
	if src == nil {
		src = rng.New(1)
	}
	scale := radius / float64(m)
	k := len(s.states)
	cuts := make([]int, k+1)
	for i := 0; i < opt.Samples; i++ {
		cuts[0], cuts[k] = 0, m
		for j := 1; j < k; j++ {
			cuts[j] = src.IntN(m + 1)
		}
		sort.Ints(cuts[:k]) // cuts[0]==0 stays first after sorting
		var re, im float64
		for j := 0; j < k; j++ {
			n := cuts[j+1] - cuts[j]
			sin, cos := math.Sincos(s.states[j])
			re += float64(n) * cos
			im += float64(n) * sin
		}
		g.markDisk(re*scale, im*scale)
	}
	return g.coverage()
}

// coverageGrid rasterizes the union of ε-disks inside the radius-R disk at
// cell pitch ε.
type coverageGrid struct {
	radius, eps float64
	cells       int
	covered     map[int64]struct{}
	inDisk      int // total cells whose center lies in the disk (cached)
}

func newCoverageGrid(radius, eps float64) *coverageGrid {
	g := &coverageGrid{
		radius:  radius,
		eps:     eps,
		cells:   int(math.Ceil(2*radius/eps)) + 2,
		covered: make(map[int64]struct{}),
	}
	return g
}

// markDisk covers every cell whose center lies within ε of (x, y) and within
// the representation disk.
func (g *coverageGrid) markDisk(x, y float64) {
	cx := int(math.Floor((x + g.radius) / g.eps))
	cy := int(math.Floor((y + g.radius) / g.eps))
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			ix, iy := cx+dx, cy+dy
			if ix < 0 || iy < 0 || ix >= g.cells || iy >= g.cells {
				continue
			}
			px := (float64(ix)+0.5)*g.eps - g.radius
			py := (float64(iy)+0.5)*g.eps - g.radius
			if (px-x)*(px-x)+(py-y)*(py-y) > g.eps*g.eps {
				continue
			}
			if px*px+py*py > g.radius*g.radius {
				continue
			}
			g.covered[int64(ix)*int64(g.cells)+int64(iy)] = struct{}{}
		}
	}
}

// coverage returns covered-cell area over disk area, in [0, 1].
func (g *coverageGrid) coverage() float64 {
	diskArea := math.Pi * g.radius * g.radius
	frac := float64(len(g.covered)) * g.eps * g.eps / diskArea
	if frac > 1 {
		frac = 1
	}
	return frac
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
