package mts

import (
	"testing"

	"repro/internal/rng"
)

// The Eqn 7 solver runs once per (output, symbol) pair at deployment time —
// R·U = 640 times for the default MNIST pipeline — so its cost dominates
// deployment latency and the §7 recalibration budget.
func BenchmarkSolveTarget(b *testing.B) {
	s := Prototype(rng.New(1))
	pp := s.PathPhases(DefaultGeometry())
	maxR := s.MaxResponse(pp)
	target := complex(0.4*maxR, -0.3*maxR)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SolveTarget(target, pp)
	}
}

func BenchmarkSolveMultiTarget10(b *testing.B) {
	s := Prototype(rng.New(2))
	g := DefaultGeometry()
	paths := make([][]float64, 10)
	for ch := range paths {
		gg := g
		gg.RxAngleDeg = -45 + 10*float64(ch)
		paths[ch] = s.PathPhases(gg)
	}
	maxR := s.MaxResponse(paths[0])
	targets := make([]complex128, 10)
	for i := range targets {
		targets[i] = complex(0.1*maxR, 0.05*maxR*float64(i-5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SolveMultiTarget(targets, paths)
	}
}

func BenchmarkResponse(b *testing.B) {
	s := Prototype(rng.New(3))
	pp := s.PathPhases(DefaultGeometry())
	cfg := make(Config, s.Atoms())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Response(cfg, pp)
	}
}

func BenchmarkBeamScan(b *testing.B) {
	s := Prototype(rng.New(4))
	g := DefaultGeometry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BeamScan(g, 1)
	}
}

func BenchmarkWDD256(b *testing.B) {
	s, _ := NewSurface(16, 16, 2, 5.25, nil)
	opt := DefaultWDDOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WDD(opt, nil)
	}
}
