package mts

import "repro/internal/obs/trace"

// StartSolveSpan opens a child span covering one schedule-level solver run
// — a whole classes×U target batch, not a single SolveTarget call, which
// is far too hot to trace individually. Callers (ota deployment builds,
// faults heal previews) end the returned span when their solve loop
// finishes; a nil parent (tracing disabled) makes the whole thing free.
func StartSolveSpan(parent *trace.Span, kind string, targets int) *trace.Span {
	sp := parent.Child("mts.solve")
	sp.SetStr("kind", kind)
	sp.SetNum("targets", float64(targets))
	return sp
}
