package mts

import (
	"math/cmplx"
	"testing"

	"repro/internal/cplx"
	"repro/internal/rng"
)

// maskedTargets draws realizable-scale solve targets against the prototype
// surface's maximum coherent response.
func maskedTargets(s *Surface, pp []float64, n int, seed uint64) []complex128 {
	src := rng.New(seed)
	maxR := s.MaxResponse(pp)
	out := make([]complex128, n)
	for i := range out {
		out[i] = cplx.Expi(src.Phase()) * complex(0.6*maxR*src.Float64(), 0)
	}
	return out
}

func TestSolveTargetMaskedEmptyPinIsSolveTarget(t *testing.T) {
	// With nothing pinned the masked solver must degrade to SolveTarget bit
	// for bit — the solver-side zero-is-free invariant.
	s := Prototype(rng.New(3))
	pp := s.PathPhases(DefaultGeometry())
	for i, target := range maskedTargets(s, pp, 20, 5) {
		cfgA, gotA := s.SolveTarget(target, pp)
		cfgB, gotB := s.SolveTargetMasked(target, pp, nil)
		if gotA != gotB {
			t.Fatalf("target %d: masked response %v != plain %v", i, gotB, gotA)
		}
		for m := range cfgA {
			if cfgA[m] != cfgB[m] {
				t.Fatalf("target %d: masked config differs at atom %d", i, m)
			}
		}
	}
}

func TestSolveTargetMaskedPinsAtoms(t *testing.T) {
	s := Prototype(rng.New(3))
	pp := s.PathPhases(DefaultGeometry())
	src := rng.New(9)
	pinned := map[int]uint8{}
	for len(pinned) < 40 {
		pinned[src.IntN(s.Atoms())] = uint8(src.IntN(len(s.States())))
	}
	for i, target := range maskedTargets(s, pp, 10, 5) {
		cfg, got := s.SolveTargetMasked(target, pp, pinned)
		for m, st := range pinned {
			if cfg[m] != st {
				t.Fatalf("target %d: pinned atom %d solved to %d, want %d", i, m, cfg[m], st)
			}
		}
		// The returned response must be the surface's own evaluation of the
		// returned configuration (what the faulty hardware actually plays).
		if want := s.Response(cfg, pp); cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("target %d: returned response %v != evaluated %v", i, got, want)
		}
	}
}

func TestMaskedSolveBeatsNaiveOverride(t *testing.T) {
	// Re-solving around the stuck atoms must approximate the targets better
	// than latching the stuck atoms into the healthy solution — otherwise
	// degraded-mode healing would be pointless.
	s := Prototype(rng.New(3))
	pp := s.PathPhases(DefaultGeometry())
	src := rng.New(9)
	pinned := map[int]uint8{}
	for len(pinned) < 50 {
		pinned[src.IntN(s.Atoms())] = uint8(src.IntN(len(s.States())))
	}
	targets := maskedTargets(s, pp, 25, 5)
	var naive, healed float64
	for _, target := range targets {
		cfg, _ := s.SolveTarget(target, pp)
		for m, st := range pinned {
			cfg[m] = st
		}
		naive += cmplx.Abs(s.Response(cfg, pp) - target)
		_, got := s.SolveTargetMasked(target, pp, pinned)
		healed += cmplx.Abs(got - target)
	}
	if healed >= naive {
		t.Fatalf("masked solve error %v not below naive override error %v", healed, naive)
	}
}

func TestMaskedSolveError(t *testing.T) {
	s := Prototype(rng.New(3))
	pp := s.PathPhases(DefaultGeometry())
	if got := s.MaskedSolveError(nil, pp, nil); got != 0 {
		t.Fatalf("MaskedSolveError with no targets = %v, want 0", got)
	}
	targets := maskedTargets(s, pp, 10, 5)
	free := s.MaskedSolveError(targets, pp, nil)
	// Light pinning can land the coordinate descent in a different (even
	// better) basin, so only near-total pinning gives a guaranteed ordering:
	// with 16 of 256 atoms free the solver cannot track the targets.
	src := rng.New(9)
	pinned := map[int]uint8{}
	for len(pinned) < s.Atoms()-16 {
		pinned[src.IntN(s.Atoms())] = uint8(src.IntN(len(s.States())))
	}
	stuck := s.MaskedSolveError(targets, pp, pinned)
	if stuck <= free {
		t.Fatalf("near-total pinning solve error %v not above free error %v", stuck, free)
	}
}
