package mts

import (
	"fmt"

	"repro/internal/obs"
)

// Solver metrics: call counts per solver variant, shared refinement-work
// counters (coordinate-descent passes and atom state flips), and wall-clock
// solve-time histograms (recorded only while obs is enabled). None of them
// touch any rng.Source, so instrumented solves stay bit-identical.
var (
	solveCalls        = obs.NewCounter("mts.solve.calls")
	solveMaskedCalls  = obs.NewCounter("mts.solve.masked.calls")
	solveMultiCalls   = obs.NewCounter("mts.solve.multi.calls")
	solvePasses       = obs.NewCounter("mts.solve.passes")
	solveFlips        = obs.NewCounter("mts.solve.flips")
	solveSeconds      = obs.NewLatencyHistogram("mts.solve.seconds")
	solveMaskedSecs   = obs.NewLatencyHistogram("mts.solve.masked.seconds")
	solveMultiSecs    = obs.NewLatencyHistogram("mts.solve.multi.seconds")
	cascadeSolveCalls = obs.NewCounter("mts.cascade.solve.calls")
	cascadeSolveSecs  = obs.NewLatencyHistogram("mts.cascade.solve.seconds")
)

// cascadeLayerCounters returns one per-layer subsolve counter per cascade
// layer — the layer dimension of the solver metrics. Handles are memoized by
// name in the registry, so cascades of the same depth share them (the same
// pattern as parallel's per-subchannel output counters).
func cascadeLayerCounters(k int) []*obs.Counter {
	out := make([]*obs.Counter, k)
	for l := range out {
		out[l] = obs.NewCounter(fmt.Sprintf("mts.cascade.layer.%d.solves", l))
	}
	return out
}
