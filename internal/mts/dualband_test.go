package mts

import (
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

func TestNewDualBandValidation(t *testing.T) {
	if _, err := NewDualBand(5, 2.4, nil); err == nil {
		t.Error("expected error for inverted band order")
	}
	if _, err := NewDualBand(0, 5, nil); err == nil {
		t.Error("expected error for zero band")
	}
}

func TestDualBandPersonalities(t *testing.T) {
	d := PrototypeDualBand(rng.New(1))
	if got := d.Bands(); got[0] != 2.4 || got[1] != 5.0 {
		t.Fatalf("bands = %v", got)
	}
	low, err := d.Band(2.4)
	if err != nil {
		t.Fatal(err)
	}
	high, err := d.Band(5.0)
	if err != nil {
		t.Fatal(err)
	}
	if low.FreqGHz != 2.4 || high.FreqGHz != 5.0 {
		t.Fatal("band personalities mislabelled")
	}
	// One physical panel: same pitch in both personalities.
	if low.Spacing() != high.Spacing() {
		t.Fatalf("pitch differs across bands: %v vs %v", low.Spacing(), high.Spacing())
	}
	if _, err := d.Band(3.5); err == nil {
		t.Error("expected error for an unsupported band")
	}
}

func TestCrossBandScheduleIsUseless(t *testing.T) {
	// A configuration solved for the 5 GHz path phases must realize its
	// target in-band and miss it badly cross-band.
	d := PrototypeDualBand(rng.New(2))
	high, _ := d.Band(5.0)
	g := DefaultGeometry()
	pp := high.PathPhases(g)
	maxR := high.MaxResponse(pp)
	target := complex(0.4*maxR, 0.2*maxR)
	cfg, _ := high.SolveTarget(target, pp)
	same, cross := d.CrossBandResponse(cfg, g)
	if cmplx.Abs(same-target) > 0.05*maxR {
		t.Fatalf("in-band response %v misses target %v", same, target)
	}
	if cmplx.Abs(cross-target) < 0.2*maxR {
		t.Fatalf("cross-band response %v should miss the target %v badly", cross, target)
	}
}

func TestDualBandBothBandsDeployable(t *testing.T) {
	// Re-solving per band restores approximation quality in either band.
	d := PrototypeDualBand(rng.New(3))
	g := DefaultGeometry()
	for _, ghz := range d.Bands() {
		s, err := d.Band(ghz)
		if err != nil {
			t.Fatal(err)
		}
		pp := s.PathPhases(g)
		maxR := s.MaxResponse(pp)
		target := complex(-0.3*maxR, 0.4*maxR)
		_, got := s.SolveTarget(target, pp)
		if cmplx.Abs(got-target) > 0.02*maxR {
			t.Fatalf("%v GHz: solve error %v of range", ghz, cmplx.Abs(got-target)/maxR)
		}
	}
}
