package mts

import (
	"fmt"
	"math/cmplx"

	"repro/internal/obs"
)

// CascadeSolver solves the stacked-surface generalization of Eqn 7: K
// surfaces in series whose composed response
//
//	H = Π_k S_k · H_k(cfg_k)
//
// must approximate one end-to-end complex target, where S_k is layer k's
// composition scale (drive amplitude over achievable maximum — the per-layer
// power-control knob) and H_k the layer's array factor at its own path
// phases. The solver runs coordinate descent OVER LAYERS: holding every
// other layer's response fixed, layer ℓ's single-surface subproblem
//
//	H_ℓ ≈ target / (S_ℓ · Π_{k≠ℓ} S_k H_k)
//
// is exactly Eqn 7 again, so each step reuses SolveTarget — or
// SolveTargetMasked when the layer carries pinned (stuck) atoms. Extra
// layers are initialized phase-aligned (their maximum-magnitude state), the
// configuration every relay hop would idle in, which makes the first
// layer-0 solve see the full cascade gain.
//
// A 1-layer cascade delegates to SolveTargetMasked directly and is
// bit-identical to the single-surface solver.
type CascadeSolver struct {
	// Surfaces holds the solver-side (ideal, fabrication-free) surface per
	// layer, primary first.
	Surfaces []*Surface
	// Paths holds each layer's solver-frame path phases.
	Paths [][]float64
	// Scales holds each layer's composition scale S_k. The primary's scale
	// carries its drive amplitude; extra layers fold in p_k / maxR_k.
	Scales []complex128
	// Pinned optionally pins stuck atoms per layer (nil entries mean none) —
	// the degraded-mode cascade re-solve.
	Pinned []map[int]uint8
	// Passes is the number of coordinate-descent sweeps over the layers
	// (default 2; the per-layer subsolves do their own atom-level descent).
	Passes int
}

// Layers returns the cascade depth K.
func (cs *CascadeSolver) Layers() int { return len(cs.Surfaces) }

func (cs *CascadeSolver) pinnedAt(k int) map[int]uint8 {
	if k < len(cs.Pinned) {
		return cs.Pinned[k]
	}
	return nil
}

// Solve finds one configuration per layer whose composed response best
// approximates target, returning the configurations (primary first) and the
// achieved composed response in the solver frame.
func (cs *CascadeSolver) Solve(target complex128) ([]Config, complex128) {
	k := cs.Layers()
	if k == 0 {
		panic("mts: CascadeSolver with no layers")
	}
	if len(cs.Paths) != k || len(cs.Scales) != k {
		panic(fmt.Sprintf("mts: CascadeSolver has %d surfaces, %d paths, %d scales", k, len(cs.Paths), len(cs.Scales)))
	}
	if k == 1 {
		// Single surface: the cascade IS Eqn 7. Delegate so the result — and
		// the solver metrics — are bit-identical to the seed path.
		cfg, got := cs.Surfaces[0].SolveTargetMasked(target/cs.Scales[0], cs.Paths[0], cs.pinnedAt(0))
		return []Config{cfg}, cs.Scales[0] * got
	}
	cascadeSolveCalls.Inc()
	t := obs.StartTimer()
	defer t.ObserveInto(cascadeSolveSecs)

	cfgs := make([]Config, k)
	resp := make([]complex128, k) // scaled per-layer responses S_k·H_k
	// Initialize every non-primary layer phase-aligned at its pinned states.
	for l := 1; l < k; l++ {
		cfg := cs.Surfaces[l].alignConfig(0, cs.Paths[l])
		for m, st := range cs.pinnedAt(l) {
			cfg[m] = st
		}
		cfgs[l] = cfg
		resp[l] = cs.Scales[l] * cs.Surfaces[l].Response(cfg, cs.Paths[l])
	}
	passes := cs.Passes
	if passes <= 0 {
		passes = 2
	}
	counters := cascadeLayerCounters(k)
	for p := 0; p < passes; p++ {
		for l := 0; l < k; l++ {
			denom := cs.Scales[l]
			for j := 0; j < k; j++ {
				if j != l {
					denom *= resp[j]
				}
			}
			if denom == 0 || cmplx.IsNaN(denom) || cmplx.IsInf(denom) {
				continue // a degenerate layer response; keep the current config
			}
			cfg, got := cs.Surfaces[l].SolveTargetMasked(target/denom, cs.Paths[l], cs.pinnedAt(l))
			cfgs[l] = cfg
			resp[l] = cs.Scales[l] * got
			counters[l].Inc()
		}
	}
	composed := complex(1, 0)
	for l := 0; l < k; l++ {
		composed *= resp[l]
	}
	return cfgs, composed
}

// CascadeResponse evaluates the composed response Π_k scales_k·H_k(cfgs_k)
// of a layer-configuration tuple against per-layer path phases — the
// realized end-to-end channel when paths carry the TRUE phases (fabrication
// offsets, actual geometry) each physical layer plays under.
func CascadeResponse(surfaces []*Surface, cfgs []Config, paths [][]float64, scales []complex128) complex128 {
	h := complex(1, 0)
	for k, s := range surfaces {
		h *= scales[k] * s.Response(cfgs[k], paths[k])
	}
	return h
}
