package mts

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func ideal16() *Surface {
	s, err := NewSurface(16, 16, 2, 5.25, nil)
	if err != nil {
		panic(err)
	}
	return s
}

func TestNewSurfaceValidation(t *testing.T) {
	if _, err := NewSurface(0, 16, 2, 5.25, nil); err == nil {
		t.Error("expected error for zero rows")
	}
	if _, err := NewSurface(16, 16, 0, 5.25, nil); err == nil {
		t.Error("expected error for zero bits")
	}
	if _, err := NewSurface(16, 16, 9, 5.25, nil); err == nil {
		t.Error("expected error for >8 bits")
	}
	if _, err := NewSurface(16, 16, 2, 0, nil); err == nil {
		t.Error("expected error for zero frequency")
	}
}

func TestStates2Bit(t *testing.T) {
	s := ideal16()
	want := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	states := s.States()
	if len(states) != 4 {
		t.Fatalf("2-bit surface has %d states", len(states))
	}
	for i, st := range states {
		if math.Abs(st-want[i]) > 1e-12 {
			t.Errorf("state %d = %v, want %v", i, st, want[i])
		}
	}
}

func TestSpacingDefaultsToHalfWavelength(t *testing.T) {
	s := ideal16()
	if got, want := s.Spacing(), s.Wavelength()/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("spacing %v, want λ/2 = %v", got, want)
	}
	s.SpacingM = 0.01
	if s.Spacing() != 0.01 {
		t.Fatal("explicit spacing ignored")
	}
}

func TestPathPhasesInRange(t *testing.T) {
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	if len(pp) != 256 {
		t.Fatalf("got %d path phases", len(pp))
	}
	for m, p := range pp {
		if p < 0 || p >= 2*math.Pi {
			t.Fatalf("phase %d = %v out of [0,2π)", m, p)
		}
	}
}

func TestPathPhasesVaryAcrossAtoms(t *testing.T) {
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	distinct := map[float64]struct{}{}
	for _, p := range pp {
		distinct[math.Round(p*1e9)] = struct{}{}
	}
	if len(distinct) < 64 {
		t.Fatalf("only %d distinct path phases; geometry model too degenerate", len(distinct))
	}
}

func TestResponseMagnitudeBounds(t *testing.T) {
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	src := rng.New(1)
	cfg := make(Config, s.Atoms())
	for i := 0; i < 50; i++ {
		for m := range cfg {
			cfg[m] = uint8(src.IntN(4))
		}
		if r := cmplx.Abs(s.Response(cfg, pp)); r > float64(s.Atoms())+1e-9 {
			t.Fatalf("response magnitude %v exceeds atom count", r)
		}
	}
}

func TestMaxResponseNearAtomCount(t *testing.T) {
	// With 2-bit states the best phase alignment is within ±π/4 per atom, so
	// the max array factor is at least M·cos(π/4) ≈ 0.90·M (expected value
	// M·sinc(π/4) ≈ 0.9·M).
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	got := s.MaxResponse(pp)
	if got < 0.88*256 || got > 256 {
		t.Fatalf("MaxResponse = %v, want within [0.88·256, 256]", got)
	}
}

func TestSolveTargetAccuracy(t *testing.T) {
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	maxR := s.MaxResponse(pp)
	src := rng.New(2)
	var worst float64
	for i := 0; i < 40; i++ {
		// Targets well inside the achievable disk, arbitrary phase.
		mag := (0.05 + 0.6*src.Float64()) * maxR
		target := complex(mag*math.Cos(src.Phase()), mag*math.Sin(src.Phase()))
		_, got := s.SolveTarget(target, pp)
		relErr := cmplx.Abs(got-target) / maxR
		if relErr > worst {
			worst = relErr
		}
	}
	// 256 2-bit atoms approximate interior targets to a small fraction of
	// the dynamic range (Fig 6's dense coverage).
	if worst > 0.01 {
		t.Fatalf("worst relative solve error = %v, want < 1%%", worst)
	}
}

func TestSolveTargetImprovesWithAtoms(t *testing.T) {
	// Fig 6 / Fig 7: more atoms -> denser complex-plane coverage -> lower
	// approximation error.
	src := rng.New(3)
	var errs []float64
	for _, grid := range []int{4, 8, 16} {
		s, err := NewSurface(grid, grid, 2, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		pp := s.PathPhases(DefaultGeometry())
		maxR := s.MaxResponse(pp)
		var total float64
		probe := src.Split()
		for i := 0; i < 30; i++ {
			mag := 0.5 * probe.Float64() * maxR
			target := complex(mag*math.Cos(probe.Phase()), mag*math.Sin(probe.Phase()))
			_, got := s.SolveTarget(target, pp)
			total += cmplx.Abs(got-target) / maxR
		}
		errs = append(errs, total/30)
	}
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Fatalf("solve error should fall with atom count, got %v", errs)
	}
}

func TestSolveTargetCompensated(t *testing.T) {
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	des := complex(40.0, -25.0)
	env := complex(12.0, 5.0)
	cfg, _ := s.SolveTargetCompensated(des, env, pp)
	total := s.Response(cfg, pp) + env
	if cmplx.Abs(total-des) > 0.02*s.MaxResponse(pp) {
		t.Fatalf("compensated channel %v, want %v", total, des)
	}
}

func TestRealizedResponseJitter(t *testing.T) {
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	cfg, ideal := s.SolveTarget(complex(60, 30), pp)
	src := rng.New(4)
	if got := s.RealizedResponse(cfg, pp, 0, src); got != s.Response(cfg, pp) {
		t.Fatal("zero jitter must reproduce the ideal response")
	}
	// Jittered responses deviate but stay near the ideal for small σ.
	var dev float64
	const n = 50
	for i := 0; i < n; i++ {
		dev += cmplx.Abs(s.RealizedResponse(cfg, pp, 0.1, src) - ideal)
	}
	dev /= n
	if dev == 0 {
		t.Fatal("jitter had no effect")
	}
	if dev > 0.15*cmplx.Abs(ideal)+5 {
		t.Fatalf("0.1 rad jitter deviates by %v from |%v|", dev, cmplx.Abs(ideal))
	}
}

func TestElementGainFoV(t *testing.T) {
	if g := ElementGain(0); math.Abs(g-1) > 1e-12 {
		t.Fatalf("boresight gain %v, want 1", g)
	}
	if ElementGain(90) != 0 || ElementGain(120) != 0 {
		t.Fatal("gain beyond 90° must be zero")
	}
	// Monotone decreasing in |angle|.
	prev := math.Inf(1)
	for a := 0.0; a <= 89; a += 1 {
		g := ElementGain(a)
		if g > prev {
			t.Fatalf("gain not monotone at %v°", a)
		}
		prev = g
	}
	// Fig 25: sharp drop past the 60° FoV edge.
	in := ElementGain(60)
	out := ElementGain(80)
	if out > 0.55*in {
		t.Fatalf("gain at 80° (%v) should be far below gain at 60° (%v)", out, in)
	}
}

func TestElementGainSymmetric(t *testing.T) {
	err := quick.Check(func(raw float64) bool {
		a := math.Mod(math.Abs(raw), 90)
		return math.Abs(ElementGain(a)-ElementGain(-a)) < 1e-12
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBeamScanFindsRxAngle(t *testing.T) {
	s := ideal16()
	for _, trueAngle := range []float64{-40, -10, 0, 25, 55} {
		g := DefaultGeometry()
		g.RxAngleDeg = trueAngle
		got := s.BeamScan(g, 1)
		if math.Abs(got-trueAngle) > 3 {
			t.Errorf("beam scan estimated %v°, true %v°", got, trueAngle)
		}
	}
}

func TestWDDIncreasesWithAtomsAndSaturates(t *testing.T) {
	opt := DefaultWDDOptions()
	var vals []float64
	for _, grid := range []int{4, 8, 16, 23, 32} {
		s, err := NewSurface(grid, grid, 2, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, s.WDD(opt, nil))
	}
	if !(vals[0] < vals[1] && vals[1] < vals[2]) {
		t.Fatalf("WDD should rise with atoms: %v", vals)
	}
	// Fig 30: sharp rise then saturation at the 256-atom knee — the surfaces
	// past 16×16 gain far less than the step up to 16×16 did.
	gainTo256 := vals[2] / vals[1]
	gainPast256 := vals[4] / vals[2]
	if gainPast256 > 1.35 || gainTo256 < 2 {
		t.Fatalf("WDD should saturate near 256 atoms: %v", vals)
	}
	for _, v := range vals {
		if v < 0 || v > 1.0+1e-9 {
			t.Fatalf("WDD out of [0,1]: %v", vals)
		}
	}
}

func TestWDDMonteCarloPathAgreesForCoarseGrid(t *testing.T) {
	// A 3-bit surface exercises the Monte-Carlo fallback; its WDD at equal
	// atom count must be at least that of the 2-bit surface (denser states).
	opt := WDDOptions{Epsilon: 0.01, Samples: 20000}
	s2, _ := NewSurface(8, 8, 2, 5.25, nil)
	s3, _ := NewSurface(8, 8, 3, 5.25, nil)
	w2 := s2.WDD(opt, nil)
	w3 := s3.WDD(opt, rng.New(3))
	if w3 <= 0 || w3 > 1 {
		t.Fatalf("3-bit WDD out of range: %v", w3)
	}
	if w3 < 0.5*w2 {
		t.Fatalf("3-bit WDD (%v) implausibly below 2-bit (%v)", w3, w2)
	}
}

func TestPrototypeController(t *testing.T) {
	c := PrototypeController()
	rate := c.MaxSwitchRate(256)
	if math.Abs(rate-2.56e6) > 1e3 {
		t.Fatalf("prototype switch rate = %v, want 2.56 MHz", rate)
	}
	// §4: 1 Msym/s with 2 in-symbol switches fits exactly.
	if err := c.ValidateSchedule(256, 1e6, 2); err != nil {
		t.Fatalf("prototype schedule rejected: %v", err)
	}
	if err := c.ValidateSchedule(256, 1e6, 4); err == nil {
		t.Fatal("4 switches/symbol should exceed the prototype controller")
	}
	if err := c.ValidateSchedule(256, 1e6, 0); err == nil {
		t.Fatal("zero switches per symbol must be rejected")
	}
}

func TestControllerEnergyLinear(t *testing.T) {
	c := PrototypeController()
	if got := c.ControlEnergy(100); math.Abs(got-100*c.SwitchEnergyJ) > 1e-18 {
		t.Fatalf("ControlEnergy(100) = %v", got)
	}
}

func TestConfigClone(t *testing.T) {
	c := Config{1, 2, 3}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Fatal("Config.Clone must not share storage")
	}
}

func TestFabricationOffsetsSeeded(t *testing.T) {
	a := Prototype(rng.New(11))
	b := Prototype(rng.New(11))
	for i := range a.fab {
		if a.fab[i] != b.fab[i] {
			t.Fatal("fabrication offsets must be reproducible from the seed")
		}
	}
	var nonzero bool
	for _, f := range a.fab {
		if f != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("prototype surface should have fabrication spread")
	}
}

func TestSolveTargetProperties(t *testing.T) {
	// Property-based check over random interior targets: the solver always
	// returns a full-length configuration with valid states, and its
	// response lands within a small fraction of the dynamic range.
	s := ideal16()
	pp := s.PathPhases(DefaultGeometry())
	maxR := s.MaxResponse(pp)
	src := rng.New(40)
	err := quick.Check(func(seed uint64) bool {
		probe := rng.New(seed)
		mag := 0.7 * probe.Float64() * maxR
		th := probe.Phase()
		target := complex(mag*math.Cos(th), mag*math.Sin(th))
		cfg, got := s.SolveTarget(target, pp)
		if len(cfg) != s.Atoms() {
			return false
		}
		for _, st := range cfg {
			if int(st) >= len(s.States()) {
				return false
			}
		}
		if cmplx.Abs(got) > float64(s.Atoms())+1e-9 {
			return false
		}
		return cmplx.Abs(got-target) < 0.02*maxR
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
	_ = src
}
