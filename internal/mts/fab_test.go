package mts

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestNewSurfaceFabConfigurableSpread is the regression test for the
// FabPhaseStd clobber: NewSurface used to overwrite the documented
// configurable field with 0.05 whenever offsets were drawn. NewSurfaceFab
// must honor a custom spread, and since Normal(0, σ) = σ·z with the same
// underlying draws, equal seeds make the drawn offsets scale exactly with
// the requested spread.
func TestNewSurfaceFabConfigurableSpread(t *testing.T) {
	mk := func(std float64) *Surface {
		s, err := NewSurfaceFab(16, 16, 2, 5.25, std, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	narrow, wide := mk(0.05), mk(0.20)
	if narrow.FabPhaseStd != 0.05 || wide.FabPhaseStd != 0.20 {
		t.Fatalf("FabPhaseStd = %v / %v, want 0.05 / 0.20", narrow.FabPhaseStd, wide.FabPhaseStd)
	}
	ideal, err := NewSurfaceFab(16, 16, 2, 5.25, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := DefaultGeometry()
	pp0, ppN, ppW := ideal.PathPhases(g), narrow.PathPhases(g), wide.PathPhases(g)
	diff := false
	for m := range pp0 {
		offN := ppN[m] - pp0[m]
		offW := ppW[m] - pp0[m]
		if offN != offW {
			diff = true
		}
		// Same seed, scaled spread: offsets must be exactly 4× (away from
		// the ±π wrap seam, where WrapPhase can fold one and not the other).
		if math.Abs(offN) < 0.5 && math.Abs(offW) < 0.5 {
			if math.Abs(offW-4*offN) > 1e-9 {
				t.Fatalf("atom %d: offsets %v and %v do not scale with the spread", m, offN, offW)
			}
		}
	}
	if !diff {
		t.Fatal("custom fabrication spread did not change the drawn offsets")
	}

	// Back-compat: the default-spread constructor is bit-identical to
	// NewSurfaceFab at DefaultFabPhaseStd, so Prototype stays unchanged.
	legacy, err := NewSurface(16, 16, 2, 5.25, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	lpp := legacy.PathPhases(g)
	for m := range lpp {
		if lpp[m] != ppN[m] {
			t.Fatalf("atom %d: NewSurface and NewSurfaceFab(DefaultFabPhaseStd) diverge", m)
		}
	}

	if _, err := NewSurfaceFab(16, 16, 2, 5.25, -0.1, rng.New(1)); err == nil {
		t.Fatal("negative fabrication spread was accepted")
	}
}
