package mts

import (
	"math/cmplx"

	"repro/internal/cplx"
	"repro/internal/obs"
)

// SolveTargetMasked solves Eqn 7 with a subset of atoms pinned to fixed
// states — the degraded-mode re-solve for a surface with known stuck atoms
// (a diagnosed PIN-diode or shift-register failure leaves an atom latched in
// one phase state). Pinned atoms contribute their forced state's phasor;
// the free atoms are greedily aligned and then refined by coordinate
// descent around that fixed contribution, exactly as SolveTarget refines a
// fully healthy surface. The returned configuration carries the pinned
// states, so evaluating it through Response models what the faulty hardware
// actually plays.
//
// With an empty pin set the solve degrades to SolveTarget bit for bit.
func (s *Surface) SolveTargetMasked(target complex128, pathPhases []float64, pinned map[int]uint8) (Config, complex128) {
	if len(pinned) == 0 {
		return s.SolveTarget(target, pathPhases)
	}
	solveMaskedCalls.Inc()
	t := obs.StartTimer()
	defer t.ObserveInto(solveMaskedSecs)
	var nPasses, nFlips int64
	defer func() { solvePasses.Add(nPasses); solveFlips.Add(nFlips) }()
	cfg := s.alignConfig(cmplx.Phase(target), pathPhases)
	for m, st := range pinned {
		cfg[m] = st
	}
	ph := make([]complex128, len(cfg))
	var sum complex128
	for m := range cfg {
		ph[m] = cplx.Expi(pathPhases[m] + s.states[cfg[m]])
		sum += ph[m]
	}
	const passes = 3
	for p := 0; p < passes; p++ {
		nPasses++
		improved := false
		for m := range cfg {
			if _, stuck := pinned[m]; stuck {
				continue
			}
			base := sum - ph[m]
			bestErr := cmplx.Abs(base + ph[m] - target)
			bestState := cfg[m]
			bestPh := ph[m]
			for i := range s.states {
				if uint8(i) == cfg[m] {
					continue
				}
				cand := cplx.Expi(pathPhases[m] + s.states[i])
				if e := cmplx.Abs(base + cand - target); e < bestErr {
					bestErr, bestState, bestPh = e, uint8(i), cand
				}
			}
			if bestState != cfg[m] {
				cfg[m] = bestState
				sum = base + bestPh
				ph[m] = bestPh
				improved = true
				nFlips++
			}
		}
		if !improved {
			break
		}
	}
	return cfg, sum
}

// MaskedSolveError returns the mean relative residual of re-solving the
// given targets with the pinned atoms, normalized by the largest target
// magnitude — a quick capacity check of how much approximation quality a
// given stuck-atom population costs.
func (s *Surface) MaskedSolveError(targets []complex128, pathPhases []float64, pinned map[int]uint8) float64 {
	if len(targets) == 0 {
		return 0
	}
	var maxT float64
	for _, t := range targets {
		if a := cmplx.Abs(t); a > maxT {
			maxT = a
		}
	}
	if maxT == 0 {
		return 0
	}
	var sum float64
	for _, t := range targets {
		_, got := s.SolveTargetMasked(t, pathPhases, pinned)
		sum += cmplx.Abs(got - t)
	}
	return sum / (float64(len(targets)) * maxT)
}
