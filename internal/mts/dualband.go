package mts

import (
	"fmt"

	"repro/internal/rng"
)

// DualBand models the paper's first prototype: a single physical panel
// whose meta-atoms respond at both 2.4 GHz and 5 GHz (§4, "one MTS operates
// at dual-band"). The two bands share the PIN-diode configuration bits but
// present band-specific phase responses — the same panel serves Wi-Fi links
// in either band after re-solving the schedule for that band's path phases,
// while a schedule solved for one band is meaningless in the other.
type DualBand struct {
	// LowGHz and HighGHz identify the two operating bands.
	LowGHz, HighGHz float64
	low, high       *Surface
}

// NewDualBand builds the dual-band prototype panel: 16×16 2-bit atoms with
// per-band fabrication spreads drawn from src (nil for ideal).
func NewDualBand(lowGHz, highGHz float64, src *rng.Source) (*DualBand, error) {
	if lowGHz <= 0 || highGHz <= 0 || lowGHz >= highGHz {
		return nil, fmt.Errorf("mts: invalid dual-band pair %v/%v GHz", lowGHz, highGHz)
	}
	var lowSrc, highSrc *rng.Source
	if src != nil {
		lowSrc, highSrc = src.Split(), src.Split()
	}
	low, err := NewSurface(16, 16, 2, lowGHz, lowSrc)
	if err != nil {
		return nil, err
	}
	high, err := NewSurface(16, 16, 2, highGHz, highSrc)
	if err != nil {
		return nil, err
	}
	// One physical panel: both personalities share the low band's λ/2 pitch
	// (the fabricated geometry cannot change with frequency).
	pitch := low.Wavelength() / 2
	low.SpacingM = pitch
	high.SpacingM = pitch
	return &DualBand{LowGHz: lowGHz, HighGHz: highGHz, low: low, high: high}, nil
}

// PrototypeDualBand returns the paper's MTS 1: 2.4 / 5 GHz.
func PrototypeDualBand(src *rng.Source) *DualBand {
	d, err := NewDualBand(2.4, 5.0, src)
	if err != nil {
		panic(err)
	}
	return d
}

// Bands lists the panel's operating frequencies.
func (d *DualBand) Bands() []float64 { return []float64{d.LowGHz, d.HighGHz} }

// Band returns the panel's personality at the given frequency.
func (d *DualBand) Band(ghz float64) (*Surface, error) {
	switch ghz {
	case d.LowGHz:
		return d.low, nil
	case d.HighGHz:
		return d.high, nil
	}
	return nil, fmt.Errorf("mts: panel operates at %v or %v GHz, not %v", d.LowGHz, d.HighGHz, ghz)
}

// CrossBandResponse evaluates a configuration solved for one band against
// the other band's path phases — quantifying how meaningless a schedule
// becomes when the link hops bands without re-solving (the reason the
// deployment pipeline re-runs Eqn 7 per band).
func (d *DualBand) CrossBandResponse(cfg Config, g Geometry) (same, cross complex128) {
	same = d.high.Response(cfg, d.high.PathPhases(g))
	cross = d.low.Response(cfg, d.low.PathPhases(g))
	return same, cross
}
