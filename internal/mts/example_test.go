package mts_test

import (
	"fmt"
	"math/cmplx"

	"repro/internal/mts"
)

// ExampleSurface_SolveTarget shows the heart of deployment (Eqn 7 of the
// paper): given the propagation phases of a link geometry, find the 2-bit
// configuration whose array factor realizes a desired complex weight.
func ExampleSurface_SolveTarget() {
	surface, err := mts.NewSurface(16, 16, 2, 5.25, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	paths := surface.PathPhases(mts.DefaultGeometry())
	maxR := surface.MaxResponse(paths)

	target := complex(0.4*maxR, -0.2*maxR)
	cfg, got := surface.SolveTarget(target, paths)

	fmt.Println("atoms configured:", len(cfg))
	fmt.Println("relative error below 1%:", cmplx.Abs(got-target)/maxR < 0.01)
	// Output:
	// atoms configured: 256
	// relative error below 1%: true
}

// ExampleSurface_WDD reproduces the Appendix A.2 design argument: the
// weight distribution density saturates at the prototype's 256 atoms.
func ExampleSurface_WDD() {
	small, _ := mts.NewSurface(8, 8, 2, 5.25, nil)
	proto, _ := mts.NewSurface(16, 16, 2, 5.25, nil)
	big, _ := mts.NewSurface(32, 32, 2, 5.25, nil)
	opt := mts.DefaultWDDOptions()
	w64 := small.WDD(opt, nil)
	w256 := proto.WDD(opt, nil)
	w1024 := big.WDD(opt, nil)
	fmt.Println("64 -> 256 atoms grows WDD sharply:", w256 > 5*w64)
	fmt.Println("256 -> 1024 atoms saturates:", w1024 < 1.3*w256)
	// Output:
	// 64 -> 256 atoms grows WDD sharply: true
	// 256 -> 1024 atoms saturates: true
}
