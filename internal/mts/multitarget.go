package mts

import (
	"fmt"
	"math/cmplx"

	"repro/internal/cplx"
	"repro/internal/obs"
)

// SolveMultiTarget finds a single configuration whose array factor
// simultaneously approximates K different targets under K different
// path-phase sets — the core of both parallelism schemes of §3.3. In the
// subcarrier scheme the K sets come from the atoms' frequency-selective
// response at each subcarrier (Eqn 9); in the antenna scheme from the K
// receiver directions (Eqn 10). It minimizes Σ_k |H_k(Φ) − targets[k]|² by
// coordinate descent with incremental per-channel sums, after initializing
// toward the first target.
//
// With M atoms and K ≪ M constraints the joint problem is well satisfiable
// when the path sets are sufficiently diverse; the growing residual as K
// approaches the atom budget is exactly the accuracy/latency trade-off of
// Fig 31.
func (s *Surface) SolveMultiTarget(targets []complex128, paths [][]float64) (Config, []complex128) {
	k := len(targets)
	if k == 0 || len(paths) != k {
		panic(fmt.Sprintf("mts: SolveMultiTarget wants matching targets/paths, got %d/%d", k, len(paths)))
	}
	m := s.Atoms()
	for i, p := range paths {
		if len(p) != m {
			panic(fmt.Sprintf("mts: path set %d has %d phases, surface has %d atoms", i, len(p), m))
		}
	}
	solveMultiCalls.Inc()
	t := obs.StartTimer()
	defer t.ObserveInto(solveMultiSecs)
	var nPasses, nFlips int64
	defer func() { solvePasses.Add(nPasses); solveFlips.Add(nFlips) }()
	cfg := s.alignConfig(cmplx.Phase(targets[0]), paths[0])
	// Per-channel per-atom phasors and running sums.
	ph := make([][]complex128, k) // ph[ch][atom]
	sums := make([]complex128, k)
	for ch := 0; ch < k; ch++ {
		ph[ch] = make([]complex128, m)
		for a := 0; a < m; a++ {
			ph[ch][a] = cplx.Expi(paths[ch][a] + s.states[cfg[a]])
			sums[ch] += ph[ch][a]
		}
	}
	totalErr := func() float64 {
		var e float64
		for ch := 0; ch < k; ch++ {
			d := sums[ch] - targets[ch]
			e += real(d)*real(d) + imag(d)*imag(d)
		}
		return e
	}
	const passes = 4
	cand := make([]complex128, k)
	for p := 0; p < passes; p++ {
		nPasses++
		improved := false
		for a := 0; a < m; a++ {
			bestErr := totalErr()
			for st := range s.states {
				if uint8(st) == cfg[a] {
					continue
				}
				var e float64
				for ch := 0; ch < k; ch++ {
					c := cplx.Expi(paths[ch][a] + s.states[st])
					cand[ch] = c
					d := sums[ch] - ph[ch][a] + c - targets[ch]
					e += real(d)*real(d) + imag(d)*imag(d)
				}
				if e < bestErr {
					bestErr = e
					for ch := 0; ch < k; ch++ {
						sums[ch] += cand[ch] - ph[ch][a]
						ph[ch][a] = cand[ch]
					}
					cfg[a] = uint8(st)
					improved = true
					nFlips++
				}
			}
		}
		if !improved {
			break
		}
	}
	return cfg, sums
}
