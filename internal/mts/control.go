package mts

import (
	"fmt"
	"math"
)

// Controller models the prototype's control plane (§4): an STM32 MCU drives
// the 256 meta-atoms through 16 groups of 4 daisy-chained SN74LV595 shift
// registers, groups loaded in parallel. It bounds how fast configurations
// can be streamed — the prototype sustains 2.56 M coding patterns/sec
// against a 1 M symbol/sec transmitter, i.e. at most two in-symbol switches,
// which is exactly what the zero-mean multipath cancellation needs.
type Controller struct {
	// Groups is the number of shift-register chains loaded in parallel.
	Groups int
	// BitsPerAtom is the per-atom state width (2 for the prototype).
	BitsPerAtom int
	// ClockHz is the shift-register serial clock.
	ClockHz float64
	// SwitchEnergyJ is the energy to latch one full surface configuration
	// (PIN-diode bias flips plus register clocking); feeds the Appendix A.4
	// energy model.
	SwitchEnergyJ float64
}

// PrototypeController returns the paper's control-plane parameters. The
// clock is set so a 16×16 2-bit surface reconfigures at 2.56 MHz.
func PrototypeController() Controller {
	return Controller{
		Groups:      16,
		BitsPerAtom: 2,
		// Each group streams 256/16 = 16 atoms × 2 bits = 32 bits per
		// pattern; 32 bits × 2.56 MHz = 81.92 MHz serial clock.
		ClockHz:       81.92e6,
		SwitchEnergyJ: 0.92e-9,
	}
}

// ControllerFor scales the prototype control plane to a surface of the
// given atom count, keeping the 2.56 MHz pattern rate: a larger surface
// needs a proportionally faster serial clock (or more register groups) to
// sustain the same schedule. The atoms-vs-accuracy sweep of Fig 7 assumes
// the control plane grows with the array.
func ControllerFor(atoms int) Controller {
	c := PrototypeController()
	bitsPerGroup := (atoms + c.Groups - 1) / c.Groups * c.BitsPerAtom
	c.ClockHz = 2.56e6 * float64(bitsPerGroup)
	return c
}

// ReconfigTime returns the time to stream one full configuration to a
// surface with the given atom count.
func (c Controller) ReconfigTime(atoms int) float64 {
	if c.Groups <= 0 || c.ClockHz <= 0 {
		return math.Inf(1)
	}
	bitsPerGroup := int(math.Ceil(float64(atoms)/float64(c.Groups))) * c.BitsPerAtom
	return float64(bitsPerGroup) / c.ClockHz
}

// MaxSwitchRate returns the sustainable configurations/sec for the given
// atom count.
func (c Controller) MaxSwitchRate(atoms int) float64 {
	t := c.ReconfigTime(atoms)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return 1 / t
}

// ValidateSchedule checks that a per-symbol schedule with the given symbol
// rate and in-symbol switch count is within the controller's capability.
func (c Controller) ValidateSchedule(atoms int, symbolRate float64, switchesPerSymbol int) error {
	if switchesPerSymbol < 1 {
		return fmt.Errorf("mts: schedule needs at least one switch per symbol, got %d", switchesPerSymbol)
	}
	need := symbolRate * float64(switchesPerSymbol)
	if got := c.MaxSwitchRate(atoms); got < need {
		return fmt.Errorf("mts: controller sustains %.3g switches/s, schedule needs %.3g (%.0f sym/s × %d)",
			got, need, symbolRate, switchesPerSymbol)
	}
	return nil
}

// ControlEnergy returns the control-plane energy to play a schedule of n
// configurations.
func (c Controller) ControlEnergy(n int) float64 {
	return float64(n) * c.SwitchEnergyJ
}
