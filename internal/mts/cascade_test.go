package mts

import (
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

// cascadeFixture builds a K-layer solver over ideal surfaces with distinct
// geometries per layer and unit scales normalized by each layer's maximum
// response (extra layers), the shape ota's cascade deployment uses.
func cascadeFixture(t *testing.T, k, rows, cols, bits int) *CascadeSolver {
	t.Helper()
	cs := &CascadeSolver{Passes: 2}
	for l := 0; l < k; l++ {
		s, err := NewSurface(rows, cols, bits, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := DefaultGeometry()
		g.RxAngleDeg += float64(5 * l) // distinct hop geometries
		pp := s.PathPhases(g)
		scale := complex(1, 0)
		if l > 0 {
			scale = complex(1/s.MaxResponse(pp), 0)
		}
		cs.Surfaces = append(cs.Surfaces, s)
		cs.Paths = append(cs.Paths, pp)
		cs.Scales = append(cs.Scales, scale)
	}
	return cs
}

// A 1-layer cascade must be bit-identical to the plain Eqn 7 solver —
// same configuration, same achieved response. This is the solver half of
// the cascadegate K=1 compatibility contract.
func TestCascadeK1BitIdentitySolver(t *testing.T) {
	cs := cascadeFixture(t, 1, 8, 8, 2)
	src := rng.New(7)
	for n := 0; n < 50; n++ {
		target := complex(src.Normal(0, 20), src.Normal(0, 20))
		cfgs, got := cs.Solve(target)
		if len(cfgs) != 1 {
			t.Fatalf("K=1 solve returned %d configs", len(cfgs))
		}
		wantCfg, want := cs.Surfaces[0].SolveTarget(target, cs.Paths[0])
		if got != want {
			t.Fatalf("target %v: cascade response %v != single-surface %v", target, got, want)
		}
		for m := range wantCfg {
			if cfgs[0][m] != wantCfg[m] {
				t.Fatalf("target %v: config differs at atom %d", target, m)
			}
		}
	}
}

// A deeper cascade must approximate targets at least as well as its layer-0
// surface alone on average: the extra aligned layers contribute a
// near-constant complex gain the layer-0 subsolve compensates for, and the
// extra degrees of freedom can only help the joint descent.
func TestCascadeSolveApproximatesTargets(t *testing.T) {
	single := cascadeFixture(t, 1, 8, 8, 2)
	double := cascadeFixture(t, 2, 8, 8, 2)
	src := rng.New(11)
	var errSingle, errDouble float64
	for n := 0; n < 40; n++ {
		target := complex(src.Normal(0, 15), src.Normal(0, 15))
		_, got1 := single.Solve(target)
		_, got2 := double.Solve(target)
		errSingle += cmplx.Abs(got1 - target)
		errDouble += cmplx.Abs(got2 - target)
	}
	if errDouble > errSingle*1.05 {
		t.Fatalf("2-layer cascade residual %.3f worse than single-surface %.3f", errDouble, errSingle)
	}
}

// Pinned atoms on any layer must survive the solve — the (layer, atom)
// fault-heal contract.
func TestCascadeSolveRespectsPinnedAtoms(t *testing.T) {
	cs := cascadeFixture(t, 3, 6, 6, 2)
	cs.Pinned = []map[int]uint8{
		{3: 1},
		{7: 2, 11: 0},
		nil,
	}
	cfgs, _ := cs.Solve(complex(9, -4))
	if cfgs[0][3] != 1 {
		t.Fatalf("layer 0 pinned atom 3 moved to state %d", cfgs[0][3])
	}
	if cfgs[1][7] != 2 || cfgs[1][11] != 0 {
		t.Fatalf("layer 1 pinned atoms moved: %d %d", cfgs[1][7], cfgs[1][11])
	}
}

// CascadeResponse over the solver's own frame must reproduce the composed
// response Solve reports.
func TestCascadeResponseMatchesSolve(t *testing.T) {
	cs := cascadeFixture(t, 2, 8, 8, 2)
	cfgs, got := cs.Solve(complex(12, 5))
	h := CascadeResponse(cs.Surfaces, cfgs, cs.Paths, cs.Scales)
	if cmplx.Abs(h-got) > 1e-9 {
		t.Fatalf("CascadeResponse %v != Solve composed %v", h, got)
	}
}
