package clocksync

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dataset"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/ota"
	"repro/internal/rng"
)

func TestDetectorMatchesFig12(t *testing.T) {
	// Fig 12: 51.7% of coarse-detection errors exceed 3 µs.
	d := DefaultDetector()
	cdf := d.CDF([]float64{3}, 200000, rng.New(1))
	above3 := 1 - cdf[0]
	if above3 < 0.45 || above3 < 0.517-0.06 || above3 > 0.517+0.06 {
		t.Fatalf("P(error > 3µs) = %.3f, paper reports 0.517", above3)
	}
}

func TestDetectorSamplesNonNegative(t *testing.T) {
	d := DefaultDetector()
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		if e := d.SampleUs(src); e < 0 {
			t.Fatalf("negative sync error %v", e)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	d := DefaultDetector()
	th := []float64{0.5, 1, 2, 3, 4, 6, 8, 10}
	cdf := d.CDF(th, 50000, rng.New(3))
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone: %v", cdf)
		}
	}
	if cdf[len(cdf)-1] < 0.95 {
		t.Fatalf("CDF(10µs) = %v; error tail implausibly heavy", cdf[len(cdf)-1])
	}
}

func TestMedian(t *testing.T) {
	d := DefaultDetector()
	med := d.MedianUs(rng.New(4), 5001)
	if med < 2.0 || med > 4.0 {
		t.Fatalf("median error %v µs, expected near 3 µs", med)
	}
}

func TestSamplers(t *testing.T) {
	src := rng.New(5)
	if got := FixedSampler(2.5)(src); got != 2.5 {
		t.Fatalf("FixedSampler = %v", got)
	}
	ns := NoSyncSampler(64)
	for i := 0; i < 100; i++ {
		v := ns(src)
		if v < 0 || v >= 65 {
			t.Fatalf("NoSync offset %v out of range", v)
		}
	}
	if got := NoSyncSampler(0)(src); got != 0 {
		t.Fatalf("NoSyncSampler(0) = %v", got)
	}
	cs := CoarseSampler(DefaultDetector(), 1e6)
	for i := 0; i < 100; i++ {
		if v := cs(src); v < 0 {
			t.Fatalf("coarse offset %v negative", v)
		}
	}
}

func TestApplyOffsetIntegerMatchesCyclicShift(t *testing.T) {
	src := rng.New(6)
	x := make([]complex128, 16)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	got := ApplyOffset(x, 5)
	want := nn.CyclicShift(x, -5)
	for i := range x {
		if got[i] != want[i] {
			t.Fatal("integer ApplyOffset must equal CyclicShift")
		}
	}
	if ApplyOffset(nil, 1) != nil {
		t.Fatal("ApplyOffset(nil) should be nil")
	}
}

func TestApplyOffsetFractionalInterpolates(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	got := ApplyOffset(x, 1.5)
	// out[j] = 0.5·x[j+1] + 0.5·x[j+2]
	want := []complex128{2.5, 3.5, 2.5, 1.5}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("fractional offset = %v, want %v", got, want)
		}
	}
}

func TestSymbolPeriod(t *testing.T) {
	if got := SymbolPeriodUs(1e6); math.Abs(got-1) > 1e-12 {
		t.Fatalf("1 Msym/s period = %v µs", got)
	}
}

// TestCDFAEndToEnd reproduces the Fig 16 ordering: no sync ≈ chance,
// coarse detection partial, CDFA (coarse + injector-trained weights) near
// full accuracy.
func TestCDFAEndToEnd(t *testing.T) {
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := nn.Encoder{Scheme: modem.QAM256}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	d := DefaultDetector()

	plain := nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 40})
	cdfa := nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 40, InputAug: Injector(d, 1e6)})

	eval := func(m *nn.ComplexLNN, sampler func(*rng.Source) float64, seed uint64) float64 {
		src := rng.New(seed)
		opts := ota.NewOptions(src.Split())
		opts.SyncSampler = sampler
		sys, err := ota.Deploy(m.Weights(), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		return nn.Evaluate(sys, test)
	}

	noSync := eval(plain, NoSyncSampler(train.U), 10)
	coarseOnly := eval(plain, CoarseSampler(d, 1e6), 11)
	full := eval(cdfa, CoarseSampler(d, 1e6), 12)

	// Fig 16: 19.23% / 55.71% / 89.28%.
	if noSync > 0.35 {
		t.Errorf("no-sync accuracy %.3f; expected near-chance", noSync)
	}
	if coarseOnly <= noSync+0.1 {
		t.Errorf("coarse detection (%.3f) should clearly beat no sync (%.3f)", coarseOnly, noSync)
	}
	if full <= coarseOnly+0.1 {
		t.Errorf("CDFA (%.3f) should clearly beat coarse-only (%.3f)", full, coarseOnly)
	}
	if full < 0.70 {
		t.Errorf("CDFA accuracy %.3f; expected high recovery", full)
	}
}

// TestCDFAFlatUnderDelaySweep reproduces Fig 13(b)'s shape: the plain model
// collapses as fixed delay grows while the CDFA model stays high through
// ~4 symbols.
func TestCDFAFlatUnderDelaySweep(t *testing.T) {
	ds := dataset.MustLoad("mnist", dataset.Quick, 1)
	enc := nn.Encoder{Scheme: modem.QAM256}
	train := nn.EncodeSet(ds.Train, ds.Classes, enc)
	test := nn.EncodeSet(ds.Test, ds.Classes, enc)
	d := DefaultDetector()
	plain := nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 40})
	cdfa := nn.TrainLNN(train, nn.TrainConfig{Seed: 1, Epochs: 40, InputAug: Injector(d, 1e6)})

	evalAt := func(m *nn.ComplexLNN, delay float64, seed uint64) float64 {
		src := rng.New(seed)
		opts := ota.NewOptions(src.Split())
		opts.SyncSampler = FixedSampler(delay)
		sys, err := ota.Deploy(m.Weights(), opts, src)
		if err != nil {
			t.Fatal(err)
		}
		return nn.Evaluate(sys, test)
	}
	plain0 := evalAt(plain, 0, 20)
	plain3 := evalAt(plain, 3, 21)
	cdfa3 := evalAt(cdfa, 3, 22)
	if plain0-plain3 < 0.25 {
		t.Errorf("plain model should collapse at 3-symbol delay: %.3f -> %.3f", plain0, plain3)
	}
	if cdfa3 < plain3+0.2 {
		t.Errorf("CDFA at 3-symbol delay (%.3f) should far exceed plain (%.3f)", cdfa3, plain3)
	}
}
