// Package clocksync implements the paper's two-phase CDFA synchronization
// strategy (§3.5.1). The transmitter and the metasurface share no clock, so
// the weight schedule starts with an offset relative to the data stream —
// Fig 13(b) shows a 4 µs error collapsing accuracy to 25.6%.
//
// Coarse-Grained Detection: a low-power envelope detector on the MTS senses
// the incident signal's energy and triggers schedule playback; the residual
// trigger error follows a Gamma distribution (Fig 12, 51.7th percentile
// above 3 µs).
//
// Fine-Grained Adjustment: instead of hardware correction, the *training*
// pipeline injects artificial synchronization errors — cyclic shifts whose
// sizes are drawn from the same Gamma family — so the learned weights are
// robust to the residual error the detector leaves behind.
package clocksync

import (
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
)

// CoarseDetector models the envelope-detector trigger of §3.5.1. Its
// residual error (µs) is Gamma distributed; the defaults reproduce Fig 12,
// where 51.7% of errors exceed 3 µs.
type CoarseDetector struct {
	Shape float64 // Gamma shape σ
	Scale float64 // Gamma scale β, µs
}

// DefaultDetector returns the Fig 12 error model: Gamma(2.0, 1.75) has its
// median near 2.9 µs and a tail into the 8–10 µs range.
func DefaultDetector() CoarseDetector {
	return CoarseDetector{Shape: 2.0, Scale: 1.75}
}

// PaperStreamSymbols is the length of the paper's MNIST symbol stream
// (28×28 bytes at one byte per 256-QAM symbol), the reference against which
// detector severity is scaled.
const PaperStreamSymbols = 784

// ScaledDetector returns the Fig 12 detector with its error magnitude
// scaled to a stream of u symbols, preserving the paper's
// error-to-stream-length ratio. The destructiveness of a clock offset — and
// the capacity CDFA's injector costs — depends on the offset relative to
// the stream length; the paper's 784-symbol streams tolerate multi-µs
// errors at ~3% accuracy cost, and this scaling reproduces that cost for
// shorter streams.
func ScaledDetector(streamSymbols int) CoarseDetector {
	d := DefaultDetector()
	if streamSymbols > 0 {
		d.Scale *= float64(streamSymbols) / PaperStreamSymbols
	}
	return d
}

// SampleUs draws one residual synchronization error in microseconds.
func (d CoarseDetector) SampleUs(src *rng.Source) float64 {
	return src.Gamma(d.Shape, d.Scale)
}

// MedianUs estimates the detector's median error by sampling.
func (d CoarseDetector) MedianUs(src *rng.Source, n int) float64 {
	if n <= 0 {
		n = 1001
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.SampleUs(src)
	}
	// Selection via simple sort-free nth element is overkill here.
	insertionSort(xs)
	return xs[n/2]
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// CDF returns the empirical CDF of the detector error evaluated at the
// given thresholds (µs), using n samples — the data behind Fig 12.
func (d CoarseDetector) CDF(thresholds []float64, n int, src *rng.Source) []float64 {
	counts := make([]int, len(thresholds))
	for i := 0; i < n; i++ {
		e := d.SampleUs(src)
		for j, th := range thresholds {
			if e <= th {
				counts[j]++
			}
		}
	}
	out := make([]float64, len(thresholds))
	for j, c := range counts {
		out[j] = float64(c) / float64(n)
	}
	return out
}

// SymbolPeriodUs converts a symbol rate to the symbol period in µs.
func SymbolPeriodUs(symbolRateHz float64) float64 {
	return 1e6 / symbolRateHz
}

// CoarseSampler returns an ota-compatible offset sampler: residual detector
// error converted from µs to symbols.
func CoarseSampler(d CoarseDetector, symbolRateHz float64) func(src *rng.Source) float64 {
	period := SymbolPeriodUs(symbolRateHz)
	return func(src *rng.Source) float64 {
		return d.SampleUs(src) / period
	}
}

// NoSyncSampler models having no synchronization at all: the schedule
// starts at a uniformly random position within the transmission — the
// "without sync scheme" baseline of Fig 16 (19.23% accuracy, blind
// guessing).
func NoSyncSampler(streamSymbols int) func(src *rng.Source) float64 {
	return func(src *rng.Source) float64 {
		if streamSymbols <= 0 {
			return 0
		}
		return float64(src.IntN(streamSymbols)) + src.Float64()
	}
}

// FixedSampler returns a constant offset (in symbols) — the controlled
// sweep of Fig 13(b).
func FixedSampler(offsetSymbols float64) func(src *rng.Source) float64 {
	return func(*rng.Source) float64 { return offsetSymbols }
}

// Injector returns the fine-grained-adjustment training augmenter: it
// cyclically shifts each training input by a Gamma-distributed number of
// symbol positions (with fractional mixing between adjacent symbols),
// mimicking the misalignment the runtime will experience. The shift
// direction matches the physical effect: a schedule that starts k symbols
// late computes Σ_i H[i−k]·x[i] = Σ_j H[j]·x[j+k], i.e. the network sees
// the input advanced by k.
//
// As is standard augmentation practice, a fraction of inputs pass through
// unshifted so the weights keep their zero-offset accuracy while acquiring
// offset tolerance — Fig 13(b)'s CDFA curve is flat from 0 µs onward.
func Injector(d CoarseDetector, symbolRateHz float64) nn.InputAugmenter {
	const cleanProb = 0.35
	period := SymbolPeriodUs(symbolRateHz)
	return func(x []complex128, src *rng.Source) []complex128 {
		if src.Bernoulli(cleanProb) {
			return x
		}
		offset := d.SampleUs(src) / period
		return ApplyOffset(x, offset)
	}
}

// UniformInjector injects offsets drawn uniformly from [0, maxUs] — the
// distribution-mismatch ablation: the paper argues Gamma-matched injection
// (Fig 12) beats naive choices.
func UniformInjector(maxUs, symbolRateHz float64) nn.InputAugmenter {
	period := SymbolPeriodUs(symbolRateHz)
	return func(x []complex128, src *rng.Source) []complex128 {
		offset := src.Float64() * maxUs / period
		return ApplyOffset(x, offset)
	}
}

// ApplyOffset advances x by a (possibly fractional) number of symbols,
// cyclically: out[j] = (1−f)·x[j+k] + f·x[j+k+1] where k = ⌊offset⌋ and
// f its fractional part. It mirrors exactly how the ota engine mixes
// adjacent schedule entries under a clock offset.
func ApplyOffset(x []complex128, offset float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	k := int(math.Floor(offset))
	f := offset - float64(k)
	shifted := nn.CyclicShift(x, -k)
	if f < 1e-9 {
		return shifted
	}
	next := nn.CyclicShift(x, -(k + 1))
	out := make([]complex128, n)
	cf := complex(f, 0)
	for i := range out {
		out[i] = shifted[i]*(1-cf) + next[i]*cf
	}
	return out
}
