// Package obs is MetaAI's observability layer: deterministic, dependency-free
// counters, gauges, and fixed-bucket latency histograms with snapshot and
// export (aligned text, JSON, expvar). Every layer of the air stack — the
// mts solver, ota/parallel sessions, the fault injector, the mobility
// monitor, the core pipeline, and the serve binary — registers its metrics
// here; the serve sidecar and metaai-bench expose them.
//
// Two invariants shape the design:
//
//   - Instrumentation never touches randomness. No metric draws from an
//     rng.Source, so enabling or disabling observability leaves every
//     accumulator, logit, and experiment row bit-identical (the zero-rate
//     fault-identity gate and the determinism tests keep passing with
//     metrics on).
//   - The disabled path is allocation-free. Counters and gauges are single
//     atomic operations. Wall-clock timing is gated behind an Enabled flag:
//     StartTimer returns the zero Timer without calling time.Now when
//     disabled, and observing a zero Timer is a no-op — so a run that never
//     enables obs pays no timer allocations and takes no timestamps.
//
// Determinism: under a fixed seed, every counter value, every gauge driven
// by simulation state, and every histogram observation COUNT is a pure
// function of the workload. Only histogram sums and bucket placements
// depend on wall-clock time. Snapshot.Fingerprint returns exactly the
// deterministic subset, which is what the CI determinism gate compares
// across two seeded runs.
package obs

import (
	"expvar"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates the wall-clock side of instrumentation (timers). Counters
// and gauges are so cheap they stay unconditionally live.
var enabled atomic.Bool

// Enabled reports whether wall-clock instrumentation is armed.
func Enabled() bool { return enabled.Load() }

// SetEnabled arms (or disarms) wall-clock instrumentation. Counters and
// gauges record regardless; timers and their histogram observations only
// fire while enabled.
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing atomic count. The zero value is
// ready to use; a nil Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 level. The zero value is ready to
// use; a nil Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the gauge by delta (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used when
// a histogram is registered without explicit bounds: 1 µs to 10 s on a
// 1-2.5-5 grid — wide enough for a solver call and a full serve round trip.
var DefaultLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution: len(bounds)+1 atomic bucket
// counts (the last bucket is the +Inf overflow), a total count, and a sum.
// Buckets are fixed at registration, so observation is lock- and
// allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (seconds for latency histograms). Unlike
// timers, a direct Observe always records — the caller already has the
// value, so there is no wall-clock read to gate.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Timer is a wall-clock measurement token. The zero Timer (returned by
// StartTimer while obs is disabled) observes nothing.
type Timer struct {
	start time.Time
}

// StartTimer returns a running timer when obs is enabled and the zero Timer
// otherwise — the disabled path never calls time.Now.
func StartTimer() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{start: time.Now()}
}

// ObserveInto records the elapsed seconds into h. A zero Timer or nil
// histogram is a no-op.
func (t Timer) ObserveInto(h *Histogram) {
	if t.start.IsZero() || h == nil {
		return
	}
	h.Observe(time.Since(t.start).Seconds())
}

// ObserveMeanInto records the elapsed seconds split evenly across n
// observations — elapsed/n, recorded n times — so a batched code path emits
// the same observation count and a comparable per-item latency series as n
// individually timed items would. A zero Timer, nil histogram, or n < 1 is
// a no-op.
func (t Timer) ObserveMeanInto(h *Histogram, n int) {
	if t.start.IsZero() || h == nil || n < 1 {
		return
	}
	v := time.Since(t.start).Seconds() / float64(n)
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
}

// Registry holds named metrics. Registration memoizes by name, so any
// package may re-request a handle; instrumented code holds the returned
// pointers and never pays a map lookup on the hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var def = NewRegistry()

// Default returns the process-wide registry every instrumented package
// registers into.
func Default() *Registry { return def }

// Counter returns the registry's counter with the given name, creating it
// on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the registry's gauge with the given name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the registry's histogram with the given name, creating
// it with the given bucket bounds (nil means DefaultLatencyBuckets) on
// first use. Bounds are fixed at creation; later calls ignore them.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place: handles held by
// instrumented packages stay valid. Tests use it to isolate runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// NewCounter registers (or fetches) a counter in the default registry.
func NewCounter(name string) *Counter { return def.Counter(name) }

// NewGauge registers (or fetches) a gauge in the default registry.
func NewGauge(name string) *Gauge { return def.Gauge(name) }

// NewLatencyHistogram registers (or fetches) a DefaultLatencyBuckets
// histogram in the default registry.
func NewLatencyHistogram(name string) *Histogram { return def.Histogram(name, nil) }

var expvarOnce sync.Once

// PublishExpvar publishes the default registry as an expvar variable named
// "metaai" (a JSON snapshot per scrape of /debug/vars). Safe to call more
// than once; only the first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("metaai", expvar.Func(func() interface{} {
			return Default().Snapshot()
		}))
	})
}
