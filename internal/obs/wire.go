package obs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Wire format for shipping a Snapshot between fleet processes (replica →
// router, piggybacked on heartbeat replies). The encoding is versioned,
// length-prefixed, and CRC-tailed so a truncated or netchaos-mangled
// datagram is rejected instead of mis-decoded:
//
//	[0]    version byte (snapshotWireVersion)
//	u16    counter count, then per counter: u16 name len, name, u64 value
//	u16    gauge count,   then per gauge:   u16 name len, name, f64 bits
//	u16    histogram count, then per histogram:
//	         u16 name len, name, i64 count, f64 sum bits, u16 bucket count,
//	         per bucket: f64 bound bits (+Inf allowed), i64 count
//	u32    IEEE CRC-32 of every preceding byte
//
// All integers are little-endian. Sections are emitted in sorted-name
// order, so the same Snapshot always encodes to the same bytes — the
// fleet-metrics fingerprint gate depends on that.
const snapshotWireVersion = 1

// EncodeSnapshot serializes s into the versioned wire form. The output is
// deterministic: maps are walked in sorted-key order.
func EncodeSnapshot(s Snapshot) []byte {
	b := make([]byte, 0, 256)
	b = append(b, snapshotWireVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Counters)))
	for _, name := range sortedKeys(s.Counters) {
		b = appendWireString(b, name)
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Counters[name]))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Gauges)))
	for _, name := range sortedKeys(s.Gauges) {
		b = appendWireString(b, name)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Gauges[name]))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Histograms)))
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		b = appendWireString(b, name)
		b = binary.LittleEndian.AppendUint64(b, uint64(h.Count))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(h.Sum))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(h.Buckets)))
		for _, bk := range h.Buckets {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(bk.UpperBound))
			b = binary.LittleEndian.AppendUint64(b, uint64(bk.Count))
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func appendWireString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// snapshotReader is a bounds-checked cursor over an encoded snapshot; every
// read reports exhaustion instead of panicking, so a hostile or truncated
// blob can never crash the router.
type snapshotReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *snapshotReader) u16() uint16 {
	if r.bad || r.pos+2 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v
}

func (r *snapshotReader) u64() uint64 {
	if r.bad || r.pos+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *snapshotReader) str() string {
	n := int(r.u16())
	if r.bad || r.pos+n > len(r.b) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

// DecodeSnapshot reverses EncodeSnapshot. It rejects (with an error, never
// a panic) blobs with a wrong version, a failed CRC, or truncated sections
// — exactly the failure modes a lossy UDP fleet wire produces.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if len(b) < 1+2+2+2+4 {
		return s, fmt.Errorf("obs: snapshot blob too short (%d bytes)", len(b))
	}
	if b[0] != snapshotWireVersion {
		return s, fmt.Errorf("obs: snapshot wire version %d, want %d", b[0], snapshotWireVersion)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return s, fmt.Errorf("obs: snapshot CRC mismatch")
	}
	r := &snapshotReader{b: body, pos: 1}
	nc := int(r.u16())
	s.Counters = make(map[string]int64, nc)
	for i := 0; i < nc && !r.bad; i++ {
		name := r.str()
		s.Counters[name] = int64(r.u64())
	}
	ng := int(r.u16())
	s.Gauges = make(map[string]float64, ng)
	for i := 0; i < ng && !r.bad; i++ {
		name := r.str()
		s.Gauges[name] = math.Float64frombits(r.u64())
	}
	nh := int(r.u16())
	s.Histograms = make(map[string]HistogramSnapshot, nh)
	for i := 0; i < nh && !r.bad; i++ {
		name := r.str()
		h := HistogramSnapshot{
			Count: int64(r.u64()),
			Sum:   math.Float64frombits(r.u64()),
		}
		nb := int(r.u16())
		if r.bad || nb > (len(body)-r.pos)/16 {
			r.bad = true
			break
		}
		h.Buckets = make([]Bucket, 0, nb)
		for j := 0; j < nb && !r.bad; j++ {
			bound := math.Float64frombits(r.u64())
			count := int64(r.u64())
			h.Buckets = append(h.Buckets, Bucket{UpperBound: bound, Count: count})
		}
		s.Histograms[name] = h
	}
	if r.bad || r.pos != len(body) {
		return Snapshot{}, fmt.Errorf("obs: snapshot blob truncated or over-long")
	}
	return s, nil
}
