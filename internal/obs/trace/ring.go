package trace

import (
	"sync"
	"time"
)

// Summary is one retained trace's row in the sidecar's /traces listing.
type Summary struct {
	ID       ID
	Name     string
	Wall     time.Time
	Duration time.Duration
	Spans    int
	Flags    Flags
}

// entry is one ring slot.
type entry struct {
	tr    *Trace
	flags Flags
	seq   uint64 // monotonically increasing insertion order
}

// Ring is the fixed-size retention buffer behind a Tracer. Tail-sampled
// traces land here; once full, the oldest retained trace is evicted.
// All methods are safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []entry
	next uint64 // insertion counter; buf index = next % len(buf)
}

// NewRing returns a ring retaining at most size traces.
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{buf: make([]entry, size)}
}

// Put retains a finished trace, evicting the oldest slot when full. A
// second Put with the same trace ID replaces the earlier copy in place so
// the ring never lists duplicates.
func (r *Ring) Put(tr *Trace, flags Flags) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buf {
		if r.buf[i].tr != nil && r.buf[i].tr.id == tr.id {
			r.buf[i].tr = tr
			r.buf[i].flags = flags
			return
		}
	}
	r.buf[r.next%uint64(len(r.buf))] = entry{tr: tr, flags: flags, seq: r.next}
	r.next++
}

// Get returns the retained trace with the given ID, or nil.
func (r *Ring) Get(id ID) (*Trace, Flags) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buf {
		if r.buf[i].tr != nil && r.buf[i].tr.id == id {
			return r.buf[i].tr, r.buf[i].flags
		}
	}
	return nil, 0
}

// Len reports how many traces the ring currently retains.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.buf {
		if r.buf[i].tr != nil {
			n++
		}
	}
	return n
}

// List summarizes every retained trace, newest insertion first.
func (r *Ring) List() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	ents := make([]entry, 0, len(r.buf))
	for i := range r.buf {
		if r.buf[i].tr != nil {
			ents = append(ents, r.buf[i])
		}
	}
	// Insertion sort by descending seq: rings are small (hundreds).
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && ents[j].seq > ents[j-1].seq; j-- {
			ents[j], ents[j-1] = ents[j-1], ents[j]
		}
	}
	out := make([]Summary, len(ents))
	for i, e := range ents {
		e.tr.mu.Lock()
		out[i] = Summary{
			ID:    e.tr.id,
			Name:  e.tr.name,
			Wall:  e.tr.wall,
			Spans: len(e.tr.spans),
			Flags: e.flags,
		}
		e.tr.mu.Unlock()
		out[i].Duration = e.tr.Duration()
	}
	return out
}

// Reset drops every retained trace.
func (r *Ring) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buf {
		r.buf[i] = entry{}
	}
	r.next = 0
}
