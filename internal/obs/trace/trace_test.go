package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDeriveDeterministicAndNonZero(t *testing.T) {
	a := Derive(42, 7)
	b := Derive(42, 7)
	if a != b {
		t.Fatalf("Derive not deterministic: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("Derive returned the zero ID")
	}
	if Derive(42, 7) == Derive(7, 42) {
		t.Fatal("Derive is order-insensitive; IDs would collide")
	}
	if Derive() == 0 {
		t.Fatal("Derive() must be non-zero")
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	id := Derive(123)
	got, err := ParseID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("round trip: got %v want %v", got, id)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestDisabledTracerReturnsNilAndIsNilSafe(t *testing.T) {
	var tr Tracer
	sp := tr.Start("req", Derive(1))
	if sp != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	// Every method must be a no-op on nil.
	sp.SetStr("k", "v")
	sp.SetNum("n", 1)
	child := sp.Child("stage")
	if child != nil {
		t.Fatal("nil span produced a live child")
	}
	child.End()
	sp.Finish(FlagNack)
	if sp.ID() != 0 || sp.TraceID() != 0 {
		t.Fatal("nil span reported non-zero IDs")
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("req", Derive(9))
		c := sp.Child("stage")
		c.SetNum("i", 3)
		c.End()
		sp.Finish(0)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f/op, want 0", allocs)
	}
}

func TestStickyFlagsAlwaysRetained(t *testing.T) {
	for _, f := range []Flags{FlagNack, FlagShed, FlagError} {
		var tr Tracer
		tr.Enable(8, 0) // sample rate 0: only sticky traces survive
		id := Derive(uint64(f))
		sp := tr.Start("req", id)
		sp.Finish(f)
		got, flags := tr.Get(id)
		if got == nil {
			t.Fatalf("flag %v: trace not retained", f)
		}
		if flags&f == 0 {
			t.Fatalf("flag %v: retained flags %v missing it", f, flags)
		}
	}
}

func TestUnflaggedDroppedAtZeroSampleRetainedAtOne(t *testing.T) {
	var tr Tracer
	tr.Enable(8, 0)
	id := Derive(1)
	tr.Start("req", id).Finish(0)
	if got, _ := tr.Get(id); got != nil {
		t.Fatal("unflagged trace retained at sample=0")
	}

	tr.Enable(8, 1)
	tr.Start("req", id).Finish(0)
	got, flags := tr.Get(id)
	if got == nil {
		t.Fatal("unflagged trace dropped at sample=1")
	}
	if flags&FlagSampled == 0 {
		t.Fatalf("retained flags %v missing FlagSampled", flags)
	}
}

func TestSlowThresholdFlags(t *testing.T) {
	var tr Tracer
	tr.Enable(8, 0)
	tr.SetSlowThreshold(time.Nanosecond)
	id := Derive(2)
	sp := tr.Start("req", id)
	time.Sleep(time.Millisecond)
	sp.Finish(0)
	got, flags := tr.Get(id)
	if got == nil {
		t.Fatal("slow trace not retained")
	}
	if flags&FlagSlow == 0 {
		t.Fatalf("retained flags %v missing FlagSlow", flags)
	}
	if tr.SlowThreshold() != time.Nanosecond {
		t.Fatal("SlowThreshold round trip failed")
	}
}

func TestEventOverlapFlags(t *testing.T) {
	var tr Tracer
	tr.Enable(8, 0)
	id := Derive(3)
	sp := tr.Start("req", id)
	tr.NoteEvent() // a heal/rollback/checkpoint fired mid-request
	sp.Finish(0)
	got, flags := tr.Get(id)
	if got == nil {
		t.Fatal("event-overlapping trace not retained")
	}
	if flags&FlagEvent == 0 {
		t.Fatalf("retained flags %v missing FlagEvent", flags)
	}

	// A trace started after the event must NOT inherit the flag.
	id2 := Derive(4)
	tr.Start("req", id2).Finish(0)
	if got, _ := tr.Get(id2); got != nil {
		t.Fatal("post-event unflagged trace retained at sample=0")
	}
}

func TestLastActive(t *testing.T) {
	var tr Tracer
	if tr.LastActive() != 0 {
		t.Fatal("disabled tracer reported an active trace")
	}
	tr.Enable(8, 1)
	id := Derive(77)
	sp := tr.Start("req", id)
	if tr.LastActive() != id {
		t.Fatalf("LastActive = %v, want %v", tr.LastActive(), id)
	}
	sp.Finish(0)
}

func TestSpanTreeParentingAndDeterministicIDs(t *testing.T) {
	var tr Tracer
	tr.Enable(8, 1)
	id := Derive(5)
	root := tr.Start("req", id)
	a := root.Child("train")
	a.SetNum("steps", 10)
	a.End()
	b := root.Child("infer")
	bb := b.Child("subch")
	bb.SetStr("group", "g0")
	bb.End()
	b.End()
	root.Finish(0)

	got, _ := tr.Get(id)
	if got == nil {
		t.Fatal("trace not retained")
	}
	if len(got.spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(got.spans))
	}
	if got.spans[0].parent != 0 {
		t.Fatal("root has a parent")
	}
	if got.spans[1].parent != got.spans[0].id || got.spans[2].parent != got.spans[0].id {
		t.Fatal("children not parented to root")
	}
	if got.spans[3].parent != got.spans[2].id {
		t.Fatal("grandchild not parented to its child span")
	}
	// Span IDs derive from (trace ID, index): stable across runs.
	for i, sp := range got.spans {
		if want := Derive(uint64(id), uint64(i)); sp.id != want {
			t.Fatalf("span %d id = %v, want %v", i, sp.id, want)
		}
	}
}

func TestRingEvictionAndDupReplace(t *testing.T) {
	r := NewRing(2)
	mk := func(n uint64) *Trace {
		return &Trace{id: Derive(n), name: "t", wall: time.Now(), t0: time.Now()}
	}
	t1, t2, t3 := mk(1), mk(2), mk(3)
	r.Put(t1, FlagNack)
	r.Put(t2, FlagNack)
	r.Put(t3, FlagNack) // evicts t1
	if got, _ := r.Get(t1.id); got != nil {
		t.Fatal("oldest trace not evicted")
	}
	if got, _ := r.Get(t3.id); got == nil {
		t.Fatal("newest trace missing")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	// Same ID again replaces in place, no duplicate rows.
	r.Put(t3, FlagSlow)
	if r.Len() != 2 {
		t.Fatalf("dup Put changed Len to %d", r.Len())
	}
	if _, f := r.Get(t3.id); f != FlagSlow {
		t.Fatalf("dup Put kept flags %v, want %v", f, FlagSlow)
	}
	sums := r.List()
	if len(sums) != 2 || sums[0].ID != t3.id {
		t.Fatalf("List order wrong: %+v", sums)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset left traces behind")
	}
}

func TestNormalizedExportByteIdentical(t *testing.T) {
	run := func() []byte {
		var tr Tracer
		tr.Enable(8, 1)
		id := Derive(99, 1)
		root := tr.Start("req", id)
		root.SetNum("epoch", 3)
		c := root.Child("pipeline.infer")
		c.SetStr("enc", "amp")
		c.End()
		root.Finish(FlagNack)
		got, flags := tr.Get(id)
		return MarshalJSON(got, flags, ExportOptions{Normalize: true})
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("normalized exports differ:\n%s\n%s", a, b)
	}
	s := string(a)
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"pipeline.infer"`, `"parent_id"`, `"flags":"nack"`, `"enc":"amp"`, `"epoch":3`} {
		if !strings.Contains(s, want) {
			t.Fatalf("export missing %s:\n%s", want, s)
		}
	}
	// Normalized exports must not leak wall-clock time.
	if strings.Contains(s, `"wall"`) {
		t.Fatalf("normalized export contains wall time:\n%s", s)
	}
}

func TestWriteListRendersSummaries(t *testing.T) {
	var tr Tracer
	tr.Enable(4, 1)
	id := Derive(11)
	tr.Start("req", id).Finish(FlagShed)
	var b bytes.Buffer
	if err := WriteList(&b, tr.List()); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !strings.Contains(s, id.String()) || !strings.Contains(s, `"flags":"shed"`) {
		t.Fatalf("list missing fields: %s", s)
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagSlow | FlagNack).String(); got != "slow,nack" {
		t.Fatalf("Flags.String = %q", got)
	}
	if got := Flags(0).String(); got != "" {
		t.Fatalf("zero Flags.String = %q", got)
	}
}

func TestWriteJSONNilTrace(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSON(&b, nil, 0, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if b.String() != `{"traceEvents":[]}` {
		t.Fatalf("nil trace export = %s", b.String())
	}
}
