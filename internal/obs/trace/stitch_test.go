package trace

import (
	"bytes"
	"testing"
)

// buildSegments fabricates a router root segment and two replica segments
// of the same trace ID, the way the fleet wires them up: the router starts
// the trace, each replica continues it via StartRemote under one of the
// router's hop spans.
func buildSegments(t *testing.T) (root, hopA, hopB []byte) {
	t.Helper()
	tracer := &Tracer{}
	tracer.Enable(16, 1)
	id := Derive(0xf1ee7, 42)

	rootSp := tracer.Start("fleet.request", id)
	h1 := rootSp.Child("fleet.hop")
	h1.SetStr("replica", "r1")
	h2 := rootSp.Child("fleet.hop")
	h2.SetStr("replica", "r2")
	h1.End()
	h2.SetStr("outcome", "cancelled")
	h2.End()
	rootSp.Finish(0)

	ra := tracer.StartRemote("serve.request", id, h1.ID())
	ra.Child("serve.infer").End()
	ra.Finish(0)

	rb := tracer.StartRemote("serve.request", id, h2.ID())
	rb.Finish(0)

	// The ring keys by trace ID and all three segments share it, so export
	// each segment directly from its Trace handle.
	opt := ExportOptions{Normalize: true}
	root = MarshalJSON(rootSp.tr, 0, opt)
	hopA = MarshalJSON(ra.tr, 0, opt)
	hopB = MarshalJSON(rb.tr, 0, opt)
	return root, hopA, hopB
}

func TestStitchByteIdentical(t *testing.T) {
	r1, a1, b1 := buildSegments(t)
	r2, a2, b2 := buildSegments(t)
	s1 := StitchJSON(r1, a1, b1)
	s2 := StitchJSON(r2, a2, b2)
	if !bytes.Equal(s1, s2) {
		t.Fatalf("normalized stitch not byte-identical:\n%s\nvs\n%s", s1, s2)
	}
}

func TestStitchStructure(t *testing.T) {
	root, hopA, hopB := buildSegments(t)
	out := StitchJSON(root, hopA, hopB)
	// One document: metadata from the root, then root events, then each
	// hop's events in order.
	if !bytes.HasPrefix(out, []byte(`{"displayTimeUnit":"ms","metadata":{"trace_id":`)) {
		t.Fatalf("stitched doc lost the root metadata: %s", out)
	}
	if n := bytes.Count(out, []byte(`"traceEvents":[`)); n != 1 {
		t.Fatalf("stitched doc has %d traceEvents arrays, want 1: %s", n, out)
	}
	for _, name := range []string{`"fleet.request"`, `"fleet.hop"`, `"serve.request"`, `"serve.infer"`, `"cancelled"`} {
		if !bytes.Contains(out, []byte(name)) {
			t.Fatalf("stitched doc missing %s: %s", name, out)
		}
	}
	if n := bytes.Count(out, []byte(`"serve.request"`)); n != 2 {
		t.Fatalf("expected both replica segments, found %d serve.request spans", n)
	}
	// Remote segments must keep distinct span IDs (the salt property):
	// every "span_id" value in the document is unique.
	seen := map[string]bool{}
	rest := out
	for {
		i := bytes.Index(rest, []byte(`"span_id":"`))
		if i < 0 {
			break
		}
		rest = rest[i+len(`"span_id":"`):]
		id := string(rest[:16])
		if seen[id] {
			t.Fatalf("duplicate span_id %s in stitched doc", id)
		}
		seen[id] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 unique spans in stitched doc, got %d", len(seen))
	}
}

func TestStitchDegenerateInputs(t *testing.T) {
	if got := StitchJSON(nil); string(got) != `{"traceEvents":[]}` {
		t.Fatalf("nil root: %s", got)
	}
	if got := StitchJSON([]byte("not json")); string(got) != `{"traceEvents":[]}` {
		t.Fatalf("garbage root: %s", got)
	}
	root, _, _ := buildSegments(t)
	// Garbage and empty hops contribute nothing; the root survives intact.
	got := StitchJSON(root, []byte("garbage"), nil, []byte(`{"traceEvents":[]}`))
	if !bytes.Equal(got, root) {
		t.Fatalf("stitching no-op hops changed the root:\n%s\nvs\n%s", got, root)
	}
	// Empty root + real hop: the hop's events land in the empty document.
	_, hopA, _ := buildSegments(t)
	got = StitchJSON([]byte(`{"traceEvents":[]}`), hopA)
	if !bytes.Contains(got, []byte(`"serve.request"`)) || bytes.Contains(got, []byte(`[,`)) {
		t.Fatalf("empty-root stitch malformed: %s", got)
	}
}

// TestRemoteSaltPreservesLocalIDs pins backward compatibility: a purely
// local trace's span IDs are unchanged by the salt machinery (tracegate's
// byte-identical exports depend on it).
func TestRemoteSaltPreservesLocalIDs(t *testing.T) {
	tracer := &Tracer{}
	tracer.Enable(4, 1)
	id := Derive(7)
	sp := tracer.Start("local", id)
	if got, want := sp.ID(), Derive(uint64(id), 0); got != want {
		t.Fatalf("local root span ID changed: got %s want %s", got, want)
	}
	child := sp.Child("c")
	if got, want := child.ID(), Derive(uint64(id), 1); got != want {
		t.Fatalf("local child span ID changed: got %s want %s", got, want)
	}
	sp.Finish(0)

	// Remote segments differ from local IDs and from each other.
	r1 := tracer.StartRemote("remote", id, sp.ID())
	r2 := tracer.StartRemote("remote", id, child.ID())
	ids := map[ID]bool{sp.ID(): true, child.ID(): true}
	for _, s := range []*Span{r1, r2} {
		if s == nil {
			t.Fatal("StartRemote returned nil while enabled")
		}
		if ids[s.ID()] {
			t.Fatalf("remote span ID %s collides", s.ID())
		}
		ids[s.ID()] = true
	}
	if r1.tr.spans[0].parent != sp.ID() {
		t.Fatalf("remote root not parented under the remote span")
	}
	// Disabled tracer and zero ID both return nil.
	tracer.Disable()
	if tracer.StartRemote("x", id, 1) != nil {
		t.Fatal("StartRemote live while disabled")
	}
	tracer.Enable(4, 1)
	if tracer.StartRemote("x", 0, 1) != nil {
		t.Fatal("StartRemote live with zero trace ID")
	}
}
