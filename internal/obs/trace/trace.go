// Package trace is MetaAI's per-request tracing layer: dependency-free
// spans over the full air path (train → solve → transmit → accumulate),
// a tail-sampled ring of retained traces, and a Chrome-trace-format
// exporter the serve sidecar and the airproto KindTrace frame both speak.
// Where package obs answers "how is the fleet doing in aggregate", this
// package answers "what happened to THIS request".
//
// Three invariants shape the design, inherited from obs and tightened:
//
//   - Instrumentation never touches randomness. Trace and span IDs are
//     derived by hashing stable workload identifiers (request IDs, seeds,
//     ordinal counters) through a splitmix64 mix — never by drawing from a
//     live rng.Source — so enabling tracing leaves every accumulator,
//     logit, and experiment row bit-identical. The tracegate CI target
//     asserts exactly that.
//   - The disabled path is allocation-free. Tracer.Start returns a nil
//     *Span while tracing is disarmed, and every Span method is a no-op on
//     nil, so instrumented hot paths pay one nil check and zero
//     allocations per call site.
//   - Retention is tail-sampled. A trace's fate is decided when it
//     FINISHES, when its outcome is known: traces that were slow (above
//     the configured latency threshold, typically the obs p99), NACKed,
//     shed, or that overlapped a journal event (fault, heal, swap,
//     rollback, checkpoint) are always retained; the rest are kept with a
//     deterministic per-trace-ID probability. Head sampling would throw
//     away exactly the requests an operator needs.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies a trace or a span. The zero ID is "no trace".
type ID uint64

// String renders the ID as 16 lowercase hex digits — the form the sidecar
// URLs and probe -trace accept.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the hex form produced by String (with or without leading
// zeros).
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %v", s, err)
	}
	return ID(v), nil
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64,
// the same construction seed-derivation schemes use. It is a pure
// function — no state, no rng.Source — which is what keeps ID derivation
// outside every model and channel random stream.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive deterministically folds stable workload identifiers (request ID,
// seed, ordinal) into a trace or span ID. Equal inputs give equal IDs;
// Derive() with no parts gives a fixed non-zero constant.
func Derive(parts ...uint64) ID {
	h := uint64(0x6d7472616365) // "mtrace"
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	if h == 0 {
		h = 1
	}
	return ID(h)
}

// Flags mark a finished trace's outcome; the tail sampler retains any
// trace carrying a sticky flag.
type Flags uint32

const (
	// FlagSlow: the trace's duration exceeded the tracer's slow threshold.
	FlagSlow Flags = 1 << iota
	// FlagNack: the request was answered with a NACK.
	FlagNack
	// FlagShed: the request was shed (queue full, StatusDegraded).
	FlagShed
	// FlagEvent: a journal event (heal/swap/rollback/checkpoint/...) fired
	// while the trace was open.
	FlagEvent
	// FlagError: the instrumented operation failed.
	FlagError
	// FlagSampled: the trace carried no sticky flag and survived the
	// probabilistic tail sample.
	FlagSampled
)

// sticky are the always-retain outcomes.
const sticky = FlagSlow | FlagNack | FlagShed | FlagEvent | FlagError

// String renders the set flags as a compact comma-joined list.
func (f Flags) String() string {
	if f == 0 {
		return ""
	}
	names := []struct {
		bit  Flags
		name string
	}{
		{FlagSlow, "slow"}, {FlagNack, "nack"}, {FlagShed, "shed"},
		{FlagEvent, "event"}, {FlagError, "error"}, {FlagSampled, "sampled"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += ","
			}
			out += n.name
		}
	}
	return out
}

// Attr is one span attribute: a string or a numeric value under a key.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Span is one timed operation inside a trace. A nil *Span (what Start
// returns while tracing is disabled) ignores every method, so call sites
// never branch on enablement themselves.
type Span struct {
	tr     *Trace
	id     ID
	parent ID
	name   string
	start  int64 // ns since the trace's monotonic anchor
	end    int64 // 0 while open
	attrs  []Attr
}

// ID returns the span's deterministic ID (0 on nil).
func (s *Span) ID() ID {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the owning trace's ID (0 on nil).
func (s *Span) TraceID() ID {
	if s == nil {
		return 0
	}
	return s.tr.id
}

// Child opens a sub-span under s. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

// SetStr attaches a string attribute. No-op on nil.
func (s *Span) SetStr(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: val})
	s.tr.mu.Unlock()
}

// SetNum attaches a numeric attribute. No-op on nil.
func (s *Span) SetNum(key string, val float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Num: val, IsNum: true})
	s.tr.mu.Unlock()
}

// End closes the span at the current monotonic offset. No-op on nil or an
// already-ended span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end == 0 {
		s.end = int64(time.Since(s.tr.t0))
	}
	s.tr.mu.Unlock()
}

// Finish ends the ROOT span and submits the whole trace to its tracer's
// tail sampler with the given outcome flags. Only call it on the span
// Tracer.Start returned; child spans just End. No-op on nil.
func (s *Span) Finish(flags Flags) {
	if s == nil {
		return
	}
	s.End()
	s.tr.tracer.finish(s.tr, flags)
}

// Trace is one request's (or one build's, or one heal's) span tree plus
// the bookkeeping the tail sampler needs. Spans append under a mutex so a
// trace is safe to hand across goroutines, but the deterministic span-ID
// sequence assumes the common case of one goroutine per trace.
type Trace struct {
	tracer    *Tracer
	id        ID
	name      string
	wall      time.Time // wall-clock start, for export
	t0        time.Time // monotonic anchor; span offsets are Since(t0)
	eventMark uint64    // tracer event counter at start

	// salt disambiguates span IDs when several PROCESSES contribute spans
	// to the same trace ID (a router root plus remote replica segments, as
	// StartRemote sets up): each process derives span IDs from (trace ID,
	// salt, ordinal), so segments never collide when stitched. Zero for
	// purely local traces, keeping their span IDs byte-identical to every
	// pre-fleet export (the tracegate pin).
	salt uint64

	mu    sync.Mutex
	spans []*Span
}

// newSpan appends a span with the next deterministic ID.
func (tr *Trace) newSpan(name string, parent ID) *Span {
	tr.mu.Lock()
	id := Derive(uint64(tr.id), uint64(len(tr.spans)))
	if tr.salt != 0 {
		id = Derive(uint64(tr.id), tr.salt, uint64(len(tr.spans)))
	}
	sp := &Span{
		tr:     tr,
		id:     id,
		parent: parent,
		name:   name,
		start:  int64(time.Since(tr.t0)),
	}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// Duration returns the root span's duration (the whole trace's extent).
func (tr *Trace) Duration() time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) == 0 {
		return 0
	}
	root := tr.spans[0]
	end := root.end
	if end == 0 {
		end = int64(time.Since(tr.t0))
	}
	return time.Duration(end - root.start)
}

// ID returns the trace's ID.
func (tr *Trace) ID() ID { return tr.id }

// SpanInfo is a read-only copy of one span's identity and structure — what
// tests and tools need to verify a retained trace's tree without parsing an
// export.
type SpanInfo struct {
	ID     ID
	Parent ID
	Name   string
	Attrs  []Attr
}

// Spans snapshots the trace's spans in insertion order.
func (tr *Trace) Spans() []SpanInfo {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]SpanInfo, len(tr.spans))
	for i, s := range tr.spans {
		out[i] = SpanInfo{
			ID:     s.id,
			Parent: s.parent,
			Name:   s.name,
			Attrs:  append([]Attr(nil), s.attrs...),
		}
	}
	return out
}

// Tracer owns the enablement flag, the sampling policy, and the retention
// ring. The zero Tracer is disabled; arm it with Enable.
type Tracer struct {
	enabled    atomic.Bool
	sampleBits atomic.Uint64 // retain when mix64(id) < sampleBits
	slowNs     atomic.Int64  // FlagSlow threshold; 0 disables
	eventSeq   atomic.Uint64 // bumped by NoteEvent (the events journal)
	lastActive atomic.Uint64 // most recently started trace ID

	mu   sync.Mutex
	ring *Ring
}

var def = &Tracer{}

// Default returns the process-wide tracer every instrumented package
// starts spans on.
func Default() *Tracer { return def }

// Enable arms the tracer with a retention ring of ringSize traces and the
// given probabilistic tail-sample rate in [0, 1] for unflagged traces.
// Safe to call again to resize or retune; the ring is replaced.
func (t *Tracer) Enable(ringSize int, sample float64) {
	if ringSize < 1 {
		ringSize = 256
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	t.mu.Lock()
	t.ring = NewRing(ringSize)
	t.mu.Unlock()
	if sample >= 1 {
		t.sampleBits.Store(^uint64(0))
	} else {
		t.sampleBits.Store(uint64(sample * float64(1<<63) * 2))
	}
	t.enabled.Store(true)
}

// Disable disarms the tracer; retained traces stay readable.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether Start returns live spans.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetSlowThreshold sets the duration above which a finished trace is
// flagged FlagSlow and always retained. The serve sidecar feeds it the
// live p99 of the request-latency histogram; zero disables the criterion.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// SlowThreshold returns the current always-retain latency threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNs.Load()) }

// NoteEvent marks that a journal event fired: any trace open across the
// call is flagged FlagEvent at finish and always retained. The events
// package calls this on every Emit.
func (t *Tracer) NoteEvent() { t.eventSeq.Add(1) }

// LastActive returns the most recently started trace's ID (0 when tracing
// is disabled or nothing has started) — the stamp the events journal puts
// on records so operators can walk from an episode to the requests around
// it.
func (t *Tracer) LastActive() ID { return ID(t.lastActive.Load()) }

// Start opens a new trace with the given deterministic ID and returns its
// root span, or nil while the tracer is disabled. Use Derive to build the
// ID from stable workload identifiers.
func (t *Tracer) Start(name string, id ID) *Span {
	if !t.enabled.Load() {
		return nil
	}
	now := time.Now()
	tr := &Trace{
		tracer:    t,
		id:        id,
		name:      name,
		wall:      now,
		t0:        now,
		eventMark: t.eventSeq.Load(),
	}
	t.lastActive.Store(uint64(id))
	return tr.newSpan(name, 0)
}

// StartRemote opens a local segment of a trace that was STARTED elsewhere:
// the trace keeps the remote trace ID (so a fleet-wide fetch finds every
// segment under one ID), the root span parents under the remote parent
// span, and span IDs are salted by that parent so this segment's IDs never
// collide with the originator's or a sibling segment's. Returns nil while
// the tracer is disabled or when id is zero (no remote context on the
// wire).
func (t *Tracer) StartRemote(name string, id, parent ID) *Span {
	if !t.enabled.Load() || id == 0 {
		return nil
	}
	now := time.Now()
	tr := &Trace{
		tracer:    t,
		id:        id,
		name:      name,
		wall:      now,
		t0:        now,
		eventMark: t.eventSeq.Load(),
		salt:      uint64(parent),
	}
	t.lastActive.Store(uint64(id))
	return tr.newSpan(name, parent)
}

// finish applies the tail-sampling policy and offers the trace to the
// ring. Retention is a pure function of (flags, duration, event overlap,
// trace ID, sample rate): no rng.Source is consulted.
func (t *Tracer) finish(tr *Trace, flags Flags) {
	if slow := t.slowNs.Load(); slow > 0 && int64(tr.Duration()) > slow {
		flags |= FlagSlow
	}
	if t.eventSeq.Load() != tr.eventMark {
		flags |= FlagEvent
	}
	retain := flags&sticky != 0
	if !retain && mix64(uint64(tr.id)) < t.sampleBits.Load() {
		flags |= FlagSampled
		retain = true
	}
	if !retain {
		return
	}
	t.mu.Lock()
	ring := t.ring
	t.mu.Unlock()
	if ring != nil {
		ring.Put(tr, flags)
	}
}

// Get returns the retained trace with the given ID, or nil.
func (t *Tracer) Get(id ID) (*Trace, Flags) {
	t.mu.Lock()
	ring := t.ring
	t.mu.Unlock()
	if ring == nil {
		return nil, 0
	}
	return ring.Get(id)
}

// List summarizes every retained trace, newest first.
func (t *Tracer) List() []Summary {
	t.mu.Lock()
	ring := t.ring
	t.mu.Unlock()
	if ring == nil {
		return nil
	}
	return ring.List()
}
