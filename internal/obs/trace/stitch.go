package trace

import "bytes"

// eventsMarker locates the span array inside a WriteJSON document. The
// exporter is hand-rolled with a fixed field order, so the marker is a
// stable byte signature, not a heuristic.
var eventsMarker = []byte(`"traceEvents":[`)

// eventsBody extracts the raw span-event array body (without brackets)
// from one WriteJSON document, preserving its exact bytes. ok is false
// when doc is not a WriteJSON-shaped export.
func eventsBody(doc []byte) (body []byte, ok bool) {
	i := bytes.Index(doc, eventsMarker)
	if i < 0 {
		return nil, false
	}
	start := i + len(eventsMarker)
	end := bytes.LastIndexByte(doc, ']')
	if end < start {
		return nil, false
	}
	return doc[start:end], true
}

// StitchJSON splices the span events of several exported trace documents —
// the router's root segment plus each replica's remote segment of the SAME
// trace ID — into one Chrome-JSON document. The root document's metadata
// (trace ID, name, flags) is kept verbatim; hop documents contribute only
// their events, in the order given. Because WriteJSON is byte-
// deterministic and the splice is pure concatenation, stitching normalized
// segments is itself byte-deterministic — the stitchgate pin.
//
// Documents that do not parse as exports (or carry no events) contribute
// nothing; a nil or malformed root returns an empty document.
func StitchJSON(root []byte, hops ...[]byte) []byte {
	rootBody, ok := eventsBody(root)
	if !ok {
		return []byte(`{"traceEvents":[]}`)
	}
	head := root[:bytes.Index(root, eventsMarker)+len(eventsMarker)]

	var b bytes.Buffer
	b.Grow(len(root) + 64*len(hops))
	b.Write(head)
	b.Write(rootBody)
	wrote := len(rootBody) > 0
	for _, hop := range hops {
		body, ok := eventsBody(hop)
		if !ok || len(body) == 0 {
			continue
		}
		if wrote {
			b.WriteByte(',')
		}
		b.Write(body)
		wrote = true
	}
	b.WriteString(`]}`)
	return b.Bytes()
}
