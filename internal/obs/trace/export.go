package trace

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// This file renders retained traces in Chrome's trace-event JSON format
// (the "traceEvents" array chrome://tracing and Perfetto load directly).
// The encoder is hand-rolled rather than reflection-based so the byte
// stream is fully deterministic: fields emit in a fixed order and
// attributes in insertion order. The tracegate CI target diffs two
// normalized exports byte-for-byte, so "mostly deterministic" is not
// enough.

// ExportOptions tune the JSON rendering.
type ExportOptions struct {
	// Normalize replaces wall-clock and monotonic timestamps with
	// deterministic values derived from span order (span i starts at
	// i*1000µs with duration 1000µs·(1+depth from end order)). The shape
	// of the tree, names, IDs, parent links, and attrs are untouched.
	// tracegate exports with Normalize set so two fixed-seed runs produce
	// byte-identical files.
	Normalize bool
}

// appendJSONString appends a JSON-quoted string (Go strconv quoting is a
// superset of JSON for the ASCII names and attrs we emit).
func appendJSONString(b *bytes.Buffer, s string) {
	b.WriteString(strconv.Quote(s))
}

func appendNum(b *bytes.Buffer, v float64) {
	// Integers render without an exponent; everything else shortest-form.
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		b.WriteString(strconv.FormatInt(int64(v), 10))
		return
	}
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// WriteJSON renders the trace as a complete Chrome trace-event document.
func WriteJSON(w io.Writer, tr *Trace, flags Flags, opt ExportOptions) error {
	if tr == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	tr.mu.Lock()
	spans := make([]*Span, len(tr.spans))
	copy(spans, tr.spans)
	tr.mu.Unlock()

	var b bytes.Buffer
	b.WriteString(`{"displayTimeUnit":"ms","metadata":{"trace_id":`)
	appendJSONString(&b, tr.id.String())
	b.WriteString(`,"name":`)
	appendJSONString(&b, tr.name)
	b.WriteString(`,"flags":`)
	appendJSONString(&b, flags.String())
	if !opt.Normalize {
		b.WriteString(`,"wall":`)
		appendJSONString(&b, tr.wall.UTC().Format("2006-01-02T15:04:05.000000Z"))
	}
	b.WriteString(`},"traceEvents":[`)
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		tr.mu.Lock()
		name, parent, id := sp.name, sp.parent, sp.id
		start, end := sp.start, sp.end
		attrs := make([]Attr, len(sp.attrs))
		copy(attrs, sp.attrs)
		tr.mu.Unlock()
		tsUS := start / 1e3
		durUS := (end - start) / 1e3
		if end == 0 {
			durUS = 0
		}
		if opt.Normalize {
			tsUS = int64(i) * 1000
			durUS = 1000
		}
		if durUS < 1 {
			durUS = 1
		}
		b.WriteString(`{"name":`)
		appendJSONString(&b, name)
		b.WriteString(`,"ph":"X","pid":1,"tid":1,"ts":`)
		b.WriteString(strconv.FormatInt(tsUS, 10))
		b.WriteString(`,"dur":`)
		b.WriteString(strconv.FormatInt(durUS, 10))
		b.WriteString(`,"args":{"span_id":`)
		appendJSONString(&b, ID(id).String())
		b.WriteString(`,"parent_id":`)
		appendJSONString(&b, ID(parent).String())
		for _, a := range attrs {
			b.WriteByte(',')
			appendJSONString(&b, a.Key)
			b.WriteByte(':')
			if a.IsNum {
				appendNum(&b, a.Num)
			} else {
				appendJSONString(&b, a.Str)
			}
		}
		b.WriteString(`}}`)
	}
	b.WriteString(`]}`)
	_, err := w.Write(b.Bytes())
	return err
}

// MarshalJSON renders the trace to bytes (the KindTrace payload and the
// sidecar /trace/<id> body share this).
func MarshalJSON(tr *Trace, flags Flags, opt ExportOptions) []byte {
	var b bytes.Buffer
	WriteJSON(&b, tr, flags, opt)
	return b.Bytes()
}

// WriteList renders trace summaries as a JSON array (the sidecar /traces
// body), newest first.
func WriteList(w io.Writer, sums []Summary) error {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, s := range sums {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"id":`)
		appendJSONString(&b, s.ID.String())
		b.WriteString(`,"name":`)
		appendJSONString(&b, s.Name)
		b.WriteString(`,"dur_us":`)
		b.WriteString(strconv.FormatInt(int64(s.Duration)/1e3, 10))
		b.WriteString(`,"spans":`)
		b.WriteString(strconv.Itoa(s.Spans))
		b.WriteString(`,"flags":`)
		appendJSONString(&b, s.Flags.String())
		fmt.Fprintf(&b, `,"wall":%q`, s.Wall.UTC().Format("2006-01-02T15:04:05.000000Z"))
		b.WriteByte('}')
	}
	b.WriteString("]\n")
	_, err := w.Write(b.Bytes())
	return err
}
