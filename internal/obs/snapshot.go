package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Bucket is one histogram bucket in a snapshot: the count of observations
// at most UpperBound (non-cumulative; the +Inf overflow bucket has
// UpperBound math.Inf(1), serialized as "+Inf").
type Bucket struct {
	UpperBound float64
	Count      int64
}

// MarshalJSON renders the +Inf overflow bound as the string "+Inf" (JSON
// has no infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := interface{}(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		LE    interface{} `json:"le"`
		Count int64       `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON reverses MarshalJSON, restoring the "+Inf" overflow bound
// to math.Inf(1). Any other string bound is rejected. This makes persisted
// snapshots (BENCH_serve.json, /metrics.json captures) round-trippable, so
// tools like metaai-bench -compare can re-derive quantiles from them.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.LE, &s); err == nil {
		if s != "+Inf" {
			return fmt.Errorf("obs: bucket bound %q is neither a number nor \"+Inf\"", s)
		}
		b.UpperBound = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.LE, &b.UpperBound)
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum_seconds"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the containing bucket. Observations in the overflow bucket report
// the largest finite bound. Returns 0 for an empty histogram.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	var cum int64
	lower := 0.0
	for _, b := range hs.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return lower
			}
			if b.Count == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(prev)) / float64(b.Count)
			return lower + frac*(b.UpperBound-lower)
		}
		if !math.IsInf(b.UpperBound, 1) {
			lower = b.UpperBound
		}
	}
	return lower
}

// Snapshot is a frozen, export-ready view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:   h.count.Load(),
			Sum:     math.Float64frombits(h.sum.Load()),
			Buckets: make([]Bucket, len(h.counts)),
		}
		for i := range h.counts {
			bound := math.Inf(1)
			if i < len(h.bounds) {
				bound = h.bounds[i]
			}
			hs.Buckets[i] = Bucket{UpperBound: bound, Count: h.counts[i].Load()}
		}
		s.Histograms[name] = hs
	}
	return s
}

// sortedKeys returns the map's keys in lexical order, so every export is
// stable.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the snapshot as aligned text, one metric per line,
// sorted by name — the serve sidecar's /metrics format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %-32s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge   %-32s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "hist    %-32s count=%d sum=%.6fs p50=%.6fs p90=%.6fs p99=%.6fs\n",
			name, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON (keys sorted by
// encoding/json's map ordering) — the sidecar's /metrics.json format and
// the BENCH_serve.json payload.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Fingerprint returns the deterministic subset of the snapshot: every
// counter, every gauge (bit-exact, as IEEE-754 bits), and every histogram's
// observation COUNT — but no histogram sums or bucket placements, which
// depend on wall-clock time. Under a fixed seed two runs of the same
// workload produce identical fingerprints; the CI determinism gate asserts
// exactly that.
func (s Snapshot) Fingerprint() map[string]uint64 {
	fp := make(map[string]uint64, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		fp["counter:"+name] = uint64(v)
	}
	for name, v := range s.Gauges {
		fp["gauge:"+name] = math.Float64bits(v)
	}
	for name, h := range s.Histograms {
		fp["histcount:"+name] = uint64(h.Count)
	}
	return fp
}
