package obs

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func snapA() Snapshot {
	return Snapshot{
		Counters: map[string]int64{"serve.served": 10, "serve.shed": 1},
		Gauges:   map[string]float64{"serve.queue_depth": 3},
		Histograms: map[string]HistogramSnapshot{
			"serve.request.seconds": {
				Count: 4, Sum: 0.004,
				Buckets: []Bucket{{1e-3, 3}, {1e-2, 1}, {math.Inf(1), 0}},
			},
		},
	}
}

func snapB() Snapshot {
	return Snapshot{
		Counters: map[string]int64{"serve.served": 7, "serve.heals": 2},
		Gauges:   map[string]float64{"serve.queue_depth": 5},
		Histograms: map[string]HistogramSnapshot{
			"serve.request.seconds": {
				Count: 2, Sum: 0.02,
				Buckets: []Bucket{{1e-3, 0}, {1e-2, 1}, {math.Inf(1), 1}},
			},
			"serve.infer.seconds": {
				Count: 1, Sum: 0.001,
				Buckets: []Bucket{{1e-3, 1}, {math.Inf(1), 0}},
			},
		},
	}
}

func snapC() Snapshot {
	return Snapshot{
		Counters: map[string]int64{"serve.shed": 4},
		Gauges:   map[string]float64{},
		Histograms: map[string]HistogramSnapshot{
			// Different bucket layout: merge is keyed by bound, not index.
			"serve.request.seconds": {
				Count: 3, Sum: 0.3,
				Buckets: []Bucket{{1e-4, 1}, {1e-2, 1}, {math.Inf(1), 1}},
			},
		},
	}
}

func TestMergeSumsEverything(t *testing.T) {
	m := MergeSnapshots(snapA(), snapB())
	if m.Counters["serve.served"] != 17 || m.Counters["serve.shed"] != 1 || m.Counters["serve.heals"] != 2 {
		t.Fatalf("counters merged wrong: %+v", m.Counters)
	}
	if m.Gauges["serve.queue_depth"] != 8 {
		t.Fatalf("gauges merged wrong: %+v", m.Gauges)
	}
	h := m.Histograms["serve.request.seconds"]
	if h.Count != 6 || math.Abs(h.Sum-0.024) > 1e-12 {
		t.Fatalf("histogram totals merged wrong: %+v", h)
	}
	want := []Bucket{{1e-3, 3}, {1e-2, 2}, {math.Inf(1), 1}}
	if !reflect.DeepEqual(h.Buckets, want) {
		t.Fatalf("buckets merged wrong:\n got %+v\nwant %+v", h.Buckets, want)
	}
}

// TestMergeAssociativeCommutative pins the algebra the fleet depends on:
// replicas report in arbitrary order and the coordinator may merge
// incrementally, yet every grouping and ordering lands the same snapshot.
func TestMergeAssociativeCommutative(t *testing.T) {
	perms := [][]Snapshot{
		{snapA(), snapB(), snapC()},
		{snapC(), snapA(), snapB()},
		{snapB(), snapC(), snapA()},
	}
	base := MergeSnapshots(perms[0]...)
	for i, p := range perms[1:] {
		if got := MergeSnapshots(p...); !reflect.DeepEqual(got, base) {
			t.Fatalf("permutation %d merged differently:\n got %+v\nwant %+v", i+1, got, base)
		}
	}
	// Associativity: merge(merge(A,B), C) == merge(A, merge(B,C)).
	left := MergeSnapshots(MergeSnapshots(snapA(), snapB()), snapC())
	right := MergeSnapshots(snapA(), MergeSnapshots(snapB(), snapC()))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge is not associative:\n left %+v\nright %+v", left, right)
	}
	if !reflect.DeepEqual(left, base) {
		t.Fatalf("grouped merge differs from flat merge")
	}
}

func TestMergeEdgeCases(t *testing.T) {
	empty := MergeSnapshots()
	if len(empty.Counters) != 0 || len(empty.Gauges) != 0 || len(empty.Histograms) != 0 {
		t.Fatalf("empty merge not empty: %+v", empty)
	}
	// Single replica: identity on content.
	one := MergeSnapshots(snapA())
	if !reflect.DeepEqual(one, MergeSnapshots(snapA(), Snapshot{})) {
		t.Fatal("merging with a zero snapshot changed the result")
	}
	if one.Counters["serve.served"] != 10 || one.Histograms["serve.request.seconds"].Count != 4 {
		t.Fatalf("single-replica merge mangled content: %+v", one)
	}
}

func TestMergeFingerprintDeterministic(t *testing.T) {
	a := MergeSnapshots(snapA(), snapB(), snapC()).Fingerprint()
	b := MergeSnapshots(snapC(), snapB(), snapA()).Fingerprint()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merged fingerprints diverge:\n a=%v\n b=%v", a, b)
	}
	if a["counter:serve.served"] != 17 || a["histcount:serve.request.seconds"] != 9 {
		t.Fatalf("fingerprint content wrong: %v", a)
	}
}

// TestMergeConcurrent merges under -race: concurrent merges of shared
// snapshot values must not write into their inputs.
func TestMergeConcurrent(t *testing.T) {
	a, b, c := snapA(), snapB(), snapC()
	want := MergeSnapshots(a, b, c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := MergeSnapshots(a, b, c); !reflect.DeepEqual(got, want) {
					t.Error("concurrent merge diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
