package slo

import (
	"math"
	"sync"
	"testing"
)

func TestBurnRateZeroWhenAllGood(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 1000; i++ {
		tr.Observe(true)
	}
	fast, slow := tr.BurnRate()
	if fast != 0 || slow != 0 {
		t.Fatalf("all-good stream burns fast=%g slow=%g, want 0,0", fast, slow)
	}
	if !tr.Healthy() {
		t.Fatal("all-good stream reported unhealthy")
	}
	if s := tr.HealthScore(); s != 1 {
		t.Fatalf("all-good health score %g, want 1", s)
	}
}

func TestBurnRateAllBadSaturates(t *testing.T) {
	tr := New(Config{Objective: 0.99, FastWindow: 8, SlowWindow: 16, MaxBurn: 2})
	for i := 0; i < 16; i++ {
		tr.Observe(false)
	}
	fast, slow := tr.BurnRate()
	// bad fraction 1.0 over a 1% budget → burn rate 100 in both windows.
	if math.Abs(fast-100) > 1e-9 || math.Abs(slow-100) > 1e-9 {
		t.Fatalf("all-bad burn fast=%g slow=%g, want 100,100", fast, slow)
	}
	if tr.Healthy() {
		t.Fatal("all-bad stream reported healthy")
	}
	if s := tr.HealthScore(); s >= 0.5 {
		t.Fatalf("all-bad health score %g, want << 0.5", s)
	}
}

// TestMultiWindowGuard pins the two-window property: a short bad blip
// saturates the fast window but not the slow one, so health holds; a
// sustained bad run trips both.
func TestMultiWindowGuard(t *testing.T) {
	tr := New(Config{Objective: 0.9, FastWindow: 4, SlowWindow: 64, MaxBurn: 2})
	for i := 0; i < 64; i++ {
		tr.Observe(true)
	}
	// Blip: 4 bad. Fast window burns at 10x, slow window at 4/64/0.1 = 0.625x.
	for i := 0; i < 4; i++ {
		tr.Observe(false)
	}
	if !tr.Healthy() {
		t.Fatal("short blip tripped health despite a quiet slow window")
	}
	// Sustained: enough bad to push the slow window past MaxBurn too.
	for i := 0; i < 32; i++ {
		tr.Observe(false)
	}
	if tr.Healthy() {
		t.Fatal("sustained bad run never tripped health")
	}
}

func TestColdTrackerHealthy(t *testing.T) {
	tr := New(Config{FastWindow: 8})
	// Fewer observations than the fast window — even all-bad must not trip.
	for i := 0; i < 7; i++ {
		tr.Observe(false)
	}
	if !tr.Healthy() {
		t.Fatal("cold tracker (fast window not full) reported unhealthy")
	}
}

func TestResetForgets(t *testing.T) {
	tr := New(Config{FastWindow: 4, SlowWindow: 8})
	for i := 0; i < 8; i++ {
		tr.Observe(false)
	}
	if tr.Healthy() {
		t.Fatal("precondition: tracker should be unhealthy")
	}
	tr.Reset()
	if !tr.Healthy() {
		t.Fatal("reset tracker still unhealthy")
	}
	if fast, slow := tr.BurnRate(); fast != 0 || slow != 0 {
		t.Fatalf("reset tracker burns fast=%g slow=%g", fast, slow)
	}
}

func TestNilTrackerNoops(t *testing.T) {
	var tr *Tracker
	tr.Observe(true) // must not panic
	if f, s := tr.BurnRate(); f != 0 || s != 0 {
		t.Fatal("nil tracker burns")
	}
	if !tr.Healthy() {
		t.Fatal("nil tracker unhealthy")
	}
	tr.Reset()
}

// TestDeterministicUnderConcurrency: concurrent observers of the same
// multiset of outcomes always land the same totals (run under -race).
func TestDeterministicUnderConcurrency(t *testing.T) {
	tr := New(Config{Objective: 0.5, FastWindow: 1024, SlowWindow: 2048})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				tr.Observe(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	fast, slow := tr.BurnRate()
	// 512 observations, half bad, 50% budget → burn rate exactly 1.
	if math.Abs(fast-1) > 1e-9 || math.Abs(slow-1) > 1e-9 {
		t.Fatalf("burn fast=%g slow=%g, want 1,1", fast, slow)
	}
}
