// Package slo tracks multi-window error-budget burn rates over a stream of
// good/bad request outcomes — the Google-SRE-style alerting signal the
// fleet uses to suspect silently-slow replicas before they fail
// heartbeats.
//
// An objective of 0.99 leaves a 1% error budget. A burn rate of 1 means
// the budget is being consumed exactly as fast as it accrues; a burn rate
// of B means B times faster. The tracker keeps two bounded windows — a
// fast one (reacts in tens of requests) and a slow one (filters blips) —
// and only reports unhealthy when BOTH burn past the threshold, the
// classic multi-window guard against paging on a single lost packet.
//
// The tracker is a pure function of its Observe sequence: no wall clock,
// no rng, so fleet.Replay drives it deterministically.
package slo

import "sync"

// Config parameterizes a Tracker. The zero value is usable: every field
// falls back to the default noted on it.
type Config struct {
	// Objective is the target good fraction (e.g. 0.99 → 1% error budget).
	// Default 0.99. Values outside (0, 1) fall back to the default.
	Objective float64
	// FastWindow and SlowWindow are the two window lengths in observations.
	// Defaults 32 and 256.
	FastWindow, SlowWindow int
	// MaxBurn is the burn-rate threshold at which Healthy turns false
	// (both windows must exceed it). Default 2.
	MaxBurn float64
}

func (c Config) withDefaults() Config {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 32
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 256
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.MaxBurn <= 0 {
		c.MaxBurn = 2
	}
	return c
}

// window is a fixed-size ring of outcomes with a running failure count, so
// burn-rate reads are O(1).
type window struct {
	ring  []bool // true = bad
	idx   int
	fill  int
	fails int
}

func (w *window) observe(bad bool) {
	if w.fill == len(w.ring) {
		if w.ring[w.idx] {
			w.fails--
		}
	} else {
		w.fill++
	}
	w.ring[w.idx] = bad
	if bad {
		w.fails++
	}
	w.idx = (w.idx + 1) % len(w.ring)
}

func (w *window) badFrac() float64 {
	if w.fill == 0 {
		return 0
	}
	return float64(w.fails) / float64(w.fill)
}

// Tracker measures error-budget burn over two windows. The zero Tracker is
// not usable; build one with New. All methods are safe for concurrent use;
// none are on the serving hot path.
type Tracker struct {
	cfg  Config
	mu   sync.Mutex
	fast window
	slow window
}

// New builds a Tracker with c (zero fields defaulted).
func New(c Config) *Tracker {
	c = c.withDefaults()
	return &Tracker{
		cfg:  c,
		fast: window{ring: make([]bool, c.FastWindow)},
		slow: window{ring: make([]bool, c.SlowWindow)},
	}
}

// Observe records one request outcome in both windows. A nil Tracker is a
// no-op, so call sites need no enabled check.
func (t *Tracker) Observe(good bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.fast.observe(!good)
	t.slow.observe(!good)
	t.mu.Unlock()
}

// BurnRate returns the error-budget burn rate over the fast and slow
// windows: bad-fraction divided by the error budget (1 − objective). 1.0
// means the budget is burning exactly at its sustainable rate. A nil or
// empty tracker reports 0, 0.
func (t *Tracker) BurnRate() (fast, slow float64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	budget := 1 - t.cfg.Objective
	return t.fast.badFrac() / budget, t.slow.badFrac() / budget
}

// Healthy reports whether the tracked stream is inside its SLO: it turns
// false only when the fast window is full AND both windows burn at or past
// MaxBurn. Requiring window fill keeps a cold tracker (or one observation
// after a reset) from suspecting anyone.
func (t *Tracker) Healthy() bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fast.fill < len(t.fast.ring) {
		return true
	}
	budget := 1 - t.cfg.Objective
	return t.fast.badFrac()/budget < t.cfg.MaxBurn || t.slow.badFrac()/budget < t.cfg.MaxBurn
}

// HealthScore compresses the worst-window burn rate into (0, 1]: 1 means
// no budget burning, 0.5 means burning at exactly the sustainable rate,
// and scores shrink toward 0 as the burn grows. Routers export it
// per-replica so operators can rank a fleet at a glance.
func (t *Tracker) HealthScore() float64 {
	fast, slow := t.BurnRate()
	worst := fast
	if slow > worst {
		worst = slow
	}
	return 1 / (1 + worst)
}

// Reset forgets every observation — used when a replica rejoins after
// eviction so its old bad streak cannot re-suspect the fresh incarnation.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fast = window{ring: make([]bool, t.cfg.FastWindow)}
	t.slow = window{ring: make([]bool, t.cfg.SlowWindow)}
}
