package obs

import "sort"

// MergeSnapshots folds N per-replica snapshots into one fleet-wide view:
// counters and gauges sum name-wise, histograms merge bucket-wise (bucket
// counts keyed by upper bound, so replicas with different bucket layouts —
// or with no observations yet — still merge losslessly). The fold is
// associative and commutative by construction: every output is a pure sum
// over the multiset of inputs, so merge order can never change the result
// and the merged Fingerprint is deterministic.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	type histAcc struct {
		count   int64
		sum     float64
		buckets map[float64]int64
	}
	hists := map[string]*histAcc{}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			acc := hists[name]
			if acc == nil {
				acc = &histAcc{buckets: map[float64]int64{}}
				hists[name] = acc
			}
			acc.count += h.Count
			acc.sum += h.Sum
			for _, b := range h.Buckets {
				acc.buckets[b.UpperBound] += b.Count
			}
		}
	}
	for name, acc := range hists {
		h := HistogramSnapshot{Count: acc.count, Sum: acc.sum}
		bounds := make([]float64, 0, len(acc.buckets))
		for bound := range acc.buckets {
			bounds = append(bounds, bound)
		}
		sort.Float64s(bounds) // +Inf sorts last: the overflow bucket stays terminal
		h.Buckets = make([]Bucket, 0, len(bounds))
		for _, bound := range bounds {
			h.Buckets = append(h.Buckets, Bucket{UpperBound: bound, Count: acc.buckets[bound]})
		}
		out.Histograms[name] = h
	}
	return out
}
