// Package events is the structured counterpart to the trace ring: a
// fixed-size journal of the discrete control-plane episodes — heal
// previews, canary verdicts, epoch publishes, rollbacks, checkpoint
// writes, recoveries, degradation edges — that explain why the data
// plane's traces look the way they do. Each record is stamped with a
// trace ID — the episode's own trace when the emitter holds one
// (EmitTraced), the tracer's most recently active trace otherwise — so an
// operator can walk from a rolled-back epoch in /events to the exact heal
// episode in /traces, and every emit bumps the tracer's event counter so
// any trace open across the episode is tail-retained with FlagEvent.
//
// Like the rest of the obs tree, the package is dependency-free, its
// disabled path allocates nothing (Emit returns before building the
// record), and it never touches an rng.Source.
package events

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/trace"
)

// Type enumerates the journaled episode kinds.
type Type uint8

const (
	// HealPreview: a degraded-mode heal was previewed (re-solved off the
	// serving path) and is awaiting its canary verdict.
	HealPreview Type = iota
	// CanaryVerdict: the held-out probe gate accepted or rejected a
	// previewed heal.
	CanaryVerdict
	// Publish: a new epoch was atomically published to the serving path.
	Publish
	// Rollback: the margin watch reverted serving to a previous epoch.
	Rollback
	// CheckpointWrite: an epoch was journaled to the state WAL.
	CheckpointWrite
	// Recover: serving state was rebuilt from the WAL at startup.
	Recover
	// Degraded: the mobility monitor crossed its degradation threshold
	// (rising edge only).
	Degraded
	// FaultInjected: the fault injector activated an episode.
	FaultInjected
	// FleetMember: the fleet router's membership changed (a replica joined,
	// rejoined, or was evicted).
	FleetMember
	// FleetPublish: the fleet coordinator finished an epoch publication —
	// committed fleet-wide, or stopped and rolled back.
	FleetPublish
)

var typeNames = [...]string{
	HealPreview:     "heal-preview",
	CanaryVerdict:   "canary-verdict",
	Publish:         "publish",
	Rollback:        "rollback",
	CheckpointWrite: "checkpoint-write",
	Recover:         "recover",
	Degraded:        "degraded",
	FaultInjected:   "fault-injected",
	FleetMember:     "fleet-member",
	FleetPublish:    "fleet-publish",
}

// String returns the wire name used in NDJSON output.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type-%d", uint8(t))
}

// Field is one key/value detail on a record (epoch numbers, agreement
// fractions, stuck-atom counts, paths).
type Field struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Str builds a string field.
func Str(key, val string) Field { return Field{Key: key, Str: val} }

// Num builds a numeric field.
func Num(key string, val float64) Field { return Field{Key: key, Num: val, IsNum: true} }

// Record is one journaled episode.
type Record struct {
	Seq    uint64    // monotonically increasing journal sequence
	Time   time.Time // wall clock at Emit
	Type   Type
	Msg    string   // one-line human summary
	Trace  trace.ID // the episode's trace (explicit via EmitTraced, else last active)
	Fields []Field
}

// Journal is a fixed-size ring of records. The zero Journal is disabled;
// arm it with Enable. All methods are safe for concurrent use.
type Journal struct {
	enabled atomic.Bool
	tracer  *trace.Tracer // notified on every Emit; nil ok

	mu   sync.Mutex
	buf  []Record
	next uint64
}

var def = &Journal{}

// Default returns the process-wide journal the serve stack emits to.
func Default() *Journal { return def }

// Enable arms the journal with room for size records and binds it to a
// tracer (may be nil) whose NoteEvent/LastActive drive trace correlation.
func (j *Journal) Enable(size int, tr *trace.Tracer) {
	if size < 1 {
		size = 256
	}
	j.mu.Lock()
	j.buf = make([]Record, size)
	j.next = 0
	j.tracer = tr
	j.mu.Unlock()
	j.enabled.Store(true)
}

// Disable disarms the journal; retained records stay readable.
func (j *Journal) Disable() { j.enabled.Store(false) }

// Enabled reports whether Emit records anything.
func (j *Journal) Enabled() bool { return j.enabled.Load() }

// Emit journals one episode stamped with the bound tracer's most recently
// active trace ID. While disabled it returns immediately without
// allocating. LastActive is a heuristic: under concurrent traffic the most
// recently started trace may belong to an unrelated request, so emitters
// that hold the episode's own trace must use EmitTraced instead.
func (j *Journal) Emit(t Type, msg string, fields ...Field) {
	if !j.enabled.Load() {
		return
	}
	j.mu.Lock()
	tr := j.tracer
	j.mu.Unlock()
	var tid trace.ID
	if tr != nil {
		tid = tr.LastActive()
	}
	j.EmitTraced(tid, t, msg, fields...)
}

// EmitTraced journals one episode stamped with an explicit trace ID — the
// correct form whenever the episode's trace is in scope (heal previews,
// canary verdicts, publishes, rollbacks all belong to a heal episode's
// trace, not to whichever request trace happened to start last). The
// tracer is still notified so traces open across the episode tail-retain.
func (j *Journal) EmitTraced(tid trace.ID, t Type, msg string, fields ...Field) {
	if !j.enabled.Load() {
		return
	}
	j.mu.Lock()
	tr := j.tracer
	rec := Record{
		Seq:   j.next,
		Time:  time.Now(),
		Type:  t,
		Msg:   msg,
		Trace: tid,
	}
	if len(fields) > 0 {
		rec.Fields = append([]Field(nil), fields...)
	}
	j.buf[j.next%uint64(len(j.buf))] = rec
	j.next++
	j.mu.Unlock()
	if tr != nil {
		tr.NoteEvent()
	}
}

// Records returns the retained records oldest-first.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.buf) == 0 {
		return nil
	}
	n := j.next
	size := uint64(len(j.buf))
	start := uint64(0)
	count := n
	if n > size {
		start = n - size
		count = size
	}
	out := make([]Record, 0, count)
	for s := start; s < n; s++ {
		out = append(out, j.buf[s%size])
	}
	return out
}

// Len reports how many records the journal retains.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.next
	if n > uint64(len(j.buf)) {
		n = uint64(len(j.buf))
	}
	return int(n)
}

// Reset drops every record (tests and journal re-arming).
func (j *Journal) Reset() {
	j.mu.Lock()
	for i := range j.buf {
		j.buf[i] = Record{}
	}
	j.next = 0
	j.mu.Unlock()
}

// WriteNDJSON renders the journal oldest-first as newline-delimited JSON
// (the sidecar /events body). Field order is fixed so the output is
// deterministic given deterministic records.
func (j *Journal) WriteNDJSON(w io.Writer) error {
	recs := j.Records()
	var b bytes.Buffer
	for _, r := range recs {
		b.WriteString(`{"seq":`)
		b.WriteString(strconv.FormatUint(r.Seq, 10))
		b.WriteString(`,"time":`)
		b.WriteString(strconv.Quote(r.Time.UTC().Format("2006-01-02T15:04:05.000000Z")))
		b.WriteString(`,"type":`)
		b.WriteString(strconv.Quote(r.Type.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(r.Msg))
		b.WriteString(`,"trace_id":`)
		b.WriteString(strconv.Quote(r.Trace.String()))
		for _, f := range r.Fields {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(f.Key))
			b.WriteByte(':')
			if f.IsNum {
				if f.Num == float64(int64(f.Num)) && f.Num < 1e15 && f.Num > -1e15 {
					b.WriteString(strconv.FormatInt(int64(f.Num), 10))
				} else {
					b.WriteString(strconv.FormatFloat(f.Num, 'g', -1, 64))
				}
			} else {
				b.WriteString(strconv.Quote(f.Str))
			}
		}
		b.WriteString("}\n")
	}
	_, err := w.Write(b.Bytes())
	return err
}
