package events

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs/trace"
)

func TestDisabledEmitIsZeroAlloc(t *testing.T) {
	var j Journal
	allocs := testing.AllocsPerRun(1000, func() {
		j.Emit(Publish, "epoch published", Num("epoch", 3))
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocated %.1f/op, want 0", allocs)
	}
	if j.Len() != 0 {
		t.Fatal("disabled journal retained records")
	}
}

func TestEmitRecordsAndStampsTraceID(t *testing.T) {
	var tr trace.Tracer
	tr.Enable(8, 1)
	var j Journal
	j.Enable(8, &tr)

	id := trace.Derive(5)
	sp := tr.Start("req", id)
	j.Emit(Rollback, "margin watch reverted", Num("from_epoch", 4), Num("to_epoch", 3))
	sp.Finish(0)

	recs := j.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Type != Rollback || r.Trace != id {
		t.Fatalf("record = %+v, want Rollback stamped with %v", r, id)
	}
	// The overlapping trace must be tail-retained with FlagEvent.
	got, flags := tr.Get(id)
	if got == nil || flags&trace.FlagEvent == 0 {
		t.Fatalf("overlapping trace not event-retained (flags %v)", flags)
	}
}

// TestEmitTracedOverridesLastActive pins the explicit-stamp contract: an
// episode emitted with EmitTraced carries the given trace ID even when an
// unrelated trace started more recently, and the tracer is still notified
// so traces open across the episode tail-retain with FlagEvent.
func TestEmitTracedOverridesLastActive(t *testing.T) {
	var tr trace.Tracer
	tr.Enable(8, 0)
	var j Journal
	j.Enable(8, &tr)

	episode := trace.Derive(0x4ea1, 1)
	epSpan := tr.Start("serve.heal", episode)
	foreign := trace.Derive(0xf0e17, 1)
	tr.Start("foreign.req", foreign).Finish(0)
	if tr.LastActive() != foreign {
		t.Fatalf("setup: LastActive %s, want foreign %s", tr.LastActive(), foreign)
	}

	j.EmitTraced(episode, Publish, "epoch published")
	epSpan.Finish(0)

	recs := j.Records()
	if len(recs) != 1 || recs[0].Trace != episode {
		t.Fatalf("records = %+v, want one Publish stamped with %s", recs, episode)
	}
	// NoteEvent still fired: the episode trace, open across the emit, is
	// retained at sample=0.
	got, flags := tr.Get(episode)
	if got == nil || flags&trace.FlagEvent == 0 {
		t.Fatalf("episode trace not event-retained (flags %v)", flags)
	}
}

func TestJournalRingWraps(t *testing.T) {
	var j Journal
	j.Enable(3, nil)
	for i := 0; i < 5; i++ {
		j.Emit(Publish, "p", Num("i", float64(i)))
	}
	recs := j.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0].Seq != 2 || recs[2].Seq != 4 {
		t.Fatalf("wrong window: seqs %d..%d, want 2..4", recs[0].Seq, recs[2].Seq)
	}
	j.Reset()
	if j.Len() != 0 {
		t.Fatal("Reset left records")
	}
}

func TestWriteNDJSON(t *testing.T) {
	var j Journal
	j.Enable(8, nil)
	j.Emit(CanaryVerdict, "canary rejected heal", Num("agreement", 0.42), Str("verdict", "reject"))
	j.Emit(CheckpointWrite, "epoch journaled", Num("epoch", 7))
	var b bytes.Buffer
	if err := j.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2: %q", len(lines), b.String())
	}
	for _, want := range []string{`"type":"canary-verdict"`, `"agreement":0.42`, `"verdict":"reject"`, `"trace_id":"0000000000000000"`} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("line 0 missing %s: %s", want, lines[0])
		}
	}
	if !strings.Contains(lines[1], `"epoch":7`) {
		t.Fatalf("line 1 missing epoch: %s", lines[1])
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		HealPreview: "heal-preview", CanaryVerdict: "canary-verdict",
		Publish: "publish", Rollback: "rollback",
		CheckpointWrite: "checkpoint-write", Recover: "recover",
		Degraded: "degraded", FaultInjected: "fault-injected",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if !strings.HasPrefix(Type(200).String(), "type-") {
		t.Fatal("unknown type name")
	}
}
