package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSnapshotWireRoundTrip(t *testing.T) {
	for _, s := range []Snapshot{snapA(), snapB(), snapC()} {
		blob := EncodeSnapshot(s)
		got, err := DecodeSnapshot(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip mangled snapshot:\n got %+v\nwant %+v", got, s)
		}
	}
	// Empty sections survive too (a replica before its first observation).
	empty := Snapshot{Counters: map[string]int64{}, Gauges: map[string]float64{}, Histograms: map[string]HistogramSnapshot{}}
	got, err := DecodeSnapshot(EncodeSnapshot(empty))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestSnapshotWireDeterministic(t *testing.T) {
	a := EncodeSnapshot(snapB())
	b := EncodeSnapshot(snapB())
	if !bytes.Equal(a, b) {
		t.Fatal("same snapshot encoded to different bytes")
	}
}

// TestSnapshotWireRejectsDamage: the CRC tail and bounds-checked reader
// turn every corruption mode the netchaos wire produces into a clean
// error, never a panic or a silently wrong snapshot.
func TestSnapshotWireRejectsDamage(t *testing.T) {
	blob := EncodeSnapshot(snapA())
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Fatal("nil blob decoded")
	}
	if _, err := DecodeSnapshot(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob decoded")
	}
	for i := 0; i < len(blob); i++ {
		mangled := append([]byte(nil), blob...)
		mangled[i] ^= 0x5a
		if _, err := DecodeSnapshot(mangled); err == nil {
			t.Fatalf("bit-flipped blob (byte %d) decoded without error", i)
		}
	}
	// Trailing garbage past a valid CRC region must also be rejected.
	if _, err := DecodeSnapshot(append(append([]byte(nil), blob...), 0xff)); err == nil {
		t.Fatal("over-long blob decoded")
	}
}
