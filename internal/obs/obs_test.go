package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.calls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x.calls") != c {
		t.Fatal("re-registration returned a different counter handle")
	}
	g := r.Gauge("x.level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	// nil handles must be inert, so optional instrumentation can skip the
	// nil checks.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil metric handles recorded something")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 0.2, 0.4})
	for _, v := range []float64{0.05, 0.15, 0.15, 0.3, 0.9} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-1.55) > 1e-12 {
		t.Fatalf("sum = %v, want 1.55", s.Sum)
	}
	wantCounts := []int64{1, 2, 1, 1} // ≤0.1, ≤0.2, ≤0.4, +Inf overflow
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Fatalf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket is not the +Inf overflow")
	}
	if q := s.Quantile(0.5); q < 0.1 || q > 0.2 {
		t.Fatalf("p50 = %v, want within (0.1, 0.2]", q)
	}
	// The p99 observation lives in the overflow bucket: the estimate clamps
	// to the largest finite bound.
	if q := s.Quantile(0.99); q != 0.4 {
		t.Fatalf("p99 = %v, want clamp to 0.4", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty-histogram quantile = %v, want 0", q)
	}
}

func TestTimerGatedByEnabled(t *testing.T) {
	defer SetEnabled(false)
	r := NewRegistry()
	h := r.Histogram("timed", nil)

	SetEnabled(false)
	StartTimer().ObserveInto(h)
	if h.Count() != 0 {
		t.Fatal("disabled timer observed into the histogram")
	}

	SetEnabled(true)
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	tm.ObserveInto(h)
	if h.Count() != 1 {
		t.Fatal("enabled timer did not observe")
	}
	if s := r.Snapshot().Histograms["timed"]; s.Sum <= 0 {
		t.Fatalf("timer sum = %v, want > 0", s.Sum)
	}
}

func TestSnapshotExportsAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("a.level").Set(7)
	r.Histogram("a.lat", nil).Observe(0.003)

	var text bytes.Buffer
	if err := r.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter a.count", "gauge   a.level", "hist    a.lat", "count=1"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text export missing %q:\n%s", want, text.String())
		}
	}

	var jsonBuf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON export does not parse: %v\n%s", err, jsonBuf.String())
	}
	if !strings.Contains(jsonBuf.String(), `"+Inf"`) {
		t.Fatal("JSON export does not serialize the overflow bound as \"+Inf\"")
	}

	r.Reset()
	s := r.Snapshot()
	if s.Counters["a.count"] != 0 || s.Gauges["a.level"] != 0 || s.Histograms["a.lat"].Count != 0 {
		t.Fatalf("Reset left state behind: %+v", s)
	}
}

func TestFingerprintExcludesWallClock(t *testing.T) {
	run := func(sum float64) map[string]uint64 {
		r := NewRegistry()
		r.Counter("c").Add(2)
		r.Gauge("g").Set(0.25)
		r.Histogram("h", nil).Observe(sum)
		return r.Snapshot().Fingerprint()
	}
	a, b := run(0.001), run(0.9) // same counts, different latencies
	if len(a) != len(b) {
		t.Fatalf("fingerprint sizes differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("fingerprint key %s differs (%d vs %d) though only wall-clock values changed", k, v, b[k])
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	// Run under -race: counters, gauges, and histogram buckets must be safe
	// for concurrent writers while a reader snapshots.
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("depth")
	h := r.Histogram("lat", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %g, want 0", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
