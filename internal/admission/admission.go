// Package admission is the serving stack's adaptive overload control: an
// AIMD brownout controller that sheds a rising fraction of non-control
// traffic when the live p99 exceeds the latency SLO, instead of the binary
// queue-full cliff.
//
// The controller separates *policy* (how much to shed — updated by a slow
// feedback loop fed with the observed p99) from *mechanism* (which request
// to shed — a deterministic per-arrival decision on the hot path). The
// decision consumes no randomness and takes no locks: arrivals are counted
// with an atomic and hashed through a fixed 64-bit mixer, so a shed
// fraction of f drops an evenly spaced, reproducible f of arrivals. That
// keeps the obs invariant (instrumentation and overload control never
// touch an rng stream) and keeps the admit check allocation-free for the
// zero-alloc serving gates.
package admission

import (
	"math"
	"sync/atomic"
	"time"
)

// fracScale is the fixed-point denominator for the shed fraction.
const fracScale = 1 << 20

// Controller is an AIMD brownout governor. The zero value is unusable; use
// New. Admit and Fraction are safe for concurrent use with Observe.
type Controller struct {
	slo time.Duration

	// shed is the current shed fraction in fracScale fixed point.
	shed atomic.Uint64
	// arrivals counts Admit calls; the admit decision hashes this ordinal.
	arrivals atomic.Uint64

	// Tunables, fixed at construction.
	step  uint64  // additive increase per over-SLO observation
	decay float64 // multiplicative decrease per under-SLO observation
	max   uint64  // shed ceiling: always admit some traffic to keep measuring
}

// New returns a controller targeting the given p99 SLO. While the observed
// p99 stays at or under slo the controller admits everything; each
// over-SLO observation sheds an additional 5% of traffic (up to a 95%
// ceiling — a trickle is always admitted so the latency signal keeps
// flowing), and each under-SLO observation multiplicatively relaxes the
// brownout by a quarter.
func New(slo time.Duration) *Controller {
	return &Controller{
		slo:   slo,
		step:  fracScale / 20,       // +5 points
		decay: 0.75,                 // -25% relative
		max:   fracScale * 95 / 100, // 95% ceiling
	}
}

// SLO returns the controller's latency target.
func (c *Controller) SLO() time.Duration { return c.slo }

// Observe feeds one p99 measurement into the AIMD loop. A p99 of 0 means
// "no traffic observed" and relaxes the brownout like an under-SLO read.
func (c *Controller) Observe(p99 time.Duration) {
	cur := c.shed.Load()
	var next uint64
	if p99 > c.slo {
		next = cur + c.step
		if next > c.max {
			next = c.max
		}
	} else {
		next = uint64(float64(cur) * c.decay)
		if next < fracScale/200 { // below 0.5%: snap open
			next = 0
		}
	}
	c.shed.Store(next)
}

// SetFraction pins the shed fraction directly (clamped to [0, 95%]) —
// deterministic setup for tests and episode replays.
func (c *Controller) SetFraction(f float64) {
	if f < 0 {
		f = 0
	}
	v := uint64(f * fracScale)
	if v > c.max {
		v = c.max
	}
	c.shed.Store(v)
}

// Fraction returns the current shed fraction in [0, 1).
func (c *Controller) Fraction() float64 {
	return float64(c.shed.Load()) / fracScale
}

// splitmix64's finalizer: a full-avalanche 64-bit mixer, so consecutive
// arrival ordinals land uniformly in [0, 2^64).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Admit decides one arrival: false means shed this request (answer with a
// RetryAfter hint), true means enqueue it. Lock-free, allocation-free, and
// deterministic in the arrival ordinal — at a fixed fraction the same
// arrival sequence sheds the same requests every run.
func (c *Controller) Admit() bool {
	shed := c.shed.Load()
	if shed == 0 {
		return true
	}
	ord := c.arrivals.Add(1)
	return mix(ord)>>(64-20) >= shed
}

// RetryAfter suggests how long a shed client should back off before
// retrying: half the SLO when the brownout is mild, growing toward four
// SLOs as the shed fraction approaches the ceiling. Monotone in the
// current fraction, so hints harshen as the brownout deepens.
func (c *Controller) RetryAfter() time.Duration {
	f := c.Fraction()
	scale := 0.5 + 3.5*f
	d := time.Duration(scale * float64(c.slo))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Quantize rounds a fraction to the controller's fixed-point grid — what
// Fraction would report after SetFraction(f). Useful for exact assertions.
func Quantize(f float64) float64 {
	return math.Floor(f*fracScale) / fracScale
}
