package admission

import (
	"sync"
	"testing"
	"time"
)

func TestAdmitAllAtZeroFraction(t *testing.T) {
	c := New(10 * time.Millisecond)
	for i := 0; i < 1000; i++ {
		if !c.Admit() {
			t.Fatal("shed with zero fraction")
		}
	}
}

// TestAIMDRampAndRelax: over-SLO observations ramp the shed fraction
// additively toward the ceiling; under-SLO observations decay it
// multiplicatively back to exactly zero.
func TestAIMDRampAndRelax(t *testing.T) {
	c := New(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		c.Observe(50 * time.Millisecond)
	}
	if f := c.Fraction(); f < 0.24 || f > 0.26 {
		t.Fatalf("after 5 over-SLO observations fraction = %.3f, want ~0.25", f)
	}
	for i := 0; i < 100; i++ {
		c.Observe(50 * time.Millisecond)
	}
	if f := c.Fraction(); f > 0.95001 || f < 0.94 {
		t.Fatalf("ceiling breached or unreached: %.4f", f)
	}
	relaxes := 0
	for c.Fraction() > 0 {
		c.Observe(time.Millisecond)
		relaxes++
		if relaxes > 100 {
			t.Fatal("brownout never fully relaxed")
		}
	}
	// 0.95 * 0.75^n < 0.005 → n ≈ 19.
	if relaxes > 25 {
		t.Fatalf("relax took %d under-SLO observations", relaxes)
	}
	if !c.Admit() {
		t.Fatal("relaxed controller still shedding")
	}
}

// TestShedFractionAccuracy: at a pinned fraction, the long-run shed rate
// matches, and the pattern is deterministic in the arrival ordinal.
func TestShedFractionAccuracy(t *testing.T) {
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		a := New(time.Millisecond)
		a.SetFraction(frac)
		const n = 20000
		shedA := 0
		var pattern []bool
		for i := 0; i < n; i++ {
			ok := a.Admit()
			if !ok {
				shedA++
			}
			if i < 256 {
				pattern = append(pattern, ok)
			}
		}
		got := float64(shedA) / n
		if got < frac-0.02 || got > frac+0.02 {
			t.Fatalf("fraction %.2f: shed rate %.4f", frac, got)
		}
		b := New(time.Millisecond)
		b.SetFraction(frac)
		for i, want := range pattern {
			if b.Admit() != want {
				t.Fatalf("fraction %.2f: decision %d not deterministic", frac, i)
			}
		}
	}
}

func TestRetryAfterMonotone(t *testing.T) {
	c := New(20 * time.Millisecond)
	c.SetFraction(0.1)
	mild := c.RetryAfter()
	c.SetFraction(0.9)
	harsh := c.RetryAfter()
	if mild <= 0 || harsh <= mild {
		t.Fatalf("hints not monotone: mild=%v harsh=%v", mild, harsh)
	}
	if harsh > 5*c.SLO() {
		t.Fatalf("hint %v unreasonably past 4×SLO", harsh)
	}
}

// TestAdmitConcurrentSafe exercises Admit/Observe under the race detector.
func TestAdmitConcurrentSafe(t *testing.T) {
	c := New(time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Admit()
				if i%100 == 0 {
					c.Observe(time.Duration(i%3) * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
}

func TestSetFractionClamps(t *testing.T) {
	c := New(time.Millisecond)
	c.SetFraction(2.0)
	if f := c.Fraction(); f > 0.95001 {
		t.Fatalf("fraction %f above ceiling", f)
	}
	c.SetFraction(-1)
	if c.Fraction() != 0 {
		t.Fatal("negative fraction not clamped to 0")
	}
}
