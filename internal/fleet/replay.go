package fleet

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/airproto"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/rng"
)

// Replay drives one deterministic, socket-free fleet episode through the
// same components — and the same fleet.* obs series — the live router uses:
// consistent-hash routing over a Ring, the Alive→Suspect→Evicted Detector on
// a fake clock, and chunked epoch replication through real replica Agents.
// The serve bench replays an episode so the fleet counters land in
// BENCH_serve.json with reproducible values; every decision here is a pure
// function of the seed, which is exactly what the observability-determinism
// gate asserts.
//
// The episode covers the full failure repertoire: joins, steady routing,
// a committed replication, a replica death (data-path suspicion, heartbeat
// probing, eviction, failover routing around the corpse), a sabotaged epoch
// stopped at the canary with a fleet-wide rollback, and the dead replica
// rejoining stale and being caught up by anti-entropy.

// ReplayConfig sizes a replay episode. Zero values take the defaults noted
// on each field.
type ReplayConfig struct {
	Replicas   int    // fleet size (default 3)
	Requests   int    // routed requests per load burst (default 96)
	ChunkBytes int    // replication chunk payload (default 512)
	Seed       uint64 // drives keys, latencies, and detector jitter (default 1)
	// Chaos, when non-nil, threads every routed request and every
	// replication chunk through seeded netchaos lanes: routed requests can
	// be dropped on the wire (failing over exactly as a dead replica
	// would), and chunk frames can be dropped, duplicated, reordered, or
	// mangled — the stop-and-wait sender retries, the agent re-acks
	// duplicates, and mangled frames fail Unmarshal and are ignored. The
	// episode stays a pure function of (Seed, Chaos): same config, same
	// fates, same tallies.
	Chaos *netchaos.Config
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Replicas < 2 {
		c.Replicas = 3
	}
	if c.Requests <= 0 {
		c.Requests = 96
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ReplayStats tallies what the episode did — the same quantities the
// fleet.* counters record, returned so callers can report them without
// reading the metrics registry.
type ReplayStats struct {
	Forwards      int
	Failovers     int
	HedgedWins    int
	Evicted       int
	Publishes     int
	Chunks        int
	CanaryRejects int
	Rollbacks     int
	Catchups      int
	FleetSeq      uint64 // converged sequence across all replicas at the end
}

// ReplayObs is the episode's observability plane: per-replica obs
// snapshots (round-tripped through the heartbeat wire encoding, exactly as
// a live router receives them), their bucket-wise merge, the fleet SLO
// burn rates, and each replica's burn-rate health score. It lives beside
// ReplayStats rather than inside it so ReplayStats stays comparable with
// == (its determinism tests depend on that).
type ReplayObs struct {
	Merged     obs.Snapshot
	PerReplica map[string]obs.Snapshot
	BurnFast   float64
	BurnSlow   float64
	Health     map[string]float64
}

// replaySLOTarget classifies a replayed request as within-SLO. Every
// successful draw (150–450µs) clears it, so arming the SLO plane never
// changes which replicas the episode suspects — only real failures burn
// budget, and those already trip the faster NACK window first.
const replaySLOTarget = time.Millisecond

// replaySLO is deliberately forgiving (50% objective): under the chaos
// fault load individual healthy replicas lose the odd datagram, and the
// burn-rate tracker must not suspect them for it — only a replica failing
// outright (already NACK-window territory) could saturate this budget.
var replaySLO = slo.Config{Objective: 0.5, FastWindow: 16, SlowWindow: 64}

// replayReplica is one simulated fleet member: a real Agent whose apply
// reads the epoch's agreement straight out of the sealed payload (the
// replay's stand-in for measuring held-out prediction agreement).
type replayReplica struct {
	name  string
	agent *Agent
	alive bool
}

// replayCanaryFrac is the gate a replayed canary must clear, matching the
// production default. replayNonce stands in for the coordinator incarnation
// nonce — fixed, so the episode stays a pure function of the seed.
// replayChunkRetries is the stop-and-wait sender's per-chunk attempt cap;
// without chaos the first attempt always acks, with the Mix(0.1) load
// eight attempts make an all-drops chunk vanishingly unlikely.
const (
	replayCanaryFrac   = 0.8
	replayNonce        = 0x5eed
	replayChunkRetries = 8
)

// replayEpoch builds a synthetic sealed payload for the replay: size bytes
// of seeded noise with the canary agreement encoded in the first byte
// (255 = perfect agreement, so a "sabotaged" epoch is simply one whose
// first byte reports a sub-gate value).
func replayEpoch(src *rng.Source, size int, agreement float64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(src.IntN(256))
	}
	b[0] = byte(agreement * 255)
	return b
}

// Replay runs one episode and returns its tallies. The error path only
// fires on internal inconsistency (a transfer that never completes, a fleet
// that fails to converge) — any error is a bug in the fleet tier, not a
// simulated failure.
func Replay(cfg ReplayConfig) (ReplayStats, error) {
	st, _, err := ReplayWithObs(cfg)
	return st, err
}

// ReplayWithObs runs one episode and additionally returns its
// observability plane — merged + per-replica snapshots, burn rates, and
// health scores, all pure functions of (Seed, Chaos). The serve bench uses
// it to pin the merged-fleet-snapshot fingerprint and report fleet p99 and
// burn rate in BENCH_serve.json.
func ReplayWithObs(cfg ReplayConfig) (ReplayStats, ReplayObs, error) {
	cfg = cfg.withDefaults()
	var st ReplayStats
	ob := ReplayObs{
		PerReplica: make(map[string]obs.Snapshot),
		Health:     make(map[string]float64),
	}
	src := rng.New(cfg.Seed)
	now := time.Unix(1_726_000_000, 0) // fake clock: fixed origin, stepped below

	det := NewDetector(DetectorConfig{
		SuspectMisses: 2,
		ProbeBase:     50 * time.Millisecond,
		ProbeMax:      400 * time.Millisecond,
		ProbeLimit:    3,
		NackWindow:    8,
		SLOTarget:     replaySLOTarget,
		SLO:           replaySLO,
	}, src.Split())
	fleetSLO := slo.New(replaySLO)
	ring := NewRing()

	reps := make([]*replayReplica, cfg.Replicas)
	for i := range reps {
		r := &replayReplica{name: fmt.Sprintf("replay-%d", i), alive: true}
		r.agent = NewAgent(nil, func(sealed []byte, mode uint8, tid uint32) (float64, error) {
			if mode == airproto.PushCanary {
				return float64(sealed[0]) / 255, nil
			}
			return 1, nil
		})
		ring.Add(r.name)
		det.Revive(r.name)
		joinCount.Inc()
		reps[i] = r
	}
	byName := make(map[string]*replayReplica, len(reps))
	regs := make(map[string]*obs.Registry, len(reps))
	for _, r := range reps {
		byName[r.name] = r
		regs[r.name] = obs.NewRegistry()
	}
	setGauges := func() {
		alive, suspect, _ := det.Counts()
		liveGauge.Set(float64(alive))
		suspectGauge.Set(float64(suspect))
	}
	setGauges()

	// Chaos lanes: routeLane decides routed-request delivery, wireLane
	// mangles replication chunk bytes. Both are seeded from the chaos
	// config (falling back to the episode seed), independent of the episode
	// source so arming chaos does not shift the request keys or latencies.
	var routeLane, wireLane *netchaos.Lane
	if cfg.Chaos != nil {
		cseed := cfg.Chaos.Seed
		if cseed == 0 {
			cseed = cfg.Seed
		}
		routeLane = netchaos.NewLane(cfg.Chaos.Inbound, cseed^0x407e)
		wireLane = netchaos.NewLane(cfg.Chaos.Outbound, cseed^0x317e)
	}

	// route sends one burst of requests through the ring exactly as the
	// router would: forward to the primary, report the outcome to the
	// detector, fail over in ring order around dead members (or around a
	// chaos-eaten datagram — the router can't tell the difference), and
	// count a hedged win when the primary's latency draw crosses the hedge
	// line.
	route := func(n int) {
		var keyBuf [8]byte
		for i := 0; i < n; i++ {
			key := src.Uint64()
			served := false
			for _, name := range ring.Route(key, 2) {
				lat := 150e-6 + 300e-6*src.Float64()
				dur := time.Duration(lat * float64(time.Second))
				lost := false
				if routeLane != nil {
					binary.LittleEndian.PutUint64(keyBuf[:], key)
					lost = len(routeLane.Apply(keyBuf[:], nil)) == 0
				}
				if r := byName[name]; !r.alive || lost {
					det.ReportForward(name, true, now)
					det.ReportLatency(name, 0, false, now)
					failoverCount.Inc()
					st.Failovers++
					continue
				}
				det.ReportForward(name, false, now)
				det.ReportLatency(name, dur, true, now)
				forwardCount.Inc()
				forwardSeconds.Observe(lat)
				st.Forwards++
				// The replica-side view of the same request, recorded into the
				// replica's own registry — the series a live replica would
				// piggyback back to the router on its heartbeats.
				reg := regs[name]
				reg.Counter("serve.served").Inc()
				reg.Histogram("serve.request.seconds", nil).Observe(lat)
				served = true
				if lat > 420e-6 { // the hedge fired and the hedge answered first
					hedgedWinCount.Inc()
					st.HedgedWins++
				}
				break
			}
			fleetSLO.Observe(served) // end-to-end: every draw is within target
			now = now.Add(time.Millisecond)
		}
	}

	// push streams one chunked transfer into a replica agent, counting every
	// chunk frame like the coordinator's sender does, and returns the
	// completing ack. With a wire lane armed each chunk's bytes go through
	// the fault engine: a dropped or mangled chunk is resent (stop-and-wait,
	// exactly like Router.pushEpoch), a duplicated or reordered one is
	// re-acked by the agent's idempotent chunk handling.
	push := func(r *replayReplica, tid uint32, sealed []byte, mode uint8) (*airproto.Frame, error) {
		frames, err := Chunks(tid, mode, sealed, cfg.ChunkBytes, replayNonce)
		if err != nil {
			return nil, err
		}
		for i, fr := range frames {
			if wireLane == nil {
				chunkCount.Inc()
				st.Chunks++
				ack, ok := r.agent.HandleFrame(fr)
				if !ok || ack == nil {
					return nil, fmt.Errorf("fleet replay: %s ignored chunk of transfer %d", r.name, tid)
				}
				if ack.Code != airproto.AckChunk {
					return ack, nil
				}
				continue
			}
			out, err := fr.Marshal()
			if err != nil {
				return nil, err
			}
			var final *airproto.Frame
			acked := false
			for attempt := 0; attempt < replayChunkRetries && !acked && final == nil; attempt++ {
				chunkCount.Inc()
				st.Chunks++
				for _, p := range wireLane.Apply(out, nil) {
					f2, err := airproto.Unmarshal(p.Data)
					if err != nil || f2.Kind != airproto.KindEpochPush {
						continue // mangled on the wire: the replica ignores it
					}
					ack, ok := r.agent.HandleFrame(f2)
					if !ok || ack == nil || ack.Kind != airproto.KindEpochAck || ack.ID != tid {
						continue // stale held frame from an earlier transfer
					}
					if ack.Code != airproto.AckChunk {
						final = ack // completing verdict, possibly early
						continue
					}
					if idx, _, _, _ := ack.AckInfo(); idx == i {
						acked = true
					}
				}
			}
			if final != nil {
				return final, nil
			}
			if !acked {
				return nil, fmt.Errorf("fleet replay: no ack for chunk %d/%d of transfer %d after %d attempts",
					i+1, len(frames), tid, replayChunkRetries)
			}
		}
		return nil, fmt.Errorf("fleet replay: transfer %d to %s fully acked but never completed", tid, r.name)
	}

	liveOrder := func(key uint64) []*replayReplica {
		var order []*replayReplica
		for _, name := range ring.Route(key, len(reps)) {
			if r := byName[name]; r.alive {
				order = append(order, r)
			}
		}
		return order
	}

	// publish replicates one sealed epoch exactly as Router.Publish does:
	// canary first, gate on its reported agreement, then fan out; a rejection
	// rolls every live replica back to the prior epoch under a fresh
	// sequence.
	var pubSeq uint32
	var current []byte
	publish := func(sealed []byte) error {
		pubSeq++
		tid := pubSeq
		order := liveOrder(uint64(tid))
		if len(order) == 0 {
			return fmt.Errorf("fleet replay: no live replicas")
		}
		publishCount.Inc()
		st.Publishes++
		ack, err := push(order[0], tid, sealed, airproto.PushCanary)
		if err != nil {
			return err
		}
		_, agreement, _, _ := ack.AckInfo()
		if ack.Code != airproto.AckApplied || agreement < replayCanaryFrac {
			canaryRejects.Inc()
			st.CanaryRejects++
			if current != nil && ack.Code == airproto.AckApplied {
				pubSeq++
				rollbackCount.Inc()
				st.Rollbacks++
				for _, r := range liveOrder(uint64(pubSeq)) {
					if _, err := push(r, pubSeq, current, airproto.PushRollback); err != nil {
						return err
					}
				}
			}
			return nil // the rejection is the episode's point, not an error
		}
		for _, r := range order[1:] {
			if _, err := push(r, tid, sealed, airproto.PushCommit); err != nil {
				return err
			}
		}
		current = sealed
		return nil
	}

	// Steady state: route, then commit a healthy epoch fleet-wide.
	route(cfg.Requests)
	good := replayEpoch(src.Split(), 4*cfg.ChunkBytes+37, 1.0)
	if err := publish(good); err != nil {
		return st, ob, err
	}

	// Kill one replica mid-episode. The load keeps flowing — its share fails
	// over — while missed heartbeats walk it Alive→Suspect→Evicted on the
	// fake clock's jittered probe schedule.
	victim := reps[len(reps)-1]
	victim.alive = false
	route(cfg.Requests)
	for det.State(victim.name) != Evicted {
		for _, r := range reps {
			if !det.ShouldProbe(r.name, now) {
				continue
			}
			if !r.alive {
				det.Observe(r.name, false, now)
				continue
			}
			hb, ok := r.agent.HandleFrame(airproto.Heartbeat(uint32(st.Forwards + 1)))
			det.Observe(r.name, ok && hb != nil, now)
		}
		now = now.Add(25 * time.Millisecond)
	}
	ring.Remove(victim.name)
	evictedCount.Inc()
	st.Evicted++
	setGauges()

	// A sabotaged epoch: the canary measures sub-gate agreement, the publish
	// stops there, and the survivors roll back to the committed epoch under a
	// fresh fleet sequence.
	bad := replayEpoch(src.Split(), 3*cfg.ChunkBytes, 0.25)
	if err := publish(bad); err != nil {
		return st, ob, err
	}

	// The corpse rejoins stale and anti-entropy catches it up to the fleet's
	// current sequence.
	victim.alive = true
	ring.Add(victim.name)
	det.Revive(victim.name)
	joinCount.Inc()
	if victim.agent.FleetSeq() != uint64(pubSeq) {
		catchupCount.Inc()
		st.Catchups++
		if _, err := push(victim, pubSeq, current, airproto.PushCommit); err != nil {
			return st, ob, err
		}
	}
	setGauges()
	route(cfg.Requests)

	// Every replica must hold the same fleet sequence — the same convergence
	// invariant the live fleet bench asserts.
	st.FleetSeq = uint64(pubSeq)
	for _, r := range reps {
		if got := r.agent.FleetSeq(); got != st.FleetSeq {
			return st, ob, fmt.Errorf("fleet replay: %s at seq %d, fleet at %d", r.name, got, st.FleetSeq)
		}
	}

	// Assemble the observability plane the way a live router receives it:
	// each replica's snapshot rides the heartbeat wire encoding (so the
	// replay also exercises encode/decode), then merges bucket-wise.
	snaps := make([]obs.Snapshot, 0, len(reps))
	for _, r := range reps {
		blob := obs.EncodeSnapshot(regs[r.name].Snapshot())
		decoded, err := obs.DecodeSnapshot(blob)
		if err != nil {
			return st, ob, fmt.Errorf("fleet replay: %s snapshot wire round-trip: %v", r.name, err)
		}
		ob.PerReplica[r.name] = decoded
		ob.Health[r.name] = det.HealthScore(r.name)
		snaps = append(snaps, decoded)
	}
	ob.Merged = obs.MergeSnapshots(snaps...)
	ob.BurnFast, ob.BurnSlow = fleetSLO.BurnRate()
	return st, ob, nil
}
