package fleet

import (
	"testing"

	"repro/internal/netchaos"
)

// TestReplayDeterministicAndConverged pins the replay driver's contract: a
// seeded episode succeeds, exercises every leg of the failure repertoire it
// promises (forwards, failovers, eviction, replication chunks, a canary
// rejection with rollback, and an anti-entropy catch-up), and replays to
// IDENTICAL tallies on a second run — the property the serve bench's
// observability-determinism gate stands on.
func TestReplayDeterministicAndConverged(t *testing.T) {
	a, err := Replay(ReplayConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Forwards == 0 || a.Failovers == 0 || a.Chunks == 0 {
		t.Fatalf("episode skipped its load or replication: %+v", a)
	}
	if a.Publishes != 2 || a.CanaryRejects != 1 || a.Rollbacks != 1 {
		t.Fatalf("episode missed the sabotage leg: %+v", a)
	}
	if a.Evicted != 1 || a.Catchups != 1 {
		t.Fatalf("episode missed the kill/rejoin leg: %+v", a)
	}
	// Good publish (1), sabotaged publish (2), rollback under a fresh seq
	// (3): the whole fleet — rejoined corpse included — converges on 3.
	if a.FleetSeq != 3 {
		t.Fatalf("fleet converged on seq %d, want 3", a.FleetSeq)
	}
	b, err := Replay(ReplayConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different episodes:\n a=%+v\n b=%+v", a, b)
	}
}

// TestReplayChaosDeterministicAndConverged: the same episode under the
// netchaos fault load still completes every leg — lost routed requests
// fail over, dropped/mangled chunks are resent, duplicated ones re-acked
// — converges on the same final fleet sequence, and replays to IDENTICAL
// tallies: the packet fates are a pure function of the chaos config.
func TestReplayChaosDeterministicAndConverged(t *testing.T) {
	cfg := ReplayConfig{Seed: 42, Chaos: &netchaos.Config{
		Seed:     7,
		Inbound:  netchaos.Mix(0.1),
		Outbound: netchaos.Mix(0.1),
	}}
	a, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FleetSeq != 3 {
		t.Fatalf("chaos episode converged on seq %d, want 3", a.FleetSeq)
	}
	clean, err := Replay(ReplayConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Chunks <= clean.Chunks {
		t.Fatalf("chaos sent %d chunks vs %d clean — the fault load never bit", a.Chunks, clean.Chunks)
	}
	if a.Failovers <= clean.Failovers {
		t.Fatalf("chaos caused %d failovers vs %d clean — routed requests never dropped", a.Failovers, clean.Failovers)
	}
	b, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same chaos config, different episodes:\n a=%+v\n b=%+v", a, b)
	}
}

// TestReplaySeedsDiverge guards against the replay collapsing into a
// seed-independent constant (which would make the determinism gate
// vacuous): different seeds must produce different request routing.
func TestReplaySeedsDiverge(t *testing.T) {
	a, err := Replay(ReplayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(ReplayConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("seeds 1 and 2 replayed identically: %+v", a)
	}
}
