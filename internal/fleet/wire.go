package fleet

import (
	"fmt"

	"repro/internal/airproto"
)

// DefaultChunkBytes is the per-frame replication payload the coordinator
// uses unless configured otherwise: comfortably under the airproto frame
// cap, large enough that a typical sealed epoch ships in a handful of
// datagrams.
const DefaultChunkBytes = 8192

// Reassembly guards: a replica holds at most maxTransfers concurrent
// partial transfers and refuses any transfer claiming more than
// maxTransferBytes — a malformed or hostile header must not make the
// replica allocate unbounded buffers. The byte cap is airproto's
// float32-exact bound (16 MiB): chunk header integers ride float32 samples
// that are only exact below 2^24, so a larger transfer would ship rounded
// offsets. Sealed epochs are a few MiB at most.
const (
	maxTransfers     = 4
	maxTransferBytes = airproto.MaxTransferBytes
)

// Chunks splits one sealed checkpoint epoch into ordered KindEpochPush
// frames for transfer tid in the given push mode, stamped with the
// coordinator's incarnation nonce. Every chunk carries its own byte offset,
// so the receiver never infers positions from a stride and out-of-order or
// duplicated arrival is harmless.
func Chunks(tid uint32, mode uint8, sealed []byte, chunkBytes int, nonce uint32) ([]*airproto.Frame, error) {
	if len(sealed) == 0 {
		return nil, fmt.Errorf("fleet: refusing to chunk an empty epoch")
	}
	if len(sealed) > maxTransferBytes {
		return nil, fmt.Errorf("fleet: %d-byte epoch exceeds the %d-byte transfer cap", len(sealed), maxTransferBytes)
	}
	if chunkBytes <= 0 || chunkBytes > airproto.MaxChunkBytes {
		chunkBytes = DefaultChunkBytes
	}
	total := (len(sealed) + chunkBytes - 1) / chunkBytes
	if total > 0xffff {
		return nil, fmt.Errorf("fleet: %d-byte epoch needs %d chunks of %d bytes (max %d)", len(sealed), total, chunkBytes, 0xffff)
	}
	frames := make([]*airproto.Frame, 0, total)
	for i := 0; i < total; i++ {
		off := i * chunkBytes
		end := off + chunkBytes
		if end > len(sealed) {
			end = len(sealed)
		}
		f, err := airproto.EpochChunk(tid, mode, i, total, sealed[off:end], off, len(sealed), nonce)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// transfer is one in-progress chunked reception.
type transfer struct {
	mode    uint8
	nonce   uint32 // coordinator incarnation that opened the transfer
	buf     []byte
	got     []bool
	pending int // chunks still missing
}

// Reassembler rebuilds sealed epochs from KindEpochPush frames, keyed by
// transfer ID. Duplicate chunks are idempotent; chunks may arrive in any
// order. It is not goroutine-safe — the owning Agent serializes access.
type Reassembler struct {
	m     map[uint32]*transfer
	order []uint32 // insertion order, for evicting the oldest partial
}

func NewReassembler() *Reassembler {
	return &Reassembler{m: make(map[uint32]*transfer)}
}

// Add folds one push frame into its transfer. When the final missing chunk
// lands it returns the complete sealed epoch with done=true and forgets the
// transfer. A frame that lies about its geometry (mismatched totals, chunk
// outside the transfer, mode flip mid-transfer) fails with an error and
// drops the whole transfer — a torn buffer must never reach the decoder.
func (ra *Reassembler) Add(f *airproto.Frame) (sealed []byte, mode uint8, done bool, err error) {
	idx, total := f.ChunkInfo()
	chunk, off, totalLen, nonce, ok := f.ChunkPayload()
	if !ok || idx < 0 || total < 1 || idx >= total {
		return nil, 0, false, fmt.Errorf("fleet: malformed chunk %d/%d for transfer %d", idx, total, f.ID)
	}
	if totalLen > maxTransferBytes {
		return nil, 0, false, fmt.Errorf("fleet: transfer %d claims %d bytes (cap %d)", f.ID, totalLen, maxTransferBytes)
	}
	tr := ra.m[f.ID]
	if tr == nil {
		if len(ra.m) >= maxTransfers {
			ra.evictOldest()
		}
		tr = &transfer{mode: f.Code, nonce: nonce, buf: make([]byte, totalLen), got: make([]bool, total), pending: total}
		ra.m[f.ID] = tr
		ra.order = append(ra.order, f.ID)
	}
	if len(tr.buf) != totalLen || len(tr.got) != total || tr.mode != f.Code || tr.nonce != nonce {
		ra.Drop(f.ID)
		return nil, 0, false, fmt.Errorf("fleet: transfer %d changed shape mid-flight (%d/%d bytes, %d/%d chunks, nonce %d/%d)",
			f.ID, totalLen, len(tr.buf), total, len(tr.got), nonce, tr.nonce)
	}
	if tr.got[idx] {
		return nil, tr.mode, false, nil // duplicate: already placed
	}
	copy(tr.buf[off:], chunk)
	tr.got[idx] = true
	tr.pending--
	if tr.pending > 0 {
		return nil, tr.mode, false, nil
	}
	ra.Drop(f.ID)
	return tr.buf, tr.mode, true, nil
}

// Drop forgets a transfer's partial state.
func (ra *Reassembler) Drop(tid uint32) {
	delete(ra.m, tid)
	for i, id := range ra.order {
		if id == tid {
			ra.order = append(ra.order[:i], ra.order[i+1:]...)
			break
		}
	}
}

func (ra *Reassembler) evictOldest() {
	if len(ra.order) > 0 {
		ra.Drop(ra.order[0])
	}
}
