package fleet

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/obs/events"
	"repro/internal/obs/trace"
)

// ErrRefused marks a permanent Publish verdict: the epoch itself was judged
// bad — it would not decode, the canary rejected it, or a fan-out replica
// refused it — and retrying the same bytes can never succeed. Publish
// errors NOT wrapping ErrRefused are transient transport failures (no live
// replicas yet, canary unreachable, chunk ack timeouts): the fleet is
// unchanged or already rolled back, and the same epoch should be offered
// again. Callers gate retry-vs-skip on errors.Is(err, ErrRefused).
var ErrRefused = errors.New("epoch refused")

// Publish replicates one sealed checkpoint epoch across the fleet:
//
//  1. Validate — the bytes must decode as a sealed epoch before a single
//     chunk ships; the wire format IS the journal format, so replicas
//     journal exactly what the coordinator holds.
//  2. Canary — the first live replica in ring order (keyed by the transfer
//     sequence) receives the epoch in PushCanary mode, applies it, and
//     reports its prediction agreement against its previous serving state
//     on the held-out probes. A rejection or an agreement below CanaryFrac
//     stops the publication and rolls the canary — and the rest of the
//     fleet — back to the prior epoch under a fresh sequence, so the fleet
//     still converges.
//  3. Fan-out — every other live replica gets the epoch in PushCommit mode
//     in parallel. A replica that dies mid-push is evicted and catches up
//     via anti-entropy when it rejoins; a live replica that REFUSES the
//     epoch triggers a fleet-wide rollback (refusal means the epoch cannot
//     be trusted anywhere).
//
// Every completed Publish — success, canary rejection, or fan-out rollback
// — leaves all live replicas converged on the same fleet sequence.
func (r *Router) Publish(sealed []byte) error {
	ep, err := checkpoint.DecodeEpoch(sealed)
	if err != nil {
		return fmt.Errorf("fleet: refusing to publish: %w (%w)", err, ErrRefused)
	}
	r.pubMu.Lock()
	defer r.pubMu.Unlock()

	r.mu.Lock()
	rollback := r.current
	r.mu.Unlock()

	tid := r.pubSeq.Add(1)
	pid := trace.Derive(0xf1ee7, uint64(tid))
	sp := r.cfg.Tracer.Start("fleet.publish", pid)
	defer sp.Finish(0)
	sp.SetNum("fleet_seq", float64(tid))
	sp.SetNum("epoch_seq", float64(ep.Seq))

	order := r.liveRoute(uint64(tid), 1<<16)
	if len(order) == 0 {
		return fmt.Errorf("fleet: no live replicas to publish epoch %d to", ep.Seq)
	}
	publishCount.Inc()
	canary := order[0]
	r.cfg.Logf("fleet: publishing epoch %d (seq %d) via canary %s to %d replicas",
		ep.Seq, tid, canary.name, len(order))

	csp := sp.Child("fleet.canary")
	ack, err := r.pushEpoch(canary, tid, sealed, airproto.PushCanary)
	if err != nil {
		csp.End()
		// The transfer never completed, so the canary applied nothing: the
		// fleet is unchanged. The canary is in trouble, though.
		r.det.ReportForward(canary.name, true, time.Now())
		return fmt.Errorf("fleet: canary %s unreachable: %w", canary.name, err)
	}
	_, agreement, _, _ := ack.AckInfo()
	csp.SetNum("agreement", agreement)
	csp.End()
	if ack.Code != airproto.AckApplied || agreement < r.cfg.CanaryFrac {
		canaryRejects.Inc()
		events.Default().EmitTraced(pid, events.CanaryVerdict, "fleet canary refused epoch",
			events.Str("member", canary.name),
			events.Num("agreement", agreement),
			events.Num("min_agreement", r.cfg.CanaryFrac),
			events.Num("fleet_seq", float64(tid)))
		// The canary may now be serving the bad epoch; roll the whole fleet
		// (canary included) back to the prior one under a fresh sequence so
		// every live replica converges again.
		if rollback != nil && ack.Code == airproto.AckApplied {
			r.rollbackFleet(rollback, pid)
		} else if rollback == nil && ack.Code == airproto.AckApplied {
			r.cfg.Logf("fleet: WARNING: canary %s holds a rejected epoch and no rollback target exists", canary.name)
		}
		return fmt.Errorf("fleet: canary %s refused epoch %d (verdict %d, agreement %.2f < %.2f): %w",
			canary.name, ep.Seq, ack.Code, agreement, r.cfg.CanaryFrac, ErrRefused)
	}

	// Canary holds the new epoch; fan out to the rest in parallel.
	type outcome struct {
		m        *member
		rejected bool
		err      error
	}
	results := make(chan outcome, len(order)-1)
	for _, m := range order[1:] {
		m := m
		go func() {
			a, err := r.pushEpoch(m, tid, sealed, airproto.PushCommit)
			if err != nil {
				results <- outcome{m: m, err: err}
				return
			}
			results <- outcome{m: m, rejected: a.Code != airproto.AckApplied}
		}()
	}
	rejected := false
	applied := 1 // the canary
	for range order[1:] {
		res := <-results
		switch {
		case res.err != nil:
			// Dead mid-publish: evict and continue — the survivors converge
			// now, the corpse catches up when it rejoins.
			r.evict(res.m, fmt.Sprintf("unreachable during publish %d: %v", tid, res.err))
		case res.rejected:
			rejected = true
			r.cfg.Logf("fleet: replica %s refused epoch %d during fan-out", res.m.name, ep.Seq)
		default:
			res.m.fleetVer.Store(r.ver(tid))
			applied++
		}
	}
	if rejected {
		// A live replica refused what the canary accepted: the epoch cannot
		// be trusted anywhere. Converge everyone back on the prior one.
		events.Default().EmitTraced(pid, events.FleetPublish, "fan-out refusal, rolling fleet back",
			events.Num("fleet_seq", float64(tid)))
		if rollback != nil {
			r.rollbackFleet(rollback, pid)
		}
		return fmt.Errorf("fleet: epoch %d refused during fan-out, fleet rolled back: %w", ep.Seq, ErrRefused)
	}
	r.mu.Lock()
	r.current = sealed
	r.currentTid = tid
	r.mu.Unlock()
	canary.fleetVer.Store(r.ver(tid))
	r.persistState()
	events.Default().EmitTraced(pid, events.FleetPublish, "epoch replicated fleet-wide",
		events.Num("epoch_seq", float64(ep.Seq)),
		events.Num("fleet_seq", float64(tid)),
		events.Num("replicas", float64(applied)))
	r.cfg.Logf("fleet: epoch %d committed fleet-wide as seq %d (%d replicas)", ep.Seq, tid, applied)
	return nil
}

// rollbackFleet pushes the prior sealed epoch to every live replica in
// PushRollback mode under a fresh fleet sequence. Callers hold pubMu.
func (r *Router) rollbackFleet(sealed []byte, pid trace.ID) {
	rtid := r.pubSeq.Add(1)
	rollbackCount.Inc()
	order := r.liveRoute(uint64(rtid), 1<<16)
	done := make(chan struct{}, len(order))
	for _, m := range order {
		m := m
		go func() {
			defer func() { done <- struct{}{} }()
			ack, err := r.pushEpoch(m, rtid, sealed, airproto.PushRollback)
			if err != nil {
				r.evict(m, fmt.Sprintf("unreachable during rollback %d: %v", rtid, err))
				return
			}
			if ack.Code != airproto.AckApplied {
				r.cfg.Logf("fleet: replica %s refused ROLLBACK epoch (seq %d) — manual intervention needed", m.name, rtid)
				return
			}
			m.fleetVer.Store(r.ver(rtid))
		}()
	}
	for range order {
		<-done
	}
	r.mu.Lock()
	r.current = sealed
	r.currentTid = rtid
	r.mu.Unlock()
	r.persistState()
	events.Default().EmitTraced(pid, events.Rollback, "fleet rolled back to prior epoch",
		events.Num("fleet_seq", float64(rtid)),
		events.Num("replicas", float64(len(order))))
	r.cfg.Logf("fleet: rolled %d replicas back to the prior epoch as seq %d", len(order), rtid)
}

// pushEpoch streams one sealed epoch to a member as transfer tid: chunked
// stop-and-wait over a dedicated socket, PublishRetries sends per chunk,
// PublishTimeout per ack. It returns the completing ack (AckApplied or
// AckRejected). An error means the member never finished the transfer.
func (r *Router) pushEpoch(m *member, tid uint32, sealed []byte, mode uint8) (*airproto.Frame, error) {
	frames, err := Chunks(tid, mode, sealed, r.cfg.ChunkBytes, r.incar)
	if err != nil {
		return nil, err
	}
	sock, err := net.DialUDP("udp", nil, m.addr)
	if err != nil {
		return nil, err
	}
	defer sock.Close()
	buf := make([]byte, 65535)
	for i, fr := range frames {
		out, err := fr.Marshal()
		if err != nil {
			return nil, err
		}
		acked := false
		for attempt := 0; attempt < r.cfg.PublishRetries && !acked; attempt++ {
			if _, err := sock.Write(out); err != nil {
				return nil, err
			}
			chunkCount.Inc()
			if err := sock.SetReadDeadline(time.Now().Add(r.cfg.PublishTimeout)); err != nil {
				return nil, err
			}
			for !acked {
				n, err := sock.Read(buf)
				if err != nil {
					break // timeout: resend this chunk
				}
				af, err := airproto.Unmarshal(buf[:n])
				if err != nil || af.Kind != airproto.KindEpochAck || af.ID != tid {
					continue // stray datagram: keep reading within the deadline
				}
				if af.Code != airproto.AckChunk {
					// The completing verdict — possibly early (a duplicate
					// transfer the replica already finished, or a mid-stream
					// rejection). Final only if it is about THIS
					// incarnation's transfer: a verdict echoing another
					// nonce is a stale cache answer about different bytes.
					if _, _, _, nonce := af.AckInfo(); nonce != r.incar {
						continue
					}
					return af, nil
				}
				if idx, _, _, _ := af.AckInfo(); idx == i {
					acked = true
				}
			}
		}
		if !acked {
			return nil, fmt.Errorf("no ack for chunk %d/%d after %d attempts", i+1, len(frames), r.cfg.PublishRetries)
		}
	}
	return nil, fmt.Errorf("transfer %d fully acked but never completed", tid)
}
